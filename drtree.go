// Package drtree is a Go reproduction of "d-Dimensional Range Search on
// Multicomputers" (Ferreira, Kenyon, Rau-Chaplin, Ubéda; LIP RR-1996-23 /
// IPPS 1997): the distributed range tree on a Coarse-Grained Multicomputer
// and its batched search algorithms in counting, associative-function and
// report modes.
//
// Because Go has no MPI ecosystem, the multicomputer itself is part of the
// library: a deterministic CGM/BSP simulator whose processors are
// goroutines and whose communication is barrier-synchronised h-relations,
// instrumented to measure exactly what the paper's theorems bound
// (communication rounds, per-round h, local work). See DESIGN.md for the
// architecture and the experiment index, EXPERIMENTS.md for recorded runs.
//
// Quickstart:
//
//	pts, norm := drtree.Normalize(rawRows)          // raw floats → rank space
//	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
//	tree := drtree.BuildDistributed(mach, pts)      // Algorithm Construct
//	counts := tree.CountBatch([]drtree.Box{norm.Box(lo, hi)})
//
// The packages under internal/ hold the implementation: geom (points,
// boxes, rank normalization), segtree (segment-tree shape math and the
// paper's node labeling), rangetree (the sequential structure), cgm + comm
// + psort (the simulated multicomputer and its standard operations),
// balance (the query/copy load balancing), core (the distributed range
// tree), store (the mutable LSM-of-trees serving store), engine (the
// concurrent micro-batching serving layer), kdtree/brute (baselines),
// workload (generators) and expt (the table harness behind
// cmd/rangebench).
package drtree

import (
	"io"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/dominance"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/layered"
	"repro/internal/obs"
	obscluster "repro/internal/obs/cluster"
	"repro/internal/persist"
	"repro/internal/pointsfile"
	"repro/internal/rangetree"
	"repro/internal/semigroup"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Geometry types, re-exported from internal/geom.
type (
	// Point is a point in d-dimensional rank space.
	Point = geom.Point
	// Coord is a single rank coordinate.
	Coord = geom.Coord
	// Box is a closed axis-aligned query domain.
	Box = geom.Box
	// Normalizer maps raw float coordinates and boxes into rank space.
	Normalizer = geom.Normalizer
)

// Machine types, re-exported from internal/cgm.
type (
	// Machine is the simulated coarse-grained multicomputer CGM(s, p).
	Machine = cgm.Machine
	// MachineConfig configures a machine (width, mode, BSP cost model).
	MachineConfig = cgm.Config
	// Metrics is the machine's superstep accounting.
	Metrics = cgm.Metrics
)

// Machine scheduling modes.
const (
	// Concurrent runs the simulated processors as parallel goroutines.
	Concurrent = cgm.Concurrent
	// Measured time-slices processors for precise per-processor timing.
	Measured = cgm.Measured
)

// MachineProvider supplies machines of a fixed width: NewLocalProvider
// yields in-process simulators, a Cluster yields machines whose
// supersteps run over TCP on real worker processes. The same SPMD
// programs (construct, search, store compaction) run unchanged on either.
//
// Setting MachineConfig.Resident selects worker-resident execution on
// either provider: the forest elements (and the store's level trees)
// live where the registered SPMD programs execute — worker memory over
// TCP, the machine's local state store on the loopback — and only query
// boxes and result blocks cross the coordinator's wire. Answers and
// round/h metrics are identical in both modes; aggregate queries on a
// resident tree need a registered aggregate (RegisterAggregate +
// PrepareAssociativeNamed), since inline monoids cannot cross process
// boundaries.
type MachineProvider = cgm.Provider

// NewLocalProvider returns a provider of in-process machines.
func NewLocalProvider(cfg MachineConfig) MachineProvider { return cgm.NewLocalProvider(cfg) }

// Cluster is a MachineProvider backed by remote worker processes: the
// multicomputer as real processes over TCP (see DESIGN.md §7).
type Cluster = transport.Cluster

// ClusterWorker is one worker process's serving state (cmd/rangeworker
// wraps it; tests and examples embed it in-process).
type ClusterWorker = transport.Worker

// StartWorker starts a cluster worker listening on addr (use
// "127.0.0.1:0" for an ephemeral port) and serving in the background.
func StartWorker(addr string) (*ClusterWorker, error) { return transport.ListenAndServe(addr) }

// DialCluster connects to running workers (one address per rank) and
// returns the provider the Cluster… constructors build on.
func DialCluster(addrs []string, cfg MachineConfig) (*Cluster, error) {
	return transport.DialCluster(addrs, cfg)
}

// Tree is the distributed range tree (the paper's contribution).
type Tree = core.Tree

// Query-related core types.
type (
	// ElemInfo is replicated forest-element metadata.
	ElemInfo = core.ElemInfo
	// SearchStats is one processor's share of a batch.
	SearchStats = core.SearchStats
)

// RangeTree is the sequential d-dimensional range tree (Definition 1),
// used standalone or as the building block of forest elements.
type RangeTree = rangetree.Tree

// KDTree is the space-optimal baseline the paper compares against (§1).
type KDTree = kdtree.Tree

// Monoid is a commutative monoid: the algebra of the associative-function
// search mode.
type Monoid[T any] = semigroup.Monoid[T]

// NewMachine creates a simulated multicomputer.
func NewMachine(cfg MachineConfig) *Machine { return cgm.New(cfg) }

// Normalize converts raw float rows into rank-space points plus the
// Normalizer that maps raw query boxes into the same space (the paper's §3
// normalization assumption).
func Normalize(raw [][]float64) ([]Point, *Normalizer) { return geom.NormalizeFloat64(raw) }

// RankNormalize rewrites integer-coordinate points into distinct ranks in
// place.
func RankNormalize(pts []Point) []Point { return geom.RankNormalize(pts) }

// NewBox builds a closed query box.
func NewBox(lo, hi []Coord) Box { return geom.NewBox(lo, hi) }

// ElemBackend selects the sequential structure forest elements (and their
// phase-B copies) are built on.
type ElemBackend = core.Backend

// Element backends.
const (
	// LayeredBackend (the default) serves phase-C subqueries on layered
	// (fractionally cascaded) trees: O(log^(j-1) g + k) per subquery, the
	// §1 saving applied to the distributed hot path.
	LayeredBackend = core.BackendLayered
	// RangeTreeBackend is the paper's plain sequential structure.
	RangeTreeBackend = core.BackendRangeTree
	// BruteBackend answers subqueries by linear scan (oracle/testing).
	BruteBackend = core.BackendBrute
)

// BuildDistributed runs Algorithm Construct on the machine and returns the
// distributed range tree (Theorem 2: O(s/p) local work plus a constant
// number of h-relations), with forest elements on the default layered
// backend.
func BuildDistributed(m *Machine, pts []Point) *Tree { return core.Build(m, pts) }

// BuildDistributedWith runs Algorithm Construct with an explicit element
// backend.
func BuildDistributedWith(m *Machine, pts []Point, be ElemBackend) *Tree {
	return core.BuildBackend(m, pts, be)
}

// BuildDistributedOn runs Algorithm Construct on a machine supplied by
// the provider (local simulator or TCP cluster), with the default
// layered element backend.
func BuildDistributedOn(pv MachineProvider, pts []Point) (*Tree, error) {
	return core.BuildOn(pv, pts, core.BackendLayered)
}

// ClusterBuild runs Algorithm Construct on a machine whose supersteps
// run over the cluster's TCP workers.
func ClusterBuild(cl *Cluster, pts []Point) (*Tree, error) {
	return core.BuildOn(cl, pts, core.BackendLayered)
}

// ClusterEngine builds a distributed tree on the cluster and wraps it in
// a serving engine: micro-batched queries whose machine runs execute on
// the worker processes.
func ClusterEngine(cl *Cluster, pts []Point, cfg EngineConfig) (*Engine[struct{}], error) {
	t, err := ClusterBuild(cl, pts)
	if err != nil {
		return nil, err
	}
	return engine.New(t, cfg), nil
}

// ClusterOpenStore opens a mutable store whose level trees are built and
// queried on the cluster's workers (cfg.Provider and cfg.P are
// overridden by the cluster).
func ClusterOpenStore(cl *Cluster, dir string, cfg StoreConfig) (*Store, error) {
	cfg.Provider = cl
	return store.Open(dir, cfg)
}

// Worker-direct streaming ingest (DESIGN.md §11): workers feed the
// construction themselves — chunks stream into per-rank staging areas
// with a bounded in-flight window, or each rank reads its own slice of a
// points file — and the build runs held in worker memory. On a resident
// cluster the coordinator handles only the p² sample-sort splitters and
// control frames, never a routed point, so its traffic per build is
// O(p²), independent of n.

// ChunkSource yields successive point chunks for BulkLoadStream; Next
// returns io.EOF after the last chunk.
type ChunkSource = core.ChunkSource

// SliceChunks adapts an in-memory point slice into a ChunkSource of
// fixed-size chunks.
func SliceChunks(pts []Point, chunk int) ChunkSource { return core.SliceChunks(pts, chunk) }

// BuildWorkerFed runs Algorithm Construct with worker-held input: on a
// resident machine the points are staged into the workers first and
// every construction exchange stays on the worker mesh; on a fabric
// machine it is identical to BuildDistributedWith.
func BuildWorkerFed(m *Machine, pts []Point, be ElemBackend) *Tree {
	return core.BuildWorkerFed(m, pts, be)
}

// BulkLoadStream streams chunks into the machine's workers (window
// chunks in flight per rank; window ≤ 0 selects the default) and
// constructs the tree worker-fed. On a cluster machine each rank is fed
// over its own direct connection (rank-parallel ingest, DESIGN.md §13);
// use BulkLoadStreamWith for the QoS share cap or the funnel baseline.
func BulkLoadStream(m *Machine, src ChunkSource, window int) (*Tree, error) {
	return core.BulkLoad(m, src, core.BackendLayered, window)
}

// IngestConfig parametrises BulkLoadStreamWith: the per-rank in-flight
// window, the MaxShare QoS cap on the fraction of worker time the
// ingest may consume, and the Funnel fallback that routes every chunk
// through the coordinator's control connections.
type IngestConfig = core.IngestConfig

// BulkLoadStreamWith is BulkLoadStream with explicit ingest
// configuration (window, QoS share cap, funnel fallback).
func BulkLoadStreamWith(m *Machine, src ChunkSource, cfg IngestConfig) (*Tree, error) {
	return core.BulkLoadWith(m, src, core.BackendLayered, cfg)
}

// BulkLoadFile builds a tree from a points file (SavePointsFile layout):
// each rank reads its own record slice directly — the coordinator reads
// only the 17-byte header.
func BulkLoadFile(m *Machine, path string) (*Tree, error) {
	return core.BulkLoadFile(m, path, core.BackendLayered)
}

// BulkLoadFiles builds a tree from one pre-partitioned points file per
// rank; the coordinator never opens them.
func BulkLoadFiles(m *Machine, paths []string) (*Tree, error) {
	return core.BulkLoadFiles(m, paths, core.BackendLayered)
}

// SavePointsFile writes pts in the fixed-record binary layout the bulk
// file loaders read (rank-sliceable without parsing).
func SavePointsFile(path string, pts []Point) error { return pointsfile.Save(path, pts) }

// PointsFileInfo reports a points file's record count and dimensionality
// from its header.
func PointsFileInfo(path string) (n, dims int, err error) { return pointsfile.Info(path) }

// BuildSequential builds the classical sequential range tree over all
// dimensions of pts.
func BuildSequential(pts []Point) *RangeTree { return rangetree.Build(pts) }

// BuildKD builds the k-d tree baseline.
func BuildKD(pts []Point) *KDTree { return kdtree.Build(pts) }

// AggregateHandle is a prepared associative-function annotation; it
// answers batches via Batch and backs an engine's Aggregate mode.
type AggregateHandle[T any] = core.AggHandle[T]

// PrepareAssociative precomputes the associative-function annotation
// (Algorithm AssociativeFunction step 1) for monoid m with per-point value
// val; the returned handle answers batches via Batch. Resident trees need
// PrepareAssociativeNamed instead.
func PrepareAssociative[T any](t *Tree, m Monoid[T], val func(Point) T) *AggregateHandle[T] {
	return core.PrepareAssociative(t, m, val)
}

// RegisterAggregate binds a name to a monoid and per-point value function
// for worker-resident execution. Call it from an init function of a
// package imported by every binary of the cluster (the coordinator and
// each rangeworker), so both sides resolve the name to identical code;
// internal/aggregates registers the standard ones.
func RegisterAggregate[T any](name string, m Monoid[T], val func(Point) T) {
	core.RegisterAggregate(name, m, val)
}

// PrepareAssociativeNamed prepares the associative-function annotation
// for a registered aggregate. On a resident tree the per-element
// annotations are built in worker memory; on a fabric tree it behaves
// like PrepareAssociative with the registered monoid.
func PrepareAssociativeNamed[T any](t *Tree, name string) *AggregateHandle[T] {
	return core.PrepareAssociativeNamed[T](t, name)
}

// Mixed-mode batches: one machine run answering queries of all three
// result modes (the serving layer's dispatch path).

// QueryOp selects the result mode of one query in a mixed batch.
type QueryOp = core.MixedOp

// Query ops.
const (
	OpCount     = core.OpCount
	OpAggregate = core.OpAggregate
	OpReport    = core.OpReport
)

// MixedResult holds one mixed-batch answer; only the field selected by
// the query's op is meaningful.
type MixedResult[T any] = core.MixedResult[T]

// MixedBatch answers a batch mixing count, aggregate and report queries
// in one machine run. h may be nil when ops contains no OpAggregate.
func MixedBatch[T any](t *Tree, h *AggregateHandle[T], ops []QueryOp, boxes []Box) []MixedResult[T] {
	return core.MixedBatch(t, h, ops, boxes)
}

// Serving layer (internal/engine): a concurrent query engine that
// micro-batches single queries from many goroutines into the mixed-mode
// pipeline, with an LRU answer cache and hit/miss/flush metrics.

// Engine is the concurrent micro-batching serving layer.
type Engine[T any] = engine.Engine[T]

// Engine configuration and metrics.
type (
	// EngineConfig tunes batching (flush size, deadline) and the cache.
	EngineConfig = engine.Config
	// EngineStats is a snapshot of the engine's counters.
	EngineStats = engine.Stats
)

// Engine sentinel errors.
var (
	// ErrEngineClosed is returned by queries submitted after Close.
	ErrEngineClosed = engine.ErrClosed
	// ErrNoAggregate is returned by Aggregate on an engine built without
	// a prepared handle.
	ErrNoAggregate = engine.ErrNoAggregate
)

// NewEngine creates a serving engine answering Count and Report queries.
func NewEngine(t *Tree, cfg EngineConfig) *Engine[struct{}] { return engine.New(t, cfg) }

// NewAggregateEngine creates a serving engine that additionally answers
// Aggregate queries through the prepared handle h.
func NewAggregateEngine[T any](t *Tree, h *AggregateHandle[T], cfg EngineConfig) *Engine[T] {
	return engine.WithAggregate(t, h, cfg)
}

// Aggregate builds a sequential associative-function annotation over a
// sequential range tree and returns a single-query evaluator.
func Aggregate[T any](t *RangeTree, m Monoid[T], val func(Point) T) func(Box) T {
	agg := rangetree.NewAgg(t, m, val)
	return agg.Query
}

// Common monoids, re-exported from internal/semigroup.
var (
	IntSum   = semigroup.IntSum
	FloatSum = semigroup.FloatSum
	MaxFloat = semigroup.MaxFloat
	MinFloat = semigroup.MinFloat
	MaxInt   = semigroup.MaxInt
	MinInt   = semigroup.MinInt
)

// Extension structures (see DESIGN.md §9, experiments E11–E13).

// LayeredTree is the layered range tree the paper cites in §1: fractional
// cascading removes a log n factor from the query time.
type LayeredTree = layered.Tree

// BuildLayered builds a layered range tree over all dimensions of pts.
func BuildLayered(pts []Point) *LayeredTree { return layered.Build(pts) }

// Group is a commutative group (invertible monoid) — the algebra of
// footnote 2's dominance-counting special case.
type Group[T any] = dominance.Group[T]

// DominanceTree answers weighted dominance (prefix) aggregates and box
// aggregates via 2^d-corner inclusion–exclusion.
type DominanceTree[T any] = dominance.Tree[T]

// BuildDominance builds the dominance-counting structure of footnote 2.
func BuildDominance[T any](pts []Point, g Group[T], val func(Point) T) *DominanceTree[T] {
	return dominance.New(pts, g, val)
}

// Invertible groups for dominance counting.
var (
	IntSumGroup   = dominance.IntSum
	FloatSumGroup = dominance.FloatSum
)

// DynamicTree is the dynamized distributed range tree (logarithmic
// method), addressing the conclusion's first open issue.
type DynamicTree = dynamic.Tree

// NewDynamic creates an empty dynamic distributed range tree.
func NewDynamic(m *Machine, dims int, opts ...dynamic.Option) *DynamicTree {
	return dynamic.New(m, dims, opts...)
}

// WithBase sets the dynamic tree's smallest level capacity.
var WithBase = dynamic.WithBase

// Mutable serving store (internal/store): an LSM of distributed range
// trees — memtable, logarithmic-method levels of immutable Trees,
// tombstone deletes with automatic shadow folding, epoch-versioned
// snapshot reads, and WAL + checkpoint durability.

// Store is the mutable, versioned point store the engine can serve from.
type Store = store.Store

// Store configuration, version and metrics types.
type (
	// StoreConfig tunes the store (dims, machine width, memtable size,
	// shadow-fold fraction, durability).
	StoreConfig = store.Config
	// StoreVersion is one pinned immutable snapshot of the store.
	StoreVersion = store.Version
	// StoreStats is a snapshot of the store's counters.
	StoreStats = store.Stats
)

// ErrStoreClosed is returned by mutations submitted after Store.Close.
var ErrStoreClosed = store.ErrClosed

// ErrImmutableEngine is returned by Insert/Delete on an engine serving
// an immutable tree rather than a store.
var ErrImmutableEngine = engine.ErrImmutable

// OpenStore creates or recovers a mutable store. With a non-empty dir
// the store is durable (checkpoint + WAL, crash-recoverable via the
// same internal/persist machinery as SaveTree); with dir == "" it is
// ephemeral.
func OpenStore(dir string, cfg StoreConfig) (*Store, error) { return store.Open(dir, cfg) }

// NewStoreEngine creates a serving engine over a mutable store: Count
// and Report queries dispatch against pinned store versions while
// Insert/Delete proceed concurrently, and the answer cache is keyed by
// data version so cached answers can never outlive the data.
func NewStoreEngine(st *Store, cfg EngineConfig) *Engine[struct{}] {
	return engine.NewStore(st, cfg)
}

// Observability (internal/obs, DESIGN.md §12): a dependency-free metrics
// registry plus per-query tracing, shared by the machine, the engine, the
// store and the worker processes. Create one Registry and one Tracer per
// process, pass them through MachineConfig.Obs/.Tracer (and
// EngineConfig / StoreConfig.Obs), and serve the registry over HTTP with
// ServeAdmin — or call ClusterWorker.EnableDebug for a worker's own
// endpoint.

// Obs types, re-exported from internal/obs.
type (
	// ObsRegistry is a process-component's metrics registry: atomic
	// counters, gauges and log-bucket histograms, exported in Prometheus
	// text format by its WriteProm (and by ServeAdmin's /metrics).
	ObsRegistry = obs.Registry
	// ObsTracer collects per-query spans; its Tree renders a query's
	// cross-worker execution as an indented span tree.
	ObsTracer = obs.Tracer
	// ObsSpan is one timed region of a traced query's execution.
	ObsSpan = obs.Span
	// ObsAdmin is a live debug HTTP endpoint (/metrics, /healthz,
	// /debug/pprof) over a registry.
	ObsAdmin = obs.Admin
)

// NewObsRegistry creates an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsTracer creates an empty query tracer.
func NewObsTracer() *ObsTracer { return obs.NewTracer() }

// ServeAdmin serves reg's metrics (plus health and pprof) on an HTTP
// listener at addr; health may be nil. Close the returned Admin to stop.
func ServeAdmin(addr string, reg *ObsRegistry, health func() any) (*ObsAdmin, error) {
	return obs.ServeAdmin(addr, reg, health)
}

// Cluster health plane (internal/obs/cluster, DESIGN.md §14): workers
// push compact health beacons — liveness plus a full registry dump — on
// a keepalive stream; the coordinator runs a per-worker liveness state
// machine (healthy → suspect → down), archives structured cluster
// events to a size-capped JSONL file, and merges every worker's metrics
// with its own into one cluster view served from /cluster/* endpoints
// (which the rangetop dashboard, `rangesearch -mode top`, renders live).
//
//	evlog, _ := drtree.OpenClusterEvents(filepath.Join(dir, "events.jsonl"), 0)
//	mon := drtree.NewClusterMonitor(drtree.ClusterMonitorConfig{Addrs: addrs, Events: evlog, Obs: reg})
//	watch := drtree.WatchClusterHealth(addrs, 0, mon)
//	agg := &drtree.ClusterAggregator{Mon: mon, Events: evlog, Local: reg}
//	agg.Mount(admin) // /cluster/metrics, /cluster/healthz, /cluster/events, /cluster/top

// Health plane types, re-exported from internal/obs/cluster.
type (
	// ClusterMonitor is the coordinator-side liveness state machine over
	// the workers' beacon streams.
	ClusterMonitor = obscluster.Monitor
	// ClusterMonitorConfig configures the monitor (addresses, beacon
	// interval, missed-beacon thresholds, event archive, registry).
	ClusterMonitorConfig = obscluster.MonitorConfig
	// ClusterWorkerHealth is one worker's liveness row in a snapshot.
	ClusterWorkerHealth = obscluster.WorkerHealth
	// ClusterEventLog is the persistent structured event archive
	// (size-capped JSONL file plus an in-memory recent ring).
	ClusterEventLog = obscluster.EventLog
	// ClusterEvent is one archived cluster event.
	ClusterEvent = obscluster.Event
	// ClusterAggregator merges the coordinator registry with the latest
	// beacon-carried worker registries into the /cluster/* endpoints.
	ClusterAggregator = obscluster.Aggregator
	// ClusterHealthWatcher owns the per-rank beacon streams feeding a
	// monitor (transport.WatchHealth's handle).
	ClusterHealthWatcher = transport.HealthWatcher
)

// Worker liveness states.
const (
	WorkerUnknown = obscluster.StateUnknown
	WorkerHealthy = obscluster.StateHealthy
	WorkerSuspect = obscluster.StateSuspect
	WorkerDown    = obscluster.StateDown
)

// OpenClusterEvents opens (or creates, appending) a JSONL event archive;
// path == "" keeps events in memory only, maxBytes <= 0 defaults the
// per-segment size cap.
func OpenClusterEvents(path string, maxBytes int64) (*ClusterEventLog, error) {
	return obscluster.OpenEventLog(path, maxBytes)
}

// NewClusterMonitor starts the liveness state machine; feed it with
// WatchClusterHealth and close it when done.
func NewClusterMonitor(cfg ClusterMonitorConfig) *ClusterMonitor { return obscluster.NewMonitor(cfg) }

// WatchClusterHealth opens one beacon stream per worker (redialing on
// loss) and feeds the monitor; interval <= 0 selects the default 1s.
func WatchClusterHealth(addrs []string, interval time.Duration, mon *ClusterMonitor) *ClusterHealthWatcher {
	return transport.WatchHealth(addrs, interval, mon)
}

// ReadClusterEvents loads every event from an archive segment — the
// post-mortem reader matching the event log's JSONL writer.
func ReadClusterEvents(path string) ([]ClusterEvent, error) { return obscluster.ReadEvents(path) }

// SaveTree writes a machine-independent snapshot of the distributed tree
// (rank points + parameters, versioned and checksummed); LoadTree rebuilds
// it deterministically, possibly on a machine of a different width.
func SaveTree(w io.Writer, t *Tree) error { return persist.Save(w, t) }

// LoadTree reads a snapshot and rebuilds the distributed tree on m.
func LoadTree(r io.Reader, m *Machine) (*Tree, error) { return persist.Load(r, m) }

// Workload generation, re-exported so example programs and downstream
// benchmarks can stay on the public API.
type (
	// PointSpec describes a synthetic point set.
	PointSpec = workload.PointSpec
	// QuerySpec describes a synthetic query batch.
	QuerySpec = workload.QuerySpec
)

// Point distributions.
const (
	Uniform    = workload.Uniform
	Clustered  = workload.Clustered
	Correlated = workload.Correlated
)

// GeneratePoints produces a rank-normalized synthetic point set.
func GeneratePoints(spec PointSpec) []Point { return workload.Points(spec) }

// GenerateBoxes produces a synthetic query batch in rank space.
func GenerateBoxes(spec QuerySpec) []Box { return workload.Boxes(spec) }
