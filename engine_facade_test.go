package drtree_test

import (
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/brute"
	"repro/internal/workload"
)

// TestEngineFacade exercises the serving layer through the public API:
// mixed-mode concurrent submitters, answers checked against brute force.
func TestEngineFacade(t *testing.T) {
	n := 1 << 10
	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Uniform, Seed: 3})
	mach := drtree.NewMachine(drtree.MachineConfig{P: 4})
	tree := drtree.BuildDistributed(mach, pts)
	h := drtree.PrepareAssociative(tree, drtree.FloatSum(), workload.WeightOf)
	bf := brute.New(pts)

	eng := drtree.NewAggregateEngine(tree, h, drtree.EngineConfig{
		BatchSize: 16, MaxDelay: 300 * time.Microsecond, CacheSize: 64,
	})
	defer eng.Close()

	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: 96, Dims: 2, N: n, Selectivity: 0.02, Seed: 6})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(boxes); i += 8 {
				q := boxes[i]
				switch i % 3 {
				case 0:
					got, err := eng.Count(q)
					if err != nil {
						t.Errorf("Count: %v", err)
						return
					}
					if want := int64(bf.Count(q)); got != want {
						t.Errorf("query %d: count %d, want %d", i, got, want)
					}
				case 1:
					got, err := eng.Aggregate(q)
					if err != nil {
						t.Errorf("Aggregate: %v", err)
						return
					}
					want := brute.Aggregate(bf, drtree.FloatSum(), workload.WeightOf, q)
					if d := got - want; d > 1e-6 || d < -1e-6 {
						t.Errorf("query %d: agg %v, want %v", i, got, want)
					}
				default:
					got, err := eng.Report(q)
					if err != nil {
						t.Errorf("Report: %v", err)
						return
					}
					if want := bf.Count(q); len(got) != want {
						t.Errorf("query %d: %d points, want %d", i, len(got), want)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := eng.Stats(); st.Submitted != uint64(len(boxes)) {
		t.Errorf("Submitted = %d, want %d", st.Submitted, len(boxes))
	}
}

// TestMixedBatchFacade drives the one-machine-run mixed dispatch path
// through the public API.
func TestMixedBatchFacade(t *testing.T) {
	n := 512
	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Correlated, Seed: 9})
	mach := drtree.NewMachine(drtree.MachineConfig{P: 4})
	tree := drtree.BuildDistributed(mach, pts)
	h := drtree.PrepareAssociative(tree, drtree.FloatSum(), workload.WeightOf)
	bf := brute.New(pts)

	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: 30, Dims: 2, N: n, Selectivity: 0.05, Seed: 2})
	ops := make([]drtree.QueryOp, len(boxes))
	for i := range ops {
		ops[i] = drtree.QueryOp(i % 3)
	}
	results := drtree.MixedBatch(tree, h, ops, boxes)
	for i, r := range results {
		switch ops[i] {
		case drtree.OpCount:
			if want := int64(bf.Count(boxes[i])); r.Count != want {
				t.Fatalf("query %d: count %d, want %d", i, r.Count, want)
			}
		case drtree.OpAggregate:
			want := brute.Aggregate(bf, drtree.FloatSum(), workload.WeightOf, boxes[i])
			if d := r.Agg - want; d > 1e-6 || d < -1e-6 {
				t.Fatalf("query %d: agg %v, want %v", i, r.Agg, want)
			}
		case drtree.OpReport:
			if want := bf.Count(boxes[i]); len(r.Pts) != want {
				t.Fatalf("query %d: %d points, want %d", i, len(r.Pts), want)
			}
		}
	}
}
