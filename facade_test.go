package drtree_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro"
	"repro/internal/brute"
)

// TestFacadeEndToEnd drives the whole public API surface the way the
// README shows it.
func TestFacadeEndToEnd(t *testing.T) {
	raw := [][]float64{
		{1.5, 9.0}, {2.5, 8.0}, {3.5, 7.0}, {4.5, 6.0},
		{5.5, 5.0}, {6.5, 4.0}, {7.5, 3.0}, {8.5, 2.0},
	}
	pts, norm := drtree.Normalize(raw)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 3})
	tree := drtree.BuildDistributed(mach, pts)
	if tree.N() != 8 || tree.Dims() != 2 || tree.P() != 3 {
		t.Fatalf("tree header wrong: n=%d d=%d p=%d", tree.N(), tree.Dims(), tree.P())
	}
	q := norm.Box([]float64{2.0, 3.5}, []float64{7.0, 8.5})
	counts := tree.CountBatch([]drtree.Box{q})
	// x∈[2,7], y∈[3.5,8.5] matches (2.5,8),(3.5,7),(4.5,6),(5.5,5),(6.5,4).
	if counts[0] != 5 {
		t.Errorf("count = %d, want 5", counts[0])
	}
	rep := tree.ReportBatch([]drtree.Box{q})
	if len(rep[0]) != int(counts[0]) {
		t.Errorf("report size %d vs count %d", len(rep[0]), counts[0])
	}
	h := drtree.PrepareAssociative(tree, drtree.IntSum(), func(drtree.Point) int64 { return 1 })
	if got := h.Batch([]drtree.Box{q})[0]; got != counts[0] {
		t.Errorf("associative count %d vs %d", got, counts[0])
	}
	if got := tree.SingleCount(q); got != counts[0] {
		t.Errorf("single count %d vs %d", got, counts[0])
	}
	if mach.Metrics().CommRounds() == 0 {
		t.Error("no rounds recorded")
	}
}

func TestFacadeSequentialAndBaselines(t *testing.T) {
	pts := drtree.GeneratePoints(drtree.PointSpec{N: 300, Dims: 2, Dist: drtree.Clustered, Seed: 5})
	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: 40, Dims: 2, N: 300, Selectivity: 0.05, Seed: 5})
	rt := drtree.BuildSequential(pts)
	kd := drtree.BuildKD(pts)
	lt := drtree.BuildLayered(pts)
	dom := drtree.BuildDominance(pts, drtree.IntSumGroup(), func(drtree.Point) int64 { return 1 })
	bf := brute.New(pts)
	agg := drtree.Aggregate(rt, drtree.FloatSum(), func(p drtree.Point) float64 { return float64(p.ID) })
	for _, q := range boxes {
		want := bf.Count(q)
		if rt.Count(q) != want || kd.Count(q) != want || lt.Count(q) != want {
			t.Fatalf("tree disagreement on %v", q)
		}
		if dom.Box(q) != int64(want) {
			t.Fatalf("dominance disagreement on %v", q)
		}
		wantSum := 0.0
		for _, p := range bf.Report(q) {
			wantSum += float64(p.ID)
		}
		if agg(q) != wantSum {
			t.Fatalf("aggregate disagreement on %v", q)
		}
	}
}

func TestFacadeDynamic(t *testing.T) {
	mach := drtree.NewMachine(drtree.MachineConfig{P: 2})
	dyn := drtree.NewDynamic(mach, 2, drtree.WithBase(16))
	rng := rand.New(rand.NewSource(9))
	var all []drtree.Point
	for b := 0; b < 3; b++ {
		var batch []drtree.Point
		for i := 0; i < 50; i++ {
			batch = append(batch, drtree.Point{
				ID: int32(len(all) + i),
				X:  []drtree.Coord{drtree.Coord(rng.Intn(500)), drtree.Coord(rng.Intn(500))},
			})
		}
		dyn.InsertBatch(batch)
		all = append(all, batch...)
	}
	bf := brute.New(all)
	q := drtree.NewBox([]drtree.Coord{50, 50}, []drtree.Coord{400, 400})
	if got, want := dyn.CountBatch([]drtree.Box{q})[0], int64(bf.Count(q)); got != want {
		t.Errorf("dynamic count %d, want %d", got, want)
	}
	gotIDs := brute.IDs(dyn.ReportBatch([]drtree.Box{q})[0])
	wantIDs := brute.IDs(bf.Report(q))
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Error("dynamic report mismatch")
	}
}

func TestFacadeMeasuredMode(t *testing.T) {
	pts := drtree.GeneratePoints(drtree.PointSpec{N: 128, Dims: 2, Dist: drtree.Uniform, Seed: 1})
	mach := drtree.NewMachine(drtree.MachineConfig{P: 4, Mode: drtree.Measured})
	tree := drtree.BuildDistributed(mach, pts)
	if tree.N() != 128 {
		t.Fatal("build failed in measured mode")
	}
	mt := mach.Metrics()
	if mt.TotalWork() <= 0 || mt.LocalWork() <= 0 {
		t.Error("measured mode produced no work accounting")
	}
	if mt.ModelTime(mach.G(), mach.L()) <= mt.LocalWork() {
		t.Error("model time must include communication terms")
	}
}
