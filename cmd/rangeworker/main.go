// Command rangeworker is one node of the multicomputer fabric: a worker
// process that carries CGM supersteps over TCP. Start p of them, then
// point a coordinator at their addresses — rangesearch with
// -workers host:port,…, or the drtree.DialCluster API — and every
// h-relation of construction, search and store compaction physically
// routes through these processes (see DESIGN.md §7).
//
// Usage:
//
//	rangeworker -listen 127.0.0.1:9101 &
//	rangeworker -listen 127.0.0.1:9102 &
//	rangesearch -n 4096 -d 2 -mode serve -workers 127.0.0.1:9101,127.0.0.1:9102
//
// With a resident coordinator (rangesearch -resident, or any
// cgm.Config{Resident: true} cluster) the worker is more than fabric: it
// executes the registered SPMD programs' steps against per-session state,
// holding its rank's part of the distributed forest in memory and serving
// phase-C subqueries locally.
//
// The worker also serves the cluster health plane automatically: a
// coordinator that watches it (rangesearch -workers …, or
// drtree.WatchClusterHealth) opens a beacon stream, and the worker
// pushes liveness plus a full metrics dump every interval — no flags
// needed here; the coordinator picks the cadence (-beacon-interval)
// and `rangesearch -mode top` renders the result live (DESIGN.md §14).
//
// SIGINT/SIGTERM shuts the worker down, tearing open sessions down
// (coordinators observe a machine abort with a diagnostic).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	// Resident execution resolves SPMD programs and named aggregates from
	// the process registry: the worker must link the same registrations
	// the coordinator plans with (core's forest program, the standard
	// aggregates). A worker missing a program rejects its steps with a
	// clear diagnostic instead of misbehaving.
	_ "repro/internal/aggregates"
	_ "repro/internal/core"

	"repro/internal/transport"
)

func main() {
	listen := flag.String("listen", ":9100", "TCP address to serve supersteps on")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /healthz and /debug/pprof (empty disables)")
	ingestShare := flag.Float64("ingest-share", 0,
		"operator cap in (0,1) on the fraction of wall-time ingest feeds may consume on this worker; "+
			"combined with the client's requested share by taking the minimum (0 = no worker-side cap)")
	flag.Parse()

	w, err := transport.ListenAndServe(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangeworker: %v\n", err)
		os.Exit(1)
	}
	if *ingestShare != 0 {
		w.SetIngestMaxShare(*ingestShare)
		fmt.Printf("rangeworker: ingest capped at %.0f%% of wall-time\n", *ingestShare*100)
	}
	fmt.Printf("rangeworker: serving CGM supersteps on %s\n", w.Addr())
	if *debugAddr != "" {
		addr, err := w.EnableDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangeworker: debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("rangeworker: metrics and pprof on http://%s\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "rangeworker: %v: closing %d live sessions\n", s, w.Sessions())
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rangeworker: close: %v\n", err)
		os.Exit(1)
	}
}
