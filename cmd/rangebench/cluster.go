package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/aggregates"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	obscluster "repro/internal/obs/cluster"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ClusterModeRecord measures one execution mode of the TCP cluster.
type ClusterModeRecord struct {
	Mode            string  `json:"mode"` // fabric | resident
	BuildMs         float64 `json:"build_ms"`
	UsPerQuery      float64 `json:"us_per_query"`
	CoordBytesQuery float64 `json:"coord_bytes_per_query"`
	// Codec traffic per query (process-wide: coordinator and the
	// in-process workers): blocks through the raw wire codec vs through
	// the gob fallback. Together with the per-block codec microbench
	// below, this gives encode/decode ns and allocs per query.
	RawBlocksQuery float64 `json:"raw_enc_blocks_per_query"`
	GobBlocksQuery float64 `json:"gob_enc_blocks_per_query"`
	RawBytesQuery  float64 `json:"raw_enc_bytes_per_query"`
}

// CodecBenchRecord is the gob-vs-raw microbench for one payload shape:
// per-block encode/decode ns and allocations, measured in-process via
// testing.Benchmark (same discipline as BenchmarkWireCodec in
// internal/core, which also covers the unexported payload types).
type CodecBenchRecord struct {
	Payload    string  `json:"payload"` // points | reportpairs
	Codec      string  `json:"codec"`   // raw | gob
	BlockBytes int     `json:"block_bytes"`
	EncNsOp    float64 `json:"enc_ns_per_block"`
	EncAllocs  int64   `json:"enc_allocs_per_block"`
	DecNsOp    float64 `json:"dec_ns_per_block"`
	DecAllocs  int64   `json:"dec_allocs_per_block"`
}

// ClusterRecord is the machine-readable record of the cluster benchmark
// (BENCH_cluster.json): mixed batches over 4 localhost workers, fabric
// vs worker-resident, with the coordinator's wire traffic per query —
// the quantity residency exists to shrink.
type ClusterRecord struct {
	Experiment string              `json:"experiment"`
	N          int                 `json:"n"`
	Dims       int                 `json:"dims"`
	P          int                 `json:"p"`
	Queries    int                 `json:"queries"`
	Batches    int                 `json:"batches"`
	Modes      []ClusterModeRecord `json:"modes"`
	// CoordDropX is fabric coordinator-bytes/query over resident's: how
	// many times less traffic the coordinator carries under residency.
	CoordDropX float64 `json:"coord_drop_x"`
	// Codec is the gob-vs-raw encode/decode microbench on representative
	// hot-path payloads, recorded next to the cluster numbers so the codec
	// win stays in the trajectory rather than being asserted.
	Codec []CodecBenchRecord `json:"codec"`
	// ScrapeUs is the cost of rendering one /cluster/metrics exposition
	// (coordinator registry + p beacon-carried worker registries merged)
	// at this p — the observability tax a scraper imposes per poll.
	ScrapeUs float64 `json:"cluster_metrics_scrape_us"`
}

// codecBench measures encode and decode of one payload value through the
// raw wire codec and through gob (a fresh encoder per block, as the
// exchange layer must use since each block is decoded independently).
func codecBench[T any](payload string, v T) []CodecBenchRecord {
	raw, err := wire.Encode(nil, v)
	if err != nil {
		panic(err)
	}
	var gbuf bytes.Buffer
	gbuf.WriteByte('G')
	if err := gob.NewEncoder(&gbuf).Encode(&v); err != nil {
		panic(err)
	}
	gobBlock := append([]byte(nil), gbuf.Bytes()...)

	bench := func(fn func()) (float64, int64) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return float64(r.NsPerOp()), r.AllocsPerOp()
	}
	rawRec := CodecBenchRecord{Payload: payload, Codec: "raw", BlockBytes: len(raw)}
	rawRec.EncNsOp, rawRec.EncAllocs = bench(func() {
		buf := wire.GetBuf()
		buf, _ = wire.Encode(buf, v)
		wire.PutBuf(buf)
	})
	rawRec.DecNsOp, rawRec.DecAllocs = bench(func() {
		if _, err := wire.Decode[T](raw); err != nil {
			panic(err)
		}
	})
	gobRec := CodecBenchRecord{Payload: payload, Codec: "gob", BlockBytes: len(gobBlock)}
	gobRec.EncNsOp, gobRec.EncAllocs = bench(func() {
		var b bytes.Buffer
		b.WriteByte('G')
		if err := gob.NewEncoder(&b).Encode(&v); err != nil {
			panic(err)
		}
	})
	gobRec.DecNsOp, gobRec.DecAllocs = bench(func() {
		if _, err := wire.Decode[T](gobBlock); err != nil {
			panic(err)
		}
	})
	return []CodecBenchRecord{rawRec, gobRec}
}

// runCodecBench benchmarks the payload shapes visible from this package:
// coordinate rows (the build/report bulk) and query→point result pairs.
// The unexported exchange payloads get the same treatment in
// BenchmarkWireCodec inside internal/core.
func runCodecBench() []CodecBenchRecord {
	const n, dims = 1024, 3
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, dims)
		for d := range x {
			x[d] = geom.Coord(i*31 + d*7)
		}
		pts[i] = geom.Point{ID: int32(i), X: x}
	}
	rps := make([]core.ReportPair, n)
	for i := range rps {
		rps[i] = core.ReportPair{Query: int32(i % 64), Pt: pts[i]}
	}
	var out []CodecBenchRecord
	out = append(out, codecBench("points", pts)...)
	out = append(out, codecBench("reportpairs", rps)...)
	return out
}

// runClusterBench spins up in-process workers (real TCP on localhost)
// and measures both execution modes.
func runClusterBench(n, m, p, batches int) (*ClusterRecord, error) {
	rec := &ClusterRecord{Experiment: "cluster", N: n, Dims: 2, P: p, Queries: m, Batches: batches}
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 11})
	ops := make([]core.MixedOp, m)
	for i := range ops {
		ops[i] = core.MixedOp(i % 3)
	}
	// Each mode runs in its own scope so the fabric cluster (workers,
	// sessions, built forest) is fully torn down before the resident
	// measurement starts — the two timings never share a machine.
	measure := func(resident bool) (ClusterModeRecord, error) {
		mode := "fabric"
		if resident {
			mode = "resident"
		}
		mrec := ClusterModeRecord{Mode: mode}
		workers := make([]*transport.Worker, p)
		addrs := make([]string, p)
		for i := range workers {
			w, err := transport.ListenAndServe("127.0.0.1:0")
			if err != nil {
				return mrec, err
			}
			defer w.Close()
			workers[i] = w
			addrs[i] = w.Addr()
		}
		cl, err := transport.DialCluster(addrs, cgm.Config{Resident: resident})
		if err != nil {
			return mrec, err
		}
		defer cl.Close()
		buildStart := time.Now()
		tree, err := core.BuildOn(cl, pts, core.BackendLayered)
		if err != nil {
			return mrec, fmt.Errorf("%s build: %w", mode, err)
		}
		mrec.BuildMs = float64(time.Since(buildStart).Microseconds()) / 1e3
		h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
		core.MixedBatch(tree, h, ops, boxes) // warm copy caches
		outBefore, inBefore := cl.CoordBytes()
		wsBefore := wire.Stats()
		start := time.Now()
		for i := 0; i < batches; i++ {
			core.MixedBatch(tree, h, ops, boxes)
		}
		wall := time.Since(start)
		out, in := cl.CoordBytes()
		ws := wire.Stats()
		queries := float64(batches * m)
		mrec.UsPerQuery = float64(wall.Microseconds()) / queries
		mrec.CoordBytesQuery = float64(out-outBefore+in-inBefore) / queries
		mrec.RawBlocksQuery = float64(ws.RawEncBlocks-wsBefore.RawEncBlocks) / queries
		mrec.GobBlocksQuery = float64(ws.GobEncBlocks-wsBefore.GobEncBlocks) / queries
		mrec.RawBytesQuery = float64(ws.RawEncBytes-wsBefore.RawEncBytes) / queries
		return mrec, nil
	}
	for _, resident := range []bool{false, true} {
		mrec, err := measure(resident)
		if err != nil {
			return nil, err
		}
		rec.Modes = append(rec.Modes, mrec)
	}
	if rec.Modes[1].CoordBytesQuery > 0 {
		rec.CoordDropX = rec.Modes[0].CoordBytesQuery / rec.Modes[1].CoordBytesQuery
	}
	rec.Codec = runCodecBench()
	scrapeUs, err := runScrapeBench(n/8, p)
	if err != nil {
		return nil, err
	}
	rec.ScrapeUs = scrapeUs
	return rec, nil
}

// runScrapeBench measures the aggregator render: µs per /cluster/metrics
// exposition over a live mini health plane — p TCP workers with
// beacon-carried registry dumps (populated by a real resident build and
// query batch), a monitor, and the coordinator's own registry.
func runScrapeBench(n, p int) (float64, error) {
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 3})
	boxes := workload.Boxes(workload.QuerySpec{M: 32, Dims: 2, N: n, Selectivity: 0.02, Seed: 5})
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	reg := obs.NewRegistry()
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true, Obs: reg})
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	tree, err := core.BuildOn(cl, pts, core.BackendLayered)
	if err != nil {
		return 0, err
	}
	tree.CountBatch(boxes) // populate worker exec/step series
	const interval = 20 * time.Millisecond
	mon := obscluster.NewMonitor(obscluster.MonitorConfig{Addrs: addrs, Interval: interval, Obs: reg})
	defer mon.Close()
	hw := transport.WatchHealth(addrs, interval, mon)
	defer hw.Close()
	// The render cost depends on every rank's dump being present: wait for
	// first beacons rather than benchmarking a half-empty aggregator.
	for deadline := time.Now().Add(5 * time.Second); !mon.AllHealthy(); {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("scrape bench: workers never all beaconed")
		}
		time.Sleep(time.Millisecond)
	}
	agg := &obscluster.Aggregator{Mon: mon, Local: reg}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := agg.WriteProm(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(r.NsPerOp()) / 1e3, nil
}

// writeClusterJSON runs the cluster benchmark and writes the record.
func writeClusterJSON(path string) error {
	rec, err := runClusterBench(1<<13, 64, 4, 8)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster bench: fabric %.0f B/query, resident %.0f B/query (%.1fx drop) -> %s\n",
		rec.Modes[0].CoordBytesQuery, rec.Modes[1].CoordBytesQuery, rec.CoordDropX, path)
	fmt.Printf("  /cluster/metrics render at p=%d: %.0f us\n", rec.P, rec.ScrapeUs)
	for _, c := range rec.Codec {
		fmt.Printf("  codec %-11s %-3s enc %8.0f ns %4d allocs, dec %8.0f ns %4d allocs (%d B)\n",
			c.Payload, c.Codec, c.EncNsOp, c.EncAllocs, c.DecNsOp, c.DecAllocs, c.BlockBytes)
	}
	return nil
}
