package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/aggregates"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

// ClusterModeRecord measures one execution mode of the TCP cluster.
type ClusterModeRecord struct {
	Mode            string  `json:"mode"` // fabric | resident
	BuildMs         float64 `json:"build_ms"`
	UsPerQuery      float64 `json:"us_per_query"`
	CoordBytesQuery float64 `json:"coord_bytes_per_query"`
}

// ClusterRecord is the machine-readable record of the cluster benchmark
// (BENCH_cluster.json): mixed batches over 4 localhost workers, fabric
// vs worker-resident, with the coordinator's wire traffic per query —
// the quantity residency exists to shrink.
type ClusterRecord struct {
	Experiment string              `json:"experiment"`
	N          int                 `json:"n"`
	Dims       int                 `json:"dims"`
	P          int                 `json:"p"`
	Queries    int                 `json:"queries"`
	Batches    int                 `json:"batches"`
	Modes      []ClusterModeRecord `json:"modes"`
	// CoordDropX is fabric coordinator-bytes/query over resident's: how
	// many times less traffic the coordinator carries under residency.
	CoordDropX float64 `json:"coord_drop_x"`
}

// runClusterBench spins up in-process workers (real TCP on localhost)
// and measures both execution modes.
func runClusterBench(n, m, p, batches int) (*ClusterRecord, error) {
	rec := &ClusterRecord{Experiment: "cluster", N: n, Dims: 2, P: p, Queries: m, Batches: batches}
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 11})
	ops := make([]core.MixedOp, m)
	for i := range ops {
		ops[i] = core.MixedOp(i % 3)
	}
	// Each mode runs in its own scope so the fabric cluster (workers,
	// sessions, built forest) is fully torn down before the resident
	// measurement starts — the two timings never share a machine.
	measure := func(resident bool) (ClusterModeRecord, error) {
		mode := "fabric"
		if resident {
			mode = "resident"
		}
		mrec := ClusterModeRecord{Mode: mode}
		workers := make([]*transport.Worker, p)
		addrs := make([]string, p)
		for i := range workers {
			w, err := transport.ListenAndServe("127.0.0.1:0")
			if err != nil {
				return mrec, err
			}
			defer w.Close()
			workers[i] = w
			addrs[i] = w.Addr()
		}
		cl, err := transport.DialCluster(addrs, cgm.Config{Resident: resident})
		if err != nil {
			return mrec, err
		}
		defer cl.Close()
		buildStart := time.Now()
		tree, err := core.BuildOn(cl, pts, core.BackendLayered)
		if err != nil {
			return mrec, fmt.Errorf("%s build: %w", mode, err)
		}
		mrec.BuildMs = float64(time.Since(buildStart).Microseconds()) / 1e3
		h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
		core.MixedBatch(tree, h, ops, boxes) // warm copy caches
		outBefore, inBefore := cl.CoordBytes()
		start := time.Now()
		for i := 0; i < batches; i++ {
			core.MixedBatch(tree, h, ops, boxes)
		}
		wall := time.Since(start)
		out, in := cl.CoordBytes()
		queries := float64(batches * m)
		mrec.UsPerQuery = float64(wall.Microseconds()) / queries
		mrec.CoordBytesQuery = float64(out-outBefore+in-inBefore) / queries
		return mrec, nil
	}
	for _, resident := range []bool{false, true} {
		mrec, err := measure(resident)
		if err != nil {
			return nil, err
		}
		rec.Modes = append(rec.Modes, mrec)
	}
	if rec.Modes[1].CoordBytesQuery > 0 {
		rec.CoordDropX = rec.Modes[0].CoordBytesQuery / rec.Modes[1].CoordBytesQuery
	}
	return rec, nil
}

// writeClusterJSON runs the cluster benchmark and writes the record.
func writeClusterJSON(path string) error {
	rec, err := runClusterBench(1<<13, 64, 4, 8)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster bench: fabric %.0f B/query, resident %.0f B/query (%.1fx drop) -> %s\n",
		rec.Modes[0].CoordBytesQuery, rec.Modes[1].CoordBytesQuery, rec.CoordDropX, path)
	return nil
}
