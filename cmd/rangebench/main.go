// Command rangebench regenerates the paper's evaluation: every figure
// (F1–F3) and every theorem-derived table (T1–T4b), plus the extension
// experiments (E5–E10) indexed in DESIGN.md §9.
//
// Usage:
//
//	rangebench                          # run everything at quick scale
//	rangebench -experiment T2,T3        # selected experiments
//	rangebench -scale full              # EXPERIMENTS.md-sized runs
//	rangebench -markdown > results.md   # markdown output
//	rangebench -json                    # E15 → BENCH_phaseC.json, E16 → BENCH_store.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expt"
)

var runners = map[string]func(expt.Scale) *expt.Table{
	"F1":  func(expt.Scale) *expt.Table { return expt.F1() },
	"F2":  func(expt.Scale) *expt.Table { return expt.F2() },
	"F3":  func(expt.Scale) *expt.Table { return expt.F3() },
	"T1":  expt.T1,
	"T2":  expt.T2,
	"T3":  expt.T3,
	"T4A": expt.T4a,
	"T4B": expt.T4b,
	"E5":  expt.E5,
	"E6":  expt.E6,
	"E7":  expt.E7,
	"E8":  expt.E8,
	"E9":  expt.E9,
	"E10": expt.E10,
	"E11": expt.E11,
	"E12": expt.E12,
	"E13": expt.E13,
	"E14": expt.E14,
	"E15": expt.E15,
	"E16": expt.E16,
}

var order = []string{"F1", "F2", "F3", "T1", "T2", "T3", "T4A", "T4B", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}

func main() {
	experiments := flag.String("experiment", "all", "comma-separated experiment ids (e.g. T2,T3,E6) or 'all'")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	markdown := flag.Bool("markdown", false, "emit GitHub markdown instead of aligned text")
	jsonFlag := flag.Bool("json", false, "run E15 and E16 and write their machine-readable records to BENCH_phaseC.json and BENCH_store.json (then exit)")
	jsonOut := flag.String("json-out", "BENCH_phaseC.json", "target path for the -json E15 record")
	jsonStoreOut := flag.String("json-store-out", "BENCH_store.json", "target path for the -json E16 record")
	clusterFlag := flag.Bool("cluster", false, "run the TCP cluster benchmark (4 localhost workers, fabric vs resident) and write its record (then exit)")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "target path for the -cluster record")
	ingestFlag := flag.Bool("ingest", false, "run the worker-direct ingest benchmark (file loads at n and 2n for the O(p^2) coordinator-traffic probe, plus open-loop streaming with concurrent serving) and write its record (then exit)")
	ingestOut := flag.String("ingest-out", "BENCH_ingest.json", "target path for the -ingest record")
	flag.Parse()

	var scale expt.Scale
	switch strings.ToLower(*scaleFlag) {
	case "quick":
		scale = expt.Quick
	case "full":
		scale = expt.Full
	default:
		fmt.Fprintf(os.Stderr, "rangebench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *clusterFlag {
		if err := writeClusterJSON(*clusterOut); err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *ingestFlag {
		if err := writeIngestJSON(*ingestOut); err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonFlag {
		for _, rec := range []struct {
			run  func(expt.Scale) ([]byte, error)
			path string
		}{
			{expt.PhaseCJSON, *jsonOut},
			{expt.StoreJSON, *jsonStoreOut},
		} {
			payload, err := rec.run(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
				os.Exit(1)
			}
			payload = append(payload, '\n')
			if err := os.WriteFile(rec.path, payload, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", rec.path)
		}
		return
	}

	var ids []string
	if strings.EqualFold(*experiments, "all") {
		ids = order
	} else {
		for _, id := range strings.Split(*experiments, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "rangebench: unknown experiment %q; known: %s\n", id, strings.Join(order, " "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		tab := runners[id](scale)
		if *markdown {
			fmt.Print(tab.Markdown())
		} else {
			tab.Render(os.Stdout)
		}
	}
}
