package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pointsfile"
	"repro/internal/transport"
	"repro/internal/workload"
)

// IngestLoadRecord measures one worker-direct file load: each rank reads
// its own shard, the coordinator sees header metadata, splitters and
// control frames only.
type IngestLoadRecord struct {
	N            int     `json:"n"`
	BuildMs      float64 `json:"build_ms"`
	PointsPerSec float64 `json:"points_per_sec"`
	// CoordBytes is the coordinator's total wire traffic (both
	// directions) for the whole load+construct. Under the O(p²) claim it
	// is independent of N at fixed p — doubling N must not move it.
	CoordBytes         int64   `json:"coord_bytes"`
	CoordBytesPerPoint float64 `json:"coord_bytes_per_point"`
}

// IngestStreamRecord measures the open-loop streaming client (chunks
// through the coordinator, bounded in-flight window) with a serving tree
// answering single-query batches on the same cluster throughout.
type IngestStreamRecord struct {
	N            int     `json:"n"`
	Chunk        int     `json:"chunk"`
	Window       int     `json:"window"`
	IngestMs     float64 `json:"ingest_ms"`
	PointsPerSec float64 `json:"points_per_sec"`
	// Serve latency percentiles for single-count queries against an
	// already-resident tree: idle baseline vs concurrent with the ingest.
	IdleP50Us    float64 `json:"serve_idle_p50_us"`
	IdleP99Us    float64 `json:"serve_idle_p99_us"`
	DuringP50Us  float64 `json:"serve_during_p50_us"`
	DuringP99Us  float64 `json:"serve_during_p99_us"`
	QueriesIdle  int     `json:"queries_idle"`
	QueriesConcu int     `json:"queries_during"`
}

// IngestRecord is the machine-readable record of the ingest benchmark
// (BENCH_ingest.json).
type IngestRecord struct {
	Experiment string `json:"experiment"`
	Dims       int    `json:"dims"`
	P          int    `json:"p"`
	// Loads holds the worker-direct file loads at N and 2N; CoordGrowthX
	// is CoordBytes(2N)/CoordBytes(N) — ≈1 when coordinator traffic is
	// O(p²), 2 if the coordinator were shipping the points.
	Loads        []IngestLoadRecord `json:"loads"`
	CoordGrowthX float64            `json:"coord_growth_x"`
	Stream       IngestStreamRecord `json:"stream"`
}

// usQuantile reads a latency quantile in microseconds from a
// nanosecond-valued obs histogram snapshot.
func usQuantile(s obs.HistSnapshot, q float64) float64 {
	return s.Quantile(q) / 1e3
}

// runIngestBench measures worker-direct ingest on a 4-worker resident
// localhost cluster.
func runIngestBench(n, p int) (*IngestRecord, error) {
	rec := &IngestRecord{Experiment: "ingest", Dims: 2, P: p}
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	dir, err := os.MkdirTemp("", "rangebench-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Worker-direct file loads at N and 2N: the doubling probe for the
	// O(p²) coordinator-traffic claim.
	for _, nn := range []int{n, 2 * n} {
		pts := workload.Points(workload.PointSpec{N: nn, Dims: 2, Dist: workload.Clustered, Seed: 7})
		paths := make([]string, p)
		for r, blk := range core.CanonicalBlocks(pts, p) {
			paths[r] = filepath.Join(dir, fmt.Sprintf("shard-%d-%d.drpf", nn, r))
			if err := pointsfile.Save(paths[r], blk); err != nil {
				return nil, err
			}
		}
		mach, err := cl.NewMachine()
		if err != nil {
			return nil, err
		}
		outB, inB := cl.CoordBytes()
		start := time.Now()
		tree, err := core.BulkLoadFiles(mach, paths, core.BackendLayered)
		if err != nil {
			return nil, fmt.Errorf("file load n=%d: %w", nn, err)
		}
		wall := time.Since(start)
		out, in := cl.CoordBytes()
		lrec := IngestLoadRecord{
			N:            nn,
			BuildMs:      float64(wall.Microseconds()) / 1e3,
			PointsPerSec: float64(nn) / wall.Seconds(),
			CoordBytes:   (out - outB) + (in - inB),
		}
		lrec.CoordBytesPerPoint = float64(lrec.CoordBytes) / float64(nn)
		rec.Loads = append(rec.Loads, lrec)
		tree.Machine().Close()
	}
	if rec.Loads[0].CoordBytes > 0 {
		rec.CoordGrowthX = float64(rec.Loads[1].CoordBytes) / float64(rec.Loads[0].CoordBytes)
	}

	// Open-loop streaming load with a concurrent serving workload.
	const chunk, window, serveN, serveM = 1024, 4, 1 << 12, 256
	servePts := workload.Points(workload.PointSpec{N: serveN, Dims: 2, Dist: workload.Clustered, Seed: 13})
	serveMach, err := cl.NewMachine()
	if err != nil {
		return nil, err
	}
	serveTree, err := core.BulkLoad(serveMach, core.SliceChunks(servePts, chunk), core.BackendLayered, window)
	if err != nil {
		return nil, err
	}
	boxes := workload.Boxes(workload.QuerySpec{M: serveM, Dims: 2, N: serveN, Selectivity: 0.02, Seed: 17})
	// Serve latencies go through the same log-bucket histogram the
	// serving stack exports, so the percentiles here are computed exactly
	// as a /metrics scrape would compute them.
	reg := obs.NewRegistry()
	idleHist := reg.Histogram(`ingest_serve_latency_ns{phase="idle"}`)
	duringHist := reg.Histogram(`ingest_serve_latency_ns{phase="during"}`)
	oneQuery := func(i int, h *obs.Histogram) {
		q0 := time.Now()
		serveTree.CountBatch(boxes[i%serveM : i%serveM+1])
		h.Observe(time.Since(q0).Nanoseconds())
	}
	oneQuery(0, reg.Histogram("ingest_serve_warmup_ns")) // warm
	for i := range serveM {
		oneQuery(i, idleHist)
	}

	big := 2 * n
	bigPts := workload.Points(workload.PointSpec{N: big, Dims: 2, Dist: workload.Clustered, Seed: 23})
	ingestMach, err := cl.NewMachine()
	if err != nil {
		return nil, err
	}
	done := make(chan error, 1)
	var ingestWall time.Duration
	go func() {
		t0 := time.Now()
		_, err := core.BulkLoad(ingestMach, core.SliceChunks(bigPts, chunk), core.BackendLayered, window)
		ingestWall = time.Since(t0)
		done <- err
	}()
	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				return nil, fmt.Errorf("concurrent stream load: %w", err)
			}
			idle, during := idleHist.Snapshot(), duringHist.Snapshot()
			rec.Stream = IngestStreamRecord{
				N: big, Chunk: chunk, Window: window,
				IngestMs:     float64(ingestWall.Microseconds()) / 1e3,
				PointsPerSec: float64(big) / ingestWall.Seconds(),
				IdleP50Us:    usQuantile(idle, 0.50),
				IdleP99Us:    usQuantile(idle, 0.99),
				DuringP50Us:  usQuantile(during, 0.50),
				DuringP99Us:  usQuantile(during, 0.99),
				QueriesIdle:  int(idle.Count),
				QueriesConcu: int(during.Count),
			}
			return rec, nil
		default:
			oneQuery(i, duringHist)
		}
	}
}

// writeIngestJSON runs the ingest benchmark and writes the record.
func writeIngestJSON(path string) error {
	rec, err := runIngestBench(1<<15, 4)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingest bench: file load coord bytes %d at n=%d vs %d at n=%d (growth %.2fx; O(p^2) wants ~1)\n",
		rec.Loads[0].CoordBytes, rec.Loads[0].N, rec.Loads[1].CoordBytes, rec.Loads[1].N, rec.CoordGrowthX)
	fmt.Printf("  stream: %.0f points/sec (chunk %d, window %d); serve p50/p99 %.0f/%.0f us idle, %.0f/%.0f us during ingest -> %s\n",
		rec.Stream.PointsPerSec, rec.Stream.Chunk, rec.Stream.Window,
		rec.Stream.IdleP50Us, rec.Stream.IdleP99Us, rec.Stream.DuringP50Us, rec.Stream.DuringP99Us, path)
	return nil
}
