package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pointsfile"
	"repro/internal/transport"
	"repro/internal/workload"
)

// IngestLoadRecord measures one worker-direct file load: each rank reads
// its own shard, the coordinator sees header metadata, splitters and
// control frames only.
type IngestLoadRecord struct {
	N            int     `json:"n"`
	BuildMs      float64 `json:"build_ms"`
	PointsPerSec float64 `json:"points_per_sec"`
	// CoordBytes is the coordinator's total wire traffic (both
	// directions) for the whole load+construct. Under the O(p²) claim it
	// is independent of N at fixed p — doubling N must not move it.
	CoordBytes         int64   `json:"coord_bytes"`
	CoordBytesPerPoint float64 `json:"coord_bytes_per_point"`
}

// IngestStreamRecord compares the two streaming clients on the same
// stream: the coordinator funnel (one synchronous resident call per
// chunk over the session connections) against the rank-parallel direct
// feeds (p independent connections, windowed in-flight chunks). Rates
// are STAGING rates — reader through last acknowledgement — not
// build-inclusive, since the level construct after staging is identical
// on both paths. SpeedupX reflects how much feed pipelining and
// per-rank sockets buy on this host: round-trip stalls and cross-rank
// encode/decode overlap, so it grows with core count and network
// latency and can sit near 1 on a single-core CPU-bound box.
type IngestStreamRecord struct {
	N                  int     `json:"n"`
	Chunk              int     `json:"chunk"`
	Window             int     `json:"window"`
	FunnelStageMs      float64 `json:"funnel_stage_ms"`
	FunnelPtsPerSec    float64 `json:"funnel_points_per_sec"`
	ParallelStageMs    float64 `json:"parallel_stage_ms"`
	ParallelPtsPerSec  float64 `json:"parallel_points_per_sec"`
	SpeedupX           float64 `json:"speedup_x"`
	ParallelFeedCalls  int64   `json:"parallel_feed_calls"`
	ParallelFeedPoints int64   `json:"parallel_feed_points"`
}

// IngestServeRecord is one row of the QoS sweep: a rank-parallel
// streaming load at one MaxShare setting with an open-loop probe
// running for the whole of the load. Samples are split by load phase,
// because MaxShare governs ingest STAGING: DuringP50Us is serve latency
// while the governed feeds are staging (the latency the QoS knob
// controls), BuildP50Us while the ungoverned level construct runs.
type IngestServeRecord struct {
	Share        float64 `json:"share"` // 0 = uncapped
	IngestMs     float64 `json:"ingest_ms"`
	StageMs      float64 `json:"stage_ms"`
	PointsPerSec float64 `json:"stage_points_per_sec"`
	DuringP50Us  float64 `json:"serve_during_p50_us"`
	DuringP99Us  float64 `json:"serve_during_p99_us"`
	QueriesStage int     `json:"queries_during_stage"`
	BuildP50Us   float64 `json:"serve_build_p50_us"`
	BuildP99Us   float64 `json:"serve_build_p99_us"`
	QueriesBuild int     `json:"queries_during_build"`
	// ThrottleWaits is the worker-side governor's sleep count for this
	// load (delta summed over workers); zero on the uncapped row.
	ThrottleWaits int64 `json:"throttle_waits"`
}

// IngestRecord is the machine-readable record of the ingest benchmark
// (BENCH_ingest.json).
type IngestRecord struct {
	Experiment string `json:"experiment"`
	Dims       int    `json:"dims"`
	P          int    `json:"p"`
	// Loads holds the worker-direct file loads at N and 2N; CoordGrowthX
	// is CoordBytes(2N)/CoordBytes(N) — ≈1 when coordinator traffic is
	// O(p²), 2 if the coordinator were shipping the points.
	Loads        []IngestLoadRecord `json:"loads"`
	CoordGrowthX float64            `json:"coord_growth_x"`
	Stream       IngestStreamRecord `json:"stream"`
	// Serve latency baseline (no load running, same open-loop probe) and
	// the QoS sweep rows. ProbeIntervalUs is calibrated to ~4x the idle
	// closed-loop service time so the open-loop schedule is feasible when
	// the cluster is healthy — backlog then measures load-induced stalls,
	// not a probe rate the host could never sustain.
	ProbeIntervalUs float64             `json:"probe_interval_us"`
	IdleP50Us       float64             `json:"serve_idle_p50_us"`
	IdleP99Us       float64             `json:"serve_idle_p99_us"`
	QueriesIdle     int                 `json:"queries_idle"`
	Serve           []IngestServeRecord `json:"serve"`
}

// usQuantile reads a latency quantile in microseconds from a
// nanosecond-valued obs histogram snapshot.
func usQuantile(s obs.HistSnapshot, q float64) float64 {
	return s.Quantile(q) / 1e3
}

// runIngestBench measures worker-direct ingest on a p-worker resident
// localhost cluster.
func runIngestBench(n, p int) (*IngestRecord, error) {
	rec := &IngestRecord{Experiment: "ingest", Dims: 2, P: p}
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	reg := obs.NewRegistry()
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true, Obs: reg})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	dir, err := os.MkdirTemp("", "rangebench-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Worker-direct file loads at N and 2N: the doubling probe for the
	// O(p²) coordinator-traffic claim.
	for _, nn := range []int{n, 2 * n} {
		pts := workload.Points(workload.PointSpec{N: nn, Dims: 2, Dist: workload.Clustered, Seed: 7})
		paths := make([]string, p)
		for r, blk := range core.CanonicalBlocks(pts, p) {
			paths[r] = filepath.Join(dir, fmt.Sprintf("shard-%d-%d.drpf", nn, r))
			if err := pointsfile.Save(paths[r], blk); err != nil {
				return nil, err
			}
		}
		mach, err := cl.NewMachine()
		if err != nil {
			return nil, err
		}
		outB, inB := cl.CoordBytes()
		start := time.Now()
		tree, err := core.BulkLoadFiles(mach, paths, core.BackendLayered)
		if err != nil {
			return nil, fmt.Errorf("file load n=%d: %w", nn, err)
		}
		wall := time.Since(start)
		out, in := cl.CoordBytes()
		lrec := IngestLoadRecord{
			N:            nn,
			BuildMs:      float64(wall.Microseconds()) / 1e3,
			PointsPerSec: float64(nn) / wall.Seconds(),
			CoordBytes:   (out - outB) + (in - inB),
		}
		lrec.CoordBytesPerPoint = float64(lrec.CoordBytes) / float64(nn)
		rec.Loads = append(rec.Loads, lrec)
		tree.Machine().Close()
	}
	if rec.Loads[0].CoordBytes > 0 {
		rec.CoordGrowthX = float64(rec.Loads[1].CoordBytes) / float64(rec.Loads[0].CoordBytes)
	}

	// Streaming fixtures. The stream is sized so staging busy time per
	// rank comfortably exceeds the governor's free burst (the capped
	// sweep rows must actually throttle), and the chunk is small enough
	// that per-chunk round-trip overhead is a real cost for the funnel
	// to pay and the feeds to pipeline away.
	const chunk, window, serveN, serveM = 256, 4, 1 << 12, 256
	streamN := 16 * n
	streamPts := workload.Points(workload.PointSpec{N: streamN, Dims: 2, Dist: workload.Clustered, Seed: 23})

	stageWall := func() time.Duration {
		return time.Duration(reg.Counter("ingest_stage_wall_ns_total").Value())
	}
	fedPoints := func() (points int64) {
		for r := 0; r < p; r++ {
			points += reg.Counter(fmt.Sprintf(`ingest_feed_points_total{rank="%d"}`, r)).Value()
		}
		return points
	}
	feedCalls := func() (calls int64) {
		for r := 0; r < p; r++ {
			calls += workers[r].Obs().Counter(fmt.Sprintf(`worker_feed_calls_total{rank="%d"}`, r)).Value()
		}
		return calls
	}
	throttles := func() (waits int64) {
		for _, w := range workers {
			waits += w.Obs().Counter("worker_ingest_throttle_waits_total").Value()
		}
		return waits
	}
	runLoad := func(cfg core.IngestConfig) (stage, whole time.Duration, err error) {
		mach, err := cl.NewMachine()
		if err != nil {
			return 0, 0, err
		}
		s0 := stageWall()
		t0 := time.Now()
		tree, err := core.BulkLoadWith(mach, core.SliceChunks(streamPts, chunk), core.BackendLayered, cfg)
		if err != nil {
			return 0, 0, err
		}
		whole = time.Since(t0)
		tree.Machine().Close()
		return stageWall() - s0, whole, nil
	}

	// settle drains the previous construct's garbage so its collection
	// pauses are not billed to the next timed leg — on a small host one
	// build's churn can otherwise swing the next measurement several-fold.
	settle := func() {
		runtime.GC()
		time.Sleep(100 * time.Millisecond)
	}

	// Funnel vs rank-parallel staging rate on the identical stream, best
	// of two alternated runs each.
	timedLoad := func(cfg core.IngestConfig, what string) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < 2; rep++ {
			settle()
			stage, _, err := runLoad(cfg)
			if err != nil {
				return 0, fmt.Errorf("%s stream load: %w", what, err)
			}
			if best == 0 || stage < best {
				best = stage
			}
		}
		return best, nil
	}
	funnelStage, err := timedLoad(core.IngestConfig{Window: window, Funnel: true}, "funnel")
	if err != nil {
		return nil, err
	}
	calls0, points0 := feedCalls(), fedPoints()
	parStage, err := timedLoad(core.IngestConfig{Window: window}, "parallel")
	if err != nil {
		return nil, err
	}
	rec.Stream = IngestStreamRecord{
		N: streamN, Chunk: chunk, Window: window,
		FunnelStageMs:      float64(funnelStage.Microseconds()) / 1e3,
		FunnelPtsPerSec:    float64(streamN) / funnelStage.Seconds(),
		ParallelStageMs:    float64(parStage.Microseconds()) / 1e3,
		ParallelPtsPerSec:  float64(streamN) / parStage.Seconds(),
		ParallelFeedCalls:  (feedCalls() - calls0) / 2, // per rep; two reps ran
		ParallelFeedPoints: (fedPoints() - points0) / 2,
	}
	if funnelStage > 0 && parStage > 0 {
		rec.Stream.SpeedupX = funnelStage.Seconds() / parStage.Seconds()
	}

	// Serving fixture: a resident tree answering single-count queries.
	servePts := workload.Points(workload.PointSpec{N: serveN, Dims: 2, Dist: workload.Clustered, Seed: 13})
	serveMach, err := cl.NewMachine()
	if err != nil {
		return nil, err
	}
	serveTree, err := core.BulkLoad(serveMach, core.SliceChunks(servePts, chunk), core.BackendLayered, window)
	if err != nil {
		return nil, err
	}
	defer serveTree.Machine().Close()
	boxes := workload.Boxes(workload.QuerySpec{M: serveM, Dims: 2, N: serveN, Selectivity: 0.02, Seed: 17})
	oneQuery := func(i int) {
		serveTree.CountBatch(boxes[i%serveM : i%serveM+1])
	}

	// Calibrate the open-loop probe interval: ~4x the idle closed-loop
	// service time, floored at 5ms. An interval below the service time
	// would make the probe itself the overload and report queueing
	// delay even on an idle cluster.
	settle()
	oneQuery(0) // warm
	calN, calT0 := 25, time.Now()
	for i := 0; i < calN; i++ {
		oneQuery(i)
	}
	probeIvl := 4 * time.Since(calT0) / time.Duration(calN)
	if probeIvl < 5*time.Millisecond {
		probeIvl = 5 * time.Millisecond
	}
	if probeIvl > 50*time.Millisecond {
		probeIvl = 50 * time.Millisecond
	}
	rec.ProbeIntervalUs = float64(probeIvl.Microseconds())

	// Open-loop probe: queries issue on a fixed schedule and each latency
	// is measured from its SCHEDULED time — a load-induced stall shows up
	// as queueing delay on every query behind it instead of as fewer
	// samples (no coordinated omission). classify routes each sample to a
	// phase histogram at its completion.
	probe := func(stop <-chan struct{}, classify func() *obs.Histogram) int {
		start := time.Now()
		for i := 0; ; i++ {
			target := start.Add(time.Duration(i) * probeIvl)
			if d := time.Until(target); d > 0 {
				select {
				case <-stop:
					return i
				case <-time.After(d):
				}
			} else {
				select {
				case <-stop:
					return i
				default:
				}
			}
			oneQuery(i)
			classify().Observe(time.Since(target).Nanoseconds())
		}
	}

	// Idle baseline over a fixed 1s window, same probe.
	idleHist := reg.Histogram(`ingest_serve_latency_ns{phase="idle"}`)
	idleStop := make(chan struct{})
	time.AfterFunc(time.Second, func() { close(idleStop) })
	rec.QueriesIdle = probe(idleStop, func() *obs.Histogram { return idleHist })
	idle := idleHist.Snapshot()
	rec.IdleP50Us, rec.IdleP99Us = usQuantile(idle, 0.50), usQuantile(idle, 0.99)

	// The QoS sweep: the same rank-parallel load at several MaxShare
	// settings, probed open-loop for the whole of each load. The fed-
	// points counters mark the staging→construct phase boundary.
	for _, share := range []float64{0, 0.25, 0.1, 0.05} {
		settle()
		stageH := reg.Histogram(fmt.Sprintf(`ingest_serve_latency_ns{share="%g",phase="stage"}`, share))
		buildH := reg.Histogram(fmt.Sprintf(`ingest_serve_latency_ns{share="%g",phase="build"}`, share))
		fedTarget := fedPoints() + int64(streamN)
		w0 := throttles()
		stop := make(chan struct{})
		probeDone := make(chan struct{})
		go func() {
			probe(stop, func() *obs.Histogram {
				if fedPoints() < fedTarget {
					return stageH
				}
				return buildH
			})
			close(probeDone)
		}()
		stage, whole, err := runLoad(core.IngestConfig{Window: window, MaxShare: share})
		close(stop)
		<-probeDone
		if err != nil {
			return nil, fmt.Errorf("swept stream load (share=%g): %w", share, err)
		}
		sSnap, bSnap := stageH.Snapshot(), buildH.Snapshot()
		rec.Serve = append(rec.Serve, IngestServeRecord{
			Share:         share,
			IngestMs:      float64(whole.Microseconds()) / 1e3,
			StageMs:       float64(stage.Microseconds()) / 1e3,
			PointsPerSec:  float64(streamN) / stage.Seconds(),
			DuringP50Us:   usQuantile(sSnap, 0.50),
			DuringP99Us:   usQuantile(sSnap, 0.99),
			QueriesStage:  int(sSnap.Count),
			BuildP50Us:    usQuantile(bSnap, 0.50),
			BuildP99Us:    usQuantile(bSnap, 0.99),
			QueriesBuild:  int(bSnap.Count),
			ThrottleWaits: throttles() - w0,
		})
	}
	return rec, nil
}

// writeIngestJSON runs the ingest benchmark and writes the record.
func writeIngestJSON(path string) error {
	rec, err := runIngestBench(1<<15, 4)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingest bench: file load coord bytes %d at n=%d vs %d at n=%d (growth %.2fx; O(p^2) wants ~1)\n",
		rec.Loads[0].CoordBytes, rec.Loads[0].N, rec.Loads[1].CoordBytes, rec.Loads[1].N, rec.CoordGrowthX)
	fmt.Printf("  stream n=%d chunk=%d: funnel %.2fM pts/s, rank-parallel %.2fM pts/s (%.1fx, %d feed calls)\n",
		rec.Stream.N, rec.Stream.Chunk, rec.Stream.FunnelPtsPerSec/1e6, rec.Stream.ParallelPtsPerSec/1e6,
		rec.Stream.SpeedupX, rec.Stream.ParallelFeedCalls)
	fmt.Printf("  serve idle p50/p99 %.0f/%.0f us (%d queries, probe every %.0f us)\n",
		rec.IdleP50Us, rec.IdleP99Us, rec.QueriesIdle, rec.ProbeIntervalUs)
	for _, s := range rec.Serve {
		fmt.Printf("  share=%-4g stage p50/p99 %.0f/%.0f us (%d q), build p50/p99 %.0f/%.0f us (%d q), %d throttle waits, stage %.0f ms\n",
			s.Share, s.DuringP50Us, s.DuringP99Us, s.QueriesStage, s.BuildP50Us, s.BuildP99Us, s.QueriesBuild,
			s.ThrottleWaits, s.StageMs)
	}
	fmt.Printf("  -> %s\n", path)
	return nil
}
