// Command rangesearch is the end-user CLI: build a distributed range tree
// over generated or CSV-loaded points and answer a batch of box queries in
// one of the paper's three modes, reporting the machine metrics the CGM
// model cares about (rounds, h, modelled time).
//
// Usage:
//
//	rangesearch -n 4096 -d 2 -p 8 -queries 1024 -mode count
//	rangesearch -csv points.csv -p 4 -queries 100 -mode sum
//	rangesearch -n 1024 -d 2 -mode report -selectivity 0.02
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/semigroup"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 4096, "generated point count (ignored with -csv)")
	d := flag.Int("d", 2, "dimensions (ignored with -csv)")
	dist := flag.String("dist", "uniform", "point distribution: uniform, clustered, correlated")
	csvPath := flag.String("csv", "", "CSV file of raw float coordinates, one point per row")
	p := flag.Int("p", 8, "processors")
	queries := flag.Int("queries", 256, "number of box queries")
	selectivity := flag.Float64("selectivity", 0.01, "target query selectivity")
	mode := flag.String("mode", "count", "result mode: count, report or sum")
	seed := flag.Int64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print per-query results")
	flag.Parse()

	pts, dims := loadPoints(*csvPath, *n, *d, *dist, *seed)
	boxes := workload.Boxes(workload.QuerySpec{
		M: *queries, Dims: dims, N: len(pts), Selectivity: *selectivity, Seed: *seed,
	})

	mach := cgm.New(cgm.Config{P: *p})
	start := time.Now()
	dt := core.Build(mach, pts)
	buildWall := time.Since(start)
	buildMetrics := mach.Metrics()
	mach.ResetMetrics()

	fmt.Printf("built distributed range tree: n=%d d=%d p=%d grain=%d\n",
		len(pts), dims, *p, dt.Grain())
	fmt.Printf("  hat %d nodes / forest %d elements | construct: %d rounds, max h %d, wall %v\n\n",
		dt.HatNodeCount(), dt.ElemCount(), buildMetrics.CommRounds(), buildMetrics.MaxH(), buildWall.Round(time.Millisecond))

	start = time.Now()
	switch *mode {
	case "count":
		counts := dt.CountBatch(boxes)
		total := int64(0)
		for i, c := range counts {
			total += c
			if *verbose {
				fmt.Printf("query %4d %v -> %d points\n", i, boxes[i], c)
			}
		}
		fmt.Printf("count mode: %d queries, %d total matches\n", len(boxes), total)
	case "sum":
		h := core.PrepareAssociative(dt, semigroup.FloatSum(), workload.WeightOf)
		sums := h.Batch(boxes)
		grand := 0.0
		for i, s := range sums {
			grand += s
			if *verbose {
				fmt.Printf("query %4d %v -> sum %.2f\n", i, boxes[i], s)
			}
		}
		fmt.Printf("sum mode: %d queries, grand total %.2f\n", len(boxes), grand)
	case "report":
		results, perProc := dt.ReportBatchBalance(boxes)
		k := 0
		for i, r := range results {
			k += len(r)
			if *verbose {
				fmt.Printf("query %4d %v -> %d points\n", i, boxes[i], len(r))
			}
		}
		fmt.Printf("report mode: %d queries, k=%d pairs; per-processor pairs %v\n", len(boxes), k, perProc)
	default:
		fmt.Fprintf(os.Stderr, "rangesearch: unknown mode %q (want count, report or sum)\n", *mode)
		os.Exit(2)
	}
	wall := time.Since(start)
	mt := mach.Metrics()
	fmt.Printf("search: %d rounds, max h %d, modelled time %v, wall %v\n",
		mt.CommRounds(), mt.MaxH(),
		mt.ModelTime(mach.G(), mach.L()).Round(time.Microsecond),
		wall.Round(time.Millisecond))
}

// loadPoints reads raw CSV floats or generates a synthetic set, returning
// rank-normalized points.
func loadPoints(path string, n, d int, dist string, seed int64) ([]geom.Point, int) {
	if path == "" {
		var dd workload.Distribution
		switch dist {
		case "uniform":
			dd = workload.Uniform
		case "clustered":
			dd = workload.Clustered
		case "correlated":
			dd = workload.Correlated
		default:
			fmt.Fprintf(os.Stderr, "rangesearch: unknown distribution %q\n", dist)
			os.Exit(2)
		}
		return workload.Points(workload.PointSpec{N: n, Dims: d, Dist: dd, Seed: seed}), d
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangesearch: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangesearch: reading %s: %v\n", path, err)
		os.Exit(1)
	}
	raw := make([][]float64, 0, len(rows))
	for i, row := range rows {
		vals := make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rangesearch: row %d col %d: %v\n", i+1, j+1, err)
				os.Exit(1)
			}
			vals[j] = v
		}
		raw = append(raw, vals)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "rangesearch: CSV is empty")
		os.Exit(1)
	}
	pts, _ := geom.NormalizeFloat64(raw)
	return pts, len(raw[0])
}
