// Command rangesearch is the end-user CLI: build a distributed range tree
// over generated or CSV-loaded points and answer a batch of box queries in
// one of the paper's three modes, reporting the machine metrics the CGM
// model cares about (rounds, h, modelled time) — or run as a line-oriented
// query service backed by the micro-batching engine.
//
// Usage:
//
//	rangesearch -n 4096 -d 2 -p 8 -queries 1024 -mode count
//	rangesearch -csv points.csv -p 4 -queries 100 -mode sum
//	rangesearch -n 1024 -d 2 -mode report -selectivity 0.02
//	rangesearch -n 4096 -d 2 -p 8 -mode serve -batch 64 -delay 2ms
//	rangesearch -n 4096 -d 2 -mode serve -mutable -dir /tmp/rangedb
//
// In serve mode, stdin is read line by line; each line is one query
//
//	count|sum|report lo1,...,lod hi1,...,hid
//
// with rank-space integer coordinates (0..n-1). One answer line is
// written per query, in input order; concurrent pipelined submission
// lets the engine micro-batch them. Engine statistics go to stderr on
// EOF. A `trace` line (optionally `trace <id>`) prints the span tree of
// the most recent (or given) dispatched batch — which coordinator
// exchanges ran, and what each worker rank spent on emit, routing,
// gathering and collect within every superstep.
//
// Observability: -debug-addr serves /metrics (Prometheus text),
// /healthz and /debug/pprof over HTTP; -slow-query logs the span tree
// of any batch at least that slow; -stats-interval prints periodic
// one-line serving summaries (q/s, p50/p99, cache hit rate, compaction
// backlog) to stderr.
//
// Cluster health plane: with -workers every rangeworker is also watched
// over a beacon stream (period -beacon-interval); the coordinator runs
// the liveness state machine (healthy → suspect → down), merges the
// beacon-carried worker registries with its own, and serves the cluster
// view from /cluster/metrics, /cluster/healthz, /cluster/events and
// /cluster/top on -debug-addr. /healthz degrades (HTTP 503, "ok": false)
// on a failed store compaction, an aborted CGM session, or a down
// worker. Structured cluster events (worker_suspect/down/recovered,
// session_abort, compaction, checkpoint, ingest begin/end) append to a
// size-capped JSONL archive at <dir>/events.jsonl when -dir is set; the
// serve command `events [n]` prints the recent tail.
//
//	rangesearch -mode top -top-addr 127.0.0.1:9090
//
// runs rangetop: a 1s-refresh live terminal dashboard (per-worker rows,
// cluster summary, recent events) driven entirely by a coordinator's
// /cluster/top endpoint — it opens no cluster connection of its own.
//
// With -mutable the engine serves from the updatable store instead of a
// frozen tree, and three more commands work (sum does not — tombstone
// subtraction needs invertibility):
//
//	insert id x1,...,xd     add a point (IDs must be fresh)
//	delete id x1,...,xd     remove a live point
//	checkpoint              persist a snapshot and rotate the WAL
//
// -dir makes the mutable store durable: mutations are WAL-logged and a
// later -mutable -dir run recovers the exact state (generated points
// seed the store only when the directory starts empty).
//
// With -workers host:port,… the machine is not simulated in-process:
// every superstep routes over TCP through that many rangeworker
// processes (the machine width becomes the worker count, overriding
// -p). All modes work — batch queries, serve, and -mutable serving,
// whose level builds and query fan-outs then run on the cluster.
//
// In serve mode SIGINT/SIGTERM shuts down cleanly: the engine drains
// its accepted queries, a -mutable -dir store takes a final checkpoint,
// and the usual statistics are printed.
package main

import (
	"bufio"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/aggregates"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
	obscluster "repro/internal/obs/cluster"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 4096, "generated point count (ignored with -csv)")
	d := flag.Int("d", 2, "dimensions (ignored with -csv)")
	dist := flag.String("dist", "uniform", "point distribution: uniform, clustered, correlated")
	csvPath := flag.String("csv", "", "CSV file of raw float coordinates, one point per row")
	p := flag.Int("p", 8, "processors")
	queries := flag.Int("queries", 256, "number of box queries")
	selectivity := flag.Float64("selectivity", 0.01, "target query selectivity")
	mode := flag.String("mode", "count", "result mode: count, report, sum, serve, or top (live cluster dashboard via -top-addr)")
	seed := flag.Int64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print per-query results")
	batch := flag.Int("batch", engine.DefaultBatchSize, "serve mode: flush batch size")
	delay := flag.Duration("delay", engine.DefaultMaxDelay, "serve mode: flush deadline")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "serve mode: LRU answer-cache entries (negative disables)")
	mutable := flag.Bool("mutable", false, "serve mode: serve from the updatable store (enables insert/delete/checkpoint)")
	dir := flag.String("dir", "", "serve mode with -mutable: store directory (WAL + checkpoints); empty = ephemeral")
	workers := flag.String("workers", "", "comma-separated rangeworker addresses; supersteps run over TCP on these processes (machine width = worker count, overriding -p)")
	resident := flag.Bool("resident", false, "worker-resident execution: the forest lives where the SPMD programs run (worker memory with -workers) instead of coordinator memory")
	debugAddr := flag.String("debug-addr", "", "HTTP address for the coordinator's /metrics, /healthz and /debug/pprof (empty disables)")
	slowQuery := flag.Duration("slow-query", 0, "serve mode: log the span tree of any batch at least this slow (0 disables)")
	statsInterval := flag.Duration("stats-interval", 0, "serve mode: print a one-line stats summary to stderr at this period (0 disables)")
	ingestShare := flag.Float64("ingest-share", 0, "serve mode with -mutable: cap in (0,1) on the fraction of worker wall-time bulk-load ingest may consume, keeping serving responsive during loads (0 = uncapped)")
	beaconInterval := flag.Duration("beacon-interval", obscluster.DefaultInterval, "cluster health: worker beacon period; liveness thresholds (suspect, down) scale with it")
	topAddr := flag.String("top-addr", "", "-mode top: coordinator admin address to watch (its -debug-addr, serving /cluster/top)")
	flag.Parse()

	if *mode == "top" {
		addr := *topAddr
		if addr == "" {
			addr = *debugAddr
		}
		if addr == "" {
			fmt.Fprintln(os.Stderr, "rangesearch: -mode top needs -top-addr (the target coordinator's -debug-addr)")
			os.Exit(2)
		}
		runTop(addr, time.Second)
		return
	}

	pts, dims := loadPoints(*csvPath, *n, *d, *dist, *seed)
	// One registry + tracer for the whole coordinator process: the
	// machine, engine, store, codec and admin endpoint all share it, so
	// /metrics is the union and the `trace` command sees every span.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	reg.Collect(wire.EmitStats)

	// The event archive persists beside the store when one is durable;
	// otherwise it is an in-memory ring, still served over /cluster/events
	// and the `events` command.
	evPath := ""
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rangesearch: %v\n", err)
			os.Exit(1)
		}
		evPath = filepath.Join(*dir, "events.jsonl")
	}
	evlog, err := obscluster.OpenEventLog(evPath, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangesearch: event archive: %v\n", err)
		os.Exit(1)
	}
	defer evlog.Close()

	hs := &healthSrc{mode: *mode, p: *p}
	// session_abort doubles as the poisoned-machine flag for /healthz:
	// the sink sees every abort on its way into the archive.
	events := func(kind string, rank int, detail string) {
		if kind == "session_abort" {
			hs.noteAbort(detail)
		}
		evlog.Emit(kind, rank, detail)
	}

	engCfg := engine.Config{BatchSize: *batch, MaxDelay: *delay, CacheSize: *cacheSize,
		Obs: reg, Tracer: tracer, SlowQuery: *slowQuery}
	machCfg := cgm.Config{P: *p, Resident: *resident, Obs: reg, Tracer: tracer, Events: events}

	var cluster *transport.Cluster
	var mon *obscluster.Monitor
	if *workers != "" {
		addrs := strings.Split(*workers, ",")
		clCfg := machCfg
		clCfg.P = 0 // the worker count is the machine width
		var err error
		cluster, err = transport.DialCluster(addrs, clCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangesearch: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		*p = cluster.P()
		// The health plane rides its own beacon streams, not the session
		// connections: a worker busy in a superstep still beacons, and a
		// dead one is detected even with no query in flight.
		mon = obscluster.NewMonitor(obscluster.MonitorConfig{
			Addrs: addrs, Interval: *beaconInterval, Events: evlog, Obs: reg})
		watcher := transport.WatchHealth(addrs, *beaconInterval, mon)
		defer mon.Close()
		defer watcher.Close()
		hs.attachCluster(cluster, mon, addrs, *p)
		exMode := "fabric"
		if *resident {
			exMode = "resident"
		}
		fmt.Printf("cluster: %d workers, %s mode (%s)\n", cluster.P(), exMode, strings.Join(addrs, " "))
	}

	if *debugAddr != "" {
		admin, err := obs.ServeAdmin(*debugAddr, reg, hs.health)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangesearch: debug listener: %v\n", err)
			os.Exit(1)
		}
		defer admin.Close()
		agg := &obscluster.Aggregator{Mon: mon, Events: evlog, Local: reg, LocalHealth: hs.local}
		agg.Mount(admin)
		fmt.Printf("metrics, health and pprof on http://%s\n", admin.Addr())
	}

	if *mode == "serve" && *mutable {
		serveMutable(pts, dims, *p, *dir, cluster, *resident, engCfg, reg, tracer, *statsInterval, *ingestShare, hs, evlog, events)
		return
	}
	boxes := workload.Boxes(workload.QuerySpec{
		M: *queries, Dims: dims, N: len(pts), Selectivity: *selectivity, Seed: *seed,
	})

	var mach *cgm.Machine
	if cluster != nil {
		var err error
		mach, err = cluster.NewMachine()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangesearch: %v\n", err)
			os.Exit(1)
		}
	} else {
		mach = cgm.New(machCfg)
	}
	start := time.Now()
	dt := core.Build(mach, pts)
	buildWall := time.Since(start)
	buildMetrics := mach.Metrics()
	mach.ResetMetrics()

	fmt.Printf("built distributed range tree: n=%d d=%d p=%d grain=%d\n",
		len(pts), dims, *p, dt.Grain())
	fmt.Printf("  hat %d nodes / forest %d elements | construct: %d rounds, max h %d, wall %v\n\n",
		dt.HatNodeCount(), dt.ElemCount(), buildMetrics.CommRounds(), buildMetrics.MaxH(), buildWall.Round(time.Millisecond))

	if *mode == "serve" {
		serve(dt, dims, engCfg, reg, *statsInterval, evlog)
		return
	}

	start = time.Now()
	switch *mode {
	case "count":
		counts := dt.CountBatch(boxes)
		total := int64(0)
		for i, c := range counts {
			total += c
			if *verbose {
				fmt.Printf("query %4d %v -> %d points\n", i, boxes[i], c)
			}
		}
		fmt.Printf("count mode: %d queries, %d total matches\n", len(boxes), total)
	case "sum":
		h := prepareSum(dt)
		sums := h.Batch(boxes)
		grand := 0.0
		for i, s := range sums {
			grand += s
			if *verbose {
				fmt.Printf("query %4d %v -> sum %.2f\n", i, boxes[i], s)
			}
		}
		fmt.Printf("sum mode: %d queries, grand total %.2f\n", len(boxes), grand)
	case "report":
		results, perProc := dt.ReportBatchBalance(boxes)
		k := 0
		for i, r := range results {
			k += len(r)
			if *verbose {
				fmt.Printf("query %4d %v -> %d points\n", i, boxes[i], len(r))
			}
		}
		fmt.Printf("report mode: %d queries, k=%d pairs; per-processor pairs %v\n", len(boxes), k, perProc)
	default:
		fmt.Fprintf(os.Stderr, "rangesearch: unknown mode %q (want count, report, sum or serve)\n", *mode)
		os.Exit(2)
	}
	wall := time.Since(start)
	mt := mach.Metrics()
	fmt.Printf("search: %d rounds, max h %d, modelled time %v, wall %v\n",
		mt.CommRounds(), mt.MaxH(),
		mt.ModelTime(mach.G(), mach.L()).Round(time.Microsecond),
		wall.Round(time.Millisecond))
}

// serve runs the line-oriented query loop on top of the micro-batching
// engine over a frozen tree.
func serve(dt *core.Tree, dims int, cfg engine.Config, reg *obs.Registry, statsInterval time.Duration, evlog *obscluster.EventLog) {
	h := prepareSum(dt)
	eng := engine.WithAggregate(dt, h, cfg)
	stopStats := startStatsLoop(statsInterval, reg, eng.Stats, nil)
	serveLoop(func(line string) string {
		if fields := strings.Fields(line); fields[0] == "events" {
			return answerEvents(evlog, fields)
		}
		return answerLine(eng, dims, line)
	}, nil,
		func() { stopStats(); eng.Close() },
		func() { printEngineStats(eng.Stats()) })
}

// startStatsLoop prints a one-line serving summary to stderr every
// interval (0 disables): query rate, latency quantiles over all modes
// (merged from the per-mode obs histograms the engine feeds), cache hit
// rate, and — when serving a store — the compaction backlog. The
// returned function stops the loop.
func startStatsLoop(interval time.Duration, reg *obs.Registry, stats func() engine.Stats, st *store.Store) func() {
	if interval <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		lat := []*obs.Histogram{
			reg.Histogram(`engine_query_latency_ns{mode="count"}`),
			reg.Histogram(`engine_query_latency_ns{mode="aggregate"}`),
			reg.Histogram(`engine_query_latency_ns{mode="report"}`),
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		prev := stats()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			cur := stats()
			qps := float64(cur.Submitted-prev.Submitted) / interval.Seconds()
			snap := lat[0].Snapshot().Merge(lat[1].Snapshot()).Merge(lat[2].Snapshot())
			hitRate := 0.0
			if cur.Submitted > 0 {
				hitRate = 100 * float64(cur.CacheHits) / float64(cur.Submitted)
			}
			line := fmt.Sprintf("stats: %.1f q/s | p50 %v p99 %v | cache %.1f%% hit",
				qps,
				time.Duration(snap.Quantile(0.50)).Round(time.Microsecond),
				time.Duration(snap.Quantile(0.99)).Round(time.Microsecond),
				hitRate)
			if st != nil {
				ss := st.Stats()
				line += fmt.Sprintf(" | compaction backlog %d (mem %d + shadow %d), %d levels",
					ss.Memtable+ss.Shadow, ss.Memtable, ss.Shadow, ss.Levels)
			}
			fmt.Fprintln(os.Stderr, line)
			prev = cur
		}
	}()
	return func() { once.Do(func() { close(stop) }) }
}

// prepareSum prepares the CLI's standard sum aggregate: the registered
// "weight-sum" aggregate (required on resident trees, identical on
// fabric ones).
func prepareSum(dt *core.Tree) *core.AggHandle[float64] {
	return core.PrepareAssociativeNamed[float64](dt, aggregates.WeightSum)
}

// serveMutable serves from the updatable store: queries pipeline through
// the engine as usual, while insert/delete/checkpoint commands apply
// synchronously in input order, so every later line observes them.
func serveMutable(pts []geom.Point, dims, p int, dir string, cluster *transport.Cluster, resident bool, cfg engine.Config, reg *obs.Registry, tracer *obs.Tracer, statsInterval time.Duration, ingestShare float64, hs *healthSrc, evlog *obscluster.EventLog, events obs.EventSink) {
	// A durable store knows its own dimensionality: let the checkpoint
	// decide first so a rerun need not repeat the original -d, and fall
	// back to the flag only for a directory with no checkpoint yet.
	storeCfg := func(d int) store.Config {
		c := store.Config{Dims: d, P: p, Obs: reg, IngestMaxShare: ingestShare, Events: events}
		if cluster != nil {
			c.Provider = cluster
		} else {
			// Explicit local provider (even non-resident) so level
			// machines inherit the registry and tracer.
			c.Provider = cgm.NewLocalProvider(cgm.Config{P: p, Resident: resident, Obs: reg, Tracer: tracer})
		}
		return c
	}
	st, err := store.Open(dir, storeCfg(0))
	if errors.Is(err, store.ErrNoDims) {
		st, err = store.Open(dir, storeCfg(dims))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangesearch: %v\n", err)
		os.Exit(1)
	}
	if st.Dims() != dims {
		fmt.Printf("store: serving %d-dimensional data from its checkpoint (-d %d ignored)\n", st.Dims(), dims)
		dims = st.Dims()
	}
	// Seed only a brand-new store (version 0 = no mutation and no
	// checkpoint ever); a durable store recovered to any prior state —
	// including a legitimately emptied one — is served as recovered.
	if st.Version() == 0 && st.LiveN() == 0 {
		if _, err := st.InsertBatch(pts); err != nil {
			fmt.Fprintf(os.Stderr, "rangesearch: seeding store: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("store: recovered %d live points at version %d\n", st.LiveN(), st.Version())
	}
	hs.setStore(st)
	eng := engine.NewStore(st, cfg)
	stopStats := startStatsLoop(statsInterval, reg, eng.Stats, st)
	isMutation := func(line string) bool {
		switch strings.Fields(line)[0] {
		case "insert", "delete", "checkpoint":
			return true
		}
		return false
	}
	serveLoop(func(line string) string {
		if fields := strings.Fields(line); fields[0] == "events" {
			return answerEvents(evlog, fields)
		}
		return answerMutableLine(eng, st, dims, line)
	}, isMutation,
		func() { stopStats(); eng.Close() },
		func() {
			// When durable, persist a final checkpoint so a restart
			// recovers this exact state without WAL replay.
			if dir != "" {
				if err := st.Checkpoint(); err != nil {
					fmt.Fprintf(os.Stderr, "rangesearch: final checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "rangesearch: final checkpoint at version %d\n", st.Version())
				}
			}
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rangesearch: closing store: %v\n", err)
			}
			printEngineStats(eng.Stats())
			ss := st.Stats()
			fmt.Fprintf(os.Stderr, "store: version %d | %d live, %d levels, %d memtable, %d tombstones | %d flushes, %d folds, %d checkpoints\n",
				ss.Seq, ss.Live, ss.Levels, ss.Memtable, ss.Shadow, ss.Flushes, ss.Compactions, ss.Checkpoints)
		})
}

func printEngineStats(st engine.Stats) {
	fmt.Fprintf(os.Stderr, "engine: %d queries | cache %d hit / %d miss | %d batches (%d by size, %d by deadline)\n",
		st.Submitted, st.CacheHits, st.CacheMisses, st.Batches, st.SizeFlushes, st.DeadlineFlushes)
}

// serveLoop reads stdin line by line. Lines answer on their own
// goroutines so in-flight queries pipeline into engine batches; answers
// are written in input order. Lines matching mutation are instead
// applied inline before the next line is read, preserving
// read-your-writes ordering.
//
// Both exits share one shutdown sequence — drain (stop the engine, so
// every accepted query's answer resolves), write the pending answers,
// then finish (final checkpoint / close / stats). EOF runs it and
// returns; SIGINT/SIGTERM runs it and exits 0, with signal dispositions
// restored first so a second signal kills the process outright if the
// drain wedges (e.g. a cluster worker gone unreachable).
func serveLoop(answer func(string) string, mutation func(string) bool, drain, finish func()) {
	type pending struct{ ch chan string }
	queue := make(chan pending, 1024)
	var closing atomic.Bool // set on signal: the scanner stops accepting lines
	var scanErr error
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if closing.Load() {
				return // shutting down: lines past the cut are not accepted
			}
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			p := pending{ch: make(chan string, 1)}
			queue <- p
			if mutation != nil && mutation(line) {
				p.ch <- answer(line)
				continue
			}
			go func(line string) { p.ch <- answer(line) }(line)
		}
		scanErr = sc.Err() // before close: visible to the drain loop's end
		close(queue)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	w := bufio.NewWriter(os.Stdout)
	// gracefulExit answers what was accepted before the cut: closing
	// stops the scanner from accepting further lines, and every entry
	// it already enqueued (or enqueues within the grace window while
	// mid-line) is answered — a mutation is enqueued before it is
	// applied, so an applied-but-unacknowledged mutation cannot slip
	// through. Only lines the scanner never accepted go unanswered.
	gracefulExit := func(s os.Signal, head *pending) {
		signal.Stop(sig)
		closing.Store(true)
		fmt.Fprintf(os.Stderr, "rangesearch: %v: draining engine before exit (repeat to force quit)\n", s)
		drain()
		if head != nil {
			fmt.Fprintln(w, <-head.ch)
		}
		for {
			select {
			case p, ok := <-queue:
				if ok {
					fmt.Fprintln(w, <-p.ch)
					continue
				}
			case <-time.After(200 * time.Millisecond):
				// Idle for a whole grace window: nothing else was
				// accepted before the closing flag took effect.
			}
			break
		}
		w.Flush()
		finish()
		os.Exit(0)
	}
	for {
		select {
		case p, ok := <-queue:
			if !ok { // EOF: stdin is done and every entry was printed
				signal.Stop(sig)
				drain()
				w.Flush()
				finish()
				if scanErr != nil {
					fmt.Fprintf(os.Stderr, "rangesearch: reading stdin: %v (remaining input dropped)\n", scanErr)
					os.Exit(1)
				}
				return
			}
			select {
			case line := <-p.ch:
				fmt.Fprintln(w, line)
				if len(queue) == 0 {
					w.Flush()
				}
			case s := <-sig:
				gracefulExit(s, &p)
			}
		case s := <-sig:
			gracefulExit(s, nil)
		}
	}
}

// answerTrace handles the `trace [id]` serve command: the span tree of
// the given (default most recent) traced batch.
func answerTrace(trace func(uint64) string, fields []string) string {
	var id uint64
	if len(fields) > 2 {
		return "error: want `trace` or `trace <id>`"
	}
	if len(fields) == 2 {
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return fmt.Sprintf("error: trace id %q: %v", fields[1], err)
		}
		id = v
	}
	return trace(id)
}

// healthSrc is the coordinator's /healthz source: static identity plus
// the live pieces (store, cluster, monitor) attached as they come up.
// OK turns false on a failed store compaction, an aborted query batch,
// an aborted CGM session, or a worker aged to down — the degraded
// conditions a load balancer should route away from.
type healthSrc struct {
	mu        sync.Mutex
	mode      string
	p         int
	workers   []string
	cluster   *transport.Cluster
	mon       *obscluster.Monitor
	st        *store.Store
	abortInfo string
}

func (h *healthSrc) attachCluster(cl *transport.Cluster, mon *obscluster.Monitor, addrs []string, p int) {
	h.mu.Lock()
	h.cluster, h.mon, h.workers, h.p = cl, mon, addrs, p
	h.mu.Unlock()
}

func (h *healthSrc) setStore(st *store.Store) {
	h.mu.Lock()
	h.st = st
	h.mu.Unlock()
}

func (h *healthSrc) noteAbort(detail string) {
	h.mu.Lock()
	h.abortInfo = detail
	h.mu.Unlock()
}

// localDetail reports process-local health — the serving store and the
// session-abort flag — without the worker liveness that health() and the
// cluster aggregator add themselves.
func (h *healthSrc) localDetail() (bool, map[string]any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ok := true
	detail := map[string]any{"role": "coordinator", "mode": h.mode, "p": h.p}
	if h.abortInfo != "" {
		ok = false
		detail["session_abort"] = h.abortInfo
	}
	if h.st != nil {
		ss := h.st.Stats()
		detail["store"] = map[string]any{"version": ss.Seq, "live": ss.Live, "levels": ss.Levels}
		if ss.CompactErr != "" {
			ok = false
			detail["compact_err"] = ss.CompactErr
		}
		if ss.QueryErr != "" {
			ok = false
			detail["query_err"] = ss.QueryErr
		}
	}
	if h.cluster != nil {
		detail["workers"] = h.workers
		detail["sessions_open"] = h.cluster.Open()
	}
	return ok, detail
}

// local adapts localDetail to the aggregator's LocalHealth signature.
func (h *healthSrc) local() (bool, any) {
	ok, detail := h.localDetail()
	return ok, detail
}

// health is the /healthz payload: local health plus worker liveness.
// Suspect workers are reported but tolerated (the watcher may be
// mid-redial); a down worker degrades the endpoint.
func (h *healthSrc) health() any {
	ok, detail := h.localDetail()
	h.mu.Lock()
	mon := h.mon
	h.mu.Unlock()
	if rows := mon.Snapshot(); len(rows) > 0 {
		states := make([]string, len(rows))
		down := 0
		for _, w := range rows {
			states[w.Rank] = w.State.String()
			if w.State == obscluster.StateDown {
				down++
			}
		}
		detail["worker_states"] = states
		if down > 0 {
			ok = false
			detail["workers_down"] = down
		}
	}
	return obs.Health{OK: ok, Detail: detail}
}

// answerEvents handles the `events [n]` serve command: the archive tail,
// oldest first, one event per line.
func answerEvents(ev *obscluster.EventLog, fields []string) string {
	n := 10
	if len(fields) > 2 {
		return "error: want `events` or `events <n>`"
	}
	if len(fields) == 2 {
		v, err := strconv.Atoi(fields[1])
		if err != nil || v <= 0 {
			return fmt.Sprintf("error: event count %q must be a positive integer", fields[1])
		}
		n = v
	}
	evs := ev.Recent(n)
	if len(evs) == 0 {
		return "events: none recorded"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d most recent", len(evs))
	for _, e := range evs {
		rank := "cluster"
		if e.Rank >= 0 {
			rank = fmt.Sprintf("r%d", e.Rank)
		}
		fmt.Fprintf(&b, "\n  %s %-16s %-8s %s", e.T.Format("15:04:05.000"), e.Kind, rank, e.Detail)
	}
	return b.String()
}

// runTop is `-mode top` (rangetop): a live terminal dashboard repainted
// every interval, driven entirely by the coordinator's /cluster/top
// endpoint — it opens no cluster connection of its own, so it can watch
// a coordinator it does not own. Rates (q/s, steps/s, feed B/s) are
// derived client-side by diffing successive snapshots.
func runTop(addr string, interval time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	t := time.NewTicker(interval)
	defer t.Stop()
	var prev *obscluster.TopSnap
	for {
		cur, err := obscluster.FetchTop(addr)
		fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: repaint in place
		if err != nil {
			fmt.Printf("rangetop: %s unreachable: %v\n", addr, err)
			prev = nil
		} else {
			fmt.Print(obscluster.RenderTop(prev, cur, true))
			prev = cur
		}
		select {
		case <-sig:
			fmt.Println()
			return
		case <-t.C:
		}
	}
}

// answerLine parses and answers one serve-mode query line.
func answerLine(eng *engine.Engine[float64], dims int, line string) string {
	fields := strings.Fields(line)
	if fields[0] == "trace" {
		return answerTrace(eng.Trace, fields)
	}
	if len(fields) != 3 {
		return fmt.Sprintf("error: want `mode lo1,..,lo%d hi1,..,hi%d`, got %q", dims, dims, line)
	}
	lo, err := parseCoords(fields[1], dims)
	if err != nil {
		return "error: " + err.Error()
	}
	hi, err := parseCoords(fields[2], dims)
	if err != nil {
		return "error: " + err.Error()
	}
	box := geom.NewBox(lo, hi)
	switch fields[0] {
	case "count":
		c, err := eng.Count(box)
		if err != nil {
			return "error: " + err.Error()
		}
		return fmt.Sprintf("count %v = %d", box, c)
	case "sum":
		s, err := eng.Aggregate(box)
		if err != nil {
			return "error: " + err.Error()
		}
		return fmt.Sprintf("sum %v = %.4f", box, s)
	case "report":
		pts, err := eng.Report(box)
		if err != nil {
			return "error: " + err.Error()
		}
		ids := make([]string, len(pts))
		for i, pt := range pts {
			ids[i] = strconv.Itoa(int(pt.ID))
		}
		if len(ids) == 0 {
			return fmt.Sprintf("report %v = 0", box)
		}
		return fmt.Sprintf("report %v = %d: %s", box, len(pts), strings.Join(ids, " "))
	default:
		return fmt.Sprintf("error: unknown mode %q (want count, sum or report)", fields[0])
	}
}

// answerMutableLine parses and answers one mutable-serve line: the
// query commands ride the store-backed engine, the mutation commands
// apply to the store directly.
func answerMutableLine(eng *engine.Engine[struct{}], st *store.Store, dims int, line string) string {
	fields := strings.Fields(line)
	switch fields[0] {
	case "trace":
		return answerTrace(eng.Trace, fields)
	case "checkpoint":
		if len(fields) != 1 {
			return "error: checkpoint takes no arguments"
		}
		if err := st.Checkpoint(); err != nil {
			return "error: " + err.Error()
		}
		return fmt.Sprintf("checkpoint at version %d (%d live points)", st.Version(), st.LiveN())
	case "insert", "delete":
		if len(fields) != 3 {
			return fmt.Sprintf("error: want `%s id x1,..,x%d`, got %q", fields[0], dims, line)
		}
		id, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return fmt.Sprintf("error: point id %q: %v", fields[1], err)
		}
		x, err := parseCoords(fields[2], dims)
		if err != nil {
			return "error: " + err.Error()
		}
		pt := geom.Point{ID: int32(id), X: x}
		var seq uint64
		if fields[0] == "insert" {
			seq, err = st.Insert(pt)
		} else {
			seq, err = st.Delete(pt)
		}
		if err != nil {
			return "error: " + err.Error()
		}
		return fmt.Sprintf("%s %v -> version %d", fields[0], pt, seq)
	case "sum":
		return "error: sum is unavailable on the mutable store (tombstones need an invertible monoid)"
	}

	if len(fields) != 3 {
		return fmt.Sprintf("error: want `mode lo1,..,lo%d hi1,..,hi%d`, got %q", dims, dims, line)
	}
	lo, err := parseCoords(fields[1], dims)
	if err != nil {
		return "error: " + err.Error()
	}
	hi, err := parseCoords(fields[2], dims)
	if err != nil {
		return "error: " + err.Error()
	}
	box := geom.NewBox(lo, hi)
	switch fields[0] {
	case "count":
		c, err := eng.Count(box)
		if err != nil {
			return "error: " + err.Error()
		}
		return fmt.Sprintf("count %v = %d", box, c)
	case "report":
		pts, err := eng.Report(box)
		if err != nil {
			return "error: " + err.Error()
		}
		ids := make([]string, len(pts))
		for i, pt := range pts {
			ids[i] = strconv.Itoa(int(pt.ID))
		}
		if len(ids) == 0 {
			return fmt.Sprintf("report %v = 0", box)
		}
		return fmt.Sprintf("report %v = %d: %s", box, len(pts), strings.Join(ids, " "))
	default:
		return fmt.Sprintf("error: unknown command %q (want count, report, insert, delete or checkpoint)", fields[0])
	}
}

// parseCoords reads a comma-separated rank-coordinate vector.
func parseCoords(s string, dims int) ([]geom.Coord, error) {
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		return nil, fmt.Errorf("coordinate %q has %d dims, tree has %d", s, len(parts), dims)
	}
	out := make([]geom.Coord, dims)
	for i, part := range parts {
		v, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("coordinate %q: %v", part, err)
		}
		out[i] = geom.Coord(v)
	}
	return out, nil
}

// loadPoints reads raw CSV floats or generates a synthetic set, returning
// rank-normalized points.
func loadPoints(path string, n, d int, dist string, seed int64) ([]geom.Point, int) {
	if path == "" {
		var dd workload.Distribution
		switch dist {
		case "uniform":
			dd = workload.Uniform
		case "clustered":
			dd = workload.Clustered
		case "correlated":
			dd = workload.Correlated
		default:
			fmt.Fprintf(os.Stderr, "rangesearch: unknown distribution %q\n", dist)
			os.Exit(2)
		}
		return workload.Points(workload.PointSpec{N: n, Dims: d, Dist: dd, Seed: seed}), d
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangesearch: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rangesearch: reading %s: %v\n", path, err)
		os.Exit(1)
	}
	raw := make([][]float64, 0, len(rows))
	for i, row := range rows {
		vals := make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rangesearch: row %d col %d: %v\n", i+1, j+1, err)
				os.Exit(1)
			}
			vals[j] = v
		}
		raw = append(raw, vals)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "rangesearch: CSV is empty")
		os.Exit(1)
	}
	pts, _ := geom.NormalizeFloat64(raw)
	return pts, len(raw[0])
}
