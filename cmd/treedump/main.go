// Command treedump renders the structural figures of the paper (Figures
// 1–3) and ASCII dumps of the distributed range tree's hat for arbitrary
// parameters — the visual/structural half of the reproduction.
//
// Usage:
//
//	treedump -fig 1            # Figure 1: the (1,8) segment tree
//	treedump -fig 2            # Figure 2: Index/Level labeling
//	treedump -fig 3            # Figure 3: hat + forest for p=8
//	treedump -n 128 -d 2 -p 4  # hat dump for chosen parameters
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "render paper figure 1, 2 or 3 (0 = custom dump)")
	n := flag.Int("n", 64, "points (custom dump)")
	d := flag.Int("d", 2, "dimensions (custom dump)")
	p := flag.Int("p", 8, "processors (custom dump)")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "verify structural invariants and exit")
	flag.Parse()

	switch *fig {
	case 1:
		expt.F1().Render(os.Stdout)
		return
	case 2:
		expt.F2().Render(os.Stdout)
		return
	case 3:
		expt.F3().Render(os.Stdout)
		return
	case 0:
		// custom dump below
	default:
		fmt.Fprintf(os.Stderr, "treedump: unknown figure %d (want 1, 2 or 3)\n", *fig)
		os.Exit(2)
	}

	pts := workload.Points(workload.PointSpec{N: *n, Dims: *d, Dist: workload.Uniform, Seed: *seed})
	mach := cgm.New(cgm.Config{P: *p})
	dt := core.Build(mach, pts)

	if *check {
		if err := dt.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "treedump: invariant violation: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ok: n=%d d=%d p=%d — all structural invariants hold\n", *n, *d, *p)
		return
	}

	fmt.Printf("distributed range tree: n=%d d=%d p=%d grain=%d\n", *n, *d, *p, dt.Grain())
	fmt.Printf("hat: %d trees, %d nodes per replica; forest: %d elements\n\n",
		dt.HatTreeCount(), dt.HatNodeCount(), dt.ElemCount())

	infos := dt.Info()
	byDim := map[int][]core.ElemInfo{}
	for _, info := range infos {
		byDim[int(info.Dim)] = append(byDim[int(info.Dim)], info)
	}
	dims := make([]int, 0, len(byDim))
	for dim := range byDim {
		dims = append(dims, dim)
	}
	sort.Ints(dims)
	for _, dim := range dims {
		els := byDim[dim]
		fmt.Printf("dimension %d forest: %d elements\n", dim+1, len(els))
		perOwner := make(map[int32]int)
		maxShown := 8
		for i, info := range els {
			perOwner[info.Owner]++
			if i < maxShown {
				fmt.Printf("  elem %4d  owner P%-2d  count %4d  span [%d,%d]  key %v\n",
					info.ID, info.Owner, info.Count, info.Min, info.Max, info.Key)
			}
		}
		if len(els) > maxShown {
			fmt.Printf("  … %d more\n", len(els)-maxShown)
		}
		fmt.Printf("  per-owner element counts: ")
		for rank := 0; rank < *p; rank++ {
			fmt.Printf("P%d=%d ", rank, perOwner[int32(rank)])
		}
		fmt.Println()
		fmt.Println()
	}

	fmt.Println("per-processor forest part sizes (tree nodes):")
	for rank, sz := range dt.ForestPartNodes() {
		fmt.Printf("  P%-2d %d\n", rank, sz)
	}
}
