package drtree_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro"
	"repro/internal/brute"
)

// FuzzDistributedVsBrute fuzzes the whole distributed pipeline against the
// linear scan: arbitrary seeds, sizes, dimensionalities and machine widths
// must agree in count and report mode. The seed corpus runs under plain
// `go test`; `go test -fuzz=FuzzDistributedVsBrute` explores further.
func FuzzDistributedVsBrute(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), uint8(2))
	f.Add(int64(2), uint8(100), uint8(3), uint8(5))
	f.Add(int64(3), uint8(1), uint8(1), uint8(1))
	f.Add(int64(4), uint8(255), uint8(1), uint8(8))
	f.Add(int64(5), uint8(37), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw, pRaw uint8) {
		n := int(nRaw)%200 + 1
		d := int(dRaw)%4 + 1
		p := int(pRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]drtree.Point, n)
		for i := range pts {
			x := make([]drtree.Coord, d)
			for j := range x {
				x[j] = drtree.Coord(rng.Intn(3*n) - n)
			}
			pts[i] = drtree.Point{ID: int32(i), X: x}
		}
		drtree.RankNormalize(pts)
		mach := drtree.NewMachine(drtree.MachineConfig{P: p})
		tree := drtree.BuildDistributed(mach, pts)
		bf := brute.New(pts)
		boxes := make([]drtree.Box, 6)
		for i := range boxes {
			lo := make([]drtree.Coord, d)
			hi := make([]drtree.Coord, d)
			for j := 0; j < d; j++ {
				a := drtree.Coord(rng.Intn(n + 2))
				b := drtree.Coord(rng.Intn(n + 2))
				if a > b && i%3 != 0 { // keep some inverted boxes as-is
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			boxes[i] = drtree.Box{Lo: lo, Hi: hi}
		}
		counts := tree.CountBatch(boxes)
		reports := tree.ReportBatch(boxes)
		for i, q := range boxes {
			if counts[i] != int64(bf.Count(q)) {
				t.Fatalf("count mismatch: n=%d d=%d p=%d box %v: %d vs %d",
					n, d, p, q, counts[i], bf.Count(q))
			}
			got := brute.IDs(reports[i])
			want := brute.IDs(bf.Report(q))
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("report mismatch: n=%d d=%d p=%d box %v", n, d, p, q)
			}
		}
	})
}

// FuzzStoreMutate fuzzes the mutable store end to end: a byte-driven
// sequence of inserts, deletes, queries, checkpoints and crash-reopens
// must track the brute-force oracle exactly at every step. The seed
// corpus runs under plain `go test`; `go test -fuzz=FuzzStoreMutate`
// explores further.
func FuzzStoreMutate(f *testing.F) {
	f.Add(int64(1), uint8(2), []byte{0, 1, 2, 3, 4, 0, 0, 3})
	f.Add(int64(2), uint8(5), []byte{0, 0, 0, 1, 3, 4, 1, 1, 2})
	f.Add(int64(3), uint8(1), []byte{4, 4, 0, 2, 3, 0, 1, 4, 3, 2})
	f.Add(int64(4), uint8(8), []byte{0, 3, 0, 3, 0, 3, 1, 1, 1, 4, 2})
	f.Fuzz(func(t *testing.T, seed int64, pRaw uint8, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		p := int(pRaw)%4 + 1
		d := int(pRaw)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir() + "/db"
		cfg := drtree.StoreConfig{Dims: d, P: p, MemtableCap: 16, Sync: true}
		st, err := drtree.OpenStore(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		closed := false
		defer func() {
			if !closed {
				st.Close()
			}
		}()

		live := map[int32]drtree.Point{}
		var nextID int32
		check := func() {
			var flat []drtree.Point
			for _, pt := range live {
				flat = append(flat, pt)
			}
			bf := brute.New(flat)
			boxes := make([]drtree.Box, 3)
			for i := range boxes {
				lo := make([]drtree.Coord, d)
				hi := make([]drtree.Coord, d)
				for j := 0; j < d; j++ {
					a := drtree.Coord(rng.Intn(64))
					b := drtree.Coord(rng.Intn(64))
					if a > b {
						a, b = b, a
					}
					lo[j], hi[j] = a, b
				}
				boxes[i] = drtree.Box{Lo: lo, Hi: hi}
			}
			counts, err := st.CountBatch(boxes)
			if err != nil {
				t.Fatalf("count batch: %v", err)
			}
			reports, err := st.ReportBatch(boxes)
			if err != nil {
				t.Fatalf("report batch: %v", err)
			}
			for i, q := range boxes {
				if counts[i] != int64(bf.Count(q)) {
					t.Fatalf("count mismatch: d=%d p=%d box %v: %d vs %d", d, p, q, counts[i], bf.Count(q))
				}
				if !reflect.DeepEqual(brute.IDs(reports[i]), brute.IDs(bf.Report(q))) {
					t.Fatalf("report mismatch: d=%d p=%d box %v", d, p, q)
				}
			}
			if st.LiveN() != len(live) {
				t.Fatalf("store claims %d live, oracle %d", st.LiveN(), len(live))
			}
		}

		for _, op := range script {
			switch op % 5 {
			case 0: // insert a small batch
				k := 1 + rng.Intn(8)
				pts := make([]drtree.Point, k)
				for i := range pts {
					x := make([]drtree.Coord, d)
					for j := range x {
						x[j] = drtree.Coord(rng.Intn(64))
					}
					pts[i] = drtree.Point{ID: nextID, X: x}
					nextID++
				}
				if _, err := st.InsertBatch(pts); err != nil {
					t.Fatal(err)
				}
				for _, pt := range pts {
					live[pt.ID] = pt
				}
			case 1: // delete up to 4 live points
				var del []drtree.Point
				for _, pt := range live {
					del = append(del, pt)
					if len(del) == 4 {
						break
					}
				}
				if len(del) == 0 {
					continue
				}
				if _, err := st.DeleteBatch(del); err != nil {
					t.Fatal(err)
				}
				for _, pt := range del {
					delete(live, pt.ID)
				}
			case 2: // checkpoint
				if err := st.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			case 3: // crash (abandon) and reopen
				re, err := drtree.OpenStore(dir, cfg)
				if err != nil {
					t.Fatal(err)
				}
				// The crash already happened (no clean shutdown was
				// given to the old handle before the reopen read the
				// directory); close it now purely to release its
				// goroutine and WAL fd for the fuzz worker's lifetime.
				st.Close()
				st = re
			case 4: // query burst
				check()
			}
		}
		check()
		st.Close()
		closed = true
	})
}

// FuzzNormalizerBox fuzzes the raw-box → rank-box translation: membership
// must be preserved exactly, including under heavy duplication.
func FuzzNormalizerBox(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(2))
	f.Add(int64(7), uint8(64), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw uint8) {
		n := int(nRaw)%120 + 1
		d := int(dRaw)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		raw := make([][]float64, n)
		for i := range raw {
			raw[i] = make([]float64, d)
			for j := range raw[i] {
				raw[i][j] = float64(rng.Intn(9)) // lots of ties
			}
		}
		pts, norm := drtree.Normalize(raw)
		for trial := 0; trial < 5; trial++ {
			lo := make([]float64, d)
			hi := make([]float64, d)
			for j := 0; j < d; j++ {
				a, b := float64(rng.Intn(11)-1), float64(rng.Intn(11)-1)
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			rb := norm.Box(lo, hi)
			for i, p := range pts {
				inRaw := true
				for j := 0; j < d; j++ {
					if raw[i][j] < lo[j] || raw[i][j] > hi[j] {
						inRaw = false
						break
					}
				}
				if rb.Contains(p) != inRaw {
					t.Fatalf("membership mismatch for point %d", i)
				}
			}
		}
	})
}
