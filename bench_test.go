// Root benchmark harness: one benchmark per reproduced table/figure, as
// indexed in DESIGN.md §8. `go test -bench=. -benchmem` exercises every
// experiment at benchmark scale; cmd/rangebench prints the full tables.
package drtree_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/rangetree"
	"repro/internal/segtree"
	"repro/internal/workload"
)

// benchPoints/benchBoxes memoize workloads across benchmarks.
var workloadCache = map[string][]drtree.Point{}

func benchPoints(n, d int) []drtree.Point {
	key := fmt.Sprintf("%d/%d", n, d)
	if pts, ok := workloadCache[key]; ok {
		return pts
	}
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 1})
	workloadCache[key] = pts
	return pts
}

func benchBoxes(m, n, d int, sel float64) []drtree.Box {
	return workload.Boxes(workload.QuerySpec{M: m, Dims: d, N: n, Selectivity: sel, Seed: 1})
}

// BenchmarkF1_SegmentTreeCover measures the canonical decomposition of
// Figure 1's structure at scale: the O(log n) cover underlying every
// search.
func BenchmarkF1_SegmentTreeCover(b *testing.B) {
	s := segtree.NewShape(1 << 20)
	b.ReportAllocs()
	total := 0
	for i := 0; i < b.N; i++ {
		lo := (i * 7919) % (1 << 19)
		hi := lo + (i*104729)%(1<<19)
		s.Cover(lo, hi, func(int) { total++ })
	}
	_ = total
}

// BenchmarkF2_Labeling measures the Definition 2 path labeling used to
// name every tree of the structure.
func BenchmarkF2_Labeling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := segtree.RootPathKey.Extend(i%1024 + 1).Extend(i%64 + 1)
		if k.Dim() != 3 {
			b.Fatal("bad dim")
		}
	}
}

// BenchmarkF3_HatForestDecomposition builds the Figure 3 structure (the
// hat/forest cut) at benchmark size.
func BenchmarkF3_HatForestDecomposition(b *testing.B) {
	pts := benchPoints(1<<12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
		t := drtree.BuildDistributed(mach, pts)
		if t.HatNodeCount() == 0 {
			b.Fatal("empty hat")
		}
	}
}

// BenchmarkT1_StructureSizes reproduces Table T1: structure size ratios
// reported as benchmark metrics.
func BenchmarkT1_StructureSizes(b *testing.B) {
	pts := benchPoints(1<<12, 2)
	s := rangetree.Build(pts).Nodes()
	var hat, maxF int
	for i := 0; i < b.N; i++ {
		mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
		t := drtree.BuildDistributed(mach, pts)
		hat = t.HatNodeCount()
		maxF = 0
		for _, x := range t.ForestPartNodes() {
			if x > maxF {
				maxF = x
			}
		}
	}
	b.ReportMetric(float64(hat), "hat-nodes")
	b.ReportMetric(float64(maxF)/(float64(s)/8), "maxF/(s÷p)")
}

// BenchmarkT2_Construct reproduces Table T2: Algorithm Construct.
func BenchmarkT2_Construct(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			pts := benchPoints(1<<12, 2)
			var rounds, maxH int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mach := drtree.NewMachine(drtree.MachineConfig{P: p})
				drtree.BuildDistributed(mach, pts)
				mt := mach.Metrics()
				rounds, maxH = mt.CommRounds(), mt.MaxH()
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(maxH), "max-h")
		})
	}
}

// BenchmarkT3_Search reproduces Table T3: a batch of n counting queries.
func BenchmarkT3_Search(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			n := 1 << 12
			pts := benchPoints(n, 2)
			mach := drtree.NewMachine(drtree.MachineConfig{P: p})
			t := drtree.BuildDistributed(mach, pts)
			boxes := benchBoxes(n, n, 2, 0.001)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.CountBatch(boxes)
			}
			mach.ResetMetrics()
			t.CountBatch(boxes)
			b.ReportMetric(float64(mach.Metrics().CommRounds()), "rounds")
		})
	}
}

// BenchmarkT4a_Associative reproduces Table T4a: weighted-sum batches.
func BenchmarkT4a_Associative(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	t := drtree.BuildDistributed(mach, pts)
	h := drtree.PrepareAssociative(t, drtree.FloatSum(), workload.WeightOf)
	boxes := benchBoxes(n/2, n, 2, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Batch(boxes)
	}
}

// BenchmarkT4b_Report reproduces Table T4b: report mode across
// selectivities; the balance metric is max pairs per processor over k/p.
func BenchmarkT4b_Report(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	t := drtree.BuildDistributed(mach, pts)
	for _, sel := range []float64{0.001, 0.05} {
		b.Run(fmt.Sprintf("sel=%v", sel), func(b *testing.B) {
			boxes := benchBoxes(256, n, 2, sel)
			var balance float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, perProc := t.ReportBatchBalance(boxes)
				k := 0
				for _, r := range results {
					k += len(r)
				}
				mx := 0
				for _, c := range perProc {
					if c > mx {
						mx = c
					}
				}
				if k > 0 {
					balance = float64(mx) / (float64(k) / 8)
				}
			}
			b.ReportMetric(balance, "k/p-balance")
		})
	}
}

// BenchmarkE5_Baselines reproduces Table E5: sequential range tree vs k-d
// tree vs scan on identical query batches.
func BenchmarkE5_Baselines(b *testing.B) {
	n, d := 1<<14, 2
	pts := benchPoints(n, d)
	shapes := map[string][]drtree.Box{
		"square": benchBoxes(256, n, d, 0.0005),
		"slab":   workload.SlabBoxes(256, d, n, 0.002, 1),
	}
	rt := rangetree.Build(pts)
	kd := drtree.BuildKD(pts)
	bf := brute.New(pts)
	sink := 0
	for _, shape := range []string{"square", "slab"} {
		boxes := shapes[shape]
		b.Run(shape+"/rangetree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range boxes {
					sink += rt.Count(q)
				}
			}
		})
		b.Run(shape+"/kdtree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range boxes {
					sink += kd.Count(q)
				}
			}
		})
		b.Run(shape+"/scan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range boxes {
					sink += bf.Count(q)
				}
			}
		})
	}
	_ = sink
}

// BenchmarkE6_Balance reproduces Table E6: hot-spot batches exercising the
// c_j-copy load balancing.
func BenchmarkE6_Balance(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	t := drtree.BuildDistributed(mach, pts)
	hot := workload.Boxes(workload.QuerySpec{M: n, Dims: 2, N: n, Selectivity: 0.0005, Foci: 1, Seed: 2})
	var factor float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.CountBatch(hot)
		stats := t.LastSearchStats()
		total, mx := 0, 0
		for _, s := range stats {
			total += s.Served
			if s.Served > mx {
				mx = s.Served
			}
		}
		if total > 0 {
			factor = float64(mx) / (float64(total) / 8)
		}
	}
	b.ReportMetric(factor, "served-load-factor")
}

// BenchmarkE7_HRelations reproduces Table E7: the h audit over a full
// build+search cycle.
func BenchmarkE7_HRelations(b *testing.B) {
	n, p := 1<<12, 4
	pts := benchPoints(n, 2)
	s := rangetree.Build(pts).Nodes()
	boxes := benchBoxes(n, n, 2, 0.001)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach := drtree.NewMachine(drtree.MachineConfig{P: p})
		t := drtree.BuildDistributed(mach, pts)
		t.CountBatch(boxes)
		worst = 0
		for _, r := range mach.Metrics().Rounds {
			if r.Final {
				continue
			}
			if ratio := float64(r.MaxH) * float64(p) / float64(s); ratio > worst {
				worst = ratio
			}
		}
	}
	b.ReportMetric(worst, "worst-h·p/s")
}

// BenchmarkE8_DimensionSweep reproduces Table E8: construction across d.
func BenchmarkE8_DimensionSweep(b *testing.B) {
	for _, d := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			pts := benchPoints(1<<10, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mach := drtree.NewMachine(drtree.MachineConfig{P: 4})
				drtree.BuildDistributed(mach, pts)
			}
		})
	}
}

// BenchmarkE9_Speedup reproduces Table E9: modelled time in Measured mode
// across machine widths.
func BenchmarkE9_Speedup(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	boxes := benchBoxes(n, n, 2, 0.001)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var model float64
			for i := 0; i < b.N; i++ {
				mach := drtree.NewMachine(drtree.MachineConfig{P: p, Mode: drtree.Measured})
				t := drtree.BuildDistributed(mach, pts)
				mach.ResetMetrics()
				t.CountBatch(boxes)
				model = float64(mach.Metrics().ModelTime(cgm.DefaultG, cgm.DefaultL).Microseconds())
			}
			b.ReportMetric(model, "search-Tmodel-µs")
		})
	}
}

// BenchmarkE10_BatchSize reproduces Table E10: amortizing rounds over m.
func BenchmarkE10_BatchSize(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	t := drtree.BuildDistributed(mach, pts)
	for _, m := range []int{n / 16, n, 4 * n} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			boxes := benchBoxes(m, n, 2, 0.001)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.CountBatch(boxes)
			}
		})
	}
}

// BenchmarkE11_Layered reproduces Table E11: plain vs layered query time.
func BenchmarkE11_Layered(b *testing.B) {
	n, d := 1<<13, 2
	pts := benchPoints(n, d)
	boxes := benchBoxes(512, n, d, 0.02)
	rt := rangetree.Build(pts)
	lt := drtree.BuildLayered(pts)
	sink := 0
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range boxes {
				sink += rt.Count(q)
			}
		}
	})
	b.Run("layered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range boxes {
				sink += lt.Count(q)
			}
		}
	})
	_ = sink
}

// BenchmarkE12_DynamicInserts reproduces Table E12: amortized batch
// insertion into the dynamized distributed tree.
func BenchmarkE12_DynamicInserts(b *testing.B) {
	n := 1 << 11
	pts := benchPoints(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach := drtree.NewMachine(drtree.MachineConfig{P: 4})
		t := drtree.NewDynamic(mach, 2, drtree.WithBase(32))
		for off := 0; off < n; off += n / 8 {
			t.InsertBatch(pts[off : off+n/8])
		}
		if t.N() != n {
			b.Fatal("lost points")
		}
	}
}

// BenchmarkE13_SingleQuery reproduces Table E13: one query answered by all
// processors cooperatively.
func BenchmarkE13_SingleQuery(b *testing.B) {
	n := 1 << 13
	pts := benchPoints(n, 2)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	t := drtree.BuildDistributed(mach, pts)
	g := int32(t.Grain())
	band := drtree.NewBox([]drtree.Coord{g / 2, 100}, []drtree.Coord{int32(n) - g/2, 400})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.SingleCount(band)
	}
}

// BenchmarkDominance measures footnote 2's reduction: box sums via 2^d
// dominance corners.
func BenchmarkDominance(b *testing.B) {
	n := 1 << 13
	pts := benchPoints(n, 2)
	boxes := benchBoxes(512, n, 2, 0.01)
	dom := drtree.BuildDominance(pts, drtree.IntSumGroup(), func(drtree.Point) int64 { return 1 })
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range boxes {
			sink += dom.Box(q)
		}
	}
	_ = sink
}

// BenchmarkEngineThroughput measures the serving layer: concurrent
// submitters of single mixed-mode queries against one engine, swept over
// the batch-size knob. queries/s is the serving baseline the next PR has
// to beat; batch=1 is the no-batching strawman (every query pays a full
// machine run).
func BenchmarkEngineThroughput(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	t := drtree.BuildDistributed(mach, pts)
	h := drtree.PrepareAssociative(t, drtree.FloatSum(), workload.WeightOf)
	boxes := benchBoxes(4096, n, 2, 0.001)
	for _, bs := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			eng := drtree.NewAggregateEngine(t, h, drtree.EngineConfig{
				BatchSize: bs,
				MaxDelay:  500 * time.Microsecond,
				CacheSize: -1, // disabled: measure dispatch, not the cache
			})
			defer eng.Close()
			var submitter atomic.Int64
			b.SetParallelism(4) // 4×GOMAXPROCS concurrent submitters
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(submitter.Add(1)) * 7919
				for pb.Next() {
					q := boxes[i%len(boxes)]
					switch i % 3 {
					case 0:
						if _, err := eng.Count(q); err != nil {
							b.Error(err)
							return
						}
					case 1:
						if _, err := eng.Aggregate(q); err != nil {
							b.Error(err)
							return
						}
					default:
						if _, err := eng.Report(q); err != nil {
							b.Error(err)
							return
						}
					}
					i++
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			st := eng.Stats()
			if st.Batches > 0 {
				b.ReportMetric(float64(st.BatchedQueries)/float64(st.Batches), "queries/batch")
			}
		})
	}
}

// BenchmarkStoreMixed measures the mutable store behind the engine: the
// read sub-benchmark serves the same workload as BenchmarkEngineThroughput
// batch=64 but from a compacted store (acceptance: within 1.5× of the
// immutable path), and the mixed sub-benchmark adds a background writer
// issuing inserts and deletes throughout, with the compactor flushing and
// folding underneath the readers.
func BenchmarkStoreMixed(b *testing.B) {
	n := 1 << 12
	pts := benchPoints(n, 2)
	boxes := benchBoxes(4096, n, 2, 0.001)

	run := func(b *testing.B, mutate bool) {
		st, err := drtree.OpenStore("", drtree.StoreConfig{Dims: 2, P: 8, MemtableCap: 1024})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if _, err := st.InsertBatch(pts); err != nil {
			b.Fatal(err)
		}
		st.Compact()
		eng := drtree.NewStoreEngine(st, drtree.EngineConfig{
			BatchSize: 64,
			MaxDelay:  500 * time.Microsecond,
			CacheSize: -1, // disabled: measure dispatch, not the cache
		})
		defer eng.Close()

		stop := make(chan struct{})
		writerDone := make(chan struct{})
		var mutations atomic.Int64
		if mutate {
			go func() {
				defer close(writerDone)
				next := int32(n)
				tick := time.NewTicker(500 * time.Microsecond) // ~20k mutations/s offered
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					ins := make([]drtree.Point, 8)
					for i := range ins {
						ins[i] = drtree.Point{ID: next, X: []drtree.Coord{
							drtree.Coord(int(next) % (4 * n)), drtree.Coord(int(next) * 7 % (4 * n))}}
						next++
					}
					if _, err := st.InsertBatch(ins); err != nil {
						b.Error(err)
						return
					}
					if _, err := st.DeleteBatch(ins[:2]); err != nil {
						b.Error(err)
						return
					}
					mutations.Add(2)
				}
			}()
		} else {
			close(writerDone)
		}

		var submitter atomic.Int64
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(submitter.Add(1)) * 7919
			for pb.Next() {
				q := boxes[i%len(boxes)]
				if i%3 == 0 {
					if _, err := eng.Report(q); err != nil {
						b.Error(err)
						return
					}
				} else {
					if _, err := eng.Count(q); err != nil {
						b.Error(err)
						return
					}
				}
				i++
			}
		})
		b.StopTimer()
		close(stop)
		<-writerDone // before the deferred Close tears the store down
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		if mutate {
			b.ReportMetric(float64(mutations.Load())/b.Elapsed().Seconds(), "mutations/s")
		}
	}

	b.Run("read", func(b *testing.B) { run(b, false) })
	b.Run("mixed", func(b *testing.B) { run(b, true) })
}

// BenchmarkExptTables runs the quick-scale table generators end to end —
// the exact code path behind cmd/rangebench.
func BenchmarkExptTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := expt.F1(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
		if tab := expt.T1(expt.Quick); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// TestBenchWorkloadsSane guards the benchmark workloads themselves.
func TestBenchWorkloadsSane(t *testing.T) {
	pts := benchPoints(1<<10, 2)
	if len(pts) != 1<<10 {
		t.Fatal("bad point count")
	}
	mach := drtree.NewMachine(drtree.MachineConfig{P: 4})
	tree := drtree.BuildDistributed(mach, pts)
	boxes := benchBoxes(100, 1<<10, 2, 0.01)
	counts := tree.CountBatch(boxes)
	bf := brute.New(pts)
	for i, q := range boxes {
		if counts[i] != int64(bf.Count(q)) {
			t.Fatalf("benchmark workload mismatch at %d", i)
		}
	}
	var _ core.ElemInfo // keep the core import for its exported types
}
