package drtree_test

import (
	"fmt"

	"repro"
)

// ExampleBuildDistributed shows the core pipeline: normalize raw data,
// construct the distributed range tree, answer a counting batch.
func ExampleBuildDistributed() {
	raw := [][]float64{
		{1, 10}, {2, 20}, {3, 30}, {4, 40},
		{5, 50}, {6, 60}, {7, 70}, {8, 80},
	}
	pts, norm := drtree.Normalize(raw)
	mach := drtree.NewMachine(drtree.MachineConfig{P: 2})
	tree := drtree.BuildDistributed(mach, pts)

	q := norm.Box([]float64{2, 0}, []float64{6, 55}) // x∈[2,6], y≤55
	fmt.Println(tree.CountBatch([]drtree.Box{q})[0])
	// Output: 4
}

// ExampleTree_ReportBatch shows report mode: the matching points
// themselves, grouped per query.
func ExampleTree_ReportBatch() {
	pts := drtree.RankNormalize([]drtree.Point{
		{ID: 0, X: []drtree.Coord{1, 4}},
		{ID: 1, X: []drtree.Coord{2, 3}},
		{ID: 2, X: []drtree.Coord{3, 2}},
		{ID: 3, X: []drtree.Coord{4, 1}},
	})
	mach := drtree.NewMachine(drtree.MachineConfig{P: 2})
	tree := drtree.BuildDistributed(mach, pts)

	q := drtree.NewBox([]drtree.Coord{1, 1}, []drtree.Coord{3, 3})
	for _, p := range tree.ReportBatch([]drtree.Box{q})[0] {
		fmt.Println(p.ID)
	}
	// Output:
	// 1
	// 2
}

// ExamplePrepareAssociative shows the associative-function mode with a
// custom semigroup (here: integer sum of per-point weights).
func ExamplePrepareAssociative() {
	pts := drtree.RankNormalize([]drtree.Point{
		{ID: 0, X: []drtree.Coord{1}},
		{ID: 1, X: []drtree.Coord{2}},
		{ID: 2, X: []drtree.Coord{3}},
	})
	weights := []int64{10, 20, 40}
	mach := drtree.NewMachine(drtree.MachineConfig{P: 2})
	tree := drtree.BuildDistributed(mach, pts)
	h := drtree.PrepareAssociative(tree, drtree.IntSum(),
		func(p drtree.Point) int64 { return weights[p.ID] })

	q := drtree.NewBox([]drtree.Coord{2}, []drtree.Coord{3})
	fmt.Println(h.Batch([]drtree.Box{q})[0])
	// Output: 60
}

// ExampleBuildDominance shows footnote 2's special case: box sums for an
// invertible semigroup via dominance counting.
func ExampleBuildDominance() {
	pts := drtree.RankNormalize([]drtree.Point{
		{ID: 0, X: []drtree.Coord{1, 1}},
		{ID: 1, X: []drtree.Coord{2, 2}},
		{ID: 2, X: []drtree.Coord{3, 3}},
	})
	dom := drtree.BuildDominance(pts, drtree.IntSumGroup(),
		func(drtree.Point) int64 { return 1 })

	q := drtree.NewBox([]drtree.Coord{2, 1}, []drtree.Coord{3, 3})
	fmt.Println(dom.Box(q))
	// Output: 2
}
