// Geospatial example: 2-d range reporting over clustered "city" points —
// the classical GIS workload the range-search literature motivates.
// Demonstrates report mode, the k/p output balance of Theorem 4, and raw
// box translation through the normalizer.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const n, p = 20000, 8
	rng := rand.New(rand.NewSource(7))

	// Synthetic city: dense downtown blobs plus uniform sprawl, as raw
	// (longitude, latitude) pairs.
	raw := make([][]float64, n)
	downtown := [][2]float64{{-71.06, 42.36}, {-71.10, 42.35}, {-71.05, 42.40}}
	for i := range raw {
		if rng.Float64() < 0.7 {
			c := downtown[rng.Intn(len(downtown))]
			raw[i] = []float64{c[0] + rng.NormFloat64()*0.01, c[1] + rng.NormFloat64()*0.01}
		} else {
			raw[i] = []float64{-71.2 + rng.Float64()*0.3, 42.25 + rng.Float64()*0.25}
		}
	}
	pts, norm := drtree.Normalize(raw)

	mach := drtree.NewMachine(drtree.MachineConfig{P: p})
	tree := drtree.BuildDistributed(mach, pts)
	fmt.Printf("indexed %d locations on %d processors (grain %d, hat %d nodes)\n",
		tree.N(), p, tree.Grain(), tree.HatNodeCount())
	mach.ResetMetrics()

	// A batch of viewport queries: three downtown windows and one sparse
	// suburban window.
	windows := [][4]float64{
		{-71.075, 42.350, -71.045, 42.370}, // downtown core
		{-71.115, 42.340, -71.085, 42.360}, // second blob
		{-71.065, 42.390, -71.035, 42.410}, // third blob
		{-71.200, 42.250, -71.170, 42.270}, // sparse suburb
	}
	boxes := make([]drtree.Box, len(windows))
	for i, w := range windows {
		boxes[i] = norm.Box([]float64{w[0], w[1]}, []float64{w[2], w[3]})
	}

	results, perProc := tree.ReportBatchBalance(boxes)
	k := 0
	for i, r := range results {
		k += len(r)
		fmt.Printf("viewport %d: %5d locations", i, len(r))
		if len(r) > 0 {
			first := r[0]
			fmt.Printf("  (first hit: %.4f, %.4f)", raw[first.ID][0], raw[first.ID][1])
		}
		fmt.Println()
	}
	mt := mach.Metrics()
	fmt.Printf("\nreport mode: k=%d pairs in %d communication rounds (max h %d)\n",
		k, mt.CommRounds(), mt.MaxH())
	fmt.Printf("k/p balance across processors (Theorem 4): %v\n", perProc)
}
