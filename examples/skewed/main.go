// Skewed example: the congestion scenario that motivates the paper's
// load-balancing design. Every query probes the same tiny region, so every
// subquery targets the same forest part; the c_j-copy mechanism of
// Algorithm Search (steps 2–4) replicates the hot part and spreads the
// load, where a naive owner-serves-all strategy would bottleneck on one
// processor.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const n, p = 16384, 8
	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Uniform, Seed: 3})
	mach := drtree.NewMachine(drtree.MachineConfig{P: p})
	tree := drtree.BuildDistributed(mach, pts)

	run := func(name string, boxes []drtree.Box) {
		mach.ResetMetrics()
		tree.CountBatch(boxes)
		demand := tree.LastDemand()
		stats := tree.LastSearchStats()
		total, maxDemand, maxServed, copies := 0, 0, 0, 0
		for j, d := range demand {
			total += d
			if d > maxDemand {
				maxDemand = d
			}
			_ = j
		}
		for _, s := range stats {
			if s.Served > maxServed {
				maxServed = s.Served
			}
			copies += s.CopiesHeld
		}
		if total == 0 {
			fmt.Printf("%-10s no subqueries (hat answered everything)\n", name)
			return
		}
		avg := float64(total) / float64(p)
		fmt.Printf("%-10s subqueries %6d | owner-bound load factor %.2f | balanced load factor %.2f | copies shipped %d\n",
			name, total, float64(maxDemand)/avg, float64(maxServed)/avg, copies)
	}

	// Uniform batch: demand is naturally spread.
	run("uniform", drtree.GenerateBoxes(drtree.QuerySpec{
		M: n, Dims: 2, N: n, Selectivity: 0.0005, Seed: 5,
	}))

	// Hot-spot batch: all n queries hit one focus.
	run("hotspot", drtree.GenerateBoxes(drtree.QuerySpec{
		M: n, Dims: 2, N: n, Selectivity: 0.0005, Foci: 1, Seed: 5,
	}))

	fmt.Println("\nThe owner-bound factor approaches p under skew; the paper's copy-based")
	fmt.Println("balancing keeps the served load factor near 1 in both regimes.")
}
