// OLAP example: associative-function mode over a 3-d fact table
// (order_day, customer_segment, unit_price) — the "database applications"
// use case of the paper's introduction. One prepared annotation per
// measure answers whole batches of box predicates with semigroup folds,
// without ever materializing the matching rows.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const n, p = 30000, 8
	rng := rand.New(rand.NewSource(11))

	// Fact rows: day ∈ [0,365), segment score ∈ [0,100), price.
	raw := make([][]float64, n)
	revenue := make([]float64, n)
	for i := range raw {
		day := rng.Float64() * 365
		segment := rng.Float64() * 100
		price := 5 + rng.ExpFloat64()*40
		raw[i] = []float64{day, segment, price}
		revenue[i] = price * float64(1+rng.Intn(5)) // price × quantity
	}
	pts, norm := drtree.Normalize(raw)

	mach := drtree.NewMachine(drtree.MachineConfig{P: p})
	tree := drtree.BuildDistributed(mach, pts)

	// Two prepared measures over the same tree: total revenue (sum
	// semigroup) and best single sale (max semigroup).
	sumRevenue := drtree.PrepareAssociative(tree, drtree.FloatSum(),
		func(pt drtree.Point) float64 { return revenue[pt.ID] })
	maxSale := drtree.PrepareAssociative(tree, drtree.MaxFloat(),
		func(pt drtree.Point) float64 { return revenue[pt.ID] })
	countRows := drtree.PrepareAssociative(tree, drtree.IntSum(),
		func(drtree.Point) int64 { return 1 })

	// Quarterly × segment-band predicates: 4 quarters × 2 bands.
	type pred struct {
		name   string
		lo, hi []float64
	}
	var preds []pred
	for q := 0; q < 4; q++ {
		for _, band := range []struct {
			name   string
			lo, hi float64
		}{{"consumer", 0, 50}, {"enterprise", 50, 100}} {
			preds = append(preds, pred{
				name: fmt.Sprintf("Q%d/%s", q+1, band.name),
				lo:   []float64{float64(q) * 91.25, band.lo, 0},
				hi:   []float64{float64(q+1) * 91.25, band.hi, 1e9},
			})
		}
	}
	boxes := make([]drtree.Box, len(preds))
	for i, pr := range preds {
		boxes[i] = norm.Box(pr.lo, pr.hi)
	}

	mach.ResetMetrics()
	sums := sumRevenue.Batch(boxes)
	maxs := maxSale.Batch(boxes)
	counts := countRows.Batch(boxes)

	fmt.Printf("%-14s %10s %14s %12s\n", "predicate", "rows", "revenue", "max sale")
	for i, pr := range preds {
		fmt.Printf("%-14s %10d %14.2f %12.2f\n", pr.name, counts[i], sums[i], maxs[i])
	}
	mt := mach.Metrics()
	fmt.Printf("\n3 batches × %d predicates on p=%d: %d communication rounds total, max h %d\n",
		len(preds), p, mt.CommRounds(), mt.MaxH())
}
