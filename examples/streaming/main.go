// Streaming example: the dynamic distributed range tree (the paper's
// "inherently static" limitation lifted with the logarithmic method).
// Batches of events arrive continuously; queries interleave with inserts
// and deletions, and the example prints how the level structure and the
// amortized rebuild mass evolve.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const p = 4
	mach := drtree.NewMachine(drtree.MachineConfig{P: p})
	tree := drtree.NewDynamic(mach, 2, drtree.WithBase(64))
	rng := rand.New(rand.NewSource(17))

	nextID := int32(0)
	makeBatch := func(size int) []drtree.Point {
		pts := make([]drtree.Point, size)
		for i := range pts {
			pts[i] = drtree.Point{
				ID: nextID,
				X:  []drtree.Coord{drtree.Coord(rng.Intn(10000)), drtree.Coord(rng.Intn(10000))},
			}
			nextID++
		}
		return pts
	}
	region := drtree.NewBox([]drtree.Coord{2000, 2000}, []drtree.Coord{6000, 6000})

	fmt.Printf("%8s %7s %7s %14s %14s\n", "batch", "live n", "levels", "rebuilds/pt", "region count")
	var retained [][]drtree.Point
	for batch := 1; batch <= 8; batch++ {
		pts := makeBatch(500)
		retained = append(retained, pts)
		tree.InsertBatch(pts)
		if batch%3 == 0 {
			// Expire the oldest batch (sliding window).
			tree.DeleteBatch(retained[0])
			retained = retained[1:]
		}
		count := tree.CountBatch([]drtree.Box{region})[0]
		fmt.Printf("%8d %7d %7d %14.2f %14d\n",
			batch, tree.N(), tree.Levels(),
			float64(tree.RebuiltPoints())/float64(nextID), count)
	}

	// Compact and verify: after Rebuild the same query must agree.
	before := tree.CountBatch([]drtree.Box{region})[0]
	tree.Rebuild()
	after := tree.CountBatch([]drtree.Box{region})[0]
	fmt.Printf("\nrebuild: %d levels, count %d -> %d (must match)\n", tree.Levels(), before, after)
	if before != after {
		panic("rebuild changed query results")
	}
}
