// Cluster: the multicomputer as real processes — the same distributed
// range tree built and served twice, once on the in-process loopback
// simulator and once on four TCP worker processes, with every answer
// and every machine metric (communication rounds, per-round h) checked
// to be identical.
//
// The workers here run in-process for a self-contained example; in a
// real deployment each is its own OS process:
//
//	rangeworker -listen 127.0.0.1:9101 &   # … one per rank …
//	rangesearch -n 8192 -d 2 -mode serve \
//	    -workers 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103,127.0.0.1:9104
//
// The walkthrough: start workers → dial the cluster → build the tree
// over TCP → batch queries in all three modes → serve single queries
// through the micro-batching engine → tear everything down.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		p = 4
		n = 1 << 11
		m = 64
	)
	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Clustered, Seed: 42})
	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 7})

	// The loopback twin: the simulator every other example uses.
	loopMach := drtree.NewMachine(drtree.MachineConfig{P: p})
	loopTree := drtree.BuildDistributed(loopMach, pts)

	// Step 1: start p workers (each the in-process equivalent of one
	// `rangeworker -listen …` process) and dial them.
	workers := make([]*drtree.ClusterWorker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := drtree.StartWorker("127.0.0.1:0")
		if err != nil {
			log.Fatalf("starting worker %d: %v", i, err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cluster, err := drtree.DialCluster(addrs, drtree.MachineConfig{})
	if err != nil {
		log.Fatalf("dialing cluster: %v", err)
	}
	defer cluster.Close()
	fmt.Printf("cluster: %d workers on %v\n", cluster.P(), addrs)

	// Step 2: run Algorithm Construct over TCP — every sort, route and
	// broadcast superstep physically crosses the worker mesh.
	tcpTree, err := drtree.ClusterBuild(cluster, pts)
	if err != nil {
		log.Fatalf("cluster build: %v", err)
	}
	lb, tb := loopMach.Metrics(), tcpTree.Machine().Metrics()
	fmt.Printf("construct: loopback %d rounds (max h %d) | tcp %d rounds (max h %d)\n",
		lb.CommRounds(), lb.MaxH(), tb.CommRounds(), tb.MaxH())
	if lb.CommRounds() != tb.CommRounds() || lb.MaxH() != tb.MaxH() {
		log.Fatal("transport changed the construction metrics — equivalence broken")
	}
	loopMach.ResetMetrics()
	tcpTree.Machine().ResetMetrics()

	// Step 3: the three §4.2 result modes, answers compared one-to-one.
	counts, tcpCounts := loopTree.CountBatch(boxes), tcpTree.CountBatch(boxes)
	reports, tcpReports := loopTree.ReportBatch(boxes), tcpTree.ReportBatch(boxes)
	total, k := int64(0), 0
	for i := range boxes {
		if counts[i] != tcpCounts[i] || len(reports[i]) != len(tcpReports[i]) {
			log.Fatalf("query %d diverges across transports", i)
		}
		total += counts[i]
		k += len(reports[i])
	}
	ls, ts := loopMach.Metrics(), tcpTree.Machine().Metrics()
	fmt.Printf("search: %d queries, %d matches, k=%d pairs | loopback %d rounds ≡ tcp %d rounds, max h %d ≡ %d\n",
		m, total, k, ls.CommRounds(), ts.CommRounds(), ls.MaxH(), ts.MaxH())
	if ls.CommRounds() != ts.CommRounds() || ls.MaxH() != ts.MaxH() {
		log.Fatal("transport changed the search metrics — equivalence broken")
	}

	// Step 4: serve single queries from the cluster through the engine
	// (what `rangesearch -mode serve -workers …` does line by line).
	eng, err := drtree.ClusterEngine(cluster, pts, drtree.EngineConfig{BatchSize: 16})
	if err != nil {
		log.Fatalf("cluster engine: %v", err)
	}
	defer eng.Close()
	hits := int64(0)
	for _, b := range boxes[:16] {
		c, err := eng.Count(b)
		if err != nil {
			log.Fatalf("engine count: %v", err)
		}
		hits += c
	}
	st := eng.Stats()
	fmt.Printf("engine over tcp: %d queries in %d machine batches, %d matches\n",
		st.Submitted, st.Batches, hits)

	// Step 5: the same cluster, worker-RESIDENT: a second dial with
	// Resident set makes every machine execute the registered SPMD
	// programs against worker memory — the forest builds into and serves
	// from the worker processes, and phase-B/C blocks never transit the
	// coordinator. Answers and metrics must still be identical.
	resCluster, err := drtree.DialCluster(addrs, drtree.MachineConfig{Resident: true})
	if err != nil {
		log.Fatalf("dialing resident cluster: %v", err)
	}
	defer resCluster.Close()
	resTree, err := drtree.ClusterBuild(resCluster, pts)
	if err != nil {
		log.Fatalf("resident cluster build: %v", err)
	}
	resTree.Machine().ResetMetrics()
	resCounts := resTree.CountBatch(boxes)
	for i := range boxes {
		if counts[i] != resCounts[i] {
			log.Fatalf("query %d diverges under residency", i)
		}
	}
	rs := resTree.Machine().Metrics()
	out, in := resCluster.CoordBytes()
	fmt.Printf("resident: %d rounds ≡ loopback's count rounds, forest in worker memory, coordinator moved %d B total\n",
		rs.CommRounds(), out+in)

	// Step 6: the health plane (what `rangesearch -workers …` wires up and
	// `rangesearch -mode top` renders). Each worker beacons its liveness
	// and a registry dump; the monitor ages silent ranks healthy → suspect
	// → down and archives the transitions as structured events.
	evlog, err := drtree.OpenClusterEvents("", 0) // "" = in-memory archive
	if err != nil {
		log.Fatalf("event log: %v", err)
	}
	defer evlog.Close()
	const beat = 25 * time.Millisecond
	mon := drtree.NewClusterMonitor(drtree.ClusterMonitorConfig{Addrs: addrs, Interval: beat, Events: evlog})
	defer mon.Close()
	watch := drtree.WatchClusterHealth(addrs, beat, mon)
	defer watch.Close()
	waitFor := func(what string, cond func() bool) {
		for deadline := time.Now().Add(10 * time.Second); !cond(); time.Sleep(beat / 5) {
			if time.Now().After(deadline) {
				log.Fatalf("health plane: timed out waiting for %s", what)
			}
		}
	}
	waitFor("all workers healthy", mon.AllHealthy)
	fmt.Printf("health: %d/%d workers beaconing every %v\n", mon.P(), p, beat)

	// Kill the last worker and watch the state machine notice: suspect on
	// the broken stream, down after the missed-beacon threshold.
	workers[p-1].Close()
	waitFor("rank 3 down", func() bool { return mon.StateOf(p-1) == drtree.WorkerDown })
	downAt := -1
	for i, ev := range evlog.Recent(16) {
		if ev.Kind == "worker_down" && ev.Rank == p-1 {
			downAt = i
		}
	}
	if downAt < 0 {
		log.Fatal("health plane: worker_down missing from the event archive")
	}
	fmt.Printf("health: rank %d aged to %s, archived as worker_down\n", p-1, mon.StateOf(p-1))
	fmt.Println("loopback, TCP-fabric and TCP-resident agree on every answer and every metric")
}
