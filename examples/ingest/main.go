// Ingest: worker-direct bulk load — the same tree built three ways and
// the answers diffed one-to-one:
//
//  1. coordinator-fed (the baseline: drtree.BuildDistributed on the
//     loopback simulator — all n points transit the coordinator),
//  2. partitioned files (each rank reads its own DRPF shard; the
//     coordinator ships file paths, sampling splitters and control
//     frames, never a point),
//  3. the open-loop streaming client (chunks round-robin into the
//     ranks through a bounded in-flight window) — run twice, once over
//     the rank-parallel direct-to-worker feeds and once forced through
//     the coordinator funnel, with the two staging rates compared.
//
// By default the workers run in-process; pass -workers with a
// comma-separated address list to drive external `rangeworker`
// processes instead (this is what the CI cluster-smoke ingest leg
// does):
//
//	rangeworker -listen 127.0.0.1:9101 &   # … one per rank …
//	go run ./examples/ingest -workers 127.0.0.1:9101,…,127.0.0.1:9104
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
)

func main() {
	workerList := flag.String("workers", "", "comma-separated rangeworker addresses (empty: start in-process workers)")
	flag.Parse()

	const (
		p = 4
		n = 1 << 12
		m = 48
	)
	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Clustered, Seed: 42})
	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 7})

	// 1. The coordinator-fed baseline on the loopback simulator.
	baseTree := drtree.BuildDistributed(drtree.NewMachine(drtree.MachineConfig{P: p}), pts)
	baseCounts := baseTree.CountBatch(boxes)
	baseReports := baseTree.ReportBatch(boxes)

	// Start (or dial) the worker mesh, resident mode: the forest lives
	// in worker memory and ingest runs as resident program steps.
	var addrs []string
	if *workerList == "" {
		for i := 0; i < p; i++ {
			w, err := drtree.StartWorker("127.0.0.1:0")
			if err != nil {
				log.Fatalf("starting worker %d: %v", i, err)
			}
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
	} else {
		addrs = strings.Split(*workerList, ",")
		if len(addrs) != p {
			log.Fatalf("need %d worker addresses, got %d", p, len(addrs))
		}
	}
	cluster, err := drtree.DialCluster(addrs, drtree.MachineConfig{Resident: true})
	if err != nil {
		log.Fatalf("dialing cluster: %v", err)
	}
	defer cluster.Close()

	// 2. Partitioned files: one DRPF shard per rank. Any partition
	// works — construction redistributes by sample sort regardless.
	dir, err := os.MkdirTemp("", "drtree-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths := make([]string, p)
	for r := range paths {
		lo, hi := r*n/p, (r+1)*n/p
		paths[r] = filepath.Join(dir, fmt.Sprintf("shard-%d.drpf", r))
		if err := drtree.SavePointsFile(paths[r], pts[lo:hi]); err != nil {
			log.Fatalf("writing shard %d: %v", r, err)
		}
	}
	fileMach, err := cluster.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	fileTree, err := drtree.BulkLoadFiles(fileMach, paths)
	if err != nil {
		log.Fatalf("file bulk load: %v", err)
	}
	fmt.Printf("file load: %d points from %d shards, %d construct rounds\n",
		n, p, fileTree.Machine().Metrics().CommRounds())

	// 3. The open-loop streaming client, rank-parallel: each chunk rides
	// a per-rank feed connection straight to its worker.
	streamMach, err := cluster.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	streamTree, err := drtree.BulkLoadStream(streamMach, drtree.SliceChunks(pts, 256), 4)
	if err != nil {
		log.Fatalf("streaming bulk load: %v", err)
	}
	parallelLoad := time.Since(t0)
	fmt.Printf("stream load (rank-parallel feeds): %d points in chunks of 256, window 4\n", n)

	// The same stream forced through the coordinator funnel — the
	// baseline the direct feeds exist to beat. On a many-core machine or
	// a real network the rank-parallel rate pulls ahead as p grows; on a
	// single core both paths move the same bytes and the rates converge.
	funnelMach, err := cluster.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	funnelTree, err := drtree.BulkLoadStreamWith(funnelMach, drtree.SliceChunks(pts, 256),
		drtree.IngestConfig{Window: 4, Funnel: true})
	if err != nil {
		log.Fatalf("funnel bulk load: %v", err)
	}
	funnelLoad := time.Since(t0)
	fmt.Printf("stream load (coordinator funnel):  same stream, one synchronous pipe\n")
	fmt.Printf("ingest rate: rank-parallel %.2f Mpts/s vs funnel %.2f Mpts/s (%.2fx)\n",
		float64(n)/parallelLoad.Seconds()/1e6, float64(n)/funnelLoad.Seconds()/1e6,
		funnelLoad.Seconds()/parallelLoad.Seconds())

	// Diff every answer against the coordinator-fed baseline.
	for name, tree := range map[string]*drtree.Tree{"files": fileTree, "stream": streamTree, "funnel": funnelTree} {
		counts := tree.CountBatch(boxes)
		reports := tree.ReportBatch(boxes)
		for q := range boxes {
			if counts[q] != baseCounts[q] {
				log.Fatalf("%s: query %d count %d, coordinator-fed %d", name, q, counts[q], baseCounts[q])
			}
			if len(reports[q]) != len(baseReports[q]) {
				log.Fatalf("%s: query %d reports %d points, coordinator-fed %d",
					name, q, len(reports[q]), len(baseReports[q]))
			}
			for j := range reports[q] {
				if reports[q][j].ID != baseReports[q][j].ID {
					log.Fatalf("%s: query %d point %d diverges", name, q, j)
				}
			}
		}
		fmt.Printf("%s-fed answers identical to coordinator-fed (%d queries, count+report)\n", name, m)
	}
	fmt.Println("ok: worker-direct ingest matches the coordinator-fed build")
}
