// Service: many client goroutines hammering one serving engine.
//
// The paper's theorems price batched searches (m ≥ p² queries per round
// structure), but a service sees queries one at a time. This example
// shows the engine closing that gap: 16 clients each submit single
// Count/Aggregate/Report calls; the engine micro-batches whatever is in
// flight, answers each mixed batch in one machine run, and serves
// repeated boxes from its LRU cache. A sample of answers is checked
// against the brute-force scan.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/brute"
	"repro/internal/workload"
)

func main() {
	const (
		n       = 1 << 13
		clients = 16
		queries = 400 // per client
	)

	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Clustered, Seed: 42})
	mach := drtree.NewMachine(drtree.MachineConfig{P: 8})
	tree := drtree.BuildDistributed(mach, pts)
	handle := drtree.PrepareAssociative(tree, drtree.FloatSum(), workload.WeightOf)
	oracle := brute.New(pts)

	eng := drtree.NewAggregateEngine(tree, handle, drtree.EngineConfig{
		BatchSize: 128,
		MaxDelay:  time.Millisecond,
		CacheSize: 512,
	})
	defer eng.Close()

	// A shared pool of boxes, so clients revisit each other's queries and
	// the answer cache earns its keep.
	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: 512, Dims: 2, N: n, Selectivity: 0.005, Seed: 7})

	var answered, checked, mismatches atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < queries; i++ {
				q := boxes[rng.Intn(len(boxes))]
				verify := rng.Intn(50) == 0 // spot-check ~2% against the scan
				switch rng.Intn(3) {
				case 0:
					got, err := eng.Count(q)
					if err != nil {
						panic(err)
					}
					if verify {
						checked.Add(1)
						if got != int64(oracle.Count(q)) {
							mismatches.Add(1)
						}
					}
				case 1:
					got, err := eng.Aggregate(q)
					if err != nil {
						panic(err)
					}
					if verify {
						checked.Add(1)
						want := brute.Aggregate(oracle, drtree.FloatSum(), workload.WeightOf, q)
						if d := got - want; d > 1e-6 || d < -1e-6 {
							mismatches.Add(1)
						}
					}
				default:
					got, err := eng.Report(q)
					if err != nil {
						panic(err)
					}
					if verify {
						checked.Add(1)
						if len(got) != oracle.Count(q) {
							mismatches.Add(1)
						}
					}
				}
				answered.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := eng.Stats()
	total := answered.Load()
	fmt.Printf("service: %d clients × %d queries over n=%d, p=%d\n", clients, queries, n, tree.P())
	fmt.Printf("  %d answered in %v (%.0f queries/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  cache: %d hits / %d misses (%.0f%% hit rate)\n",
		st.CacheHits, st.CacheMisses, 100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses))
	fmt.Printf("  batches: %d dispatched (%d full-size, %d deadline), mean %.1f queries/batch\n",
		st.Batches, st.SizeFlushes, st.DeadlineFlushes,
		float64(st.BatchedQueries)/float64(max(st.Batches, 1)))
	fmt.Printf("  spot-checks vs brute force: %d checked, %d mismatches\n", checked.Load(), mismatches.Load())
}
