// Quickstart: build a distributed range tree over a small 2-d point set,
// run one query in all three result modes, and print the machine metrics
// the CGM model is scored on.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Raw measurements: (temperature, humidity) readings.
	raw := [][]float64{
		{21.5, 40}, {19.0, 55}, {23.2, 38}, {25.1, 61},
		{18.4, 47}, {22.8, 52}, {20.0, 49}, {24.4, 44},
		{26.3, 58}, {17.9, 42}, {21.1, 63}, {23.9, 51},
	}
	// Rank-normalize (the paper's §3 assumption) and keep the normalizer
	// to translate raw query boxes.
	pts, norm := drtree.Normalize(raw)

	// A 4-processor coarse-grained multicomputer.
	mach := drtree.NewMachine(drtree.MachineConfig{P: 4})

	// Algorithm Construct (Theorem 2).
	tree := drtree.BuildDistributed(mach, pts)
	fmt.Printf("built: n=%d d=%d p=%d | hat %d nodes, forest %d elements, %d comm rounds\n",
		tree.N(), tree.Dims(), tree.P(), tree.HatNodeCount(), tree.ElemCount(),
		mach.Metrics().CommRounds())

	// Query: temperature in [20, 25] and humidity in [40, 55].
	q := norm.Box([]float64{20, 40}, []float64{25, 55})

	// Counting mode.
	counts := tree.CountBatch([]drtree.Box{q})
	fmt.Printf("count:  %d readings in range\n", counts[0])

	// Report mode.
	results := tree.ReportBatch([]drtree.Box{q})
	fmt.Printf("report: ")
	for _, p := range results[0] {
		fmt.Printf("(%.1f°C, %.0f%%) ", raw[p.ID][0], raw[p.ID][1])
	}
	fmt.Println()

	// Associative-function mode: mean temperature via a (count, sum)
	// product fold.
	type cs struct {
		C int
		S float64
	}
	h := drtree.PrepareAssociative(tree,
		drtree.Monoid[cs]{Combine: func(a, b cs) cs { return cs{a.C + b.C, a.S + b.S} }},
		func(p drtree.Point) cs { return cs{1, raw[p.ID][0]} })
	agg := h.Batch([]drtree.Box{q})[0]
	fmt.Printf("assoc:  mean temperature of matches = %.2f°C\n", agg.S/float64(agg.C))
}
