// Mutable: a read/write workload against the versioned serving store.
//
// The paper's structure is static — its conclusion names a dynamic
// distributed structure as the open problem. This example runs the
// repository's answer end to end: writers insert and delete points
// through the store-backed engine while readers query it, the
// background compactor flushes memtables into logarithmic-method levels
// and folds tombstones, and every answer is consistent with some
// pinned version. At the end the store checkpoints, the process
// "crashes" (the handle is abandoned), and a reopened store must answer
// exactly like the brute-force oracle over the surviving live set.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/brute"
)

func main() {
	const (
		n       = 1 << 12
		writers = 2
		readers = 8
		rounds  = 120 // mutations per writer
	)
	dir := filepath.Join(os.TempDir(), fmt.Sprintf("drtree-mutable-%d", os.Getpid()))
	defer os.RemoveAll(dir)

	pts := drtree.GeneratePoints(drtree.PointSpec{N: n, Dims: 2, Dist: drtree.Uniform, Seed: 5})
	st, err := drtree.OpenStore(dir, drtree.StoreConfig{Dims: 2, P: 4, MemtableCap: 512})
	if err != nil {
		panic(err)
	}
	if _, err := st.InsertBatch(pts); err != nil {
		panic(err)
	}
	eng := drtree.NewStoreEngine(st, drtree.EngineConfig{
		BatchSize: 64,
		MaxDelay:  500 * time.Microsecond,
	})

	// Shared registry of live points so writers delete real points and
	// the final oracle knows the expected state.
	var regMu sync.Mutex
	live := make(map[int32]drtree.Point, n)
	for _, p := range pts {
		live[p.ID] = p
	}
	nextID := atomic.Int32{}
	nextID.Store(n)

	var answered atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				if rng.Intn(3) == 0 {
					regMu.Lock()
					var victim drtree.Point
					found := false
					for _, p := range live {
						victim, found = p, true
						break
					}
					if found {
						delete(live, victim.ID)
					}
					regMu.Unlock()
					if found {
						if err := eng.Delete(victim); err != nil {
							panic(err)
						}
					}
				} else {
					p := drtree.Point{ID: nextID.Add(1) - 1, X: []drtree.Coord{
						drtree.Coord(rng.Intn(4 * n)), drtree.Coord(rng.Intn(4 * n))}}
					if err := eng.Insert(p); err != nil {
						panic(err)
					}
					regMu.Lock()
					live[p.ID] = p
					regMu.Unlock()
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			boxes := drtree.GenerateBoxes(drtree.QuerySpec{
				M: 64, Dims: 2, N: 4 * n, Selectivity: 0.01, Seed: int64(r)})
			for i := 0; i < 10*rounds; i++ {
				q := boxes[rng.Intn(len(boxes))]
				if i%2 == 0 {
					if _, err := eng.Count(q); err != nil {
						panic(err)
					}
				} else {
					if _, err := eng.Report(q); err != nil {
						panic(err)
					}
				}
				answered.Add(1)
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	es, ss := eng.Stats(), st.Stats()
	fmt.Printf("mutable: %d writers × %d mutations, %d readers, n=%d start\n", writers, rounds, readers, n)
	fmt.Printf("  %d queries in %v (%.0f queries/s) alongside the writes\n",
		answered.Load(), elapsed.Round(time.Millisecond), float64(answered.Load())/elapsed.Seconds())
	fmt.Printf("  engine: %d batches, cache %d hit / %d miss\n", es.Batches, es.CacheHits, es.CacheMisses)
	fmt.Printf("  store: version %d, %d live, %d levels | %d flushes, %d shadow folds, max build %v\n",
		ss.Seq, ss.Live, ss.Levels, ss.Flushes, ss.Compactions, ss.MaxBuild.Round(time.Microsecond))

	// Checkpoint, crash, recover: the reopened store must agree with
	// the brute-force oracle over the registry's live set.
	if err := st.Checkpoint(); err != nil {
		panic(err)
	}
	eng.Close()
	// (crash: st is abandoned without Close — the checkpoint plus WAL
	// carry the state)
	re, err := drtree.OpenStore(dir, drtree.StoreConfig{P: 4, MemtableCap: 512})
	if err != nil {
		panic(err)
	}
	defer re.Close()

	var flat []drtree.Point
	for _, p := range live {
		flat = append(flat, p)
	}
	oracle := brute.New(flat)
	boxes := drtree.GenerateBoxes(drtree.QuerySpec{M: 32, Dims: 2, N: 4 * n, Selectivity: 0.02, Seed: 999})
	counts, err := re.CountBatch(boxes)
	if err != nil {
		panic(err)
	}
	mismatches := 0
	for i, b := range boxes {
		if counts[i] != int64(oracle.Count(b)) {
			mismatches++
		}
	}
	fmt.Printf("  recovery: reopened %d live points at version %d; %d/%d oracle checks failed\n",
		re.LiveN(), re.Version(), mismatches, len(boxes))
	if re.LiveN() != len(flat) || mismatches > 0 {
		fmt.Println("  RECOVERY MISMATCH")
		os.Exit(1)
	}
	fmt.Println("  recovered state matches the oracle exactly")
}
