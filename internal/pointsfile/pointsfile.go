// Package pointsfile is a fixed-width on-disk point format built for
// rank-local ingest: a worker can read exactly its record range
// [lo, hi) with one seek, so partitioned bulk loads never funnel point
// payloads through the coordinator.
//
// Layout (little-endian):
//
//	magic   "DRPF"                      4 bytes
//	version byte                        1 byte
//	dims    uint32                      4 bytes
//	n       uint64                      8 bytes
//	records n × (id int32, dims×int32)  n × 4(dims+1) bytes
//
// Records are fixed width, so record i starts at headerLen + i*recSize —
// no index needed.
package pointsfile

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/geom"
)

const (
	magic     = "DRPF"
	version   = 1
	headerLen = 4 + 1 + 4 + 8
)

func recSize(dims int) int { return 4 * (dims + 1) }

// Save writes pts to path. All points must share a dimensionality.
func Save(path string, pts []geom.Point) error {
	if len(pts) == 0 {
		return fmt.Errorf("pointsfile: refusing to save an empty point set")
	}
	dims := pts[0].Dims()
	buf := make([]byte, 0, headerLen+len(pts)*recSize(dims))
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dims))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(pts)))
	for _, pt := range pts {
		if pt.Dims() != dims {
			return fmt.Errorf("pointsfile: point %d has %d dims, want %d", pt.ID, pt.Dims(), dims)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pt.ID))
		for _, x := range pt.X {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
	}
	return os.WriteFile(path, buf, 0o644)
}

// Info reads just the header: the record count and dimensionality.
func Info(path string) (n, dims int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return readHeader(f, path)
}

func readHeader(f *os.File, path string) (n, dims int, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("pointsfile: %s: reading header: %w", path, err)
	}
	if string(hdr[:4]) != magic {
		return 0, 0, fmt.Errorf("pointsfile: %s is not a points file (bad magic)", path)
	}
	if hdr[4] != version {
		return 0, 0, fmt.Errorf("pointsfile: %s has version %d, want %d", path, hdr[4], version)
	}
	dims = int(binary.LittleEndian.Uint32(hdr[5:9]))
	n = int(binary.LittleEndian.Uint64(hdr[9:17]))
	if dims < 1 {
		return 0, 0, fmt.Errorf("pointsfile: %s declares %d dims", path, dims)
	}
	return n, dims, nil
}

// ReadSlice reads records [lo, hi) (hi < 0 means through end of file)
// and returns them with the file's dimensionality. One seek, one
// sequential read — the worker-side file ingest path.
func ReadSlice(path string, lo, hi int) ([]geom.Point, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	n, dims, err := readHeader(f, path)
	if err != nil {
		return nil, 0, err
	}
	if hi < 0 {
		hi = n
	}
	if lo < 0 || lo > hi || hi > n {
		return nil, 0, fmt.Errorf("pointsfile: %s: slice [%d, %d) out of range (n=%d)", path, lo, hi, n)
	}
	if lo == hi {
		return nil, dims, nil
	}
	rs := recSize(dims)
	buf := make([]byte, (hi-lo)*rs)
	if _, err := f.ReadAt(buf, int64(headerLen+lo*rs)); err != nil {
		return nil, 0, fmt.Errorf("pointsfile: %s: reading records [%d, %d): %w", path, lo, hi, err)
	}
	pts := make([]geom.Point, hi-lo)
	// One arena for all coordinates keeps the load to two allocations.
	coords := make([]geom.Coord, (hi-lo)*dims)
	off := 0
	for i := range pts {
		pts[i].ID = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		x := coords[i*dims : (i+1)*dims : (i+1)*dims]
		for d := range x {
			x[d] = geom.Coord(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		pts[i].X = x
	}
	return pts, dims, nil
}

// Read loads the whole file.
func Read(path string) ([]geom.Point, error) {
	pts, _, err := ReadSlice(path, 0, -1)
	return pts, err
}
