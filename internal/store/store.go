// Package store is the mutable, versioned serving store under the
// engine: an LSM of distributed range trees. The paper's structure is
// inherently static (its conclusion names dynamization as the main open
// issue); this package composes the repository's ingredients into a
// point store that absorbs single-point Insert/Delete while staying on
// the batched distributed search hot path:
//
//   - a memtable — a small append-only buffer — absorbs mutations
//     without any machine run;
//   - full memtables are flushed by a background compactor into
//     immutable core.Trees arranged as logarithmic-method levels
//     (Bentley's transform for decomposable searching problems, the
//     paper's reference [4]), merging levels binary-counter style;
//   - deletes are tombstones in a shadow buffer: counts subtract,
//     reports filter; the compactor folds the shadow away once it
//     reaches a quarter of the live set, so deletions cannot tax
//     queries forever;
//   - every mutation publishes a new immutable Version (epoch-stamped
//     snapshot of levels + memtable + shadow); query batches pin one
//     Version and fan over its levels with one mixed-mode machine run
//     per level, combining by decomposability — readers never block
//     writers, writers never invalidate an in-flight read;
//   - a WAL plus internal/persist checkpoints make Open recover the
//     exact pre-crash logical state (the memtable is simply the WAL
//     tail replayed).
//
// Point IDs disambiguate duplicate coordinates and attribute
// tombstones: an ID may be reused only after a compaction has folded
// its tombstone away. Mutations are validated against the live-ID set
// before they are applied or WAL-logged, so a phantom delete or a
// duplicate insert is an error, never silent corruption.
package store

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// ErrClosed is returned by mutations submitted after Close.
var ErrClosed = errors.New("store: closed")

// ErrNoDims is returned by Open when neither the configuration nor an
// existing checkpoint provides the point dimensionality.
var ErrNoDims = errors.New("store: no dimensionality configured and no checkpoint provides one")

// Defaults used for zero Config fields.
const (
	DefaultMemtableCap = 256
	DefaultP           = 4
	DefaultShadowFrac  = 0.25
)

// Config tunes the store.
type Config struct {
	// Dims is the point dimensionality. Required unless Open finds a
	// checkpoint to take it from.
	Dims int
	// P is the machine width each level is built and queried on
	// (default DefaultP; ignored when Provider is set).
	P int
	// Provider supplies the machines levels are built and served on:
	// nil selects in-process simulators of width P, a transport.Cluster
	// runs every level build and query batch over TCP workers. The
	// provider must outlive the store (and every pinned version).
	Provider cgm.Provider
	// MemtableCap is the memtable flush threshold in buffered mutations
	// (default DefaultMemtableCap). It is also the base level size of
	// the logarithmic method.
	MemtableCap int
	// ShadowFrac triggers a full compaction (folding every tombstone)
	// when len(shadow) ≥ ShadowFrac·live (default DefaultShadowFrac).
	ShadowFrac float64
	// Backend is the element backend levels are built on (default
	// layered).
	Backend core.Backend
	// Sync runs flushes and compactions synchronously inside the
	// triggering mutation instead of on the background compactor —
	// deterministic, for tests and replay.
	Sync bool
	// SyncWAL fsyncs the WAL after every logged mutation. Off by
	// default: the durability unit is then the OS page cache, exactly
	// like an LSM store running without wal_fsync.
	SyncWAL bool
	// IngestMaxShare, in (0, 1), caps the fraction of worker wall-time
	// BulkLoad's streaming ingest may consume (core.IngestConfig
	// .MaxShare — the `rangesearch -ingest-share` QoS knob), so a bulk
	// load time-shares with concurrent serving instead of starving it.
	// Outside that range loads run uncapped.
	IngestMaxShare float64
	// Obs, when set, receives the store's state as live series — level /
	// memtable / shadow / live-point gauges, data-version epoch, flush
	// and compaction counters — plus timing histograms for compaction
	// builds, WAL appends, and checkpoints. Nil disables publishing.
	Obs *obs.Registry
	// Events, when set, receives structured store lifecycle events for
	// the cluster event archive: compaction/flush completions and
	// failures, checkpoints, bulk-load begin/end. Nil disables it.
	Events obs.EventSink
}

func (cfg Config) withDefaults() Config {
	if cfg.Provider != nil {
		cfg.P = cfg.Provider.P()
	} else {
		if cfg.P <= 0 {
			cfg.P = DefaultP
		}
		cfg.Provider = cgm.NewLocalProvider(cgm.Config{P: cfg.P})
	}
	if cfg.MemtableCap <= 0 {
		cfg.MemtableCap = DefaultMemtableCap
	}
	if cfg.ShadowFrac <= 0 {
		cfg.ShadowFrac = DefaultShadowFrac
	}
	return cfg
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Seq         uint64        // current data version
	Live        int           // live points (inserted − deleted)
	Levels      int           // occupied logarithmic levels
	Memtable    int           // buffered mutations awaiting flush
	Shadow      int           // outstanding tombstones
	Flushes     uint64        // memtable flushes (level carries)
	Compactions uint64        // full shadow-folding rebuilds
	BuildWall   time.Duration // total compactor build time
	MaxBuild    time.Duration // longest single build (the write-visibility pause; reads never wait on it)
	WALRecords  uint64        // mutation records appended to the WAL
	Checkpoints uint64
	BulkLoads   uint64 // completed BulkLoad calls
	BulkPoints  uint64 // points ingested by bulk loads
	// CompactErr is the diagnostic of a failed compaction build (e.g.
	// the machine provider's cluster lost a worker); empty when healthy.
	// A store with a failed compaction rejects further mutations — the
	// memtable could otherwise grow without bound.
	CompactErr string
	// QueryErr is the diagnostic of the first query batch aborted by a
	// machine failure (mirroring CompactErr for the read path); empty
	// when healthy. Failed batches return errors to their callers; the
	// store keeps accepting mutations, and compaction rebuilds levels on
	// fresh machines, so the condition can heal.
	QueryErr string
}

// Store is the mutable, versioned point store. All methods are safe for
// concurrent use: mutations serialize on an internal writer lock, query
// batches pin immutable versions.
type Store struct {
	cfg Config
	dir string

	// mu guards the mutable state below and every version swap.
	mu         sync.Mutex
	closed     bool
	compactErr error              // first failed compaction build; mutations fail fast on it
	queryErr   error              // first aborted query batch (Stats.QueryErr)
	mem        []geom.Point       // append-only current memtable segment
	shadow     []geom.Point       // append-only tombstones (points still present in mem/levels)
	deadIDs    map[int32]struct{} // outstanding tombstone IDs
	liveIDs    map[int32]struct{} // currently live IDs (mutation validity checks)
	levels     []*core.Tree       // binary-counter slots; nil = empty
	// levelRefs counts the references on every level tree: one for its
	// slot in s.levels while current, plus one per published version
	// holding it. A retired tree whose count hits zero closes its
	// machine eagerly — TCP sessions (and worker-resident forest state)
	// of dead levels no longer leak until Cluster.Close.
	levelRefs map[*core.Tree]int
	liveN     int
	seq       uint64
	wal       *wal // nil for an ephemeral (dir-less) store
	// checkpointMu serializes whole Checkpoint calls (rotation is under
	// mu, but snapshot write + prune must not interleave between two
	// checkpoints).
	checkpointMu sync.Mutex

	cur atomic.Pointer[Version]

	// queryMu serializes machine runs on the level trees: a cgm.Machine
	// supports one Run at a time, and retired levels stay queryable by
	// pinned versions. The compactor builds on fresh machines, so
	// builds never take this lock.
	queryMu sync.Mutex

	// compacting serializes compactor passes (background loop vs Close
	// drain vs Sync-mode inline calls).
	compacting sync.Mutex
	kick       chan struct{} // cap 1, coalescing; never closed
	stop       chan struct{}
	done       chan struct{}

	flushes, compactions, walRecords, checkpoints atomic.Uint64
	bulkLoads, bulkPoints                         atomic.Uint64
	buildNanos, maxBuildNanos                     atomic.Int64
}

// Open creates or recovers a store. With a non-empty dir the store is
// durable: an existing checkpoint is loaded, the WAL tail replayed, and
// every subsequent mutation logged. With dir == "" the store is
// ephemeral (no WAL, Checkpoint returns an error).
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:       cfg,
		dir:       dir,
		deadIDs:   make(map[int32]struct{}),
		liveIDs:   make(map[int32]struct{}),
		levelRefs: make(map[*core.Tree]int),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if dir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	if s.cfg.Dims < 1 {
		return nil, ErrNoDims
	}
	if reg := s.cfg.Obs; reg != nil {
		// The whole Stats surface as scrape-time series: cheap (one
		// snapshot per scrape) and always consistent with Stats().
		reg.Collect(func(emit obs.Emit) {
			st := s.Stats()
			emit("store_seq", float64(st.Seq))
			emit("store_live_points", float64(st.Live))
			emit("store_levels", float64(st.Levels))
			emit("store_memtable_pending", float64(st.Memtable))
			emit("store_shadow_pending", float64(st.Shadow))
			emit("store_flushes_total", float64(st.Flushes))
			emit("store_compactions_total", float64(st.Compactions))
			emit("store_wal_records_total", float64(st.WALRecords))
			emit("store_checkpoints_total", float64(st.Checkpoints))
			emit("store_bulk_loads_total", float64(st.BulkLoads))
			emit("store_bulk_points_total", float64(st.BulkPoints))
			healthy := 1.0
			if st.CompactErr != "" || st.QueryErr != "" {
				healthy = 0
			}
			emit("store_healthy", healthy)
		})
	}
	s.publishLocked() // initial version (no lock needed: not shared yet)
	go s.compactor()
	return s, nil
}

// observeNanos records a duration histogram when a registry is wired.
func (s *Store) observeNanos(name string, ns int64) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Histogram(name).Observe(ns)
	}
}

// event reports one store lifecycle event to the configured sink (the
// cluster event archive); rank is always the coordinator's.
func (s *Store) event(kind, detail string) {
	if s.cfg.Events != nil {
		s.cfg.Events(kind, obs.CoordRank, detail)
	}
}

// Close stops the compactor (finishing any pending pass) and closes the
// WAL. Mutations after Close fail with ErrClosed; pinned versions stay
// queryable.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}

// Dims reports the point dimensionality.
func (s *Store) Dims() int { return s.cfg.Dims }

// P reports the simulated machine width levels are built on.
func (s *Store) P() int { return s.cfg.P }

// Version reports the current data version. It advances on every
// mutation and on every compactor swap — the engine keys its answer
// cache on it, so a cached answer can never outlive the data it came
// from.
func (s *Store) Version() uint64 { return s.cur.Load().seq }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Seq:      s.seq,
		Live:     s.liveN,
		Memtable: len(s.mem),
		Shadow:   len(s.shadow),
	}
	if s.compactErr != nil {
		st.CompactErr = s.compactErr.Error()
	}
	if s.queryErr != nil {
		st.QueryErr = s.queryErr.Error()
	}
	for _, l := range s.levels {
		if l != nil {
			st.Levels++
		}
	}
	s.mu.Unlock()
	st.Flushes = s.flushes.Load()
	st.Compactions = s.compactions.Load()
	st.BuildWall = time.Duration(s.buildNanos.Load())
	st.MaxBuild = time.Duration(s.maxBuildNanos.Load())
	st.WALRecords = s.walRecords.Load()
	st.Checkpoints = s.checkpoints.Load()
	st.BulkLoads = s.bulkLoads.Load()
	st.BulkPoints = s.bulkPoints.Load()
	return st
}

// InsertBatch adds points and returns the data version the insert
// published. An ID may not be currently live nor still tombstoned
// (reusing an ID becomes legal once a compaction has folded its
// tombstone away); dimensionalities must match the store's. Rejected
// batches apply nothing and log nothing.
func (s *Store) InsertBatch(pts []geom.Point) (uint64, error) {
	return s.mutate(walInsert, pts, true)
}

// Insert adds one point.
func (s *Store) Insert(p geom.Point) (uint64, error) { return s.InsertBatch([]geom.Point{p}) }

// DeleteBatch removes live points (matched by ID; coordinates must be
// the stored ones — they position the tombstone for count subtraction)
// and returns the data version the delete published. Deleting an ID
// that is not currently live is an error; rejected batches apply
// nothing and log nothing.
func (s *Store) DeleteBatch(pts []geom.Point) (uint64, error) {
	return s.mutate(walDelete, pts, true)
}

// Delete removes one live point.
func (s *Store) Delete(p geom.Point) (uint64, error) { return s.DeleteBatch([]geom.Point{p}) }

// mutate is the shared write path: validate, log, apply, publish, and
// let the compactor know if thresholds tripped. WAL replay reuses it
// with logIt=false.
func (s *Store) mutate(op byte, pts []geom.Point, logIt bool) (uint64, error) {
	if len(pts) == 0 {
		return s.Version(), nil
	}
	for _, p := range pts {
		if p.Dims() != s.cfg.Dims {
			return 0, fmt.Errorf("store: point %d has %d dims, store has %d", p.ID, p.Dims(), s.cfg.Dims)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.compactErr != nil {
		err := s.compactErr
		s.mu.Unlock()
		return 0, fmt.Errorf("store: compaction failed, mutations rejected: %w", err)
	}
	// Validate the whole batch against the live set before anything is
	// logged or applied: a phantom delete or duplicate insert would
	// otherwise corrupt counts silently — and durably, via the WAL.
	seen := make(map[int32]struct{}, len(pts))
	for _, p := range pts {
		if _, dup := seen[p.ID]; dup {
			s.mu.Unlock()
			return 0, fmt.Errorf("store: point %d appears twice in one batch", p.ID)
		}
		seen[p.ID] = struct{}{}
		_, live := s.liveIDs[p.ID]
		switch {
		case op == walInsert && live:
			s.mu.Unlock()
			return 0, fmt.Errorf("store: point %d is already live", p.ID)
		case op == walInsert:
			if _, dead := s.deadIDs[p.ID]; dead {
				s.mu.Unlock()
				return 0, fmt.Errorf("store: point %d still has an outstanding tombstone", p.ID)
			}
		case op == walDelete && !live:
			s.mu.Unlock()
			return 0, fmt.Errorf("store: point %d is not live", p.ID)
		}
	}
	if logIt && s.wal != nil {
		walStart := time.Now()
		if err := s.wal.append(op, pts); err != nil {
			s.mu.Unlock()
			return 0, err
		}
		s.observeNanos("store_wal_append_ns", time.Since(walStart).Nanoseconds())
		s.walRecords.Add(1)
	}
	switch op {
	case walInsert:
		for _, p := range pts {
			s.mem = append(s.mem, p.Clone())
			s.liveIDs[p.ID] = struct{}{}
		}
		s.liveN += len(pts)
	case walDelete:
		for _, p := range pts {
			s.shadow = append(s.shadow, p.Clone())
			s.deadIDs[p.ID] = struct{}{}
			delete(s.liveIDs, p.ID)
		}
		s.liveN -= len(pts)
	}
	s.seq++
	seq := s.seq
	toClose := s.publishLocked()
	need := s.needsCompactLocked()
	s.mu.Unlock()
	closeTrees(toClose)
	if need {
		if s.cfg.Sync {
			s.compactPass()
		} else {
			select {
			case s.kick <- struct{}{}:
			default: // a pass is already pending; it re-checks thresholds
			}
		}
	}
	return seq, nil
}

// publishLocked installs a fresh immutable Version of the current state.
// mem and shadow are captured as full-slice expressions: writers only
// ever append (never overwrite a published index), so pinned prefixes
// stay valid without copying. The new version takes a reference on every
// level it holds; the superseded version drops its own once its last Pin
// is released. publishLocked returns any trees whose reference count hit
// zero — the caller must close them outside the lock.
func (s *Store) publishLocked() []*core.Tree {
	v := &Version{
		s:       s,
		seq:     s.seq,
		levels:  slices.Clone(s.levels),
		mem:     s.mem[:len(s.mem):len(s.mem)],
		shadow:  s.shadow[:len(s.shadow):len(s.shadow)],
		liveN:   s.liveN,
		current: true,
	}
	for _, l := range v.levels {
		if l != nil {
			s.levelRefs[l]++
		}
	}
	prev := s.cur.Load()
	s.cur.Store(v)
	if prev == nil {
		return nil
	}
	prev.current = false
	return s.maybeReleaseLocked(prev)
}

// maybeReleaseLocked drops a superseded, unpinned version's level
// references, returning the trees to close (reference count zero).
func (s *Store) maybeReleaseLocked(v *Version) []*core.Tree {
	if v.released || v.current || v.pins > 0 {
		return nil
	}
	v.released = true
	var toClose []*core.Tree
	for _, l := range v.levels {
		if l == nil {
			continue
		}
		s.levelRefs[l]--
		if s.levelRefs[l] == 0 {
			delete(s.levelRefs, l)
			toClose = append(toClose, l)
		}
	}
	return toClose
}

// closeTrees closes retired level machines (ending their transport
// sessions — and with them any worker-resident forest state). Must be
// called outside s.mu.
func closeTrees(trees []*core.Tree) {
	for _, t := range trees {
		t.Machine().Close()
	}
}

// noteQueryErr records the first aborted query batch for Stats.QueryErr.
func (s *Store) noteQueryErr(err error) {
	s.mu.Lock()
	if s.queryErr == nil {
		s.queryErr = err
	}
	s.mu.Unlock()
}

// needsCompactLocked reports whether a flush or fold threshold tripped.
func (s *Store) needsCompactLocked() bool {
	if len(s.mem) >= s.cfg.MemtableCap {
		return true
	}
	return len(s.shadow) > 0 && float64(len(s.shadow)) >= s.cfg.ShadowFrac*float64(s.liveN)
}

// compactor is the background goroutine: each kick runs passes until no
// threshold remains tripped.
func (s *Store) compactor() {
	defer close(s.done)
	for {
		select {
		case <-s.kick:
			for s.compactPass() {
			}
		case <-s.stop:
			return
		}
	}
}

// compactPass runs one flush or fold if a threshold is tripped; it
// reports whether it did any work. The expensive build happens on a
// fresh machine outside every lock: queries keep serving the old
// version, writers keep appending, and the swap at the end is O(small).
func (s *Store) compactPass() bool {
	s.compacting.Lock()
	defer s.compacting.Unlock()

	// Snapshot the state to compact.
	s.mu.Lock()
	if !s.needsCompactLocked() {
		s.mu.Unlock()
		return false
	}
	memSnap := len(s.mem)
	shadowSnap := len(s.shadow)
	levelsSnap := slices.Clone(s.levels)
	mem := s.mem[:memSnap:memSnap]
	shadow := s.shadow[:shadowSnap:shadowSnap]
	fold := len(shadow) > 0 && float64(len(shadow)) >= s.cfg.ShadowFrac*float64(s.liveN)
	s.mu.Unlock()

	dead := make(map[int32]struct{}, len(shadow))
	for _, p := range shadow {
		dead[p.ID] = struct{}{}
	}
	consumed := make(map[int32]struct{})
	keep := func(pts []geom.Point, acc []geom.Point) []geom.Point {
		for _, p := range pts {
			if _, d := dead[p.ID]; d {
				consumed[p.ID] = struct{}{}
				continue
			}
			acc = append(acc, p)
		}
		return acc
	}

	// Collect the rebuild mass: always the snapshotted memtable; on a
	// fold, every level too; on a flush, the occupied low levels the
	// binary-counter carry merges. Reading level points serializes with
	// query batches (resident levels fetch from their worker sessions),
	// and a machine abort mid-read records like a failed build instead
	// of crashing the compactor.
	var acc []geom.Point
	newLevels := slices.Clone(levelsSnap)
	slot := 0
	collectErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("store: compaction point collection aborted: %v", r)
			}
		}()
		s.queryMu.Lock()
		defer s.queryMu.Unlock()
		acc = keep(mem, acc)
		if fold {
			for i, l := range newLevels {
				if l != nil {
					acc = keep(l.AllPoints(), acc)
					newLevels[i] = nil
				}
			}
			// The fold also consumes tombstones of points that were only
			// ever in the memtable — everything snapshotted is accounted.
			for _, p := range shadow {
				consumed[p.ID] = struct{}{}
			}
		} else {
			for ; slot < len(newLevels) && newLevels[slot] != nil; slot++ {
				acc = keep(newLevels[slot].AllPoints(), acc)
				newLevels[slot] = nil
			}
		}
		return nil
	}()
	if collectErr != nil {
		s.mu.Lock()
		if s.compactErr == nil {
			s.compactErr = collectErr
		}
		s.mu.Unlock()
		s.event("compact_error", collectErr.Error())
		return false
	}

	if len(acc) > 0 {
		start := time.Now()
		built, err := s.buildLevel(acc)
		if err != nil {
			// Leave the snapshotted state untouched: the store keeps
			// serving the published version, but mutations fail fast so
			// an uncompactable memtable cannot grow without bound.
			s.mu.Lock()
			if s.compactErr == nil {
				s.compactErr = err
			}
			s.mu.Unlock()
			s.event("compact_error", err.Error())
			return false
		}
		wall := time.Since(start)
		s.observeNanos("store_compact_build_ns", wall.Nanoseconds())
		s.buildNanos.Add(wall.Nanoseconds())
		if w := wall.Nanoseconds(); w > s.maxBuildNanos.Load() {
			s.maxBuildNanos.Store(w)
		}
		if fold {
			newLevels = newLevels[:0]
			newLevels = append(newLevels, built)
		} else {
			for len(newLevels) <= slot {
				newLevels = append(newLevels, nil)
			}
			newLevels[slot] = built
		}
	}
	for len(newLevels) > 0 && newLevels[len(newLevels)-1] == nil {
		newLevels = newLevels[:len(newLevels)-1]
	}
	if fold {
		s.compactions.Add(1)
		s.event("compaction", fmt.Sprintf("fold: %d points into one level", len(acc)))
	} else {
		s.flushes.Add(1)
		s.event("compaction", fmt.Sprintf("flush: %d points into level %d", len(acc), slot))
	}

	// Swap: splice out what was compacted, retain what arrived since
	// the snapshot, and publish the new version. Passes serialize on
	// s.compacting and only compaction rewrites s.levels, so s.levels
	// still equals levelsSnap here; the slot bookkeeping moves the
	// store's own reference from retired trees to built ones.
	s.mu.Lock()
	var toClose []*core.Tree
	inNew := make(map[*core.Tree]bool, len(newLevels))
	for _, l := range newLevels {
		if l != nil {
			inNew[l] = true
		}
	}
	wasOld := make(map[*core.Tree]bool, len(levelsSnap))
	for _, l := range levelsSnap {
		if l == nil {
			continue
		}
		wasOld[l] = true
		if inNew[l] {
			continue
		}
		s.levelRefs[l]--
		if s.levelRefs[l] == 0 {
			delete(s.levelRefs, l)
			toClose = append(toClose, l)
		}
	}
	for _, l := range newLevels {
		if l != nil && !wasOld[l] {
			s.levelRefs[l]++
		}
	}
	s.levels = newLevels
	s.mem = append([]geom.Point(nil), s.mem[memSnap:]...)
	var remaining []geom.Point
	for _, p := range s.shadow[:shadowSnap] {
		if _, c := consumed[p.ID]; !c {
			remaining = append(remaining, p)
		}
	}
	s.shadow = append(remaining, s.shadow[shadowSnap:]...)
	s.deadIDs = make(map[int32]struct{}, len(s.shadow))
	for _, p := range s.shadow {
		s.deadIDs[p.ID] = struct{}{}
	}
	s.seq++
	toClose = append(toClose, s.publishLocked()...)
	s.mu.Unlock()
	closeTrees(toClose)
	return true
}

// Compact forces passes until no threshold remains tripped (tests and
// the CLI's explicit maintenance hook).
func (s *Store) Compact() {
	for s.compactPass() {
	}
}

// buildLevel builds one level tree on a fresh machine from the store's
// provider, converting machine aborts (panics by cgm contract — e.g. a
// TCP cluster losing a worker mid-build) into errors the compactor can
// record instead of crashing the process. On a resident machine the
// points are staged into the workers first and the construction runs
// held (BuildWorkerFed): the compactor's rebuild mass crosses the
// coordinator once as raw ingest chunks and never again — every
// sample-sort and routing exchange of the build stays on the worker
// mesh.
func (s *Store) buildLevel(pts []geom.Point) (t *core.Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("store: level build aborted: %v", r)
		}
	}()
	mach, err := s.cfg.Provider.NewMachine()
	if err != nil {
		return nil, fmt.Errorf("store: level build machine: %w", err)
	}
	return core.BuildWorkerFed(mach, pts, s.cfg.Backend), nil
}
