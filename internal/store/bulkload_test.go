package store

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
)

// TestBulkLoad streams a batch into the store as one level and checks
// the result against the brute oracle, the all-or-nothing ID contract,
// and the interaction with ordinary mutations and compaction — on both
// residency modes.
func TestBulkLoad(t *testing.T) {
	for _, resident := range []bool{false, true} {
		name := "fabric"
		if resident {
			name = "resident"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			s, err := Open("", Config{Dims: 2, MemtableCap: 64, Sync: true,
				Provider: cgm.NewLocalProvider(cgm.Config{P: 4, Resident: resident})})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			base := randomPoints(rng, 200, 2, 0)
			if _, err := s.InsertBatch(base); err != nil {
				t.Fatal(err)
			}
			bulk := randomPoints(rng, 300, 2, 1000)
			if _, err := s.BulkLoad(core.SliceChunks(bulk, 37)); err != nil {
				t.Fatalf("bulk load: %v", err)
			}
			boxes := randomBoxes(rng, 24, 500, 2)
			checkOracle(t, s, append(append([]geom.Point(nil), base...), bulk...), boxes)

			st := s.Stats()
			if st.BulkLoads != 1 || st.BulkPoints != 300 {
				t.Fatalf("bulk counters: %+v", st)
			}

			// A stream repeating a live ID is rejected whole.
			if _, err := s.BulkLoad(core.SliceChunks(randomPoints(rng, 10, 2, 1000), 4)); err == nil ||
				!strings.Contains(err.Error(), "already live") {
				t.Fatalf("colliding bulk load: %v", err)
			}
			checkOracle(t, s, append(append([]geom.Point(nil), base...), bulk...), boxes)

			// Bulk-loaded points are ordinary live points: deletable, and
			// the next fold absorbs the bulk level.
			if _, err := s.DeleteBatch(bulk[:50]); err != nil {
				t.Fatalf("delete bulk points: %v", err)
			}
			s.Compact()
			if cerr := s.Stats().CompactErr; cerr != "" {
				t.Fatalf("compaction after bulk load: %s", cerr)
			}
			liveSet := append(append([]geom.Point(nil), base...), bulk[50:]...)
			checkOracle(t, s, liveSet, boxes)
		})
	}
}

// TestBulkLoadDurable checks the checkpoint-on-load contract: a durable
// store recovers the bulk points even though they never hit the WAL.
func TestBulkLoadDurable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	s, err := Open(dir, Config{Dims: 2, MemtableCap: 64, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	base := randomPoints(rng, 50, 2, 0)
	if _, err := s.InsertBatch(base); err != nil {
		t.Fatal(err)
	}
	bulk := randomPoints(rng, 120, 2, 500)
	if _, err := s.BulkLoad(core.SliceChunks(bulk, 32)); err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	if s.Stats().Checkpoints == 0 {
		t.Fatal("durable bulk load did not checkpoint")
	}
	// Mutate after the load so the recovered WAL tail replays on top.
	extra := randomPoints(rng, 30, 2, 2000)
	if _, err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	boxes := randomBoxes(rng, 16, 500, 2)
	liveSet := append(append([]geom.Point(nil), base...), bulk...)
	liveSet = append(liveSet, extra...)
	checkOracle(t, r, liveSet, boxes)
}
