package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"strings"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d int, idBase int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(4 * (n + 1)))
		}
		pts[i] = geom.Point{ID: idBase + int32(i), X: x}
	}
	return pts
}

func randomBoxes(rng *rand.Rand, q, span, d int) []geom.Box {
	boxes := make([]geom.Box, q)
	for i := range boxes {
		lo := make([]geom.Coord, d)
		hi := make([]geom.Coord, d)
		for j := 0; j < d; j++ {
			a := geom.Coord(rng.Intn(4 * (span + 1)))
			b := geom.Coord(rng.Intn(4 * (span + 1)))
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

// checkOracle compares counts and reports of the store's current
// version against a brute scan of the expected live set.
func checkOracle(t *testing.T, s *Store, live []geom.Point, boxes []geom.Box) {
	t.Helper()
	bf := brute.New(live)
	counts, err := s.CountBatch(boxes)
	if err != nil {
		t.Fatalf("count batch: %v", err)
	}
	reports, err := s.ReportBatch(boxes)
	if err != nil {
		t.Fatalf("report batch: %v", err)
	}
	for i, b := range boxes {
		if counts[i] != int64(bf.Count(b)) {
			t.Fatalf("box %d: count %d, oracle %d", i, counts[i], bf.Count(b))
		}
		if !reflect.DeepEqual(brute.IDs(reports[i]), brute.IDs(bf.Report(b))) {
			t.Fatalf("box %d: report mismatch (%d vs %d pts)", i, len(reports[i]), bf.Count(b))
		}
	}
}

func TestMutationsMatchOracle(t *testing.T) {
	for _, p := range []int{1, 4} {
		rng := rand.New(rand.NewSource(int64(p)))
		s, err := Open("", Config{Dims: 2, P: p, MemtableCap: 32, Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		live := map[int32]geom.Point{}
		var nextID int32
		apply := func() []geom.Point {
			out := make([]geom.Point, 0, len(live))
			for _, pt := range live {
				out = append(out, pt)
			}
			return out
		}
		for round := 0; round < 30; round++ {
			switch rng.Intn(3) {
			case 0, 1: // insert a batch
				pts := randomPoints(rng, 1+rng.Intn(25), 2, nextID)
				nextID += int32(len(pts))
				if _, err := s.InsertBatch(pts); err != nil {
					t.Fatal(err)
				}
				for _, pt := range pts {
					live[pt.ID] = pt
				}
			case 2: // delete some live points
				var del []geom.Point
				for _, pt := range live {
					if rng.Intn(3) == 0 {
						del = append(del, pt)
					}
					if len(del) == 10 {
						break
					}
				}
				if _, err := s.DeleteBatch(del); err != nil {
					t.Fatal(err)
				}
				for _, pt := range del {
					delete(live, pt.ID)
				}
			}
			checkOracle(t, s, apply(), randomBoxes(rng, 6, 60, 2))
		}
		if s.LiveN() != len(live) {
			t.Fatalf("p=%d: store says %d live, oracle %d", p, s.LiveN(), len(live))
		}
	}
}

func TestVersionSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := Open("", Config{Dims: 2, P: 2, MemtableCap: 16, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first := randomPoints(rng, 40, 2, 0)
	if _, err := s.InsertBatch(first); err != nil {
		t.Fatal(err)
	}
	pinned := s.Pin()
	boxes := randomBoxes(rng, 8, 40, 2)
	before, err := pinned.CountBatch(boxes)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate heavily: inserts, deletes, flushes, a fold.
	if _, err := s.InsertBatch(randomPoints(rng, 100, 2, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteBatch(first[:30]); err != nil {
		t.Fatal(err)
	}
	s.Compact()

	// The pinned version still answers as of its epoch.
	after, err := pinned.CountBatch(boxes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("pinned version drifted: %v vs %v", before, after)
	}
	bf := brute.New(first)
	for i, b := range boxes {
		if after[i] != int64(bf.Count(b)) {
			t.Fatalf("pinned box %d: %d vs oracle %d", i, after[i], bf.Count(b))
		}
	}
	if s.Version() <= pinned.Seq() {
		t.Fatal("version did not advance across mutations")
	}
}

func TestShadowFoldCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, err := Open("", Config{Dims: 2, P: 2, MemtableCap: 16, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := randomPoints(rng, 160, 2, 0)
	if _, err := s.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Flushes == 0 {
		t.Fatal("memtable never flushed")
	}
	// Delete 45% — must trip the ≥25% shadow fold.
	if _, err := s.DeleteBatch(pts[:72]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no fold after deleting 45%%: %+v", st)
	}
	if st.Shadow != 0 {
		t.Fatalf("shadow not folded away: %d tombstones left", st.Shadow)
	}
	checkOracle(t, s, pts[72:], randomBoxes(rng, 10, 160, 2))
}

func TestCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 90, 3, 0)

	s, err := Open(filepath.Join(dir, "db"), Config{Dims: 3, P: 2, MemtableCap: 16, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertBatch(pts[:60]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteBatch(pts[:10]); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL tail after the checkpoint.
	if _, err := s.InsertBatch(pts[60:]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteBatch(pts[60:65]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(filepath.Join(dir, "db"), Config{P: 2, MemtableCap: 16, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Dims() != 3 {
		t.Fatalf("recovered dims %d", re.Dims())
	}
	var expect []geom.Point
	expect = append(expect, pts[10:60]...)
	expect = append(expect, pts[65:]...)
	if re.LiveN() != len(expect) {
		t.Fatalf("recovered %d live points, want %d", re.LiveN(), len(expect))
	}
	checkOracle(t, re, expect, randomBoxes(rng, 12, 90, 3))
}

func TestRecoverWithoutCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 50, 2, 0)

	s, err := Open(dir, Config{Dims: 2, P: 1, MemtableCap: 8, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteBatch(pts[:7]); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the WAL alone must reconstruct the state.
	re, err := Open(dir, Config{Dims: 2, P: 1, MemtableCap: 8, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkOracle(t, re, pts[7:], randomBoxes(rng, 10, 50, 2))
	_ = s // the abandoned handle is never used again
}

func TestTornWALTailIsIgnored(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	s, err := Open(dir, Config{Dims: 1, P: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(geom.Point{ID: 1, X: []geom.Coord{5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(geom.Point{ID: 2, X: []geom.Coord{9}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the last record in half.
	seqs, err := segments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no wal segment: %v", err)
	}
	path := filepath.Join(dir, walName(seqs[len(seqs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Config{Dims: 1, P: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.LiveN(); n != 1 {
		t.Fatalf("recovered %d points from torn wal, want 1", n)
	}
}

// TestStaleHighNamedSegmentNotReplayedTwice is the regression test for
// the checkpoint-crash double-replay bug: a WAL segment left behind with
// an inflated start label (a checkpoint rotation that crashed before the
// snapshot rename, after recovery renumbered seqs downward) must not
// survive the next successful checkpoint and be replayed on top of it.
func TestStaleHighNamedSegmentNotReplayedTwice(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	cfg := Config{Dims: 1, P: 1, MemtableCap: 1024, Sync: true}
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	for i := 0; i < 5; i++ {
		pts = append(pts, geom.Point{ID: int32(i), X: []geom.Coord{geom.Coord(10 * i)}})
	}
	if _, err := s.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the crashed incarnation: its only segment carries a
	// label far beyond anything the next recovery will renumber to.
	seqs, err := segments(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", seqs, err)
	}
	if err := os.Rename(filepath.Join(dir, walName(seqs[0])), filepath.Join(dir, walName(50))); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.LiveN() != 5 {
		t.Fatalf("recovered %d points, want 5", re.LiveN())
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Insert(geom.Point{ID: 100, X: []geom.Coord{99}}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	// The checkpoint embodies the 5 points; if wal-50 outlived it, this
	// recovery replays those inserts a second time and over-counts.
	fin, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fin.Close()
	if fin.LiveN() != 6 {
		t.Fatalf("recovered %d points after checkpoint+insert, want 6 (stale segment replayed?)", fin.LiveN())
	}
	box := []geom.Box{{Lo: []geom.Coord{0}, Hi: []geom.Coord{100}}}
	got, err := fin.CountBatch(box)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 {
		t.Fatalf("count %d, want 6", got[0])
	}
}

func TestDoubleDeleteRejected(t *testing.T) {
	s, err := Open("", Config{Dims: 1, MemtableCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := geom.Point{ID: 3, X: []geom.Coord{1}}
	if _, err := s.Insert(p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(p); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestClosedStoreRejectsMutations(t *testing.T) {
	s, err := Open("", Config{Dims: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := s.Pin()
	if _, err := s.Insert(geom.Point{ID: 1, X: []geom.Coord{4}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Insert(geom.Point{ID: 2, X: []geom.Coord{5}}); err != ErrClosed {
		t.Fatalf("mutation after close: %v", err)
	}
	// Pinned versions outlive Close.
	got, gerr := v.CountBatch([]geom.Box{{Lo: []geom.Coord{0}, Hi: []geom.Coord{10}}})
	if gerr != nil {
		t.Fatal(gerr)
	}
	if got[0] != 0 {
		t.Fatalf("pre-insert pin sees %d", got[0])
	}
}

func TestDimsMismatchRejected(t *testing.T) {
	s, err := Open("", Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Insert(geom.Point{ID: 1, X: []geom.Coord{4}}); err == nil {
		t.Fatal("1-dim point accepted by 2-dim store")
	}
	if _, err := Open("", Config{}); err == nil {
		t.Fatal("store without dims accepted")
	}
}

// poisonedProvider yields machines whose every Run aborts — the state a
// TCP cluster is in after losing a worker.
type poisonedProvider struct{}

func (poisonedProvider) P() int { return 1 }
func (poisonedProvider) NewMachine() (*cgm.Machine, error) {
	m := cgm.New(cgm.Config{P: 1})
	func() {
		defer func() { recover() }()
		m.Run(func(*cgm.Proc) { panic("worker lost") })
	}()
	return m, nil // poisoned: the next Run fails fast
}
func (poisonedProvider) Close() error { return nil }

// TestRecoveryBuildFailureReturnsError: a provider whose builds abort
// (a broken cluster) must fail Open with an error — the checkpoint
// rebuild path has to convert machine aborts exactly like the
// compactor's buildLevel does, never crash the process.
func TestRecoveryBuildFailureReturnsError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	rng := rand.New(rand.NewSource(13))
	s, err := Open(dir, Config{Dims: 2, P: 1, MemtableCap: 8, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertBatch(randomPoints(rng, 30, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Config{Provider: poisonedProvider{}, MemtableCap: 8, Sync: true})
	if err == nil {
		t.Fatal("Open succeeded on a provider whose builds abort")
	}
	if !strings.Contains(err.Error(), "rebuilding checkpoint") {
		t.Fatalf("wrong error: %v", err)
	}
}
