package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/persist"
)

// Durability layout. A store directory holds:
//
//	checkpoint          persist.SaveSet snapshot of the live set at seq c
//	wal-<startSeq>.log  mutation records for versions ≥ startSeq
//
// Every logical mutation appends one WAL record; compactions append
// nothing (levels are derived state, deterministically rebuildable).
// Checkpoint rotates the WAL to a fresh segment at the captured seq,
// writes the snapshot to a temp file, renames it into place, and only
// then deletes segments that predate it — a crash at any point leaves
// either the old checkpoint with its full segment chain or the new one
// with its (possibly still overlapping-by-zero) tail. Recovery loads
// the newest checkpoint and replays, in startSeq order, every segment
// at or after it; a torn final record (partial write at crash) ends
// replay exactly like an LSM WAL tail.

const (
	walInsert byte = 1
	walDelete byte = 2

	checkpointName = "checkpoint"
	walPrefix      = "wal-"
	walSuffix      = ".log"
)

// wal is one append-only segment file. Writes go straight to the file
// descriptor (no userspace buffering), so an abandoned store loses at
// most what the OS page cache held — and nothing at all with SyncWAL.
type wal struct {
	path string
	f    *os.File
	sync bool
	buf  []byte
}

func walName(startSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", walPrefix, startSeq, walSuffix)
}

func openWAL(dir string, startSeq uint64, sync bool) (*wal, error) {
	path := filepath.Join(dir, walName(startSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening wal segment: %w", err)
	}
	return &wal{path: path, f: f, sync: sync}, nil
}

// append logs one mutation: [len u32][payload][crc32(payload) u32],
// payload = [op u8][npts u32][{id i32, coords i32×dims} ...].
func (w *wal) append(op byte, pts []geom.Point) error {
	dims := pts[0].Dims()
	need := 1 + 4 + len(pts)*4*(1+dims)
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(need))
	w.buf = append(w.buf, op)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(pts)))
	for _, p := range pts {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(p.ID))
		for _, x := range p.X {
			w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(x))
		}
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf[4:]))
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("store: appending wal record: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing wal: %w", err)
		}
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// walRecord is one decoded mutation.
type walRecord struct {
	op  byte
	pts []geom.Point
}

// readSegment decodes a segment, stopping cleanly at a torn tail.
func readSegment(path string, dims int) ([]walRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading wal segment: %w", err)
	}
	var recs []walRecord
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			break // torn length header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+4+n+4 > len(data) {
			break // torn payload or crc
		}
		payload := data[off+4 : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		off += 4 + n + 4
		if len(payload) < 5 {
			return nil, fmt.Errorf("store: wal record too short in %s", path)
		}
		op := payload[0]
		if op != walInsert && op != walDelete {
			return nil, fmt.Errorf("store: wal record has unknown op %d in %s", op, path)
		}
		npts := int(binary.LittleEndian.Uint32(payload[1:]))
		if len(payload) != 5+npts*4*(1+dims) {
			return nil, fmt.Errorf("store: wal record sized for wrong dims in %s", path)
		}
		pts := make([]geom.Point, npts)
		p := 5
		for i := range pts {
			pts[i].ID = int32(binary.LittleEndian.Uint32(payload[p:]))
			p += 4
			pts[i].X = make([]geom.Coord, dims)
			for j := 0; j < dims; j++ {
				pts[i].X[j] = geom.Coord(binary.LittleEndian.Uint32(payload[p:]))
				p += 4
			}
		}
		recs = append(recs, walRecord{op: op, pts: pts})
	}
	return recs, nil
}

// nextSegStart picks the start label for a fresh WAL segment: at least
// atLeast, and strictly greater than every segment already on disk.
// Crash recovery renumbers seqs (compaction bumps are not WAL-logged),
// so the in-memory seq can lag a segment name left by an earlier
// incarnation — naming monotonically past everything on disk keeps two
// invariants the replay and prune rules rely on: segment names strictly
// increase across rotations, and a checkpoint's recorded seq (its
// rotation segment's name) supersedes exactly the segments named below
// it.
func nextSegStart(dir string, atLeast uint64) (uint64, error) {
	seqs, err := segments(dir)
	if err != nil {
		return 0, err
	}
	if len(seqs) > 0 && seqs[len(seqs)-1] >= atLeast {
		return seqs[len(seqs)-1] + 1, nil
	}
	return atLeast, nil
}

// segments lists the directory's WAL segments sorted by startSeq.
func segments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, v)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// recover loads the checkpoint (if any), replays the WAL tail, and
// leaves the store appending to a fresh segment at the recovered seq.
// Called from Open before the store is shared.
func (s *Store) recover() error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", s.dir, err)
	}

	var checkSeq uint64
	ckPath := filepath.Join(s.dir, checkpointName)
	if f, err := os.Open(ckPath); err == nil {
		snap, lerr := persist.LoadSet(f)
		f.Close()
		if lerr != nil {
			return lerr
		}
		if s.cfg.Dims == 0 {
			s.cfg.Dims = snap.Dims
		} else if s.cfg.Dims != snap.Dims {
			return fmt.Errorf("store: config says %d dims, checkpoint says %d", s.cfg.Dims, snap.Dims)
		}
		checkSeq = snap.Seq
		s.seq = snap.Seq
		if len(snap.Points) > 0 {
			// buildLevel converts machine aborts (panics by cgm contract,
			// e.g. a cluster worker dying mid-rebuild) into errors, so a
			// bad cluster fails Open cleanly instead of crashing.
			built, err := s.buildLevel(snap.Points)
			if err != nil {
				return fmt.Errorf("store: rebuilding checkpoint: %w", err)
			}
			s.levels = []*core.Tree{built}
			s.levelRefs[built]++ // the store's own slot reference
			s.liveN = len(snap.Points)
			for _, p := range snap.Points {
				s.liveIDs[p.ID] = struct{}{}
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: opening checkpoint: %w", err)
	}
	if s.cfg.Dims < 1 {
		return nil // Open reports the missing-dims error uniformly
	}

	// Replay every segment at or after the checkpoint, oldest first.
	seqs, err := segments(s.dir)
	if err != nil {
		return err
	}
	for _, start := range seqs {
		if start < checkSeq {
			continue
		}
		recs, err := readSegment(filepath.Join(s.dir, walName(start)), s.cfg.Dims)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if _, err := s.mutate(rec.op, rec.pts, false); err != nil {
				return fmt.Errorf("store: replaying wal: %w", err)
			}
		}
	}
	// Replay used the normal mutation path with the compactor not yet
	// running; fold what tripped so the recovered store starts fresh.
	for s.compactPass() {
	}

	// Renumbering during replay may have left s.seq behind segment
	// names from the previous incarnation; jump past them so segment
	// names and future checkpoint seqs stay strictly monotonic.
	start, err := nextSegStart(s.dir, s.seq)
	if err != nil {
		return err
	}
	s.seq = start
	w, err := openWAL(s.dir, start, s.cfg.SyncWAL)
	if err != nil {
		return err
	}
	s.wal = w
	return nil
}

// Checkpoint captures the current live set through internal/persist,
// rotates the WAL, and prunes segments the new checkpoint supersedes.
// On return the on-disk state recovers to (at least) the captured
// version even if the process dies immediately after. Concurrent
// checkpoints serialize: interleaving two could rename an older
// snapshot over a newer one after the newer call pruned the segments
// covering the gap.
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("store: ephemeral store (no directory) cannot checkpoint")
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	cpStart := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	v := s.cur.Load()
	v.pins++ // keep the snapshot's levels alive through the O(n) read below
	// Rotate: records after this point belong to the new segment; every
	// segment named below it only holds mutations the snapshot (taken
	// at v, which is exactly the WAL state — mutations hold mu too)
	// already embodies. The rotation label, not v.seq, is what the
	// checkpoint records as its seq: names stay strictly monotonic even
	// across crash-recovery renumbering, so the "replay ≥ checkpoint
	// seq, prune < it" rules can never resurrect or double-apply a
	// record.
	rotStart, err := nextSegStart(s.dir, v.seq)
	if err != nil {
		v.pins--
		s.mu.Unlock()
		return err
	}
	w, err := openWAL(s.dir, rotStart, s.cfg.SyncWAL)
	if err != nil {
		v.pins--
		s.mu.Unlock()
		return err
	}
	old := s.wal
	s.wal = w
	if s.seq < rotStart {
		s.seq = rotStart
	}
	s.mu.Unlock()
	old.close()
	pts := v.AllLive() // outside mu: v is immutable, writers need not stall on O(n) work
	v.Release()

	f, err := os.CreateTemp(s.dir, checkpointName+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: creating checkpoint: %w", err)
	}
	tmp := f.Name()
	if err := persist.SaveSet(f, pts, s.cfg.Dims, s.cfg.P, s.cfg.Backend, rotStart); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, checkpointName)); err != nil {
		return fmt.Errorf("store: installing checkpoint: %w", err)
	}
	s.observeNanos("store_checkpoint_ns", time.Since(cpStart).Nanoseconds())
	s.event("checkpoint", fmt.Sprintf("%d live points at seq %d (%s)", len(pts), rotStart, time.Since(cpStart).Round(time.Millisecond)))
	// The rename is the commit point; superseded segments can go.
	seqs, err := segments(s.dir)
	if err != nil {
		return err
	}
	for _, start := range seqs {
		if start < rotStart {
			os.Remove(filepath.Join(s.dir, walName(start)))
		}
	}
	s.checkpoints.Add(1)
	return nil
}
