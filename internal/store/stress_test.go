package store

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/brute"
	"repro/internal/geom"
)

// oracleLog pairs the store with a mutation journal: every committed
// mutation is recorded with the seq it produced, so a reader can pin a
// version and reconstruct the exact live set at that seq.
type oracleLog struct {
	mu      sync.Mutex
	entries []oracleEntry
}

type oracleEntry struct {
	seq    uint64
	insert bool
	pts    []geom.Point
}

// liveAt replays the journal up to (and including) seq.
func (o *oracleLog) liveAt(seq uint64) []geom.Point {
	o.mu.Lock()
	defer o.mu.Unlock()
	live := map[int32]geom.Point{}
	for _, e := range o.entries {
		if e.seq > seq {
			// Seqs are recorded in increasing order per writer but the
			// slice interleaves writers; scan everything ≤ seq.
			continue
		}
		for _, p := range e.pts {
			if e.insert {
				live[p.ID] = p
			} else {
				delete(live, p.ID)
			}
		}
	}
	out := make([]geom.Point, 0, len(live))
	for _, p := range live {
		out = append(out, p)
	}
	return out
}

// TestConcurrentMutationStress interleaves 4 writer goroutines with 8
// reader goroutines under -race: every reader pins a version, derives
// the oracle live set for that exact seq from the journal, and demands
// agreement in count and report mode. Compaction runs in the
// background throughout. Covers p ∈ {1, 4}.
func TestConcurrentMutationStress(t *testing.T) {
	for _, p := range []int{1, 4} {
		p := p
		t.Run(map[int]string{1: "p=1", 4: "p=4"}[p], func(t *testing.T) {
			const (
				writers       = 4
				readers       = 8
				writerOps     = 60
				readerQueries = 25
				d             = 2
			)
			s, err := Open("", Config{Dims: d, P: p, MemtableCap: 24})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			oracle := &oracleLog{}
			var nextID atomic.Int32

			// mutateLocked commits one mutation and journals it with the
			// exact seq the store published for it; holding the oracle
			// lock across commit+journal means any version a reader can
			// pin has its full journal prefix visible by the time
			// liveAt acquires the same lock.
			mutateLocked := func(insert bool, pts []geom.Point) error {
				oracle.mu.Lock()
				defer oracle.mu.Unlock()
				var seq uint64
				var err error
				if insert {
					seq, err = s.InsertBatch(pts)
				} else {
					seq, err = s.DeleteBatch(pts)
				}
				if err != nil {
					return err
				}
				oracle.entries = append(oracle.entries, oracleEntry{
					seq: seq, insert: insert, pts: pts,
				})
				return nil
			}
			// Deletable IDs: points known committed and not yet claimed
			// for deletion by any writer.
			var delMu sync.Mutex
			deletable := map[int32]geom.Point{}

			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100*p + w)))
					for op := 0; op < writerOps; op++ {
						if rng.Intn(3) == 0 {
							delMu.Lock()
							var del []geom.Point
							for id, pt := range deletable {
								del = append(del, pt)
								delete(deletable, id)
								if len(del) == 3 {
									break
								}
							}
							delMu.Unlock()
							if len(del) == 0 {
								continue
							}
							if err := mutateLocked(false, del); err != nil {
								errs <- err
								return
							}
						} else {
							k := 1 + rng.Intn(6)
							base := nextID.Add(int32(k)) - int32(k)
							pts := randomPoints(rng, k, d, base)
							if err := mutateLocked(true, pts); err != nil {
								errs <- err
								return
							}
							delMu.Lock()
							for _, pt := range pts {
								deletable[pt.ID] = pt
							}
							delMu.Unlock()
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(200*p + r)))
					for q := 0; q < readerQueries; q++ {
						v := s.Pin()
						live := oracle.liveAt(v.Seq())
						bf := brute.New(live)
						boxes := randomBoxes(rng, 3, 80, d)
						counts, cerr := v.CountBatch(boxes)
						if cerr != nil {
							t.Errorf("p=%d reader %d: count batch: %v", p, r, cerr)
							return
						}
						reports, rerr := v.ReportBatch(boxes)
						if rerr != nil {
							t.Errorf("p=%d reader %d: report batch: %v", p, r, rerr)
							return
						}
						for i, b := range boxes {
							if counts[i] != int64(bf.Count(b)) {
								t.Errorf("p=%d reader %d seq %d: count %d, oracle %d",
									p, r, v.Seq(), counts[i], bf.Count(b))
								return
							}
							got := brute.IDs(reports[i])
							want := brute.IDs(bf.Report(b))
							if len(got) != len(want) {
								t.Errorf("p=%d reader %d seq %d: report %d pts, oracle %d",
									p, r, v.Seq(), len(got), len(want))
								return
							}
							for j := range got {
								if got[j] != want[j] {
									t.Errorf("p=%d reader %d: report ID mismatch", p, r)
									return
								}
							}
						}
					}
				}(r)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Final convergence check against the full journal.
			final := s.Pin()
			live := oracle.liveAt(^uint64(0))
			if final.N() != len(live) {
				t.Fatalf("p=%d: final live %d, oracle %d", p, final.N(), len(live))
			}
			checkOracle(t, s, live, randomBoxes(rand.New(rand.NewSource(99)), 8, 80, d))
		})
	}
}
