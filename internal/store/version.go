package store

import (
	"slices"

	"repro/internal/core"
	"repro/internal/geom"
)

// Version is one epoch-stamped, immutable snapshot of the store: a set
// of level trees plus frozen prefixes of the memtable and the deletion
// shadow. Pinning a version is just holding the pointer — levels a
// later compaction retires stay alive (and queryable) for as long as a
// pinned version references them, so readers never block writers and a
// query batch always sees one consistent state.
type Version struct {
	s      *Store
	seq    uint64
	levels []*core.Tree
	mem    []geom.Point
	shadow []geom.Point
	liveN  int
}

// Pin returns the current version. The result answers queries against
// exactly the state published by the last mutation or compaction swap,
// no matter how the store moves on.
func (s *Store) Pin() *Version { return s.cur.Load() }

// Seq reports the version's data-version stamp.
func (v *Version) Seq() uint64 { return v.seq }

// N reports the version's live point count.
func (v *Version) N() int { return v.liveN }

// Levels reports how many level trees the version holds.
func (v *Version) Levels() int {
	c := 0
	for _, l := range v.levels {
		if l != nil {
			c++
		}
	}
	return c
}

// Mixed answers a batch mixing count and report queries against the
// pinned version: one mixed-mode machine run per level (combined by
// decomposability — range search distributes over the level partition),
// then the memtable scan adds, the tombstone shadow subtracts counts
// and filters reports. OpAggregate is not supported: tombstone
// subtraction needs an invertible monoid, which the engine's semigroup
// contract does not promise.
func Mixed[T any](v *Version, ops []core.MixedOp, boxes []geom.Box) []core.MixedResult[T] {
	if len(ops) != len(boxes) {
		panic("store: ops and boxes disagree in length")
	}
	out := make([]core.MixedResult[T], len(boxes))
	if len(boxes) == 0 {
		return out
	}
	for _, op := range ops {
		if op == core.OpAggregate {
			panic("store: aggregate queries are not supported on the mutable store")
		}
	}

	// Level fan-out: machine runs serialize store-wide because levels
	// (including ones shared with other pinned versions) each own one
	// cgm.Machine, and a machine supports one Run at a time.
	v.s.queryMu.Lock()
	for _, l := range v.levels {
		if l == nil {
			continue
		}
		for i, r := range core.MixedBatch[T](l, nil, ops, boxes) {
			out[i].Count += r.Count
			out[i].Pts = append(out[i].Pts, r.Pts...)
		}
	}
	v.s.queryMu.Unlock()

	// Memtable contribution.
	for i, b := range boxes {
		for _, p := range v.mem {
			if b.Contains(p) {
				out[i].Count++
				if ops[i] == core.OpReport {
					out[i].Pts = append(out[i].Pts, p)
				}
			}
		}
	}

	// Tombstones: subtract counts, filter reports. Every shadow point
	// is present in the version's levels or memtable (the store's
	// delete contract), so the subtraction is exact.
	if len(v.shadow) > 0 {
		dead := make(map[int32]struct{}, len(v.shadow))
		for _, p := range v.shadow {
			dead[p.ID] = struct{}{}
		}
		for i, b := range boxes {
			for _, p := range v.shadow {
				if b.Contains(p) {
					out[i].Count--
				}
			}
			if len(out[i].Pts) > 0 {
				live := out[i].Pts[:0:0]
				for _, p := range out[i].Pts {
					if _, d := dead[p.ID]; !d {
						live = append(live, p)
					}
				}
				out[i].Pts = live
			}
		}
	}
	for i := range out {
		if ops[i] == core.OpReport {
			slices.SortFunc(out[i].Pts, func(a, b geom.Point) int { return int(a.ID) - int(b.ID) })
		}
	}
	return out
}

// CountBatch answers |R(q)| for every box against the pinned version.
func (v *Version) CountBatch(boxes []geom.Box) []int64 {
	ops := make([]core.MixedOp, len(boxes))
	res := Mixed[struct{}](v, ops, boxes)
	out := make([]int64, len(boxes))
	for i, r := range res {
		out[i] = r.Count
	}
	return out
}

// ReportBatch returns the live points of every box, sorted by ID.
func (v *Version) ReportBatch(boxes []geom.Box) [][]geom.Point {
	ops := make([]core.MixedOp, len(boxes))
	for i := range ops {
		ops[i] = core.OpReport
	}
	res := Mixed[struct{}](v, ops, boxes)
	out := make([][]geom.Point, len(boxes))
	for i, r := range res {
		out[i] = r.Pts
	}
	return out
}

// CountBatch answers against the current version.
func (s *Store) CountBatch(boxes []geom.Box) []int64 { return s.Pin().CountBatch(boxes) }

// ReportBatch answers against the current version.
func (s *Store) ReportBatch(boxes []geom.Box) [][]geom.Point { return s.Pin().ReportBatch(boxes) }

// AllLive materializes the version's live point set (checkpointing and
// verification; O(n)).
func (v *Version) AllLive() []geom.Point {
	var out []geom.Point
	for _, l := range v.levels {
		if l != nil {
			out = append(out, l.AllPoints()...)
		}
	}
	out = append(out, v.mem...)
	if len(v.shadow) == 0 {
		return out
	}
	dead := make(map[int32]struct{}, len(v.shadow))
	for _, p := range v.shadow {
		dead[p.ID] = struct{}{}
	}
	live := out[:0:0]
	for _, p := range out {
		if _, d := dead[p.ID]; !d {
			live = append(live, p)
		}
	}
	return live
}
