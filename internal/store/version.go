package store

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/geom"
)

// Version is one epoch-stamped, immutable snapshot of the store: a set
// of level trees plus frozen prefixes of the memtable and the deletion
// shadow. Pinning a version keeps every level it references alive (and
// queryable) no matter how the store moves on — readers never block
// writers, and a query batch always sees one consistent state. Release
// the pin when done: levels a later compaction retired close their
// machines (TCP sessions, worker-resident state) as soon as the last
// reference drops, instead of leaking until Cluster.Close.
type Version struct {
	s      *Store
	seq    uint64
	levels []*core.Tree
	mem    []geom.Point
	shadow []geom.Point
	liveN  int

	// Guarded by s.mu: outstanding Pin count, whether this is the
	// published version, and whether its level references were dropped.
	pins     int
	current  bool
	released bool
}

// Pin returns the current version, reference-counted. The result answers
// queries against exactly the state published by the last mutation or
// compaction swap. Call Release when done; a version never released
// keeps its level trees (and their sessions) alive indefinitely.
func (s *Store) Pin() *Version {
	s.mu.Lock()
	v := s.cur.Load()
	v.pins++
	s.mu.Unlock()
	return v
}

// Release drops one Pin. When a superseded version loses its last pin,
// level trees no current version references close their machines.
func (v *Version) Release() {
	s := v.s
	s.mu.Lock()
	if v.pins > 0 {
		v.pins--
	}
	toClose := s.maybeReleaseLocked(v)
	s.mu.Unlock()
	closeTrees(toClose)
}

// LiveN reports the store's current live point count without pinning (a
// plain read of the published snapshot — no Release obligation).
func (s *Store) LiveN() int { return s.cur.Load().liveN }

// Seq reports the version's data-version stamp.
func (v *Version) Seq() uint64 { return v.seq }

// N reports the version's live point count.
func (v *Version) N() int { return v.liveN }

// Levels reports how many level trees the version holds.
func (v *Version) Levels() int {
	c := 0
	for _, l := range v.levels {
		if l != nil {
			c++
		}
	}
	return c
}

// Mixed answers a batch mixing count and report queries against the
// pinned version: one mixed-mode machine run per level (combined by
// decomposability — range search distributes over the level partition),
// then the memtable scan adds, the tombstone shadow subtracts counts
// and filters reports. OpAggregate is not supported: tombstone
// subtraction needs an invertible monoid, which the engine's semigroup
// contract does not promise.
//
// A machine abort mid-batch — a TCP cluster losing a worker, an SPMD
// violation — returns as an error (and is recorded in Stats.QueryErr)
// instead of panicking the calling goroutine; the store keeps accepting
// mutations, and compaction rebuilds levels on fresh machines.
func Mixed[T any](v *Version, ops []core.MixedOp, boxes []geom.Box) ([]core.MixedResult[T], error) {
	return MixedTraced[T](v, ops, boxes, 0)
}

// MixedTraced is Mixed with a query-trace ID: each level's machine runs
// with the ID stamped on its exchanges so worker-side spans attribute
// back to the originating batch. Trace 0 means untraced.
func MixedTraced[T any](v *Version, ops []core.MixedOp, boxes []geom.Box, trace uint64) ([]core.MixedResult[T], error) {
	if len(ops) != len(boxes) {
		panic("store: ops and boxes disagree in length")
	}
	out := make([]core.MixedResult[T], len(boxes))
	if len(boxes) == 0 {
		return out, nil
	}
	for _, op := range ops {
		if op == core.OpAggregate {
			panic("store: aggregate queries are not supported on the mutable store")
		}
	}

	// Level fan-out: machine runs serialize store-wide because levels
	// (including ones shared with other pinned versions) each own one
	// cgm.Machine, and a machine supports one Run at a time.
	var qerr error
	v.s.queryMu.Lock()
	func() {
		defer func() {
			if r := recover(); r != nil {
				qerr = fmt.Errorf("store: query batch aborted: %v", r)
			}
		}()
		for _, l := range v.levels {
			if l == nil {
				continue
			}
			// queryMu makes the machine exclusively ours, so the trace
			// stamp cannot interleave with another batch's.
			l.SetTrace(trace)
			res := core.MixedBatch[T](l, nil, ops, boxes)
			l.SetTrace(0)
			for i, r := range res {
				out[i].Count += r.Count
				out[i].Pts = append(out[i].Pts, r.Pts...)
			}
		}
	}()
	v.s.queryMu.Unlock()
	if qerr != nil {
		v.s.noteQueryErr(qerr)
		return nil, qerr
	}

	// Memtable contribution.
	for i, b := range boxes {
		for _, p := range v.mem {
			if b.Contains(p) {
				out[i].Count++
				if ops[i] == core.OpReport {
					out[i].Pts = append(out[i].Pts, p)
				}
			}
		}
	}

	// Tombstones: subtract counts, filter reports. Every shadow point
	// is present in the version's levels or memtable (the store's
	// delete contract), so the subtraction is exact.
	if len(v.shadow) > 0 {
		dead := make(map[int32]struct{}, len(v.shadow))
		for _, p := range v.shadow {
			dead[p.ID] = struct{}{}
		}
		for i, b := range boxes {
			for _, p := range v.shadow {
				if b.Contains(p) {
					out[i].Count--
				}
			}
			if len(out[i].Pts) > 0 {
				live := out[i].Pts[:0:0]
				for _, p := range out[i].Pts {
					if _, d := dead[p.ID]; !d {
						live = append(live, p)
					}
				}
				out[i].Pts = live
			}
		}
	}
	for i := range out {
		if ops[i] == core.OpReport {
			slices.SortFunc(out[i].Pts, func(a, b geom.Point) int { return int(a.ID) - int(b.ID) })
		}
	}
	return out, nil
}

// CountBatch answers |R(q)| for every box against the pinned version.
func (v *Version) CountBatch(boxes []geom.Box) ([]int64, error) {
	ops := make([]core.MixedOp, len(boxes))
	res, err := Mixed[struct{}](v, ops, boxes)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(boxes))
	for i, r := range res {
		out[i] = r.Count
	}
	return out, nil
}

// ReportBatch returns the live points of every box, sorted by ID.
func (v *Version) ReportBatch(boxes []geom.Box) ([][]geom.Point, error) {
	ops := make([]core.MixedOp, len(boxes))
	for i := range ops {
		ops[i] = core.OpReport
	}
	res, err := Mixed[struct{}](v, ops, boxes)
	if err != nil {
		return nil, err
	}
	out := make([][]geom.Point, len(boxes))
	for i, r := range res {
		out[i] = r.Pts
	}
	return out, nil
}

// CountBatch answers against the current version.
func (s *Store) CountBatch(boxes []geom.Box) ([]int64, error) {
	v := s.Pin()
	defer v.Release()
	return v.CountBatch(boxes)
}

// ReportBatch answers against the current version.
func (s *Store) ReportBatch(boxes []geom.Box) ([][]geom.Point, error) {
	v := s.Pin()
	defer v.Release()
	return v.ReportBatch(boxes)
}

// AllLive materializes the version's live point set (checkpointing and
// verification; O(n)). Resident level trees fetch their points from
// worker memory, so the read serializes with query batches under the
// store's query lock.
func (v *Version) AllLive() []geom.Point {
	var out []geom.Point
	v.s.queryMu.Lock()
	for _, l := range v.levels {
		if l != nil {
			out = append(out, l.AllPoints()...)
		}
	}
	v.s.queryMu.Unlock()
	out = append(out, v.mem...)
	if len(v.shadow) == 0 {
		return out
	}
	dead := make(map[int32]struct{}, len(v.shadow))
	for _, p := range v.shadow {
		dead[p.ID] = struct{}{}
	}
	live := out[:0:0]
	for _, p := range out {
		if _, d := dead[p.ID]; !d {
			live = append(live, p)
		}
	}
	return live
}
