package store

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// idTee records the IDs of every point that streams through it. Store
// bulk loads ride core.BulkLoad's streaming client, whose chunks pass
// through the coordinator exactly once on their way into the workers —
// the tee captures the ID set in that same pass, so the store's live-set
// bookkeeping costs no second scan and no post-build fetch.
type idTee struct {
	src core.ChunkSource
	ids []int32
	n   int
}

func (t *idTee) Next() ([]geom.Point, error) {
	pts, err := t.src.Next()
	for _, p := range pts {
		t.ids = append(t.ids, p.ID)
	}
	t.n += len(pts)
	return pts, err
}

// BulkLoad ingests a point stream as ONE new level in a single pass:
// chunks stream open-loop into the workers' staging areas (bounded
// in-flight window, backpressure via the ranks' own acknowledgements)
// and the level tree is constructed worker-fed — on a resident cluster
// the coordinator handles only ingest chunks, the p² sample splitters
// and control frames, never a routed point. Queries keep serving the
// current version throughout; the loaded points become visible
// atomically when the new version publishes.
//
// The load bypasses the memtable and the WAL (it is a level build, not a
// logged mutation); on a durable store a checkpoint is taken before
// returning, so recovery never replays a WAL tail against levels that
// already contain the bulk points. IDs must be new: not live, not
// tombstoned, not repeated in the stream — a violating load is discarded
// whole, leaving the store untouched.
func (s *Store) BulkLoad(src core.ChunkSource) (uint64, error) {
	// Serialize with compactor passes: both splice s.levels.
	s.compacting.Lock()
	defer s.compacting.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.compactErr != nil {
		err := s.compactErr
		s.mu.Unlock()
		return 0, fmt.Errorf("store: compaction failed, bulk loads rejected: %w", err)
	}
	s.mu.Unlock()

	mach, err := s.cfg.Provider.NewMachine()
	if err != nil {
		return 0, fmt.Errorf("store: bulk load machine: %w", err)
	}
	s.event("ingest_begin", "bulk load: streaming construct starting")
	tee := &idTee{src: src}
	built, err := core.BulkLoadWith(mach, tee, s.cfg.Backend,
		core.IngestConfig{Window: core.DefaultWindow, MaxShare: s.cfg.IngestMaxShare})
	if err != nil {
		mach.Close()
		s.event("ingest_error", err.Error())
		return 0, err
	}
	discard := func() { built.Machine().Close() }

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		discard()
		return 0, ErrClosed
	}
	// Validate the whole ID set against the live state before splicing —
	// same all-or-nothing contract as mutate.
	seen := make(map[int32]struct{}, len(tee.ids))
	for _, id := range tee.ids {
		if _, dup := seen[id]; dup {
			s.mu.Unlock()
			discard()
			return 0, fmt.Errorf("store: bulk load: point %d appears twice in the stream", id)
		}
		seen[id] = struct{}{}
		if _, live := s.liveIDs[id]; live {
			s.mu.Unlock()
			discard()
			return 0, fmt.Errorf("store: bulk load: point %d is already live", id)
		}
		if _, dead := s.deadIDs[id]; dead {
			s.mu.Unlock()
			discard()
			return 0, fmt.Errorf("store: bulk load: point %d still has an outstanding tombstone", id)
		}
	}
	// Splice as a fresh top slot: low slots keep their binary-counter
	// carry behavior, and the next fold absorbs the bulk level like any
	// other.
	s.levels = append(s.levels, built)
	s.levelRefs[built]++
	for _, id := range tee.ids {
		s.liveIDs[id] = struct{}{}
	}
	s.liveN += tee.n
	s.seq++
	seq := s.seq
	toClose := s.publishLocked()
	s.mu.Unlock()
	closeTrees(toClose)
	s.bulkLoads.Add(1)
	s.bulkPoints.Add(uint64(tee.n))
	s.event("ingest_end", fmt.Sprintf("bulk load: %d points published at seq %d", tee.n, seq))
	if s.wal != nil {
		if err := s.Checkpoint(); err != nil {
			return seq, fmt.Errorf("store: bulk load published but checkpoint failed: %w", err)
		}
	}
	return seq, nil
}
