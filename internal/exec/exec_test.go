package exec

import (
	"strings"
	"testing"
)

// testState is the per-rank state of the test program.
type testState struct {
	rank, p int
	held    []int
}

func init() {
	Register(&Program{
		Name:    "exec-test",
		Version: 3,
		New:     func(rank, p int) any { return &testState{rank: rank, p: p} },
		Steps: map[string]Step{
			"keep": Pure(func(st *testState, _ *Ctx, args []int) (int, error) {
				st.held = append(st.held, args...)
				return len(st.held), nil
			}),
			"boom": Pure(func(st *testState, _ *Ctx, _ struct{}) (int, error) {
				panic("step exploded")
			}),
		},
		Emits: map[string]Emit{
			"fan": Emitter(func(st *testState, c *Ctx, base int) ([][]int, []byte, error) {
				rows := make([][]int, c.P)
				for j := range rows {
					rows[j] = []int{base + c.Rank*10 + j}
				}
				return rows, Marshal("note"), nil
			}),
		},
		Collects: map[string]Collect{
			"sum": Collector(func(st *testState, c *Ctx, _ struct{}, in [][]int) (int, error) {
				total := 0
				for _, part := range in {
					for _, v := range part {
						total += v
					}
				}
				return total, nil
			}),
		},
	})
}

func ref(step string) Ref { return Ref{Program: "exec-test", Version: 3, Step: step} }

func TestStateCreatedOncePerRank(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 3; i++ {
		b, err := s.Call(2, 4, ref("keep"), Marshal([]int{i}))
		if err != nil {
			t.Fatal(err)
		}
		n, err := Unmarshal[int](b)
		if err != nil {
			t.Fatal(err)
		}
		if n != i {
			t.Fatalf("call %d saw %d held values; state not persistent", i, n)
		}
	}
}

func TestVersionSkewRejected(t *testing.T) {
	s := NewStore()
	_, err := s.Call(0, 1, Ref{Program: "exec-test", Version: 2, Step: "keep"}, Marshal([]int{1}))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew not rejected: %v", err)
	}
	_, err = s.Call(0, 1, Ref{Program: "missing", Version: 1, Step: "keep"}, nil)
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unknown program not rejected: %v", err)
	}
}

func TestStepPanicBecomesError(t *testing.T) {
	s := NewStore()
	_, err := s.Call(0, 1, ref("boom"), Marshal(struct{}{}))
	if err == nil || !strings.Contains(err.Error(), "step exploded") {
		t.Fatalf("panic not converted to diagnostic error: %v", err)
	}
}

func TestEmitCollectRoundTrip(t *testing.T) {
	s := NewStore()
	p := 3
	// Emit on every rank, then assemble each rank's column and collect.
	outs := make([]*Outbox, p)
	for r := 0; r < p; r++ {
		out, err := s.RunEmit(r, p, ref("fan"), Marshal(100))
		if err != nil {
			t.Fatal(err)
		}
		if out.Type != "int" {
			t.Fatalf("emit typed %q", out.Type)
		}
		for j, c := range out.Counts {
			if c != 1 {
				t.Fatalf("rank %d dest %d count %d", r, j, c)
			}
		}
		if out.Blocks[r] != nil {
			t.Fatalf("self block of rank %d was encoded", r)
		}
		outs[r] = out
	}
	for r := 0; r < p; r++ {
		col := make([][]byte, p)
		for j := 0; j < p; j++ {
			if j != r {
				col[j] = outs[j].Blocks[r]
			}
		}
		reply, recv, err := s.RunCollect(r, p, ref("sum"), &Inbox{Blocks: col, Self: outs[r].Self}, Marshal(struct{}{}))
		if err != nil {
			t.Fatal(err)
		}
		if recv != p {
			t.Fatalf("rank %d received %d elements, want %d", r, recv, p)
		}
		total, err := Unmarshal[int](reply)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for j := 0; j < p; j++ {
			want += 100 + j*10 + r
		}
		if total != want {
			t.Fatalf("rank %d collected %d, want %d", r, total, want)
		}
	}
}
