// Package exec is the SPMD program runtime behind worker-resident
// execution: a registry of named programs whose per-processor state lives
// where the program's steps run — in a worker process for wire transports,
// in the machine's local state store for the loopback transport.
//
// The coordinator still drives every superstep (so round/h accounting
// stays in cgm.Machine, identical across transports and residency modes),
// but the local-computation steps that touch a processor's forest part are
// dispatched by name: the coordinator sends (program, version, step, args)
// and the step function runs against the rank's locally held state,
// returning only its reply block. Exchange payloads can likewise originate
// (Emit) and terminate (Collect) at the state's side, so bulk blocks —
// element copies, routed construction points — never transit the
// coordinator on a wire transport.
//
// Programs are registered by the packages that define them (internal/core
// registers the construct/search forest program in its init), so any
// binary importing those packages — the coordinator and cmd/rangeworker
// alike — resolves the same names to the same code. Versions guard against
// skew: a step whose registered version differs from the caller's is
// rejected, never run against mismatched state.
package exec

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Ctx carries the identity of the rank whose resident state a step runs
// against.
type Ctx struct {
	Rank, P int
	// State is the program's per-rank state, created by Program.New on
	// the first step dispatched to this rank.
	State any
}

// Step is a pure remote call: args in, reply out, no h-relation.
type Step func(c *Ctx, args []byte) ([]byte, error)

// Outbox is what an Emit step produces: one superstep's deposit,
// originated at the state's side.
type Outbox struct {
	// Blocks are the encoded per-destination payloads; the self slot is
	// nil (the self-addressed payload travels as Self, in memory).
	Blocks [][]byte
	// Counts are per-destination element counts (self included) — the
	// machine's h accounting, identical to what a coordinator-side
	// deposit of the same rows would count.
	Counts []int
	// Self is the typed self-addressed payload, handed to the local
	// Collect without serialization.
	Self any
	// Note is a small reply returned to the coordinator alongside the
	// superstep acknowledgement (e.g. shipped-volume counters).
	Note []byte
	// Type names the exchanged element type for the SPMD stamp check.
	Type string
}

// Inbox is what a Collect step consumes: the assembled column of one
// superstep.
type Inbox struct {
	// Blocks holds each source's encoded block addressed to this rank.
	// The self slot is nil when Self carries the payload.
	Blocks [][]byte
	// Self is the typed self-addressed payload when the deposit was
	// emitted on this side; nil when the self block is in Blocks (a
	// coordinator-side deposit ships it encoded like any other).
	Self any
}

// Emit produces one superstep's deposit from resident state.
type Emit func(c *Ctx, args []byte) (*Outbox, error)

// Collect consumes one superstep's assembled column into resident state,
// returning a reply block and the received element count.
type Collect func(c *Ctx, in *Inbox, args []byte) (reply []byte, recv int, err error)

// Program bundles the named steps of one SPMD program family over one
// per-rank state type.
type Program struct {
	// Name identifies the program in the registry and on the wire.
	Name string
	// Version guards against coordinator/worker skew: dispatch fails
	// unless the caller's version matches.
	Version int
	// New creates the per-rank state on first dispatch.
	New func(rank, p int) any
	// Steps, Emits and Collects are the program's named step functions.
	Steps    map[string]Step
	Emits    map[string]Emit
	Collects map[string]Collect
}

// Ref names one registered step for dispatch.
type Ref struct {
	Program string
	Version int
	Step    string
}

// registry is the process-global program table. Registration happens in
// package init functions, so lookups never race writes.
var (
	regMu    sync.RWMutex
	registry = make(map[string]*Program)
)

// Register adds a program to the process registry; registering the same
// name twice panics (two packages claiming one program is a bug).
func Register(p *Program) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("exec: program %q registered twice", p.Name))
	}
	registry[p.Name] = p
}

// lookup resolves a step reference to its program, checking the version.
func lookup(ref Ref) (*Program, error) {
	regMu.RLock()
	p := registry[ref.Program]
	regMu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("exec: program %q not registered (is the package defining it imported by this binary?)", ref.Program)
	}
	if p.Version != ref.Version {
		return nil, fmt.Errorf("exec: program %q is version %d here, caller wants %d", ref.Program, p.Version, ref.Version)
	}
	return p, nil
}

// Store holds the resident state of every program for one execution slot —
// one (session, rank) on a worker, one rank of a resident loopback
// machine. States are created lazily by Program.New on first dispatch.
type Store struct {
	mu    sync.Mutex
	state map[string]any
	reg   atomic.Pointer[obs.Registry]
}

// NewStore creates an empty state store.
func NewStore() *Store { return &Store{state: make(map[string]any)} }

// SetObs publishes the wall time of every dispatched step to reg as
// exec_step_ns{kind=...,step="program/step"} histograms. Safe to call
// concurrently with dispatch; nil stops publishing.
func (s *Store) SetObs(reg *obs.Registry) { s.reg.Store(reg) }

// observe records one step's wall time (no-op without a registry).
func (s *Store) observe(kind string, ref Ref, t0 time.Time) {
	reg := s.reg.Load()
	if reg == nil {
		return
	}
	name := `exec_step_ns{kind="` + kind + `",step="` + ref.Program + `/` + ref.Step + `"}`
	reg.Histogram(name).Observe(time.Since(t0).Nanoseconds())
}

// ctx resolves (creating if needed) the program's state for rank.
func (s *Store) ctx(p *Program, rank, width int) *Ctx {
	s.mu.Lock()
	st, ok := s.state[p.Name]
	if !ok {
		st = p.New(rank, width)
		s.state[p.Name] = st
	}
	s.mu.Unlock()
	return &Ctx{Rank: rank, P: width, State: st}
}

// guard converts a step panic into an error so a buggy or aborted step
// poisons one superstep (the machine aborts with the diagnostic) rather
// than crashing the worker process hosting other sessions.
func guard(ref Ref, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("exec: step %s/%s panicked: %v\n%s", ref.Program, ref.Step, r, debug.Stack())
	}
}

// Call dispatches a pure step against rank's resident state.
func (s *Store) Call(rank, width int, ref Ref, args []byte) (reply []byte, err error) {
	p, err := lookup(ref)
	if err != nil {
		return nil, err
	}
	step := p.Steps[ref.Step]
	if step == nil {
		return nil, fmt.Errorf("exec: program %q has no step %q", ref.Program, ref.Step)
	}
	defer guard(ref, &err)
	defer s.observe("call", ref, time.Now())
	return step(s.ctx(p, rank, width), args)
}

// RunEmit dispatches an emit step, producing one superstep's deposit.
func (s *Store) RunEmit(rank, width int, ref Ref, args []byte) (out *Outbox, err error) {
	p, err := lookup(ref)
	if err != nil {
		return nil, err
	}
	emit := p.Emits[ref.Step]
	if emit == nil {
		return nil, fmt.Errorf("exec: program %q has no emit step %q", ref.Program, ref.Step)
	}
	defer guard(ref, &err)
	defer s.observe("emit", ref, time.Now())
	return emit(s.ctx(p, rank, width), args)
}

// RunCollect dispatches a collect step, consuming one superstep's column.
func (s *Store) RunCollect(rank, width int, ref Ref, in *Inbox, args []byte) (reply []byte, recv int, err error) {
	p, err := lookup(ref)
	if err != nil {
		return nil, 0, err
	}
	collect := p.Collects[ref.Step]
	if collect == nil {
		return nil, 0, fmt.Errorf("exec: program %q has no collect step %q", ref.Program, ref.Step)
	}
	defer guard(ref, &err)
	defer s.observe("collect", ref, time.Now())
	return collect(s.ctx(p, rank, width), in, args)
}
