package exec

import (
	"fmt"
	"reflect"

	"repro/internal/wire"
)

// The typed wrappers below are how programs define steps without touching
// bytes: arguments, replies and exchanged rows are wire-encoded at the
// seam (raw layout when the type has a registered wire.Codec, gob
// otherwise), with element counts taken from the typed slices — so a
// resident exchange accounts exactly what a coordinator-side exchange of
// the same rows would.

// Marshal encodes a step argument or reply. The encoding is retained by
// the caller (frames, replies), so it gets its own buffer rather than a
// pooled one. The types are the program's own, so an encoding failure is
// a programming error.
func Marshal[T any](v T) []byte {
	b, err := wire.Encode(nil, v)
	if err != nil {
		panic(fmt.Sprintf("exec: encoding %T: %v", v, err))
	}
	return b
}

// Unmarshal decodes a Marshal-encoded value.
func Unmarshal[T any](b []byte) (T, error) {
	return wire.Decode[T](b)
}

// Pure wraps a typed step function. S is the program's state type as
// created by Program.New (asserted, so a mismatch fails loudly).
func Pure[S any, A any, R any](f func(st S, c *Ctx, args A) (R, error)) Step {
	return func(c *Ctx, raw []byte) ([]byte, error) {
		args, err := Unmarshal[A](raw)
		if err != nil {
			return nil, fmt.Errorf("exec: decoding step args: %w", err)
		}
		r, err := f(c.State.(S), c, args)
		if err != nil {
			return nil, err
		}
		return Marshal(r), nil
	}
}

// Emitter wraps a typed emit function: it returns the per-destination rows
// (len == P) plus a small note for the coordinator. The wrapper encodes
// every non-self destination into one grown buffer (each block a
// capacity-clipped view), counts elements per destination, and keeps the
// self row typed. The buffer is not pooled: the worker routes the blocks
// to its peers after the emit returns, so their lifetime is the
// superstep's, not the wrapper's.
func Emitter[S any, A any, T any](f func(st S, c *Ctx, args A) ([][]T, []byte, error)) Emit {
	return func(c *Ctx, raw []byte) (*Outbox, error) {
		args, err := Unmarshal[A](raw)
		if err != nil {
			return nil, fmt.Errorf("exec: decoding emit args: %w", err)
		}
		rows, note, err := f(c.State.(S), c, args)
		if err != nil {
			return nil, err
		}
		if len(rows) != c.P {
			return nil, fmt.Errorf("exec: emit produced %d destinations for %d ranks", len(rows), c.P)
		}
		out := &Outbox{
			Blocks: make([][]byte, c.P),
			Counts: make([]int, c.P),
			Self:   rows[c.Rank],
			Note:   note,
			Type:   reflect.TypeOf((*T)(nil)).Elem().String(),
		}
		buf := make([]byte, 0, 1024)
		for j, part := range rows {
			out.Counts[j] = len(part)
			if j == c.Rank {
				continue
			}
			start := len(buf)
			buf, err = wire.Encode(buf, part)
			if err != nil {
				return nil, fmt.Errorf("exec: encoding emit block for rank %d: %w", j, err)
			}
			out.Blocks[j] = buf[start:len(buf):len(buf)]
		}
		return out, nil
	}
}

// Collector wraps a typed collect function: the wrapper decodes each
// source's block into []T (taking the typed self payload when present),
// counts the received elements, and encodes the reply.
func Collector[S any, A any, T any, R any](f func(st S, c *Ctx, args A, in [][]T) (R, error)) Collect {
	return func(c *Ctx, inbox *Inbox, raw []byte) ([]byte, int, error) {
		args, err := Unmarshal[A](raw)
		if err != nil {
			return nil, 0, fmt.Errorf("exec: decoding collect args: %w", err)
		}
		in := make([][]T, len(inbox.Blocks))
		recv := 0
		for j, b := range inbox.Blocks {
			if inbox.Self != nil && b == nil && j == c.Rank {
				part, ok := inbox.Self.([]T)
				if !ok {
					return nil, 0, fmt.Errorf("exec: self payload is %T, collect wants []%s",
						inbox.Self, reflect.TypeOf((*T)(nil)).Elem())
				}
				in[j] = part
				recv += len(part)
				continue
			}
			if b == nil {
				continue
			}
			part, err := wire.Decode[[]T](b)
			if err != nil {
				return nil, 0, fmt.Errorf("exec: decoding block from rank %d: %w", j, err)
			}
			in[j] = part
			recv += len(part)
		}
		r, err := f(c.State.(S), c, args, in)
		if err != nil {
			return nil, 0, err
		}
		return Marshal(r), recv, nil
	}
}
