package exec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
)

// The typed wrappers below are how programs define steps without touching
// bytes: arguments, replies and exchanged rows are gob-encoded at the
// seam, with element counts taken from the typed slices — so a resident
// exchange accounts exactly what a coordinator-side exchange of the same
// rows would.

// Marshal gob-encodes a step argument or reply. The types are the
// program's own, so an encoding failure is a programming error.
func Marshal[T any](v T) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		panic(fmt.Sprintf("exec: encoding %T: %v", v, err))
	}
	return buf.Bytes()
}

// Unmarshal decodes a Marshal-encoded value.
func Unmarshal[T any](b []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v)
	return v, err
}

// Pure wraps a typed step function. S is the program's state type as
// created by Program.New (asserted, so a mismatch fails loudly).
func Pure[S any, A any, R any](f func(st S, c *Ctx, args A) (R, error)) Step {
	return func(c *Ctx, raw []byte) ([]byte, error) {
		args, err := Unmarshal[A](raw)
		if err != nil {
			return nil, fmt.Errorf("exec: decoding step args: %w", err)
		}
		r, err := f(c.State.(S), c, args)
		if err != nil {
			return nil, err
		}
		return Marshal(r), nil
	}
}

// Emitter wraps a typed emit function: it returns the per-destination rows
// (len == P) plus a small note for the coordinator. The wrapper encodes
// every non-self destination, counts elements per destination, and keeps
// the self row typed.
func Emitter[S any, A any, T any](f func(st S, c *Ctx, args A) ([][]T, []byte, error)) Emit {
	return func(c *Ctx, raw []byte) (*Outbox, error) {
		args, err := Unmarshal[A](raw)
		if err != nil {
			return nil, fmt.Errorf("exec: decoding emit args: %w", err)
		}
		rows, note, err := f(c.State.(S), c, args)
		if err != nil {
			return nil, err
		}
		if len(rows) != c.P {
			return nil, fmt.Errorf("exec: emit produced %d destinations for %d ranks", len(rows), c.P)
		}
		out := &Outbox{
			Blocks: make([][]byte, c.P),
			Counts: make([]int, c.P),
			Self:   rows[c.Rank],
			Note:   note,
			Type:   reflect.TypeOf((*T)(nil)).Elem().String(),
		}
		for j, part := range rows {
			out.Counts[j] = len(part)
			if j == c.Rank {
				continue
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(part); err != nil {
				return nil, fmt.Errorf("exec: encoding emit block for rank %d: %w", j, err)
			}
			out.Blocks[j] = buf.Bytes()
		}
		return out, nil
	}
}

// Collector wraps a typed collect function: the wrapper decodes each
// source's block into []T (taking the typed self payload when present),
// counts the received elements, and encodes the reply.
func Collector[S any, A any, T any, R any](f func(st S, c *Ctx, args A, in [][]T) (R, error)) Collect {
	return func(c *Ctx, inbox *Inbox, raw []byte) ([]byte, int, error) {
		args, err := Unmarshal[A](raw)
		if err != nil {
			return nil, 0, fmt.Errorf("exec: decoding collect args: %w", err)
		}
		in := make([][]T, len(inbox.Blocks))
		recv := 0
		for j, b := range inbox.Blocks {
			if inbox.Self != nil && b == nil && j == c.Rank {
				part, ok := inbox.Self.([]T)
				if !ok {
					return nil, 0, fmt.Errorf("exec: self payload is %T, collect wants []%s",
						inbox.Self, reflect.TypeOf((*T)(nil)).Elem())
				}
				in[j] = part
				recv += len(part)
				continue
			}
			if b == nil {
				continue
			}
			var part []T
			if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&part); err != nil {
				return nil, 0, fmt.Errorf("exec: decoding block from rank %d: %w", j, err)
			}
			in[j] = part
			recv += len(part)
		}
		r, err := f(c.State.(S), c, args, in)
		if err != nil {
			return nil, 0, err
		}
		return Marshal(r), recv, nil
	}
}
