package brute

import (
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/semigroup"
)

func TestCountReport(t *testing.T) {
	pts := geom.RankPoints([][]geom.Coord{{1, 1}, {2, 5}, {3, 3}, {9, 9}})
	s := New(pts)
	b := geom.NewBox([]geom.Coord{1, 1}, []geom.Coord{3, 4})
	if s.Count(b) != 2 {
		t.Errorf("Count = %d, want 2", s.Count(b))
	}
	if got := IDs(s.Report(b)); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("Report = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	pts := geom.RankPoints([][]geom.Coord{{1}, {2}, {3}})
	s := New(pts)
	got := Aggregate(s, semigroup.IntSum(), func(p geom.Point) int64 { return int64(p.X[0]) },
		geom.NewBox([]geom.Coord{2}, []geom.Coord{5}))
	if got != 5 {
		t.Errorf("Aggregate = %d, want 5", got)
	}
}

func TestNewCopies(t *testing.T) {
	pts := geom.RankPoints([][]geom.Coord{{1}})
	s := New(pts)
	pts[0].ID = 77
	if s.Pts[0].ID != 0 {
		t.Error("New must copy the slice")
	}
}

func TestIDsSorts(t *testing.T) {
	got := IDs([]geom.Point{{ID: 5}, {ID: 1}, {ID: 3}})
	if !reflect.DeepEqual(got, []int32{1, 3, 5}) {
		t.Errorf("IDs = %v", got)
	}
}
