// Package brute provides the linear-scan ground truth every tree in the
// repository is validated against, plus the trivially parallelizable
// baseline for the E5 experiment.
package brute

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/semigroup"
)

// Set is a plain point collection.
type Set struct {
	Pts []geom.Point
}

// New copies the points into a Set.
func New(pts []geom.Point) *Set {
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	return &Set{Pts: own}
}

// Count returns |R(q)| by scanning.
func (s *Set) Count(b geom.Box) int {
	n := 0
	for _, p := range s.Pts {
		if b.Contains(p) {
			n++
		}
	}
	return n
}

// Report returns the points of b sorted by ID (a canonical order that
// result-set comparisons in the tests rely on).
func (s *Set) Report(b geom.Box) []geom.Point {
	var out []geom.Point
	for _, p := range s.Pts {
		if b.Contains(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Aggregate folds f over R(q) with monoid m.
func Aggregate[T any](s *Set, m semigroup.Monoid[T], val func(geom.Point) T, b geom.Box) T {
	acc := m.Identity
	for _, p := range s.Pts {
		if b.Contains(p) {
			acc = m.Combine(acc, val(p))
		}
	}
	return acc
}

// IDs extracts the sorted ID set of a point list; tests use it to compare
// result sets independent of order.
func IDs(pts []geom.Point) []int32 {
	ids := make([]int32, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
