package psort

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cgm"
)

type rec struct {
	Key, ID int
}

func lessRec(a, b rec) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.ID < b.ID
}

// runSort distributes vals round-robin over p procs, sorts, and returns
// the concatenation in rank order plus the per-proc block sizes.
func runSort(t *testing.T, p int, vals []rec) ([]rec, []int) {
	t.Helper()
	m := cgm.New(cgm.Config{P: p})
	blocks := make([][]rec, p)
	m.Run(func(pr *cgm.Proc) {
		var local []rec
		for i := pr.Rank(); i < len(vals); i += p {
			local = append(local, vals[i])
		}
		blocks[pr.Rank()] = Sort(pr, "sort", local, lessRec)
	})
	var flat []rec
	sizes := make([]int, p)
	for i, b := range blocks {
		sizes[i] = len(b)
		flat = append(flat, b...)
	}
	return flat, sizes
}

func TestSortMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(8)
		n := rng.Intn(200)
		vals := make([]rec, n)
		for i := range vals {
			vals[i] = rec{Key: rng.Intn(20), ID: i}
		}
		got, sizes := runSort(t, p, vals)
		want := append([]rec(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return lessRec(want[i], want[j]) })
		if !reflect.DeepEqual(got, want) {
			return false
		}
		// Balance: block sizes differ by at most one.
		mn, mx := n, 0
		for _, s := range sizes {
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		return mx-mn <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]rec, 500)
	for i := range vals {
		vals[i] = rec{Key: rng.Intn(10), ID: i}
	}
	a, _ := runSort(t, 5, vals)
	b, _ := runSort(t, 5, vals)
	if !reflect.DeepEqual(a, b) {
		t.Error("sort not deterministic across runs")
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	if got, _ := runSort(t, 4, nil); len(got) != 0 {
		t.Error("empty sort should stay empty")
	}
	got, _ := runSort(t, 4, []rec{{Key: 9, ID: 0}})
	if len(got) != 1 || got[0].Key != 9 {
		t.Errorf("single-element sort = %v", got)
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	vals := make([]rec, 64)
	for i := range vals {
		vals[i] = rec{Key: 7, ID: i}
	}
	got, sizes := runSort(t, 4, vals)
	for i, v := range got {
		if v.ID != i {
			t.Fatalf("tie order broken at %d: %v", i, v)
		}
	}
	for _, s := range sizes {
		if s != 16 {
			t.Fatalf("unbalanced under equal keys: %v", sizes)
		}
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	m := cgm.New(cgm.Config{P: 2})
	m.Run(func(pr *cgm.Proc) {
		local := []rec{{3, 0}, {1, 1}, {2, 2}}
		Sort(pr, "s", local, lessRec)
		if local[0].Key != 3 {
			t.Error("Sort mutated the caller's slice")
		}
	})
}

func TestSortConstantRounds(t *testing.T) {
	// The paper uses sort as a black box costing O(1) h-relations; verify
	// the round count is independent of n.
	rounds := func(n int) int {
		m := cgm.New(cgm.Config{P: 4})
		m.Run(func(pr *cgm.Proc) {
			local := make([]rec, n/4)
			for i := range local {
				local[i] = rec{Key: (i*7 + pr.Rank()) % 101, ID: pr.Rank()*n + i}
			}
			Sort(pr, "s", local, lessRec)
		})
		return m.Metrics().CommRounds()
	}
	r1, r2 := rounds(400), rounds(4000)
	if r1 != r2 {
		t.Errorf("rounds vary with n: %d vs %d", r1, r2)
	}
	if r1 > 5 {
		t.Errorf("sample sort uses %d rounds, want ≤ 5", r1)
	}
}

func TestSortHBound(t *testing.T) {
	// Regular sampling bounds every processor's receive volume by ~2N/p
	// once N/p ≥ p²; check a comfortable 3N/p.
	n, p := 8192, 8
	m := cgm.New(cgm.Config{P: p})
	rng := rand.New(rand.NewSource(1))
	all := make([]rec, n)
	for i := range all {
		all[i] = rec{Key: rng.Intn(1 << 20), ID: i}
	}
	m.Run(func(pr *cgm.Proc) {
		var local []rec
		for i := pr.Rank(); i < n; i += p {
			local = append(local, all[i])
		}
		Sort(pr, "s", local, lessRec)
	})
	if h := m.Metrics().MaxH(); h > 3*n/p {
		t.Errorf("MaxH = %d, want ≤ %d", h, 3*n/p)
	}
}

func TestIsGloballySorted(t *testing.T) {
	m := cgm.New(cgm.Config{P: 3})
	var ok1, ok2 [3]bool
	m.Run(func(pr *cgm.Proc) {
		sorted := []int{pr.Rank() * 10, pr.Rank()*10 + 5}
		ok1[pr.Rank()] = IsGloballySorted(pr, "chk1", sorted, func(a, b int) bool { return a < b })
		broken := []int{100 - pr.Rank()}
		ok2[pr.Rank()] = IsGloballySorted(pr, "chk2", broken, func(a, b int) bool { return a < b })
	})
	for i := 0; i < 3; i++ {
		if !ok1[i] {
			t.Error("sorted data reported unsorted")
		}
		if ok2[i] {
			t.Error("unsorted data reported sorted")
		}
	}
}

func TestIsGloballySortedLocalViolation(t *testing.T) {
	m := cgm.New(cgm.Config{P: 2})
	m.Run(func(pr *cgm.Proc) {
		bad := []int{2, 1}
		if IsGloballySorted(pr, "chk", bad, func(a, b int) bool { return a < b }) {
			t.Error("local violation missed")
		}
	})
}

func TestSortInPlaceMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]rec, 300)
	for i := range vals {
		vals[i] = rec{Key: rng.Intn(12), ID: i}
	}
	const p = 4
	run := func(inplace bool) []rec {
		m := cgm.New(cgm.Config{P: p})
		blocks := make([][]rec, p)
		m.Run(func(pr *cgm.Proc) {
			var local []rec
			for i := pr.Rank(); i < len(vals); i += p {
				local = append(local, vals[i])
			}
			if inplace {
				blocks[pr.Rank()] = SortInPlace(pr, "sort", local, lessRec)
			} else {
				blocks[pr.Rank()] = Sort(pr, "sort", local, lessRec)
			}
		})
		var flat []rec
		for _, b := range blocks {
			flat = append(flat, b...)
		}
		return flat
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Error("SortInPlace result differs from Sort")
	}
}
