// Package psort implements the sixth of the paper's standard operations:
// parallel sort, used as a black box ("Goodrich's communication-efficient
// sort can realize the communication operations in a constant number of
// h-relations", §1). The implementation is deterministic sample sort with
// regular sampling: a constant number of exchanges, each an h-relation
// with h = O(N/p) once N/p ≥ p² (the coarse-grained assumption s/p ≥ p the
// paper also makes).
//
// The phases — local sort, sample selection, splitter derivation,
// partition, merge — are exported individually so the worker-resident
// construct path can run them worker-side with only the p² samples and
// splitters crossing the coordinator (see core's held construct).
package psort

import (
	"slices"
	"sort"

	"repro/internal/cgm"
	"repro/internal/comm"
)

// cmpOf adapts a strict-weak less into the three-way comparison
// slices.SortStableFunc wants. slices sorting is generic — no
// reflect.Swapper, no per-element interface boxing — which is where the
// allocation and time drop over sort.SliceStable comes from.
func cmpOf[T any](less func(a, b T) bool) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	}
}

// SortLocal stably sorts one processor's block in place — the local phase
// of the sample sort, shared with the worker-resident construct steps.
func SortLocal[T any](local []T, less func(a, b T) bool) {
	slices.SortStableFunc(local, cmpOf(less))
}

// Samples selects p evenly spaced regular samples from a locally sorted
// block (fewer when the block is shorter than p, none when empty).
func Samples[T any](own []T, p int) []T {
	samples := make([]T, 0, p)
	for k := 0; k < p; k++ {
		if len(own) == 0 {
			break
		}
		idx := (k*len(own) + len(own)/2) / p
		if idx >= len(own) {
			idx = len(own) - 1
		}
		samples = append(samples, own[idx])
	}
	return samples
}

// Splitters sorts the gathered samples and derives the p-1 regular
// splitters every processor agrees on. allSamples is sorted in place.
func Splitters[T any](allSamples []T, p int, less func(a, b T) bool) []T {
	SortLocal(allSamples, less)
	splitters := make([]T, 0, p-1)
	if len(allSamples) > 0 {
		for k := 1; k < p; k++ {
			idx := k * len(allSamples) / p
			if idx >= len(allSamples) {
				idx = len(allSamples) - 1
			}
			splitters = append(splitters, allSamples[idx])
		}
	}
	return splitters
}

// Partition splits a locally sorted block into p destination slots by the
// splitters (views into own, no copies). With no splitters everything
// lands in slot 0.
func Partition[T any](own []T, splitters []T, p int, less func(a, b T) bool) [][]T {
	out := make([][]T, p)
	if len(splitters) == 0 {
		out[0] = own
		return out
	}
	start := 0
	for j := 0; j < p; j++ {
		end := len(own)
		if j < len(splitters) {
			sp := splitters[j]
			end = start + sort.Search(len(own)-start, func(i int) bool {
				return !less(own[start+i], sp)
			})
		}
		out[j] = own[start:end]
		start = end
	}
	return out
}

// Sort globally sorts the distributed data: processor i contributes local
// and receives the i-th block of the sorted sequence, rebalanced to
// ⌈N/p⌉/⌊N/p⌋ elements. less must be a strict total order (break ties —
// e.g. by point ID — to keep the result deterministic). The caller's
// slice is left untouched; use SortInPlace to cede ownership and skip the
// defensive copy.
func Sort[T any](pr *cgm.Proc, label string, local []T, less func(a, b T) bool) []T {
	own := make([]T, len(local))
	copy(own, local)
	return SortInPlace(pr, label, own, less)
}

// SortInPlace is Sort without the defensive copy: the caller cedes
// ownership of local, which is sorted and partitioned in place (its
// contents after the call are unspecified).
func SortInPlace[T any](pr *cgm.Proc, label string, local []T, less func(a, b T) bool) []T {
	p := pr.P()
	SortLocal(local, less)
	// p == 1 still performs the (empty) collective sequence below so that
	// the number of communication rounds is identical for every machine
	// width — the invariant the round-count experiments verify.

	// Regular sampling: p evenly spaced local samples each, gathered
	// everywhere; every processor deterministically derives p-1 splitters.
	allSamples := comm.AllGatherFlat(pr, label+"/sample", Samples(local, p))
	splitters := Splitters(allSamples, p, less)

	// Partition the locally sorted run by the splitters and exchange.
	parts := cgm.Exchange(pr, label+"/route", Partition(local, splitters, p, less))

	// p-way merge of the sorted incoming runs (source order is a valid
	// tie-break because partitioning was stable).
	merged := MergeRuns(parts, less)

	// Exact rebalance so every processor holds a same-sized block.
	return comm.Rebalance(pr, label+"/balance", merged)
}

// MergeRuns merges sorted runs stably (earlier runs win ties).
func MergeRuns[T any](runs [][]T, less func(a, b T) bool) []T {
	total := 0
	nonEmpty := 0
	for _, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
		}
	}
	out := make([]T, 0, total)
	if nonEmpty == 0 {
		return out
	}
	// Simple iterative binary merging keeps the code free of heap
	// bookkeeping; the run count is p, so the extra log p factor is
	// irrelevant next to N/p log N/p local sorting.
	live := make([][]T, 0, nonEmpty)
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	for len(live) > 1 {
		var next [][]T
		for i := 0; i < len(live); i += 2 {
			if i+1 == len(live) {
				next = append(next, live[i])
				break
			}
			next = append(next, merge2(live[i], live[i+1], less))
		}
		live = next
	}
	return append(out, live[0]...)
}

func merge2[T any](a, b []T, less func(x, y T) bool) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// boundary carries a processor's first and last element for the global
// sortedness check.
type boundary[T any] struct {
	Has         bool
	LocalOK     bool
	First, Last T
}

// IsGloballySorted verifies (with one all-gather of boundary elements)
// that the distributed data is globally sorted; tests and assertions use
// it.
func IsGloballySorted[T any](pr *cgm.Proc, label string, local []T, less func(a, b T) bool) bool {
	// The collective must run unconditionally (SPMD), so fold the local
	// verdict into the exchanged boundary record.
	e := boundary[T]{LocalOK: true}
	for i := 1; i < len(local); i++ {
		if less(local[i], local[i-1]) {
			e.LocalOK = false
		}
	}
	if len(local) > 0 {
		e.Has = true
		e.First, e.Last = local[0], local[len(local)-1]
	}
	edges := comm.AllGatherFlat(pr, label, []boundary[T]{e})
	ok := true
	var prev *T
	for i := range edges {
		if !edges[i].LocalOK {
			ok = false
		}
		if !edges[i].Has {
			continue
		}
		if prev != nil && less(edges[i].First, *prev) {
			ok = false
		}
		last := edges[i].Last
		prev = &last
	}
	return ok
}
