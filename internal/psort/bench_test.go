package psort

import (
	"math/rand"
	"testing"

	"repro/internal/cgm"
)

func BenchmarkSort(b *testing.B) {
	for _, p := range []int{2, 8} {
		b.Run(map[int]string{2: "p=2", 8: "p=8"}[p], func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			n := 1 << 14
			all := make([]rec, n)
			for i := range all {
				all[i] = rec{Key: rng.Intn(1 << 20), ID: i}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := cgm.New(cgm.Config{P: p})
				m.Run(func(pr *cgm.Proc) {
					var local []rec
					for j := pr.Rank(); j < n; j += p {
						local = append(local, all[j])
					}
					Sort(pr, "bench", local, lessRec)
				})
			}
		})
	}
}
