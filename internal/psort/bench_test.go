package psort

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cgm"
)

// benchSort measures one full distributed sort per iteration. The
// inplace variant cedes ownership of the local block (no defensive
// copy); together with the generic slices.SortStableFunc local phase
// (no reflect.Swapper closures) it is where the alloc drop shows up.
func benchSort(b *testing.B, p int, inplace bool) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 14
	all := make([]rec, n)
	for i := range all {
		all[i] = rec{Key: rng.Intn(1 << 20), ID: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := cgm.New(cgm.Config{P: p})
		m.Run(func(pr *cgm.Proc) {
			var local []rec
			for j := pr.Rank(); j < n; j += p {
				local = append(local, all[j])
			}
			if inplace {
				SortInPlace(pr, "bench", local, lessRec)
			} else {
				Sort(pr, "bench", local, lessRec)
			}
		})
	}
}

func BenchmarkSort(b *testing.B) {
	for _, p := range []int{2, 8} {
		for _, inplace := range []bool{false, true} {
			name := fmt.Sprintf("p=%d", p)
			if inplace {
				name += "/inplace"
			}
			b.Run(name, func(b *testing.B) { benchSort(b, p, inplace) })
		}
	}
}
