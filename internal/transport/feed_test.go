package transport_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/transport"
	"repro/internal/workload"
)

// startWorkers spins up p worker processes (in-process) and returns them
// with their addresses.
func startWorkers(t *testing.T, p int) ([]*transport.Worker, []string) {
	t.Helper()
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}
	return workers, addrs
}

// TestParallelFeedCounters pins the rank-parallel data plane: a default
// streaming bulk load on a TCP resident cluster moves its chunks as
// feed_call frames on per-rank direct connections — every worker's own
// /metrics shows nonzero feed counters for its rank — and the
// coordinator's control connections carry no chunk step calls beyond
// the two begin/commit-style control frames per rank.
func TestParallelFeedCounters(t *testing.T) {
	const p, n = 4, 4000
	workers, addrs := startWorkers(t, p)
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.BulkLoad(mach, core.SliceChunks(pts, 128), core.BackendLayered, 4)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	defer tree.Machine().Close()

	for i, w := range workers {
		calls := w.Obs().Counter(fmt.Sprintf(`worker_feed_calls_total{rank="%d"}`, i)).Value()
		if calls == 0 {
			t.Fatalf("worker %d served no feed calls — the load did not take the rank-parallel path", i)
		}
		if fs := w.WireStats()["feed_call"]; fs.Frames != calls {
			t.Fatalf("worker %d: %d feed_call frames vs %d feed calls counted", i, fs.Frames, calls)
		}
	}
	if fs := cl.WireStats()["feed_call"]; fs.Frames == 0 {
		t.Fatal("coordinator-side kind counters saw no feed_call frames")
	}
}

// TestFunnelEquivalence keeps the coordinator-funnel baseline path
// honest: forcing IngestConfig.Funnel must produce a tree with answers
// identical to the rank-parallel build of the same stream, while moving
// zero feed frames.
func TestFunnelEquivalence(t *testing.T) {
	const p, n, m = 4, 2000, 32
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.05, Seed: 11})

	_, addrs := startWorkers(t, p)
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	load := func(funnel bool) *core.Tree {
		t.Helper()
		mach, err := cl.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		tree, err := core.BulkLoadWith(mach, core.SliceChunks(pts, 61), core.BackendLayered,
			core.IngestConfig{Window: 2, Funnel: funnel})
		if err != nil {
			t.Fatalf("bulk load (funnel=%v): %v", funnel, err)
		}
		return tree
	}
	parallel := load(false)
	defer parallel.Machine().Close()
	feedFrames := cl.WireStats()["feed_call"].Frames
	if feedFrames == 0 {
		t.Fatal("parallel load moved no feed_call frames")
	}
	funnel := load(true)
	defer funnel.Machine().Close()
	if got := cl.WireStats()["feed_call"].Frames; got != feedFrames {
		t.Fatalf("funnel load moved %d feed_call frames", got-feedFrames)
	}

	wantC, gotC := parallel.CountBatch(boxes), funnel.CountBatch(boxes)
	wantR, gotR := parallel.ReportBatch(boxes), funnel.ReportBatch(boxes)
	for q := range wantC {
		if wantC[q] != gotC[q] {
			t.Fatalf("query %d: parallel count %d, funnel count %d", q, wantC[q], gotC[q])
		}
		if len(wantR[q]) != len(gotR[q]) {
			t.Fatalf("query %d: parallel reports %d points, funnel %d", q, len(wantR[q]), len(gotR[q]))
		}
		for j := range wantR[q] {
			if wantR[q][j].ID != gotR[q][j].ID {
				t.Fatalf("query %d point %d diverges between parallel and funnel builds", q, j)
			}
		}
	}
}

// TestWorkerDeathMidParallelFeedAborts is the fail-fast contract of the
// rank-parallel feeds: killing a worker mid-load must (a) surface a
// prompt diagnostic from BulkLoad (no feeder deadlocks on its window),
// (b) poison the machine so the session cannot be built on half a
// stream, and (c) leak no goroutines — every feeder, ack reader and
// worker-side feed handler unwinds.
func TestWorkerDeathMidParallelFeedAborts(t *testing.T) {
	const p, n = 4, 20000
	workers, addrs := startWorkers(t, p)
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	base := runtime.NumGoroutine()
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 3})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// Kill deep enough into the stream that every rank's ingest/begin has
	// completed and the per-rank feeds are pipelining chunks — the death
	// must surface through the feed ack readers, not the begin RPC.
	src := &killSource{src: core.SliceChunks(pts, 64), after: 150, kill: func() { workers[1].Close() }}

	done := make(chan error, 1)
	go func() {
		_, err := core.BulkLoad(mach, src, core.BackendLayered, 4)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel-feed bulk load deadlocked after losing a worker mid-stream")
	}
	if err == nil {
		t.Fatal("bulk load with a dead worker reported success")
	}
	t.Logf("diagnostic: %v", err)

	// (b) The machine is poisoned: the dead feed became a session abort.
	// (The ref is never resolved — the poison check rejects first.)
	if _, err := mach.OpenFeed(0, exec.Ref{Program: "ingest", Step: "chunk"}, cgm.FeedOptions{}); err == nil {
		t.Fatal("poisoned machine still opens feeds")
	} else if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("expected an aborted-machine diagnostic, got: %v", err)
	}

	// (c) No leaked goroutines: feeders, ack readers and worker-side feed
	// handlers all unwind once the session aborts.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after feed abort: %d > %d baseline\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
