package transport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/cgm"
	"repro/internal/exec"
	"repro/internal/obs"
)

// This file is the rank-parallel ingest feed: each rank gets its own
// ingest front door on the worker's existing listener. A feed is a
// dedicated client→worker TCP connection carrying a windowed stream of
// calls to one registered step against an existing session's resident
// state — raw-coded args blocks down, per-call acks up — authenticated
// by the coordinator-minted session token (kindFeedOpen). p feeds
// aggregate ingest bandwidth with p where the coordinator's per-rank
// step calls serialize on round-trips. The worker side schedules feed
// work under a cgm.ShareGovernor, so a capped feed time-shares with the
// session's serving supersteps instead of starving them.

// SetIngestMaxShare sets the worker-wide operator cap on the fraction of
// wall-time any single ingest feed may consume (the `rangeworker
// -ingest-share` knob). Zero (the default) leaves the cap to the
// client's FeedOptions.MaxShare; when both are set the lower wins.
// Affects feeds opened after the call.
func (w *Worker) SetIngestMaxShare(share float64) {
	w.ingestShare.Store(math.Float64bits(share))
}

// effectiveShare combines the client-requested cap with the operator
// cap: the lower of the two set values, or whichever is set.
func (w *Worker) effectiveShare(client float64) float64 {
	op := math.Float64frombits(w.ingestShare.Load())
	capped := func(s float64) bool { return s > 0 && s < 1 }
	switch {
	case capped(op) && capped(client):
		return math.Min(op, client)
	case capped(op):
		return op
	default:
		return client
	}
}

// runFeed serves one ingest feed connection until it ends cleanly
// (kindFeedEnd), fails, or the session shuts down. A dead feed —
// connection error, malformed frame, step failure — aborts the whole
// session with a diagnostic: half a stream is not a state any later
// superstep should build on.
func (w *Worker) runFeed(fc *fconn, open *frame) {
	fail := func(msg string) {
		fc.write(&frame{Kind: kindError, Session: open.Session, Err: msg})
		fc.close()
	}
	if open.Call == nil {
		fail("transport: feed open without a step reference")
		return
	}
	s := w.lookupSession(open.Session)
	if s == nil {
		fail(fmt.Sprintf("transport: feed for unknown session %q", open.Session))
		return
	}
	if open.Rank != s.rank {
		fail(fmt.Sprintf("transport: feed addressed to rank %d but session %q plays rank %d here", open.Rank, open.Session, s.rank))
		return
	}
	if !s.addFeed(fc) {
		fail("transport: session is shutting down")
		return
	}
	clean := false
	defer func() {
		s.removeFeed(fc)
		fc.close()
		if !clean {
			// Dead feed ⇒ diagnostic abort on the session: the
			// coordinator and every sibling feed observe it promptly
			// instead of deadlocking on a half-fed rank.
			s.shutdown()
		}
	}()

	ref := open.Call.execRef()
	gov := cgm.NewShareGovernor(w.effectiveShare(open.Share))
	rank := fmt.Sprintf("%d", s.rank)
	calls := w.reg.Counter(fmt.Sprintf(`worker_feed_calls_total{rank=%q}`, rank))
	bytes := w.reg.Counter(fmt.Sprintf(`worker_feed_bytes_total{rank=%q}`, rank))
	busyNs := w.reg.Counter("worker_ingest_busy_ns_total")
	throttles := w.reg.Counter("worker_ingest_throttle_waits_total")
	throttleNs := w.reg.Counter("worker_ingest_throttle_wait_ns_total")
	w.reg.Counter("worker_feeds_total").Inc()

	if err := fc.write(&frame{Kind: kindFeedAck, Session: s.id, Seq: 0}); err != nil {
		return
	}
	for {
		f, err := fc.read()
		if err != nil {
			return // abnormal teardown: the defer aborts the session
		}
		switch f.Kind {
		case kindFeedCall:
			if len(f.blocks) != 1 {
				fc.write(&frame{Kind: kindError, Session: s.id, Seq: f.Seq,
					Err: fmt.Sprintf("transport: feed call carries %d payload blocks, want 1", len(f.blocks))})
				return
			}
			if wait := gov.Admit(); wait > 0 {
				throttles.Inc()
				throttleNs.Add(int64(wait))
			}
			t0 := time.Now()
			reply, err := s.store.Call(s.rank, s.p, ref, f.blocks[0])
			busy := time.Since(t0)
			gov.Charge(busy)
			busyNs.Add(busy.Nanoseconds())
			if err != nil {
				fc.write(&frame{Kind: kindError, Session: s.id, Seq: f.Seq, Err: err.Error()})
				return
			}
			calls.Inc()
			bytes.Add(int64(len(f.blocks[0])))
			if err := fc.write(&frame{Kind: kindFeedAck, Session: s.id, Seq: f.Seq, Reply: reply}); err != nil {
				return
			}
		case kindFeedEnd:
			clean = true
			fc.write(&frame{Kind: kindFeedAck, Session: s.id, Seq: -1})
			return
		default:
			fc.write(&frame{Kind: kindError, Session: s.id,
				Err: fmt.Sprintf("transport: unexpected frame kind %d on an ingest feed", f.Kind)})
			return
		}
	}
}

// addFeed registers a live feed conn with the session so shutdown severs
// it; it refuses once the session is going down.
func (s *session) addFeed(fc *fconn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.quit:
		return false
	default:
	}
	s.feeds = append(s.feeds, fc)
	return true
}

func (s *session) removeFeed(fc *fconn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.feeds {
		if c == fc {
			s.feeds = append(s.feeds[:i], s.feeds[i+1:]...)
			return
		}
	}
}

// OpenFeed dials rank's worker DIRECTLY (not the session's coordinator
// conn) and binds the fresh connection as an ingest feed for this
// session, making tcpTransport a cgm.FeedTransport. Feed traffic is
// deliberately excluded from CoordBytes — the whole point is that these
// bytes no longer ride the coordinator's control plane — but it shows in
// the per-kind frame stats as feed_open/feed_call/feed_ack rows.
func (t *tcpTransport) OpenFeed(rank int, ref exec.Ref, opt cgm.FeedOptions) (cgm.StepFeed, error) {
	t.mu.Lock()
	fault := t.fault
	t.mu.Unlock()
	if fault != nil {
		return nil, fault
	}
	if rank < 0 || rank >= t.p {
		return nil, fmt.Errorf("transport: feed rank %d out of range (p=%d)", rank, t.p)
	}
	window := opt.Window
	if window < 1 {
		window = 1
	}
	addr := t.cl.addrs[rank]
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing feed to worker %d (%s): %w", rank, addr, err)
	}
	fc := newFConn(conn).kinds(&t.cl.kc)
	if err := fc.write(&frame{Kind: kindFeedOpen, Session: t.session, Rank: rank,
		Call: wireRef(ref, nil), Share: opt.MaxShare}); err != nil {
		fc.close()
		return nil, fmt.Errorf("transport: opening feed to worker %d (%s): %w", rank, addr, err)
	}
	ack, err := fc.read()
	if err != nil {
		fc.close()
		return nil, fmt.Errorf("transport: opening feed to worker %d (%s): %w", rank, addr, err)
	}
	switch {
	case ack.Kind == kindError:
		fc.close()
		return nil, errors.New(ack.Err)
	case ack.Kind != kindFeedAck || ack.Seq != 0:
		fc.close()
		return nil, fmt.Errorf("transport: worker %d answered feed open with frame kind %d seq %d", rank, ack.Kind, ack.Seq)
	}
	f := &clientFeed{t: t, rank: rank, addr: addr, fc: fc,
		slots: make(chan struct{}, window), done: make(chan struct{})}
	if reg := t.cl.cfg.Obs; reg != nil {
		f.rtt = reg.Histogram(fmt.Sprintf(`ingest_feed_ack_rtt_ns{rank="%d"}`, rank))
		f.occ = reg.Histogram(fmt.Sprintf(`ingest_feed_window_depth{rank="%d"}`, rank))
	}
	go f.readAcks()
	return f, nil
}

// feedPend is one unacknowledged feed call.
type feedPend struct {
	seq     int
	sent    time.Time
	release func()
}

// clientFeed is the coordinator-process side of one rank's feed: Send
// pipelines calls under the window semaphore while readAcks (its own
// goroutine) drains acknowledgements, releases the callers' buffers, and
// observes ack RTT and window occupancy. Any failure tears the feed down
// exactly once: every pending release fires, blocked Senders unwind via
// done, and the first cause is what Close reports — a dead feed
// diagnoses, never deadlocks.
type clientFeed struct {
	t    *tcpTransport
	rank int
	addr string
	fc   *fconn

	slots chan struct{} // window semaphore: acquired by Send, freed per ack
	done  chan struct{} // closed on failure or clean end

	mu     sync.Mutex
	pend   []feedPend
	failed bool
	err    error // nil after a clean end
	last   []byte
	seq    int

	rtt, occ *obs.Histogram
}

func (f *clientFeed) Send(args []byte, release func()) error {
	released := false
	rel := func() {
		if !released && release != nil {
			released = true
			release()
		}
	}
	select {
	case f.slots <- struct{}{}:
	case <-f.done:
		rel()
		return f.cause()
	}
	f.mu.Lock()
	if f.failed {
		f.mu.Unlock()
		rel()
		return f.cause()
	}
	f.seq++
	seq := f.seq
	f.pend = append(f.pend, feedPend{seq: seq, sent: time.Now(), release: release})
	depth := len(f.pend)
	f.mu.Unlock()
	if f.occ != nil {
		f.occ.Observe(int64(depth))
	}
	if err := f.fc.write(&frame{Kind: kindFeedCall, Session: f.t.session, Rank: f.rank,
		Seq: seq, blocks: [][]byte{args}}); err != nil {
		// The entry is pending: fail's drain releases it (exactly once).
		f.fail(fmt.Errorf("transport: feed to worker %d (%s): %w", f.rank, f.addr, err))
		return f.cause()
	}
	return nil
}

// readAcks drains worker acknowledgements until the feed ends or fails.
func (f *clientFeed) readAcks() {
	for {
		fr, err := f.fc.read()
		if err != nil {
			f.fail(fmt.Errorf("transport: feed to worker %d (%s) died: %w", f.rank, f.addr, err))
			return
		}
		switch fr.Kind {
		case kindFeedAck:
			if fr.Seq == -1 { // end-of-feed ack
				f.finish()
				return
			}
			f.mu.Lock()
			if len(f.pend) == 0 || f.pend[0].seq != fr.Seq {
				f.mu.Unlock()
				f.fail(fmt.Errorf("transport: worker %d acknowledged feed call %d out of order", f.rank, fr.Seq))
				return
			}
			pe := f.pend[0]
			f.pend = f.pend[1:]
			f.last = fr.Reply
			f.mu.Unlock()
			if pe.release != nil {
				pe.release()
			}
			if f.rtt != nil {
				f.rtt.Observe(time.Since(pe.sent).Nanoseconds())
			}
			<-f.slots
		case kindError:
			f.fail(fmt.Errorf("transport: worker %d feed: %s", f.rank, fr.Err))
			return
		default:
			f.fail(fmt.Errorf("transport: worker %d sent frame kind %d on an ingest feed", f.rank, fr.Kind))
			return
		}
	}
}

// fail tears the feed down with cause (first one wins): pending releases
// fire, blocked Senders unwind, the connection closes.
func (f *clientFeed) fail(cause error) {
	f.mu.Lock()
	if f.failed {
		f.mu.Unlock()
		return
	}
	f.failed = true
	f.err = cause
	pend := f.pend
	f.pend = nil
	f.mu.Unlock()
	for _, pe := range pend {
		if pe.release != nil {
			pe.release()
		}
	}
	close(f.done)
	f.fc.close()
}

// finish ends the feed cleanly (the worker acked kindFeedEnd, which the
// per-connection frame order places after every call ack).
func (f *clientFeed) finish() {
	f.mu.Lock()
	if f.failed {
		f.mu.Unlock()
		return
	}
	f.failed = true
	if n := len(f.pend); n != 0 {
		f.err = fmt.Errorf("transport: worker %d ended the feed with %d calls unacknowledged", f.rank, n)
		for _, pe := range f.pend {
			if pe.release != nil {
				pe.release()
			}
		}
		f.pend = nil
	}
	f.mu.Unlock()
	close(f.done)
	f.fc.close()
}

// cause reports the feed's failure (ErrAborted-style fallback should the
// race on err lose).
func (f *clientFeed) cause() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	return errors.New("transport: feed closed")
}

func (f *clientFeed) Close() ([]byte, error) {
	f.mu.Lock()
	failed := f.failed
	f.mu.Unlock()
	if !failed {
		if err := f.fc.write(&frame{Kind: kindFeedEnd, Session: f.t.session, Seq: -1}); err != nil {
			f.fail(fmt.Errorf("transport: ending feed to worker %d (%s): %w", f.rank, f.addr, err))
		}
	}
	<-f.done // readAcks saw the end ack (or the failure)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.err
}
