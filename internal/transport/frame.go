// Package transport runs the CGM machine's supersteps over TCP: the
// multicomputer as real processes. One coordinator process executes the
// SPMD program driver (the p rank goroutines, the hat replicas and the
// superstep accounting live there, exactly as on the loopback transport),
// and p worker processes carry the h-relations — every exchange leaves
// the coordinator as wire-encoded blocks (internal/wire: raw codec or gob
// fallback), is routed worker-to-worker over a mesh of TCP connections,
// validated for SPMD divergence on the remote side, and returns as the
// assembled column.
//
// With resident execution (cgm.Config.Resident) the workers are more than
// fabric: each session carries a per-rank state store of registered SPMD
// programs (internal/exec), the coordinator dispatches (program, version,
// step, args) control frames, and superstep payloads can originate and
// terminate in worker memory — the forest parts live where the program
// runs, and phase-C block traffic never transits the coordinator. Round
// and h accounting is done by the machine from element counts, so
// loopback and TCP runs of the same program produce identical Metrics in
// both residency modes — the equivalence the tests in this package pin
// down.
//
// Topology: Cluster (a cgm.Provider) opens one session per machine. The
// coordinator dials each worker once per session (rank i's conn carries
// deposits and step calls down, columns and step replies up); workers
// dial each other lazily, one directed conn per (session, source,
// destination) pair, to route blocks. Wire format: every frame is a
// 4-byte big-endian length prefix, one gob message stream for the control
// fields, then the frame's payload blocks raw — uvarint-framed sections
// appended after the gob body, so the already-encoded blocks (see
// internal/wire) are never re-encoded through gob on the way down and are
// sliced straight out of the received frame body on the way up, views
// rather than copies. Each connection keeps ONE encoder/decoder pair for
// its lifetime, so gob type descriptors cross once per connection instead
// of once per frame — framing stays self-delimiting (the length prefix),
// decoding stays streaming (frames must be read in order, which the
// one-reader-per-connection protocol already guarantees).
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	obscluster "repro/internal/obs/cluster"
)

// maxFrame bounds a single frame (1 GiB) so a corrupt length prefix
// cannot ask for an absurd allocation.
const maxFrame = 1 << 30

// dialTimeout bounds every TCP dial and the session-open handshake.
const dialTimeout = 5 * time.Second

// kind discriminates the wire frames.
type kind uint8

const (
	// kindOpen (coordinator→worker) registers a session: the worker will
	// play frame.Rank among frame.Peers for session frame.Session.
	kindOpen kind = iota + 1
	// kindOpenAck (worker→coordinator) confirms the registration; no
	// deposit is sent anywhere before every worker has acked, so a
	// worker never sees peer traffic for a session it does not know.
	kindOpenAck
	// kindHello (worker→worker) binds a fresh peer conn to (session,
	// source rank); the conn then carries only kindBlock frames.
	kindHello
	// kindDeposit (coordinator→worker) is one rank's superstep: either p
	// encoded blocks, or (resident) an emit step reference producing them
	// worker-side; an optional collect step reference consumes the
	// assembled column worker-side.
	kindDeposit
	// kindBlock (worker→worker) routes one block to its destination.
	kindBlock
	// kindColumn (worker→coordinator) returns the assembled column — or,
	// for a resident superstep, the collect step's reply plus the element
	// counts the machine folds into its h accounting.
	kindColumn
	// kindStep (coordinator→worker) runs a registered pure step against
	// the session's resident state.
	kindStep
	// kindStepReply (worker→coordinator) returns the step's reply.
	kindStepReply
	// kindError (worker→coordinator) aborts the superstep with a
	// diagnostic (SPMD divergence, lost peer, step failure, protocol
	// violation).
	kindError
	// kindAbort (either direction) poisons the session.
	kindAbort
	// kindFeedOpen (client→worker) binds a fresh connection as an ingest
	// feed for an EXISTING session: a windowed stream of calls to one
	// registered step against that session's resident state. The
	// coordinator-minted unguessable session token doubles as the feed's
	// authentication — a worker only accepts feeds for sessions it
	// already opened. Rank must match the rank the session plays here,
	// Call names the step (args ride per-call), and Share requests a QoS
	// cap on the fraction of worker wall-time the feed may consume.
	kindFeedOpen
	// kindFeedCall (client→worker) is one feed call: Seq orders it, the
	// encoded args ride as the single out-of-band payload block — never
	// through gob, exactly like superstep payloads.
	kindFeedCall
	// kindFeedAck (worker→client) acknowledges feed call Seq with the
	// step's encoded reply. Seq 0 acks the open, Seq -1 acks the end.
	kindFeedAck
	// kindFeedEnd (client→worker) ends the feed cleanly after all calls
	// are acknowledged; an abnormal feed teardown (anything but this)
	// aborts the whole session.
	kindFeedEnd
	// kindBeaconOpen (client→worker) subscribes the connection to the
	// worker's health beacon stream: the worker pushes one kindBeacon
	// frame immediately and then one per IntervalNs until the connection
	// closes. The stream carries no session state — it is the health
	// plane's dedicated, always-answerable door.
	kindBeaconOpen
	// kindBeacon (worker→client) is one health sample: liveness proof by
	// arrival, worker registry dump by payload (frame.Beacon).
	kindBeacon
)

// kindMax bounds the per-kind counter arrays.
const kindMax = kindBeacon

// stepRef names one registered step on the wire, args attached.
type stepRef struct {
	Prog string
	Ver  int
	Step string
	Args []byte
}

// wireRef converts an exec reference plus args for the wire.
func wireRef(ref exec.Ref, args []byte) *stepRef {
	return &stepRef{Prog: ref.Program, Ver: ref.Version, Step: ref.Step, Args: args}
}

// execRef converts back.
func (sr *stepRef) execRef() exec.Ref {
	return exec.Ref{Program: sr.Prog, Version: sr.Ver, Step: sr.Step}
}

// frame is the single wire message; which fields are meaningful depends
// on Kind.
type frame struct {
	Kind    kind
	Session string
	Rank    int      // sender rank (Hello/Block), played rank (Open)
	Seq     int      // superstep sequence within the current run
	Stamp   string   // "label#seq" — the SPMD check compares it across ranks
	Type    string   // exchanged element type — likewise
	NB      int      // number of out-of-band payload blocks after the gob body
	Peers   []string // Open: worker addresses by rank
	Err     string   // Error/Abort: diagnostic
	Call    *stepRef // Step: the step; Deposit: the emit step (resident)
	Collect *stepRef // Deposit: the collect step (resident)
	Reply   []byte   // StepReply / resident Column: the step's reply
	Note    []byte   // resident Column: the emit step's note
	Sent    int      // resident Column: emit-side element count
	Recv    int      // resident Column: collect-side element count
	// Trace is the machine's trace stamp for this superstep (Deposit; 0 =
	// untraced) and Spans the worker-side spans it produced (Column).
	// Both are zero-valued on the untraced hot path, which gob omits
	// entirely — tracing costs no wire bytes until a query is traced.
	Trace uint64
	Spans []obs.Span
	// Share is the client-requested ingest QoS cap (FeedOpen; 0 =
	// uncapped). The worker combines it with its own operator cap.
	Share float64
	// IntervalNs is the requested beacon period (BeaconOpen; 0 = the
	// worker's default) and Beacon the health sample (Beacon frames).
	// Like Trace/Spans these are zero on every other frame kind, which
	// gob omits entirely — the health plane costs session traffic nothing.
	IntervalNs int64
	Beacon     *obscluster.Beacon

	// blocks is the frame's payload (Deposit: p blocks; Block: 1;
	// Column: p). Unexported on purpose: gob skips it, and the framing
	// layer carries the blocks raw after the gob body — written straight
	// from the deposit's (pooled) buffers, read back as views into the
	// received frame body. A received frame's blocks alias that body, so
	// they stay valid for as long as anything references them (the body is
	// a per-frame allocation, never reused).
	blocks [][]byte
}

// fconn frames one TCP connection. Writes are serialized by a mutex (the
// rank goroutine and Abort may race); reads follow the protocol's
// one-reader-per-connection discipline. The persistent encoder/decoder
// pair means gob type descriptors are sent exactly once per connection.
// Optional atomic counters observe the raw bytes moved (the cluster
// bench's coordinator-traffic metric) and the per-kind frame traffic.
type fconn struct {
	c net.Conn

	wmu  sync.Mutex
	wbuf bytes.Buffer
	enc  *gob.Encoder
	wn   *atomic.Int64

	br  *bufio.Reader
	rd  chunkReader
	dec *gob.Decoder
	rn  *atomic.Int64

	kc *kindCounters
}

func newFConn(c net.Conn) *fconn {
	f := &fconn{c: c}
	f.enc = gob.NewEncoder(&f.wbuf)
	f.br = bufio.NewReader(c)
	f.dec = gob.NewDecoder(&f.rd)
	return f
}

// count wires the byte counters (coordinator conns only).
func (f *fconn) count(out, in *atomic.Int64) *fconn {
	f.wn, f.rn = out, in
	return f
}

// kinds wires the per-kind frame counters (both directions).
func (f *fconn) kinds(kc *kindCounters) *fconn {
	f.kc = kc
	return f
}

func (f *fconn) write(fr *frame) error {
	_, err := f.writeN(fr)
	return err
}

// writeN writes one frame and reports its full framed size (length
// prefix + gob body + block sections) — the per-query cost attribution's
// byte source, the same number the coordinator byte counters see.
func (f *fconn) writeN(fr *frame) (int, error) {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	f.wbuf.Reset()
	f.wbuf.Write([]byte{0, 0, 0, 0})
	fr.NB = len(fr.blocks)
	if err := f.enc.Encode(fr); err != nil {
		return 0, fmt.Errorf("transport: encoding frame: %w", err)
	}
	// The payload blocks ride after the gob body, each framed as
	// uvarint(len+1) + bytes with 0 marking a nil slot — already-encoded
	// blocks are appended verbatim, never re-encoded through gob.
	var vb [binary.MaxVarintLen64]byte
	for _, blk := range fr.blocks {
		if blk == nil {
			f.wbuf.WriteByte(0)
			continue
		}
		f.wbuf.Write(vb[:binary.PutUvarint(vb[:], uint64(len(blk))+1)])
		f.wbuf.Write(blk)
	}
	b := f.wbuf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if f.wn != nil {
		f.wn.Add(int64(len(b)))
	}
	if f.kc != nil {
		f.kc.add(fr.Kind, int64(len(b)))
	}
	n := len(b)
	_, err := f.c.Write(b)
	if f.wbuf.Cap() > maxRetainedBuf {
		// Don't let one huge block frame pin its peak size for the
		// connection's lifetime (store-level conns live for hours). The
		// encoder writes through &f.wbuf, so zeroing the struct in place
		// keeps it valid — only the storage is surrendered to the GC.
		f.wbuf = bytes.Buffer{}
	}
	return n, err
}

// maxRetainedBuf bounds the write buffer capacity a connection keeps
// between frames; steady-state control frames are far smaller.
const maxRetainedBuf = 1 << 20

func (f *fconn) read() (*frame, error) {
	fr, _, err := f.readN()
	return fr, err
}

// readN reads one frame and reports its full framed size — writeN's
// receiving-side counterpart.
func (f *fconn) readN() (*frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(f.br, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, 0, fmt.Errorf("transport: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(f.br, body); err != nil {
		return nil, 0, err
	}
	if f.rn != nil {
		f.rn.Add(int64(n) + 4)
	}
	f.rd.reset(body)
	var fr frame
	err := f.dec.Decode(&fr)
	if err != nil {
		f.rd.reset(nil)
		return nil, 0, fmt.Errorf("transport: decoding frame: %w", err)
	}
	// Slice the payload blocks out of the frame body: views, not copies.
	// The body is this frame's own allocation, so the views stay valid for
	// as long as the blocks are referenced.
	if fr.NB > 0 {
		rest := body[f.rd.off:]
		off := 0
		fr.blocks = make([][]byte, fr.NB)
		for i := range fr.blocks {
			v, vn := binary.Uvarint(rest[off:])
			if vn <= 0 {
				f.rd.reset(nil)
				return nil, 0, fmt.Errorf("transport: corrupt block section %d of %d", i, fr.NB)
			}
			off += vn
			if v == 0 {
				continue // nil slot
			}
			l := int(v - 1)
			if l > len(rest)-off {
				f.rd.reset(nil)
				return nil, 0, fmt.Errorf("transport: block section %d overruns the frame (%d of %d bytes left)", i, l, len(rest)-off)
			}
			fr.blocks[i] = rest[off : off+l : off+l]
			off += l
		}
		if off != len(rest) {
			f.rd.reset(nil)
			return nil, 0, fmt.Errorf("transport: %d trailing bytes after block sections", len(rest)-off)
		}
	}
	f.rd.reset(nil) // don't pin a large frame body on an idle connection
	if f.kc != nil {
		f.kc.add(fr.Kind, int64(n)+4)
	}
	return &fr, int(n) + 4, nil
}

func (f *fconn) close() error { return f.c.Close() }

// FrameStat counts one frame kind's traffic on one side of the wire:
// frames moved (both directions) and their full framed bytes (length
// prefix + gob body + payload block sections).
type FrameStat struct {
	Frames int64
	Bytes  int64
}

// kindCounters accumulates per-kind frame traffic atomically; one
// instance is shared by all connections of a Cluster or Worker.
type kindCounters struct {
	frames [kindMax + 1]atomic.Int64
	bytes  [kindMax + 1]atomic.Int64
}

func (kc *kindCounters) add(k kind, n int64) {
	if int(k) < len(kc.frames) {
		kc.frames[k].Add(1)
		kc.bytes[k].Add(n)
	}
}

// kindNames labels the stats map; indexes match the kind constants.
var kindNames = [kindMax + 1]string{
	kindOpen: "open", kindOpenAck: "open_ack", kindHello: "hello",
	kindDeposit: "deposit", kindBlock: "block", kindColumn: "column",
	kindStep: "step", kindStepReply: "step_reply",
	kindError: "error", kindAbort: "abort",
	kindFeedOpen: "feed_open", kindFeedCall: "feed_call",
	kindFeedAck: "feed_ack", kindFeedEnd: "feed_end",
	kindBeaconOpen: "beacon_open", kindBeacon: "beacon",
}

// snapshot returns the non-zero per-kind stats.
func (kc *kindCounters) snapshot() map[string]FrameStat {
	out := make(map[string]FrameStat)
	for k := range kc.frames {
		fr, by := kc.frames[k].Load(), kc.bytes[k].Load()
		if fr == 0 && by == 0 {
			continue
		}
		out[kindNames[k]] = FrameStat{Frames: fr, Bytes: by}
	}
	return out
}

// chunkReader feeds the persistent gob decoder exactly one frame body at
// a time. Implementing io.ByteReader keeps gob from wrapping it in a
// bufio.Reader that could read past the frame boundary.
type chunkReader struct {
	body []byte
	off  int
}

func (cr *chunkReader) reset(body []byte) { cr.body, cr.off = body, 0 }

func (cr *chunkReader) Read(p []byte) (int, error) {
	if cr.off >= len(cr.body) {
		return 0, io.EOF
	}
	n := copy(p, cr.body[cr.off:])
	cr.off += n
	return n, nil
}

func (cr *chunkReader) ReadByte() (byte, error) {
	if cr.off >= len(cr.body) {
		return 0, io.EOF
	}
	b := cr.body[cr.off]
	cr.off++
	return b, nil
}
