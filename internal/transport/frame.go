// Package transport runs the CGM machine's supersteps over TCP: the
// multicomputer as real processes. One coordinator process executes the
// SPMD program (the p rank goroutines and the distributed structure's
// state live there, exactly as on the loopback transport), and p worker
// processes form the communication fabric — every h-relation leaves the
// coordinator as gob-encoded blocks, is routed worker-to-worker over a
// mesh of TCP connections, validated for SPMD divergence on the remote
// side, and returns as the assembled column. Round and h accounting is
// done by the machine from element counts, so loopback and TCP runs of
// the same program produce identical Metrics — the equivalence the tests
// in this package pin down.
//
// Topology: Cluster (a cgm.Provider) opens one session per machine. The
// coordinator dials each worker once per session (rank i's conn carries
// deposits down and columns up); workers dial each other lazily, one
// directed conn per (session, source, destination) pair, to route
// blocks. Wire format: every frame is a 4-byte big-endian length prefix
// followed by one gob-encoded frame value.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// maxFrame bounds a single frame (1 GiB) so a corrupt length prefix
// cannot ask for an absurd allocation.
const maxFrame = 1 << 30

// dialTimeout bounds every TCP dial and the session-open handshake.
const dialTimeout = 5 * time.Second

// kind discriminates the wire frames.
type kind uint8

const (
	// kindOpen (coordinator→worker) registers a session: the worker will
	// play frame.Rank among frame.Peers for session frame.Session.
	kindOpen kind = iota + 1
	// kindOpenAck (worker→coordinator) confirms the registration; no
	// deposit is sent anywhere before every worker has acked, so a
	// worker never sees peer traffic for a session it does not know.
	kindOpenAck
	// kindHello (worker→worker) binds a fresh peer conn to (session,
	// source rank); the conn then carries only kindBlock frames.
	kindHello
	// kindDeposit (coordinator→worker) is one rank's out-row for one
	// superstep: p encoded blocks plus the SPMD stamp.
	kindDeposit
	// kindBlock (worker→worker) routes one block to its destination.
	kindBlock
	// kindColumn (worker→coordinator) returns the assembled column.
	kindColumn
	// kindError (worker→coordinator) aborts the superstep with a
	// diagnostic (SPMD divergence, lost peer, protocol violation).
	kindError
	// kindAbort (either direction) poisons the session.
	kindAbort
)

// frame is the single wire message; which fields are meaningful depends
// on Kind.
type frame struct {
	Kind    kind
	Session string
	Rank    int      // sender rank (Hello/Block), played rank (Open)
	Seq     int      // superstep sequence within the current run
	Stamp   string   // "label#seq" — the SPMD check compares it across ranks
	Type    string   // exchanged element type — likewise
	Blocks  [][]byte // Deposit: p blocks; Block: 1; Column: p
	Peers   []string // Open: worker addresses by rank
	Err     string   // Error/Abort: diagnostic
}

// writeFrame writes one length-prefixed gob frame. Each frame uses a
// fresh encoder: the per-frame type-descriptor overhead buys stateless
// framing (any frame can be decoded in isolation, connections carry no
// encoder state across messages).
func writeFrame(w io.Writer, f *frame) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("transport: encoding frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed gob frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("transport: decoding frame: %w", err)
	}
	return &f, nil
}
