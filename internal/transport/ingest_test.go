package transport_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aggregates"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestWorkerFedEquivalence extends the cross-transport safety net to the
// ingest tentpole: a worker-fed build (points staged into the ranks, the
// whole construction run held in worker memory) must produce identical
// answers AND identical round/h metrics to the canonical coordinator-fed
// build — on every cell of the {loopback, TCP} × {fabric, resident}
// matrix, plus the open-loop streaming client on the TCP resident cell.
func TestWorkerFedEquivalence(t *testing.T) {
	const p, n, m = 4, 500, 48
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.05, Seed: 11})

	// The coordinator-fed loopback fabric build is the baseline.
	base, err := core.BuildOn(cgm.NewLocalProvider(cgm.Config{P: p}), pts, core.BackendLayered)
	if err != nil {
		t.Fatal(err)
	}
	baseConstruct := base.Machine().Metrics() // before any search rounds fold in
	wantCount := base.CountBatch(boxes)
	wantRep := base.ReportBatch(boxes)

	check := func(t *testing.T, name string, tree *core.Tree, exactH bool) {
		t.Helper()
		if err := tree.Verify(); err != nil {
			t.Fatalf("%s fails Verify: %v", name, err)
		}
		if exactH {
			assertMetricsEqual(t, "construct", "coordinator-fed", name,
				baseConstruct, tree.Machine().Metrics())
		} else {
			// The streaming client stages chunks in arrival order, not the
			// canonical block distribution, so the first sort phase's h may
			// differ — but the ROUND STRUCTURE (count, labels, order) is an
			// algorithm property and must match exactly.
			got := tree.Machine().Metrics()
			if len(got.Rounds) != len(baseConstruct.Rounds) {
				t.Fatalf("%s folded %d construct rounds, coordinator-fed %d", name, len(got.Rounds), len(baseConstruct.Rounds))
			}
			for i := range got.Rounds {
				if got.Rounds[i].Label != baseConstruct.Rounds[i].Label {
					t.Fatalf("%s construct round %d is %q, coordinator-fed %q",
						name, i, got.Rounds[i].Label, baseConstruct.Rounds[i].Label)
				}
			}
		}
		got := tree.CountBatch(boxes)
		for q := range wantCount {
			if wantCount[q] != got[q] {
				t.Fatalf("%s count query %d: want %d, got %d", name, q, wantCount[q], got[q])
			}
		}
		gotRep := tree.ReportBatch(boxes)
		for q := range wantRep {
			if len(wantRep[q]) != len(gotRep[q]) {
				t.Fatalf("%s report query %d: want %d points, got %d", name, q, len(wantRep[q]), len(gotRep[q]))
			}
			for j := range wantRep[q] {
				if wantRep[q][j].ID != gotRep[q][j].ID {
					t.Fatalf("%s report query %d point %d: want id %d, got id %d",
						name, q, j, wantRep[q][j].ID, gotRep[q][j].ID)
				}
			}
		}
	}

	for _, v := range execVariants {
		t.Run(v.name, func(t *testing.T) {
			mach, err := v.provider(t, p).NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			check(t, v.name, core.BuildWorkerFed(mach, pts, core.BackendLayered), true)
		})
	}
	t.Run("tcp/resident/stream", func(t *testing.T) {
		cl := startCluster(t, p, cgm.Config{Resident: true})
		mach, err := cl.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		tree, err := core.BulkLoad(mach, core.SliceChunks(pts, 61), core.BackendLayered, 2)
		if err != nil {
			t.Fatalf("streaming bulk load: %v", err)
		}
		check(t, "tcp/resident/stream", tree, false)
	})
}

// TestClusterIngestAndServeWithoutGob pins satellite goal: with every
// hot payload raw-coded, a resident cluster bulk-ingesting a stream and
// then serving all three result modes encodes ZERO gob blocks — the
// fallback is reserved for custom aggregate value types. The wire
// counters are process-global, so this covers both the coordinator and
// the in-process workers.
func TestClusterIngestAndServeWithoutGob(t *testing.T) {
	const p, n, m = 4, 2000, 48
	cl := startCluster(t, p, cgm.Config{Resident: true})
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.05, Seed: 11})

	before := wire.Stats()

	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.BulkLoad(mach, core.SliceChunks(pts, 256), core.BackendLayered, 2)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
	ops := make([]core.MixedOp, m)
	for i := range ops {
		ops[i] = core.MixedOp(i % 3)
	}
	for range 3 {
		core.MixedBatch(tree, h, ops, boxes)
	}

	after := wire.Stats()
	if d := after.GobEncBlocks - before.GobEncBlocks; d != 0 {
		t.Fatalf("ingest + serve encoded %d gob blocks (%d gob bytes); gob-coded types so far: %v",
			d, after.GobEncBytes-before.GobEncBytes, wire.GobTypes())
	}
	if after.RawEncBlocks == before.RawEncBlocks {
		t.Fatal("no raw blocks encoded — measurement is not observing the wire")
	}
}

// killSource streams chunks and kills a worker partway through the
// stream.
type killSource struct {
	src   core.ChunkSource
	after int
	kill  func()
	calls int
}

func (k *killSource) Next() ([]geom.Point, error) {
	k.calls++
	if k.calls == k.after && k.kill != nil {
		k.kill()
		k.kill = nil
		// Give the worker's listener time to tear its sessions down so
		// the in-flight window drains into a dead connection.
		time.Sleep(20 * time.Millisecond)
	}
	return k.src.Next()
}

// TestWorkerDeathMidIngestAborts is the ingest half of the fail-fast
// contract: killing a worker in the middle of an open-loop bulk load
// must surface as a prompt diagnostic error from BulkLoad — not a
// deadlocked feeder window — and the cluster must keep failing fast
// afterwards.
func TestWorkerDeathMidIngestAborts(t *testing.T) {
	const p, n = 4, 4000
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 3})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	src := &killSource{src: core.SliceChunks(pts, 64), after: 8, kill: func() { workers[2].Close() }}

	type result struct {
		tree *core.Tree
		err  error
	}
	done := make(chan result, 1)
	go func() {
		tree, err := core.BulkLoad(mach, src, core.BackendLayered, 2)
		done <- result{tree, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("bulk load deadlocked after losing a worker mid-stream")
	}
	if res.err == nil {
		t.Fatal("bulk load with a dead worker reported success")
	}
	t.Logf("diagnostic: %v", res.err)
	if !strings.Contains(res.err.Error(), "core: bulk") && !strings.Contains(res.err.Error(), "worker-fed build aborted") {
		t.Fatalf("error does not identify the ingest: %v", res.err)
	}

	// Fail fast on reuse: the cluster has lost a rank for good.
	start := time.Now()
	if _, err := cl.NewMachine(); err == nil {
		mach2, _ := cl.NewMachine()
		if mach2 != nil {
			if _, err := core.BulkLoad(mach2, core.SliceChunks(pts[:100], 32), core.BackendLayered, 2); err == nil {
				t.Fatal("second bulk load on a degraded cluster succeeded")
			}
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("degraded cluster took %v to fail", elapsed)
	}
}
