package transport_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
)

// runExpectAbort runs prog expecting a machine abort; it returns the
// panic message, failing the test on a clean return or a hang.
func runExpectAbort(t *testing.T, mach *cgm.Machine, prog func(*cgm.Proc)) string {
	t.Helper()
	got := make(chan string, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				got <- r.(string)
				return
			}
			got <- ""
		}()
		mach.Run(prog)
	}()
	select {
	case msg := <-got:
		if msg == "" {
			t.Fatal("run finished cleanly, expected an abort")
		}
		return msg
	case <-time.After(30 * time.Second):
		t.Fatal("machine deadlocked instead of aborting")
		return ""
	}
}

// TestTCPExchangeTransposes is the basic fabric check: the all-to-all
// really transposes through the worker mesh.
func TestTCPExchangeTransposes(t *testing.T) {
	cl := startCluster(t, 4, cgm.Config{})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	var results [4][][]int
	mach.Run(func(pr *cgm.Proc) {
		out := make([][]int, 4)
		for j := 0; j < 4; j++ {
			out[j] = []int{pr.Rank()*10 + j}
		}
		results[pr.Rank()] = cgm.Exchange(pr, "transpose", out)
	})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := results[i][j][0], j*10+i; got != want {
				t.Fatalf("proc %d from %d: got %d want %d", i, j, got, want)
			}
		}
	}
}

// TestTCPSPMDDivergenceAborts: the divergence is detected on the remote
// side — workers compare the stamps that arrive over the wire — and the
// coordinator surfaces the diagnostic as a machine abort.
func TestTCPSPMDDivergenceAborts(t *testing.T) {
	cl := startCluster(t, 4, cgm.Config{})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	msg := runExpectAbort(t, mach, func(pr *cgm.Proc) {
		label := "a"
		if pr.Rank() == 1 {
			label = "b"
		}
		cgm.Barrier(pr, label)
	})
	if !strings.Contains(msg, "SPMD violation") {
		t.Fatalf("divergence diagnostic lost: %v", msg)
	}
}

// TestWorkerDeathMidSuperstepAborts kills one worker process while the
// machine is mid-run: the coordinator must surface a diagnostic abort
// (never deadlock), and the machine must fail fast on reuse with the
// original cause — the satellite contract on both counts.
func TestWorkerDeathMidSuperstepAborts(t *testing.T) {
	workers := make([]*transport.Worker, 4)
	addrs := make([]string, 4)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}

	var rounds atomic.Int64
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		workers[2].Close() // the kill, while supersteps are in flight
	}()
	msg := runExpectAbort(t, mach, func(pr *cgm.Proc) {
		for i := 0; i < 10000; i++ {
			cgm.Barrier(pr, "spin")
			if pr.Rank() == 0 {
				rounds.Add(1)
				if once.CompareAndSwap(false, true) {
					close(started)
				}
			}
		}
	})
	if rounds.Load() == 0 {
		t.Fatal("worker died before any superstep completed; kill was not mid-run")
	}
	if rounds.Load() >= 10000 {
		t.Fatal("program ran to completion; the kill changed nothing")
	}
	if !strings.Contains(msg, "transport:") {
		t.Fatalf("abort lacks a transport diagnostic: %v", msg)
	}

	// Reuse must fail fast with the original cause, not hang or rerun.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run on the aborted machine must fail fast")
		}
		if !strings.Contains(r.(string), "earlier run") {
			t.Fatalf("fail-fast panic lost the cause: %v", r)
		}
	}()
	mach.Run(func(pr *cgm.Proc) {})
}

// TestAbortBeforeFirstDepositFreesWorkers: when a rank dies before its
// first deposit of a run, the other ranks' workers are stuck collecting
// a block that will never be routed (the dead rank's worker dialed no
// peers). The abort must still free every worker session — the
// coordinator conns closing is the only signal available.
func TestAbortBeforeFirstDepositFreesWorkers(t *testing.T) {
	workers := make([]*transport.Worker, 4)
	addrs := make([]string, 4)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	msg := runExpectAbort(t, mach, func(pr *cgm.Proc) {
		if pr.Rank() == 1 {
			panic("rank 1 dies before its first exchange")
		}
		cgm.Barrier(pr, "never-completes")
	})
	if !strings.Contains(msg, "rank 1 dies") {
		t.Fatalf("cause lost: %v", msg)
	}
	// Every worker must drain its session without Worker.Close's help.
	deadline := time.Now().Add(5 * time.Second)
	for i, w := range workers {
		for w.Sessions() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d leaked %d sessions after the abort", i, w.Sessions())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestDialClusterRejectsDuplicateAddresses: one worker cannot play two
// ranks; the mistake must fail at dial time with a clear diagnostic,
// not later as a confusing duplicate-session error from NewMachine.
func TestDialClusterRejectsDuplicateAddresses(t *testing.T) {
	w, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = transport.DialCluster([]string{w.Addr(), w.Addr()}, cgm.Config{})
	if err == nil || !strings.Contains(err.Error(), "two ranks") {
		t.Fatalf("duplicate addresses not rejected clearly: %v", err)
	}
}

// TestClusterCloseFailsMachinesFast: machines from a closed cluster are
// unusable with a clear diagnostic.
func TestClusterCloseFailsMachinesFast(t *testing.T) {
	cl := startCluster(t, 2, cgm.Config{})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "ok") })
	cl.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run after cluster close must fail")
		}
		if !strings.Contains(r.(string), "closed") {
			t.Fatalf("unexpected diagnostic: %v", r)
		}
	}()
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "late") })
}

// TestWorkerCloseWithIdleSession: Close must sever the incoming
// peer-block conns of sessions that are alive but idle (no superstep in
// flight, so no abort cascade will close them from the remote side) —
// otherwise Close blocks forever on their reader goroutines, and a
// rangeworker never exits on SIGTERM while a coordinator merely holds a
// session open.
func TestWorkerCloseWithIdleSession(t *testing.T) {
	workers := make([]*transport.Worker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// One completed superstep establishes the worker-to-worker conns;
	// the session then sits idle.
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "establish") })

	done := make(chan struct{})
	go func() {
		workers[0].Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Worker.Close hung on an idle session's peer conns")
	}
}

// TestWorkerSessionsDrain: closing the machines tears their sessions
// down on the worker side.
func TestWorkerSessionsDrain(t *testing.T) {
	w, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cl, err := transport.DialCluster([]string{w.Addr()}, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "b") })
	if got := w.Sessions(); got != 1 {
		t.Fatalf("worker sees %d sessions, want 1", got)
	}
	mach.Close()
	deadline := time.Now().Add(5 * time.Second)
	for w.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not torn down; %d still live", w.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResidentWorkerDeathAbortsQuery kills a worker holding resident
// phase-C state: the next query batch must abort with a transport
// diagnostic (not deadlock), and the poisoned machine must fail fast on
// reuse with the original cause — the satellite contract under
// residency.
func TestResidentWorkerDeathAbortsQuery(t *testing.T) {
	workers := make([]*transport.Worker, 4)
	addrs := make([]string, 4)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pts := workload.Points(workload.PointSpec{N: 400, Dims: 2, Dist: workload.Clustered, Seed: 9})
	boxes := workload.Boxes(workload.QuerySpec{M: 16, Dims: 2, N: 400, Selectivity: 0.1, Seed: 2})
	tree, err := core.BuildOn(cl, pts, core.BackendLayered)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.CountBatch(boxes); len(got) != len(boxes) {
		t.Fatalf("pre-kill sanity batch returned %d answers", len(got))
	}

	workers[2].Close() // the worker's session — and its forest part — dies

	msg := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		tree.CountBatch(boxes)
		return ""
	}()
	if msg == "" {
		t.Fatal("query batch on a cluster missing resident state finished cleanly")
	}
	if !strings.Contains(msg, "transport:") && !strings.Contains(msg, "resident") {
		t.Fatalf("abort lacks a diagnostic: %v", msg)
	}

	// Fail-fast reuse with the original cause.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reusing the aborted machine must fail fast")
		}
		if !strings.Contains(fmt.Sprint(r), "earlier run") {
			t.Fatalf("fail-fast panic lost the cause: %v", r)
		}
	}()
	tree.CountBatch(boxes)
}

// TestResidentWorkerDeathSurfacesQueryErr: the same failure through the
// mutable store must come back as an error on the batch and be recorded
// in Stats.QueryErr (mirroring Stats.CompactErr), with the engine's
// dispatch goroutine alive — not panicked.
func TestResidentWorkerDeathSurfacesQueryErr(t *testing.T) {
	workers := make([]*transport.Worker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := store.Open("", store.Config{Dims: 2, Provider: cl, MemtableCap: 64, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pts := workload.Points(workload.PointSpec{N: 200, Dims: 2, Dist: workload.Uniform, Seed: 4})
	if _, err := st.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	boxes := workload.Boxes(workload.QuerySpec{M: 8, Dims: 2, N: 200, Selectivity: 0.1, Seed: 6})

	eng := engine.NewStore(st, engine.Config{BatchSize: 4, MaxDelay: time.Millisecond})
	defer eng.Close()
	if _, err := eng.Count(boxes[0]); err != nil {
		t.Fatalf("pre-kill engine count: %v", err)
	}

	workers[1].Close()

	if _, err := eng.Count(boxes[1]); err == nil {
		t.Fatal("engine count against a dead resident worker succeeded")
	}
	if qerr := st.Stats().QueryErr; qerr == "" {
		t.Fatal("Stats.QueryErr empty after an aborted query batch")
	}
	// The engine loop survived the abort: a second query gets an error
	// reply, not a hang on a dead dispatch goroutine.
	if _, err := eng.Count(boxes[2]); err == nil {
		t.Fatal("second engine count succeeded on a poisoned level machine")
	}
	// Mutations are still accepted — the write path does not depend on
	// the poisoned query machines (compaction may later fail and set
	// CompactErr, which is its own, separately-tested contract).
	fresh := []geom.Point{{ID: 10_000, X: []geom.Coord{1, 2}}}
	if _, err := st.InsertBatch(fresh); err != nil {
		if !strings.Contains(err.Error(), "compaction failed") {
			t.Fatalf("mutation after query abort: %v", err)
		}
	}
}

// TestRetiredLevelSessionsClose: compaction-retired level trees must
// close their TCP sessions (and worker-resident state) eagerly once no
// pinned version references them — not leak until Cluster.Close.
func TestRetiredLevelSessionsClose(t *testing.T) {
	w, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cl, err := transport.DialCluster([]string{w.Addr()}, cgm.Config{Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := store.Open("", store.Config{Dims: 2, Provider: cl, MemtableCap: 16, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pts := workload.Points(workload.PointSpec{N: 96, Dims: 2, Dist: workload.Uniform, Seed: 8})
	for lo := 0; lo < len(pts); lo += 16 {
		if _, err := st.InsertBatch(pts[lo : lo+16]); err != nil {
			t.Fatal(err)
		}
	}
	// Delete enough to trip a fold: every level collapses into one.
	if _, err := st.DeleteBatch(pts[:40]); err != nil {
		t.Fatal(err)
	}
	st.Compact()

	levels := st.Stats().Levels
	if levels == 0 {
		t.Fatal("expected at least one level after compaction")
	}
	// Eventually exactly one session per live level survives: every
	// retired level's machine was closed by the reference counting, with
	// the cluster still open.
	deadline := time.Now().Add(5 * time.Second)
	for w.Sessions() != levels {
		if time.Now().After(deadline) {
			t.Fatalf("worker holds %d sessions for %d live levels (retired levels leaked)", w.Sessions(), levels)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
