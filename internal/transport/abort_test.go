package transport_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cgm"
	"repro/internal/transport"
)

// runExpectAbort runs prog expecting a machine abort; it returns the
// panic message, failing the test on a clean return or a hang.
func runExpectAbort(t *testing.T, mach *cgm.Machine, prog func(*cgm.Proc)) string {
	t.Helper()
	got := make(chan string, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				got <- r.(string)
				return
			}
			got <- ""
		}()
		mach.Run(prog)
	}()
	select {
	case msg := <-got:
		if msg == "" {
			t.Fatal("run finished cleanly, expected an abort")
		}
		return msg
	case <-time.After(30 * time.Second):
		t.Fatal("machine deadlocked instead of aborting")
		return ""
	}
}

// TestTCPExchangeTransposes is the basic fabric check: the all-to-all
// really transposes through the worker mesh.
func TestTCPExchangeTransposes(t *testing.T) {
	cl := startCluster(t, 4)
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	var results [4][][]int
	mach.Run(func(pr *cgm.Proc) {
		out := make([][]int, 4)
		for j := 0; j < 4; j++ {
			out[j] = []int{pr.Rank()*10 + j}
		}
		results[pr.Rank()] = cgm.Exchange(pr, "transpose", out)
	})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := results[i][j][0], j*10+i; got != want {
				t.Fatalf("proc %d from %d: got %d want %d", i, j, got, want)
			}
		}
	}
}

// TestTCPSPMDDivergenceAborts: the divergence is detected on the remote
// side — workers compare the stamps that arrive over the wire — and the
// coordinator surfaces the diagnostic as a machine abort.
func TestTCPSPMDDivergenceAborts(t *testing.T) {
	cl := startCluster(t, 4)
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	msg := runExpectAbort(t, mach, func(pr *cgm.Proc) {
		label := "a"
		if pr.Rank() == 1 {
			label = "b"
		}
		cgm.Barrier(pr, label)
	})
	if !strings.Contains(msg, "SPMD violation") {
		t.Fatalf("divergence diagnostic lost: %v", msg)
	}
}

// TestWorkerDeathMidSuperstepAborts kills one worker process while the
// machine is mid-run: the coordinator must surface a diagnostic abort
// (never deadlock), and the machine must fail fast on reuse with the
// original cause — the satellite contract on both counts.
func TestWorkerDeathMidSuperstepAborts(t *testing.T) {
	workers := make([]*transport.Worker, 4)
	addrs := make([]string, 4)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}

	var rounds atomic.Int64
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		workers[2].Close() // the kill, while supersteps are in flight
	}()
	msg := runExpectAbort(t, mach, func(pr *cgm.Proc) {
		for i := 0; i < 10000; i++ {
			cgm.Barrier(pr, "spin")
			if pr.Rank() == 0 {
				rounds.Add(1)
				if once.CompareAndSwap(false, true) {
					close(started)
				}
			}
		}
	})
	if rounds.Load() == 0 {
		t.Fatal("worker died before any superstep completed; kill was not mid-run")
	}
	if rounds.Load() >= 10000 {
		t.Fatal("program ran to completion; the kill changed nothing")
	}
	if !strings.Contains(msg, "transport:") {
		t.Fatalf("abort lacks a transport diagnostic: %v", msg)
	}

	// Reuse must fail fast with the original cause, not hang or rerun.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run on the aborted machine must fail fast")
		}
		if !strings.Contains(r.(string), "earlier run") {
			t.Fatalf("fail-fast panic lost the cause: %v", r)
		}
	}()
	mach.Run(func(pr *cgm.Proc) {})
}

// TestAbortBeforeFirstDepositFreesWorkers: when a rank dies before its
// first deposit of a run, the other ranks' workers are stuck collecting
// a block that will never be routed (the dead rank's worker dialed no
// peers). The abort must still free every worker session — the
// coordinator conns closing is the only signal available.
func TestAbortBeforeFirstDepositFreesWorkers(t *testing.T) {
	workers := make([]*transport.Worker, 4)
	addrs := make([]string, 4)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	msg := runExpectAbort(t, mach, func(pr *cgm.Proc) {
		if pr.Rank() == 1 {
			panic("rank 1 dies before its first exchange")
		}
		cgm.Barrier(pr, "never-completes")
	})
	if !strings.Contains(msg, "rank 1 dies") {
		t.Fatalf("cause lost: %v", msg)
	}
	// Every worker must drain its session without Worker.Close's help.
	deadline := time.Now().Add(5 * time.Second)
	for i, w := range workers {
		for w.Sessions() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d leaked %d sessions after the abort", i, w.Sessions())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestDialClusterRejectsDuplicateAddresses: one worker cannot play two
// ranks; the mistake must fail at dial time with a clear diagnostic,
// not later as a confusing duplicate-session error from NewMachine.
func TestDialClusterRejectsDuplicateAddresses(t *testing.T) {
	w, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = transport.DialCluster([]string{w.Addr(), w.Addr()}, cgm.Config{})
	if err == nil || !strings.Contains(err.Error(), "two ranks") {
		t.Fatalf("duplicate addresses not rejected clearly: %v", err)
	}
}

// TestClusterCloseFailsMachinesFast: machines from a closed cluster are
// unusable with a clear diagnostic.
func TestClusterCloseFailsMachinesFast(t *testing.T) {
	cl := startCluster(t, 2)
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "ok") })
	cl.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run after cluster close must fail")
		}
		if !strings.Contains(r.(string), "closed") {
			t.Fatalf("unexpected diagnostic: %v", r)
		}
	}()
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "late") })
}

// TestWorkerCloseWithIdleSession: Close must sever the incoming
// peer-block conns of sessions that are alive but idle (no superstep in
// flight, so no abort cascade will close them from the remote side) —
// otherwise Close blocks forever on their reader goroutines, and a
// rangeworker never exits on SIGTERM while a coordinator merely holds a
// session open.
func TestWorkerCloseWithIdleSession(t *testing.T) {
	workers := make([]*transport.Worker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// One completed superstep establishes the worker-to-worker conns;
	// the session then sits idle.
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "establish") })

	done := make(chan struct{})
	go func() {
		workers[0].Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Worker.Close hung on an idle session's peer conns")
	}
}

// TestWorkerSessionsDrain: closing the machines tears their sessions
// down on the worker side.
func TestWorkerSessionsDrain(t *testing.T) {
	w, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cl, err := transport.DialCluster([]string{w.Addr()}, cgm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mach.Run(func(pr *cgm.Proc) { cgm.Barrier(pr, "b") })
	if got := w.Sessions(); got != 1 {
		t.Fatalf("worker sees %d sessions, want 1", got)
	}
	mach.Close()
	deadline := time.Now().Add(5 * time.Second)
	for w.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not torn down; %d still live", w.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
