package transport_test

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

// traceSetup builds a machine of the given transport/residency cell with
// a fresh registry and tracer wired in.
func traceSetup(t *testing.T, tcp, resident bool, p int) (*cgm.Machine, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer()
	cfg := cgm.Config{P: p, Resident: resident, Obs: obs.NewRegistry(), Tracer: tracer}
	if !tcp {
		return cgm.New(cfg), tracer
	}
	cl := startCluster(t, p, cfg)
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return mach, tracer
}

// TestTraceMatrix checks that a query batch's trace ID survives every
// transport × residency combination — spans come back attributed to the
// right trace — and that tracing never changes the answers.
func TestTraceMatrix(t *testing.T) {
	const p, n, m = 4, 1 << 10, 16
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 3})
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.05, Seed: 5})

	// Untraced baseline on a plain loopback machine.
	base := core.Build(cgm.New(cgm.Config{P: p}), pts).CountBatch(boxes)

	for _, tc := range []struct {
		name          string
		tcp, resident bool
	}{
		{"loopback/fabric", false, false},
		{"loopback/resident", false, true},
		{"tcp/fabric", true, false},
		{"tcp/resident", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mach, tracer := traceSetup(t, tc.tcp, tc.resident, p)
			dt := core.Build(mach, pts)
			id := tracer.NewID()
			dt.SetTrace(id)
			counts := dt.CountBatch(boxes)
			dt.SetTrace(0)
			for i := range counts {
				if counts[i] != base[i] {
					t.Fatalf("query %d: traced count %d != untraced %d", i, counts[i], base[i])
				}
			}
			spans := tracer.Spans(id)
			if len(spans) == 0 {
				t.Fatalf("trace %d recorded no spans", id)
			}
			var coord, worker int
			for _, s := range spans {
				if s.Trace != id {
					t.Fatalf("span %q carries trace %d, want %d", s.Name, s.Trace, id)
				}
				if s.Rank == obs.CoordRank {
					coord++
				} else {
					worker++
				}
			}
			if coord == 0 {
				t.Errorf("no coordinator spans in trace %d", id)
			}
			// Worker-side spans exist wherever there is a worker side to
			// stamp: worker processes (TCP) or resident rank stores.
			if (tc.tcp || tc.resident) && worker == 0 {
				t.Errorf("no worker spans in trace %d (%d coordinator spans)", id, coord)
			}
			// A later batch under a fresh ID must not inherit these spans.
			id2 := tracer.NewID()
			dt.SetTrace(id2)
			dt.CountBatch(boxes[:1])
			dt.SetTrace(0)
			for _, s := range tracer.Spans(id2) {
				if s.Trace != id2 {
					t.Fatalf("second batch span %q carries trace %d, want %d", s.Name, s.Trace, id2)
				}
			}
			if got := len(tracer.Spans(id)); got != len(spans) {
				t.Errorf("first trace grew from %d to %d spans after second batch", len(spans), got)
			}
		})
	}
}

// scrapeSeries fetches one series value from a Prometheus text endpoint.
func scrapeSeries(t *testing.T, url, series string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: parsing %q: %v", series, rest, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestWorkerScrapeWhileServing runs query batches on a live cluster
// while scraping every worker's debug endpoint: scrapes must always
// succeed, counters must be monotone, and /healthz must report the
// serving sessions. Run under -race this also proves scrapes never tear
// the registry.
func TestWorkerScrapeWhileServing(t *testing.T) {
	const p, n = 4, 1 << 10
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	debugURLs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		da, err := w.EnableDebug("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d debug: %v", i, err)
		}
		workers[i] = w
		addrs[i] = w.Addr()
		debugURLs[i] = "http://" + da
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })

	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 11})
	boxes := workload.Boxes(workload.QuerySpec{M: 8, Dims: 2, N: n, Selectivity: 0.05, Seed: 13})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	dt := core.Build(mach, pts)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				dt.CountBatch(boxes)
			}
		}
	}()

	last := make([]float64, p)
	for round := 0; round < 5; round++ {
		for i, base := range debugURLs {
			v, ok := scrapeSeries(t, base+"/metrics", "worker_supersteps_total")
			if !ok {
				t.Fatalf("worker %d: worker_supersteps_total missing", i)
			}
			if v < last[i] {
				t.Fatalf("worker %d: worker_supersteps_total went backwards: %v -> %v", i, last[i], v)
			}
			last[i] = v

			resp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Fatalf("worker %d healthz: %v", i, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("worker %d healthz: status %d", i, resp.StatusCode)
			}
			if !strings.Contains(string(body), `"sessions": 1`) {
				t.Fatalf("worker %d healthz: want 1 session, got %s", i, body)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for i := range last {
		if last[i] == 0 {
			t.Errorf("worker %d never counted a superstep", i)
		}
	}
}

// TestWorkerDebugListenerCloses checks Worker.Close tears the debug HTTP
// listener down with it: the endpoint stops answering and its goroutines
// exit (a goleak-style bound, since the serve goroutine is joined).
func TestWorkerDebugListenerCloses(t *testing.T) {
	before := runtime.NumGoroutine()
	w, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	da, err := w.EnableDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	if _, ok := scrapeSeries(t, "http://"+da+"/metrics", "worker_sessions"); !ok {
		t.Fatalf("worker_sessions missing from live scrape")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", da)); err == nil {
		t.Fatalf("debug endpoint still answering after Close")
	}
	// The HTTP keep-alive machinery needs a beat to wind down; insist the
	// goroutine count returns near the pre-worker baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before worker, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// EnableDebug on a closed worker must refuse rather than leak.
	if _, err := w.EnableDebug("127.0.0.1:0"); err == nil {
		t.Fatalf("EnableDebug succeeded on a closed worker")
	}
}
