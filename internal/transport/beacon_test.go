package transport_test

import (
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/obs"
	obscluster "repro/internal/obs/cluster"
	"repro/internal/transport"
	"repro/internal/workload"
)

// waitUntil polls cond until it holds or the deadline passes, returning
// how long it took.
func waitUntil(t *testing.T, what string, deadline time.Duration, cond func() bool) time.Duration {
	t.Helper()
	start := time.Now()
	for !cond() {
		if time.Since(start) > deadline {
			t.Fatalf("timed out after %v waiting for %s", deadline, what)
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start)
}

// TestHealthPlaneWorkerDeath is the acceptance test for the liveness
// loop: kill one of three live workers mid-watch and assert the rank
// flips to down within the missed-beacon budget, the transitions land in
// the JSONL archive, the aggregator exposes cluster_worker_up{rank}=0,
// rangetop renders the rank as DOWN, and a rebound listener resurrects
// the rank with a worker_recovered event.
func TestHealthPlaneWorkerDeath(t *testing.T) {
	const p = 3
	const interval = 25 * time.Millisecond
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}

	evPath := filepath.Join(t.TempDir(), "events.jsonl")
	evlog, err := obscluster.OpenEventLog(evPath, 0)
	if err != nil {
		t.Fatalf("event log: %v", err)
	}
	defer evlog.Close()
	reg := obs.NewRegistry()
	mon := obscluster.NewMonitor(obscluster.MonitorConfig{
		Addrs: addrs, Interval: interval, Events: evlog, Obs: reg,
	})
	defer mon.Close()
	watcher := transport.WatchHealth(addrs, interval, mon)
	defer watcher.Close()
	agg := &obscluster.Aggregator{Mon: mon, Events: evlog, Local: reg}

	waitUntil(t, "all workers healthy", 5*time.Second, mon.AllHealthy)
	var b strings.Builder
	if err := agg.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	for rank := 0; rank < p; rank++ {
		want := `cluster_worker_up{rank="` + string(rune('0'+rank)) + `"} 1`
		if !strings.Contains(b.String(), want) {
			t.Fatalf("live cluster missing %q:\n%s", want, b.String())
		}
	}

	// Kill rank 1 and time the healthy → down transition. The ISSUE
	// budget is 3 missed beacon intervals; allow one aging-tick quantum
	// plus scheduling slack on top.
	workers[1].Close()
	elapsed := waitUntil(t, "rank 1 down", 5*time.Second, func() bool {
		return mon.StateOf(1) == obscluster.StateDown
	})
	if budget := 3*interval + interval + 250*time.Millisecond; elapsed > budget {
		t.Errorf("rank 1 took %v to reach down, budget %v", elapsed, budget)
	}

	b.Reset()
	if err := agg.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm after death: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `cluster_worker_up{rank="1"} 0`) {
		t.Errorf("dead rank still up in exposition:\n%s", out)
	}
	for _, alive := range []string{`cluster_worker_up{rank="0"} 1`, `cluster_worker_up{rank="2"} 1`} {
		if !strings.Contains(out, alive) {
			t.Errorf("live rank lost from exposition, want %s:\n%s", alive, out)
		}
	}
	if h := agg.Health(); h.OK {
		t.Errorf("cluster health still OK with a dead rank: %+v", h)
	}

	// The transitions are archived in memory and on disk.
	kinds := map[string]bool{}
	for _, e := range evlog.Recent(32) {
		if e.Rank == 1 {
			kinds[e.Kind] = true
		}
	}
	if !kinds["worker_suspect"] || !kinds["worker_down"] {
		t.Errorf("ring missing lifecycle events, got %v", kinds)
	}
	fileEvents, err := obscluster.ReadEvents(evPath)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	foundDown := false
	for _, e := range fileEvents {
		if e.Kind == "worker_down" && e.Rank == 1 {
			foundDown = true
		}
	}
	if !foundDown {
		t.Errorf("worker_down not persisted to %s: %+v", evPath, fileEvents)
	}

	// rangetop renders the rank as DOWN from the same aggregator state.
	snap := agg.Top()
	frame := obscluster.RenderTop(nil, &snap, false)
	if !strings.Contains(frame, "DOWN") || !strings.Contains(frame, "r1") {
		t.Errorf("rangetop frame does not mark rank 1 down:\n%s", frame)
	}

	// Recovery: rebind the dead rank's address and wait for the watcher's
	// redial loop to find it.
	waitUntil(t, "rebind rank 1 addr", 5*time.Second, func() bool {
		w, err := transport.ListenAndServe(addrs[1])
		if err != nil {
			return false
		}
		t.Cleanup(func() { w.Close() })
		return true
	})
	waitUntil(t, "rank 1 recovered", 10*time.Second, func() bool {
		return mon.StateOf(1) == obscluster.StateHealthy
	})
	recovered := false
	for _, e := range evlog.Recent(32) {
		if e.Kind == "worker_recovered" && e.Rank == 1 {
			recovered = true
		}
	}
	if !recovered {
		t.Errorf("worker_recovered missing from archive: %+v", evlog.Recent(32))
	}
}

// TestTraceWireByteReconciliation checks the per-query resource
// attribution against the transport's own accounting: the wire spans a
// traced batch deposits must sum to exactly the framed bytes the
// cluster's FrameStat counters moved for the coordinator exchange kinds.
func TestTraceWireByteReconciliation(t *testing.T) {
	const p, n = 4, 1 << 10
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	cl := startCluster(t, p, cgm.Config{Obs: reg, Tracer: tracer})

	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 3})
	boxes := workload.Boxes(workload.QuerySpec{M: 16, Dims: 2, N: n, Selectivity: 0.05, Seed: 5})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	dt := core.Build(mach, pts)

	exchangeBytes := func() int64 {
		st := cl.WireStats()
		return st["deposit"].Bytes + st["column"].Bytes
	}
	before := exchangeBytes()

	id := tracer.NewID()
	mach.SetTrace(id)
	dt.CountBatch(boxes)
	mach.SetTrace(0)

	wireDelta := exchangeBytes() - before
	if wireDelta <= 0 {
		t.Fatalf("no exchange bytes moved during the traced batch")
	}

	var spanBytes, largest int64
	nWire := 0
	for _, s := range tracer.Spans(id) {
		if s.Name != "wire" {
			continue
		}
		nWire++
		spanBytes += s.Bytes
		if s.Bytes > largest {
			largest = s.Bytes
		}
		if s.Rank < 0 || s.Rank >= p {
			t.Errorf("wire span has rank %d outside [0,%d)", s.Rank, p)
		}
	}
	if nWire == 0 {
		t.Fatal("traced batch produced no wire spans")
	}
	if spanBytes != wireDelta {
		t.Errorf("wire spans account %d B, transport counters moved %d B", spanBytes, wireDelta)
	}

	// The rendered trace shows the cost column for the attributed bytes.
	tree := tracer.Tree(id)
	if want := obs.FmtBytes(largest); !strings.Contains(tree, want) {
		t.Errorf("trace tree missing cost %q:\n%s", want, tree)
	}
}

// TestTraceExecNsReconciliation checks the resident-mode attribution:
// worker exec spans for a traced batch must cover at least the
// exec_step_ns histogram time the workers recorded for it, read back
// through beacon-carried registry dumps.
func TestTraceExecNsReconciliation(t *testing.T) {
	const p, n = 4, 1 << 10
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	cl := startCluster(t, p, cgm.Config{Resident: true, Obs: reg, Tracer: tracer})

	const interval = 20 * time.Millisecond
	mon := obscluster.NewMonitor(obscluster.MonitorConfig{Addrs: cl.Addrs(), Interval: interval})
	defer mon.Close()
	watcher := transport.WatchHealth(cl.Addrs(), interval, mon)
	defer watcher.Close()
	waitUntil(t, "all workers healthy", 5*time.Second, mon.AllHealthy)

	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 3})
	boxes := workload.Boxes(workload.QuerySpec{M: 16, Dims: 2, N: n, Selectivity: 0.05, Seed: 5})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	dt := core.Build(mach, pts)

	// execSum reads the cluster-wide exec_step_ns histogram time from the
	// latest beacon dumps, first waiting for every rank to beacon at
	// least once past the given per-rank sequence marks so the dumps
	// reflect everything the workers have observed up to now.
	seqMarks := func() []uint64 {
		marks := make([]uint64, p)
		for _, wh := range mon.Snapshot() {
			marks[wh.Rank] = wh.Beacon.Seq
		}
		return marks
	}
	execSum := func(marks []uint64) int64 {
		waitUntil(t, "fresh beacons from every rank", 5*time.Second, func() bool {
			for _, wh := range mon.Snapshot() {
				if !wh.Seen || wh.Beacon.Seq <= marks[wh.Rank] {
					return false
				}
			}
			return true
		})
		var sum int64
		for _, wh := range mon.Snapshot() {
			for name, h := range wh.Beacon.Dump.Hists {
				if base, _ := obs.SplitName(name); base == "exec_step_ns" {
					sum += h.Sum
				}
			}
		}
		return sum
	}

	before := execSum(seqMarks())
	marks := seqMarks()
	id := tracer.NewID()
	mach.SetTrace(id)
	dt.CountBatch(boxes)
	mach.SetTrace(0)
	after := execSum(marks)

	histDelta := after - before
	if histDelta <= 0 {
		t.Fatalf("traced resident batch recorded no exec_step_ns time")
	}

	var spanNs int64
	for _, s := range tracer.Spans(id) {
		if strings.HasPrefix(s.Name, "emit:") || strings.HasPrefix(s.Name, "collect:") {
			spanNs += int64(s.Dur)
		}
	}
	if spanNs <= 0 {
		t.Fatal("traced batch produced no worker exec spans")
	}
	// The spans wrap the histogram observations, so span time bounds hist
	// time from above.
	if histDelta > spanNs {
		t.Errorf("exec_step_ns hist %d ns exceeds covering span time %d ns", histDelta, spanNs)
	}
}

// TestClusterScrapeRaceUnderChurn hammers the aggregator endpoints while
// machines churn and a worker dies. Run under -race this proves the
// aggregation path never tears monitor or registry state.
func TestClusterScrapeRaceUnderChurn(t *testing.T) {
	const p, n = 3, 1 << 9
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}
	reg := obs.NewRegistry()
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: true, Obs: reg})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })

	evlog, _ := obscluster.OpenEventLog("", 0)
	const interval = 15 * time.Millisecond
	mon := obscluster.NewMonitor(obscluster.MonitorConfig{Addrs: addrs, Interval: interval, Events: evlog, Obs: reg})
	defer mon.Close()
	watcher := transport.WatchHealth(addrs, interval, mon)
	defer watcher.Close()
	agg := &obscluster.Aggregator{Mon: mon, Events: evlog, Local: reg}

	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 17})
	boxes := workload.Boxes(workload.QuerySpec{M: 4, Dims: 2, N: n, Selectivity: 0.05, Seed: 19})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: build and query whole sessions until the cluster dies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mach, err := cl.NewMachine()
			if err != nil {
				return // cluster poisoned after the kill — churn is done
			}
			func() {
				defer func() { recover() }() // aborts mid-batch are expected
				dt := core.Build(mach, pts)
				dt.CountBatch(boxes)
			}()
		}
	}()

	// Scrapers: every aggregator surface, concurrently.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev *obscluster.TopSnap
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := agg.WriteProm(io.Discard); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
				agg.Health()
				snap := agg.Top()
				obscluster.RenderTop(prev, &snap, false)
				prev = &snap
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	workers[p-1].Close() // kill a rank mid-churn, mid-scrape
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
