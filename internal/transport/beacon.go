package transport

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	obscluster "repro/internal/obs/cluster"
)

// This file is the health plane's wire layer: workers serve beacon
// streams (runBeacon, dispatched from the listener handshake on
// kindBeaconOpen), and the coordinator runs one HealthWatcher that keeps
// a beacon subscription per worker alive — redialing with backoff — and
// feeds every sample or stream break into the liveness Monitor
// (internal/obs/cluster). The beacon stream is deliberately independent
// of sessions: a worker with zero sessions still answers it, and losing
// it never aborts anything.

// minBeaconInterval floors the subscriber-requested period: beacons
// carry a full registry dump plus a runtime.ReadMemStats, so a
// pathological subscriber must not turn the health plane into load.
const minBeaconInterval = 10 * time.Millisecond

// runBeacon pushes one beacon immediately (subscription liveness proof)
// and then one per interval until the conn breaks or the worker closes.
func (w *Worker) runBeacon(fc *fconn, open *frame) {
	defer fc.close()
	interval := time.Duration(open.IntervalNs)
	if interval <= 0 {
		interval = obscluster.DefaultInterval
	}
	if interval < minBeaconInterval {
		interval = minBeaconInterval
	}
	var seq uint64
	send := func() error {
		seq++
		b := w.beacon(seq)
		return fc.write(&frame{Kind: kindBeacon, Beacon: &b})
	}
	if send() != nil {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if send() != nil {
				return
			}
		case <-w.quit:
			return
		}
	}
}

// beacon samples the worker's health: cheap scalars for the liveness
// row, the full registry dump for the aggregator.
func (w *Worker) beacon(seq uint64) obscluster.Beacon {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	stamp := ""
	if p := w.lastStamp.Load(); p != nil {
		stamp = *p
	}
	return obscluster.Beacon{
		Seq:        seq,
		Addr:       w.Addr(),
		Sessions:   w.Sessions(),
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
		UptimeNs:   w.now(),
		LastStamp:  stamp,
		Dump:       w.reg.Dump(),
	}
}

// HealthWatcher is the coordinator side: one goroutine per worker holds
// a beacon subscription open, feeding the monitor. A broken stream
// reports Lost (healthy → suspect immediately) and redials after one
// beacon interval — recovery is automatic, the monitor emits
// worker_recovered when beacons resume.
type HealthWatcher struct {
	mon      *obscluster.Monitor
	interval time.Duration

	mu     sync.Mutex
	conns  map[int]*fconn
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// WatchHealth subscribes to every worker's beacon stream. addrs indexes
// workers by rank and must match the monitor's; interval is the beacon
// period requested from each worker (also the redial backoff).
func WatchHealth(addrs []string, interval time.Duration, mon *obscluster.Monitor) *HealthWatcher {
	if interval <= 0 {
		interval = obscluster.DefaultInterval
	}
	hw := &HealthWatcher{
		mon:      mon,
		interval: interval,
		conns:    make(map[int]*fconn),
		stop:     make(chan struct{}),
	}
	for rank, addr := range addrs {
		hw.wg.Add(1)
		go hw.watch(rank, addr)
	}
	return hw
}

func (hw *HealthWatcher) watch(rank int, addr string) {
	defer hw.wg.Done()
	for {
		if hw.isClosed() {
			return
		}
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			hw.mon.Lost(rank, err)
			if !hw.sleep() {
				return
			}
			continue
		}
		fc := newFConn(conn)
		if !hw.track(rank, fc) {
			fc.close()
			return
		}
		err = fc.write(&frame{Kind: kindBeaconOpen, IntervalNs: int64(hw.interval)})
		for err == nil {
			var f *frame
			f, err = fc.read()
			if err != nil {
				break
			}
			if f.Kind != kindBeacon || f.Beacon == nil {
				err = fmt.Errorf("transport: unexpected frame kind %d on beacon stream", f.Kind)
				break
			}
			hw.mon.Feed(rank, *f.Beacon)
		}
		fc.close()
		hw.untrack(rank)
		if hw.isClosed() {
			return
		}
		hw.mon.Lost(rank, err)
		if !hw.sleep() {
			return
		}
	}
}

// sleep waits one interval before a redial; false means shut down.
func (hw *HealthWatcher) sleep() bool {
	select {
	case <-hw.stop:
		return false
	case <-time.After(hw.interval):
		return true
	}
}

func (hw *HealthWatcher) isClosed() bool {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	return hw.closed
}

func (hw *HealthWatcher) track(rank int, fc *fconn) bool {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	if hw.closed {
		return false
	}
	hw.conns[rank] = fc
	return true
}

func (hw *HealthWatcher) untrack(rank int) {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	delete(hw.conns, rank)
}

// Close severs every beacon subscription and waits for the watch
// goroutines to exit. Nil-safe and idempotent.
func (hw *HealthWatcher) Close() {
	if hw == nil {
		return
	}
	hw.mu.Lock()
	if hw.closed {
		hw.mu.Unlock()
		hw.wg.Wait()
		return
	}
	hw.closed = true
	close(hw.stop)
	for _, fc := range hw.conns {
		fc.close()
	}
	hw.mu.Unlock()
	hw.wg.Wait()
}
