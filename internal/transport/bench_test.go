package transport_test

import (
	"testing"

	"repro/internal/aggregates"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

// BenchmarkClusterMixed serves mixed count/aggregate/report batches on a
// 4-worker localhost cluster in both execution modes. The interesting
// metric is coord-B/query — bytes crossing the coordinator's worker
// connections per query: in fabric mode every phase-B element copy and
// phase-C block transits the coordinator; in resident mode the forest
// lives in the workers and those payloads move only on the worker mesh,
// so the coordinator carries control frames, query boxes and result
// blocks. The acceptance bar is a clear drop of coordinator bytes/query
// in resident mode (recorded in BENCH_cluster.json by rangebench
// -cluster).
func BenchmarkClusterMixed(b *testing.B) {
	for _, mode := range []struct {
		name     string
		resident bool
	}{{"fabric", false}, {"resident", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const p, n, m = 4, 1 << 13, 64
			workers := make([]*transport.Worker, p)
			addrs := make([]string, p)
			for i := range workers {
				w, err := transport.ListenAndServe("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				workers[i] = w
				addrs[i] = w.Addr()
			}
			cl, err := transport.DialCluster(addrs, cgm.Config{Resident: mode.resident})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()

			pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
			tree, err := core.BuildOn(cl, pts, core.BackendLayered)
			if err != nil {
				b.Fatal(err)
			}
			h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
			boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 11})
			ops := make([]core.MixedOp, m)
			for i := range ops {
				ops[i] = core.MixedOp(i % 3)
			}
			// Warm the copy caches so the steady state is measured.
			core.MixedBatch(tree, h, ops, boxes)

			outBefore, inBefore := cl.CoordBytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MixedBatch(tree, h, ops, boxes)
			}
			b.StopTimer()
			out, in := cl.CoordBytes()
			queries := float64(b.N * m)
			b.ReportMetric(float64(out-outBefore+in-inBefore)/queries, "coord-B/query")
			b.ReportMetric(queries/b.Elapsed().Seconds(), "q/s")
		})
	}
}

// clusterTraffic is the measurement behind the acceptance checks below
// and the rangebench -cluster JSON record: coordinator bytes per query
// for the steady state, plus the per-frame-kind deltas on the
// coordinator's connections and on the worker mesh.
type clusterTraffic struct {
	bytesPerQuery float64
	coord         map[string]transport.FrameStat // coordinator conns, steady state
	mesh          map[string]transport.FrameStat // all workers' conns, steady state
}

// statsDelta subtracts two WireStats snapshots kind by kind.
func statsDelta(before, after map[string]transport.FrameStat) map[string]transport.FrameStat {
	out := make(map[string]transport.FrameStat)
	for k, a := range after {
		d := transport.FrameStat{Frames: a.Frames - before[k].Frames, Bytes: a.Bytes - before[k].Bytes}
		if d.Frames != 0 || d.Bytes != 0 {
			out[k] = d
		}
	}
	return out
}

// statsSum folds several WireStats maps into one.
func statsSum(ms ...map[string]transport.FrameStat) map[string]transport.FrameStat {
	out := make(map[string]transport.FrameStat)
	for _, m := range ms {
		for k, s := range m {
			out[k] = transport.FrameStat{Frames: out[k].Frames + s.Frames, Bytes: out[k].Bytes + s.Bytes}
		}
	}
	return out
}

func measureClusterTraffic(tb testing.TB, resident bool, batches int) clusterTraffic {
	const p, n, m = 4, 1 << 12, 64
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: resident})
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	tree, err := core.BuildOn(cl, pts, core.BackendLayered)
	if err != nil {
		tb.Fatal(err)
	}
	h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 11})
	ops := make([]core.MixedOp, m)
	for i := range ops {
		ops[i] = core.MixedOp(i % 3)
	}
	core.MixedBatch(tree, h, ops, boxes) // warm caches
	outBefore, inBefore := cl.CoordBytes()
	coordBefore := cl.WireStats()
	meshBefores := make([]map[string]transport.FrameStat, p)
	for i, w := range workers {
		meshBefores[i] = w.WireStats()
	}
	for i := 0; i < batches; i++ {
		core.MixedBatch(tree, h, ops, boxes)
	}
	out, in := cl.CoordBytes()
	meshAfters := make([]map[string]transport.FrameStat, p)
	for i, w := range workers {
		meshAfters[i] = w.WireStats()
	}
	meshDeltas := make([]map[string]transport.FrameStat, p)
	for i := range meshDeltas {
		meshDeltas[i] = statsDelta(meshBefores[i], meshAfters[i])
	}
	return clusterTraffic{
		bytesPerQuery: float64(out-outBefore+in-inBefore) / float64(batches*m),
		coord:         statsDelta(coordBefore, cl.WireStats()),
		mesh:          statsSum(meshDeltas...),
	}
}

// TestResidentModeMovesBlocksOffCoordinator is the acceptance criterion
// as a test: resident mode must move at least the per-query phase-B/C
// block traffic off the coordinator — concretely, coordinator bytes per
// query must drop to well under half of fabric mode's. The per-kind wire
// stats pin down the mechanism, not just the total: resident mode's
// steady state serves queries inside the fused route-and-serve superstep
// (no step-frame dispatch round-trips at all), its deposits shrink to
// control + subquery payloads, and the block payload runs on the worker
// mesh in both modes.
func TestResidentModeMovesBlocksOffCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster traffic measurement")
	}
	fabric := measureClusterTraffic(t, false, 3)
	resident := measureClusterTraffic(t, true, 3)
	t.Logf("coordinator bytes/query: fabric %.0f, resident %.0f (%.1fx drop)",
		fabric.bytesPerQuery, resident.bytesPerQuery, fabric.bytesPerQuery/resident.bytesPerQuery)
	t.Logf("fabric coord frames: %+v", fabric.coord)
	t.Logf("resident coord frames: %+v", resident.coord)
	if resident.bytesPerQuery >= fabric.bytesPerQuery/2 {
		t.Fatalf("resident mode does not unload the coordinator: fabric %.0f B/query, resident %.0f B/query",
			fabric.bytesPerQuery, resident.bytesPerQuery)
	}
	// Mechanism: fabric steady state is pure deposit/column, never steps —
	// and so is resident steady state, now that phase C rides the route
	// superstep's collect instead of per-batch step dispatches.
	if fabric.coord["step"].Frames != 0 {
		t.Fatalf("fabric mode sent %d step frames", fabric.coord["step"].Frames)
	}
	if resident.coord["step"].Frames != 0 {
		t.Fatalf("resident steady state still dispatches steps: %d frames (serving should be fused into the route superstep)",
			resident.coord["step"].Frames)
	}
	// The coordinator's deposit payload must collapse in resident mode:
	// deposits still cross (one per superstep) but carry step references
	// and subqueries instead of element blocks.
	fdep, rdep := fabric.coord["deposit"], resident.coord["deposit"]
	if fdep.Bytes == 0 || rdep.Bytes >= fdep.Bytes/2 {
		t.Fatalf("resident deposits did not shrink: fabric %d B, resident %d B", fdep.Bytes, rdep.Bytes)
	}
	// The payload still moves — on the worker mesh, as block frames, in
	// both modes (fabric routes coordinator deposits peer-to-peer too).
	if fabric.mesh["block"].Frames == 0 || resident.mesh["block"].Frames == 0 {
		t.Fatalf("mesh block traffic missing: fabric %+v, resident %+v",
			fabric.mesh["block"], resident.mesh["block"])
	}
}
