package transport_test

import (
	"testing"

	"repro/internal/aggregates"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

// BenchmarkClusterMixed serves mixed count/aggregate/report batches on a
// 4-worker localhost cluster in both execution modes. The interesting
// metric is coord-B/query — bytes crossing the coordinator's worker
// connections per query: in fabric mode every phase-B element copy and
// phase-C block transits the coordinator; in resident mode the forest
// lives in the workers and those payloads move only on the worker mesh,
// so the coordinator carries control frames, query boxes and result
// blocks. The acceptance bar is a clear drop of coordinator bytes/query
// in resident mode (recorded in BENCH_cluster.json by rangebench
// -cluster).
func BenchmarkClusterMixed(b *testing.B) {
	for _, mode := range []struct {
		name     string
		resident bool
	}{{"fabric", false}, {"resident", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const p, n, m = 4, 1 << 13, 64
			workers := make([]*transport.Worker, p)
			addrs := make([]string, p)
			for i := range workers {
				w, err := transport.ListenAndServe("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				workers[i] = w
				addrs[i] = w.Addr()
			}
			cl, err := transport.DialCluster(addrs, cgm.Config{Resident: mode.resident})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()

			pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
			tree, err := core.BuildOn(cl, pts, core.BackendLayered)
			if err != nil {
				b.Fatal(err)
			}
			h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
			boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 11})
			ops := make([]core.MixedOp, m)
			for i := range ops {
				ops[i] = core.MixedOp(i % 3)
			}
			// Warm the copy caches so the steady state is measured.
			core.MixedBatch(tree, h, ops, boxes)

			outBefore, inBefore := cl.CoordBytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MixedBatch(tree, h, ops, boxes)
			}
			b.StopTimer()
			out, in := cl.CoordBytes()
			queries := float64(b.N * m)
			b.ReportMetric(float64(out-outBefore+in-inBefore)/queries, "coord-B/query")
			b.ReportMetric(queries/b.Elapsed().Seconds(), "q/s")
		})
	}
}

// clusterBytesPerQuery is the measurement behind the acceptance check
// below and the rangebench -cluster JSON record.
func clusterBytesPerQuery(tb testing.TB, resident bool, batches int) float64 {
	const p, n, m = 4, 1 << 12, 64
	workers := make([]*transport.Worker, p)
	addrs := make([]string, p)
	for i := range workers {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{Resident: resident})
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 7})
	tree, err := core.BuildOn(cl, pts, core.BackendLayered)
	if err != nil {
		tb.Fatal(err)
	}
	h := core.PrepareAssociativeNamed[float64](tree, aggregates.WeightSum)
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: n, Selectivity: 0.02, Seed: 11})
	ops := make([]core.MixedOp, m)
	for i := range ops {
		ops[i] = core.MixedOp(i % 3)
	}
	core.MixedBatch(tree, h, ops, boxes) // warm caches
	outBefore, inBefore := cl.CoordBytes()
	for i := 0; i < batches; i++ {
		core.MixedBatch(tree, h, ops, boxes)
	}
	out, in := cl.CoordBytes()
	return float64(out-outBefore+in-inBefore) / float64(batches*m)
}

// TestResidentModeMovesBlocksOffCoordinator is the acceptance criterion
// as a test: resident mode must move at least the per-query phase-B/C
// block traffic off the coordinator — concretely, coordinator bytes per
// query must drop to well under half of fabric mode's.
func TestResidentModeMovesBlocksOffCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster traffic measurement")
	}
	fabric := clusterBytesPerQuery(t, false, 3)
	resident := clusterBytesPerQuery(t, true, 3)
	t.Logf("coordinator bytes/query: fabric %.0f, resident %.0f (%.1fx drop)",
		fabric, resident, fabric/resident)
	if resident >= fabric/2 {
		t.Fatalf("resident mode does not unload the coordinator: fabric %.0f B/query, resident %.0f B/query",
			fabric, resident)
	}
}
