package transport

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/cgm"
	"repro/internal/exec"
	"repro/internal/obs"
)

// Cluster is a cgm.Provider backed by remote workers: every machine it
// creates opens one session on each worker and runs its supersteps over
// TCP. The same SPMD programs (construct, the three §4.2 search modes,
// store compaction) run unchanged; only the h-relations change medium.
// With cfg.Resident the machines execute registered programs against
// worker-resident state: the forest parts live in the workers, and the
// coordinator's connections carry only control frames, query boxes and
// result blocks (CoordBytes observes the difference).
type Cluster struct {
	addrs []string
	cfg   cgm.Config

	nonce string
	mu    sync.Mutex
	next  uint64
	open  map[string]*tcpTransport
	done  bool

	bytesOut, bytesIn atomic.Int64
	kc                kindCounters
}

// DialCluster connects to the given workers (one address per rank; the
// machine width is len(addrs)) and returns a provider of TCP-backed
// machines. cfg supplies Mode/G/L/Resident for created machines; cfg.P
// may be 0 or len(addrs), and cfg.Transport must be nil. Every worker is
// probed so a wrong address fails here, not mid-build.
func DialCluster(addrs []string, cfg cgm.Config) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: cluster needs at least one worker address")
	}
	if cfg.P != 0 && cfg.P != len(addrs) {
		return nil, fmt.Errorf("transport: config wants %d processors but %d workers were given", cfg.P, len(addrs))
	}
	if cfg.Transport != nil {
		return nil, errors.New("transport: DialCluster builds its own transports")
	}
	seen := make(map[string]int, len(addrs))
	for rank, addr := range addrs {
		if prev, dup := seen[addr]; dup {
			return nil, fmt.Errorf("transport: worker address %s given for both rank %d and rank %d (one worker cannot play two ranks)", addr, prev, rank)
		}
		seen[addr] = rank
	}
	for rank, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d (%s) unreachable: %w", rank, addr, err)
		}
		conn.Close()
	}
	var nb [6]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return nil, fmt.Errorf("transport: session nonce: %w", err)
	}
	c := &Cluster{
		addrs: append([]string(nil), addrs...),
		cfg:   cfg,
		nonce: hex.EncodeToString(nb[:]),
		open:  make(map[string]*tcpTransport),
	}
	if cfg.Obs != nil {
		// Coordinator-side wire traffic as live series: per-frame-kind
		// counts/bytes plus the raw coordinator byte totals (the resident-
		// mode headline number) and the open-session gauge.
		cfg.Obs.Collect(func(emit obs.Emit) {
			for k, st := range c.kc.snapshot() {
				emit(fmt.Sprintf("coord_frames_total{kind=%q}", k), float64(st.Frames))
				emit(fmt.Sprintf("coord_frame_bytes_total{kind=%q}", k), float64(st.Bytes))
			}
			out, in := c.CoordBytes()
			emit("coord_bytes_out_total", float64(out))
			emit("coord_bytes_in_total", float64(in))
			emit("coord_sessions_open", float64(c.Open()))
		})
	}
	return c, nil
}

// Open reports the number of live sessions (open machines).
func (c *Cluster) Open() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.open)
}

// P reports the cluster width (one rank per worker).
func (c *Cluster) P() int { return len(c.addrs) }

// Addrs reports the worker addresses by rank.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Resident reports whether machines from this cluster execute registered
// programs against worker-resident state.
func (c *Cluster) Resident() bool { return c.cfg.Resident }

// CoordBytes reports the cumulative bytes written to and read from the
// workers over the coordinator's connections (all sessions since dial).
// Worker-to-worker mesh traffic is not included — that is the point: in
// resident mode the phase-B/C payloads move only on the mesh, and this
// counter shows what the coordinator no longer carries.
func (c *Cluster) CoordBytes() (out, in int64) {
	return c.bytesOut.Load(), c.bytesIn.Load()
}

// WireStats reports the coordinator connections' cumulative traffic by
// frame kind (all sessions since dial, both directions). It separates
// what CoordBytes lumps together: deposits and columns are payload the
// coordinator carries, steps are resident-mode control — so the
// fabric→resident shift is visible as deposit/column bytes collapsing
// while step frames appear.
func (c *Cluster) WireStats() map[string]FrameStat {
	return c.kc.snapshot()
}

// NewMachine opens a fresh session on every worker and returns a machine
// whose supersteps run over it. The machine owns the session: closing
// the machine (or the whole cluster) tears it down.
func (c *Cluster) NewMachine() (*cgm.Machine, error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil, errors.New("transport: cluster closed")
	}
	id := fmt.Sprintf("%s-%d", c.nonce, c.next)
	c.next++
	c.mu.Unlock()

	tr := &tcpTransport{cl: c, session: id, p: len(c.addrs), conns: make([]*fconn, len(c.addrs))}
	for rank, addr := range c.addrs {
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		var fc *fconn
		if err == nil {
			fc = newFConn(conn).count(&c.bytesOut, &c.bytesIn).kinds(&c.kc)
			err = fc.write(&frame{Kind: kindOpen, Session: id, Rank: rank, Peers: c.addrs})
		}
		if err == nil {
			var ack *frame
			ack, err = fc.read()
			if err == nil && ack.Kind != kindOpenAck {
				if ack.Kind == kindError {
					err = errors.New(ack.Err)
				} else {
					err = fmt.Errorf("expected open ack, got frame kind %d", ack.Kind)
				}
			}
		}
		if err != nil {
			if conn != nil {
				conn.Close()
			}
			tr.closeConns()
			return nil, fmt.Errorf("transport: opening session on worker %d (%s): %w", rank, addr, err)
		}
		tr.conns[rank] = fc
	}
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		tr.closeConns()
		return nil, errors.New("transport: cluster closed")
	}
	c.open[id] = tr
	c.mu.Unlock()

	cfg := c.cfg
	cfg.P = len(c.addrs)
	cfg.Transport = tr
	return cgm.New(cfg), nil
}

// Close tears down every open session. Machines created by the cluster
// become unusable (their next Run fails fast).
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil
	}
	c.done = true
	live := make([]*tcpTransport, 0, len(c.open))
	for _, tr := range c.open {
		live = append(live, tr)
	}
	c.open = make(map[string]*tcpTransport)
	c.mu.Unlock()
	for _, tr := range live {
		tr.Close()
	}
	return nil
}

// tcpTransport is the coordinator side of one session: the cgm.Transport
// whose Exchange ships a rank's deposit to its worker and blocks until
// the worker returns the assembled column (or a diagnostic). It also
// implements cgm.ResidentTransport: step calls and resident supersteps
// travel the same per-rank connections (written under the fconn lock,
// read only by the rank goroutine — or, between runs, by at most one
// caller at a time, per the Machine contract).
type tcpTransport struct {
	cl      *Cluster
	session string
	p       int
	conns   []*fconn

	mu    sync.Mutex
	fault error // first abort/close cause; Reset fails fast on it
}

func (t *tcpTransport) P() int     { return t.p }
func (t *tcpTransport) Wire() bool { return true }

// Reset refuses to start a run on a session that aborted or closed: the
// workers' superstep state is unknown after either.
func (t *tcpTransport) Reset() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fault
}

func (t *tcpTransport) Exchange(rank int, dep cgm.Deposit) (cgm.Column, error) {
	wc := t.conns[rank]
	wireStart := t.cl.cfg.Tracer.Now()
	// dep.Blocks[rank] is nil by the Deposit contract — the machine
	// retains the self-addressed block, so ~2/p of a balanced
	// all-to-all's bytes never touch the wire.
	nOut, err := wc.writeN(&frame{Kind: kindDeposit, Session: t.session, Rank: rank,
		Seq: dep.Seq, Stamp: dep.Stamp, Type: dep.Type, Trace: dep.Trace, blocks: dep.Blocks})
	if err != nil {
		return cgm.Column{}, t.connErr(rank, err)
	}
	resp, nIn, err := wc.readN()
	if err != nil {
		return cgm.Column{}, t.connErr(rank, err)
	}
	switch resp.Kind {
	case kindColumn:
		if resp.Seq != dep.Seq {
			return cgm.Column{}, fmt.Errorf("transport: worker %d answered superstep %d, expected %d", rank, resp.Seq, dep.Seq)
		}
		if len(resp.blocks) != t.p {
			return cgm.Column{}, fmt.Errorf("transport: worker %d returned %d column blocks for %d ranks", rank, len(resp.blocks), t.p)
		}
		t.cl.cfg.Tracer.AddAll(resp.Spans)
		t.wireSpan(rank, dep.Trace, dep.Seq, wireStart, nOut+nIn)
		return cgm.Column{Blocks: resp.blocks}, nil
	case kindError:
		return cgm.Column{}, errors.New(resp.Err)
	default:
		return cgm.Column{}, fmt.Errorf("transport: worker %d sent unexpected frame kind %d", rank, resp.Kind)
	}
}

// ExchangeResident runs one superstep whose payload originates and/or
// terminates in the worker's session state.
func (t *tcpTransport) ExchangeResident(rank int, dep cgm.ResidentDeposit) (cgm.ResidentReply, error) {
	wc := t.conns[rank]
	wireStart := t.cl.cfg.Tracer.Now()
	fr := &frame{Kind: kindDeposit, Session: t.session, Rank: rank,
		Seq: dep.Seq, Stamp: dep.Stamp, Type: dep.Type, Trace: dep.Trace, blocks: dep.Blocks,
		Collect: wireRef(*dep.Collect, dep.CollectArgs)}
	if dep.Emit != nil {
		fr.Call = wireRef(*dep.Emit, dep.EmitArgs)
	}
	nOut, err := wc.writeN(fr)
	if err != nil {
		return cgm.ResidentReply{}, t.connErr(rank, err)
	}
	resp, nIn, err := wc.readN()
	if err != nil {
		return cgm.ResidentReply{}, t.connErr(rank, err)
	}
	switch resp.Kind {
	case kindColumn:
		if resp.Seq != dep.Seq {
			return cgm.ResidentReply{}, fmt.Errorf("transport: worker %d answered superstep %d, expected %d", rank, resp.Seq, dep.Seq)
		}
		rep := cgm.ResidentReply{Reply: resp.Reply, Note: resp.Note, Sent: dep.Sent, Recv: resp.Recv}
		if dep.Emit != nil {
			rep.Sent = resp.Sent // counted by the emit step
		}
		t.cl.cfg.Tracer.AddAll(resp.Spans)
		t.wireSpan(rank, dep.Trace, dep.Seq, wireStart, nOut+nIn)
		return rep, nil
	case kindError:
		return cgm.ResidentReply{}, errors.New(resp.Err)
	default:
		return cgm.ResidentReply{}, fmt.Errorf("transport: worker %d sent unexpected frame kind %d", rank, resp.Kind)
	}
}

// CallStep runs a registered pure step against rank's session state.
func (t *tcpTransport) CallStep(rank int, ref exec.Ref, args []byte) ([]byte, error) {
	wc := t.conns[rank]
	if err := wc.write(&frame{Kind: kindStep, Session: t.session, Rank: rank, Call: wireRef(ref, args)}); err != nil {
		return nil, t.connErr(rank, err)
	}
	resp, err := wc.read()
	if err != nil {
		return nil, t.connErr(rank, err)
	}
	switch resp.Kind {
	case kindStepReply:
		return resp.Reply, nil
	case kindError:
		return nil, errors.New(resp.Err)
	default:
		return nil, fmt.Errorf("transport: worker %d sent unexpected frame kind %d", rank, resp.Kind)
	}
}

// wireSpan attributes one traced exchange's coordinator traffic (frame
// bytes both directions, full framed size — the same accounting as the
// coord byte counters) to the query's span trace, so `trace [id]` shows
// a per-rank, per-superstep cost column that reconciles with
// coord_frames_total.
func (t *tcpTransport) wireSpan(rank int, trace uint64, seq int, start int64, bytes int) {
	if trace == 0 {
		return
	}
	t.cl.cfg.Tracer.Add(obs.Span{Trace: trace, Stamp: int64(seq), Name: "wire",
		Rank: rank, Start: start, Dur: t.cl.cfg.Tracer.Now() - start, Bytes: int64(bytes)})
}

// connErr wraps a connection failure; once the session is already
// poisoned it collapses to ErrAborted so a secondary failure (our own
// teardown closing the conns) cannot masquerade as a fresh cause.
func (t *tcpTransport) connErr(rank int, err error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fault != nil {
		return cgm.ErrAborted
	}
	return fmt.Errorf("transport: worker %d (%s) failed mid-superstep: %w", rank, t.cl.addrs[rank], err)
}

// Abort poisons the session and closes every worker connection, which
// unblocks any rank goroutine waiting on a column and tears the worker
// sessions down (they see EOF).
func (t *tcpTransport) Abort(msg string) {
	t.teardown(fmt.Errorf("transport: session aborted: %s", msg), false)
}

// Close politely ends the session: workers get a kindAbort frame before
// the connections close.
func (t *tcpTransport) Close() error {
	t.teardown(errors.New("transport: session closed"), true)
	return nil
}

func (t *tcpTransport) teardown(cause error, polite bool) {
	t.mu.Lock()
	if t.fault != nil {
		t.mu.Unlock()
		return
	}
	t.fault = cause
	t.mu.Unlock()
	if polite {
		for _, wc := range t.conns {
			wc.write(&frame{Kind: kindAbort, Session: t.session, Err: cause.Error()})
		}
	}
	t.closeConns()
	t.cl.mu.Lock()
	delete(t.cl.open, t.session)
	t.cl.mu.Unlock()
}

func (t *tcpTransport) closeConns() {
	for _, wc := range t.conns {
		if wc != nil {
			wc.close()
		}
	}
}
