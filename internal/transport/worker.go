package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Worker is one node of the multicomputer: a TCP listener that plays one
// rank per session. For every session it receives deposits from its
// coordinator, routes each block to the peer worker owning the
// destination rank, collects the blocks addressed to its own rank from
// all peers, validates the SPMD stamps across them, and returns the
// assembled column. Under resident execution the session additionally
// owns a state store of registered SPMD programs: the rank's forest part
// lives here, step frames run against it, and resident supersteps
// originate/terminate their payloads in it. A worker serves any number
// of sessions concurrently (the store keeps one machine — one session —
// per level tree, plus transient ones for compaction builds).
type Worker struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[net.Conn]struct{} // every accepted conn still being served
	closed   bool
	admin    *obs.Admin

	kc    kindCounters
	reg   *obs.Registry
	epoch time.Time

	// lastStamp is the most recent superstep stamp any session served —
	// beacon payload, so the health plane can see where a worker is in
	// the superstep sequence without scraping it.
	lastStamp atomic.Pointer[string]

	// ingestShare is the operator cap on any single ingest feed's share
	// of wall-time (math.Float64bits; 0 = client-requested share only).
	ingestShare atomic.Uint64

	// quit closes when the worker shuts down, unblocking beacon tickers
	// promptly (their conns close too, but a sleeping ticker would
	// otherwise hold Close's wg.Wait for up to one beacon interval).
	quit chan struct{}

	wg sync.WaitGroup
}

// ListenAndServe starts a worker on addr (e.g. "127.0.0.1:0" for an
// ephemeral test port) and serves in the background until Close.
func ListenAndServe(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: worker listen %s: %w", addr, err)
	}
	w := &Worker{ln: ln, sessions: make(map[string]*session), conns: make(map[net.Conn]struct{}),
		reg: obs.NewRegistry(), epoch: time.Now(), quit: make(chan struct{})}
	w.reg.Func("worker_sessions", func() float64 { return float64(w.Sessions()) })
	w.reg.Collect(func(emit obs.Emit) {
		for k, st := range w.kc.snapshot() {
			emit(fmt.Sprintf("worker_frames_total{kind=%q}", k), float64(st.Frames))
			emit(fmt.Sprintf("worker_frame_bytes_total{kind=%q}", k), float64(st.Bytes))
		}
	})
	// Codec counters on the worker's own /metrics: the zero-gob claim of
	// the raw wire path is assertable per process, not just coordinator-
	// side (the CI cluster smoke greps these rows).
	w.reg.Collect(wire.EmitStats)
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Obs returns the worker's metrics registry: per-frame-kind traffic,
// session count, and superstep counters/latency, live.
func (w *Worker) Obs() *obs.Registry { return w.reg }

// now is the worker's span clock: nanoseconds since the worker started.
func (w *Worker) now() int64 { return int64(time.Since(w.epoch)) }

// EnableDebug mounts the worker's admin HTTP server (metrics, healthz,
// expvar, pprof) on addr and returns the bound address. The listener is
// owned by the worker: Worker.Close shuts it down synchronously.
func (w *Worker) EnableDebug(addr string) (string, error) {
	a, err := obs.ServeAdmin(addr, w.reg, w.health)
	if err != nil {
		return "", err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		a.Close()
		return "", errors.New("transport: worker closed")
	}
	w.admin = a
	w.mu.Unlock()
	return a.Addr(), nil
}

// health is the /healthz snapshot: the worker's listen address, live
// session count, and the rank each session plays (sorted for stable
// output), so an operator can see at a glance which machines touch this
// node and as which rank.
func (w *Worker) health() any {
	w.mu.Lock()
	type sessInfo struct {
		ID   string `json:"id"`
		Rank int    `json:"rank"`
		P    int    `json:"p"`
	}
	infos := make([]sessInfo, 0, len(w.sessions))
	for id, s := range w.sessions {
		infos = append(infos, sessInfo{ID: id, Rank: s.rank, P: s.p})
	}
	closed := w.closed
	w.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return obs.Health{
		OK: !closed,
		Detail: map[string]any{
			"addr":     w.Addr(),
			"closed":   closed,
			"sessions": len(infos),
			"ranks":    infos,
		},
	}
}

// Addr reports the worker's bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close stops the listener and tears down every live session (open
// connections are closed, which the coordinator surfaces as a machine
// abort; resident state dies with its session). It is idempotent and
// waits for all worker goroutines to exit.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.wg.Wait()
		return nil
	}
	w.closed = true
	close(w.quit)
	admin := w.admin
	w.admin = nil
	live := make([]*session, 0, len(w.sessions))
	for _, s := range w.sessions {
		live = append(live, s)
	}
	// Accepted conns include incoming peer-block conns of idle sessions:
	// their feedPeer goroutines sit in blocking reads that only a local
	// close can end (the remote side has no reason to hang up), so Close
	// must sever every conn it ever accepted, not just session state.
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	admin.Close() // synchronous: the debug listener's goroutine is gone after this
	err := w.ln.Close()
	for _, s := range live {
		s.shutdown()
	}
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// WireStats reports this worker's cumulative traffic by frame kind, both
// directions, across every connection it served or dialed (coordinator
// sessions and the worker-to-worker mesh alike). The mesh's kindBlock row
// is the direct observation of resident mode's point: payload moving
// worker-to-worker instead of through the coordinator.
func (w *Worker) WireStats() map[string]FrameStat {
	return w.kc.snapshot()
}

// Sessions reports the number of live sessions (health/diagnostics).
func (w *Worker) Sessions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sessions)
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.handshake(conn)
	}
}

// handshake reads the first frame of a fresh connection and dispatches:
// a coordinator opening a session, or a peer worker binding a block
// stream. Anything else (including a bare probe that closes immediately)
// just drops the connection.
func (w *Worker) handshake(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	fc := newFConn(conn).kinds(&w.kc)
	f, err := fc.read()
	if err != nil {
		conn.Close()
		return
	}
	switch f.Kind {
	case kindOpen:
		w.runSession(fc, f)
	case kindHello:
		w.feedPeer(fc, f)
	case kindFeedOpen:
		w.runFeed(fc, f)
	case kindBeaconOpen:
		w.runBeacon(fc, f)
	default:
		conn.Close()
	}
}

// inMsg is one routed block (or a peer failure) delivered to a session.
type inMsg struct {
	from       int
	seq        int
	stamp, typ string
	block      []byte
	err        error
}

// session is one machine's presence on this worker: the rank it plays,
// the coordinator connection, the per-peer block conns, and the resident
// state store of registered programs.
type session struct {
	w     *Worker
	id    string
	rank  int
	p     int
	peers []string
	coord *fconn
	inbox chan inMsg
	store *exec.Store

	mu    sync.Mutex // guards outs and feeds against shutdown
	outs  []*fconn   // lazily dialed conns to peers (nil = not yet, self never)
	feeds []*fconn   // live ingest feed conns bound to this session

	quit  chan struct{}
	quit1 sync.Once
}

// runSession registers the session and serves its coordinator connection
// until it closes, aborts, or a superstep fails.
func (w *Worker) runSession(fc *fconn, open *frame) {
	if len(open.Peers) == 0 || open.Rank < 0 || open.Rank >= len(open.Peers) {
		fc.write(&frame{Kind: kindError, Session: open.Session,
			Err: fmt.Sprintf("transport: malformed open: rank %d of %d peers", open.Rank, len(open.Peers))})
		fc.close()
		return
	}
	s := &session{
		w: w, id: open.Session, rank: open.Rank, p: len(open.Peers), peers: open.Peers,
		coord: fc,
		inbox: make(chan inMsg, 4*len(open.Peers)+4),
		store: exec.NewStore(),
		outs:  make([]*fconn, len(open.Peers)),
		quit:  make(chan struct{}),
	}
	s.store.SetObs(w.reg)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		fc.close()
		return
	}
	if _, dup := w.sessions[s.id]; dup {
		w.mu.Unlock()
		fc.write(&frame{Kind: kindError, Session: s.id,
			Err: fmt.Sprintf("transport: session %q already open on this worker", s.id)})
		fc.close()
		return
	}
	w.sessions[s.id] = s
	w.mu.Unlock()
	defer s.shutdown()

	if err := fc.write(&frame{Kind: kindOpenAck, Session: s.id, Rank: s.rank}); err != nil {
		return
	}
	// Coordinator frames arrive through a dedicated reader goroutine so
	// that losing the coordinator conn unblocks a superstep stuck in its
	// collect: an abort can hit before some rank's first deposit of a
	// run, in which case that rank's worker never dialed peers and
	// nothing else would ever break the other sessions' collects.
	frames := make(chan *frame)
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			f, err := fc.read()
			if err != nil {
				s.shutdown() // coordinator went away: end any collect in flight
				return
			}
			select {
			case frames <- f:
			case <-s.quit:
				return
			}
		}
	}()
	for {
		var f *frame
		select {
		case f = <-frames:
		case <-s.quit:
			return
		}
		switch f.Kind {
		case kindDeposit:
			if err := s.superstep(f); err != nil {
				fc.write(&frame{Kind: kindError, Session: s.id, Seq: f.Seq, Err: err.Error()})
				return
			}
		case kindStep:
			if f.Call == nil {
				fc.write(&frame{Kind: kindError, Session: s.id, Err: "transport: step frame without a step reference"})
				return
			}
			reply, err := s.store.Call(s.rank, s.p, f.Call.execRef(), f.Call.Args)
			if err != nil {
				fc.write(&frame{Kind: kindError, Session: s.id, Err: err.Error()})
				return
			}
			if err := fc.write(&frame{Kind: kindStepReply, Session: s.id, Reply: reply}); err != nil {
				return
			}
		case kindAbort:
			return
		default:
			fc.write(&frame{Kind: kindError, Session: s.id,
				Err: fmt.Sprintf("transport: unexpected frame kind %d from coordinator", f.Kind)})
			return
		}
	}
}

// superstep routes one deposit's blocks to the peer workers, collects the
// blocks every peer addressed to this rank, validates the SPMD stamps
// across all of them, and answers the coordinator. For a fabric deposit
// the answer is the assembled column; a resident deposit instead runs its
// emit step (payload out of worker memory) and/or collect step (payload
// into worker memory), answering with the collect reply and the element
// counts. Sends run on their own goroutine so two workers shipping large
// blocks to each other cannot deadlock on full TCP buffers.
func (s *session) superstep(dep *frame) error {
	stepStart := s.w.now()
	s.w.lastStamp.Store(&dep.Stamp)
	// Worker-side spans for a traced superstep ride back on the column
	// frame. They are appended only from this goroutine: the route
	// goroutine's window is published through sendErr (the channel receive
	// orders its writes before the append).
	var spans []obs.Span
	span := func(name string, start, end int64) {
		if dep.Trace == 0 {
			return
		}
		spans = append(spans, obs.Span{Trace: dep.Trace, Stamp: int64(dep.Seq),
			Name: name, Rank: s.rank, Start: start, Dur: end - start})
	}
	blocks := dep.blocks
	typ := dep.Type
	sent := 0
	var selfPayload any
	var note []byte
	if dep.Call != nil { // resident emit
		t0 := s.w.now()
		out, err := s.store.RunEmit(s.rank, s.p, dep.Call.execRef(), dep.Call.Args)
		if err != nil {
			return err
		}
		span("emit:"+dep.Call.Step, t0, s.w.now())
		blocks, typ, selfPayload, note = out.Blocks, out.Type, out.Self, out.Note
		for _, c := range out.Counts {
			sent += c
		}
	}
	if len(blocks) != s.p {
		return fmt.Errorf("transport: deposit carries %d blocks for %d ranks", len(blocks), s.p)
	}
	sendErr := make(chan error, 1)
	var routeStart, routeEnd int64
	go func() {
		routeStart = s.w.now()
		for j := range s.peers {
			if j == s.rank {
				continue
			}
			out, err := s.peerConn(j)
			if err == nil {
				err = out.write(&frame{Kind: kindBlock, Session: s.id, Rank: s.rank,
					Seq: dep.Seq, Stamp: dep.Stamp, Type: typ, blocks: [][]byte{blocks[j]}})
			}
			if err != nil {
				sendErr <- fmt.Errorf("transport: rank %d routing to rank %d (%s): %w", s.rank, j, s.peers[j], err)
				return
			}
		}
		routeEnd = s.w.now()
		sendErr <- nil
	}()

	gatherStart := s.w.now()
	column := make([][]byte, s.p)
	// The self-addressed slot: nil for a fabric deposit (the coordinator
	// retains its own block) and for a resident emit (the payload stays
	// typed in selfPayload); a resident collect of a coordinator deposit
	// ships it encoded like any other block.
	column[s.rank] = blocks[s.rank]
	seen := make([]bool, s.p)
	seen[s.rank] = true
	for need := s.p - 1; need > 0; need-- {
		select {
		case msg := <-s.inbox:
			if msg.err != nil {
				return msg.err
			}
			if msg.seq != dep.Seq {
				return fmt.Errorf("SPMD violation: rank %d deposited superstep %d (%q) while rank %d is at superstep %d (%q)",
					msg.from, msg.seq, msg.stamp, s.rank, dep.Seq, dep.Stamp)
			}
			if msg.stamp != dep.Stamp {
				return fmt.Errorf("SPMD violation: processor %d is at %q while processor %d is at %q",
					msg.from, msg.stamp, s.rank, dep.Stamp)
			}
			if msg.typ != typ {
				return fmt.Errorf("SPMD violation: processor %d exchanged %s at %q where processor %d exchanged %s",
					msg.from, msg.typ, dep.Stamp, s.rank, typ)
			}
			if seen[msg.from] {
				return fmt.Errorf("transport: duplicate block from rank %d at %q", msg.from, dep.Stamp)
			}
			seen[msg.from] = true
			column[msg.from] = msg.block
		case <-s.quit:
			return errors.New("transport: worker shutting down")
		}
	}
	span("gather", gatherStart, s.w.now())
	if err := <-sendErr; err != nil {
		return err
	}
	span("route", routeStart, routeEnd)
	defer func() {
		s.w.reg.Counter("worker_supersteps_total").Inc()
		s.w.reg.Histogram("worker_superstep_ns").Observe(s.w.now() - stepStart)
	}()
	if dep.Collect != nil { // resident collect
		t0 := s.w.now()
		reply, recv, err := s.store.RunCollect(s.rank, s.p, dep.Collect.execRef(),
			&exec.Inbox{Blocks: column, Self: selfPayload}, dep.Collect.Args)
		if err != nil {
			return err
		}
		span("collect:"+dep.Collect.Step, t0, s.w.now())
		return s.coord.write(&frame{Kind: kindColumn, Session: s.id, Seq: dep.Seq, Stamp: dep.Stamp,
			Reply: reply, Note: note, Sent: sent, Recv: recv, Spans: spans})
	}
	return s.coord.write(&frame{Kind: kindColumn, Session: s.id, Seq: dep.Seq, Stamp: dep.Stamp,
		blocks: column, Spans: spans})
}

// peerConn returns the directed block conn to peer j, dialing and
// binding it (kindHello) on first use.
func (s *session) peerConn(j int) (*fconn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.quit:
		return nil, errors.New("transport: session closed")
	default:
	}
	if s.outs[j] != nil {
		return s.outs[j], nil
	}
	conn, err := net.DialTimeout("tcp", s.peers[j], dialTimeout)
	if err != nil {
		return nil, err
	}
	fc := newFConn(conn).kinds(&s.w.kc)
	if err := fc.write(&frame{Kind: kindHello, Session: s.id, Rank: s.rank}); err != nil {
		fc.close()
		return nil, err
	}
	s.outs[j] = fc
	return fc, nil
}

// shutdown tears the session down: the coordinator conn and all peer
// conns close (peers mid-collect surface it as a lost-rank diagnostic),
// and the session deregisters — dropping its resident state with it.
func (s *session) shutdown() {
	s.quit1.Do(func() {
		close(s.quit)
		s.coord.close()
		s.mu.Lock()
		for _, c := range s.outs {
			if c != nil {
				c.close()
			}
		}
		for _, c := range s.feeds {
			c.close()
		}
		s.mu.Unlock()
		s.w.mu.Lock()
		delete(s.w.sessions, s.id)
		s.w.mu.Unlock()
	})
}

// feedPeer serves one incoming peer conn: it resolves the session the
// hello names and pumps its block frames into the session inbox. A conn
// error mid-stream becomes a lost-rank message so a session blocked in a
// collect fails with a diagnostic instead of hanging.
func (w *Worker) feedPeer(fc *fconn, hello *frame) {
	defer fc.close()
	s := w.lookupSession(hello.Session)
	if s == nil {
		// The open/ack ordering makes this unreachable in a healthy
		// cluster (no deposit precedes every ack); a stale or foreign
		// hello is simply dropped.
		return
	}
	deliver := func(m inMsg) bool {
		select {
		case s.inbox <- m:
			return true
		case <-s.quit:
			return false
		}
	}
	for {
		f, err := fc.read()
		if err != nil {
			deliver(inMsg{from: hello.Rank,
				err: fmt.Errorf("transport: rank %d lost its peer rank %d mid-superstep: %w", s.rank, hello.Rank, err)})
			return
		}
		if f.Kind != kindBlock || len(f.blocks) != 1 {
			deliver(inMsg{from: hello.Rank,
				err: fmt.Errorf("transport: malformed block frame (kind %d, %d blocks) from rank %d", f.Kind, len(f.blocks), hello.Rank)})
			return
		}
		if !deliver(inMsg{from: f.Rank, seq: f.Seq, stamp: f.Stamp, typ: f.Type, block: f.blocks[0]}) {
			return
		}
	}
}

// lookupSession waits briefly for the session to appear (defensive: the
// protocol already orders registration before any peer traffic).
func (w *Worker) lookupSession(id string) *session {
	deadline := time.Now().Add(dialTimeout)
	for {
		w.mu.Lock()
		s := w.sessions[id]
		closed := w.closed
		w.mu.Unlock()
		if s != nil || closed || time.Now().After(deadline) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
}
