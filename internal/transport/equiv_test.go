package transport_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/semigroup"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
)

// startCluster spins up p in-process workers on ephemeral localhost
// ports and dials them.
func startCluster(t *testing.T, p int) *transport.Cluster {
	t.Helper()
	addrs := make([]string, p)
	for i := range addrs {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cgm.Config{})
	if err != nil {
		t.Fatalf("dial cluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// comparableRounds strips the wall-clock fields from the round stats:
// everything else — the number of rounds, their labels and order, the h
// of every round, the exchanged volume — must be byte-for-byte identical
// across transports.
type roundKey struct {
	Label      string
	MaxH       int
	TotalElems int
	Final      bool
}

func comparableRounds(mt cgm.Metrics) []roundKey {
	out := make([]roundKey, len(mt.Rounds))
	for i, r := range mt.Rounds {
		out[i] = roundKey{Label: r.Label, MaxH: r.MaxH, TotalElems: r.TotalElems, Final: r.Final}
	}
	return out
}

func assertMetricsEqual(t *testing.T, phase string, loop, tcp cgm.Metrics) {
	t.Helper()
	lr, tr := comparableRounds(loop), comparableRounds(tcp)
	if len(lr) != len(tr) {
		t.Fatalf("%s: loopback folded %d rounds, tcp %d", phase, len(lr), len(tr))
	}
	for i := range lr {
		if lr[i] != tr[i] {
			t.Fatalf("%s round %d diverges:\n  loopback %+v\n  tcp      %+v", phase, i, lr[i], tr[i])
		}
	}
	if loop.Runs != tcp.Runs {
		t.Fatalf("%s: loopback ran %d machine runs, tcp %d", phase, loop.Runs, tcp.Runs)
	}
}

// TestCrossTransportEquivalence is the refactor's safety net: the same
// SPMD programs must return identical answers AND identical round/h
// metrics whether the supersteps move through shared memory or through
// TCP worker processes — for construction and all three §4.2 result
// modes, across machine widths and dimensionalities.
func TestCrossTransportEquivalence(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, d := range []int{2, 3} {
			t.Run(fmt.Sprintf("p=%d/d=%d", p, d), func(t *testing.T) {
				n, m := 500, 48
				pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Clustered, Seed: 7})
				boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: d, N: n, Selectivity: 0.05, Seed: 11})

				loopMach := cgm.New(cgm.Config{P: p})
				loopTree := core.Build(loopMach, pts)

				cl := startCluster(t, p)
				tcpTree, err := core.BuildOn(cl, pts, core.BackendLayered)
				if err != nil {
					t.Fatalf("cluster build: %v", err)
				}
				tcpMach := tcpTree.Machine()

				assertMetricsEqual(t, "construct", loopMach.Metrics(), tcpMach.Metrics())
				loopMach.ResetMetrics()
				tcpMach.ResetMetrics()

				// Count mode.
				lc, tc := loopTree.CountBatch(boxes), tcpTree.CountBatch(boxes)
				for i := range lc {
					if lc[i] != tc[i] {
						t.Fatalf("count query %d: loopback %d, tcp %d", i, lc[i], tc[i])
					}
				}

				// Associative-function mode.
				lh := core.PrepareAssociative(loopTree, semigroup.FloatSum(), workload.WeightOf)
				th := core.PrepareAssociative(tcpTree, semigroup.FloatSum(), workload.WeightOf)
				ls, ts := lh.Batch(boxes), th.Batch(boxes)
				for i := range ls {
					if math.Abs(ls[i]-ts[i]) > 1e-9 {
						t.Fatalf("aggregate query %d: loopback %v, tcp %v", i, ls[i], ts[i])
					}
				}

				// Report mode.
				lrep, trep := loopTree.ReportBatch(boxes), tcpTree.ReportBatch(boxes)
				for i := range lrep {
					if len(lrep[i]) != len(trep[i]) {
						t.Fatalf("report query %d: loopback %d points, tcp %d", i, len(lrep[i]), len(trep[i]))
					}
					for j := range lrep[i] {
						if lrep[i][j].ID != trep[i][j].ID {
							t.Fatalf("report query %d point %d: loopback id %d, tcp id %d",
								i, j, lrep[i][j].ID, trep[i][j].ID)
						}
					}
				}

				assertMetricsEqual(t, "search", loopMach.Metrics(), tcpMach.Metrics())
			})
		}
	}
}

// TestClusterStore runs the mutable store with its level builds and
// query batches on TCP workers, against a loopback twin.
func TestClusterStore(t *testing.T) {
	cl := startCluster(t, 4)
	pts := workload.Points(workload.PointSpec{N: 300, Dims: 2, Dist: workload.Uniform, Seed: 3})
	boxes := workload.Boxes(workload.QuerySpec{M: 16, Dims: 2, N: 300, Selectivity: 0.1, Seed: 5})

	open := func(pv cgm.Provider) *storeHandle {
		return newStoreHandle(t, pv, pts)
	}
	tcp := open(cl)
	loop := open(cgm.NewLocalProvider(cgm.Config{P: 4}))

	lc, tc := loop.st.CountBatch(boxes), tcp.st.CountBatch(boxes)
	for i := range lc {
		if lc[i] != tc[i] {
			t.Fatalf("store count %d: loopback %d, tcp %d", i, lc[i], tc[i])
		}
	}
	// Mutate both and compare again.
	del := pts[:40]
	for _, h := range []*storeHandle{loop, tcp} {
		if _, err := h.st.DeleteBatch(del); err != nil {
			t.Fatalf("delete: %v", err)
		}
		h.st.Compact()
	}
	lc, tc = loop.st.CountBatch(boxes), tcp.st.CountBatch(boxes)
	for i := range lc {
		if lc[i] != tc[i] {
			t.Fatalf("store count after delete %d: loopback %d, tcp %d", i, lc[i], tc[i])
		}
	}
	if cerr := tcp.st.Stats().CompactErr; cerr != "" {
		t.Fatalf("tcp store compaction failed: %s", cerr)
	}
}

// storeHandle owns one ephemeral mutable store seeded with pts.
type storeHandle struct{ st *store.Store }

func newStoreHandle(t *testing.T, pv cgm.Provider, pts []geom.Point) *storeHandle {
	t.Helper()
	st, err := store.Open("", store.Config{Dims: pts[0].Dims(), Provider: pv, MemtableCap: 64, Sync: true})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.InsertBatch(pts); err != nil {
		t.Fatalf("seed store: %v", err)
	}
	st.Compact()
	return &storeHandle{st: st}
}

// TestSingleWorkerCluster covers the degenerate p=1 fabric (no peer
// routing at all — the column is the own deposit).
func TestSingleWorkerCluster(t *testing.T) {
	cl := startCluster(t, 1)
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mach.Run(func(pr *cgm.Proc) {
		in := cgm.Exchange(pr, "self", [][]string{{"x"}})
		if len(in) != 1 || in[0][0] != "x" {
			t.Error("self-exchange wrong over tcp")
		}
	})
	if mach.Metrics().CommRounds() != 1 {
		t.Error("round not counted")
	}
}
