package transport_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/aggregates" // registers the standard named aggregates
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
)

// startCluster spins up p in-process workers on ephemeral localhost
// ports and dials them with the given machine config.
func startCluster(t *testing.T, p int, cfg cgm.Config) *transport.Cluster {
	t.Helper()
	addrs := make([]string, p)
	for i := range addrs {
		w, err := transport.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	cl, err := transport.DialCluster(addrs, cfg)
	if err != nil {
		t.Fatalf("dial cluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// comparableRounds strips the wall-clock fields from the round stats:
// everything else — the number of rounds, their labels and order, the h
// of every round, the exchanged volume — must be byte-for-byte identical
// across transports AND residency modes.
type roundKey struct {
	Label      string
	MaxH       int
	TotalElems int
	Final      bool
}

func comparableRounds(mt cgm.Metrics) []roundKey {
	out := make([]roundKey, len(mt.Rounds))
	for i, r := range mt.Rounds {
		out[i] = roundKey{Label: r.Label, MaxH: r.MaxH, TotalElems: r.TotalElems, Final: r.Final}
	}
	return out
}

func assertMetricsEqual(t *testing.T, phase, aName, bName string, a, b cgm.Metrics) {
	t.Helper()
	ar, br := comparableRounds(a), comparableRounds(b)
	if len(ar) != len(br) {
		t.Fatalf("%s: %s folded %d rounds, %s %d", phase, aName, len(ar), bName, len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("%s round %d diverges:\n  %-17s %+v\n  %-17s %+v", phase, i, aName, ar[i], bName, br[i])
		}
	}
	if a.Runs != b.Runs {
		t.Fatalf("%s: %s ran %d machine runs, %s %d", phase, aName, a.Runs, bName, b.Runs)
	}
}

// execVariant is one cell of the {loopback, TCP} × {fabric, resident}
// matrix.
type execVariant struct {
	name     string
	tcp      bool
	resident bool
}

var execVariants = []execVariant{
	{"loopback/fabric", false, false},
	{"loopback/resident", false, true},
	{"tcp/fabric", true, false},
	{"tcp/resident", true, true},
}

func (v execVariant) provider(t *testing.T, p int) cgm.Provider {
	cfg := cgm.Config{P: p, Resident: v.resident}
	if v.tcp {
		return startCluster(t, p, cfg)
	}
	return cgm.NewLocalProvider(cfg)
}

// TestCrossTransportEquivalence is the refactor's safety net, now across
// residency too: the same SPMD programs must return identical answers AND
// identical round/h metrics whether the supersteps move through shared
// memory or TCP worker processes, and whether the forest lives in
// coordinator memory (fabric) or where the programs execute (resident) —
// for construction and all three §4.2 result modes, across machine
// widths and dimensionalities.
func TestCrossTransportEquivalence(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, d := range []int{2, 3} {
			t.Run(fmt.Sprintf("p=%d/d=%d", p, d), func(t *testing.T) {
				n, m := 500, 48
				pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Clustered, Seed: 7})
				boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: d, N: n, Selectivity: 0.05, Seed: 11})

				trees := make([]*core.Tree, len(execVariants))
				for i, v := range execVariants {
					tree, err := core.BuildOn(v.provider(t, p), pts, core.BackendLayered)
					if err != nil {
						t.Fatalf("%s build: %v", v.name, err)
					}
					trees[i] = tree
					if err := tree.Verify(); err != nil {
						t.Fatalf("%s fails Verify: %v", v.name, err)
					}
				}
				base := trees[0]
				for i, v := range execVariants[1:] {
					assertMetricsEqual(t, "construct", execVariants[0].name, v.name,
						base.Machine().Metrics(), trees[i+1].Machine().Metrics())
				}
				for _, tree := range trees {
					tree.Machine().ResetMetrics()
				}

				// Count mode.
				want := base.CountBatch(boxes)
				for i, v := range execVariants[1:] {
					got := trees[i+1].CountBatch(boxes)
					for q := range want {
						if want[q] != got[q] {
							t.Fatalf("count query %d: %s %d, %s %d", q, execVariants[0].name, want[q], v.name, got[q])
						}
					}
				}

				// Associative-function mode (registered aggregate: the
				// only kind a resident tree can serve).
				wantAgg := core.PrepareAssociativeNamed[float64](base, aggregates.WeightSum).Batch(boxes)
				for i, v := range execVariants[1:] {
					got := core.PrepareAssociativeNamed[float64](trees[i+1], aggregates.WeightSum).Batch(boxes)
					for q := range wantAgg {
						if math.Abs(wantAgg[q]-got[q]) > 1e-9 {
							t.Fatalf("aggregate query %d: %s %v, %s %v", q, execVariants[0].name, wantAgg[q], v.name, got[q])
						}
					}
				}

				// Report mode.
				wantRep := base.ReportBatch(boxes)
				for i, v := range execVariants[1:] {
					got := trees[i+1].ReportBatch(boxes)
					for q := range wantRep {
						if len(wantRep[q]) != len(got[q]) {
							t.Fatalf("report query %d: %s %d points, %s %d", q, execVariants[0].name, len(wantRep[q]), v.name, len(got[q]))
						}
						for j := range wantRep[q] {
							if wantRep[q][j].ID != got[q][j].ID {
								t.Fatalf("report query %d point %d: %s id %d, %s id %d",
									q, j, execVariants[0].name, wantRep[q][j].ID, v.name, got[q][j].ID)
							}
						}
					}
				}

				for i, v := range execVariants[1:] {
					assertMetricsEqual(t, "search", execVariants[0].name, v.name,
						base.Machine().Metrics(), trees[i+1].Machine().Metrics())
				}
			})
		}
	}
}

// TestClusterStore runs the mutable store — level builds, compactions and
// mixed query batches — on every cell of the transport × residency
// matrix and asserts identical answers.
func TestClusterStore(t *testing.T) {
	pts := workload.Points(workload.PointSpec{N: 300, Dims: 2, Dist: workload.Uniform, Seed: 3})
	boxes := workload.Boxes(workload.QuerySpec{M: 16, Dims: 2, N: 300, Selectivity: 0.1, Seed: 5})
	ops := make([]core.MixedOp, len(boxes))
	for i := range ops {
		if i%2 == 1 {
			ops[i] = core.OpReport
		}
	}

	stores := make([]*store.Store, len(execVariants))
	for i, v := range execVariants {
		stores[i] = newStoreHandle(t, v.provider(t, 4), pts).st
	}

	check := func(stage string) {
		t.Helper()
		base, err := store.Mixed[struct{}](stores[0].Pin(), ops, boxes)
		if err != nil {
			t.Fatalf("%s: %s mixed: %v", stage, execVariants[0].name, err)
		}
		for i, v := range execVariants[1:] {
			got, err := store.Mixed[struct{}](stores[i+1].Pin(), ops, boxes)
			if err != nil {
				t.Fatalf("%s: %s mixed: %v", stage, v.name, err)
			}
			for q := range base {
				if base[q].Count != got[q].Count {
					t.Fatalf("%s: store mixed count %d: %s %d, %s %d", stage, q, execVariants[0].name, base[q].Count, v.name, got[q].Count)
				}
				if len(base[q].Pts) != len(got[q].Pts) {
					t.Fatalf("%s: store mixed report %d: %s %d pts, %s %d", stage, q, execVariants[0].name, len(base[q].Pts), v.name, len(got[q].Pts))
				}
			}
		}
	}
	check("seeded")

	// Mutate every store identically and compare again.
	del := pts[:40]
	for i, st := range stores {
		if _, err := st.DeleteBatch(del); err != nil {
			t.Fatalf("%s delete: %v", execVariants[i].name, err)
		}
		st.Compact()
		if cerr := st.Stats().CompactErr; cerr != "" {
			t.Fatalf("%s compaction failed: %s", execVariants[i].name, cerr)
		}
	}
	check("after-delete")
}

// storeHandle owns one ephemeral mutable store seeded with pts.
type storeHandle struct{ st *store.Store }

func newStoreHandle(t *testing.T, pv cgm.Provider, pts []geom.Point) *storeHandle {
	t.Helper()
	st, err := store.Open("", store.Config{Dims: pts[0].Dims(), Provider: pv, MemtableCap: 64, Sync: true})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.InsertBatch(pts); err != nil {
		t.Fatalf("seed store: %v", err)
	}
	st.Compact()
	return &storeHandle{st: st}
}

// TestSingleWorkerCluster covers the degenerate p=1 fabric (no peer
// routing at all — the column is the own deposit).
func TestSingleWorkerCluster(t *testing.T) {
	cl := startCluster(t, 1, cgm.Config{})
	mach, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mach.Run(func(pr *cgm.Proc) {
		in := cgm.Exchange(pr, "self", [][]string{{"x"}})
		if len(in) != 1 || in[0][0] != "x" {
			t.Error("self-exchange wrong over tcp")
		}
	})
	if mach.Metrics().CommRounds() != 1 {
		t.Error("round not counted")
	}
}
