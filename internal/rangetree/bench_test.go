package rangetree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/semigroup"
)

func benchSetup(n, d int) ([]geom.Point, []geom.Box) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, n, d, true)
	boxes := make([]geom.Box, 256)
	for i := range boxes {
		boxes[i] = randomBox(rng, n, d)
	}
	return pts, boxes
}

func BenchmarkBuild2D(b *testing.B) {
	pts, _ := benchSetup(1<<12, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkBuild3D(b *testing.B) {
	pts, _ := benchSetup(1<<10, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkCount2D(b *testing.B) {
	pts, boxes := benchSetup(1<<14, 2)
	t := Build(pts)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += t.Count(boxes[i%len(boxes)])
	}
	_ = total
}

func BenchmarkReport2D(b *testing.B) {
	pts, boxes := benchSetup(1<<14, 2)
	t := Build(pts)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(t.Report(boxes[i%len(boxes)]))
	}
	_ = total
}

func BenchmarkAggQuery(b *testing.B) {
	pts, boxes := benchSetup(1<<12, 2)
	t := Build(pts)
	agg := NewAgg(t, semigroup.FloatSum(), func(p geom.Point) float64 { return float64(p.ID) })
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		total += agg.Query(boxes[i%len(boxes)])
	}
	_ = total
}
