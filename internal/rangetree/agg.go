package rangetree

import (
	"repro/internal/geom"
	"repro/internal/segtree"
	"repro/internal/semigroup"
)

// Agg annotates the last-dimension segment trees of a range tree with
// bottom-up semigroup values, realising the paper's associative-function
// mode (§4.2, Algorithm AssociativeFunction step 1: "compute f(v) bottom-up
// for each node v in dimension d of T"). One Tree can carry several Agg
// annotations for different monoids.
type Agg[T any] struct {
	tree *Tree
	m    semigroup.Monoid[T]
	val  func(geom.Point) T
	// tab[seg] holds the per-heap-node aggregates of one last-dimension
	// segment tree.
	tab map[*Seg][]T
}

// NewAgg computes the annotation for monoid m with per-point value val.
func NewAgg[T any](t *Tree, m semigroup.Monoid[T], val func(geom.Point) T) *Agg[T] {
	a := &Agg[T]{tree: t, m: m, val: val, tab: make(map[*Seg][]T)}
	a.walk(t)
	return a
}

func (a *Agg[T]) walk(t *Tree) {
	if t.StartDim == t.Dims-1 {
		a.annotate(t.Prim)
		return
	}
	s := t.Prim
	for v := 1; v < s.Shape.NumNodes()+1; v++ {
		if s.Desc != nil && s.Desc[v] != nil {
			a.walk(s.Desc[v])
		}
	}
}

// annotate fills the node table of one last-dimension segment tree
// bottom-up: leaves take f(point) (identity for padding), internal nodes
// combine their children.
func (a *Agg[T]) annotate(s *Seg) {
	n := s.Shape.NumNodes()
	tab := make([]T, n+1)
	for pos := 0; pos < s.Shape.Cap; pos++ {
		v := s.Shape.LeafNode(pos)
		if pos < s.Shape.M {
			tab[v] = a.val(s.Pts[pos])
		} else {
			tab[v] = a.m.Identity
		}
	}
	for v := s.Shape.Cap - 1; v >= 1; v-- {
		tab[v] = a.m.Combine(tab[segtree.Left(v)], tab[segtree.Right(v)])
	}
	a.tab[s] = tab
}

// Query evaluates ⊗_{l∈R(q)} f(l) for box b.
func (a *Agg[T]) Query(b geom.Box) T {
	acc := a.m.Identity
	a.tree.Search(b,
		func(sl Selection) { acc = a.m.Combine(acc, a.tab[sl.Seg][sl.Node]) },
		func(p geom.Point) { acc = a.m.Combine(acc, a.val(p)) })
	return acc
}

// Value returns the annotation of one selection (used by the distributed
// algorithms, which combine across processors).
func (a *Agg[T]) Value(sl Selection) T { return a.tab[sl.Seg][sl.Node] }
