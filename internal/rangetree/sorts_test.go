package rangetree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestBuildSortsOncePerDimension makes the construction-bound comment on
// BuildFrom enforceable: exactly one comparison sort per discriminated
// dimension, with every descendant point set produced by stable partition
// of the presorted orders (never re-sorted).
func TestBuildSortsOncePerDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	randomPts := func(n, d int) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			x := make([]geom.Coord, d)
			for j := range x {
				x[j] = geom.Coord(rng.Intn(3 * n))
			}
			pts[i] = geom.Point{ID: int32(i), X: x}
		}
		return geom.RankNormalize(pts)
	}
	for _, tc := range []struct {
		n, d, startDim int
	}{
		{400, 1, 0},
		{400, 2, 0},
		{400, 3, 0},
		{400, 4, 0},
		{400, 4, 2},
	} {
		pts := randomPts(tc.n, tc.d)
		before := buildSorts.Load()
		BuildFrom(pts, tc.startDim)
		want := int64(tc.d - tc.startDim)
		if got := buildSorts.Load() - before; got != want {
			t.Errorf("BuildFrom(n=%d d=%d start=%d) ran %d sorts, want %d",
				tc.n, tc.d, tc.startDim, got, want)
		}
	}
}
