// Package rangetree implements the sequential d-dimensional range tree of
// the paper's Definition 1: a primary segment tree over the first
// discriminated dimension in which every node v with at least two points
// carries a pointer descendant(v) to a range tree over W(v) — the points
// whose coordinate lies in v's interval — for the remaining dimensions.
//
// The structure needs O(n·log^(d-1) n) space and construction time and
// answers a box query in O(log^d n + k) (§2, [18]). It serves three roles
// in this repository: the reference implementation queries are tested
// against, the sequential building block Algorithm Construct runs on each
// processor to build forest elements, and the baseline for the E5/E8
// experiments.
package rangetree

import (
	"slices"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/segtree"
)

// buildSorts counts full comparison sorts performed during construction:
// exactly one per discriminated dimension at the top level — every deeper
// point set reuses the presorted orders via stable partition (buildTree).
// The test suite asserts the count.
var buildSorts atomic.Int64

// Seg is one segment tree of the range tree: the complete binary tree over
// the points projected onto one dimension (§2.1). Node identifiers are the
// heap indices of segtree.Shape.
type Seg struct {
	Shape segtree.Shape
	// Dim is the global (0-based) dimension this tree discriminates.
	Dim int
	// Pts holds the leaf points in increasing order of X[Dim]
	// (ties by ID). Pts[i] belongs to leaf position i.
	Pts []geom.Point
	// Desc[v] is descendant(v): the range tree over W(v) for the remaining
	// dimensions. It is nil for leaves, single-point nodes (handled
	// directly during search), padding nodes, and in the last dimension.
	Desc []*Tree
}

// Coord returns the discriminated coordinate of leaf position i.
func (s *Seg) Coord(i int) geom.Coord { return s.Pts[i].X[s.Dim] }

// Span returns the closed coordinate interval covered by node v and
// whether the node covers any real point.
func (s *Seg) Span(v int) (geom.Interval, bool) {
	lo, hi := s.Shape.PosRange(v)
	if lo >= s.Shape.M {
		return geom.Interval{}, false
	}
	if hi > s.Shape.M {
		hi = s.Shape.M
	}
	return geom.Interval{Lo: s.Coord(lo), Hi: s.Coord(hi - 1)}, true
}

// PointsUnder returns the points below node v in leaf order.
func (s *Seg) PointsUnder(v int) []geom.Point {
	lo, hi := s.Shape.PosRange(v)
	if lo >= s.Shape.M {
		return nil
	}
	if hi > s.Shape.M {
		hi = s.Shape.M
	}
	return s.Pts[lo:hi]
}

// Tree is a range tree over dimensions StartDim..Dims-1 of its points.
// The top-level tree of a d-dimensional point set has StartDim 0; the
// descendant trees and the paper's forest elements start deeper.
type Tree struct {
	// Dims is the dimensionality of the stored points.
	Dims int
	// StartDim is the first dimension this tree discriminates (0-based).
	StartDim int
	// Prim is the primary segment tree (in dimension StartDim).
	Prim *Seg
}

// Build constructs a range tree over all dimensions of pts. Coordinates
// within one dimension should be distinct (the paper's rank normalization,
// geom.RankNormalize); duplicate coordinates are still handled correctly
// because all ordering is by (coordinate, ID).
func Build(pts []geom.Point) *Tree {
	if len(pts) == 0 {
		panic("rangetree: empty point set")
	}
	return BuildFrom(pts, 0)
}

// BuildFrom constructs a range tree discriminating dimensions
// startDim..Dims-1 only — the shape of the paper's forest elements, which
// are range trees "of dimension j ≤ d" (Definition 3).
func BuildFrom(pts []geom.Point, startDim int) *Tree {
	if len(pts) == 0 {
		panic("rangetree: empty point set")
	}
	dims := pts[0].Dims()
	if startDim < 0 || startDim >= dims {
		panic("rangetree: startDim out of range")
	}
	// One sorted order per remaining dimension; each build level consumes
	// the first and splits the rest stably down the heap, keeping the
	// construction within the O(n log^(d-1) n) bound.
	orders := make([][]geom.Point, dims-startDim)
	for k := range orders {
		dim := startDim + k
		o := make([]geom.Point, len(pts))
		copy(o, pts)
		buildSorts.Add(1)
		slices.SortFunc(o, func(a, b geom.Point) int { return cmpInDim(a, b, dim) })
		orders[k] = o
	}
	return buildTree(orders, startDim, dims)
}

// cmpInDim and lessInDim alias geom's shared (X[dim], ID) total order —
// the top-level sorts and buildTree's stable partition must agree on it.
func cmpInDim(a, b geom.Point, dim int) int   { return geom.CmpInDim(a, b, dim) }
func lessInDim(a, b geom.Point, dim int) bool { return geom.LessInDim(a, b, dim) }

// buildTree builds the tree for orders[0] and recursively attaches
// descendant trees built from the remaining orders.
func buildTree(orders [][]geom.Point, startDim, dims int) *Tree {
	prim := &Seg{
		Shape: segtree.NewShape(len(orders[0])),
		Dim:   startDim,
		Pts:   orders[0],
	}
	t := &Tree{Dims: dims, StartDim: startDim, Prim: prim}
	if startDim == dims-1 {
		return t
	}
	prim.Desc = make([]*Tree, prim.Shape.NumNodes()+1)
	// Split the remaining orders down the heap; a node with at least two
	// points gets descendant(v) built from its own slice of every order.
	var fill func(v int, tails [][]geom.Point)
	fill = func(v int, tails [][]geom.Point) {
		c := prim.Shape.Count(v)
		if c < 2 {
			return
		}
		lo, _ := prim.Shape.PosRange(v)
		mid := lo + (prim.Shape.Cap >> (segtree.Depth(v) + 1)) // first position of right child
		if mid < prim.Shape.M {
			// Both children have real points: split each tail stably by
			// comparing against the first point of the right child.
			pivot := prim.Pts[mid]
			lefts := make([][]geom.Point, len(tails))
			rights := make([][]geom.Point, len(tails))
			for k, tail := range tails {
				l := make([]geom.Point, 0, c/2+1)
				r := make([]geom.Point, 0, c/2+1)
				for _, p := range tail {
					if lessInDim(p, pivot, startDim) {
						l = append(l, p)
					} else {
						r = append(r, p)
					}
				}
				lefts[k], rights[k] = l, r
			}
			fill(segtree.Left(v), lefts)
			fill(segtree.Right(v), rights)
		} else {
			// All real points are in the left child.
			fill(segtree.Left(v), tails)
		}
		prim.Desc[v] = buildTree(tails, startDim+1, dims)
	}
	fill(prim.Shape.Root(), orders[1:])
	return t
}

// N reports the number of points in the tree.
func (t *Tree) N() int { return t.Prim.Shape.M }

// Nodes reports the total number of real tree nodes across all segment
// trees (the paper's s = O(n·log^(d-1) n) space measure). Padding slots
// are not counted.
func (t *Tree) Nodes() int {
	total := 0
	for v := 1; v < 2*t.Prim.Shape.Cap; v++ {
		if t.Prim.Shape.Count(v) == 0 {
			continue
		}
		total++
		if t.Prim.Desc != nil && t.Prim.Desc[v] != nil {
			total += t.Prim.Desc[v].Nodes()
		}
	}
	return total
}

// Selection is one outcome of the search of §4: a segment tree node in the
// last dimension all of whose leaves lie in the query domain ("the segment
// tree rooted at v should be selected by q").
type Selection struct {
	Seg  *Seg
	Node int
}

// Count reports the number of points the selection covers.
func (s Selection) Count() int { return s.Seg.Shape.Count(s.Node) }

// Points returns the covered points in leaf order.
func (s Selection) Points() []geom.Point { return s.Seg.PointsUnder(s.Node) }

// Search runs the paper's four-case query descent (§4) for box b over the
// dimensions the tree discriminates. For every maximal last-dimension node
// whose leaves all match, sel is called; for single points that match the
// whole remaining box, pt is called. Together these cover exactly the
// points of b, each once.
func (t *Tree) Search(b geom.Box, sel func(Selection), pt func(geom.Point)) {
	if b.Dims() != t.Dims {
		panic("rangetree: query dimensionality mismatch")
	}
	// Dimensions before StartDim are not discriminated by this tree
	// (forest elements); the caller guarantees them structurally.
	t.search(b, sel, pt)
}

func (t *Tree) search(b geom.Box, sel func(Selection), pt func(geom.Point)) {
	iv := b.Dim(t.Prim.Dim)
	if iv.Empty() {
		return
	}
	s := t.Prim
	last := t.StartDim == t.Dims-1
	var descend func(v int)
	descend = func(v int) {
		span, ok := s.Span(v)
		if !ok || !iv.Overlaps(span) {
			return // case 4: segments do not overlap — the query is deleted
		}
		if iv.ContainsInterval(span) {
			c := s.Shape.Count(v)
			switch {
			case c == 1:
				// A single point: resolve the remaining dimensions directly.
				p := s.PointsUnder(v)[0]
				if b.ContainsFrom(p, t.Prim.Dim+1) {
					pt(p)
				}
			case last:
				// Case 2: j = d — select the segment tree rooted at v.
				sel(Selection{Seg: s, Node: v})
			default:
				// Case 1: equal segments, j < d — proceed to the next
				// dimension at the root of descendant(v).
				s.Desc[v].search(b, sel, pt)
			}
			return
		}
		// Case 3: overlap but not containment — split into the children.
		descend(segtree.Left(v))
		descend(segtree.Right(v))
	}
	descend(s.Shape.Root())
}

// Report returns the points of b in deterministic order (report mode).
func (t *Tree) Report(b geom.Box) []geom.Point {
	var out []geom.Point
	t.Search(b,
		func(sl Selection) { out = append(out, sl.Points()...) },
		func(p geom.Point) { out = append(out, p) })
	return out
}

// Count returns |R(q)| (the counting special case of the
// associative-function mode).
func (t *Tree) Count(b geom.Box) int {
	total := 0
	t.Search(b,
		func(sl Selection) { total += sl.Count() },
		func(geom.Point) { total++ })
	return total
}

// Selections returns the paper's Q′ for a single query: the selected
// last-dimension segment trees plus the individually matched points.
func (t *Tree) Selections(b geom.Box) ([]Selection, []geom.Point) {
	var sels []Selection
	var pts []geom.Point
	t.Search(b,
		func(sl Selection) { sels = append(sels, sl) },
		func(p geom.Point) { pts = append(pts, p) })
	return sels, pts
}
