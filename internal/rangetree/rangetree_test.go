package rangetree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

// randomPoints builds n random d-dimensional points; when normalize is set
// the coordinates are the paper's distinct ranks, otherwise raw duplicates
// survive (exercising tie handling).
func randomPoints(rng *rand.Rand, n, d int, normalize bool) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(3 * n))
		}
		pts[i] = geom.Point{ID: int32(i), X: x}
	}
	if normalize {
		geom.RankNormalize(pts)
	}
	return pts
}

func randomBox(rng *rand.Rand, n, d int) geom.Box {
	lo := make([]geom.Coord, d)
	hi := make([]geom.Coord, d)
	for j := 0; j < d; j++ {
		a := geom.Coord(rng.Intn(3*n) - n/2)
		b := geom.Coord(rng.Intn(3*n) - n/2)
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func TestSinglePoint(t *testing.T) {
	pts := []geom.Point{{ID: 0, X: []geom.Coord{5, 7}}}
	tr := Build(pts)
	if tr.Count(geom.NewBox([]geom.Coord{5, 7}, []geom.Coord{5, 7})) != 1 {
		t.Error("point query should hit")
	}
	if tr.Count(geom.NewBox([]geom.Coord{6, 7}, []geom.Coord{9, 9})) != 0 {
		t.Error("miss query should be empty")
	}
}

func TestEmptyBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty build")
		}
	}()
	Build(nil)
}

func TestDimMismatchPanics(t *testing.T) {
	tr := Build(randomPoints(rand.New(rand.NewSource(1)), 8, 2, true))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on query dim mismatch")
		}
	}()
	tr.Count(geom.NewBox([]geom.Coord{0}, []geom.Coord{5}))
}

func TestKnown2D(t *testing.T) {
	// A 4x4 grid diagonal.
	pts := geom.RankPoints([][]geom.Coord{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	tr := Build(pts)
	if got := tr.Count(geom.NewBox([]geom.Coord{2, 1}, []geom.Coord{4, 3})); got != 2 {
		t.Errorf("Count = %d, want 2 (points (2,2),(3,3))", got)
	}
	got := brute.IDs(tr.Report(geom.NewBox([]geom.Coord{1, 1}, []geom.Coord{4, 4})))
	if !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Errorf("full-range report = %v", got)
	}
}

// TestEquivalenceWithBrute is the main correctness property: Count and
// Report agree with the linear scan over random workloads, with and
// without rank normalization, for d = 1..4.
func TestEquivalenceWithBrute(t *testing.T) {
	for _, normalize := range []bool{true, false} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(120)
			d := 1 + rng.Intn(4)
			pts := randomPoints(rng, n, d, normalize)
			tr := Build(pts)
			bf := brute.New(pts)
			for q := 0; q < 12; q++ {
				b := randomBox(rng, n, d)
				if tr.Count(b) != bf.Count(b) {
					return false
				}
				if !reflect.DeepEqual(brute.IDs(tr.Report(b)), brute.IDs(bf.Report(b))) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("normalize=%v: %v", normalize, err)
		}
	}
}

// TestSelectionsDisjointExact: the selected last-dimension trees plus the
// single points partition the result set (each point reported exactly
// once) — the invariant Algorithms Search/Report rely on.
func TestSelectionsDisjointExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(100)
		d := 1 + rng.Intn(3)
		pts := randomPoints(rng, n, d, true)
		tr := Build(pts)
		bf := brute.New(pts)
		b := randomBox(rng, n, d)
		sels, singles := tr.Selections(b)
		seen := map[int32]int{}
		for _, sl := range sels {
			for _, p := range sl.Points() {
				seen[p.ID]++
			}
			if sl.Count() != len(sl.Points()) {
				t.Fatal("selection count disagrees with points")
			}
		}
		for _, p := range singles {
			seen[p.ID]++
		}
		want := bf.Report(b)
		if len(seen) != len(want) {
			t.Fatalf("selection cover has %d ids, want %d", len(seen), len(want))
		}
		for _, p := range want {
			if seen[p.ID] != 1 {
				t.Fatalf("point %d covered %d times", p.ID, seen[p.ID])
			}
		}
	}
}

// TestSelectionCountLogBound: a query selects O(log^d n) nodes (§4: "at
// most O(log n) nodes per dimension, O(log^d n) selected").
func TestSelectionCountLogBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, d := 1024, 2
	pts := randomPoints(rng, n, d, true)
	tr := Build(pts)
	logn := 10 // log2 1024
	for trial := 0; trial < 40; trial++ {
		b := randomBox(rng, n, d)
		sels, singles := tr.Selections(b)
		bound := 4 * logn * logn // generous constant on O(log^2 n)
		if len(sels)+len(singles) > bound {
			t.Fatalf("%d selections for one query, bound %d", len(sels)+len(singles), bound)
		}
	}
}

func TestBuildFromForestElementShape(t *testing.T) {
	// A forest element discriminates only trailing dimensions; leading
	// dimensions are unconstrained (guaranteed by the hat).
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 40, 3, true)
	el := BuildFrom(pts, 1) // dims 1..2 only
	bf := brute.New(pts)
	for trial := 0; trial < 30; trial++ {
		b := randomBox(rng, 40, 3)
		// Open the first dimension fully so brute agrees with what the
		// element can see.
		b.Lo[0], b.Hi[0] = -1<<30, 1<<30
		if got, want := el.Count(b), bf.Count(b); got != want {
			t.Fatalf("element count = %d, want %d", got, want)
		}
	}
}

func TestBuildFromBadStart(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(1)), 4, 2, true)
	for _, start := range []int{-1, 2, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BuildFrom(start=%d) should panic", start)
				}
			}()
			BuildFrom(pts, start)
		}()
	}
}

func TestNodesSpaceGrowth(t *testing.T) {
	// s = Θ(n log^(d-1) n): the 2-d tree must be ≥ log-factor larger than
	// the 1-d tree and the 3-d tree larger still.
	rng := rand.New(rand.NewSource(5))
	n := 256
	sizes := make([]int, 4)
	for d := 1; d <= 3; d++ {
		pts := randomPoints(rng, n, d, true)
		sizes[d] = Build(pts).Nodes()
	}
	if !(sizes[1] < sizes[2] && sizes[2] < sizes[3]) {
		t.Errorf("sizes not growing with d: %v", sizes[1:])
	}
	if sizes[2] < sizes[1]*3 { // log2 256 = 8, expect much more than 3x
		t.Errorf("2-d tree only %dx the 1-d tree", sizes[2]/sizes[1])
	}
}

func TestEmptyBoxQueries(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(9)), 30, 2, true)
	tr := Build(pts)
	b := geom.NewBox([]geom.Coord{10, 5}, []geom.Coord{3, 20}) // inverted dim 0
	if tr.Count(b) != 0 || len(tr.Report(b)) != 0 {
		t.Error("inverted box must select nothing")
	}
}

func TestAggCountMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 90, 3, true)
	tr := Build(pts)
	counter := NewAgg(tr, semigroup.IntSum(), func(geom.Point) int64 { return 1 })
	for trial := 0; trial < 40; trial++ {
		b := randomBox(rng, 90, 3)
		if got, want := counter.Query(b), int64(tr.Count(b)); got != want {
			t.Fatalf("agg count = %d, want %d", got, want)
		}
	}
}

func TestAggModesAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randomPoints(rng, 70, 2, true)
	tr := Build(pts)
	bf := brute.New(pts)
	weight := func(p geom.Point) float64 { return float64(p.ID%7) - 3 }
	sum := NewAgg(tr, semigroup.FloatSum(), weight)
	mx := NewAgg(tr, semigroup.MaxFloat(), weight)
	argmax := NewAgg(tr, semigroup.ArgMax(), func(p geom.Point) semigroup.Arg {
		return semigroup.Arg{ID: p.ID, Val: weight(p)}
	})
	for trial := 0; trial < 50; trial++ {
		b := randomBox(rng, 70, 2)
		if got, want := sum.Query(b), brute.Aggregate(bf, semigroup.FloatSum(), weight, b); got != want {
			t.Fatalf("sum = %v, want %v", got, want)
		}
		if got, want := mx.Query(b), brute.Aggregate(bf, semigroup.MaxFloat(), weight, b); got != want {
			t.Fatalf("max = %v, want %v", got, want)
		}
		gotA := argmax.Query(b)
		wantA := brute.Aggregate(bf, semigroup.ArgMax(), func(p geom.Point) semigroup.Arg {
			return semigroup.Arg{ID: p.ID, Val: weight(p)}
		}, b)
		if gotA != wantA {
			t.Fatalf("argmax = %v, want %v", gotA, wantA)
		}
	}
}

func TestAggValueMatchesSelectionFold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 64, 2, true)
	tr := Build(pts)
	m := semigroup.IntSum()
	val := func(p geom.Point) int64 { return int64(p.ID) }
	agg := NewAgg(tr, m, val)
	b := randomBox(rng, 64, 2)
	sels, _ := tr.Selections(b)
	for _, sl := range sels {
		want := m.Identity
		for _, p := range sl.Points() {
			want = m.Combine(want, val(p))
		}
		if got := agg.Value(sl); got != want {
			t.Fatalf("Value(%v) = %d, want %d", sl, got, want)
		}
	}
}
