// Package wire is the hot-path codec of the multicomputer: a
// length-delimited raw binary layout for the payload types that dominate
// superstep traffic (coordinate rows, element copies, query boxes, result
// blocks), with append-style encoders into pooled buffers and a decode
// side that slices a received block into views instead of unmarshalling
// it field-by-field through reflection.
//
// The package has two halves. This file holds the primitives — an
// append-only writer vocabulary (fixed-width little-endian scalars,
// varint-framed sections) and a bounds-checked sticky-error Reader — plus
// the buffer pool and the encode/decode counters the benchmarks read.
// registry.go holds the Codec registry and the gob fallback: a payload
// type without a registered codec still crosses the wire, exactly as
// before, so third-party aggregate types keep working unchanged.
//
// Layout discipline (mirrored from the FlatBuffers-index + packed-data
// design of content-addressed blob stores): small indexes — counts,
// lengths, tags — are unsigned varints; bulk payload — coordinates, IDs,
// values — is fixed-width little-endian so a decoder can size every
// allocation up front and bulk-convert, and so the encoded size of a
// record is independent of its value distribution.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ------------------------------------------------------------- appenders

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendI32 appends v as 4 little-endian bytes.
func AppendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

// AppendI64 appends v as 8 little-endian bytes.
func AppendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// AppendU64 appends v as 8 little-endian bytes.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendF64 appends v's IEEE-754 bits as 8 little-endian bytes.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendI32s appends a fixed-width little-endian run of 32-bit values
// (the bulk-coordinate section shape).
func AppendI32s(b []byte, vs []int32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return b
}

// AppendBytes appends a varint-framed byte section: uvarint length, then
// the bytes.
func AppendBytes(b []byte, s []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendString appends a varint-framed string section.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// --------------------------------------------------------------- reader

// Reader decodes one raw block with sticky-error discipline: every read
// is bounds-checked, the first failure latches, and subsequent reads
// return zero values — so a decoder is a straight-line sequence of reads
// with a single error check at the end (Finish), and a truncated or
// corrupt block can never panic or over-allocate.
type Reader struct {
	b    []byte
	off  int
	fail bool
}

// NewReader wraps one encoded block.
func NewReader(b []byte) Reader { return Reader{b: b} }

// Remaining reports the bytes not yet consumed.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// bad latches the sticky error.
func (r *Reader) bad() { r.fail = true }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.fail {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.fail {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.bad()
		return 0
	}
	r.off += n
	return v
}

// Count reads an element count and validates it against the remaining
// bytes: every element of the section must occupy at least perElem bytes
// (perElem ≥ 1), so a corrupt count can never drive an absurd allocation.
func (r *Reader) Count(perElem int) int {
	v := r.Uvarint()
	if r.fail {
		return 0
	}
	if v > uint64(r.Remaining()/perElem) {
		r.bad()
		return 0
	}
	return int(v)
}

// I32 reads 4 little-endian bytes.
func (r *Reader) I32() int32 {
	if r.fail || r.off+4 > len(r.b) {
		r.bad()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int32(v)
}

// I64 reads 8 little-endian bytes.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U64 reads 8 little-endian bytes.
func (r *Reader) U64() uint64 {
	if r.fail || r.off+8 > len(r.b) {
		r.bad()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// F64 reads an IEEE-754 value.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// I32s fills dst from the fixed-width little-endian run at the cursor —
// the bulk-coordinate read. The caller sized dst from a validated Count,
// so a short block fails the reader rather than the slice bounds.
func (r *Reader) I32s(dst []int32) {
	if r.fail || r.off+4*len(dst) > len(r.b) {
		r.bad()
		return
	}
	b := r.b[r.off:]
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	r.off += 4 * len(dst)
}

// Bytes returns an n-byte view of the block (no copy). The view aliases
// the encoded block; copy it if it must outlive the block's buffer.
func (r *Reader) Bytes(n int) []byte {
	if r.fail || n < 0 || r.off+n > len(r.b) {
		r.bad()
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// Section reads a varint-framed byte section as a view.
func (r *Reader) Section() []byte {
	n := r.Uvarint()
	if r.fail || n > uint64(r.Remaining()) {
		r.bad()
		return nil
	}
	return r.Bytes(int(n))
}

// Str reads a varint-framed string section (one allocation). Not named
// String so Reader does not accidentally satisfy fmt.Stringer.
func (r *Reader) Str() string { return string(r.Section()) }

// Finish reports the block's decode verdict: an error if any read failed
// or if trailing bytes remain (a well-formed block is consumed exactly).
func (r *Reader) Finish() error {
	if r.fail {
		return fmt.Errorf("wire: truncated or corrupt block (offset %d of %d)", r.off, len(r.b))
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after block payload", len(r.b)-r.off)
	}
	return nil
}

// ---------------------------------------------------------- buffer pool

// maxPooledBuf bounds the capacity a returned buffer may keep: one huge
// construct-phase block must not pin its peak size in the pool for the
// process lifetime.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns an empty append-target buffer from the pool.
func GetBuf() []byte {
	return (*(bufPool.Get().(*[]byte)))[:0]
}

// PutBuf returns a buffer to the pool. The caller must not touch b (or
// any encoded block aliasing it) afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// ------------------------------------------------------------- counters

// Counters observe the exchange path's codec traffic: how many blocks
// (and payload bytes) moved through the raw codec versus the gob
// fallback. The benchmarks and rangebench -cluster read them to prove the
// raw codec actually carries the hot path rather than asserting it.
type Counters struct {
	RawEncBlocks, RawEncBytes  int64
	GobEncBlocks, GobEncBytes  int64
	RawDecBlocks, GobDecBlocks int64
}

var counters struct {
	rawEncBlocks, rawEncBytes  atomic.Int64
	gobEncBlocks, gobEncBytes  atomic.Int64
	rawDecBlocks, gobDecBlocks atomic.Int64
}

// Stats snapshots the process-wide codec counters.
func Stats() Counters {
	return Counters{
		RawEncBlocks: counters.rawEncBlocks.Load(),
		RawEncBytes:  counters.rawEncBytes.Load(),
		GobEncBlocks: counters.gobEncBlocks.Load(),
		GobEncBytes:  counters.gobEncBytes.Load(),
		RawDecBlocks: counters.rawDecBlocks.Load(),
		GobDecBlocks: counters.gobDecBlocks.Load(),
	}
}

// EmitStats writes the codec counters through emit as labeled series.
// Its signature matches the obs registry's collector callback, so
// wiring the codec into a metrics endpoint is one line —
// reg.Collect(wire.EmitStats) — without this package importing obs.
func EmitStats(emit func(name string, v float64)) {
	c := Stats()
	emit(`wire_codec_blocks_total{codec="raw",dir="enc"}`, float64(c.RawEncBlocks))
	emit(`wire_codec_blocks_total{codec="gob",dir="enc"}`, float64(c.GobEncBlocks))
	emit(`wire_codec_blocks_total{codec="raw",dir="dec"}`, float64(c.RawDecBlocks))
	emit(`wire_codec_blocks_total{codec="gob",dir="dec"}`, float64(c.GobDecBlocks))
	emit(`wire_codec_bytes_total{codec="raw"}`, float64(c.RawEncBytes))
	emit(`wire_codec_bytes_total{codec="gob"}`, float64(c.GobEncBytes))
}
