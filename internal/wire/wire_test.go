package wire

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestScalarRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 300)
	b = AppendVarint(b, -7)
	b = AppendI32(b, -123456)
	b = AppendI64(b, math.MinInt64)
	b = AppendU64(b, math.MaxUint64)
	b = AppendF64(b, -2.5)
	b = AppendI32s(b, []int32{1, -2, 3})
	b = AppendBytes(b, []byte("sect"))
	b = AppendString(b, "key")

	r := NewReader(b)
	if v := r.Uvarint(); v != 300 {
		t.Fatalf("uvarint %d", v)
	}
	if v := r.Varint(); v != -7 {
		t.Fatalf("varint %d", v)
	}
	if v := r.I32(); v != -123456 {
		t.Fatalf("i32 %d", v)
	}
	if v := r.I64(); v != math.MinInt64 {
		t.Fatalf("i64 %d", v)
	}
	if v := r.U64(); v != uint64(math.MaxUint64) {
		t.Fatalf("u64 %d", v)
	}
	if v := r.F64(); v != -2.5 {
		t.Fatalf("f64 %v", v)
	}
	got := make([]int32, 3)
	r.I32s(got)
	if !reflect.DeepEqual(got, []int32{1, -2, 3}) {
		t.Fatalf("i32s %v", got)
	}
	if s := r.Section(); !bytes.Equal(s, []byte("sect")) {
		t.Fatalf("section %q", s)
	}
	if s := r.Str(); s != "key" {
		t.Fatalf("string %q", s)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// Every truncation point of a block must yield a Finish error, not a
// panic or a silent zero decode.
func TestReaderTruncation(t *testing.T) {
	var b []byte
	b = AppendI32(b, 7)
	b = AppendString(b, "hello")
	b = AppendI32s(b, []int32{1, 2, 3})
	for cut := 0; cut < len(b); cut++ {
		r := NewReader(b[:cut])
		r.I32()
		r.Str()
		r.I32s(make([]int32, 3))
		if err := r.Finish(); err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	b := AppendI32(nil, 1)
	b = append(b, 0xEE)
	r := NewReader(b)
	r.I32()
	if err := r.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// A corrupt count cannot drive an allocation larger than the block
// itself admits.
func TestCountGuardsAllocation(t *testing.T) {
	b := AppendUvarint(nil, 1<<40) // claims a trillion elements
	r := NewReader(b)
	if n := r.Count(4); n != 0 {
		t.Fatalf("absurd count accepted: %d", n)
	}
	if err := r.Finish(); err == nil {
		t.Fatal("absurd count did not fail the reader")
	}
}

type unregisteredPayload struct {
	A int
	B string
}

func TestGobFallbackRoundTrip(t *testing.T) {
	if Registered[[]unregisteredPayload]() {
		t.Fatal("test type unexpectedly registered")
	}
	in := []unregisteredPayload{{1, "x"}, {2, "y"}}
	b, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != tagGob {
		t.Fatalf("fallback block tagged %q", b[0])
	}
	out, err := Decode[[]unregisteredPayload](b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("fallback round trip: %v vs %v", in, out)
	}
}

func TestRegisteredRoundTrip(t *testing.T) {
	in := []geom.Point{{ID: 1, X: []geom.Coord{3, 4}}, {ID: 2, X: []geom.Coord{5, 6}}}
	b, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != tagRaw {
		t.Fatalf("registered type took the fallback (tag %q)", b[0])
	}
	out, err := Decode[[]geom.Point](b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("raw round trip: %v vs %v", in, out)
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	if _, err := Decode[[]geom.Point](nil); err == nil {
		t.Fatal("empty block accepted")
	}
	if _, err := Decode[[]geom.Point]([]byte{0x00, 1, 2}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// A raw block for a type with no codec must be refused, not misread.
	if _, err := Decode[[]unregisteredPayload]([]byte{tagRaw, 1, 2, 3}); err == nil {
		t.Fatal("raw block for unregistered type accepted")
	}
	// Truncated raw point block.
	b, err := Encode(nil, []geom.Point{{ID: 9, X: []geom.Coord{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := Decode[[]geom.Point](b[:cut]); err == nil {
			t.Fatalf("truncated raw block (cut %d) accepted", cut)
		}
	}
}

func TestByteRowsDecodeAsViews(t *testing.T) {
	in := []byte{9, 8, 7}
	b, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode[[]byte](b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("byte row round trip: %v vs %v", in, out)
	}
	if &out[0] != &b[1] {
		t.Fatal("byte row decode copied instead of viewing the block")
	}
}

func TestBoxRoundTripSharesArena(t *testing.T) {
	var b []byte
	b = AppendBox(b, geom.Box{Lo: []geom.Coord{1, 2}, Hi: []geom.Coord{3, 4}})
	b = AppendBox(b, geom.Box{Lo: []geom.Coord{5, 6}, Hi: []geom.Coord{7, 8}})
	r := NewReader(b)
	arena := NewArena(&r)
	b1 := ReadBox(&r, &arena)
	b2 := ReadBox(&r, &arena)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, geom.Box{Lo: []geom.Coord{1, 2}, Hi: []geom.Coord{3, 4}}) ||
		!reflect.DeepEqual(b2, geom.Box{Lo: []geom.Coord{5, 6}, Hi: []geom.Coord{7, 8}}) {
		t.Fatalf("boxes: %v %v", b1, b2)
	}
	// Both boxes' coordinates live in the one arena: writes through the
	// arena show through the views.
	if cap(arena) < 8 || len(arena) != 8 {
		t.Fatalf("arena holds %d of %d coords", len(arena), cap(arena))
	}
}

func TestPutBufDropsOversized(t *testing.T) {
	huge := make([]byte, 0, maxPooledBuf+1)
	PutBuf(huge) // must not be retained
	small := GetBuf()
	if cap(small) > maxPooledBuf {
		t.Fatal("oversized buffer came back from the pool")
	}
	PutBuf(small)
}
