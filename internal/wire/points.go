package wire

import (
	"repro/internal/geom"
)

// Point blocks are the densest payloads the machine exchanges —
// construction routes every input point, phase B ships element copies,
// report mode returns result points — so their layout and its helpers
// live here, shared by every package that embeds points in a record
// (core's routed/shipped/report records, persist's snapshots).
//
// One point: ID (4B LE) · dims (uvarint) · dims×4B LE coordinates.
// A run of points: count (uvarint) · the points.
//
// Decoding slices, it does not unmarshal: all coordinates of a block
// land in one arena allocated up front from the block's byte budget, and
// every point's X is a view into it — two allocations per block (points
// header slice + arena) where gob performs two per point.

// AppendPoint appends one point.
func AppendPoint(b []byte, pt geom.Point) []byte {
	b = AppendI32(b, pt.ID)
	b = AppendUvarint(b, uint64(len(pt.X)))
	return AppendI32s(b, pt.X)
}

// ReadPoint decodes one point, placing its coordinates in the arena.
// Arena growth keeps earlier views valid (they retain the old backing
// array), so callers may share one arena across a whole block.
func ReadPoint(r *Reader, arena *[]geom.Coord) geom.Point {
	id := r.I32()
	d := r.Count(4)
	if d == 0 {
		return geom.Point{ID: id}
	}
	x := arenaTake(arena, d)
	r.I32s(x)
	return geom.Point{ID: id, X: x}
}

// NewArena sizes a coordinate arena for a block of b's size: the block
// cannot hold more 32-bit values than its byte length admits, so the
// arena never reallocates while the block decodes.
func NewArena(r *Reader) []geom.Coord {
	return make([]geom.Coord, 0, r.Remaining()/4)
}

// arenaTake extends the arena by d coordinates and returns the fresh,
// capacity-clipped view. An arena sized by NewArena never actually grows
// (the block's byte budget bounds its coordinate total); the growth path
// exists so a caller-supplied arena is merely slower, never wrong.
func arenaTake(arena *[]geom.Coord, d int) []geom.Coord {
	start := len(*arena)
	need := start + d
	if need > cap(*arena) {
		na := make([]geom.Coord, start, max(need, 2*cap(*arena)))
		copy(na, *arena)
		*arena = na
	}
	*arena = (*arena)[:need]
	return (*arena)[start:need:need]
}

// AppendPoints appends a counted run of points.
func AppendPoints(b []byte, pts []geom.Point) []byte {
	b = AppendUvarint(b, uint64(len(pts)))
	for _, pt := range pts {
		b = AppendPoint(b, pt)
	}
	return b
}

// ReadPoints decodes a counted run of points into the shared arena.
func ReadPoints(r *Reader, arena *[]geom.Coord) []geom.Point {
	n := r.Count(5) // ≥ 4B ID + 1B dims each
	if n == 0 {
		return nil
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = ReadPoint(r, arena)
	}
	return pts
}

// AppendBox appends a query box: dims (uvarint) · Lo run · Hi run.
func AppendBox(b []byte, box geom.Box) []byte {
	b = AppendUvarint(b, uint64(len(box.Lo)))
	b = AppendI32s(b, box.Lo)
	return AppendI32s(b, box.Hi)
}

// ReadBox decodes a query box into the shared arena.
func ReadBox(r *Reader, arena *[]geom.Coord) geom.Box {
	d := r.Count(8) // 2 runs of d coordinates
	if d == 0 {
		return geom.Box{}
	}
	lohi := arenaTake(arena, 2*d)
	lo := lohi[:d:d]
	hi := lohi[d : 2*d : 2*d]
	r.I32s(lo)
	r.I32s(hi)
	return geom.Box{Lo: lo, Hi: hi}
}

func init() {
	Register(Codec[[]geom.Point]{
		Append: AppendPoints,
		Decode: func(b []byte) ([]geom.Point, error) {
			r := NewReader(b)
			arena := NewArena(&r)
			pts := ReadPoints(&r, &arena)
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return pts, nil
		},
	})
	// Nested point rows: the report mode's resident whole-element fetch
	// returns one run per ordered element.
	Register(Codec[[][]geom.Point]{
		Append: func(buf []byte, rows [][]geom.Point) []byte {
			buf = AppendUvarint(buf, uint64(len(rows)))
			for _, row := range rows {
				buf = AppendPoints(buf, row)
			}
			return buf
		},
		Decode: func(b []byte) ([][]geom.Point, error) {
			r := NewReader(b)
			arena := NewArena(&r)
			n := r.Count(1)
			var rows [][]geom.Point
			if n > 0 {
				rows = make([][]geom.Point, n)
				for i := range rows {
					rows[i] = ReadPoints(&r, &arena)
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return rows, nil
		},
	})
}
