package wire

// Scalar rows ride in more collectives than any other shape: every
// CountScan exchanges one []int per processor, phase B's demand
// all-gather is an []int row, and most resident step arguments/replies
// are a bare count or flag. Leaving them to the gob fallback costs a
// type descriptor per block — the "0.6–0.8 gob blocks/query" the cluster
// bench kept reporting — so the raw layouts live here.

func init() {
	Register(Codec[bool]{
		Append: func(buf []byte, v bool) []byte {
			if v {
				return append(buf, 1)
			}
			return append(buf, 0)
		},
		Decode: func(b []byte) (bool, error) {
			r := NewReader(b)
			v := r.Bytes(1)
			if err := r.Finish(); err != nil {
				return false, err
			}
			return v[0] != 0, nil
		},
	})
	Register(Codec[int]{
		Append: func(buf []byte, v int) []byte { return AppendVarint(buf, int64(v)) },
		Decode: func(b []byte) (int, error) {
			r := NewReader(b)
			v := r.Varint()
			if err := r.Finish(); err != nil {
				return 0, err
			}
			return int(v), nil
		},
	})
	Register(Codec[int64]{
		Append: func(buf []byte, v int64) []byte { return AppendVarint(buf, v) },
		Decode: func(b []byte) (int64, error) {
			r := NewReader(b)
			v := r.Varint()
			if err := r.Finish(); err != nil {
				return 0, err
			}
			return v, nil
		},
	})
	Register(Codec[[]int]{
		Append: func(buf []byte, vs []int) []byte {
			buf = AppendUvarint(buf, uint64(len(vs)))
			for _, v := range vs {
				buf = AppendVarint(buf, int64(v))
			}
			return buf
		},
		Decode: func(b []byte) ([]int, error) {
			r := NewReader(b)
			n := r.Count(1)
			var vs []int
			if n > 0 {
				vs = make([]int, n)
				for i := range vs {
					vs[i] = int(r.Varint())
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return vs, nil
		},
	})
	Register(Codec[[]int32]{
		Append: func(buf []byte, vs []int32) []byte {
			buf = AppendUvarint(buf, uint64(len(vs)))
			return AppendI32s(buf, vs)
		},
		Decode: func(b []byte) ([]int32, error) {
			r := NewReader(b)
			n := r.Count(4)
			var vs []int32
			if n > 0 {
				vs = make([]int32, n)
				r.I32s(vs)
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return vs, nil
		},
	})
}
