package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
)

// Codec is the raw wire behavior of one payload type: an append-style
// encoder and a whole-block decoder. Append must extend buf in place
// (standard append discipline); Decode receives exactly the bytes Append
// produced and must return an error — never panic — on truncated or
// corrupt input (the Reader's sticky-error discipline gives this for
// free).
type Codec[T any] struct {
	Append func(buf []byte, v T) []byte
	Decode func(b []byte) (T, error)
}

// The registry maps a payload type to its type-erased codec. Registration
// happens in package init functions (core registers its superstep payload
// types; wire itself registers []byte), so lookups vastly outnumber
// writes — a copy-on-write map keeps the hot path lock-free.
var (
	regMu sync.Mutex
	reg   sync.Map // reflect.Type -> Codec[T] (as any)
)

// Register binds the raw codec for payload type T. Registering a type
// twice panics: two layouts for one type would desynchronize the cluster.
// Call it from an init function of the package that owns T, so every
// binary of the cluster (coordinator and workers) agrees on the set of
// raw-coded types by construction.
func Register[T any](c Codec[T]) {
	regMu.Lock()
	defer regMu.Unlock()
	t := reflect.TypeOf((*T)(nil)).Elem()
	if _, dup := reg.Load(t); dup {
		panic(fmt.Sprintf("wire: codec for %v registered twice", t))
	}
	reg.Store(t, c)
}

// Lookup resolves the registered codec for T.
func Lookup[T any]() (Codec[T], bool) {
	v, ok := reg.Load(reflect.TypeOf((*T)(nil)).Elem())
	if !ok {
		return Codec[T]{}, false
	}
	return v.(Codec[T]), true
}

// Registered reports whether T has a raw codec (without asserting it).
func Registered[T any]() bool {
	_, ok := reg.Load(reflect.TypeOf((*T)(nil)).Elem())
	return ok
}

// Every encoded block leads with a one-byte tag, so the decode side
// dispatches on the block itself rather than on out-of-band agreement —
// a binary that lacks a codec registration still rejects a raw block
// with a diagnostic instead of misreading it, and gob-fallback blocks
// are self-identifying.
const (
	tagGob byte = 'G'
	tagRaw byte = 'R'
)

// Encode appends the tagged wire encoding of v to buf: the raw layout
// when a codec is registered for T, the gob fallback otherwise. Combine
// with GetBuf/PutBuf to keep the per-superstep encode path allocation-
// free in steady state.
func Encode[T any](buf []byte, v T) ([]byte, error) {
	start := len(buf)
	if c, ok := Lookup[T](); ok {
		buf = c.Append(append(buf, tagRaw), v)
		counters.rawEncBlocks.Add(1)
		counters.rawEncBytes.Add(int64(len(buf) - start))
		return buf, nil
	}
	// The fallback lives in its own function so gob's &v only forces v to
	// the heap on the gob path — inlined here it would cost the raw path
	// one allocation per block too.
	return encodeGob(buf, start, v)
}

func encodeGob[T any](buf []byte, start int, v T) ([]byte, error) {
	buf = append(buf, tagGob)
	w := sliceWriter{b: buf}
	// gob sends its type descriptors once per Encoder, so an encoder
	// cannot be reused across independently decoded blocks; what the
	// fallback path reuses is the buffer the encoder writes into.
	if err := gob.NewEncoder(&w).Encode(&v); err != nil {
		return buf[:start], fmt.Errorf("wire: gob-encoding %T: %w", v, err)
	}
	counters.gobEncBlocks.Add(1)
	counters.gobEncBytes.Add(int64(len(w.b) - start))
	recordGobType(reflect.TypeOf((*T)(nil)).Elem())
	return w.b, nil
}

// gobTypes records which payload types have fallen back to gob since
// process start, so the zero-gob assertions can name the offender rather
// than just report a nonzero counter.
var gobTypes sync.Map // reflect.Type -> struct{}

func recordGobType(t reflect.Type) { gobTypes.LoadOrStore(t, struct{}{}) }

// GobTypes lists the type names that have gob-encoded at least one block
// in this process (diagnostic companion to Stats().GobEncBlocks).
func GobTypes() []string {
	var names []string
	gobTypes.Range(func(k, _ any) bool {
		names = append(names, k.(reflect.Type).String())
		return true
	})
	sort.Strings(names)
	return names
}

// Decode decodes one Encode-produced block.
func Decode[T any](b []byte) (T, error) {
	var zero T
	if len(b) == 0 {
		return zero, fmt.Errorf("wire: empty block")
	}
	switch b[0] {
	case tagRaw:
		c, ok := Lookup[T]()
		if !ok {
			return zero, fmt.Errorf("wire: raw block for %v, which this binary has no codec for (version skew?)",
				reflect.TypeOf((*T)(nil)).Elem())
		}
		v, err := c.Decode(b[1:])
		if err == nil {
			counters.rawDecBlocks.Add(1)
		}
		return v, err
	case tagGob:
		var v T
		cr := chunk{b: b[1:]}
		if err := gob.NewDecoder(&cr).Decode(&v); err != nil {
			return zero, fmt.Errorf("wire: gob-decoding %v: %w", reflect.TypeOf((*T)(nil)).Elem(), err)
		}
		counters.gobDecBlocks.Add(1)
		return v, nil
	default:
		return zero, fmt.Errorf("wire: unknown block tag 0x%02x", b[0])
	}
}

// sliceWriter appends gob output to the caller's (pooled) buffer, so the
// fallback path shares the raw path's buffer reuse.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// chunk is the gob-fallback read side: implementing io.ByteReader keeps
// gob from wrapping the source in a bufio.Reader allocation per block.
type chunk struct {
	b   []byte
	off int
}

func (c *chunk) Read(p []byte) (int, error) {
	if c.off >= len(c.b) {
		return 0, io.EOF
	}
	n := copy(p, c.b[c.off:])
	c.off += n
	return n, nil
}

func (c *chunk) ReadByte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, io.EOF
	}
	b := c.b[c.off]
	c.off++
	return b, nil
}

func init() {
	// []byte rows are the machine's barrier payloads (and any other
	// opaque byte rows): the raw layout is the bytes themselves. The
	// decoded value views the block.
	Register(Codec[[]byte]{
		Append: func(buf []byte, v []byte) []byte { return append(buf, v...) },
		Decode: func(b []byte) ([]byte, error) {
			if len(b) == 0 {
				return nil, nil
			}
			return b[:len(b):len(b)], nil
		},
	})
}
