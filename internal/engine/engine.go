// Package engine is the concurrent serving layer over the distributed
// range tree: it accepts single Count/Aggregate/Report calls from many
// goroutines, micro-batches them, and dispatches each mixed-mode batch
// through the unified search pipeline in one machine run.
//
// The paper's theorems price a batch in communication rounds, so they
// assume large batches (m ≥ p² queries) — but a serving workload arrives
// one query at a time. The engine closes that gap: requests accumulate in
// a pending buffer that flushes when it reaches the configured batch size
// or when the oldest pending request has waited the configured deadline,
// whichever comes first. Results route back to callers over per-query
// channels, and an LRU cache keyed by (data version, mode, box)
// short-circuits repeated queries. Hit/miss/flush counters are exported
// via Stats.
//
// An engine serves either an immutable core.Tree (whose data version is
// forever 0) or a mutable store.Store, in which case Insert and Delete
// are available and every mutation advances the data version — cached
// answers from older versions simply stop matching and age out of the
// LRU, so a cached answer can never outlive the data it came from.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrClosed is returned by queries submitted after Close.
var ErrClosed = errors.New("engine: closed")

// ErrNoAggregate is returned by Aggregate on an engine built without a
// prepared associative handle.
var ErrNoAggregate = errors.New("engine: no aggregate handle prepared")

// ErrImmutable is returned by Insert/Delete on an engine serving an
// immutable tree instead of a mutable store.
var ErrImmutable = errors.New("engine: immutable tree (serve from a store for mutations)")

// Defaults used for zero Config fields.
const (
	DefaultBatchSize = 64
	DefaultMaxDelay  = 2 * time.Millisecond
	DefaultCacheSize = 1024
)

// Config tunes the micro-batching and caching behavior.
type Config struct {
	// BatchSize flushes the pending buffer when this many queries are
	// waiting (default DefaultBatchSize).
	BatchSize int
	// MaxDelay flushes a non-empty pending buffer this long after its
	// first query arrived, so a lone query is never stuck waiting for a
	// full batch (default DefaultMaxDelay).
	MaxDelay time.Duration
	// CacheSize is the LRU answer-cache capacity in entries; negative
	// disables caching (default DefaultCacheSize).
	CacheSize int
	// Obs, when set, publishes the engine's counters as live series and
	// records per-mode end-to-end query-latency histograms
	// (engine_query_latency_ns{mode=...}, covering cache hits) plus a
	// batch-occupancy histogram. Nil disables publishing.
	Obs *obs.Registry
	// Tracer, when set, mints a trace ID for every dispatched batch and
	// stamps it onto the machine runs answering it, so worker-side spans
	// attribute back to the batch. Pass the same tracer to the cgm/store
	// configuration underneath or worker spans have nowhere to land.
	Tracer *obs.Tracer
	// SlowQuery, when positive, logs any batch whose wall time meets the
	// threshold — with its full span tree when Tracer is set.
	SlowQuery time.Duration
	// SlowLog receives slow-batch reports (default log.Printf).
	SlowLog func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultMaxDelay
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	return cfg
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Submitted       uint64 // queries accepted (including cache hits)
	CacheHits       uint64 // answered from the LRU without dispatch
	CacheMisses     uint64 // enqueued for a batch
	Batches         uint64 // machine runs dispatched
	BatchedQueries  uint64 // queries answered by dispatched batches
	SizeFlushes     uint64 // flushes triggered by a full buffer
	DeadlineFlushes uint64 // flushes triggered by the deadline timer
	DrainFlushes    uint64 // final flushes triggered by Close
	// CopyCacheHits counts forest-element copies the tree installed from
	// its cross-batch copy cache over all dispatched batches — how often
	// the skew-balancing round skipped an element rebuild entirely.
	CopyCacheHits uint64
	// PhaseBInstall accumulates the time processors spent installing
	// element copies across all dispatched batches.
	PhaseBInstall time.Duration
}

// request is one pending query and its reply channel. key is the
// version-less (mode, box) encoding used for in-batch dedup; the cache
// key prepends the data version of the batch that answered it.
type request[T any] struct {
	op  core.MixedOp
	box geom.Box
	key string
	out chan reply[T]
}

// reply carries one query's answer — or the failure of the machine batch
// that should have produced it (a cluster losing a worker mid-run).
type reply[T any] struct {
	res core.MixedResult[T]
	err error
}

// Engine is the serving layer. All methods are safe for concurrent use.
// Exactly one of tree/st backs it.
type Engine[T any] struct {
	tree *core.Tree
	agg  *core.AggHandle[T]
	st   *store.Store
	cfg  Config

	// closing guards the reqs channel: submitters hold it shared for the
	// duration of a send, Close takes it exclusively before closing.
	closing sync.RWMutex
	closed  bool
	reqs    chan request[T]
	done    chan struct{}

	cache *lru[core.MixedResult[T]]

	submitted, hits, misses           atomic.Uint64
	batches, batched                  atomic.Uint64
	sizeFlush, deadlineFlush, drained atomic.Uint64
	copyCacheHits, installNanos       atomic.Uint64
	slowBatches                       atomic.Uint64

	lat       [3]*obs.Histogram // per-mode latency, indexed by MixedOp
	occ       *obs.Histogram    // batch occupancy
	lastTrace atomic.Uint64
}

// New creates an engine answering Count and Report queries on t.
func New(t *core.Tree, cfg Config) *Engine[struct{}] {
	return WithAggregate[struct{}](t, nil, cfg)
}

// WithAggregate creates an engine that additionally answers Aggregate
// queries through the prepared handle h (which must annotate t).
func WithAggregate[T any](t *core.Tree, h *core.AggHandle[T], cfg Config) *Engine[T] {
	if h != nil && h.Tree() != t {
		panic("engine: aggregate handle was prepared on a different tree")
	}
	e := newEngine[T](cfg)
	e.tree = t
	e.agg = h
	go e.loop()
	return e
}

// NewStore creates an engine serving Count and Report queries from a
// mutable store: batches dispatch against pinned store versions, the
// answer cache is keyed by data version, and Insert/Delete work.
// Aggregate is unavailable (tombstone subtraction needs invertibility
// the semigroup contract does not promise).
func NewStore(st *store.Store, cfg Config) *Engine[struct{}] {
	e := newEngine[struct{}](cfg)
	e.st = st
	go e.loop()
	return e
}

func newEngine[T any](cfg Config) *Engine[T] {
	cfg = cfg.withDefaults()
	e := &Engine[T]{
		cfg:  cfg,
		reqs: make(chan request[T], 4*cfg.BatchSize),
		done: make(chan struct{}),
	}
	if cfg.CacheSize > 0 {
		e.cache = newLRU[core.MixedResult[T]](cfg.CacheSize)
	}
	if reg := cfg.Obs; reg != nil {
		for op, mode := range [...]string{"count", "aggregate", "report"} {
			e.lat[op] = reg.Histogram(`engine_query_latency_ns{mode="` + mode + `"}`)
		}
		e.occ = reg.Histogram("engine_batch_occupancy")
		reg.Collect(func(emit obs.Emit) {
			st := e.Stats()
			emit("engine_submitted_total", float64(st.Submitted))
			emit("engine_cache_hits_total", float64(st.CacheHits))
			emit("engine_cache_misses_total", float64(st.CacheMisses))
			emit("engine_batches_total", float64(st.Batches))
			emit("engine_batched_queries_total", float64(st.BatchedQueries))
			emit(`engine_flushes_total{reason="size"}`, float64(st.SizeFlushes))
			emit(`engine_flushes_total{reason="deadline"}`, float64(st.DeadlineFlushes))
			emit(`engine_flushes_total{reason="drain"}`, float64(st.DrainFlushes))
			emit("engine_copy_cache_hits_total", float64(st.CopyCacheHits))
			emit("engine_phase_b_install_ns_total", float64(st.PhaseBInstall.Nanoseconds()))
			emit("engine_slow_batches_total", float64(e.slowBatches.Load()))
		})
	}
	return e
}

// Count answers |R(box)|.
func (e *Engine[T]) Count(box geom.Box) (int64, error) {
	r, err := e.submit(core.OpCount, box)
	return r.Count, err
}

// Aggregate answers ⊗_{l∈R(box)} f(l) for the prepared handle.
func (e *Engine[T]) Aggregate(box geom.Box) (T, error) {
	if e.agg == nil {
		var zero T
		return zero, ErrNoAggregate
	}
	r, err := e.submit(core.OpAggregate, box)
	return r.Agg, err
}

// Report answers the points of R(box), sorted by point ID.
func (e *Engine[T]) Report(box geom.Box) ([]geom.Point, error) {
	r, err := e.submit(core.OpReport, box)
	return r.Pts, err
}

// Insert adds points to the engine's mutable store (ErrImmutable when
// the engine serves a plain tree). The store's data version advances,
// so every cached answer predating the insert stops being served.
func (e *Engine[T]) Insert(pts ...geom.Point) error {
	if e.st == nil {
		return ErrImmutable
	}
	_, err := e.st.InsertBatch(pts)
	return err
}

// Delete removes live points from the engine's mutable store
// (ErrImmutable when the engine serves a plain tree).
func (e *Engine[T]) Delete(pts ...geom.Point) error {
	if e.st == nil {
		return ErrImmutable
	}
	_, err := e.st.DeleteBatch(pts)
	return err
}

// dataVersion is the cache key's version component: a store advances it
// on every mutation; an immutable tree is forever version 0.
func (e *Engine[T]) dataVersion() uint64 {
	if e.st != nil {
		return e.st.Version()
	}
	return 0
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine[T]) Stats() Stats {
	return Stats{
		Submitted:       e.submitted.Load(),
		CacheHits:       e.hits.Load(),
		CacheMisses:     e.misses.Load(),
		Batches:         e.batches.Load(),
		BatchedQueries:  e.batched.Load(),
		SizeFlushes:     e.sizeFlush.Load(),
		DeadlineFlushes: e.deadlineFlush.Load(),
		DrainFlushes:    e.drained.Load(),
		CopyCacheHits:   e.copyCacheHits.Load(),
		PhaseBInstall:   time.Duration(e.installNanos.Load()),
	}
}

// LastTrace returns the trace ID of the most recently dispatched batch,
// or 0 if no batch has dispatched (or no tracer is configured).
func (e *Engine[T]) LastTrace() uint64 { return e.lastTrace.Load() }

// Trace renders the span tree recorded for trace id; id 0 means the most
// recently dispatched batch — waiting up to a few flush deadlines for a
// first batch to dispatch, so a trace request pipelined right behind the
// queries it asks about does not outrun the micro-batcher. The rendering
// shows the coordinator's dispatch and exchange spans with each worker's
// emit/route/gather/collect windows nested under the superstep that ran
// them.
func (e *Engine[T]) Trace(id uint64) string {
	if id == 0 {
		// A trace request pipelined together with the queries it asks
		// about can arrive before they register, let alone dispatch. Give
		// concurrent submissions a few flush deadlines to show up, then
		// wait while a dispatch is actually owed — a cache miss was
		// accepted but no batch has published a trace yet — bounded for
		// liveness (the owed batch may be wedged on a dead cluster).
		grace := time.Now().Add(4 * e.cfg.MaxDelay)
		deadline := time.Now().Add(2 * time.Second)
		for {
			if id = e.lastTrace.Load(); id != 0 || time.Now().After(deadline) {
				break
			}
			if e.misses.Load() == 0 && time.Now().After(grace) {
				break
			}
			time.Sleep(e.cfg.MaxDelay / 4)
		}
	}
	if id == 0 {
		return "no traced batches yet (is the engine configured with a Tracer?)"
	}
	return e.cfg.Tracer.Tree(id)
}

// Close stops the engine after answering every already-accepted query.
// Subsequent queries fail with ErrClosed. Close is idempotent.
func (e *Engine[T]) Close() {
	e.closing.Lock()
	if !e.closed {
		e.closed = true
		close(e.reqs)
	}
	e.closing.Unlock()
	<-e.done
}

// submit runs the cache fast path, then hands the query to the batching
// loop and blocks on its reply channel.
func (e *Engine[T]) submit(op core.MixedOp, box geom.Box) (core.MixedResult[T], error) {
	if h := e.lat[op]; h != nil {
		t0 := time.Now()
		defer func() { h.Observe(time.Since(t0).Nanoseconds()) }()
	}
	e.closing.RLock()
	if e.closed {
		e.closing.RUnlock()
		return core.MixedResult[T]{}, ErrClosed
	}
	e.submitted.Add(1)
	key := cacheKey(op, box)
	if e.cache != nil {
		if v, ok := e.cache.get(versionKey(e.dataVersion(), key)); ok {
			e.hits.Add(1)
			e.closing.RUnlock()
			return cloneResult(v), nil
		}
	}
	e.misses.Add(1)
	req := request[T]{op: op, box: box, key: key, out: make(chan reply[T], 1)}
	e.reqs <- req
	e.closing.RUnlock()
	r := <-req.out
	return r.res, r.err
}

// loop is the dispatcher: it owns the pending buffer and the deadline
// timer, and is the only goroutine that runs machine batches.
func (e *Engine[T]) loop() {
	defer close(e.done)
	var batch []request[T]
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
		armed = false
	}
	flush := func(reason *atomic.Uint64) {
		disarm()
		if len(batch) > 0 {
			reason.Add(1)
			e.dispatch(batch)
			batch = nil
		}
	}
	for {
		select {
		case req, ok := <-e.reqs:
			if !ok {
				flush(&e.drained)
				return
			}
			batch = append(batch, req)
			if len(batch) >= e.cfg.BatchSize {
				flush(&e.sizeFlush)
			} else if !armed {
				timer.Reset(e.cfg.MaxDelay)
				armed = true
			}
		case <-timer.C:
			armed = false
			flush(&e.deadlineFlush)
		}
	}
}

// dispatch answers one pending buffer with a single mixed-mode machine
// run (per store level, when serving a store), deduplicating identical
// (mode, box) queries within the batch, then fans the results back out
// to the reply channels and the cache. Cache entries are stored under
// the data version the batch actually ran at — the version of the
// pinned store snapshot — so an entry can never claim to be fresher (or
// staler) than it is.
func (e *Engine[T]) dispatch(batch []request[T]) {
	slot := make(map[string]int, len(batch)) // key -> unique index
	at := make([]int, len(batch))            // request -> unique index
	ops := make([]core.MixedOp, 0, len(batch))
	boxes := make([]geom.Box, 0, len(batch))
	for i, req := range batch {
		j, ok := slot[req.key]
		if !ok {
			j = len(ops)
			slot[req.key] = j
			ops = append(ops, req.op)
			boxes = append(boxes, req.box)
		}
		at[i] = j
	}

	id := e.cfg.Tracer.NewID() // 0 without a tracer: everything below degrades to untraced
	t0 := time.Now()
	var results []core.MixedResult[T]
	var ver uint64
	var err error
	if e.st != nil {
		v := e.st.Pin()
		ver = v.Seq()
		results, err = store.MixedTraced[T](v, ops, boxes, id)
		v.Release()
	} else {
		results, err = e.treeBatch(ops, boxes, id)
	}
	wall := time.Since(t0)
	e.batches.Add(1)
	e.batched.Add(uint64(len(batch)))
	if e.occ != nil {
		e.occ.Observe(int64(len(batch)))
	}
	if id != 0 {
		end := e.cfg.Tracer.Now()
		e.cfg.Tracer.Add(obs.Span{Trace: id, Stamp: -1, Name: "dispatch",
			Rank: obs.CoordRank, Start: end - wall.Nanoseconds(), Dur: wall.Nanoseconds()})
		// Published only now, with every span of the batch recorded, so a
		// Trace(0) reader never sees a half-written trace.
		e.lastTrace.Store(id)
	}
	if e.cfg.SlowQuery > 0 && wall >= e.cfg.SlowQuery {
		e.slowBatches.Add(1)
		logf := e.cfg.SlowLog
		if logf == nil {
			logf = log.Printf
		}
		if id != 0 {
			logf("engine: slow batch: %d queries in %v (threshold %v)\n%s",
				len(batch), wall, e.cfg.SlowQuery, e.cfg.Tracer.Tree(id))
		} else {
			logf("engine: slow batch: %d queries in %v (threshold %v; no tracer configured)",
				len(batch), wall, e.cfg.SlowQuery)
		}
	}

	if err != nil {
		// A machine abort mid-batch: every caller of this batch gets the
		// diagnostic; nothing is cached. The engine stays up — the store
		// records Stats.QueryErr, mutations keep flowing, and compaction
		// rebuilds levels on fresh machines.
		for _, req := range batch {
			req.out <- reply[T]{err: err}
		}
		return
	}
	for i, req := range batch {
		res := results[at[i]]
		if e.cache != nil {
			e.cache.add(versionKey(ver, req.key), res)
		}
		req.out <- reply[T]{res: cloneResult(res)}
	}
}

// treeBatch dispatches against an immutable tree, converting a machine
// abort (a panic by the cgm contract) into an error on the batch.
func (e *Engine[T]) treeBatch(ops []core.MixedOp, boxes []geom.Box, trace uint64) (results []core.MixedResult[T], err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: query batch aborted: %v", r)
		}
	}()
	// The dispatcher loop is the machine's only user, so the trace stamp
	// cannot interleave with another batch's.
	e.tree.SetTrace(trace)
	defer e.tree.SetTrace(0)
	results = core.MixedBatch(e.tree, e.agg, ops, boxes)
	e.copyCacheHits.Add(uint64(e.tree.LastCopyCacheHits()))
	e.installNanos.Add(uint64(e.tree.LastPhaseBInstall().Nanoseconds()))
	return results, nil
}

// cloneResult copies the slice-valued part of an answer so no two
// callers (or a caller and the cache) alias the same report points —
// callers are free to sort or filter what they receive in place.
func cloneResult[T any](r core.MixedResult[T]) core.MixedResult[T] {
	if r.Pts != nil {
		r.Pts = append([]geom.Point(nil), r.Pts...)
	}
	return r
}

// versionKey prepends the data version to a (mode, box) key: the full
// answer-cache key. Mutations advance the version, so entries cached
// against earlier data stop matching and age out of the LRU.
func versionKey(ver uint64, key string) string {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], ver)
	return string(buf[:]) + key
}

// cacheKey encodes (mode, box) as a compact string map key.
func cacheKey(op core.MixedOp, b geom.Box) string {
	buf := make([]byte, 0, 1+8*b.Dims())
	buf = append(buf, byte(op))
	for d := 0; d < b.Dims(); d++ {
		iv := b.Dim(d)
		buf = append(buf,
			byte(iv.Lo), byte(iv.Lo>>8), byte(iv.Lo>>16), byte(iv.Lo>>24),
			byte(iv.Hi), byte(iv.Hi>>8), byte(iv.Hi>>16), byte(iv.Hi>>24))
	}
	return string(buf)
}
