package engine

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded least-recently-used answer cache. Entries are
// keyed by (data version, mode, box); a mutation advances the version,
// so entries for older data stop matching lookups and drain out under
// capacity pressure — explicit invalidation is never needed.
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry[V]
	index map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		cap:   capacity,
		order: list.New(),
		index: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and refreshes its recency.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes a value, evicting the least recent entry when
// over capacity.
func (c *lru[V]) add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.index[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.index, oldest.Value.(*lruEntry[V]).key)
	}
}

// len reports the current entry count (tests).
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
