package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/workload"
)

func newStoreEngine(t testing.TB, pts []geom.Point, cfg Config) (*store.Store, *Engine[struct{}]) {
	t.Helper()
	st, err := store.Open("", store.Config{Dims: 2, P: 4, MemtableCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	return st, NewStore(st, cfg)
}

// TestCachedAnswersNeverOutliveData is the regression test for the
// answer-cache staleness bug: before cache keys carried a data version,
// an entry cached against one state of the data kept being served after
// the data changed. A cached count must change after an insert into the
// queried box, and again after a delete.
func TestCachedAnswersNeverOutliveData(t *testing.T) {
	pts := workload.Points(workload.PointSpec{N: 512, Dims: 2, Dist: workload.Uniform, Seed: 31})
	st, eng := newStoreEngine(t, pts, Config{
		BatchSize: 4,
		MaxDelay:  100 * time.Microsecond,
		CacheSize: 256,
	})
	defer st.Close()
	defer eng.Close()

	box := geom.NewBox([]geom.Coord{0, 0}, []geom.Coord{1 << 29, 1 << 29})
	base, err := eng.Count(box)
	if err != nil {
		t.Fatal(err)
	}
	// Ask again: this one must come from the cache.
	again, err := eng.Count(box)
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Fatalf("cached count %d differs from first answer %d", again, base)
	}
	if st := eng.Stats(); st.CacheHits == 0 {
		t.Fatalf("second identical query missed the cache: %+v", st)
	}

	inside := geom.Point{ID: 1 << 20, X: []geom.Coord{5, 5}}
	if err := eng.Insert(inside); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Count(box)
	if err != nil {
		t.Fatal(err)
	}
	if after != base+1 {
		t.Fatalf("count after insert = %d, want %d (stale cache?)", after, base+1)
	}

	if err := eng.Delete(inside); err != nil {
		t.Fatal(err)
	}
	final, err := eng.Count(box)
	if err != nil {
		t.Fatal(err)
	}
	if final != base {
		t.Fatalf("count after delete = %d, want %d (stale cache?)", final, base)
	}
}

// TestStoreEngineMatchesOracleUnderMutation serves queries while the
// store mutates underneath, spot-checking a quiescent engine against the
// brute oracle after each round.
func TestStoreEngineMatchesOracleUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := workload.Points(workload.PointSpec{N: 256, Dims: 2, Dist: workload.Clustered, Seed: 33})
	st, eng := newStoreEngine(t, pts, Config{BatchSize: 16, MaxDelay: 100 * time.Microsecond, CacheSize: 64})
	defer st.Close()
	defer eng.Close()

	live := map[int32]geom.Point{}
	for _, p := range pts {
		live[p.ID] = p
	}
	nextID := int32(1 << 20)
	for round := 0; round < 8; round++ {
		// Mutate through the engine.
		var ins []geom.Point
		for i := 0; i < 20; i++ {
			ins = append(ins, geom.Point{ID: nextID, X: []geom.Coord{
				geom.Coord(rng.Intn(1024)), geom.Coord(rng.Intn(1024))}})
			nextID++
		}
		if err := eng.Insert(ins...); err != nil {
			t.Fatal(err)
		}
		for _, p := range ins {
			live[p.ID] = p
		}
		var del []geom.Point
		for _, p := range live {
			del = append(del, p)
			if len(del) == 10 {
				break
			}
		}
		if err := eng.Delete(del...); err != nil {
			t.Fatal(err)
		}
		for _, p := range del {
			delete(live, p.ID)
		}

		var flat []geom.Point
		for _, p := range live {
			flat = append(flat, p)
		}
		bf := brute.New(flat)
		boxes := workload.Boxes(workload.QuerySpec{M: 6, Dims: 2, N: 1024, Selectivity: 0.05, Seed: int64(round)})
		for _, b := range boxes {
			c, err := eng.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			if c != int64(bf.Count(b)) {
				t.Fatalf("round %d: count %d, oracle %d", round, c, bf.Count(b))
			}
			rep, err := eng.Report(b)
			if err != nil {
				t.Fatal(err)
			}
			if len(brute.IDs(rep)) != len(brute.IDs(bf.Report(b))) {
				t.Fatalf("round %d: report size mismatch", round)
			}
		}
	}
}

// TestImmutableEngineRejectsMutation pins the tree-backed engine's
// contract: Insert/Delete fail with ErrImmutable, Aggregate on a
// store-backed engine fails with ErrNoAggregate.
func TestImmutableEngineRejectsMutation(t *testing.T) {
	fx := newFixture(t, 256, 2)
	eng := WithAggregate(fx.tree, fx.agg, Config{})
	defer eng.Close()
	if err := eng.Insert(geom.Point{ID: 1, X: []geom.Coord{1, 1}}); err != ErrImmutable {
		t.Fatalf("Insert on immutable engine: %v", err)
	}
	if err := eng.Delete(geom.Point{ID: 1, X: []geom.Coord{1, 1}}); err != ErrImmutable {
		t.Fatalf("Delete on immutable engine: %v", err)
	}

	pts := workload.Points(workload.PointSpec{N: 64, Dims: 2, Dist: workload.Uniform, Seed: 1})
	st, seng := newStoreEngine(t, pts, Config{})
	defer st.Close()
	defer seng.Close()
	if _, err := seng.Aggregate(geom.NewBox([]geom.Coord{0, 0}, []geom.Coord{9, 9})); err != ErrNoAggregate {
		t.Fatalf("Aggregate on store engine: %v", err)
	}
}
