package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/semigroup"
	"repro/internal/workload"
)

// testFixture builds one tree + oracle shared by the tests.
type testFixture struct {
	tree *core.Tree
	agg  *core.AggHandle[float64]
	bf   *brute.Set
	n    int
}

func newFixture(t testing.TB, n, p int) *testFixture {
	t.Helper()
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Uniform, Seed: 11})
	mach := cgm.New(cgm.Config{P: p})
	tree := core.Build(mach, pts)
	return &testFixture{
		tree: tree,
		agg:  core.PrepareAssociative(tree, semigroup.FloatSum(), workload.WeightOf),
		bf:   brute.New(pts),
		n:    n,
	}
}

// TestEngineConcurrentMixedMatchesBrute hammers one engine from many
// goroutines across all three modes and checks every answer against the
// brute-force oracle. Run under -race this is the serving layer's main
// correctness guarantee.
func TestEngineConcurrentMixedMatchesBrute(t *testing.T) {
	fx := newFixture(t, 1<<11, 4)
	eng := WithAggregate(fx.tree, fx.agg, Config{
		BatchSize: 48,
		MaxDelay:  200 * time.Microsecond,
		CacheSize: 128,
	})
	defer eng.Close()

	const submitters = 10
	const perSubmitter = 64
	boxes := workload.Boxes(workload.QuerySpec{
		M: submitters * perSubmitter, Dims: 2, N: fx.n, Selectivity: 0.01, Seed: 21,
	})

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf(format, args...)
	}
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perSubmitter; i++ {
				// Revisit earlier boxes sometimes so the cache sees traffic.
				qi := g*perSubmitter + i
				if rng.Intn(4) == 0 {
					qi = rng.Intn(len(boxes))
				}
				q := boxes[qi]
				switch (g + i) % 3 {
				case 0:
					got, err := eng.Count(q)
					if err != nil {
						fail("goroutine %d: Count: %v", g, err)
						return
					}
					if want := int64(fx.bf.Count(q)); got != want {
						fail("goroutine %d query %d: count %d, want %d", g, i, got, want)
					}
				case 1:
					got, err := eng.Aggregate(q)
					if err != nil {
						fail("goroutine %d: Aggregate: %v", g, err)
						return
					}
					want := brute.Aggregate(fx.bf, semigroup.FloatSum(), workload.WeightOf, q)
					if d := got - want; d > 1e-6 || d < -1e-6 {
						fail("goroutine %d query %d: agg %v, want %v", g, i, got, want)
					}
				default:
					got, err := eng.Report(q)
					if err != nil {
						fail("goroutine %d: Report: %v", g, err)
						return
					}
					gotIDs, wantIDs := brute.IDs(got), brute.IDs(fx.bf.Report(q))
					if len(gotIDs) != len(wantIDs) {
						fail("goroutine %d query %d: %d points, want %d", g, i, len(gotIDs), len(wantIDs))
						continue
					}
					for j := range gotIDs {
						if gotIDs[j] != wantIDs[j] {
							fail("goroutine %d query %d: point %d is %d, want %d", g, i, j, gotIDs[j], wantIDs[j])
							break
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := eng.Stats()
	if st.Submitted != submitters*perSubmitter {
		t.Errorf("Submitted = %d, want %d", st.Submitted, submitters*perSubmitter)
	}
	if st.Batches == 0 {
		t.Error("no batches dispatched")
	}
	if st.CacheHits+st.CacheMisses != st.Submitted {
		t.Errorf("hits %d + misses %d != submitted %d", st.CacheHits, st.CacheMisses, st.Submitted)
	}
	if st.BatchedQueries != st.CacheMisses {
		t.Errorf("BatchedQueries = %d, want %d (one dispatch per miss)", st.BatchedQueries, st.CacheMisses)
	}
	t.Logf("stats: %+v", st)
}

// TestEngineDeadlineFlush proves a lone query is answered by the deadline
// timer without waiting for a full batch.
func TestEngineDeadlineFlush(t *testing.T) {
	fx := newFixture(t, 512, 4)
	eng := New(fx.tree, Config{
		BatchSize: 1 << 20, // unreachable by size
		MaxDelay:  5 * time.Millisecond,
		CacheSize: -1,
	})
	defer eng.Close()

	q := workload.Boxes(workload.QuerySpec{M: 1, Dims: 2, N: fx.n, Selectivity: 0.1, Seed: 3})[0]
	start := time.Now()
	got, err := eng.Count(q)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("lone query took %v; deadline flush did not fire", elapsed)
	}
	if want := int64(fx.bf.Count(q)); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	st := eng.Stats()
	if st.DeadlineFlushes == 0 {
		t.Fatalf("expected a deadline flush, stats %+v", st)
	}
	if st.SizeFlushes != 0 {
		t.Fatalf("unexpected size flush, stats %+v", st)
	}
}

// TestEngineCacheHit verifies the LRU short-circuits a repeated query and
// that hits are counted per (mode, box): the same box in another mode must
// miss.
func TestEngineCacheHit(t *testing.T) {
	fx := newFixture(t, 512, 2)
	eng := New(fx.tree, Config{BatchSize: 4, MaxDelay: time.Millisecond, CacheSize: 16})
	defer eng.Close()

	q := workload.Boxes(workload.QuerySpec{M: 1, Dims: 2, N: fx.n, Selectivity: 0.05, Seed: 8})[0]
	first, err := eng.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("cached answer %d differs from first %d", second, first)
	}
	if st := eng.Stats(); st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1 (stats %+v)", st.CacheHits, st)
	}
	if _, err := eng.Report(q); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheHits != 1 {
		t.Fatalf("Report of the same box must miss; stats %+v", st)
	}
}

// TestEngineBatchDedup verifies identical in-flight queries are answered
// by one pipeline slot.
func TestEngineBatchDedup(t *testing.T) {
	fx := newFixture(t, 512, 2)
	eng := New(fx.tree, Config{BatchSize: 64, MaxDelay: 20 * time.Millisecond, CacheSize: -1})
	defer eng.Close()

	q := workload.Boxes(workload.QuerySpec{M: 1, Dims: 2, N: fx.n, Selectivity: 0.05, Seed: 4})[0]
	want := int64(fx.bf.Count(q))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, err := eng.Count(q); err != nil || got != want {
				t.Errorf("Count = %d, %v; want %d", got, err, want)
			}
		}()
	}
	wg.Wait()
	// All 16 were identical: however the requests landed in batches, the
	// answers are correct and at least some deduplication is observable
	// when they share a flush (not asserted — timing dependent).
	t.Logf("stats: %+v", eng.Stats())
}

// TestEngineReportNoAliasing verifies callers may mutate a Report answer
// without corrupting the cache or other callers' copies.
func TestEngineReportNoAliasing(t *testing.T) {
	fx := newFixture(t, 512, 2)
	eng := New(fx.tree, Config{BatchSize: 4, MaxDelay: time.Millisecond, CacheSize: 16})
	defer eng.Close()

	q := workload.Boxes(workload.QuerySpec{M: 1, Dims: 2, N: fx.n, Selectivity: 0.2, Seed: 13})[0]
	first, err := eng.Report(q)
	if err != nil || len(first) < 2 {
		t.Fatalf("Report: %v (got %d points, need ≥2)", err, len(first))
	}
	first[0], first[1] = first[1], first[0] // caller scrambles its copy
	second, err := eng.Report(q)            // cache hit
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(second); i++ {
		if second[i-1].ID > second[i].ID {
			t.Fatalf("cached report answer was corrupted by a caller's in-place mutation")
		}
	}
}

// TestEngineLifecycle covers Close semantics and the no-handle error.
func TestEngineLifecycle(t *testing.T) {
	fx := newFixture(t, 256, 2)
	eng := New(fx.tree, Config{BatchSize: 8, MaxDelay: time.Millisecond})
	q := workload.Boxes(workload.QuerySpec{M: 1, Dims: 2, N: fx.n, Selectivity: 0.1, Seed: 5})[0]

	if _, err := eng.Aggregate(q); err != ErrNoAggregate {
		t.Fatalf("Aggregate without handle: err = %v, want ErrNoAggregate", err)
	}
	if _, err := eng.Count(q); err != nil {
		t.Fatalf("Count before close: %v", err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Count(q); err != ErrClosed {
		t.Fatalf("Count after close: err = %v, want ErrClosed", err)
	}
}

// TestLRUEviction pins the cache's capacity behavior.
func TestLRUEviction(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.add("c", 3) // evicts b (a was refreshed by the get)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("a = %d/%v, want 1", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
