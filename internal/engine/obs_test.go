package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestEngineObservedMatchesPlain serves the same workload through an
// instrumented engine (registry + tracer + 0s slow-query threshold, so
// every batch logs a span tree) and a plain one, scraping /metrics-style
// expositions concurrently the whole time. Answers must be identical,
// counters monotone, and the per-mode latency histograms must account
// for every submitted query. Run under -race this is the proof that
// observability is free of data races on the serving hot path.
func TestEngineObservedMatchesPlain(t *testing.T) {
	// Two independent fixtures over the identical deterministic point
	// set: each engine owns its machine (a machine supports one Run at a
	// time, and the two engines dispatch concurrently).
	fx := newFixture(t, 1<<10, 4)
	fxPlain := newFixture(t, 1<<10, 4)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	var logMu sync.Mutex
	var slowLogs int
	cfg := Config{BatchSize: 16, MaxDelay: 200 * time.Microsecond, CacheSize: -1,
		Obs: reg, Tracer: tracer, SlowQuery: time.Nanosecond,
		SlowLog: func(format string, args ...any) {
			logMu.Lock()
			slowLogs++
			logMu.Unlock()
			if !strings.Contains(fmt.Sprintf(format, args...), "trace") {
				t.Errorf("slow-query log lacks a span tree: %q", fmt.Sprintf(format, args...))
			}
		}}
	eng := WithAggregate(fx.tree, fx.agg, cfg)
	defer eng.Close()
	plain := WithAggregate(fxPlain.tree, fxPlain.agg, Config{BatchSize: 16, MaxDelay: 200 * time.Microsecond, CacheSize: -1})
	defer plain.Close()

	const m = 96
	boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: 2, N: fx.n, Selectivity: 0.02, Seed: 31})

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		var lastBatches float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(time.Millisecond)
			var buf bytes.Buffer
			if err := reg.WriteProm(&buf); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			for _, line := range strings.Split(buf.String(), "\n") {
				if rest, ok := strings.CutPrefix(line, "engine_batches_total "); ok {
					var v float64
					fmt.Sscanf(rest, "%g", &v)
					if v < lastBatches {
						t.Errorf("engine_batches_total went backwards: %v -> %v", lastBatches, v)
					}
					lastBatches = v
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := range boxes {
		wg.Add(1)
		go func(b geom.Box, i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				got, err := eng.Count(b)
				want, werr := plain.Count(b)
				if err != nil || werr != nil || got != want {
					t.Errorf("count %v: instrumented (%d,%v) vs plain (%d,%v)", b, got, err, want, werr)
				}
			case 1:
				got, err := eng.Aggregate(b)
				want, werr := plain.Aggregate(b)
				if err != nil || werr != nil || got != want {
					t.Errorf("sum %v: instrumented (%v,%v) vs plain (%v,%v)", b, got, err, want, werr)
				}
			default:
				got, err := eng.Report(b)
				want, werr := plain.Report(b)
				if err != nil || werr != nil || len(got) != len(want) {
					t.Errorf("report %v: instrumented (%d pts,%v) vs plain (%d pts,%v)", b, len(got), err, len(want), werr)
				}
			}
		}(boxes[i], i)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	// Every submission must have landed in exactly one latency histogram.
	var latTotal int64
	for _, mode := range []string{"count", "aggregate", "report"} {
		latTotal += reg.Histogram(`engine_query_latency_ns{mode="` + mode + `"}`).Count()
	}
	if latTotal != m {
		t.Errorf("latency histograms hold %d observations, want %d", latTotal, m)
	}
	if eng.Stats().Batches == 0 {
		t.Fatalf("no batches dispatched")
	}
	logMu.Lock()
	if slowLogs == 0 {
		t.Errorf("0ns slow-query threshold never fired")
	}
	logMu.Unlock()

	// The last batch's span tree is retrievable by the serve `trace`
	// command's path.
	tree := eng.Trace(0)
	if !strings.Contains(tree, "dispatch") {
		t.Errorf("Trace(0) lacks the dispatch span:\n%s", tree)
	}
	if eng.LastTrace() == 0 {
		t.Errorf("LastTrace is 0 after %d batches", eng.Stats().Batches)
	}
}

// TestStoreEngineTraces checks the store dispatch path stamps trace IDs
// through MixedTraced: a store-backed engine's batches produce span
// trees too, and store timing histograms fill in.
func TestStoreEngineTraces(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	st, err := store.Open("", store.Config{Dims: 2, P: 4, MemtableCap: 64, Obs: reg})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close()
	pts := workload.Points(workload.PointSpec{N: 512, Dims: 2, Dist: workload.Uniform, Seed: 7})
	if _, err := st.InsertBatch(pts); err != nil {
		t.Fatalf("insert: %v", err)
	}
	eng := NewStore(st, Config{BatchSize: 8, MaxDelay: 100 * time.Microsecond, Obs: reg, Tracer: tracer})
	defer eng.Close()

	boxes := workload.Boxes(workload.QuerySpec{M: 8, Dims: 2, N: 512, Selectivity: 0.1, Seed: 9})
	for _, b := range boxes {
		if _, err := eng.Count(b); err != nil {
			t.Fatalf("count: %v", err)
		}
	}
	id := eng.LastTrace()
	if id == 0 {
		t.Fatalf("store-backed engine recorded no trace")
	}
	spans := tracer.Spans(id)
	if len(spans) == 0 {
		t.Fatalf("trace %d has no spans", id)
	}
	// Store gauges flow through the registry's collector.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	for _, series := range []string{"store_live_points 512", "store_seq "} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("exposition lacks %q", series)
		}
	}
}
