// Package dominance implements the special case the paper's footnote 2
// points out: "in the special case of associative functions with inverses
// this problem can be solved using weighted dominance counting". For a
// commutative *group* (a monoid whose elements have inverses), the
// aggregate over a box decomposes by inclusion–exclusion into 2^d
// dominance (prefix) aggregates, each answerable by a prefix-specialized
// structure whose final dimension is a single binary search over prefix
// folds instead of a canonical decomposition.
package dominance

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/segtree"
	"repro/internal/semigroup"
)

// Group is a commutative group over T: a Monoid plus inversion
// (Combine(x, Invert(x)) == Identity).
type Group[T any] struct {
	semigroup.Monoid[T]
	Invert func(T) T
}

// IntSum is the additive group of integers.
func IntSum() Group[int64] {
	return Group[int64]{Monoid: semigroup.IntSum(), Invert: func(x int64) int64 { return -x }}
}

// FloatSum is the additive group of floats.
func FloatSum() Group[float64] {
	return Group[float64]{Monoid: semigroup.FloatSum(), Invert: func(x float64) float64 { return -x }}
}

// Tree answers weighted dominance queries: the group fold over all points
// p with p.X[j] ≤ c[j] in every dimension j.
type Tree[T any] struct {
	dims     int
	startDim int
	g        Group[T]

	// Upper dimensions: a segment tree over startDim with descendant
	// prefix trees (single-point nodes resolved via pts/vals directly).
	shape segtree.Shape
	pts   []geom.Point
	vals  []T
	desc  []*Tree[T]

	// Final dimension: sorted coordinates with prefix folds
	// (prefix[i] = fold of the first i values).
	coords []geom.Coord
	prefix []T
}

// New builds the structure over all dimensions of pts with per-point
// value val.
func New[T any](pts []geom.Point, g Group[T], val func(geom.Point) T) *Tree[T] {
	if len(pts) == 0 {
		panic("dominance: empty point set")
	}
	return build(pts, g, val, 0, pts[0].Dims())
}

func build[T any](pts []geom.Point, g Group[T], val func(geom.Point) T, startDim, dims int) *Tree[T] {
	t := &Tree[T]{dims: dims, startDim: startDim, g: g}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].X[startDim] != sorted[b].X[startDim] {
			return sorted[a].X[startDim] < sorted[b].X[startDim]
		}
		return sorted[a].ID < sorted[b].ID
	})
	if startDim == dims-1 {
		t.coords = make([]geom.Coord, len(sorted))
		t.prefix = make([]T, len(sorted)+1)
		t.prefix[0] = g.Identity
		for i, p := range sorted {
			t.coords[i] = p.X[startDim]
			t.prefix[i+1] = g.Combine(t.prefix[i], val(p))
		}
		return t
	}
	t.pts = sorted
	t.vals = make([]T, len(sorted))
	for i, p := range sorted {
		t.vals[i] = val(p)
	}
	t.shape = segtree.NewShape(len(sorted))
	t.desc = make([]*Tree[T], t.shape.NumNodes()+1)
	var fill func(v int, sub []geom.Point)
	fill = func(v int, sub []geom.Point) {
		if len(sub) < 2 {
			return
		}
		t.desc[v] = build(sub, g, val, startDim+1, dims)
		lo, _ := t.shape.PosRange(v)
		mid := lo + (t.shape.Cap >> (segtree.Depth(v) + 1))
		if mid >= lo+len(sub) {
			fill(segtree.Left(v), sub)
			return
		}
		fill(segtree.Left(v), sub[:mid-lo])
		fill(segtree.Right(v), sub[mid-lo:])
	}
	fill(t.shape.Root(), sorted)
	return t
}

// Dominated folds val over every point dominated by c (p.X[j] ≤ c[j] for
// all j ≥ the tree's first dimension).
func (t *Tree[T]) Dominated(c []geom.Coord) T {
	if len(c) != t.dims {
		panic("dominance: corner dimensionality mismatch")
	}
	return t.dominated(c)
}

func (t *Tree[T]) dominated(c []geom.Coord) T {
	bound := c[t.startDim]
	if t.prefix != nil { // final dimension: one binary search
		hi := sort.Search(len(t.coords), func(i int) bool { return t.coords[i] > bound })
		return t.prefix[hi]
	}
	// Prefix canonical cover of positions [0, hi).
	hi := sort.Search(len(t.pts), func(i int) bool { return t.pts[i].X[t.startDim] > bound })
	acc := t.g.Identity
	t.shape.Cover(0, hi, func(v int) {
		plo, phi := t.shape.PosRange(v)
		if phi > t.shape.M {
			phi = t.shape.M
		}
		if phi-plo == 1 {
			p := t.pts[plo]
			ok := true
			for j := t.startDim + 1; j < t.dims; j++ {
				if p.X[j] > c[j] {
					ok = false
					break
				}
			}
			if ok {
				acc = t.g.Combine(acc, t.vals[plo])
			}
			return
		}
		acc = t.g.Combine(acc, t.desc[v].dominated(c))
	})
	return acc
}

// Box evaluates the group fold over a box by inclusion–exclusion over the
// 2^d dominance corners (footnote 2's reduction). Inverse elements cancel
// the over-counted orthants.
func (t *Tree[T]) Box(b geom.Box) T {
	if b.Dims() != t.dims {
		panic("dominance: query dimensionality mismatch")
	}
	if b.Empty() {
		// Inclusion–exclusion assumes lo ≤ hi per dimension; an empty box
		// is the identity by definition.
		return t.g.Identity
	}
	d := t.dims
	acc := t.g.Identity
	corner := make([]geom.Coord, d)
	for mask := 0; mask < 1<<d; mask++ {
		bits := 0
		for j := 0; j < d; j++ {
			if mask&(1<<j) != 0 {
				corner[j] = b.Lo[j] - 1
				bits++
			} else {
				corner[j] = b.Hi[j]
			}
		}
		term := t.dominated(corner)
		if bits%2 == 1 {
			term = t.g.Invert(term)
		}
		acc = t.g.Combine(acc, term)
	}
	return acc
}
