package dominance

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func BenchmarkDominated(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<13, 2)
	t := New(pts, IntSum(), func(geom.Point) int64 { return 1 })
	c := []geom.Coord{1 << 12, 1 << 12}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total += t.Dominated(c)
	}
	_ = total
}

func BenchmarkBox(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<13, 2)
	t := New(pts, IntSum(), func(geom.Point) int64 { return 1 })
	box := geom.NewBox([]geom.Coord{100, 100}, []geom.Coord{5000, 5000})
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total += t.Box(box)
	}
	_ = total
}
