package dominance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(2*n) + 1)
		}
		pts[i] = geom.Point{ID: int32(i), X: x}
	}
	return pts
}

func TestDominatedMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		d := 1 + rng.Intn(4)
		pts := randomPoints(rng, n, d)
		val := func(p geom.Point) int64 { return int64(p.ID) + 1 }
		tr := New(pts, IntSum(), val)
		for q := 0; q < 10; q++ {
			c := make([]geom.Coord, d)
			for j := range c {
				c[j] = geom.Coord(rng.Intn(2*n+2) - 1)
			}
			want := int64(0)
			for _, p := range pts {
				dom := true
				for j := range c {
					if p.X[j] > c[j] {
						dom = false
						break
					}
				}
				if dom {
					want += val(p)
				}
			}
			if tr.Dominated(c) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoxInclusionExclusionMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		d := 1 + rng.Intn(3)
		pts := randomPoints(rng, n, d)
		weight := func(p geom.Point) float64 { return float64(p.ID%13) - 6 }
		tr := New(pts, FloatSum(), weight)
		bf := brute.New(pts)
		for q := 0; q < 10; q++ {
			lo := make([]geom.Coord, d)
			hi := make([]geom.Coord, d)
			for j := 0; j < d; j++ {
				a := geom.Coord(rng.Intn(2 * n))
				b := geom.Coord(rng.Intn(2 * n))
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			b := geom.Box{Lo: lo, Hi: hi}
			if tr.Box(b) != brute.Aggregate(bf, semigroup.FloatSum(), weight, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountsViaGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 200, 2)
	tr := New(pts, IntSum(), func(geom.Point) int64 { return 1 })
	bf := brute.New(pts)
	for q := 0; q < 30; q++ {
		a, b := geom.Coord(rng.Intn(400)), geom.Coord(rng.Intn(400))
		c, d := geom.Coord(rng.Intn(400)), geom.Coord(rng.Intn(400))
		if a > b {
			a, b = b, a
		}
		if c > d {
			c, d = d, c
		}
		box := geom.NewBox([]geom.Coord{a, c}, []geom.Coord{b, d})
		if got, want := tr.Box(box), int64(bf.Count(box)); got != want {
			t.Fatalf("Box = %d, want %d", got, want)
		}
	}
}

func TestEmptyBoxCancels(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(5)), 50, 2)
	tr := New(pts, IntSum(), func(geom.Point) int64 { return 1 })
	// Inverted box: the 2^d terms must cancel to the identity.
	b := geom.NewBox([]geom.Coord{40, 1}, []geom.Coord{3, 100})
	if got := tr.Box(b); got != 0 {
		t.Errorf("inverted box = %d, want 0", got)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { New(nil, IntSum(), func(geom.Point) int64 { return 1 }) },
		"dim": func() {
			tr := New(randomPoints(rand.New(rand.NewSource(1)), 5, 2), IntSum(), func(geom.Point) int64 { return 1 })
			tr.Dominated([]geom.Coord{1})
		},
		"boxdim": func() {
			tr := New(randomPoints(rand.New(rand.NewSource(1)), 5, 2), IntSum(), func(geom.Point) int64 { return 1 })
			tr.Box(geom.NewBox([]geom.Coord{1}, []geom.Coord{2}))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
