package balance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlanBasics(t *testing.T) {
	pl := NewPlan(4, []int{8, 0, 4, 4}) // D = 16, D/p = 4
	if pl.DTotal != 16 {
		t.Fatalf("DTotal = %d", pl.DTotal)
	}
	if pl.Copies[0] != 2 { // ⌈8·4/16⌉ = 2
		t.Errorf("c_0 = %d, want 2", pl.Copies[0])
	}
	if pl.Copies[1] != 0 {
		t.Errorf("c_1 = %d, want 0", pl.Copies[1])
	}
	if pl.Copies[2] != 1 || pl.Copies[3] != 1 {
		t.Errorf("c_2/c_3 = %d/%d, want 1/1", pl.Copies[2], pl.Copies[3])
	}
	if pl.Slots != 4 {
		t.Errorf("Slots = %d", pl.Slots)
	}
}

func TestPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(16)
		groups := p // the paper's group count
		demand := make([]int, groups)
		for j := range demand {
			if rng.Intn(3) > 0 {
				demand[j] = rng.Intn(200)
			}
		}
		pl := NewPlan(p, demand)
		if pl.DTotal == 0 {
			return pl.Slots == 0
		}
		// Σ c_j ≤ 2p (each term ≤ d_j·p/D + 1).
		if pl.Slots > 2*p {
			return false
		}
		// O(1) copies per host.
		for _, c := range pl.CopiesPerHost() {
			if c > (pl.Slots+p-1)/p {
				return false
			}
		}
		// Every processor serves O(D/p): allow ⌈D/p⌉ + ⌈D/p⌉ slack for
		// rounding across groups hosted by the same processor.
		ceil := (pl.DTotal + p - 1) / p
		if pl.MaxServed() > 2*ceil+p {
			return false
		}
		// Routing hits only hosts of the right group.
		for j, d := range demand {
			if d == 0 {
				continue
			}
			hosts := map[int]bool{}
			for _, h := range pl.GroupHosts(j) {
				hosts[h] = true
			}
			for r := 0; r < d; r++ {
				if !hosts[pl.Route(j, r)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPlanSingleHotGroup(t *testing.T) {
	// The congestion case that motivates the paper's copying: every query
	// wants group 0. It must get ~p copies and the load must spread.
	p := 8
	pl := NewPlan(p, []int{800, 0, 0, 0, 0, 0, 0, 0})
	if pl.Copies[0] != p {
		t.Fatalf("hot group got %d copies, want %d", pl.Copies[0], p)
	}
	if pl.MaxServed() > 100+1 {
		t.Fatalf("MaxServed = %d, want ≈ 100", pl.MaxServed())
	}
}

func TestRoutePanicsOnUndemanded(t *testing.T) {
	pl := NewPlan(2, []int{0, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.Route(0, 0)
}

func TestSplitWeightedCoversExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(9)
		total := 1 + rng.Intn(500)
		off := rng.Intn(total)
		w := rng.Intn(total - off)
		shares := SplitWeighted(off, w, total, p)
		if w == 0 {
			return len(shares) == 0
		}
		pos := 0
		prevProc := -1
		for _, sh := range shares {
			if sh.Lo != pos || sh.Hi <= sh.Lo || sh.Proc < 0 || sh.Proc >= p || sh.Proc <= prevProc {
				return false
			}
			// Every position in the share must belong to that processor's
			// block.
			for g := off + sh.Lo; g < off+sh.Hi; g++ {
				if ownerOf(g, total, p) != sh.Proc {
					return false
				}
			}
			pos = sh.Hi
			prevProc = sh.Proc
		}
		return pos == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitWeightedBalance(t *testing.T) {
	// Many unit entries: every processor receives ~total/p positions.
	p, total := 4, 1000
	perProc := make([]int, p)
	for off := 0; off < total; off++ {
		for _, sh := range SplitWeighted(off, 1, total, p) {
			perProc[sh.Proc] += sh.Hi - sh.Lo
		}
	}
	for _, c := range perProc {
		if c != total/p {
			t.Fatalf("per-proc shares %v, want all %d", perProc, total/p)
		}
	}
}
