// Package balance implements the load-balancing machinery of Algorithm
// Search steps 2–4 and Algorithm Report (§4): replicate congested parts of
// the forest in proportion to the number of queries that want to visit
// them ("make c_j = |QF_j| / (|Q”|/p) copies of F_j and distribute them
// evenly"), and redistribute weighted result sets so every processor
// materializes an O(k/p) share.
package balance

// Plan is the paper's replication plan for one search batch: how many
// copies each forest group gets, where the copies (slots) live, and which
// copy serves the r-th request of a group. All quantities are computed
// identically on every processor from the globally known demand vector, so
// no extra communication is needed beyond exchanging the demands.
type Plan struct {
	// P is the machine width.
	P int
	// Demand[j] is |QF_j|: the number of subqueries that must visit
	// group j.
	Demand []int
	// DTotal is |Q''| = Σ Demand.
	DTotal int
	// Copies[j] is c_j; zero for groups nobody wants to visit.
	Copies []int
	// offsets[j] is Σ_{i<j} Copies[i]; slots of group j are
	// offsets[j]..offsets[j]+Copies[j]-1.
	offsets []int
	// Slots is Σ Copies ≤ 2·P.
	Slots int
}

// NewPlan computes the plan for the demand vector (one entry per group;
// the paper's groups are the processor parts F_0..F_(p-1), so typically
// len(demand) == p, but the element-granularity ablation passes more).
func NewPlan(p int, demand []int) *Plan {
	pl := &Plan{P: p, Demand: append([]int(nil), demand...)}
	for _, d := range demand {
		pl.DTotal += d
	}
	pl.Copies = make([]int, len(demand))
	pl.offsets = make([]int, len(demand))
	for j, d := range demand {
		pl.offsets[j] = pl.Slots
		if d == 0 {
			continue
		}
		// c_j = ⌈|QF_j| / (|Q''|/p)⌉ = ⌈d·p / D⌉, at least one copy for
		// any demanded group.
		c := (d*p + pl.DTotal - 1) / pl.DTotal
		if c < 1 {
			c = 1
		}
		if c > p {
			c = p
		}
		pl.Copies[j] = c
		pl.Slots += c
	}
	return pl
}

// Host returns the processor hosting a slot. Slots are dealt round-robin,
// which gives every processor at most ⌈Slots/P⌉ ≤ 2 copies — the "each
// processor stores O(1) copies" guarantee of the balancing lemma.
func (pl *Plan) Host(slot int) int { return slot % pl.P }

// GroupSlots returns the slot indices of group j.
func (pl *Plan) GroupSlots(j int) []int {
	c := pl.Copies[j]
	out := make([]int, c)
	for i := 0; i < c; i++ {
		out[i] = pl.offsets[j] + i
	}
	return out
}

// GroupHosts returns the processors hosting copies of group j (in slot
// order, possibly with repeats when Slots < P is small).
func (pl *Plan) GroupHosts(j int) []int {
	slots := pl.GroupSlots(j)
	hosts := make([]int, len(slots))
	for i, s := range slots {
		hosts[i] = pl.Host(s)
	}
	return hosts
}

// Route returns the processor that serves the r-th request (0-based
// global rank within the group) of group j. Requests are spread evenly
// over the group's copies, so a copy serves at most ⌈Demand[j]/c_j⌉ ≤
// ⌈DTotal/P⌉ + 1 requests.
func (pl *Plan) Route(j, r int) int {
	c := pl.Copies[j]
	if c == 0 {
		panic("balance: routing a request to an undemanded group")
	}
	d := pl.Demand[j]
	if d == 0 {
		panic("balance: group has copies but no demand")
	}
	k := r * c / d
	if k >= c {
		k = c - 1
	}
	return pl.Host(pl.offsets[j] + k)
}

// MaxServed returns the largest number of requests any single processor
// serves under the plan — the quantity the balancing lemma bounds by
// O(DTotal/P).
func (pl *Plan) MaxServed() int {
	served := make(map[int]int)
	for j, d := range pl.Demand {
		for r := 0; r < d; r++ {
			served[pl.Route(j, r)]++
		}
	}
	mx := 0
	for _, s := range served {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// CopiesPerHost returns how many group copies each processor hosts.
func (pl *Plan) CopiesPerHost() []int {
	out := make([]int, pl.P)
	for s := 0; s < pl.Slots; s++ {
		out[pl.Host(s)]++
	}
	return out
}

// Share is a piece of a weighted entry assigned to one processor: the
// entry's local weight interval [Lo, Hi) goes to processor Proc.
type Share struct {
	Proc   int
	Lo, Hi int
}

// SplitWeighted assigns the output positions [off, off+w) of one weighted
// entry to the contiguous blocks of a total weight `total` split over p
// processors (Algorithm Report: dest(q) = ⌊p·psw(q)/Σw⌋, extended to
// entries that straddle block boundaries). The returned shares are
// entry-relative, ordered, disjoint and cover [0, w).
func SplitWeighted(off, w, total, p int) []Share {
	if w == 0 {
		return nil
	}
	var out []Share
	pos := off
	end := off + w
	for pos < end {
		proc := ownerOf(pos, total, p)
		// Block of proc ends at blockStart(proc+1).
		blockEnd := end
		if proc < p-1 {
			if be := (proc + 1) * total / p; be < blockEnd {
				blockEnd = be
			}
		}
		if blockEnd <= pos { // defensive: always make progress
			blockEnd = pos + 1
		}
		out = append(out, Share{Proc: proc, Lo: pos - off, Hi: blockEnd - off})
		pos = blockEnd
	}
	return out
}

// ownerOf maps global output position g onto one of p contiguous blocks of
// a total of n positions.
func ownerOf(g, n, p int) int {
	if n == 0 {
		return 0
	}
	j := g * p / n
	if j > p-1 {
		j = p - 1
	}
	for j > 0 && g < j*n/p {
		j--
	}
	for j < p-1 && g >= (j+1)*n/p {
		j++
	}
	return j
}
