package segtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapePadding(t *testing.T) {
	cases := []struct{ m, cap int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	}
	for _, c := range cases {
		if s := NewShape(c.m); s.Cap != c.cap {
			t.Errorf("NewShape(%d).Cap = %d, want %d", c.m, s.Cap, c.cap)
		}
	}
}

func TestLevelDepth(t *testing.T) {
	s := NewShape(8)
	if s.Height() != 3 {
		t.Fatalf("Height = %d", s.Height())
	}
	if s.Level(1) != 3 || s.Level(2) != 2 || s.Level(8) != 0 || s.Level(15) != 0 {
		t.Error("Level wrong")
	}
	if Depth(1) != 0 || Depth(2) != 1 || Depth(3) != 1 || Depth(15) != 3 {
		t.Error("Depth wrong")
	}
	if !s.IsLeaf(8) || s.IsLeaf(7) {
		t.Error("IsLeaf wrong")
	}
}

func TestPosRangeAndCount(t *testing.T) {
	s := NewShape(6) // Cap 8
	lo, hi := s.PosRange(1)
	if lo != 0 || hi != 8 {
		t.Errorf("root PosRange = [%d,%d)", lo, hi)
	}
	lo, hi = s.PosRange(3) // right half
	if lo != 4 || hi != 8 {
		t.Errorf("node 3 PosRange = [%d,%d)", lo, hi)
	}
	if s.Count(1) != 6 {
		t.Errorf("root Count = %d", s.Count(1))
	}
	if s.Count(3) != 2 { // positions 4,5 real; 6,7 padding
		t.Errorf("node 3 Count = %d", s.Count(3))
	}
	if s.Count(7) != 0 { // positions 6,7 all padding
		t.Errorf("node 7 Count = %d", s.Count(7))
	}
	if s.Count(s.LeafNode(5)) != 1 || s.Count(s.LeafNode(6)) != 0 {
		t.Error("leaf counts wrong")
	}
}

func TestParentChildRelations(t *testing.T) {
	for v := 1; v < 64; v++ {
		if Parent(Left(v)) != v || Parent(Right(v)) != v {
			t.Fatalf("parent/child inconsistent at %d", v)
		}
	}
}

// TestCoverExactPartition is the core canonical-decomposition invariant:
// Cover([lo,hi)) yields disjoint nodes whose leaf ranges exactly tile the
// interval, in left-to-right order, with at most 2 nodes per level.
func TestCoverExactPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(300)
		s := NewShape(m)
		lo := rng.Intn(m + 2)
		hi := rng.Intn(m + 2)
		nodes := s.CoverNodes(lo, hi)
		clampedLo, clampedHi := lo, hi
		if clampedHi > s.Cap {
			clampedHi = s.Cap
		}
		if clampedLo >= clampedHi {
			return len(nodes) == 0
		}
		perLevel := map[int]int{}
		pos := clampedLo
		for _, v := range nodes {
			a, b := s.PosRange(v)
			if a != pos { // contiguous, ordered, disjoint
				return false
			}
			pos = b
			perLevel[s.Level(v)]++
		}
		if pos != clampedHi {
			return false
		}
		for _, c := range perLevel {
			if c > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCoverMaximality: no two siblings both appear (they would have been
// replaced by their parent).
func TestCoverMaximality(t *testing.T) {
	s := NewShape(64)
	for lo := 0; lo <= 64; lo += 3 {
		for hi := lo; hi <= 64; hi += 5 {
			nodes := s.CoverNodes(lo, hi)
			in := map[int]bool{}
			for _, v := range nodes {
				in[v] = true
			}
			for _, v := range nodes {
				sib := v ^ 1
				if v > 1 && in[sib] {
					t.Fatalf("cover of [%d,%d) contains siblings %d and %d", lo, hi, v, sib)
				}
			}
		}
	}
}

func TestCoverFullRange(t *testing.T) {
	s := NewShape(16)
	nodes := s.CoverNodes(0, 16)
	if len(nodes) != 1 || nodes[0] != 1 {
		t.Errorf("full cover = %v, want [1]", nodes)
	}
}

func TestStubsPartitionRealLeaves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(500)
		grain := 1 + rng.Intn(64)
		s := NewShape(m)
		stubs := s.Stubs(grain)
		pos := 0
		for _, st := range stubs {
			if st.PosLo != pos || st.Count != st.PosHi-st.PosLo || st.Count < 1 || st.Count > grain {
				return false
			}
			// Maximality: the parent must be hat-internal (or stub is root).
			if st.Node != 1 && s.Count(Parent(st.Node)) <= grain {
				return false
			}
			if st.Level_ != s.Level(st.Node) {
				return false
			}
			pos = st.PosHi
		}
		return pos == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStubsPowerOfTwoMatchesPaper: with n and p powers of two and grain
// n/p, the stubs are exactly the p nodes at level log n − log p
// (Definition 3 / footnote 1).
func TestStubsPowerOfTwoMatchesPaper(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		for _, p := range []int{2, 4, 8} {
			s := NewShape(n)
			stubs := s.Stubs(n / p)
			if len(stubs) != p {
				t.Fatalf("n=%d p=%d: %d stubs, want p", n, p, len(stubs))
			}
			wantLevel := Log2(n) - Log2(p)
			for _, st := range stubs {
				if st.Level_ != wantLevel || st.Count != n/p {
					t.Fatalf("n=%d p=%d stub %+v, want level %d count %d", n, p, st, wantLevel, n/p)
				}
			}
		}
	}
}

func TestHatNodesCountPowerOfTwo(t *testing.T) {
	// With n, p powers of two, the hat-internal nodes are the top log p
	// levels: 2p − 1 − p = p − 1 internal nodes... precisely nodes with
	// c > n/p are those at levels > log n − log p: count 2^0+..+2^(log p -1)
	// = p − 1.
	s := NewShape(256)
	for _, p := range []int{2, 8, 32} {
		hat := s.HatNodes(256 / p)
		if len(hat) != p-1 {
			t.Errorf("p=%d: %d hat-internal nodes, want %d", p, len(hat), p-1)
		}
	}
}

func TestStubContaining(t *testing.T) {
	s := NewShape(100)
	stubs := s.Stubs(7)
	for pos := 0; pos < 100; pos++ {
		i := StubContaining(stubs, pos)
		if i >= len(stubs) || stubs[i].PosLo > pos || pos >= stubs[i].PosHi {
			t.Fatalf("StubContaining(%d) = %d (%+v)", pos, i, stubs[i])
		}
	}
}

func TestStubsGrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for grain 0")
		}
	}()
	NewShape(4).Stubs(0)
}

func TestFigSegments(t *testing.T) {
	// Figure 1: the segment tree for (1,8).
	s := NewShape(8)
	want := map[int]string{
		1:  "[1,8]",
		2:  "[1,5)",
		3:  "[5,8]",
		4:  "[1,3)",
		5:  "[3,5)",
		6:  "[5,7)",
		7:  "[7,8]",
		8:  "[1,2)",
		9:  "[2,3)",
		10: "[3,4)",
		11: "[4,5)",
		12: "[5,6)",
		13: "[6,7)",
		14: "[7,8)",
		15: "[8,8]",
	}
	for v, w := range want {
		if got := s.FigSegmentString(v); got != w {
			t.Errorf("node %d segment = %s, want %s", v, got, w)
		}
	}
}
