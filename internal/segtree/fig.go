package segtree

import "fmt"

// FigSegment returns the segment the paper's Figure 1 associates with node
// v of a (1, n) segment tree over leaves 1..n: the i-th leaf carries
// [i, i+1) for i < n and the last leaf carries the degenerate closed
// segment [n, n]; an internal node carries the union of its children's
// segments. The bool result reports whether the right endpoint is closed.
func (s Shape) FigSegment(v int) (lo, hi int, closed bool) {
	plo, phi := s.PosRange(v)
	if phi > s.M {
		phi = s.M
	}
	if plo >= phi { // padding-only node
		return 0, 0, false
	}
	lo = plo + 1
	if phi == s.M { // includes the last leaf [n, n]
		return lo, s.M, true
	}
	return lo, phi + 1, false
}

// FigSegmentString renders the node's segment like the figure: "[3,5)" or
// "[7,8]".
func (s Shape) FigSegmentString(v int) string {
	lo, hi, closed := s.FigSegment(v)
	if closed {
		return fmt.Sprintf("[%d,%d]", lo, hi)
	}
	return fmt.Sprintf("[%d,%d)", lo, hi)
}
