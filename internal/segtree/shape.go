// Package segtree implements the structural mathematics of the paper's
// segment trees (§2.1): a (1,n) segment tree is a complete rooted binary
// tree whose nodes are addressed by heap indices (root 1, children 2i and
// 2i+1 — exactly the paper's Definition 2 Index arithmetic), its canonical
// interval decomposition, the Index/Level/Path labeling of Definition 2,
// and the hat cut of Definition 3 (maximal nodes whose canonical point set
// has at most n/p points).
//
// The package is deliberately value-oriented: a Shape carries no point
// data, so the sequential range tree, the distributed hat and the test
// suites all share one implementation of the tree geometry.
package segtree

import "math/bits"

// Shape describes the geometry of a complete segment tree over M real
// leaves padded to Cap = 2^⌈log2 M⌉ leaf slots. Leaf positions are 0-based;
// node identifiers are heap indices in [1, 2·Cap).
type Shape struct {
	M   int // number of real leaves (points)
	Cap int // padded leaf capacity, a power of two, Cap ≥ max(M,1)
}

// NewShape returns the shape of a segment tree over m real leaves.
func NewShape(m int) Shape {
	if m < 0 {
		panic("segtree: negative leaf count")
	}
	return Shape{M: m, Cap: ceilPow2(max(m, 1))}
}

// ceilPow2 returns the smallest power of two ≥ x (x ≥ 1).
func ceilPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(x - 1)))
}

// Log2 returns ⌊log2 x⌋ for x ≥ 1.
func Log2(x int) int { return bits.Len(uint(x)) - 1 }

// Height is the level of the root: log2(Cap).
func (s Shape) Height() int { return Log2(s.Cap) }

// NumNodes is the number of heap slots, 2·Cap − 1.
func (s Shape) NumNodes() int { return 2*s.Cap - 1 }

// Root is the heap index of the root.
func (s Shape) Root() int { return 1 }

// Depth returns the distance of node v from the root.
func Depth(v int) int { return Log2(v) }

// Level returns the paper's Level(v): the distance from v to the leaf
// layer (0 for leaves, Height for the root). This matches Definition 2(i)
// because the tree is complete.
func (s Shape) Level(v int) int { return s.Height() - Depth(v) }

// IsLeaf reports whether v is a leaf slot.
func (s Shape) IsLeaf(v int) bool { return v >= s.Cap }

// Left and Right return the children of an internal node.
func Left(v int) int   { return 2 * v }
func Right(v int) int  { return 2*v + 1 }
func Parent(v int) int { return v / 2 }

// LeafNode returns the heap index of the leaf slot at position pos.
func (s Shape) LeafNode(pos int) int { return s.Cap + pos }

// PosRange returns the leaf-position interval [lo, hi) covered by node v
// (including padding positions).
func (s Shape) PosRange(v int) (lo, hi int) {
	level := s.Level(v)
	width := 1 << level
	first := (v << level) - s.Cap
	return first, first + width
}

// Count returns the canonical count c(v): the number of real leaves under
// v. The hat cut of Definition 3 is expressed in terms of this quantity.
func (s Shape) Count(v int) int {
	lo, hi := s.PosRange(v)
	if lo >= s.M {
		return 0
	}
	return min(hi, s.M) - lo
}

// Cover enumerates the canonical decomposition of the leaf-position
// interval [lo, hi) — the unique minimal set of maximal nodes whose leaf
// ranges partition it (at most 2 nodes per level, Fig. 1). visit is called
// in left-to-right order. Empty or inverted intervals visit nothing.
func (s Shape) Cover(lo, hi int, visit func(v int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.Cap {
		hi = s.Cap
	}
	if lo >= hi {
		return
	}
	// Standard iterative canonical cover on the leaf indices, collecting
	// right-side nodes in reverse to preserve left-to-right order.
	l := s.Cap + lo
	r := s.Cap + hi // exclusive
	var rights []int
	for l < r {
		if l&1 == 1 {
			visit(l)
			l++
		}
		if r&1 == 1 {
			r--
			rights = append(rights, r)
		}
		l >>= 1
		r >>= 1
	}
	for i := len(rights) - 1; i >= 0; i-- {
		visit(rights[i])
	}
}

// CoverNodes returns the canonical cover of [lo, hi) as a slice.
func (s Shape) CoverNodes(lo, hi int) []int {
	var out []int
	s.Cover(lo, hi, func(v int) { out = append(out, v) })
	return out
}

// Stub is a leaf of the hat: a maximal node whose canonical count is at
// most the grain (Definition 3: level(v) = log n − log p when n and p are
// powers of two). The subtree of the range tree rooted at a stub is a
// forest element.
type Stub struct {
	Node   int // heap index
	PosLo  int // first real leaf position covered
	PosHi  int // one past the last real leaf position covered
	Count  int // PosHi − PosLo
	Level_ int // Level(Node)
}

// Stubs returns the stubs of the shape for the given grain in
// left-to-right order: the maximal nodes v with 1 ≤ c(v) ≤ grain. For
// M ≤ grain the root itself is the only stub. Padding-only subtrees are
// skipped.
func (s Shape) Stubs(grain int) []Stub {
	if grain < 1 {
		panic("segtree: grain must be ≥ 1")
	}
	var out []Stub
	var rec func(v int)
	rec = func(v int) {
		c := s.Count(v)
		if c == 0 {
			return
		}
		if c <= grain {
			lo, hi := s.PosRange(v)
			if hi > s.M {
				hi = s.M
			}
			out = append(out, Stub{Node: v, PosLo: lo, PosHi: hi, Count: hi - lo, Level_: s.Level(v)})
			return
		}
		rec(Left(v))
		rec(Right(v))
	}
	rec(s.Root())
	return out
}

// HatInternal reports whether v is an internal node of the hat for the
// given grain: c(v) > grain.
func (s Shape) HatInternal(v, grain int) bool { return s.Count(v) > grain }

// HatNodes returns all hat-internal nodes (c > grain) in BFS order.
func (s Shape) HatNodes(grain int) []int {
	var out []int
	for v := 1; v < 2*s.Cap; v++ {
		if s.Count(v) > grain {
			out = append(out, v)
		}
	}
	return out
}

// StubContaining returns the index into stubs of the stub whose position
// range contains pos. stubs must be the output of Stubs (sorted by PosLo).
func StubContaining(stubs []Stub, pos int) int {
	lo, hi := 0, len(stubs)
	for lo < hi {
		mid := (lo + hi) / 2
		if stubs[mid].PosHi <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
