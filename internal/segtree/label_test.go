package segtree

import (
	"testing"
)

// TestIndexDefinition2 checks the Index arithmetic against Definition 2:
// root of T has index 1, left child 2x, right child 2x+1, and the root of
// a descendant tree inherits the index of its ancestor node.
func TestIndexDefinition2(t *testing.T) {
	// Within the primary tree (anchor 1).
	if Index(1, 1) != 1 {
		t.Error("root of T must have index 1")
	}
	if Index(1, 2) != 2 || Index(1, 3) != 3 || Index(1, 4) != 4 || Index(1, 7) != 7 {
		t.Error("heap nodes of the primary tree must keep their heap index")
	}
	// A descendant tree anchored at a node with index x: root inherits x,
	// children are 2x and 2x+1 — the scheme of Figure 2.
	const x = 5
	if Index(x, 1) != x {
		t.Error("descendant root must inherit ancestor index")
	}
	if Index(x, 2) != 2*x || Index(x, 3) != 2*x+1 {
		t.Error("descendant children must double")
	}
	// Figure 2's second level: 4x, 4x+1, 4x+2, 4x+3.
	for off, want := range []uint64{4 * x, 4*x + 1, 4*x + 2, 4*x + 3} {
		if got := Index(x, 4+off); got != uint64(want) {
			t.Errorf("Index(x,%d) = %d, want %d", 4+int(off), got, want)
		}
	}
}

func TestPathKeyRoundTrip(t *testing.T) {
	k := RootPathKey.Extend(5).Extend(300).Extend(1)
	comps := k.Components()
	if len(comps) != 3 || comps[0] != 5 || comps[1] != 300 || comps[2] != 1 {
		t.Fatalf("Components = %v", comps)
	}
	if k.Dim() != 4 {
		t.Errorf("Dim = %d, want 4", k.Dim())
	}
	if RootPathKey.Dim() != 1 {
		t.Error("root key is dimension 1")
	}
	if RootPathKey.String() != "⟨root⟩" {
		t.Errorf("root String = %q", RootPathKey.String())
	}
	if k.String() != "⟨5.300.1⟩" {
		t.Errorf("String = %q", k.String())
	}
}

// TestLemma1Uniqueness: path(ancestor(v)) uniquely identifies the segment
// tree of v — distinct anchor chains yield distinct keys, and all nodes of
// one tree share the tree's key as their anchor.
func TestLemma1Uniqueness(t *testing.T) {
	// Enumerate the trees of a small 3-dim range tree over 8 points: the
	// primary tree (key ⟨root⟩), one dim-2 tree per primary node, one
	// dim-3 tree per (primary node, dim-2 node) pair.
	seen := map[PathKey]bool{}
	var walk func(k PathKey, depth int)
	walk = func(k PathKey, depth int) {
		if seen[k] {
			t.Fatalf("duplicate tree key %v", k)
		}
		seen[k] = true
		if depth == 2 {
			return
		}
		for v := 1; v < 16; v++ { // every node of an 8-leaf tree anchors a subtree
			walk(k.Extend(v), depth+1)
		}
	}
	walk(RootPathKey, 0)
	want := 1 + 15 + 15*15
	if len(seen) != want {
		t.Errorf("distinct keys = %d, want %d", len(seen), want)
	}
}

func TestPathKeyCorruptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on corrupt key")
		}
	}()
	PathKey([]byte{0xff}).Components() // truncated varint
}
