package segtree

import "testing"

func BenchmarkCover(b *testing.B) {
	s := NewShape(1 << 20)
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := (i * 48271) % (1 << 19)
		s.Cover(lo, lo+(1<<18), func(int) { n++ })
	}
	_ = n
}

func BenchmarkStubs(b *testing.B) {
	s := NewShape(1 << 16)
	for i := 0; i < b.N; i++ {
		if len(s.Stubs(1<<10)) == 0 {
			b.Fatal("no stubs")
		}
	}
}

func BenchmarkPathKeyExtend(b *testing.B) {
	b.ReportAllocs()
	k := RootPathKey
	for i := 0; i < b.N; i++ {
		k = RootPathKey.Extend(i&0xffff + 1)
	}
	_ = k
}

func BenchmarkCount(b *testing.B) {
	s := NewShape(1<<20 - 7)
	total := 0
	for i := 0; i < b.N; i++ {
		total += s.Count(i%(2*s.Cap-1) + 1)
	}
	_ = total
}
