package segtree

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// This file implements the node labeling of Definition 2 and Lemma 1.
//
// Within one segment tree, Index follows heap arithmetic: the root of the
// primary tree T' has Index 1; a left child doubles its parent's Index, a
// right child doubles it and adds one; and the root of any non-primary
// segment tree inherits Index(ancestor(v)) — the Index of the node whose
// descendant tree it roots.
//
// Because the absolute Index grows like (2n)^d it can overflow machine
// words for large inputs, so production code identifies nodes by Path — the
// chain ⟨(index, level)⟩ of heap positions along the ancestor chain across
// dimensions — encoded compactly as a byte string (PathKey). The numeric
// Index is still provided for small trees and for the tests that verify
// Definition 2 literally.

// PathIndex is the paper's path_index(v) = ⟨index(v), level(v)⟩ restricted
// to one dimension: the heap index of v within its own segment tree,
// together with the Index of the tree's anchor (the node it descends from).
type PathIndex struct {
	Heap  uint64 // heap index of v within its segment tree (root = 1)
	Level int    // paper's Level(v) inside its segment tree
}

// Index computes the paper's absolute Index of a node whose segment tree
// is anchored at a node of absolute index anchor: descending δ levels from
// the tree root multiplies the anchor by 2^δ and adds the heap offset.
// Definition 2(ii): the root of a descendant tree inherits the anchor's
// Index, and each child step doubles (+1 for right children).
func Index(anchor uint64, heap int) uint64 {
	d := uint(Depth(heap))
	return anchor<<d + uint64(heap) - 1<<d
}

// PathKey is the byte-encoded Path(v): the sequence of heap indices of the
// ancestor chain from dimension 1 down to v's own segment tree, followed by
// v's heap index. Two nodes share a PathKey prefix exactly when one's
// segment tree contains the other's anchor chain; the full PathKey uniquely
// identifies a node of the range tree (Lemma 1).
type PathKey string

// RootPathKey is the PathKey of the primary tree's anchor (the empty
// chain).
const RootPathKey PathKey = ""

// Extend appends the heap index of one more chain element to a PathKey.
// Appending the anchor node u of a descendant tree to Path(u)'s own key
// yields the key that names that descendant tree (Lemma 1: path(ancestor)
// uniquely identifies the tree).
func (k PathKey) Extend(heap int) PathKey {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(heap))
	return k + PathKey(buf[:n])
}

// Components decodes the chain of heap indices in the key.
func (k PathKey) Components() []uint64 {
	var out []uint64
	b := []byte(k)
	for len(b) > 0 {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			panic("segtree: corrupt PathKey")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out
}

// String renders the key human-readably, e.g. "⟨1.5.12⟩".
func (k PathKey) String() string {
	comps := k.Components()
	if len(comps) == 0 {
		return "⟨root⟩"
	}
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "⟨" + strings.Join(parts, ".") + "⟩"
}

// Dim reports which dimension a tree named by this key lives in: the
// primary tree (empty key) is dimension 1, and each chain element descends
// one dimension.
func (k PathKey) Dim() int { return len(k.Components()) + 1 }
