// Package model turns the paper's cost theorems into calibrated
// predictions. Theorem 2 prices construction at O(s/p) local work plus a
// constant number of h-relations; Theorem 3 prices the search of m = O(n)
// queries at O(s·log n / p) plus the same communication term. Fitting the
// two unknown constants (per-record work and effective bandwidth share)
// against one measured configuration turns each theorem into a predictor
// for every other (n, p) — the E14 experiment scores those predictions,
// which is the strongest check that the implementation actually follows
// the claimed complexity and not merely its shape.
package model

import (
	"math"

	"repro/internal/cgm"
)

// Workload sizes the theorem formulas. S is the structure size
// (n·log^(d-1) n records), Rounds the algorithm's fixed superstep count,
// and Work the theorem's local-computation term for one processor at p=1
// (e.g. s for construction, s·log n for search).
type Workload struct {
	S      float64
	Work   float64
	Rounds int
}

// ConstructWorkload builds the Theorem 2 workload for (n, d).
func ConstructWorkload(n, d int) Workload {
	s := structureSize(n, d)
	return Workload{S: s, Work: s, Rounds: 8 * d}
}

// SearchWorkload builds the Theorem 3 workload for m queries on (n, d).
func SearchWorkload(n, d, m int) Workload {
	s := structureSize(n, d)
	// The batch bound is s·log n / p scaled by the batch fraction m/n.
	return Workload{S: s, Work: s * math.Log2(float64(n)) * float64(m) / float64(n), Rounds: 5}
}

func structureSize(n, d int) float64 {
	s := float64(n)
	for i := 1; i < d; i++ {
		s *= math.Log2(float64(n))
	}
	return s
}

// Params are the calibrated machine constants: A is the local cost per
// work unit (ns), B the communication cost per record of h (ns), L the
// per-round latency (ns).
type Params struct {
	A, B, L float64
}

// Predict evaluates the theorem formula T(p) = A·Work/p + Rounds·(B·S/p + L):
// local work divided by p, plus the constant rounds each moving an
// h = O(S/p) relation.
func Predict(w Workload, pm Params, p int) float64 {
	fp := float64(p)
	return pm.A*w.Work/fp + float64(w.Rounds)*(pm.B*w.S/fp+pm.L)
}

// Fit calibrates Params from two measurements of the same workload at
// different machine widths (p1 < p2), holding L fixed (the simulator's
// configured round latency). Two equations in A and B:
//
//	T_i = A·Work/p_i + Rounds·B·S/p_i + Rounds·L
func Fit(w Workload, p1 int, t1 cgm.Metrics, p2 int, t2 cgm.Metrics, l float64) Params {
	y1 := float64(t1.ModelTime(cgm.DefaultG, cgm.DefaultL)) - float64(w.Rounds)*l
	y2 := float64(t2.ModelTime(cgm.DefaultG, cgm.DefaultL)) - float64(w.Rounds)*l
	// y_i = (A·Work + Rounds·B·S) / p_i — one effective constant; split it
	// by attributing the measured communication volume share.
	// Effective combined constant from the first point:
	c1 := y1 * float64(p1)
	c2 := y2 * float64(p2)
	c := (c1 + c2) / 2
	// Attribute to A and B proportionally to the workload terms, using
	// the simulator's known g as the communication seed.
	commShare := float64(w.Rounds) * cgm.DefaultG * w.S
	if commShare > c {
		commShare = c / 2
	}
	return Params{
		A: (c - commShare) / w.Work,
		B: cgm.DefaultG,
		L: l,
	}
}

// Score compares predictions against measurements: it returns the
// geometric-mean multiplicative error over the (p, measured) pairs.
func Score(w Workload, pm Params, measured map[int]float64) float64 {
	if len(measured) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for p, t := range measured {
		pred := Predict(w, pm, p)
		if pred <= 0 || t <= 0 {
			return math.Inf(1)
		}
		r := pred / t
		if r < 1 {
			r = 1 / r
		}
		logSum += math.Log(r)
	}
	return math.Exp(logSum / float64(len(measured)))
}
