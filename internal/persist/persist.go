// Package persist serializes built structures. Because Algorithm
// Construct is deterministic, the durable representation of a distributed
// range tree is its rank-space point set plus the build parameters: saving
// writes a versioned, checksummed snapshot; loading rebuilds the identical
// structure (possibly on a machine of a different width — the snapshot is
// machine-independent, exactly as a dataset moved between multicomputers
// would be).
package persist

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// Version is the snapshot format version. Version 2 is the raw layout
// below; version-1 (gob) snapshots are still read transparently.
const Version = 2

// magic opens every version-2 snapshot. Its first byte cannot begin a gob
// stream (a gob stream opens with the uvarint byte count of its first
// type-descriptor message, always < 0x80), so Load distinguishes the raw
// layout from a legacy gob snapshot by peeking one frame, no flag days.
var magic = [4]byte{0xD7, 'R', 'T', '2'}

// The version-2 layout, using the wire primitives (uvarints for the small
// header fields, the standard point layout for the bulk payload):
//
//	magic (4B) · version · dims · p · backend · seq (8B LE)
//	· points (wire.AppendPoints) · checksum (8B LE)
//
// Loading slices the point section through one coordinate arena exactly
// like a received exchange block — a store restart no longer pays a gob
// round-trip per point.

// Snapshot is the serializable description of a point set with optional
// build parameters.
type Snapshot struct {
	Version int
	Dims    int
	P       int // machine width at save time (informational)
	// Backend is the element backend the tree was built with; Load
	// rebuilds on the same one. Older snapshots decode it as the zero
	// value, which is the default backend.
	Backend core.Backend
	// Seq is the data version the snapshot captures (the mutable store's
	// checkpoint stamp); older snapshots decode it as 0.
	Seq      uint64
	Points   []geom.Point
	Checksum uint64
}

// checksum folds every coordinate and ID into an FNV-1a hash.
func checksum(pts []geom.Point) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4)
	put := func(v int32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf)
	}
	for _, p := range pts {
		put(p.ID)
		for _, x := range p.X {
			put(x)
		}
	}
	return h.Sum64()
}

// Save writes a snapshot of the distributed tree (points, parameters and
// the element backend it was built with).
func Save(w io.Writer, t *core.Tree) error {
	return savePoints(w, t.AllPoints(), t.P(), t.Backend())
}

// SavePoints writes a snapshot of a raw rank point set (default backend).
func SavePoints(w io.Writer, pts []geom.Point, p int) error {
	return savePoints(w, pts, p, core.BackendLayered)
}

func savePoints(w io.Writer, pts []geom.Point, p int, be core.Backend) error {
	if len(pts) == 0 {
		return fmt.Errorf("persist: refusing to save an empty point set")
	}
	snap := Snapshot{
		Version:  Version,
		Dims:     pts[0].Dims(),
		P:        p,
		Backend:  be,
		Points:   pts,
		Checksum: checksum(pts),
	}
	return writeSnap(w, &snap)
}

// SaveSet writes a snapshot of a raw point set that may be empty — the
// mutable store's checkpoint path, which must be able to capture a store
// whose every point has been deleted. dims must be supplied explicitly
// because an empty set cannot reveal it; be records the element backend
// the saving store builds on; seq stamps the data version the set was
// captured at.
func SaveSet(w io.Writer, pts []geom.Point, dims, p int, be core.Backend, seq uint64) error {
	if dims < 1 {
		return fmt.Errorf("persist: set snapshot needs at least one dimension")
	}
	snap := Snapshot{
		Version:  Version,
		Dims:     dims,
		P:        p,
		Backend:  be,
		Seq:      seq,
		Points:   pts,
		Checksum: checksum(pts),
	}
	return writeSnap(w, &snap)
}

// writeSnap writes the version-2 raw layout in one Write call, through a
// pooled buffer.
func writeSnap(w io.Writer, snap *Snapshot) error {
	b := wire.GetBuf()
	b = append(b, magic[:]...)
	b = wire.AppendUvarint(b, uint64(snap.Version))
	b = wire.AppendUvarint(b, uint64(snap.Dims))
	b = wire.AppendUvarint(b, uint64(snap.P))
	b = wire.AppendUvarint(b, uint64(snap.Backend))
	b = wire.AppendU64(b, snap.Seq)
	b = wire.AppendPoints(b, snap.Points)
	b = wire.AppendU64(b, snap.Checksum)
	_, err := w.Write(b)
	wire.PutBuf(b)
	if err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	return nil
}

// LoadSet reads and validates a snapshot that may hold no points (the
// checkpoint counterpart of SaveSet).
func LoadSet(r io.Reader) (*Snapshot, error) {
	return load(r, true)
}

// LoadPoints reads and validates a snapshot.
func LoadPoints(r io.Reader) (*Snapshot, error) {
	return load(r, false)
}

func load(r io.Reader, allowEmpty bool) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic))
	if err == nil && [4]byte(head) == magic {
		return loadRaw(br, allowEmpty)
	}
	// Legacy version-1 snapshot: one gob message.
	var snap Snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("persist: gob snapshot version %d, this build reads 1 (gob) and %d (raw)", snap.Version, Version)
	}
	return validate(&snap, allowEmpty)
}

// loadRaw parses a version-2 snapshot (the magic is still unconsumed).
func loadRaw(br *bufio.Reader, allowEmpty bool) (*Snapshot, error) {
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	rd := wire.NewReader(data[len(magic):])
	var snap Snapshot
	snap.Version = int(rd.Uvarint())
	if snap.Version != Version {
		return nil, fmt.Errorf("persist: snapshot version %d, this build reads %d", snap.Version, Version)
	}
	snap.Dims = int(rd.Uvarint())
	snap.P = int(rd.Uvarint())
	snap.Backend = core.Backend(rd.Uvarint())
	snap.Seq = rd.U64()
	arena := wire.NewArena(&rd)
	snap.Points = wire.ReadPoints(&rd, &arena)
	snap.Checksum = rd.U64()
	if err := rd.Finish(); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot: %w", err)
	}
	return validate(&snap, allowEmpty)
}

func validate(snap *Snapshot, allowEmpty bool) (*Snapshot, error) {
	if snap.Dims < 1 {
		return nil, fmt.Errorf("persist: snapshot header has %d dims", snap.Dims)
	}
	if len(snap.Points) == 0 && !allowEmpty {
		return nil, fmt.Errorf("persist: snapshot holds no points")
	}
	for i, p := range snap.Points {
		if p.Dims() != snap.Dims {
			return nil, fmt.Errorf("persist: point %d has %d dims, header says %d", i, p.Dims(), snap.Dims)
		}
	}
	if got := checksum(snap.Points); got != snap.Checksum {
		return nil, fmt.Errorf("persist: checksum mismatch: %x vs header %x", got, snap.Checksum)
	}
	return snap, nil
}

// encodeRaw writes a snapshot in the version-2 layout without recomputing
// the checksum or version (tests use it to craft invalid streams).
func encodeRaw(w io.Writer, snap *Snapshot) error {
	return writeSnap(w, snap)
}

// Load reads a snapshot and rebuilds the distributed tree on mach (which
// may have a different width than the saving machine), on the element
// backend recorded at save time.
func Load(r io.Reader, mach *cgm.Machine) (*core.Tree, error) {
	snap, err := LoadPoints(r)
	if err != nil {
		return nil, err
	}
	return core.BuildBackend(mach, snap.Points, snap.Backend), nil
}
