package persist

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

func buildSample(n, d, p int) *core.Tree {
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 7})
	return core.Build(cgm.New(cgm.Config{P: p}), pts)
}

func TestRoundTripSameWidth(t *testing.T) {
	dt := buildSample(200, 2, 4)
	var buf bytes.Buffer
	if err := Save(&buf, dt); err != nil {
		t.Fatal(err)
	}
	dt2, err := Load(&buf, cgm.New(cgm.Config{P: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if dt2.Verify() != nil {
		t.Fatal("reloaded tree fails verification")
	}
	// Identical query behaviour.
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 25; q++ {
		lo := []geom.Coord{geom.Coord(rng.Intn(200)), geom.Coord(rng.Intn(200))}
		hi := []geom.Coord{lo[0] + 30, lo[1] + 30}
		b := geom.Box{Lo: lo, Hi: hi}
		if dt.CountBatch([]geom.Box{b})[0] != dt2.CountBatch([]geom.Box{b})[0] {
			t.Fatalf("reloaded tree disagrees on %v", b)
		}
	}
}

func TestRoundTripDifferentWidth(t *testing.T) {
	dt := buildSample(150, 2, 8)
	var buf bytes.Buffer
	if err := Save(&buf, dt); err != nil {
		t.Fatal(err)
	}
	dt2, err := Load(&buf, cgm.New(cgm.Config{P: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if dt2.P() != 3 {
		t.Fatalf("reloaded width %d", dt2.P())
	}
	bf := brute.New(dt.AllPoints())
	b := geom.NewBox([]geom.Coord{10, 10}, []geom.Coord{100, 100})
	if dt2.CountBatch([]geom.Box{b})[0] != int64(bf.Count(b)) {
		t.Fatal("cross-width reload answers wrongly")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dt := buildSample(100, 2, 2)
	var buf bytes.Buffer
	if err := Save(&buf, dt); err != nil {
		t.Fatal(err)
	}
	// Flip one byte near the middle of the stream.
	data := buf.Bytes()
	data[len(data)/2] ^= 0x40
	_, err := LoadPoints(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

func TestVersionGuard(t *testing.T) {
	pts := workload.Points(workload.PointSpec{N: 10, Dims: 1, Dist: workload.Uniform, Seed: 1})
	var buf bytes.Buffer
	if err := SavePoints(&buf, pts, 1); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by decoding raw and re-saving.
	snap, err := LoadPoints(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf2 bytes.Buffer
	if err := encodeRaw(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPoints(&buf2); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
}

func TestEmptySaveRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SavePoints(&buf, nil, 1); err == nil {
		t.Fatal("empty save accepted")
	}
}

func TestSetRoundTripAllowsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSet(&buf, nil, 3, 4, core.BackendLayered, 17); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dims != 3 || snap.P != 4 || snap.Seq != 17 || len(snap.Points) != 0 {
		t.Fatalf("empty set round trip: %+v", snap)
	}
	// LoadPoints keeps refusing empty snapshots.
	var buf2 bytes.Buffer
	if err := SaveSet(&buf2, nil, 3, 4, core.BackendLayered, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPoints(&buf2); err == nil {
		t.Fatal("LoadPoints accepted an empty set snapshot")
	}
}

func TestSetRoundTripCarriesSeq(t *testing.T) {
	pts := workload.Points(workload.PointSpec{N: 40, Dims: 2, Dist: workload.Uniform, Seed: 3})
	var buf bytes.Buffer
	if err := SaveSet(&buf, pts, 2, 8, core.BackendRangeTree, 12345); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 12345 || len(snap.Points) != 40 {
		t.Fatalf("set snapshot: seq %d, %d points", snap.Seq, len(snap.Points))
	}
	if snap.Backend != core.BackendRangeTree {
		t.Fatalf("set snapshot backend %v, want the saving store's", snap.Backend)
	}
	if err := SaveSet(&buf, pts, 0, 8, core.BackendLayered, 1); err == nil {
		t.Fatal("set snapshot without dims accepted")
	}
}

// A snapshot written by a version-1 build (one gob message, no magic)
// must keep loading: durable data outlives the codec change.
func TestLegacyGobSnapshotStillLoads(t *testing.T) {
	pts := workload.Points(workload.PointSpec{N: 60, Dims: 2, Dist: workload.Uniform, Seed: 5})
	v1 := Snapshot{
		Version:  1,
		Dims:     2,
		P:        4,
		Backend:  core.BackendRangeTree,
		Seq:      77,
		Points:   pts,
		Checksum: checksum(pts),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v1); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 gob snapshot refused: %v", err)
	}
	if snap.Dims != 2 || snap.P != 4 || snap.Seq != 77 || snap.Backend != core.BackendRangeTree ||
		len(snap.Points) != len(pts) {
		t.Fatalf("v1 snapshot misread: %+v", snap)
	}
	// And a gob snapshot claiming an unknown version is refused, not
	// misread as v1.
	v1.Version = 7
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSet(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown gob version accepted: %v", err)
	}
}

func TestGarbageStream(t *testing.T) {
	if _, err := LoadPoints(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRoundTripPreservesBackend(t *testing.T) {
	pts := workload.Points(workload.PointSpec{N: 150, Dims: 2, Dist: workload.Uniform, Seed: 9})
	for _, be := range []core.Backend{core.BackendLayered, core.BackendRangeTree, core.BackendBrute} {
		dt := core.BuildBackend(cgm.New(cgm.Config{P: 3}), pts, be)
		var buf bytes.Buffer
		if err := Save(&buf, dt); err != nil {
			t.Fatal(err)
		}
		dt2, err := Load(&buf, cgm.New(cgm.Config{P: 5}))
		if err != nil {
			t.Fatal(err)
		}
		if dt2.Backend() != be {
			t.Errorf("reloaded tree backend %v, want %v", dt2.Backend(), be)
		}
	}
}
