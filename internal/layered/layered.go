// Package layered implements the layered range tree the paper cites as
// the improved sequential structure (§1): "an improved version of this
// structure, known as the layered range tree, saves a factor of log n in
// the search time". The last two dimensions are replaced by one segment
// tree whose nodes carry arrays sorted by the final coordinate, linked by
// fractional-cascading bridges, so a d-dimensional query costs
// O(log^(d-1) n + k) instead of O(log^d n + k).
//
// Beyond the sequential extension experiment (E11), the layered tree is
// the default element backend of the distributed pipeline: package core
// builds forest elements on it (core.BackendLayered) and serves phase-C
// subqueries through the zero-allocation Visitor API below.
package layered

import (
	"slices"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/segtree"
)

// buildSorts counts full comparison sorts performed during construction.
// Construction must sort each needed dimension exactly once at the top and
// split the orders stably down the tree; the test suite asserts the count.
var buildSorts atomic.Int64

// Tree is a layered range tree over dimensions StartDim..Dims-1.
// Three shapes:
//   - one remaining dimension: a sorted array (binary search + scan);
//   - two remaining dimensions: the cascaded structure;
//   - more: a segment tree with descendant layered trees, exactly like the
//     classical range tree's upper dimensions.
type Tree struct {
	Dims     int
	StartDim int

	// upper levels (Dims-StartDim > 2)
	shape segtree.Shape
	pts   []geom.Point // sorted by StartDim
	desc  []*Tree

	// two remaining dimensions
	two *cascade

	// one remaining dimension
	one []geom.Point // sorted by the final coordinate
}

// cascade is the fractional-cascading structure for the final two
// dimensions: a segment tree over dimension X whose every node stores its
// points sorted by dimension Y plus bridges into its children's arrays.
type cascade struct {
	x, y  int // global dimension indices
	shape segtree.Shape
	byX   []geom.Point // leaf order (sorted by x)
	// arr[v] is node v's points sorted by (y, ID); bridgeL/bridgeR[v][i]
	// is the position in the left/right child's array of the first entry
	// ≥ arr[v][i] (length len(arr[v])+1, last entry = child length).
	arr     [][]geom.Point
	bridgeL [][]int32
	bridgeR [][]int32
}

// Build constructs a layered range tree over all dimensions of pts.
func Build(pts []geom.Point) *Tree {
	if len(pts) == 0 {
		panic("layered: empty point set")
	}
	return BuildFrom(pts, 0)
}

// BuildFrom constructs a layered range tree over dimensions
// startDim..Dims-1 only — the shape of the paper's forest elements, which
// are range trees "of dimension j ≤ d" (Definition 3).
func BuildFrom(pts []geom.Point, startDim int) *Tree {
	if len(pts) == 0 {
		panic("layered: empty point set")
	}
	dims := pts[0].Dims()
	if startDim < 0 || startDim >= dims {
		panic("layered: startDim out of range")
	}
	// Sort once per dimension that needs an explicit order. The cascade's
	// y-sorted arrays come out of the bottom-up merge for free, so only
	// dimensions startDim..dims-2 are sorted (just dims-1 when d-j = 1);
	// every level below reuses its slice of these orders by stable
	// partition, keeping construction within O(n·log^(d-1) n).
	remaining := dims - startDim
	if remaining == 1 {
		return &Tree{Dims: dims, StartDim: startDim, one: sortedBy(pts, dims-1)}
	}
	orders := make([][]geom.Point, remaining-1)
	for k := range orders {
		orders[k] = sortedBy(pts, startDim+k)
	}
	return buildLevels(orders, startDim, dims)
}

// buildLevels builds the tree for orders[0] (sorted by startDim) and
// attaches descendant trees built from stable splits of the remaining
// orders. orders covers dimensions startDim..dims-2.
func buildLevels(orders [][]geom.Point, startDim, dims int) *Tree {
	if dims-startDim == 2 {
		return &Tree{Dims: dims, StartDim: startDim, two: buildCascade(orders[0], startDim, startDim+1)}
	}
	t := &Tree{Dims: dims, StartDim: startDim, pts: orders[0]}
	t.shape = segtree.NewShape(len(t.pts))
	t.desc = make([]*Tree, t.shape.NumNodes()+1)
	// Split the orders down the heap; a node with at least two points gets
	// descendant(v) built from its own slice of every deeper order.
	var fill func(v int, tails [][]geom.Point)
	fill = func(v int, tails [][]geom.Point) {
		c := len(tails[0])
		if c < 2 {
			return
		}
		lo, _ := t.shape.PosRange(v)
		mid := lo + (t.shape.Cap >> (segtree.Depth(v) + 1)) // first position of right child
		if mid < lo+c {
			// Both children have real points: split each deeper order
			// stably against the first point of the right child.
			pivot := tails[0][mid-lo]
			lefts := make([][]geom.Point, len(tails)-1)
			rights := make([][]geom.Point, len(tails)-1)
			for k, tail := range tails[1:] {
				l := make([]geom.Point, 0, mid-lo)
				r := make([]geom.Point, 0, c-(mid-lo))
				for _, p := range tail {
					if lessInDim(p, pivot, startDim) {
						l = append(l, p)
					} else {
						r = append(r, p)
					}
				}
				lefts[k], rights[k] = l, r
			}
			fill(segtree.Left(v), prepend(tails[0][:mid-lo], lefts))
			fill(segtree.Right(v), prepend(tails[0][mid-lo:], rights))
		} else {
			// All real points are in the left child.
			fill(segtree.Left(v), tails)
		}
		t.desc[v] = buildLevels(tails[1:], startDim+1, dims)
	}
	fill(t.shape.Root(), orders)
	return t
}

// prepend builds [head, tails...] without mutating tails.
func prepend(head []geom.Point, tails [][]geom.Point) [][]geom.Point {
	out := make([][]geom.Point, 0, len(tails)+1)
	out = append(out, head)
	return append(out, tails...)
}

// cmpInDim and lessInDim alias geom's shared (X[dim], ID) total order —
// the top-level sorts, the cascade merge and the stable partition must
// agree on it.
func cmpInDim(a, b geom.Point, dim int) int   { return geom.CmpInDim(a, b, dim) }
func lessInDim(a, b geom.Point, dim int) bool { return geom.LessInDim(a, b, dim) }

func sortedBy(pts []geom.Point, dim int) []geom.Point {
	buildSorts.Add(1)
	out := make([]geom.Point, len(pts))
	copy(out, pts)
	slices.SortFunc(out, func(a, b geom.Point) int { return cmpInDim(a, b, dim) })
	return out
}

// buildCascade assembles the two-dimensional cascaded structure bottom-up
// from the x-sorted leaf order: each node's array is the merge of its
// children's (yielding the y order with no further sorting), and the
// bridges are recorded during the merge.
func buildCascade(byX []geom.Point, x, y int) *cascade {
	c := &cascade{x: x, y: y, byX: byX}
	c.shape = segtree.NewShape(len(c.byX))
	n := c.shape.NumNodes() + 1
	c.arr = make([][]geom.Point, n)
	c.bridgeL = make([][]int32, n)
	c.bridgeR = make([][]int32, n)
	for pos := range c.byX {
		c.arr[c.shape.LeafNode(pos)] = c.byX[pos : pos+1 : pos+1]
	}
	for v := c.shape.Cap - 1; v >= 1; v-- {
		l, r := c.arr[segtree.Left(v)], c.arr[segtree.Right(v)]
		if len(l) == 0 && len(r) == 0 {
			continue
		}
		merged := make([]geom.Point, 0, len(l)+len(r))
		bl := make([]int32, 0, len(l)+len(r)+1)
		br := make([]int32, 0, len(l)+len(r)+1)
		i, j := 0, 0
		for i < len(l) || j < len(r) {
			bl = append(bl, int32(i))
			br = append(br, int32(j))
			if j >= len(r) || (i < len(l) && !lessInDim(r[j], l[i], y)) {
				merged = append(merged, l[i])
				i++
			} else {
				merged = append(merged, r[j])
				j++
			}
		}
		bl = append(bl, int32(len(l)))
		br = append(br, int32(len(r)))
		c.arr[v] = merged
		c.bridgeL[v] = bl
		c.bridgeR[v] = br
	}
	return c
}

// N reports the number of points.
func (t *Tree) N() int {
	switch {
	case t.one != nil:
		return len(t.one)
	case t.two != nil:
		return len(t.two.byX)
	default:
		return len(t.pts)
	}
}

// Nodes reports the structure size in stored entries (array slots plus
// tree nodes) — comparable to rangetree.Tree.Nodes for E11's space column.
func (t *Tree) Nodes() int {
	switch {
	case t.one != nil:
		return len(t.one)
	case t.two != nil:
		total := 0
		for _, a := range t.two.arr {
			total += len(a)
		}
		return total
	default:
		total := 0
		for v := 1; v < 2*t.shape.Cap; v++ {
			if t.shape.Count(v) == 0 {
				continue
			}
			total++
			if t.desc[v] != nil {
				total += t.desc[v].Nodes()
			}
		}
		return total
	}
}

// Visitor receives a query result without per-node allocations: ranges
// arrive as sub-slices of the tree's own sorted arrays (callers must not
// mutate them), single points individually. Together the callbacks cover
// R(q) exactly once. A reused Visitor implementation makes the whole
// descent allocation-free — the property the distributed pipeline's
// phase-C serving relies on.
type Visitor interface {
	// VisitRange observes one maximal run, sorted by the final coordinate.
	VisitRange(pts []geom.Point)
	// VisitPoint observes one individually verified point.
	VisitPoint(p geom.Point)
}

// Visit enumerates the query result through v: the hot-path variant of
// Search, with no adapter between the descent and the consumer.
func (t *Tree) Visit(b geom.Box, v Visitor) {
	if b.Dims() != t.Dims {
		panic("layered: query dimensionality mismatch")
	}
	t.scan(b, v)
}

// funcSink adapts the closure-based Search API to the Visitor descent.
type funcSink struct {
	sel func([]geom.Point)
	pt  func(geom.Point)
}

func (s *funcSink) VisitRange(pts []geom.Point) { s.sel(pts) }
func (s *funcSink) VisitPoint(p geom.Point)     { s.pt(p) }

// Search enumerates the query result: ranges of cascaded arrays via sel
// (array slice per canonical node) and individually verified points via
// pt. Together they cover R(q) exactly once.
func (t *Tree) Search(b geom.Box, sel func(pts []geom.Point), pt func(geom.Point)) {
	if b.Dims() != t.Dims {
		panic("layered: query dimensionality mismatch")
	}
	t.scan(b, &funcSink{sel: sel, pt: pt})
}

// scan is the shared traversal behind Search, Visit, Count and Report.
// Agg.Query mirrors it with a threaded accumulator (agg.go), because the
// aggregate tables are keyed by the structural positions this descent
// resolves.
func (t *Tree) scan(b geom.Box, s Visitor) {
	switch {
	case t.one != nil:
		dim := t.Dims - 1
		iv := b.Dim(dim)
		if iv.Empty() {
			return
		}
		lo := searchY(t.one, dim, iv.Lo)
		hi := len(t.one)
		if iv.Hi < 1<<31-1 { // guard Hi+1 overflow on unbounded boxes
			hi = searchY(t.one, dim, iv.Hi+1)
		}
		if lo < hi {
			s.VisitRange(t.one[lo:hi])
		}
	case t.two != nil:
		t.two.scan(b, s)
	default:
		iv := b.Dim(t.StartDim)
		if iv.Empty() {
			return
		}
		t.descend(t.shape.Root(), b, iv, s)
	}
}

// descend is the upper-level four-case descent as a plain recursive method
// (no per-query closures).
func (t *Tree) descend(v int, b geom.Box, iv geom.Interval, s Visitor) {
	lo, hi := t.shape.PosRange(v)
	if lo >= t.shape.M {
		return
	}
	if hi > t.shape.M {
		hi = t.shape.M
	}
	span := geom.Interval{Lo: t.pts[lo].X[t.StartDim], Hi: t.pts[hi-1].X[t.StartDim]}
	if !iv.Overlaps(span) {
		return
	}
	if iv.ContainsInterval(span) {
		if hi-lo == 1 {
			p := t.pts[lo]
			if b.ContainsFrom(p, t.StartDim+1) {
				s.VisitPoint(p)
			}
			return
		}
		t.desc[v].scan(b, s)
		return
	}
	t.descend(segtree.Left(v), b, iv, s)
	t.descend(segtree.Right(v), b, iv, s)
}

// scan runs the cascaded two-dimensional query: one binary search at the
// root, then O(1) bridge following per visited node.
func (c *cascade) scan(b geom.Box, s Visitor) {
	ivx := b.Dim(c.x)
	ivy := b.Dim(c.y)
	if ivx.Empty() || ivy.Empty() || len(c.byX) == 0 {
		return
	}
	root := c.shape.Root()
	rootArr := c.arr[root]
	yLo := searchY(rootArr, c.y, ivy.Lo)
	yHi := len(rootArr)
	if ivy.Hi < 1<<31-1 { // guard Hi+1 overflow on unbounded boxes
		yHi = searchY(rootArr, c.y, ivy.Hi+1)
	}
	c.descend(root, yLo, yHi, ivx, s)
}

func (c *cascade) descend(v, pLo, pHi int, ivx geom.Interval, s Visitor) {
	if pLo >= pHi {
		return // no y-matching points below
	}
	lo, hi := c.shape.PosRange(v)
	if lo >= c.shape.M {
		return
	}
	if hi > c.shape.M {
		hi = c.shape.M
	}
	span := geom.Interval{Lo: c.byX[lo].X[c.x], Hi: c.byX[hi-1].X[c.x]}
	if !ivx.Overlaps(span) {
		return
	}
	if ivx.ContainsInterval(span) {
		s.VisitRange(c.arr[v][pLo:pHi])
		return
	}
	c.descend(segtree.Left(v), int(c.bridgeL[v][pLo]), int(c.bridgeL[v][pHi]), ivx, s)
	c.descend(segtree.Right(v), int(c.bridgeR[v][pLo]), int(c.bridgeR[v][pHi]), ivx, s)
}

// searchY returns the first index whose y-coordinate is ≥ bound (a manual
// lower bound: this sits on the query hot path, where sort.Search's
// closure overhead is measurable).
func searchY(arr []geom.Point, y int, bound geom.Coord) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid].X[y] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// reportSink appends the result into a reused buffer.
type reportSink struct{ out []geom.Point }

func (s *reportSink) VisitRange(pts []geom.Point) { s.out = append(s.out, pts...) }
func (s *reportSink) VisitPoint(p geom.Point)     { s.out = append(s.out, p) }

// Report returns the points of b.
func (t *Tree) Report(b geom.Box) []geom.Point {
	if b.Dims() != t.Dims {
		panic("layered: query dimensionality mismatch")
	}
	var s reportSink
	t.scan(b, &s)
	return s.out
}

// countSink tallies the result without materializing it.
type countSink struct{ total int }

func (s *countSink) VisitRange(pts []geom.Point) { s.total += len(pts) }
func (s *countSink) VisitPoint(geom.Point)       { s.total++ }

// Count returns |R(q)|.
func (t *Tree) Count(b geom.Box) int {
	if b.Dims() != t.Dims {
		panic("layered: query dimensionality mismatch")
	}
	var s countSink
	t.scan(b, &s)
	return s.total
}
