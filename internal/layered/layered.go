// Package layered implements the layered range tree the paper cites as
// the improved sequential structure (§1): "an improved version of this
// structure, known as the layered range tree, saves a factor of log n in
// the search time". The last two dimensions are replaced by one segment
// tree whose nodes carry arrays sorted by the final coordinate, linked by
// fractional-cascading bridges, so a d-dimensional query costs
// O(log^(d-1) n + k) instead of O(log^d n + k).
//
// The package is a sequential extension experiment (E11); the distributed
// algorithms of package core use plain range trees, as in the paper.
package layered

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/segtree"
)

// Tree is a layered range tree over dimensions StartDim..Dims-1.
// Three shapes:
//   - one remaining dimension: a sorted array (binary search + scan);
//   - two remaining dimensions: the cascaded structure;
//   - more: a segment tree with descendant layered trees, exactly like the
//     classical range tree's upper dimensions.
type Tree struct {
	Dims     int
	StartDim int

	// upper levels (Dims-StartDim > 2)
	shape segtree.Shape
	pts   []geom.Point // sorted by StartDim
	desc  []*Tree

	// two remaining dimensions
	two *cascade

	// one remaining dimension
	one []geom.Point // sorted by the final coordinate
}

// cascade is the fractional-cascading structure for the final two
// dimensions: a segment tree over dimension X whose every node stores its
// points sorted by dimension Y plus bridges into its children's arrays.
type cascade struct {
	x, y  int // global dimension indices
	shape segtree.Shape
	byX   []geom.Point // leaf order (sorted by x)
	// arr[v] is node v's points sorted by (y, ID); bridgeL/bridgeR[v][i]
	// is the position in the left/right child's array of the first entry
	// ≥ arr[v][i] (length len(arr[v])+1, last entry = child length).
	arr     [][]geom.Point
	bridgeL [][]int32
	bridgeR [][]int32
}

// Build constructs a layered range tree over all dimensions of pts.
func Build(pts []geom.Point) *Tree {
	if len(pts) == 0 {
		panic("layered: empty point set")
	}
	return BuildFrom(pts, 0)
}

// BuildFrom constructs a layered range tree over dimensions
// startDim..Dims-1 only.
func BuildFrom(pts []geom.Point, startDim int) *Tree {
	if len(pts) == 0 {
		panic("layered: empty point set")
	}
	dims := pts[0].Dims()
	if startDim < 0 || startDim >= dims {
		panic("layered: startDim out of range")
	}
	t := &Tree{Dims: dims, StartDim: startDim}
	remaining := dims - startDim
	switch {
	case remaining == 1:
		t.one = sortedBy(pts, startDim)
	case remaining == 2:
		t.two = buildCascade(pts, startDim, startDim+1)
	default:
		t.pts = sortedBy(pts, startDim)
		t.shape = segtree.NewShape(len(t.pts))
		t.desc = make([]*Tree, t.shape.NumNodes()+1)
		var fill func(v int, sub []geom.Point)
		fill = func(v int, sub []geom.Point) {
			if len(sub) < 2 {
				return
			}
			t.desc[v] = BuildFrom(sub, startDim+1)
			lo, _ := t.shape.PosRange(v)
			mid := lo + (t.shape.Cap >> (segtree.Depth(v) + 1))
			if mid >= lo+len(sub) {
				fill(segtree.Left(v), sub)
				return
			}
			fill(segtree.Left(v), sub[:mid-lo])
			fill(segtree.Right(v), sub[mid-lo:])
		}
		fill(t.shape.Root(), t.pts)
	}
	return t
}

func sortedBy(pts []geom.Point, dim int) []geom.Point {
	out := make([]geom.Point, len(pts))
	copy(out, pts)
	sort.Slice(out, func(a, b int) bool {
		if out[a].X[dim] != out[b].X[dim] {
			return out[a].X[dim] < out[b].X[dim]
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// buildCascade assembles the two-dimensional cascaded structure bottom-up:
// each node's array is the merge of its children's, and the bridges are
// recorded during the merge.
func buildCascade(pts []geom.Point, x, y int) *cascade {
	c := &cascade{x: x, y: y}
	c.byX = sortedBy(pts, x)
	c.shape = segtree.NewShape(len(c.byX))
	n := c.shape.NumNodes() + 1
	c.arr = make([][]geom.Point, n)
	c.bridgeL = make([][]int32, n)
	c.bridgeR = make([][]int32, n)
	for pos, pt := range c.byX {
		c.arr[c.shape.LeafNode(pos)] = []geom.Point{pt}
	}
	lessY := func(a, b geom.Point) bool {
		if a.X[y] != b.X[y] {
			return a.X[y] < b.X[y]
		}
		return a.ID < b.ID
	}
	for v := c.shape.Cap - 1; v >= 1; v-- {
		l, r := c.arr[segtree.Left(v)], c.arr[segtree.Right(v)]
		if len(l) == 0 && len(r) == 0 {
			continue
		}
		merged := make([]geom.Point, 0, len(l)+len(r))
		bl := make([]int32, 0, len(l)+len(r)+1)
		br := make([]int32, 0, len(l)+len(r)+1)
		i, j := 0, 0
		for i < len(l) || j < len(r) {
			bl = append(bl, int32(i))
			br = append(br, int32(j))
			if j >= len(r) || (i < len(l) && !lessY(r[j], l[i])) {
				merged = append(merged, l[i])
				i++
			} else {
				merged = append(merged, r[j])
				j++
			}
		}
		bl = append(bl, int32(len(l)))
		br = append(br, int32(len(r)))
		c.arr[v] = merged
		c.bridgeL[v] = bl
		c.bridgeR[v] = br
	}
	return c
}

// N reports the number of points.
func (t *Tree) N() int {
	switch {
	case t.one != nil:
		return len(t.one)
	case t.two != nil:
		return len(t.two.byX)
	default:
		return len(t.pts)
	}
}

// Nodes reports the structure size in stored entries (array slots plus
// tree nodes) — comparable to rangetree.Tree.Nodes for E11's space column.
func (t *Tree) Nodes() int {
	switch {
	case t.one != nil:
		return len(t.one)
	case t.two != nil:
		total := 0
		for _, a := range t.two.arr {
			total += len(a)
		}
		return total
	default:
		total := 0
		for v := 1; v < 2*t.shape.Cap; v++ {
			if t.shape.Count(v) == 0 {
				continue
			}
			total++
			if t.desc[v] != nil {
				total += t.desc[v].Nodes()
			}
		}
		return total
	}
}

// Search enumerates the query result: ranges of cascaded arrays via sel
// (array slice per canonical node) and individually verified points via
// pt. Together they cover R(q) exactly once.
func (t *Tree) Search(b geom.Box, sel func(pts []geom.Point), pt func(geom.Point)) {
	if b.Dims() != t.Dims {
		panic("layered: query dimensionality mismatch")
	}
	t.search(b, sel, pt)
}

func (t *Tree) search(b geom.Box, sel func([]geom.Point), pt func(geom.Point)) {
	switch {
	case t.one != nil:
		dim := t.Dims - 1
		iv := b.Dim(dim)
		if iv.Empty() {
			return
		}
		lo := sort.Search(len(t.one), func(i int) bool { return t.one[i].X[dim] >= iv.Lo })
		hi := sort.Search(len(t.one), func(i int) bool { return t.one[i].X[dim] > iv.Hi })
		if lo < hi {
			sel(t.one[lo:hi])
		}
	case t.two != nil:
		t.two.search(b, sel)
	default:
		iv := b.Dim(t.StartDim)
		if iv.Empty() {
			return
		}
		var descend func(v int)
		descend = func(v int) {
			lo, hi := t.shape.PosRange(v)
			if lo >= t.shape.M {
				return
			}
			if hi > t.shape.M {
				hi = t.shape.M
			}
			span := geom.Interval{Lo: t.pts[lo].X[t.StartDim], Hi: t.pts[hi-1].X[t.StartDim]}
			if !iv.Overlaps(span) {
				return
			}
			if iv.ContainsInterval(span) {
				if hi-lo == 1 {
					p := t.pts[lo]
					if b.ContainsFrom(p, t.StartDim+1) {
						pt(p)
					}
					return
				}
				t.desc[v].search(b, sel, pt)
				return
			}
			descend(segtree.Left(v))
			descend(segtree.Right(v))
		}
		descend(t.shape.Root())
	}
}

// search runs the cascaded two-dimensional query: one binary search at the
// root, then O(1) bridge following per visited node.
func (c *cascade) search(b geom.Box, sel func([]geom.Point)) {
	ivx := b.Dim(c.x)
	ivy := b.Dim(c.y)
	if ivx.Empty() || ivy.Empty() || len(c.byX) == 0 {
		return
	}
	root := c.shape.Root()
	rootArr := c.arr[root]
	yLo := searchY(rootArr, c.y, ivy.Lo)
	yHi := len(rootArr)
	if ivy.Hi < 1<<31-1 { // guard Hi+1 overflow on unbounded boxes
		yHi = searchY(rootArr, c.y, ivy.Hi+1)
	}
	var descend func(v, pLo, pHi int)
	descend = func(v, pLo, pHi int) {
		if pLo >= pHi {
			return // no y-matching points below
		}
		lo, hi := c.shape.PosRange(v)
		if lo >= c.shape.M {
			return
		}
		if hi > c.shape.M {
			hi = c.shape.M
		}
		span := geom.Interval{Lo: c.byX[lo].X[c.x], Hi: c.byX[hi-1].X[c.x]}
		if !ivx.Overlaps(span) {
			return
		}
		if ivx.ContainsInterval(span) {
			sel(c.arr[v][pLo:pHi])
			return
		}
		descend(segtree.Left(v), int(c.bridgeL[v][pLo]), int(c.bridgeL[v][pHi]))
		descend(segtree.Right(v), int(c.bridgeR[v][pLo]), int(c.bridgeR[v][pHi]))
	}
	descend(root, yLo, yHi)
}

// searchY returns the first index whose y-coordinate is ≥ bound (a manual
// lower bound: this sits on the query hot path, where sort.Search's
// closure overhead is measurable).
func searchY(arr []geom.Point, y int, bound geom.Coord) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid].X[y] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Report returns the points of b.
func (t *Tree) Report(b geom.Box) []geom.Point {
	var out []geom.Point
	t.Search(b,
		func(pts []geom.Point) { out = append(out, pts...) },
		func(p geom.Point) { out = append(out, p) })
	return out
}

// Count returns |R(q)|.
func (t *Tree) Count(b geom.Box) int {
	total := 0
	t.Search(b,
		func(pts []geom.Point) { total += len(pts) },
		func(geom.Point) { total++ })
	return total
}
