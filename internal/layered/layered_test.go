package layered

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/rangetree"
)

func randomPoints(rng *rand.Rand, n, d int, normalize bool) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(3 * n))
		}
		pts[i] = geom.Point{ID: int32(i), X: x}
	}
	if normalize {
		geom.RankNormalize(pts)
	}
	return pts
}

func randomBox(rng *rand.Rand, n, d int) geom.Box {
	lo := make([]geom.Coord, d)
	hi := make([]geom.Coord, d)
	for j := 0; j < d; j++ {
		a := geom.Coord(rng.Intn(3*n) - n/2)
		b := geom.Coord(rng.Intn(3*n) - n/2)
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func TestEquivalenceWithBrute(t *testing.T) {
	for _, normalize := range []bool{true, false} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(130)
			d := 1 + rng.Intn(4)
			pts := randomPoints(rng, n, d, normalize)
			lt := Build(pts)
			bf := brute.New(pts)
			for q := 0; q < 12; q++ {
				b := randomBox(rng, n, d)
				if lt.Count(b) != bf.Count(b) {
					t.Logf("seed %d n=%d d=%d: count %d want %d", seed, n, d, lt.Count(b), bf.Count(b))
					return false
				}
				if !reflect.DeepEqual(brute.IDs(lt.Report(b)), brute.IDs(bf.Report(b))) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("normalize=%v: %v", normalize, err)
		}
	}
}

func TestMatchesRangeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n, d := 1+rng.Intn(120), 1+rng.Intn(3)
		pts := randomPoints(rng, n, d, true)
		lt := Build(pts)
		rt := rangetree.Build(pts)
		for q := 0; q < 8; q++ {
			b := randomBox(rng, n, d)
			if lt.Count(b) != rt.Count(b) {
				t.Fatalf("layered %d vs rangetree %d", lt.Count(b), rt.Count(b))
			}
		}
	}
}

func TestEmptyBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil)
}

func TestDimMismatchPanics(t *testing.T) {
	lt := Build(randomPoints(rand.New(rand.NewSource(1)), 10, 2, true))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lt.Count(geom.NewBox([]geom.Coord{1}, []geom.Coord{2}))
}

func TestBuildFromTrailingDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 60, 3, true)
	el := BuildFrom(pts, 1)
	bf := brute.New(pts)
	for trial := 0; trial < 20; trial++ {
		b := randomBox(rng, 60, 3)
		b.Lo[0], b.Hi[0] = -1<<30, 1<<30
		if el.Count(b) != bf.Count(b) {
			t.Fatalf("element count %d want %d", el.Count(b), bf.Count(b))
		}
	}
}

func TestSpaceSavesLogFactor(t *testing.T) {
	// At d=2 the layered tree stores Θ(n log n) array entries like the
	// range tree's nodes, but at d=3 it replaces the last tree level with
	// arrays: layered size must be strictly smaller.
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 512, 3, true)
	lt := Build(pts).Nodes()
	rt := rangetree.Build(pts).Nodes()
	if lt >= rt {
		t.Errorf("layered %d not smaller than range tree %d at d=3", lt, rt)
	}
}

func TestSinglePointAndDuplicates(t *testing.T) {
	pts := []geom.Point{{ID: 0, X: []geom.Coord{5, 5}}}
	lt := Build(pts)
	if lt.Count(geom.NewBox([]geom.Coord{5, 5}, []geom.Coord{5, 5})) != 1 {
		t.Error("single point missed")
	}
	// All-equal coordinates.
	dup := make([]geom.Point, 16)
	for i := range dup {
		dup[i] = geom.Point{ID: int32(i), X: []geom.Coord{7, 7}}
	}
	lt = Build(dup)
	if got := lt.Count(geom.NewBox([]geom.Coord{7, 7}, []geom.Coord{7, 7})); got != 16 {
		t.Errorf("duplicate count = %d, want 16", got)
	}
}

func TestEmptyBoxQuery(t *testing.T) {
	lt := Build(randomPoints(rand.New(rand.NewSource(9)), 40, 2, true))
	b := geom.NewBox([]geom.Coord{30, 1}, []geom.Coord{2, 60})
	if lt.Count(b) != 0 || lt.Report(b) != nil {
		t.Error("inverted box must be empty")
	}
}

// TestCascadeBridgesConsistent verifies the fractional-cascading invariant
// directly: following a bridge from position i lands on the first child
// entry not smaller than the parent entry at i.
func TestCascadeBridgesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 200, 2, true)
	c := buildCascade(pts, 0, 1)
	lessY := func(a, b geom.Point) bool {
		if a.X[1] != b.X[1] {
			return a.X[1] < b.X[1]
		}
		return a.ID < b.ID
	}
	for v := 1; v < c.shape.Cap; v++ {
		arr := c.arr[v]
		if arr == nil {
			continue
		}
		for _, side := range []struct {
			bridge []int32
			child  []geom.Point
		}{{c.bridgeL[v], c.arr[segtree_Left(v)]}, {c.bridgeR[v], c.arr[segtree_Right(v)]}} {
			if side.bridge == nil {
				continue
			}
			for i, p := range arr {
				b := int(side.bridge[i])
				// child[b] is the first entry ≥ arr[i]; child[b-1] < arr[i].
				if b < len(side.child) && lessY(side.child[b], p) {
					t.Fatalf("bridge too low at node %d pos %d", v, i)
				}
				if b > 0 && !lessY(side.child[b-1], p) {
					t.Fatalf("bridge too high at node %d pos %d", v, i)
				}
			}
			if int(side.bridge[len(arr)]) != len(side.child) {
				t.Fatalf("terminal bridge wrong at node %d", v)
			}
		}
	}
}

func segtree_Left(v int) int  { return 2 * v }
func segtree_Right(v int) int { return 2*v + 1 }
