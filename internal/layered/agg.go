package layered

import (
	"repro/internal/geom"
	"repro/internal/segtree"
	"repro/internal/semigroup"
)

// Agg annotates a layered range tree with bottom-up semigroup values,
// mirroring rangetree.Agg for the cascaded structure (the paper's
// associative-function mode, §4.2). Because the search selects contiguous
// runs of y-sorted arrays rather than whole segment-tree nodes, every
// stored array carries a small implicit segment tree of aggregates, so one
// selected run folds in O(log of its length) — and the whole query in
// O(log^(d-1) n), a log factor below the plain tree's annotation.
type Agg[T any] struct {
	t   *Tree
	m   semigroup.Monoid[T]
	val func(geom.Point) T
	// ones[t] aggregates a one-dimensional tree's sorted array.
	ones map[*Tree][]T
	// cascades[c][v] aggregates cascade node v's y-sorted array.
	cascades map[*cascade][][]T
}

// NewAgg computes the annotation for monoid m with per-point value val.
func NewAgg[T any](t *Tree, m semigroup.Monoid[T], val func(geom.Point) T) *Agg[T] {
	a := &Agg[T]{t: t, m: m, val: val,
		ones:     make(map[*Tree][]T),
		cascades: make(map[*cascade][][]T),
	}
	a.walk(t)
	return a
}

func (a *Agg[T]) walk(t *Tree) {
	switch {
	case t.one != nil:
		a.ones[t] = a.buildArrayAgg(t.one)
	case t.two != nil:
		c := t.two
		tabs := make([][]T, len(c.arr))
		for v, arr := range c.arr {
			if len(arr) == 0 {
				continue
			}
			tabs[v] = a.buildArrayAgg(arr)
		}
		a.cascades[c] = tabs
	default:
		for v := 1; v < t.shape.NumNodes()+1; v++ {
			if t.desc[v] != nil {
				a.walk(t.desc[v])
			}
		}
	}
}

// buildArrayAgg builds the implicit segment tree over one sorted array:
// slot n+i holds f(arr[i]), slot v < n combines its children.
func (a *Agg[T]) buildArrayAgg(arr []geom.Point) []T {
	n := len(arr)
	tab := make([]T, 2*n)
	for i, p := range arr {
		tab[n+i] = a.val(p)
	}
	for v := n - 1; v >= 1; v-- {
		tab[v] = a.m.Combine(tab[2*v], tab[2*v+1])
	}
	return tab
}

// queryArrayAgg folds tab's values over index range [lo, hi) of the
// underlying array (the standard iterative range fold; the monoid is
// commutative, so combine order is free).
func (a *Agg[T]) queryArrayAgg(tab []T, lo, hi int) T {
	n := len(tab) / 2
	acc := a.m.Identity
	for l, r := lo+n, hi+n; l < r; l, r = l>>1, r>>1 {
		if l&1 == 1 {
			acc = a.m.Combine(acc, tab[l])
			l++
		}
		if r&1 == 1 {
			r--
			acc = a.m.Combine(acc, tab[r])
		}
	}
	return acc
}

// Query evaluates ⊗_{l∈R(q)} f(l) for box b. The descent mirrors
// Tree.scan but threads the accumulator through return values, so a
// prepared Agg answers queries with zero heap allocations (the phase-C
// serving requirement).
func (a *Agg[T]) Query(b geom.Box) T {
	if b.Dims() != a.t.Dims {
		panic("layered: query dimensionality mismatch")
	}
	return a.scanTree(a.t, b, a.m.Identity)
}

func (a *Agg[T]) scanTree(t *Tree, b geom.Box, acc T) T {
	switch {
	case t.one != nil:
		dim := t.Dims - 1
		iv := b.Dim(dim)
		if iv.Empty() {
			return acc
		}
		lo := searchY(t.one, dim, iv.Lo)
		hi := len(t.one)
		if iv.Hi < 1<<31-1 { // guard Hi+1 overflow on unbounded boxes
			hi = searchY(t.one, dim, iv.Hi+1)
		}
		if lo < hi {
			acc = a.m.Combine(acc, a.queryArrayAgg(a.ones[t], lo, hi))
		}
		return acc
	case t.two != nil:
		c := t.two
		ivx := b.Dim(c.x)
		ivy := b.Dim(c.y)
		if ivx.Empty() || ivy.Empty() || len(c.byX) == 0 {
			return acc
		}
		root := c.shape.Root()
		rootArr := c.arr[root]
		yLo := searchY(rootArr, c.y, ivy.Lo)
		yHi := len(rootArr)
		if ivy.Hi < 1<<31-1 {
			yHi = searchY(rootArr, c.y, ivy.Hi+1)
		}
		return a.descendCascade(c, a.cascades[c], root, yLo, yHi, ivx, acc)
	default:
		iv := b.Dim(t.StartDim)
		if iv.Empty() {
			return acc
		}
		return a.descendUpper(t, t.shape.Root(), b, iv, acc)
	}
}

func (a *Agg[T]) descendUpper(t *Tree, v int, b geom.Box, iv geom.Interval, acc T) T {
	lo, hi := t.shape.PosRange(v)
	if lo >= t.shape.M {
		return acc
	}
	if hi > t.shape.M {
		hi = t.shape.M
	}
	span := geom.Interval{Lo: t.pts[lo].X[t.StartDim], Hi: t.pts[hi-1].X[t.StartDim]}
	if !iv.Overlaps(span) {
		return acc
	}
	if iv.ContainsInterval(span) {
		if hi-lo == 1 {
			if p := t.pts[lo]; b.ContainsFrom(p, t.StartDim+1) {
				acc = a.m.Combine(acc, a.val(p))
			}
			return acc
		}
		return a.scanTree(t.desc[v], b, acc)
	}
	acc = a.descendUpper(t, segtree.Left(v), b, iv, acc)
	return a.descendUpper(t, segtree.Right(v), b, iv, acc)
}

func (a *Agg[T]) descendCascade(c *cascade, tabs [][]T, v, pLo, pHi int, ivx geom.Interval, acc T) T {
	if pLo >= pHi {
		return acc
	}
	lo, hi := c.shape.PosRange(v)
	if lo >= c.shape.M {
		return acc
	}
	if hi > c.shape.M {
		hi = c.shape.M
	}
	span := geom.Interval{Lo: c.byX[lo].X[c.x], Hi: c.byX[hi-1].X[c.x]}
	if !ivx.Overlaps(span) {
		return acc
	}
	if ivx.ContainsInterval(span) {
		return a.m.Combine(acc, a.queryArrayAgg(tabs[v], pLo, pHi))
	}
	acc = a.descendCascade(c, tabs, segtree.Left(v), int(c.bridgeL[v][pLo]), int(c.bridgeL[v][pHi]), ivx, acc)
	return a.descendCascade(c, tabs, segtree.Right(v), int(c.bridgeR[v][pLo]), int(c.bridgeR[v][pHi]), ivx, acc)
}
