package layered

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

func TestAggMatchesBrute(t *testing.T) {
	weight := func(p geom.Point) int64 { return int64(p.ID%7) + 1 }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(4)
		pts := randomPoints(rng, n, d, seed%2 == 0)
		lt := Build(pts)
		agg := NewAgg(lt, semigroup.IntSum(), weight)
		mx := NewAgg(lt, semigroup.MaxInt(), weight)
		bf := brute.New(pts)
		for q := 0; q < 10; q++ {
			b := randomBox(rng, n, d)
			if got, want := agg.Query(b), brute.Aggregate(bf, semigroup.IntSum(), weight, b); got != want {
				t.Logf("seed %d n=%d d=%d: sum %d want %d", seed, n, d, got, want)
				return false
			}
			if got, want := mx.Query(b), brute.Aggregate(bf, semigroup.MaxInt(), weight, b); got != want {
				t.Logf("seed %d n=%d d=%d: max %d want %d", seed, n, d, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAggStartDimParity(t *testing.T) {
	// Forest-element shape: an element tree discriminating dims 1..d-1 only.
	rng := rand.New(rand.NewSource(17))
	pts := randomPoints(rng, 80, 3, true)
	el := BuildFrom(pts, 1)
	agg := NewAgg(el, semigroup.IntSum(), func(geom.Point) int64 { return 1 })
	bf := brute.New(pts)
	for trial := 0; trial < 25; trial++ {
		b := randomBox(rng, 80, 3)
		b.Lo[0], b.Hi[0] = -1<<30, 1<<30
		if got, want := agg.Query(b), int64(bf.Count(b)); got != want {
			t.Fatalf("element agg %d want %d", got, want)
		}
	}
}

// visitCollector exercises the zero-alloc Visitor API.
type visitCollector struct {
	count int
	ids   []int32
}

func (c *visitCollector) VisitRange(pts []geom.Point) {
	c.count += len(pts)
	for _, p := range pts {
		c.ids = append(c.ids, p.ID)
	}
}
func (c *visitCollector) VisitPoint(p geom.Point) {
	c.count++
	c.ids = append(c.ids, p.ID)
}

func TestVisitMatchesCountAndReport(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n, d := 1+rng.Intn(140), 1+rng.Intn(4)
		pts := randomPoints(rng, n, d, true)
		lt := Build(pts)
		for q := 0; q < 6; q++ {
			b := randomBox(rng, n, d)
			var c visitCollector
			lt.Visit(b, &c)
			if c.count != lt.Count(b) {
				t.Fatalf("visit count %d, Count %d", c.count, lt.Count(b))
			}
			got := append([]int32(nil), c.ids...)
			slices.Sort(got)
			want := brute.IDs(lt.Report(b))
			if !slices.Equal(got, want) {
				t.Fatalf("visit ids %v, report %v", got, want)
			}
		}
	}
}

// TestVisitAllocationFree asserts the tentpole property the serving hooks
// rely on: a descent with a reused visitor performs zero heap allocations.
func TestVisitAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := randomPoints(rng, 4096, 3, true)
	lt := Build(pts)
	boxes := make([]geom.Box, 16)
	for i := range boxes {
		boxes[i] = randomBox(rng, 4096, 3)
	}
	var c visitCollector
	c.ids = make([]int32, 0, 1<<16)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		c.ids = c.ids[:0]
		lt.Visit(boxes[i%len(boxes)], &c)
		i++
	})
	if avg != 0 {
		t.Errorf("Visit allocates %.1f objects per query, want 0", avg)
	}
}

// TestBuildSortsOncePerDimension asserts the construction bound: sorting
// happens once per needed dimension at the top level, and never again for
// descendant point sets (they are split stably from the presorted orders).
func TestBuildSortsOncePerDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		n, d, startDim int
		want           int64
	}{
		{500, 1, 0, 1}, // single dimension: one sort
		{500, 2, 0, 1}, // pure cascade: x order only, y comes from merging
		{500, 3, 0, 2},
		{500, 4, 0, 3},
		{500, 4, 1, 2}, // element shape: dims 1..3
		{500, 3, 2, 1}, // trailing single dimension
	} {
		pts := randomPoints(rng, tc.n, tc.d, true)
		before := buildSorts.Load()
		BuildFrom(pts, tc.startDim)
		if got := buildSorts.Load() - before; got != tc.want {
			t.Errorf("BuildFrom(n=%d d=%d start=%d) ran %d sorts, want %d",
				tc.n, tc.d, tc.startDim, got, tc.want)
		}
	}
}
