package layered

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild2D(b *testing.B) {
	pts := randomPoints(rand.New(rand.NewSource(1)), 1<<12, 2, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkCount2D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<14, 2, true)
	t := Build(pts)
	bx := randomBox(rng, 1<<14, 2)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += t.Count(bx)
	}
	_ = total
}

func BenchmarkCount3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<12, 3, true)
	t := Build(pts)
	bx := randomBox(rng, 1<<12, 3)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += t.Count(bx)
	}
	_ = total
}
