package kdtree

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild(b *testing.B) {
	pts := randomPoints(rand.New(rand.NewSource(1)), 1<<14, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<14, 2)
	t := Build(pts)
	bx := randomBox(rng, 1<<14, 2)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += t.Count(bx)
	}
	_ = total
}
