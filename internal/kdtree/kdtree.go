// Package kdtree implements the multidimensional binary tree ("k-D tree")
// the paper cites as the optimal-space baseline: Θ(dn) space but a
// discouraging O(d·n^(1−1/d) + k) worst-case search (§1, [Bentley]). The E5
// experiment compares it against the range tree to reproduce the paper's
// space/time trade-off argument.
package kdtree

import (
	"sort"

	"repro/internal/geom"
)

// DefaultBucket is the leaf bucket size; small enough that pruning
// dominates, large enough to keep the tree shallow.
const DefaultBucket = 16

// Tree is a bucketed k-d tree over d-dimensional rank points.
type Tree struct {
	dims   int
	n      int
	bucket int
	root   *node
}

type node struct {
	// Bounding box of all points below the node, used both for pruning
	// and for whole-subtree reporting.
	lo, hi []geom.Coord
	count  int
	// Internal nodes.
	axis        int
	left, right *node
	// Leaves.
	pts []geom.Point
}

// Option configures tree construction.
type Option func(*Tree)

// WithBucket overrides the leaf bucket size.
func WithBucket(b int) Option {
	return func(t *Tree) {
		if b < 1 {
			panic("kdtree: bucket must be ≥ 1")
		}
		t.bucket = b
	}
}

// Build constructs a k-d tree by recursive median splits, cycling through
// the axes.
func Build(pts []geom.Point, opts ...Option) *Tree {
	if len(pts) == 0 {
		panic("kdtree: empty point set")
	}
	t := &Tree{dims: pts[0].Dims(), n: len(pts), bucket: DefaultBucket}
	for _, o := range opts {
		o(t)
	}
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	t.root = t.build(own, 0)
	return t
}

func (t *Tree) build(pts []geom.Point, depth int) *node {
	nd := &node{count: len(pts)}
	nd.lo = make([]geom.Coord, t.dims)
	nd.hi = make([]geom.Coord, t.dims)
	for j := 0; j < t.dims; j++ {
		nd.lo[j], nd.hi[j] = pts[0].X[j], pts[0].X[j]
	}
	for _, p := range pts[1:] {
		for j := 0; j < t.dims; j++ {
			if p.X[j] < nd.lo[j] {
				nd.lo[j] = p.X[j]
			}
			if p.X[j] > nd.hi[j] {
				nd.hi[j] = p.X[j]
			}
		}
	}
	if len(pts) <= t.bucket {
		nd.pts = pts
		return nd
	}
	axis := depth % t.dims
	nd.axis = axis
	// Median split with (coord, ID) tie-breaking keeps the tree balanced
	// even under duplicate coordinates.
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].X[axis] != pts[b].X[axis] {
			return pts[a].X[axis] < pts[b].X[axis]
		}
		return pts[a].ID < pts[b].ID
	})
	mid := len(pts) / 2
	nd.left = t.build(pts[:mid], depth+1)
	nd.right = t.build(pts[mid:], depth+1)
	return nd
}

// N reports the number of points.
func (t *Tree) N() int { return t.n }

// Nodes reports the number of tree nodes (space accounting for E5).
func (t *Tree) Nodes() int {
	var rec func(*node) int
	rec = func(nd *node) int {
		if nd == nil {
			return 0
		}
		return 1 + rec(nd.left) + rec(nd.right)
	}
	return rec(t.root)
}

// boxRelation classifies node bounds against the query: 0 disjoint,
// 1 partial overlap, 2 node fully inside the query.
func boxRelation(b geom.Box, lo, hi []geom.Coord) int {
	inside := true
	for j := range lo {
		if hi[j] < b.Lo[j] || lo[j] > b.Hi[j] {
			return 0
		}
		if lo[j] < b.Lo[j] || hi[j] > b.Hi[j] {
			inside = false
		}
	}
	if inside {
		return 2
	}
	return 1
}

// Visit walks the query result: whole calls once per pruned-in subtree,
// single per individually verified point. Used by Count/Report and by the
// benchmarks that count visited nodes.
func (t *Tree) Visit(b geom.Box, whole func(*node), single func(geom.Point)) {
	if b.Dims() != t.dims {
		panic("kdtree: query dimensionality mismatch")
	}
	if b.Empty() {
		return
	}
	var rec func(*node)
	rec = func(nd *node) {
		switch boxRelation(b, nd.lo, nd.hi) {
		case 0:
			return
		case 2:
			whole(nd)
			return
		}
		if nd.pts != nil {
			for _, p := range nd.pts {
				if b.Contains(p) {
					single(p)
				}
			}
			return
		}
		rec(nd.left)
		rec(nd.right)
	}
	rec(t.root)
}

// Count returns |R(q)|.
func (t *Tree) Count(b geom.Box) int {
	total := 0
	t.Visit(b, func(nd *node) { total += nd.count }, func(geom.Point) { total++ })
	return total
}

// Report returns the points inside b.
func (t *Tree) Report(b geom.Box) []geom.Point {
	var out []geom.Point
	var emit func(*node)
	emit = func(nd *node) {
		if nd.pts != nil {
			out = append(out, nd.pts...)
			return
		}
		emit(nd.left)
		emit(nd.right)
	}
	t.Visit(b, emit, func(p geom.Point) { out = append(out, p) })
	return out
}

// VisitedNodes counts the nodes touched answering b — the work measure for
// the E5 baseline comparison.
func (t *Tree) VisitedNodes(b geom.Box) int {
	if b.Empty() {
		return 0
	}
	visited := 0
	var rec func(*node)
	rec = func(nd *node) {
		visited++
		switch boxRelation(b, nd.lo, nd.hi) {
		case 0, 2:
			return
		}
		if nd.pts != nil {
			return
		}
		rec(nd.left)
		rec(nd.right)
	}
	rec(t.root)
	return visited
}
