package kdtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(2 * n))
		}
		pts[i] = geom.Point{ID: int32(i), X: x}
	}
	return pts
}

func randomBox(rng *rand.Rand, n, d int) geom.Box {
	lo := make([]geom.Coord, d)
	hi := make([]geom.Coord, d)
	for j := 0; j < d; j++ {
		a := geom.Coord(rng.Intn(2 * n))
		b := geom.Coord(rng.Intn(2 * n))
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func TestEquivalenceWithBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(4)
		pts := randomPoints(rng, n, d)
		tr := Build(pts, WithBucket(1+rng.Intn(8)))
		bf := brute.New(pts)
		for q := 0; q < 10; q++ {
			b := randomBox(rng, n, d)
			if tr.Count(b) != bf.Count(b) {
				return false
			}
			if !reflect.DeepEqual(brute.IDs(tr.Report(b)), brute.IDs(bf.Report(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil)
}

func TestBadBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(randomPoints(rand.New(rand.NewSource(1)), 4, 2), WithBucket(0))
}

func TestDimMismatchPanics(t *testing.T) {
	tr := Build(randomPoints(rand.New(rand.NewSource(2)), 10, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Count(geom.NewBox([]geom.Coord{0, 0, 0}, []geom.Coord{1, 1, 1}))
}

func TestLinearSpace(t *testing.T) {
	// k-d tree space is Θ(n), independent of d — the trade-off of §1.
	rng := rand.New(rand.NewSource(3))
	n := 1024
	for _, d := range []int{1, 2, 4} {
		tr := Build(randomPoints(rng, n, d), WithBucket(1))
		if nodes := tr.Nodes(); nodes > 4*n {
			t.Errorf("d=%d: %d nodes for %d points, want O(n)", d, nodes, n)
		}
	}
}

func TestEmptyBoxQuery(t *testing.T) {
	tr := Build(randomPoints(rand.New(rand.NewSource(5)), 40, 2))
	b := geom.NewBox([]geom.Coord{9, 0}, []geom.Coord{2, 50})
	if tr.Count(b) != 0 || tr.Report(b) != nil || tr.VisitedNodes(b) != 0 {
		t.Error("inverted box must match nothing")
	}
}

func TestVisitedNodesPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 200, 2)
	tr := Build(pts)
	b := randomBox(rng, 200, 2)
	if v := tr.VisitedNodes(b); v < 1 {
		t.Errorf("VisitedNodes = %d", v)
	}
}

func TestWholeSubtreePruning(t *testing.T) {
	// A query covering everything must touch O(1) nodes thanks to the
	// contained-subtree shortcut.
	pts := randomPoints(rand.New(rand.NewSource(7)), 500, 2)
	tr := Build(pts)
	all := geom.NewBox([]geom.Coord{-1, -1}, []geom.Coord{1 << 20, 1 << 20})
	if v := tr.VisitedNodes(all); v != 1 {
		t.Errorf("full query visited %d nodes, want 1", v)
	}
	if tr.Count(all) != 500 {
		t.Error("full query must count everything")
	}
}
