package workload

import (
	"testing"

	"repro/internal/geom"
)

func TestPointsRankSpace(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Clustered, Correlated} {
		pts := Points(PointSpec{N: 100, Dims: 3, Dist: dist, Seed: 1})
		if len(pts) != 100 {
			t.Fatalf("%v: %d points", dist, len(pts))
		}
		for j := 0; j < 3; j++ {
			seen := make([]bool, 101)
			for _, p := range pts {
				r := p.X[j]
				if r < 1 || r > 100 || seen[r] {
					t.Fatalf("%v dim %d: bad rank %d", dist, j, r)
				}
				seen[r] = true
			}
		}
	}
}

func TestPointsDeterministic(t *testing.T) {
	a := Points(PointSpec{N: 50, Dims: 2, Dist: Clustered, Seed: 7})
	b := Points(PointSpec{N: 50, Dims: 2, Dist: Clustered, Seed: 7})
	for i := range a {
		if a[i].X[0] != b[i].X[0] || a[i].X[1] != b[i].X[1] {
			t.Fatal("same seed produced different points")
		}
	}
	c := Points(PointSpec{N: 50, Dims: 2, Dist: Clustered, Seed: 8})
	same := true
	for i := range a {
		if a[i].X[0] != c[i].X[0] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical points")
	}
}

func TestBoxesSelectivity(t *testing.T) {
	n := 4096
	pts := Points(PointSpec{N: n, Dims: 2, Dist: Uniform, Seed: 3})
	boxes := Boxes(QuerySpec{M: 200, Dims: 2, N: n, Selectivity: 0.05, Seed: 3})
	// Measure achieved mean selectivity against the 5% target.
	total := 0
	for _, b := range boxes {
		for _, p := range pts {
			if b.Contains(p) {
				total++
			}
		}
	}
	mean := float64(total) / float64(len(boxes)) / float64(n)
	if mean < 0.015 || mean > 0.15 {
		t.Errorf("achieved selectivity %.4f, target 0.05", mean)
	}
}

func TestBoxesWithinDomain(t *testing.T) {
	boxes := Boxes(QuerySpec{M: 100, Dims: 3, N: 64, Selectivity: 0.2, Seed: 5})
	for _, b := range boxes {
		for j := 0; j < 3; j++ {
			if b.Lo[j] < 1 || b.Hi[j] > 64 || b.Lo[j] > b.Hi[j] {
				t.Fatalf("box out of domain: %v", b)
			}
		}
	}
}

func TestSkewedFociConcentrate(t *testing.T) {
	n := 1024
	boxes := Boxes(QuerySpec{M: 300, Dims: 1, N: n, Selectivity: 0.01, Foci: 2, Theta: 2.0, Seed: 9})
	// Centers must cluster: the spread of box centers should be far below
	// the uniform-case spread (~n/4 mean absolute deviation).
	var centers []float64
	for _, b := range boxes {
		centers = append(centers, float64(b.Lo[0]+b.Hi[0])/2)
	}
	mean := 0.0
	for _, c := range centers {
		mean += c
	}
	mean /= float64(len(centers))
	mad := 0.0
	for _, c := range centers {
		if c > mean {
			mad += c - mean
		} else {
			mad += mean - c
		}
	}
	mad /= float64(len(centers))
	if mad > float64(n)/4 {
		t.Errorf("skewed centers MAD %.1f too dispersed", mad)
	}
}

func TestSlabBoxesShape(t *testing.T) {
	n, d := 1024, 3
	boxes := SlabBoxes(30, d, n, 0.01, 1)
	for i, b := range boxes {
		thinCount := 0
		for j := 0; j < d; j++ {
			width := int(b.Hi[j]-b.Lo[j]) + 1
			if width == n {
				continue
			}
			thinCount++
			if width > n/50 {
				t.Fatalf("box %d: thin dim %d has width %d", i, j, width)
			}
			if b.Lo[j] < 1 || b.Hi[j] > geom.Coord(n) {
				t.Fatalf("box %d out of domain", i)
			}
		}
		if thinCount != 1 {
			t.Fatalf("box %d has %d thin dimensions, want 1", i, thinCount)
		}
	}
}

func TestWeightOfDeterministicBounded(t *testing.T) {
	p := geom.Point{ID: 42}
	if WeightOf(p) != WeightOf(p) {
		t.Error("WeightOf not deterministic")
	}
	for id := int32(0); id < 1000; id++ {
		w := WeightOf(geom.Point{ID: id})
		if w < 0 || w >= 100 {
			t.Fatalf("weight %f out of [0,100)", w)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"points": func() { Points(PointSpec{N: 0, Dims: 2}) },
		"boxes":  func() { Boxes(QuerySpec{M: 1, Dims: 0, N: 10}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
