// Package workload generates the synthetic point sets and query batches
// the experiments run on. The paper evaluates nothing empirically (its
// evaluation is Theorems 1–4), so these generators are designed to
// exercise exactly the regimes those theorems speak to: uniform and
// clustered data, selectivity-controlled boxes, and Zipf-skewed query foci
// that congest single forest parts (the case motivating the paper's
// copy-based load balancing).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Distribution selects the point distribution.
type Distribution int

const (
	// Uniform draws coordinates independently and uniformly.
	Uniform Distribution = iota
	// Clustered draws points from a handful of Gaussian blobs — the
	// "database applications" shape with dense regions.
	Clustered
	// Correlated draws points near the main diagonal, producing long
	// skinny canonical ranges.
	Correlated
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case Correlated:
		return "correlated"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// PointSpec describes a synthetic point set.
type PointSpec struct {
	N, Dims  int
	Dist     Distribution
	Clusters int     // blob count for Clustered (default 8)
	Spread   float64 // blob std-dev as a fraction of the domain (default 0.03)
	Seed     int64
}

// Points generates the point set, rank-normalized per the paper's §3
// assumption (all coordinates distinct ranks in 1..n).
func Points(spec PointSpec) []geom.Point {
	if spec.N < 1 || spec.Dims < 1 {
		panic("workload: need N ≥ 1 and Dims ≥ 1")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	clusters := spec.Clusters
	if clusters == 0 {
		clusters = 8
	}
	spread := spec.Spread
	if spread == 0 {
		spread = 0.03
	}
	raw := make([][]float64, spec.N)
	var centers [][]float64
	if spec.Dist == Clustered {
		centers = make([][]float64, clusters)
		for c := range centers {
			centers[c] = make([]float64, spec.Dims)
			for j := range centers[c] {
				centers[c][j] = rng.Float64()
			}
		}
	}
	for i := range raw {
		row := make([]float64, spec.Dims)
		switch spec.Dist {
		case Uniform:
			for j := range row {
				row[j] = rng.Float64()
			}
		case Clustered:
			c := centers[rng.Intn(clusters)]
			for j := range row {
				row[j] = c[j] + rng.NormFloat64()*spread
			}
		case Correlated:
			base := rng.Float64()
			for j := range row {
				row[j] = base + rng.NormFloat64()*0.05
			}
		default:
			panic(fmt.Sprintf("workload: unknown distribution %v", spec.Dist))
		}
		raw[i] = row
	}
	pts, _ := geom.NormalizeFloat64(raw)
	return pts
}

// QuerySpec describes a batch of box queries in rank space 1..N.
type QuerySpec struct {
	M, Dims, N  int
	Selectivity float64 // expected fraction of rank space per box (default 0.01)
	// Foci > 0 concentrates query centers on that many hot spots,
	// zipf-weighted — the congestion workload for E6. Zero means uniform
	// centers.
	Foci int
	// Theta is the Zipf exponent over the foci (default 1.2).
	Theta float64
	Seed  int64
}

// Boxes generates the query batch.
func Boxes(spec QuerySpec) []geom.Box {
	if spec.M < 0 || spec.Dims < 1 || spec.N < 1 {
		panic("workload: bad query spec")
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x9e3779b9))
	sel := spec.Selectivity
	if sel == 0 {
		sel = 0.01
	}
	side := int(math.Ceil(float64(spec.N) * math.Pow(sel, 1/float64(spec.Dims))))
	if side < 1 {
		side = 1
	}
	var foci [][]int
	var weights []float64
	if spec.Foci > 0 {
		theta := spec.Theta
		if theta == 0 {
			theta = 1.2
		}
		foci = make([][]int, spec.Foci)
		weights = make([]float64, spec.Foci)
		total := 0.0
		for f := range foci {
			foci[f] = make([]int, spec.Dims)
			for j := range foci[f] {
				foci[f][j] = 1 + rng.Intn(spec.N)
			}
			weights[f] = 1 / math.Pow(float64(f+1), theta)
			total += weights[f]
		}
		for f := range weights {
			weights[f] /= total
		}
	}
	pickFocus := func() []int {
		u := rng.Float64()
		acc := 0.0
		for f, w := range weights {
			acc += w
			if u <= acc {
				return foci[f]
			}
		}
		return foci[len(foci)-1]
	}
	boxes := make([]geom.Box, spec.M)
	for i := range boxes {
		lo := make([]geom.Coord, spec.Dims)
		hi := make([]geom.Coord, spec.Dims)
		for j := 0; j < spec.Dims; j++ {
			var center int
			if spec.Foci > 0 {
				// Jitter around the focus by a fraction of the side.
				f := pickFocus()
				center = f[j] + rng.Intn(side/2+1) - side/4
			} else {
				center = 1 + rng.Intn(spec.N)
			}
			a := center - side/2
			b := a + side - 1
			if a < 1 {
				a = 1
			}
			if b > spec.N {
				b = spec.N
			}
			if b < a {
				b = a
			}
			lo[j], hi[j] = geom.Coord(a), geom.Coord(b)
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

// SlabBoxes generates the k-D tree's adversarial query shape: boxes that
// are thin (width·n ranks) in a rotating dimension and unbounded in every
// other — the workload that realizes the O(n^(1-1/d)) worst case the paper
// cites against k-D trees.
func SlabBoxes(m, dims, n int, width float64, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed ^ 0x51ab51ab))
	w := int(float64(n) * width)
	if w < 1 {
		w = 1
	}
	boxes := make([]geom.Box, m)
	for i := range boxes {
		lo := make([]geom.Coord, dims)
		hi := make([]geom.Coord, dims)
		thin := i % dims
		for j := 0; j < dims; j++ {
			if j == thin {
				a := 1 + rng.Intn(n-w+1)
				lo[j], hi[j] = geom.Coord(a), geom.Coord(a+w-1)
			} else {
				lo[j], hi[j] = 1, geom.Coord(n)
			}
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

// WeightOf is the standard per-point weight the experiments aggregate in
// associative-function mode: a deterministic pseudo-measurement derived
// from the point identity.
func WeightOf(p geom.Point) float64 {
	x := uint64(p.ID)*0x9e3779b97f4a7c15 + 0x85ebca6b
	x ^= x >> 33
	return float64(x%1000) / 10
}
