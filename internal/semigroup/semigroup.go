// Package semigroup provides the commutative-semigroup abstraction used by
// the associative-function search mode (§4.2 of the paper): the outcome of a
// query q is ⊗_{l∈R(q)} f(l) for a commutative operation ⊗.
//
// Implementations are expressed as monoids (a semigroup plus identity): the
// identity is what an empty query range evaluates to, and it also lets tree
// nodes over padding leaves carry a neutral annotation. Every classical
// semigroup used in range searching (count, sum, max, min, argmax) extends
// to a monoid, so no generality relevant to the paper is lost.
package semigroup

import "math"

// Monoid is a commutative monoid over T: Combine must be associative and
// commutative, and Combine(Identity, x) == x for all x.
type Monoid[T any] struct {
	// Identity is the neutral element (value of an empty range).
	Identity T
	// Combine folds two partial results into one.
	Combine func(a, b T) T
}

// Fold combines all values with the monoid, returning Identity for an
// empty slice.
func (m Monoid[T]) Fold(vals ...T) T {
	acc := m.Identity
	for _, v := range vals {
		acc = m.Combine(acc, v)
	}
	return acc
}

// IntSum is the (ℤ, +) monoid; with the constant-1 value function it
// realises the paper's counting mode.
func IntSum() Monoid[int64] {
	return Monoid[int64]{Identity: 0, Combine: func(a, b int64) int64 { return a + b }}
}

// FloatSum is the (ℝ, +) monoid for weighted aggregation.
func FloatSum() Monoid[float64] {
	return Monoid[float64]{Identity: 0, Combine: func(a, b float64) float64 { return a + b }}
}

// MaxFloat is the (ℝ ∪ {-∞}, max) monoid.
func MaxFloat() Monoid[float64] {
	return Monoid[float64]{Identity: math.Inf(-1), Combine: math.Max}
}

// MinFloat is the (ℝ ∪ {+∞}, min) monoid.
func MinFloat() Monoid[float64] {
	return Monoid[float64]{Identity: math.Inf(1), Combine: math.Min}
}

// MaxInt is the (int64, max) monoid with identity math.MinInt64.
func MaxInt() Monoid[int64] {
	return Monoid[int64]{Identity: math.MinInt64, Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
}

// MinInt is the (int64, min) monoid with identity math.MaxInt64.
func MinInt() Monoid[int64] {
	return Monoid[int64]{Identity: math.MaxInt64, Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
}

// Arg is a value tagged with the identity of the point that produced it,
// for argmax/argmin style aggregates.
type Arg struct {
	ID  int32 // point ID, -1 for the identity element
	Val float64
}

// ArgMax is the monoid that tracks the maximum value together with the
// point that attains it (smallest ID wins ties, keeping it commutative).
func ArgMax() Monoid[Arg] {
	return Monoid[Arg]{
		Identity: Arg{ID: -1, Val: math.Inf(-1)},
		Combine: func(a, b Arg) Arg {
			switch {
			case a.Val > b.Val:
				return a
			case b.Val > a.Val:
				return b
			case a.ID == -1:
				return b
			case b.ID == -1 || a.ID < b.ID:
				return a
			default:
				return b
			}
		},
	}
}

// Stats accumulates count, sum, min and max in one pass; it shows that
// product monoids compose.
type Stats struct {
	Count    int64
	Sum      float64
	Min, Max float64
}

// StatsMonoid is the product monoid over Stats.
func StatsMonoid() Monoid[Stats] {
	return Monoid[Stats]{
		Identity: Stats{Min: math.Inf(1), Max: math.Inf(-1)},
		Combine: func(a, b Stats) Stats {
			return Stats{
				Count: a.Count + b.Count,
				Sum:   a.Sum + b.Sum,
				Min:   math.Min(a.Min, b.Min),
				Max:   math.Max(a.Max, b.Max),
			}
		},
	}
}

// One is a Stats observation for a single weighted point.
func One(w float64) Stats { return Stats{Count: 1, Sum: w, Min: w, Max: w} }
