package semigroup

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntSumBasics(t *testing.T) {
	m := IntSum()
	if got := m.Fold(1, 2, 3); got != 6 {
		t.Errorf("Fold = %d, want 6", got)
	}
	if got := m.Fold(); got != 0 {
		t.Errorf("empty Fold = %d, want identity 0", got)
	}
}

func TestMinMaxIdentities(t *testing.T) {
	if MaxInt().Fold() != math.MinInt64 {
		t.Error("MaxInt identity wrong")
	}
	if MinInt().Fold() != math.MaxInt64 {
		t.Error("MinInt identity wrong")
	}
	if !math.IsInf(MaxFloat().Fold(), -1) {
		t.Error("MaxFloat identity wrong")
	}
	if !math.IsInf(MinFloat().Fold(), 1) {
		t.Error("MinFloat identity wrong")
	}
	if MaxInt().Fold(3, -7, 5) != 5 || MinInt().Fold(3, -7, 5) != -7 {
		t.Error("MaxInt/MinInt combine wrong")
	}
}

func TestArgMax(t *testing.T) {
	m := ArgMax()
	got := m.Fold(Arg{3, 1.5}, Arg{1, 2.5}, Arg{2, 2.5})
	if got.ID != 1 || got.Val != 2.5 {
		t.Errorf("ArgMax = %+v, want {1 2.5}", got)
	}
	if m.Fold().ID != -1 {
		t.Error("ArgMax identity should have ID -1")
	}
	// Commutativity on ties.
	a, b := Arg{5, 1.0}, Arg{9, 1.0}
	if m.Combine(a, b) != m.Combine(b, a) {
		t.Error("ArgMax not commutative on ties")
	}
}

func TestStatsMonoid(t *testing.T) {
	m := StatsMonoid()
	s := m.Fold(One(3), One(-1), One(7))
	if s.Count != 3 || s.Sum != 9 || s.Min != -1 || s.Max != 7 {
		t.Errorf("Stats = %+v", s)
	}
	id := m.Fold()
	if id.Count != 0 || id.Sum != 0 {
		t.Errorf("Stats identity = %+v", id)
	}
}

// checkMonoidLaws verifies identity, associativity and commutativity on
// random triples drawn by gen, using eq for comparison.
func checkMonoidLaws[T any](t *testing.T, name string, m Monoid[T], gen func(r *rand.Rand) T, eq func(a, b T) bool) {
	t.Helper()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		if !eq(m.Combine(m.Identity, a), a) || !eq(m.Combine(a, m.Identity), a) {
			return false
		}
		if !eq(m.Combine(a, b), m.Combine(b, a)) {
			return false
		}
		return eq(m.Combine(m.Combine(a, b), c), m.Combine(a, m.Combine(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("%s monoid laws violated: %v", name, err)
	}
}

func TestMonoidLaws(t *testing.T) {
	eqI := func(a, b int64) bool { return a == b }
	eqF := func(a, b float64) bool { return a == b }
	checkMonoidLaws(t, "IntSum", IntSum(), func(r *rand.Rand) int64 { return r.Int63n(1000) - 500 }, eqI)
	checkMonoidLaws(t, "MaxInt", MaxInt(), func(r *rand.Rand) int64 { return r.Int63n(1000) - 500 }, eqI)
	checkMonoidLaws(t, "MinInt", MinInt(), func(r *rand.Rand) int64 { return r.Int63n(1000) - 500 }, eqI)
	checkMonoidLaws(t, "MaxFloat", MaxFloat(), func(r *rand.Rand) float64 { return float64(r.Intn(100)) }, eqF)
	checkMonoidLaws(t, "MinFloat", MinFloat(), func(r *rand.Rand) float64 { return float64(r.Intn(100)) }, eqF)
	checkMonoidLaws(t, "ArgMax", ArgMax(),
		func(r *rand.Rand) Arg { return Arg{ID: int32(r.Intn(5)), Val: float64(r.Intn(4))} },
		func(a, b Arg) bool { return a == b })
	checkMonoidLaws(t, "Stats", StatsMonoid(),
		func(r *rand.Rand) Stats { return One(float64(r.Intn(9)) - 4) },
		func(a, b Stats) bool { return a == b })
}
