package expt

import (
	"fmt"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/segtree"
	"repro/internal/workload"
)

// F1 regenerates Figure 1: the segment tree structure for (1,8), one row
// per level with the segments associated to the nodes.
func F1() *Table {
	t := &Table{
		ID:    "F1",
		Title: "Segment tree structure for (1,8) (paper Figure 1)",
		Note: "Leaves carry [1,2) [2,3) … [7,8) and the degenerate [8,8]; each " +
			"internal node carries the union of its children. The root must be [1,8].",
		Header: []string{"level", "segments"},
	}
	s := segtree.NewShape(8)
	for level := s.Height(); level >= 0; level-- {
		segs := ""
		for v := 1; v < 2*s.Cap; v++ {
			if s.Level(v) != level {
				continue
			}
			if segs != "" {
				segs += " "
			}
			segs += s.FigSegmentString(v)
		}
		t.AddRow(level, segs)
	}
	return t
}

// F2 regenerates Figure 2: the Index/Level labeling across a dimension
// boundary (Definition 2): a node U with index x anchors a descendant tree
// whose root inherits x and whose levels double the index.
func F2() *Table {
	t := &Table{
		ID:    "F2",
		Title: "Index and Level of the nodes of T across a dimension boundary (paper Figure 2)",
		Note: "Node U has Index(U)=x in dimension i-1; descendant(U) lives in dimension i. " +
			"Definition 2: the descendant root inherits x; left children double the index, " +
			"right children double and add one — heap arithmetic.",
		Header: []string{"node (depth k in descendant tree)", "paper's index", "computed Index(x, heap)"},
	}
	const x = 5
	labels := []string{"root", "2x", "2x+1", "4x", "4x+1", "4x+2", "4x+3"}
	want := []uint64{x, 2 * x, 2*x + 1, 4 * x, 4*x + 1, 4*x + 2, 4*x + 3}
	for heap := 1; heap <= 7; heap++ {
		t.AddRow(labels[heap-1], fmt.Sprint(want[heap-1]), fmt.Sprint(segtree.Index(x, heap)))
	}
	return t
}

// F3 regenerates Figure 3: the hat of T in dimension one along with the
// forest, for p = 8 — structure counts per hat tree and the forest
// distribution over processors.
func F3() *Table {
	n, d, p := 64, 2, 8
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 42})
	mach := cgm.New(cgm.Config{P: p})
	dt := core.Build(mach, pts)
	t := &Table{
		ID:    "F3",
		Title: fmt.Sprintf("Hat and forest of T for n=%d, d=%d, p=%d (paper Figure 3)", n, d, p),
		Note: "The hat holds the top log p levels of every segment tree (all nodes with " +
			"more than n/p canonical points); the forest elements hanging below are " +
			"range trees on ≤ n/p points distributed round-robin. With n and p powers " +
			"of two the primary tree contributes exactly p forest elements of n/p points.",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("grain g = ceil(n/p)", dt.Grain())
	t.AddRow("hat trees (segment trees truncated at the cut)", dt.HatTreeCount())
	t.AddRow("hat nodes per replica |H|", dt.HatNodeCount())
	t.AddRow("forest elements", dt.ElemCount())
	dim0 := 0
	for _, info := range dt.Info() {
		if info.Dim == 0 {
			dim0++
		}
	}
	t.AddRow("dimension-one forest elements (want p)", dim0)
	parts := dt.ForestPartNodes()
	for i, s := range parts {
		t.AddRow(fmt.Sprintf("|F_%d| (nodes at processor %d)", i, i), s)
	}
	return t
}
