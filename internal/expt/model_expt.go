package expt

import (
	"fmt"
	"time"

	"repro/internal/cgm"
	"repro/internal/model"
	"repro/internal/workload"
)

// E14 scores the theorem formulas as calibrated predictors: constants are
// fitted from the two smallest machine widths, then Theorem 2's and
// Theorem 3's formulas must predict the measured modelled time at every
// larger width. A small geometric error means the implementation follows
// the claimed complexity, not merely its trend.
func E14(sc Scale) *Table {
	t := &Table{
		ID:    "E14",
		Title: "Theorems as predictors: fitted T(p) = A·W/p + R·(B·s/p + L) vs measurement",
		Note: "Constants fitted at p ∈ {1, 2}; rows show prediction vs measurement at " +
			"larger p. err = max(pred/meas, meas/pred) per row; the final row is the " +
			"geometric-mean error over the extrapolated widths (expect ≲ 2: the " +
			"theorem formula, not a curve fit, carries the extrapolation).",
		Header: []string{"algorithm", "p", "measured", "predicted", "err"},
	}
	n, d := 1<<12, 2
	ps := []int{1, 2, 4, 8}
	if sc == Full {
		n = 1 << 13
		ps = []int{1, 2, 4, 8, 16}
	}
	boxes := workload.Boxes(workload.QuerySpec{M: n, Dims: d, N: n, Selectivity: 0.001, Seed: 15})

	type sample struct {
		metrics cgm.Metrics
		modelNS float64
	}
	construct := map[int]sample{}
	search := map[int]sample{}
	for _, p := range ps {
		dt, bm := buildMeasured(n, d, p, 15)
		construct[p] = sample{bm, float64(bm.ModelTime(cgm.DefaultG, cgm.DefaultL))}
		dt.Machine().ResetMetrics()
		dt.CountBatch(boxes)
		sm := dt.Machine().Metrics()
		search[p] = sample{sm, float64(sm.ModelTime(cgm.DefaultG, cgm.DefaultL))}
	}

	for _, alg := range []struct {
		name     string
		w        model.Workload
		measured map[int]sample
	}{
		{"construct (Thm 2)", model.ConstructWorkload(n, d), construct},
		{"search (Thm 3)", model.SearchWorkload(n, d, n), search},
	} {
		pm := model.Fit(alg.w, ps[0], alg.measured[ps[0]].metrics, ps[1], alg.measured[ps[1]].metrics, cgm.DefaultL)
		extrapolated := map[int]float64{}
		for _, p := range ps[2:] {
			meas := alg.measured[p].modelNS
			pred := model.Predict(alg.w, pm, p)
			err := pred / meas
			if err < 1 {
				err = 1 / err
			}
			extrapolated[p] = meas
			t.AddRow(alg.name, p,
				time.Duration(meas).Round(time.Microsecond).String(),
				time.Duration(pred).Round(time.Microsecond).String(),
				fmt.Sprintf("%.2f", err))
		}
		t.AddRow(alg.name, "geo-mean", "-", "-",
			fmt.Sprintf("%.2f", model.Score(alg.w, pm, extrapolated)))
	}
	return t
}
