package expt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/rangetree"
	"repro/internal/semigroup"
	"repro/internal/workload"
)

// Scale selects experiment sizes: Quick for CI-sized runs, Full for the
// sizes recorded in EXPERIMENTS.md.
type Scale int

const (
	Quick Scale = iota
	Full
)

func log2i(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

func powi(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// buildMeasured constructs a distributed tree on a Measured machine and
// returns it with its construction metrics snapshot.
func buildMeasured(n, d, p int, seed int64) (*core.Tree, cgm.Metrics) {
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: seed})
	mach := cgm.New(cgm.Config{P: p, Mode: cgm.Measured})
	dt := core.Build(mach, pts)
	return dt, mach.Metrics()
}

// T1 measures Theorem 1: the hat has size O(p·log^(d-1) p) = O(s/p) and
// every forest part F_i has size O(s/p).
func T1(sc Scale) *Table {
	t := &Table{
		ID:    "T1",
		Title: "Distributed structure sizes (Theorem 1)",
		Note: "s is the sequential range tree size (nodes). Expect |H|/(p·log^(d-1)p) " +
			"and max|F_i|/(s/p) to stay O(1) across the sweep, and |H| ≤ s/p in the " +
			"coarse-grained regime n ≥ p².",
		Header: []string{"n", "d", "p", "s(seq nodes)", "|H|", "|H|/(p·lg^(d-1)p)", "max|F_i|", "max|F_i|/(s/p)"},
	}
	ns := []int{1 << 10, 1 << 12}
	ps := []int{4, 8}
	ds := []int{1, 2, 3}
	if sc == Full {
		ns = []int{1 << 10, 1 << 12, 1 << 14}
		ps = []int{4, 8, 16}
	}
	for _, d := range ds {
		for _, n := range ns {
			if d >= 3 && n > 1<<12 {
				continue // keep d=3 runs affordable
			}
			pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 1})
			s := rangetree.Build(pts).Nodes()
			for _, p := range ps {
				mach := cgm.New(cgm.Config{P: p})
				dt := core.Build(mach, pts)
				hat := dt.HatNodeCount()
				parts := dt.ForestPartNodes()
				mx := 0
				for _, x := range parts {
					if x > mx {
						mx = x
					}
				}
				denom := float64(p * powi(log2i(p)+1, d-1))
				t.AddRow(n, d, p, s, hat,
					float64(hat)/denom,
					mx,
					float64(mx)/(float64(s)/float64(p)))
			}
		}
	}
	return t
}

// T2 measures Theorem 2 / Corollary 1: construction runs in O(s/p) local
// computation plus a constant number of h-relations with h = O(s/p).
func T2(sc Scale) *Table {
	t := &Table{
		ID:    "T2",
		Title: "Algorithm Construct (Theorem 2 / Corollary 1)",
		Note: "Rounds must be constant in n and p (8 exchanges per dimension: 4 inside " +
			"the black-box sort, plus runs/offset/route/roots). h·p/s should stay O(1); " +
			"modelled speedup = T_model(1)/T_model(p) should grow with p until the fixed " +
			"round latency dominates.",
		Header: []string{"n", "d", "p", "rounds", "max h", "h·p/s", "T_model", "speedup", "efficiency"},
	}
	n, d := 1<<12, 2
	ps := []int{1, 2, 4, 8}
	if sc == Full {
		n = 1 << 14
		ps = []int{1, 2, 4, 8, 16}
	}
	var base time.Duration
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 2})
	s := rangetree.Build(pts).Nodes()
	for _, p := range ps {
		_, mt := buildMeasured(n, d, p, 2)
		model := mt.ModelTime(cgm.DefaultG, cgm.DefaultL)
		if p == 1 {
			base = model
		}
		speedup := float64(base) / float64(model)
		t.AddRow(n, d, p, mt.CommRounds(), mt.MaxH(),
			float64(mt.MaxH())*float64(p)/float64(s),
			model.Round(time.Microsecond).String(),
			speedup, speedup/float64(p))
	}
	return t
}

// T3 measures Theorem 3 / Corollary 2: n queries are answered with O(s·log
// n/p) local work and a constant number of h-relations.
func T3(sc Scale) *Table {
	t := &Table{
		ID:    "T3",
		Title: "Algorithm Search: n independent queries (Theorem 3 / Corollary 2)",
		Note: "Counting mode over a batch of m = n queries. Rounds are constant (5: " +
			"demand, copies, route, home, plus the run-end); modelled speedup grows " +
			"with p.",
		Header: []string{"n", "d", "p", "m", "rounds", "max h", "T_model", "speedup"},
	}
	n, d := 1<<12, 2
	ps := []int{1, 2, 4, 8}
	if sc == Full {
		n = 1 << 14
		ps = []int{1, 2, 4, 8, 16}
	}
	boxes := workload.Boxes(workload.QuerySpec{M: n, Dims: d, N: n, Selectivity: 0.001, Seed: 3})
	var base time.Duration
	for _, p := range ps {
		dt, _ := buildMeasured(n, d, p, 3)
		dt.Machine().ResetMetrics()
		dt.CountBatch(boxes)
		mt := dt.Machine().Metrics()
		model := mt.ModelTime(cgm.DefaultG, cgm.DefaultL)
		if p == 1 {
			base = model
		}
		t.AddRow(n, d, p, len(boxes), mt.CommRounds(), mt.MaxH(),
			model.Round(time.Microsecond).String(),
			float64(base)/float64(model))
	}
	return t
}

// T4a measures the associative-function mode of Theorem 4 with the
// weighted-sum semigroup.
func T4a(sc Scale) *Table {
	t := &Table{
		ID:    "T4a",
		Title: "Associative-function mode (Theorem 4): weighted sum per query",
		Note: "Precomputation (f(v) bottom-up in dimension d + all-to-all broadcast of " +
			"forest roots) is one extra round; each batch then costs the Search bound. " +
			"Results are checked against the counting mode run on the same boxes.",
		Header: []string{"n", "d", "p", "m", "prep rounds", "batch rounds", "T_model(batch)", "checksum"},
	}
	n, d := 1<<11, 2
	ps := []int{2, 4, 8}
	if sc == Full {
		n = 1 << 13
		ps = []int{2, 4, 8, 16}
	}
	boxes := workload.Boxes(workload.QuerySpec{M: n / 2, Dims: d, N: n, Selectivity: 0.01, Seed: 4})
	for _, p := range ps {
		dt, _ := buildMeasured(n, d, p, 4)
		dt.Machine().ResetMetrics()
		h := core.PrepareAssociative(dt, semigroup.FloatSum(), workload.WeightOf)
		prep := dt.Machine().Metrics().CommRounds()
		dt.Machine().ResetMetrics()
		sums := h.Batch(boxes)
		mt := dt.Machine().Metrics()
		sum := 0.0
		for _, v := range sums {
			sum += v
		}
		t.AddRow(n, d, p, len(boxes), prep, mt.CommRounds(),
			mt.ModelTime(cgm.DefaultG, cgm.DefaultL).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", sum))
	}
	return t
}

// T4b measures the report mode of Theorem 4: the extra O(k/p) term and the
// per-processor output balance.
func T4b(sc Scale) *Table {
	t := &Table{
		ID:    "T4b",
		Title: "Report mode (Theorem 4 / Corollary 3): output-sensitive cost and k/p balance",
		Note: "k is the total number of (query, point) pairs. Every processor must " +
			"materialize ≈ k/p of them: balance = max_i pairs_i / (k/p) should stay " +
			"near 1 as selectivity (and hence k) grows.",
		Header: []string{"n", "p", "selectivity", "k", "max pairs/proc", "balance", "T_model"},
	}
	n, d, p := 1<<11, 2, 8
	if sc == Full {
		n = 1 << 13
	}
	dt, _ := buildMeasured(n, d, p, 5)
	for _, sel := range []float64{0.001, 0.01, 0.05, 0.1} {
		boxes := workload.Boxes(workload.QuerySpec{M: 256, Dims: d, N: n, Selectivity: sel, Seed: 5})
		dt.Machine().ResetMetrics()
		results, perProc := dt.ReportBatchBalance(boxes)
		mt := dt.Machine().Metrics()
		k := 0
		for _, r := range results {
			k += len(r)
		}
		mx := 0
		for _, c := range perProc {
			if c > mx {
				mx = c
			}
		}
		balanceRatio := math.NaN()
		if k > 0 {
			balanceRatio = float64(mx) / (float64(k) / float64(p))
		}
		t.AddRow(n, p, sel, k, mx, balanceRatio,
			mt.ModelTime(cgm.DefaultG, cgm.DefaultL).Round(time.Microsecond).String())
	}
	return t
}
