package expt

import (
	"fmt"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/layered"
	"repro/internal/rangetree"
	"repro/internal/workload"
)

// E11 measures the layered range tree the paper cites in §1: fractional
// cascading removes a log n factor from the query.
func E11(sc Scale) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Layered range tree (paper §1): the log n query saving",
		Note: "The layered tree replaces the final dimension's trees with cascaded " +
			"sorted arrays. The saved log factor materializes when the final " +
			"dimension's decomposition carries real work — moderate selectivity — " +
			"so both a 2% and a needle workload are shown: expect plain/layered > 1 " +
			"and growing with n at 2%, near parity for needles (plain's best case), " +
			"and strictly less space at d ≥ 3.",
		Header: []string{"n", "d", "selectivity", "plain nodes", "layered entries", "plain µs/q", "layered µs/q", "plain/layered"},
	}
	ns := []int{1 << 12}
	if sc == Full {
		ns = []int{1 << 12, 1 << 14, 1 << 16}
	}
	for _, d := range []int{2, 3} {
		for _, n := range ns {
			if d == 3 && n > 1<<14 {
				continue
			}
			pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 12})
			rt := rangetree.Build(pts)
			lt := layered.Build(pts)
			for _, sel := range []float64{0.0002, 0.02} {
				boxes := workload.Boxes(workload.QuerySpec{M: 1000, Dims: d, N: n, Selectivity: sel, Seed: 12})
				time1 := func(f func()) float64 {
					start := time.Now()
					f()
					return float64(time.Since(start).Nanoseconds()) / 1000 / float64(len(boxes))
				}
				sink := 0
				rtT := time1(func() {
					for _, b := range boxes {
						sink += rt.Count(b)
					}
				})
				ltT := time1(func() {
					for _, b := range boxes {
						sink += lt.Count(b)
					}
				})
				_ = sink
				t.AddRow(n, d, sel, rt.Nodes(), lt.Nodes(), rtT, ltT, rtT/ltT)
			}
		}
	}
	return t
}

// E12 measures the dynamized distributed tree (the conclusion's first open
// issue) built with the logarithmic method.
func E12(sc Scale) *Table {
	t := &Table{
		ID:    "E12",
		Title: "Dynamic distributed range tree via the logarithmic method (conclusion)",
		Note: "Batch inserts keep O(log n) static levels; each point is rebuilt " +
			"amortized O(log(n/base)) times, and a query batch pays the static round " +
			"cost once per occupied level — the measured price of dynamization the " +
			"paper anticipated. The delete phase charts the deletion shadow: it " +
			"taxes every query until it reaches 25% of the live set, where the " +
			"automatic fold (Rebuild) resets it — shadow size is sawtooth-bounded, " +
			"rebuilds count the folds.",
		Header: []string{"phase", "live n", "levels", "rebuild mass/point", "query rounds", "query T_model", "static rounds", "shadow", "rebuilds"},
	}
	n, d, p := 1<<11, 2, 4
	if sc == Full {
		n = 1 << 13
	}
	mach := cgm.New(cgm.Config{P: p})
	dt := dynamic.New(mach, d, dynamic.WithBase(8*p))
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 13})
	boxes := workload.Boxes(workload.QuerySpec{M: 256, Dims: d, N: n, Selectivity: 0.01, Seed: 13})
	step := n / 4
	for inserted := 0; inserted < n; {
		dt.InsertBatch(pts[inserted : inserted+step])
		inserted += step
		mach.ResetMetrics()
		dt.CountBatch(boxes)
		mt := mach.Metrics()

		// Static comparison at the same size.
		statMach := cgm.New(cgm.Config{P: p})
		stat := core.Build(statMach, pts[:inserted])
		statMach.ResetMetrics()
		stat.CountBatch(boxes)
		t.AddRow("insert", inserted, dt.Levels(),
			fmt.Sprintf("%.2f", float64(dt.RebuiltPoints())/float64(inserted)),
			mt.CommRounds(),
			mt.ModelTime(cgm.DefaultG, cgm.DefaultL).Round(time.Microsecond).String(),
			statMach.Metrics().CommRounds(), dt.ShadowN(), dt.Rebuilt())
	}
	// Delete phase: walk the shadow up to (and across) the fold threshold.
	step = n / 10
	for deleted := 0; deleted < n/2; {
		dt.DeleteBatch(pts[deleted : deleted+step])
		deleted += step
		mach.ResetMetrics()
		dt.CountBatch(boxes)
		mt := mach.Metrics()
		t.AddRow("delete", dt.N(), dt.Levels(),
			fmt.Sprintf("%.2f", float64(dt.RebuiltPoints())/float64(n)),
			mt.CommRounds(),
			mt.ModelTime(cgm.DefaultG, cgm.DefaultL).Round(time.Microsecond).String(),
			"", dt.ShadowN(), dt.Rebuilt())
	}
	return t
}

// E13 measures the paper's open problem: speeding up a single query. The
// ownership-partitioned algorithm gives parallelism bounded by how many
// distinct owners the query's forest elements touch.
func E13(sc Scale) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Single-query parallelism (the conclusion's open problem)",
		Note: "One query is served by every processor on its own forest part after a " +
			"communication-free hat descent, plus one gather round. The speedup is " +
			"bounded by the number of distinct owners touched (≤ subquery count ≤ " +
			"O(log^d n)) — measured here as busy/idle processors and the serial-vs-max " +
			"work ratio. Wide queries parallelize; needle queries cannot, which is why " +
			"the general problem is open.",
		Header: []string{"n", "p", "query", "subqueries", "busy procs", "work ratio (Σ/max)", "rounds"},
	}
	n, d, p := 1<<12, 2, 8
	if sc == Full {
		n = 1 << 14
	}
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 14})
	mach := cgm.New(cgm.Config{P: p})
	dt := core.Build(mach, pts)
	// Queries chosen to straddle stub boundaries: partial stubs at both
	// interval ends spawn subqueries in every dimension-1 tree the x-range
	// opens, spreading work over owners.
	g := int32(dt.Grain())
	queries := []struct {
		name string
		box  func() []int32
	}{
		{"needle (inside one stub)", func() []int32 { return []int32{100, 108, 100, 108} }},
		{"band (x across stubs, y band)", func() []int32 {
			return []int32{g / 2, int32(n) - g/2, 100, 400}
		}},
		{"wide (hat absorbs it)", func() []int32 { return []int32{1, int32(n / 2), 1, int32(n)} }},
	}
	for _, q := range queries {
		c := q.box()
		b := boxFrom(c[0], c[2], c[1], c[3])
		work := dt.SingleQueryWork(b)
		busy, total, mx := 0, 0, 0
		for _, w := range work {
			if w > 0 {
				busy++
			}
			total += w
			if w > mx {
				mx = w
			}
		}
		mach.ResetMetrics()
		dt.SingleCount(b)
		rounds := mach.Metrics().CommRounds()
		ratio := "-"
		if mx > 0 {
			ratio = fmt.Sprintf("%.2f", float64(total)/float64(mx))
		}
		t.AddRow(n, p, q.name, total, busy, ratio, rounds)
	}
	return t
}

func boxFrom(loX, loY, hiX, hiY int32) geom.Box {
	return geom.Box{Lo: []geom.Coord{loX, loY}, Hi: []geom.Coord{hiX, hiY}}
}
