package expt

import (
	"encoding/json"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/workload"
)

// E15 measures the two hot-path changes of the element-backend work: the
// layered (fractionally cascaded) backend against the plain range tree on
// phase-C serving, and the cross-batch copy cache on phase-B install time
// under a skewed (hot-element) workload.
func E15(sc Scale) *Table {
	tab, _ := phaseC(sc)
	return tab
}

// PhaseCData is the machine-readable record of E15, emitted to
// BENCH_phaseC.json so successive PRs can track the serving trajectory.
type PhaseCData struct {
	Experiment string          `json:"experiment"`
	N          int             `json:"n"`
	Dims       int             `json:"dims"`
	P          int             `json:"p"`
	Queries    int             `json:"queries"`
	Serve      []PhaseCServe   `json:"serve"`
	CopyCache  PhaseCCopyCache `json:"copy_cache"`
}

// PhaseCServe is one backend × mode serving measurement.
type PhaseCServe struct {
	Backend        string  `json:"backend"`
	Mode           string  `json:"mode"`
	MicrosPerQuery float64 `json:"us_per_query"`
}

// PhaseCCopyCache records the cold/warm phase-B install comparison.
type PhaseCCopyCache struct {
	CopiesPerBatch    int     `json:"copies_per_batch"`
	ColdInstallMicros float64 `json:"cold_install_us"`
	WarmInstallMicros float64 `json:"warm_install_us"`
	Speedup           float64 `json:"speedup"`
}

// PhaseCJSON runs E15 and returns the JSON payload for BENCH_phaseC.json.
func PhaseCJSON(sc Scale) ([]byte, error) {
	_, data := phaseC(sc)
	return json.MarshalIndent(data, "", "  ")
}

func phaseC(sc Scale) (*Table, PhaseCData) {
	n, q := 1<<14, 256
	if sc == Full {
		n, q = 1<<17, 512
	}
	const d, p = 3, 8
	data := PhaseCData{Experiment: "E15", N: n, Dims: d, P: p, Queries: q}
	tab := &Table{
		ID:    "E15",
		Title: "Element backends and the copy cache (phase B/C hot path)",
		Note: "Top: µs/query of whole batches served on each element backend — the " +
			"layered backend must win on count and report (the §1 log-factor saving, " +
			"now on the distributed serving path). Bottom: phase-B copy install time " +
			"on a Zipf-skewed workload, cold versus warm cache — batch 2 ships points " +
			"but skips every rebuild, so expect ≥ 2×.",
		Header: []string{"section", "backend", "mode", "µs/query", "install µs", "speedup"},
	}

	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 15})
	boxes := workload.Boxes(workload.QuerySpec{M: q, Dims: d, N: n, Selectivity: 0.001, Seed: 15})
	perQuery := func(f func()) float64 {
		start := time.Now()
		f()
		return float64(time.Since(start).Microseconds()) / float64(q)
	}
	for _, be := range []core.Backend{core.BackendRangeTree, core.BackendLayered} {
		dt := core.BuildBackend(cgm.New(cgm.Config{P: p}), pts, be)
		dt.CountBatch(boxes) // warm the copy cache so phase C dominates
		countT := perQuery(func() { dt.CountBatch(boxes) })
		reportT := perQuery(func() { dt.ReportBatch(boxes) })
		tab.AddRow("serve", be.String(), "count", countT, "", "")
		tab.AddRow("serve", be.String(), "report", reportT, "", "")
		data.Serve = append(data.Serve,
			PhaseCServe{Backend: be.String(), Mode: "count", MicrosPerQuery: countT},
			PhaseCServe{Backend: be.String(), Mode: "report", MicrosPerQuery: reportT})
	}

	// Copy cache: a Zipf-focused batch congests few forest parts, so phase
	// B copies the same elements every batch.
	skewed := workload.Boxes(workload.QuerySpec{M: q, Dims: d, N: n, Selectivity: 0.001, Foci: 2, Seed: 16})
	dt := core.BuildBackend(cgm.New(cgm.Config{P: p}), pts, core.BackendLayered)
	dt.CountBatch(skewed)
	cold := float64(dt.LastPhaseBInstall().Microseconds())
	copies := 0
	for _, st := range dt.LastSearchStats() {
		copies += st.CopiesHeld
	}
	dt.CountBatch(skewed)
	warm := float64(dt.LastPhaseBInstall().Microseconds())
	speedup := 0.0
	if warm > 0 {
		speedup = cold / warm
	}
	tab.AddRow("copy-cache", "layered", "batch 1 (cold)", "", cold, "")
	tab.AddRow("copy-cache", "layered", "batch 2 (warm)", "", warm, speedup)
	data.CopyCache = PhaseCCopyCache{
		CopiesPerBatch:    copies,
		ColdInstallMicros: cold,
		WarmInstallMicros: warm,
		Speedup:           speedup,
	}
	return tab, data
}
