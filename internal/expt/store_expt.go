package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/workload"
)

// E16 measures the mutable serving store against the read-only engine
// path: query cost read-only (the LSM read amplification over a single
// static tree), query cost under a concurrent update mix, and the
// compaction profile (flush/fold counts and the longest build — the
// write-visibility pause; reads never wait on a build).
func E16(sc Scale) *Table {
	tab, _ := storeExpt(sc)
	return tab
}

// StoreData is the machine-readable record of E16, emitted to
// BENCH_store.json so successive PRs can track the mutable-store
// trajectory next to BENCH_phaseC.json's read-only one.
type StoreData struct {
	Experiment string  `json:"experiment"`
	N          int     `json:"n"`
	Dims       int     `json:"dims"`
	P          int     `json:"p"`
	Queries    int     `json:"queries"`
	StaticUs   float64 `json:"static_us_per_query"`
	ReadOnlyUs float64 `json:"store_read_only_us_per_query"`
	ReadAmp    float64 `json:"read_amplification"`
	MixedUs    float64 `json:"store_mixed_us_per_query"`
	Mutations  int     `json:"mutations_during_mix"`
	Flushes    uint64  `json:"flushes"`
	Folds      uint64  `json:"shadow_folds"`
	MaxBuildUs float64 `json:"max_build_us"`
	BuildUs    float64 `json:"total_build_us"`
}

// StoreJSON runs E16 and returns the JSON payload for BENCH_store.json.
func StoreJSON(sc Scale) ([]byte, error) {
	_, data := storeExpt(sc)
	return json.MarshalIndent(data, "", "  ")
}

func storeExpt(sc Scale) (*Table, StoreData) {
	n, q := 1<<13, 192
	if sc == Full {
		n, q = 1<<16, 384
	}
	const d, p = 2, 4
	data := StoreData{Experiment: "E16", N: n, Dims: d, P: p, Queries: q}
	tab := &Table{
		ID:    "E16",
		Title: "Mutable store: update/query mix vs the read-only path",
		Note: "Top: µs/query of count batches on the frozen tree, on the compacted " +
			"store (read amplification should be near 1× — one level), and on the " +
			"store while writers mutate it concurrently. Bottom: the compaction " +
			"profile — flushes, shadow folds, and the longest level build, which is " +
			"the write-visibility pause (queries never wait on it; they serve the " +
			"previous version).",
		Header: []string{"section", "path", "µs/query", "mutations", "detail"},
	}

	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 16})
	boxes := workload.Boxes(workload.QuerySpec{M: q, Dims: d, N: n, Selectivity: 0.005, Seed: 16})
	perQuery := func(f func()) float64 {
		start := time.Now()
		f()
		return float64(time.Since(start).Microseconds()) / float64(q)
	}

	// Read-only baseline: the frozen tree.
	static := core.Build(cgm.New(cgm.Config{P: p}), pts)
	static.CountBatch(boxes) // warm copy caches
	data.StaticUs = perQuery(func() { static.CountBatch(boxes) })
	tab.AddRow("serve", "static tree", data.StaticUs, "", "")

	// The store, compacted to one level: the read-amplification check.
	st, err := store.Open("", store.Config{Dims: d, P: p, MemtableCap: n / 8, Sync: true})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	if _, err := st.InsertBatch(pts); err != nil {
		panic(err)
	}
	st.Compact()
	st.CountBatch(boxes) // warm
	data.ReadOnlyUs = perQuery(func() { st.CountBatch(boxes) })
	if data.StaticUs > 0 {
		data.ReadAmp = data.ReadOnlyUs / data.StaticUs
	}
	tab.AddRow("serve", "store (read-only)", data.ReadOnlyUs, "",
		fmt.Sprintf("%.2f× of static", data.ReadAmp))

	// The update/query mix: a writer mutates while query batches run.
	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		rng := rand.New(rand.NewSource(16))
		muts, next := 0, int32(n)
		for {
			select {
			case <-stop:
				done <- muts
				return
			default:
			}
			ins := make([]geom.Point, 8)
			for i := range ins {
				ins[i] = geom.Point{ID: next, X: []geom.Coord{
					geom.Coord(rng.Intn(4 * n)), geom.Coord(rng.Intn(4 * n))}}
				next++
			}
			if _, err := st.InsertBatch(ins); err != nil {
				panic(err)
			}
			if _, err := st.DeleteBatch(ins[:2]); err != nil {
				panic(err)
			}
			muts += 2
		}
	}()
	data.MixedUs = perQuery(func() {
		for i := 0; i < 4; i++ {
			st.CountBatch(boxes[:q/4])
		}
	})
	close(stop)
	data.Mutations = <-done
	tab.AddRow("serve", "store (mixed)", data.MixedUs, data.Mutations, "writer ran throughout")

	// A deletion wave past the 25% threshold forces a shadow fold, so
	// the compaction section shows the full profile.
	if _, err := st.DeleteBatch(pts[:n/3]); err != nil {
		panic(err)
	}

	ss := st.Stats()
	data.Flushes = ss.Flushes
	data.Folds = ss.Compactions
	data.MaxBuildUs = float64(ss.MaxBuild.Microseconds())
	data.BuildUs = float64(ss.BuildWall.Microseconds())
	tab.AddRow("compaction", "flushes", "", ss.Flushes, "")
	tab.AddRow("compaction", "shadow folds", "", ss.Compactions, "")
	tab.AddRow("compaction", "max build (pause)", data.MaxBuildUs, "", "write-visibility, not read, latency")
	return tab, data
}
