// Package expt is the benchmark harness that regenerates the paper's
// "evaluation". The paper is theoretical — its results are Theorems 1–4
// and Figures 1–3 — so each experiment measures the quantity a theorem
// bounds (structure sizes, communication rounds, h-relation volumes,
// modelled BSP time, output balance) or renders the structure a figure
// depicts, and prints it as a table. DESIGN.md §9 is the experiment index;
// EXPERIMENTS.md records one captured run.
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Note   string // what the paper predicts, and what to look for
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range wrap(t.Note, 78) {
			fmt.Fprintf(w, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	dashes := make([]string, len(t.Header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub markdown (for EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	b.WriteString("\n")
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func wrap(s string, w int) []string {
	words := strings.Fields(s)
	var lines []string
	cur := ""
	for _, word := range words {
		if cur == "" {
			cur = word
		} else if len(cur)+1+len(word) <= w {
			cur += " " + word
		} else {
			lines = append(lines, cur)
			cur = word
		}
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
