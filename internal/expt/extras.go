package expt

import (
	"fmt"
	"time"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/rangetree"
	"repro/internal/workload"
)

// E5 compares the sequential baselines the paper positions the range tree
// against (§1): k-D tree (optimal space, weak worst-case search) and
// linear scan.
func E5(sc Scale) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Sequential baselines: range tree vs k-D tree vs scan (paper §1)",
		Note: "The paper's trade-off: the range tree spends n·log^(d-1) n space for a " +
			"polylog worst-case query, the k-D tree keeps O(n) space but pays " +
			"O(d·n^(1-1/d)) worst case. Compact 'square' boxes are the k-D tree's " +
			"friendly case (expect kd/rt < 1); 'slab' boxes — thin in one dimension, " +
			"unbounded in the rest — realize its worst case (expect kd/rt > 1, growing " +
			"with n). Both shapes beat the scan.",
		Header: []string{"n", "d", "shape", "rt nodes", "kd nodes", "rt µs/q", "kd µs/q", "scan µs/q", "kd/rt"},
	}
	ns := []int{1 << 12}
	if sc == Full {
		ns = []int{1 << 12, 1 << 14}
	}
	for _, d := range []int{2, 3} {
		for _, n := range ns {
			if d == 3 && n > 1<<12 {
				continue
			}
			pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 6})
			square := workload.Boxes(workload.QuerySpec{M: 400, Dims: d, N: n, Selectivity: 0.0005, Seed: 6})
			slabs := workload.SlabBoxes(400, d, n, 0.002, 6)
			rt := rangetree.Build(pts)
			kd := kdtree.Build(pts)
			bf := brute.New(pts)
			for _, shape := range []struct {
				name  string
				boxes []geom.Box
			}{{"square", square}, {"slab", slabs}} {
				boxes := shape.boxes
				time1 := func(f func()) float64 {
					start := time.Now()
					f()
					return float64(time.Since(start).Nanoseconds()) / 1000 / float64(len(boxes))
				}
				var sink int
				rtT := time1(func() {
					for _, b := range boxes {
						sink += rt.Count(b)
					}
				})
				kdT := time1(func() {
					for _, b := range boxes {
						sink += kd.Count(b)
					}
				})
				bfT := time1(func() {
					for _, b := range boxes {
						sink += bf.Count(b)
					}
				})
				_ = sink
				t.AddRow(n, d, shape.name, rt.Nodes(), kd.Nodes(), rtT, kdT, bfT, kdT/rtT)
			}
		}
	}
	return t
}

// E6 is the load-balancing ablation: Zipf-skewed query foci congest a few
// forest groups; the paper's c_j replication keeps the served load
// balanced where a no-replication strawman concentrates it on one owner.
func E6(sc Scale) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Load balancing under query skew (Algorithm Search steps 2-4)",
		Note: "strawman = max_j demand_j / (D/p): the load factor if every subquery " +
			"went to its owner (no copies). balanced = max served / (D/p) under the " +
			"replication plan, at the paper's group granularity and at the " +
			"element-granularity ablation. The strawman degrades towards p under " +
			"heavy skew (foci=1); both balanced plans stay near 1, and the element " +
			"plan ships far fewer copied points when demand is concentrated.",
		Header: []string{"n", "p", "foci", "granularity", "D (subqueries)", "strawman", "balanced", "copied points"},
	}
	n, d, p := 1<<11, 2, 8
	if sc == Full {
		n = 1 << 13
	}
	dt, _ := buildMeasured(n, d, p, 7)
	for _, foci := range []int{0, 4, 1} {
		boxes := workload.Boxes(workload.QuerySpec{
			M: n, Dims: d, N: n, Selectivity: 0.0005, Foci: foci, Theta: 1.5, Seed: 7,
		})
		for _, mode := range []struct {
			name string
			m    core.BalanceMode
		}{{"group (paper)", core.GroupLevel}, {"element", core.ElementLevel}} {
			dt.SetBalanceMode(mode.m)
			dt.CountBatch(boxes)
			stats := dt.LastSearchStats()
			D, maxServed := 0, 0
			for _, s := range stats {
				D += s.Served
				if s.Served > maxServed {
					maxServed = s.Served
				}
			}
			maxDemand := 0
			for _, x := range dt.LastDemand() {
				if x > maxDemand {
					maxDemand = x
				}
			}
			fociLabel := "uniform"
			if foci > 0 {
				fociLabel = fmt.Sprint(foci)
			}
			if D == 0 {
				t.AddRow(n, p, fociLabel, mode.name, 0, "-", "-", dt.LastCopiedPoints())
				continue
			}
			avg := float64(D) / float64(p)
			t.AddRow(n, p, fociLabel, mode.name, D,
				float64(maxDemand)/avg,
				float64(maxServed)/avg,
				dt.LastCopiedPoints())
		}
	}
	dt.SetBalanceMode(core.GroupLevel)
	return t
}

// E7 audits every communication round of one build+search cycle against
// the h = O(s/p) bound of Corollaries 1–3.
func E7(sc Scale) *Table {
	n, d, p := 1<<11, 2, 4
	if sc == Full {
		n = 1 << 13
	}
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 8})
	s := rangetree.Build(pts).Nodes()
	mach := cgm.New(cgm.Config{P: p})
	dt := core.Build(mach, pts)
	boxes := workload.Boxes(workload.QuerySpec{M: n, Dims: d, N: n, Selectivity: 0.001, Seed: 8})
	dt.CountBatch(boxes)
	t := &Table{
		ID:    "E7",
		Title: "h-relation audit: every round of construct + search (Corollaries 1-3)",
		Note: fmt.Sprintf("s/p = %d for n=%d, d=%d, p=%d. Every round's h must be O(s/p); "+
			"the table shows h·p/s per round (aggregated by collective label).", s/p, n, d, p),
		Header: []string{"round (collective)", "occurrences", "max h", "h·p/s"},
	}
	type agg struct {
		count, maxH int
	}
	order := []string{}
	byLabel := map[string]*agg{}
	for _, r := range mach.Metrics().Rounds {
		if r.Final {
			continue
		}
		a, ok := byLabel[r.Label]
		if !ok {
			a = &agg{}
			byLabel[r.Label] = a
			order = append(order, r.Label)
		}
		a.count++
		if r.MaxH > a.maxH {
			a.maxH = r.MaxH
		}
	}
	for _, label := range order {
		a := byLabel[label]
		t.AddRow(label, a.count, a.maxH, float64(a.maxH)*float64(p)/float64(s))
	}
	return t
}

// E8 sweeps the dimension: space and time grow by a log n factor per
// dimension (s = n·log^(d-1) n).
func E8(sc Scale) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Dimension sweep: s = n·log^(d-1) n growth",
		Note: "ratio(d) = nodes(d)/nodes(d-1) should approach c·log n; construct and " +
			"search model times grow accordingly.",
		Header: []string{"d", "n", "seq nodes s", "s ratio", "construct T_model", "search T_model", "rounds"},
	}
	n := 1 << 10
	if sc == Full {
		n = 1 << 12
	}
	prev := 0
	for d := 1; d <= 4; d++ {
		pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 9})
		s := rangetree.Build(pts).Nodes()
		mach := cgm.New(cgm.Config{P: 4, Mode: cgm.Measured})
		dt := core.Build(mach, pts)
		buildModel := mach.Metrics().ModelTime(cgm.DefaultG, cgm.DefaultL)
		boxes := workload.Boxes(workload.QuerySpec{M: 512, Dims: d, N: n, Selectivity: 0.01, Seed: 9})
		mach.ResetMetrics()
		dt.CountBatch(boxes)
		mt := mach.Metrics()
		ratio := "-"
		if prev > 0 {
			ratio = fmt.Sprintf("%.2f", float64(s)/float64(prev))
		}
		t.AddRow(d, n, s, ratio,
			buildModel.Round(time.Microsecond).String(),
			mt.ModelTime(cgm.DefaultG, cgm.DefaultL).Round(time.Microsecond).String(),
			mt.CommRounds())
		prev = s
	}
	return t
}

// E9 is the speedup curve: modelled parallel time vs p for construction
// and search, the headline "T_seq/p + constant rounds" claim.
func E9(sc Scale) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Modelled speedup vs p (optimality claim of Theorems 2-3)",
		Note: "Speedups are measured in Measured mode (processors time-sliced, BSP cost " +
			"Σ max_i w_i + g·h + L). Expect near-linear growth until p² approaches s, " +
			"then the constant rounds bite (the paper's s/p ≥ p coarse-grained regime).",
		Header: []string{"p", "construct T_model", "construct speedup", "search T_model", "search speedup"},
	}
	n, d := 1<<12, 2
	ps := []int{1, 2, 4, 8}
	if sc == Full {
		n = 1 << 14
		ps = []int{1, 2, 4, 8, 16}
	}
	boxes := workload.Boxes(workload.QuerySpec{M: n, Dims: d, N: n, Selectivity: 0.001, Seed: 10})
	var baseB, baseS time.Duration
	for _, p := range ps {
		dt, bm := buildMeasured(n, d, p, 10)
		buildModel := bm.ModelTime(cgm.DefaultG, cgm.DefaultL)
		dt.Machine().ResetMetrics()
		dt.CountBatch(boxes)
		searchModel := dt.Machine().Metrics().ModelTime(cgm.DefaultG, cgm.DefaultL)
		if p == 1 {
			baseB, baseS = buildModel, searchModel
		}
		t.AddRow(p,
			buildModel.Round(time.Microsecond).String(), float64(baseB)/float64(buildModel),
			searchModel.Round(time.Microsecond).String(), float64(baseS)/float64(searchModel))
	}
	return t
}

// E10 sweeps the batch size m: the paper answers batches of m = O(n)
// queries; per-query cost should flatten once m amortizes the fixed
// rounds.
func E10(sc Scale) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Batch-size sweep: amortizing the constant rounds over m queries",
		Note: "Per-query modelled time falls as m grows (fixed superstep latency spread " +
			"over more queries) and flattens near m = n — the regime the paper " +
			"analyses. Rounds stay constant throughout.",
		Header: []string{"m/n", "m", "rounds", "T_model", "T_model/query"},
	}
	n, d, p := 1<<12, 2, 8
	if sc == Full {
		n = 1 << 13
	}
	dt, _ := buildMeasured(n, d, p, 11)
	for _, frac := range []float64{0.0625, 0.25, 1, 4} {
		m := int(float64(n) * frac)
		boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: d, N: n, Selectivity: 0.001, Seed: 11})
		dt.Machine().ResetMetrics()
		dt.CountBatch(boxes)
		mt := dt.Machine().Metrics()
		model := mt.ModelTime(cgm.DefaultG, cgm.DefaultL)
		t.AddRow(frac, m, mt.CommRounds(),
			model.Round(time.Microsecond).String(),
			(model / time.Duration(m)).String())
	}
	return t
}

// All runs every experiment at the given scale, in index order.
func All(sc Scale) []*Table {
	return []*Table{
		F1(), F2(), F3(),
		T1(sc), T2(sc), T3(sc), T4a(sc), T4b(sc),
		E5(sc), E6(sc), E7(sc), E8(sc), E9(sc), E10(sc),
		E11(sc), E12(sc), E13(sc), E14(sc), E15(sc),
	}
}
