package expt

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestF1RootSegment(t *testing.T) {
	tab := F1()
	if len(tab.Rows) != 4 {
		t.Fatalf("F1 has %d levels, want 4", len(tab.Rows))
	}
	if tab.Rows[0][1] != "[1,8]" {
		t.Errorf("root row = %q, want [1,8]", tab.Rows[0][1])
	}
	if !strings.Contains(tab.Rows[3][1], "[8,8]") {
		t.Errorf("leaf row %q missing [8,8]", tab.Rows[3][1])
	}
}

func TestF2IndexColumnsAgree(t *testing.T) {
	tab := F2()
	for _, r := range tab.Rows {
		if r[1] != r[2] {
			t.Errorf("node %s: paper %s vs computed %s", r[0], r[1], r[2])
		}
	}
}

func TestF3ExactCounts(t *testing.T) {
	tab := F3()
	cells := map[string]string{}
	for _, r := range tab.Rows {
		cells[r[0]] = r[1]
	}
	if cells["grain g = ceil(n/p)"] != "8" {
		t.Errorf("grain = %s, want 8", cells["grain g = ceil(n/p)"])
	}
	if cells["dimension-one forest elements (want p)"] != "8" {
		t.Errorf("dim-1 elements = %s, want 8", cells["dimension-one forest elements (want p)"])
	}
}

func TestT1BoundsHold(t *testing.T) {
	tab := T1(Quick)
	if len(tab.Rows) == 0 {
		t.Fatal("T1 empty")
	}
	for _, r := range tab.Rows {
		ratio, err := strconv.ParseFloat(r[5], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", r[5])
		}
		if ratio > 16 {
			t.Errorf("hat ratio %v too large in row %v", ratio, r)
		}
		fRatio, err := strconv.ParseFloat(r[7], 64)
		if err != nil {
			t.Fatalf("bad |F_i| ratio cell %q", r[7])
		}
		if fRatio > 6 {
			t.Errorf("forest part ratio %v too large in row %v", fRatio, r)
		}
	}
}

func TestT2RoundsConstant(t *testing.T) {
	tab := T2(Quick)
	var rounds []string
	for _, r := range tab.Rows {
		rounds = append(rounds, r[3])
	}
	for _, x := range rounds[1:] {
		if x != rounds[0] {
			t.Errorf("construction rounds vary across p: %v", rounds)
		}
	}
}

func TestT3SpeedupPositive(t *testing.T) {
	tab := T3(Quick)
	last := tab.Rows[len(tab.Rows)-1]
	sp, err := strconv.ParseFloat(last[7], 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", last[7])
	}
	if sp <= 0 {
		t.Errorf("speedup %v must be positive", sp)
	}
}

func TestT4bBalanceNearOne(t *testing.T) {
	tab := T4b(Quick)
	// At the largest selectivity the balance ratio must be sane.
	last := tab.Rows[len(tab.Rows)-1]
	bal, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		t.Fatalf("bad balance cell %q", last[5])
	}
	if bal > 1.6 {
		t.Errorf("report balance %v, want ≈ 1", bal)
	}
}

func TestE6SkewImprovement(t *testing.T) {
	tab := E6(Quick)
	// The last row is foci=1 (hardest skew): balanced must beat strawman.
	last := tab.Rows[len(tab.Rows)-1]
	if last[4] == "-" {
		t.Skip("no subqueries generated")
	}
	strawman, err1 := strconv.ParseFloat(last[4], 64)
	balanced, err2 := strconv.ParseFloat(last[5], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad cells %q %q", last[4], last[5])
	}
	if balanced > strawman+0.01 {
		t.Errorf("balanced %v worse than strawman %v under skew", balanced, strawman)
	}
}

func TestE7AllRoundsWithinBound(t *testing.T) {
	tab := E7(Quick)
	for _, r := range tab.Rows {
		ratio, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("bad cell %q", r[3])
		}
		if ratio > 4 {
			t.Errorf("round %s has h·p/s = %v, want O(1)", r[0], ratio)
		}
	}
}

func TestE8MonotoneGrowth(t *testing.T) {
	tab := E8(Quick)
	prev := 0
	for _, r := range tab.Rows {
		s, err := strconv.Atoi(r[2])
		if err != nil {
			t.Fatalf("bad nodes cell %q", r[2])
		}
		if s < prev {
			t.Errorf("space shrank with d: %v", tab.Rows)
		}
		prev = s
	}
}

func TestE11LayeredWinsModerateSelectivity(t *testing.T) {
	tab := E11(Quick)
	// Rows with selectivity 0.02: layered must not lose.
	checked := 0
	for _, r := range tab.Rows {
		if r[2] != "0.02" {
			continue
		}
		ratio, err := strconv.ParseFloat(r[7], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", r[7])
		}
		if ratio < 0.9 {
			t.Errorf("layered slower at moderate selectivity: %v (row %v)", ratio, r)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no moderate-selectivity rows")
	}
}

func TestE12RoundsGrowWithLevels(t *testing.T) {
	tab := E12(Quick)
	folds := 0
	for _, r := range tab.Rows {
		switch r[0] {
		case "insert":
			levels, err1 := strconv.Atoi(r[2])
			rounds, err2 := strconv.Atoi(r[4])
			static, err3 := strconv.Atoi(r[6])
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("bad row %v", r)
			}
			if rounds != levels*static {
				t.Errorf("rounds %d != levels %d × static %d", rounds, levels, static)
			}
		case "delete":
			live, err1 := strconv.Atoi(r[1])
			shadow, err2 := strconv.Atoi(r[7])
			rebuilds, err3 := strconv.Atoi(r[8])
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("bad row %v", r)
			}
			// The automatic fold keeps the shadow strictly below the
			// 25% threshold after every delete batch lands.
			if 4*shadow >= live && shadow > 0 {
				t.Errorf("shadow %d not folded at live %d", shadow, live)
			}
			folds = rebuilds
		default:
			t.Fatalf("unknown phase %q", r[0])
		}
	}
	if folds == 0 {
		t.Error("delete phase never triggered a shadow fold")
	}
}

func TestE13BandParallelizes(t *testing.T) {
	tab := E13(Quick)
	found := false
	for _, r := range tab.Rows {
		if !strings.HasPrefix(r[2], "band") {
			continue
		}
		found = true
		busy, err := strconv.Atoi(r[4])
		if err != nil {
			t.Fatalf("bad busy cell %q", r[4])
		}
		if busy < 2 {
			t.Errorf("band query busy procs = %d, want ≥ 2", busy)
		}
	}
	if !found {
		t.Fatal("no band row")
	}
}

func TestE14ProducesFiniteScores(t *testing.T) {
	tab := E14(Quick)
	geoRows := 0
	for _, r := range tab.Rows {
		if r[1] != "geo-mean" {
			continue
		}
		geoRows++
		score, err := strconv.ParseFloat(r[4], 64)
		if err != nil {
			t.Fatalf("bad score cell %q", r[4])
		}
		// Predictions must stay within an order of magnitude; tighter
		// bounds are recorded (not asserted) because the host timing in
		// CI-sized quick runs is noisy.
		if score > 10 {
			t.Errorf("geo-mean error %v too large (row %v)", score, r)
		}
	}
	if geoRows != 2 {
		t.Fatalf("expected 2 geo-mean rows, got %d", geoRows)
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	tab := F1()
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== F1") || !strings.Contains(out, "[1,8]") {
		t.Errorf("Render output missing content:\n%s", out)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "### F1") || !strings.Contains(md, "| level |") {
		t.Errorf("Markdown output missing content:\n%s", md)
	}
}
