package cgm

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunAllProcsExecute(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Measured} {
		m := New(Config{P: 5, Mode: mode})
		var ran int64
		m.Run(func(pr *Proc) {
			atomic.AddInt64(&ran, 1)
			if pr.P() != 5 {
				t.Error("P wrong")
			}
		})
		if ran != 5 {
			t.Fatalf("mode %v: ran = %d", mode, ran)
		}
	}
}

func TestRanksDistinct(t *testing.T) {
	m := New(Config{P: 8})
	seen := make([]int64, 8)
	m.Run(func(pr *Proc) { atomic.AddInt64(&seen[pr.Rank()], 1) })
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("rank %d executed %d times", r, c)
		}
	}
}

func TestExchangeTransposes(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Measured} {
		m := New(Config{P: 4, Mode: mode})
		var results [4][][]int
		m.Run(func(pr *Proc) {
			out := make([][]int, 4)
			for j := 0; j < 4; j++ {
				out[j] = []int{pr.Rank()*10 + j}
			}
			results[pr.Rank()] = Exchange(pr, "transpose", out)
		})
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				// in[j] at proc i must be what proc j addressed to i.
				want := j*10 + i
				if got := results[i][j][0]; got != want {
					t.Fatalf("mode %v proc %d from %d: got %d want %d", mode, i, j, got, want)
				}
			}
		}
	}
}

func TestMultipleRoundsAndMetrics(t *testing.T) {
	m := New(Config{P: 3})
	m.Run(func(pr *Proc) {
		for r := 0; r < 4; r++ {
			out := make([][]byte, 3)
			for j := 0; j < 3; j++ {
				out[j] = make([]byte, 2) // each proc sends 6, receives 6
			}
			Exchange(pr, "r", out)
		}
	})
	mt := m.Metrics()
	if mt.CommRounds() != 4 {
		t.Errorf("CommRounds = %d, want 4", mt.CommRounds())
	}
	if mt.MaxH() != 6 {
		t.Errorf("MaxH = %d, want 6", mt.MaxH())
	}
	if mt.TotalComm() != 4*3*6 {
		t.Errorf("TotalComm = %d, want 72", mt.TotalComm())
	}
	if mt.Runs != 1 {
		t.Errorf("Runs = %d", mt.Runs)
	}
	// The final pseudo-round exists and carries no h.
	last := mt.Rounds[len(mt.Rounds)-1]
	if !last.Final || last.MaxH != 0 {
		t.Errorf("final round wrong: %+v", last)
	}
}

func TestMetricsAccumulateAndReset(t *testing.T) {
	m := New(Config{P: 2})
	run := func() {
		m.Run(func(pr *Proc) { Barrier(pr, "b") })
	}
	run()
	run()
	if got := m.Metrics().CommRounds(); got != 2 {
		t.Errorf("accumulated rounds = %d, want 2", got)
	}
	m.ResetMetrics()
	if got := m.Metrics().CommRounds(); got != 0 {
		t.Errorf("rounds after reset = %d", got)
	}
}

func TestUnevenHAccounting(t *testing.T) {
	m := New(Config{P: 4})
	m.Run(func(pr *Proc) {
		out := make([][]int, 4)
		if pr.Rank() == 2 {
			out[0] = make([]int, 10) // proc 2 sends 10 to proc 0
		}
		Exchange(pr, "skew", out)
	})
	mt := m.Metrics()
	if mt.MaxH() != 10 {
		t.Errorf("MaxH = %d, want 10 (max of sent=10 at p2, recv=10 at p0)", mt.MaxH())
	}
	if mt.TotalComm() != 10 {
		t.Errorf("TotalComm = %d, want 10", mt.TotalComm())
	}
}

func TestSPMDLabelViolationAborts(t *testing.T) {
	m := New(Config{P: 2})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected machine abort")
		}
		if !strings.Contains(r.(string), "SPMD violation") {
			t.Fatalf("unexpected abort payload: %v", r)
		}
	}()
	m.Run(func(pr *Proc) {
		label := "a"
		if pr.Rank() == 1 {
			label = "b"
		}
		Barrier(pr, label)
	})
}

func TestUserPanicPropagates(t *testing.T) {
	m := New(Config{P: 3, Mode: Measured})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected abort from user panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("cause lost: %v", r)
		}
	}()
	m.Run(func(pr *Proc) {
		if pr.Rank() == 1 {
			panic("boom")
		}
		// Other processors park at a collective; the abort must free them
		// rather than deadlock.
		Barrier(pr, "park")
	})
}

func TestWrongDestCountPanics(t *testing.T) {
	m := New(Config{P: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected abort")
		}
	}()
	m.Run(func(pr *Proc) {
		Exchange(pr, "bad", make([][]int, 3)) // 3 destinations on a 2-proc machine
	})
}

func TestSingleProcMachine(t *testing.T) {
	m := New(Config{P: 1})
	m.Run(func(pr *Proc) {
		in := Exchange(pr, "self", [][]string{{"x"}})
		if len(in) != 1 || in[0][0] != "x" {
			t.Error("self-exchange wrong")
		}
	})
	if m.Metrics().CommRounds() != 1 {
		t.Error("round not counted on P=1")
	}
}

func TestMeasuredModeWorkAccounting(t *testing.T) {
	m := New(Config{P: 4, Mode: Measured})
	var sink int64
	m.Run(func(pr *Proc) {
		// Unequal local work: proc 3 does the most.
		x := 0
		for i := 0; i < (pr.Rank()+1)*500000; i++ {
			x += i ^ (i >> 3)
		}
		atomic.AddInt64(&sink, int64(x))
		Barrier(pr, "sync")
	})
	_ = atomic.LoadInt64(&sink)
	mt := m.Metrics()
	if mt.WorkByProc[3] <= mt.WorkByProc[0] {
		t.Errorf("measured work not ordered: p0=%v p3=%v", mt.WorkByProc[0], mt.WorkByProc[3])
	}
	if mt.LocalWork() <= 0 || mt.TotalWork() < mt.MaxWorkByProc() {
		t.Error("work aggregates inconsistent")
	}
}

func TestModelTime(t *testing.T) {
	m := New(Config{P: 2, G: 10, L: 1000})
	m.Run(func(pr *Proc) {
		out := make([][]int, 2)
		out[1-pr.Rank()] = make([]int, 5)
		Exchange(pr, "x", out)
	})
	mt := m.Metrics()
	// ModelTime ≥ g·h + L = 10*5 + 1000.
	if mt.ModelTime(m.G(), m.L()) < 1050 {
		t.Errorf("ModelTime = %v, want ≥ 1050ns", mt.ModelTime(m.G(), m.L()))
	}
	if m.G() != 10 || m.L() != 1000 {
		t.Error("G/L accessors wrong")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{P: 0})
}

func TestDefaultCostParameters(t *testing.T) {
	m := New(Config{P: 1})
	if m.G() != DefaultG || m.L() != DefaultL {
		t.Errorf("defaults not applied: g=%v l=%v", m.G(), m.L())
	}
}
