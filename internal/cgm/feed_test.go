package cgm

import (
	"testing"
	"time"
)

// TestShareGovernorUncapped pins the nil-governor contract: shares
// outside (0, 1) mean "no cap", and every method on the nil receiver is
// a free no-op — callers never branch on whether a cap is configured.
func TestShareGovernorUncapped(t *testing.T) {
	for _, share := range []float64{0, -0.5, 1, 1.5} {
		if g := NewShareGovernor(share); g != nil {
			t.Fatalf("NewShareGovernor(%v) = %v, want nil (uncapped)", share, g)
		}
	}
	var g *ShareGovernor
	if w := g.Admit(); w != 0 {
		t.Fatalf("nil governor admitted with wait %v", w)
	}
	g.Charge(time.Second)
	if waits, ns := g.Stats(); waits != 0 || ns != 0 {
		t.Fatalf("nil governor reported stats %d/%d", waits, ns)
	}
}

// TestShareGovernorPaces checks the token-bucket arithmetic: charging
// busy time at a 25% share must stretch wall-time to roughly
// (busy − burst) / share, because sleeping accrues credit at share per
// second and Admit sleeps exactly the debt off.
func TestShareGovernorPaces(t *testing.T) {
	const share = 0.25
	g := NewShareGovernor(share)
	if g == nil {
		t.Fatal("NewShareGovernor(0.25) = nil")
	}

	const step, steps = 2 * time.Millisecond, 30
	const busy = step * steps // 60ms charged without doing real work
	start := time.Now()
	for i := 0; i < steps; i++ {
		g.Admit()
		g.Charge(step)
	}
	g.Admit() // settle the final debt
	wall := time.Since(start)

	// The burst (20ms) rides for free; the remaining 40ms of busy time
	// must be paced out to 40ms/0.25 = 160ms of wall-time. Bound it
	// loosely from below (sleep can only overshoot) and sanely from
	// above so a broken refill that over-credits still fails.
	min := time.Duration(float64(busy-governorBurst) / share)
	if wall < min*9/10 {
		t.Fatalf("governor paced %v of busy time in %v wall; want >= ~%v", busy, wall, min)
	}
	if wall > 5*min {
		t.Fatalf("governor took %v for %v of busy time; pacing is wildly over-throttled", wall, busy)
	}
	waits, waitNs := g.Stats()
	if waits == 0 || waitNs == 0 {
		t.Fatalf("governor paced load without recording throttle stats: waits=%d ns=%d", waits, waitNs)
	}
}

// TestShareGovernorBurstRidesFree: work totalling less than the banked
// burst proceeds without a single sleep.
func TestShareGovernorBurstRidesFree(t *testing.T) {
	g := NewShareGovernor(0.5)
	for i := 0; i < 4; i++ {
		if w := g.Admit(); w != 0 {
			t.Fatalf("admit %d slept %v inside the burst budget", i, w)
		}
		g.Charge(time.Millisecond)
	}
	if waits, _ := g.Stats(); waits != 0 {
		t.Fatalf("burst-sized load recorded %d throttle waits", waits)
	}
}
