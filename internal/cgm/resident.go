package cgm

import (
	"fmt"
	"reflect"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/wire"
)

// This file is the machine-side half of worker-resident execution
// (internal/exec): the transport contract for hosting per-rank program
// state, and the three primitives SPMD programs use against it —
//
//	CallResident     a pure remote step (no h-relation, no round)
//	ExchangeCollect  deposit from the program, column consumed resident-side
//	ExchangeSteps    deposit emitted AND column consumed resident-side
//
// The two exchange forms are ordinary supersteps to the machine: same
// stamp discipline, same barrier structure, and sent/recv element counts
// identical to a coordinator-side Exchange of the same rows — so Metrics
// are byte-for-byte equal across {fabric, resident} by construction. What
// residency changes is where the payload bytes originate and terminate:
// on a wire transport they move worker-to-worker without ever transiting
// the coordinator.

// ResidentTransport is implemented by transports that host per-rank
// program state (an exec state store per rank) where superstep payloads
// can originate and terminate.
type ResidentTransport interface {
	Transport
	// CallStep runs a registered pure step against rank's resident state.
	CallStep(rank int, ref exec.Ref, args []byte) ([]byte, error)
	// ExchangeResident runs one superstep whose column is consumed (and,
	// when dep.Emit is set, whose deposit is produced) resident-side.
	ExchangeResident(rank int, dep ResidentDeposit) (ResidentReply, error)
}

// ResidentDeposit is one rank's contribution to a resident superstep.
type ResidentDeposit struct {
	// Seq and Stamp mirror Deposit: the SPMD check compares them.
	Seq   int
	Stamp string
	// Type names the exchanged element type when Blocks are provided;
	// emit-resident deposits take it from the emit step's Outbox.
	Type string
	// Trace is the machine's trace stamp for this superstep (0 =
	// untraced); resident hosts stamp their emit/collect spans with it.
	Trace uint64
	// Blocks is the coordinator-produced deposit (when Emit is nil). The
	// self slot IS included — unlike a fabric deposit, the consumer is on
	// the resident side, so the self-addressed block must travel too.
	Blocks [][]byte
	// Sent is the deposit's element count (when Emit is nil; emit-resident
	// deposits are counted by the emit step).
	Sent int
	// Emit, when set, produces the deposit resident-side.
	Emit     *exec.Ref
	EmitArgs []byte
	// Collect consumes the assembled column resident-side (always set).
	Collect     *exec.Ref
	CollectArgs []byte
}

// ResidentReply is what one rank gets back from a resident superstep.
type ResidentReply struct {
	// Reply is the collect step's encoded reply.
	Reply []byte
	// Note is the emit step's note (emit-resident only).
	Note []byte
	// Sent and Recv are the rank's element counts for h accounting.
	Sent, Recv int
}

// residentTransport resolves the machine's transport as resident, failing
// the run with a diagnostic when the machine was not configured for
// residency.
func (pr *Proc) residentTransport(what string) ResidentTransport {
	m := pr.m
	rt, ok := m.tr.(ResidentTransport)
	if !ok || !m.resident {
		m.fail(fmt.Sprintf("cgm: %s needs a resident machine (Config.Resident)", what))
	}
	return rt
}

// CallResident runs a registered pure step against the rank's resident
// state — in the worker process on a wire transport, in the machine's
// local state store on the loopback. It is not a collective: no superstep,
// no communication round; the dispatch round-trip is charged as local
// computation time.
func CallResident[A any, R any](pr *Proc, ref exec.Ref, args A) R {
	rt := pr.residentTransport("CallResident")
	b, err := rt.CallStep(pr.rank, ref, exec.Marshal(args))
	if err != nil {
		pr.m.fail(fmt.Sprintf("cgm: resident step %s/%s on rank %d: %v", ref.Program, ref.Step, pr.rank, err))
	}
	r, err := exec.Unmarshal[R](b)
	if err != nil {
		pr.m.fail(fmt.Sprintf("cgm: resident step %s/%s reply: %v", ref.Program, ref.Step, err))
	}
	return r
}

// ResidentCall runs a registered step against rank's resident state
// outside any machine run (structure inspection, point fetches). The
// caller must guarantee no Run is in flight — the same single-use
// contract Machine.Run itself has.
func ResidentCall[A any, R any](m *Machine, rank int, ref exec.Ref, args A) (R, error) {
	var zero R
	rt, ok := m.tr.(ResidentTransport)
	if !ok || !m.resident {
		return zero, fmt.Errorf("cgm: machine is not resident")
	}
	b, err := rt.CallStep(rank, ref, exec.Marshal(args))
	if err != nil {
		return zero, fmt.Errorf("cgm: resident step %s/%s on rank %d: %w", ref.Program, ref.Step, rank, err)
	}
	return exec.Unmarshal[R](b)
}

// ExchangeCollect is a superstep whose deposit the program provides (as
// typed rows, like Exchange) but whose assembled column is consumed by a
// registered collect step where the rank's state lives; it returns the
// collect step's reply. Exactly one communication round, with the same
// label, stamp and element counts as Exchange of the same rows.
func ExchangeCollect[T any, A any, R any](pr *Proc, label string, out [][]T, collect exec.Ref, cargs A) R {
	r, _ := ExchangeCollectRecv[T, A, R](pr, label, out, collect, cargs)
	return r
}

// ExchangeCollectRecv is ExchangeCollect returning the rank's received
// element count alongside the reply — the count a coordinator-side
// Exchange of the same rows would have observed locally. The fused
// route-and-serve supersteps use it to keep SearchStats.Served exact
// without a separate accounting round.
func ExchangeCollectRecv[T any, A any, R any](pr *Proc, label string, out [][]T, collect exec.Ref, cargs A) (R, int) {
	m := pr.m
	if len(out) != m.p {
		panic(fmt.Sprintf("cgm: %s: out has %d destinations, machine has %d", label, len(out), m.p))
	}
	pr.residentTransport("ExchangeCollect")
	pr.closeSegment()
	pr.releaseToken()

	stamp := fmt.Sprintf("%s#%d", label, pr.opSeq)
	dep := ResidentDeposit{
		Seq:         pr.opSeq,
		Stamp:       stamp,
		Type:        reflect.TypeOf((*T)(nil)).Elem().String(),
		Collect:     &collect,
		CollectArgs: exec.Marshal(cargs),
	}
	pr.opSeq++
	sent := 0
	for _, s := range out {
		sent += len(s)
	}
	dep.Sent = sent
	blocks := make([][]byte, len(out))
	buf := wire.GetBuf()
	for j, part := range out {
		// The self slot is encoded too: the consumer is resident-side.
		start := len(buf)
		var err error
		buf, err = wire.Encode(buf, part)
		if err != nil {
			m.fail(fmt.Sprintf("cgm: %s: encoding payload: %v", stamp, err))
		}
		blocks[j] = buf[start:len(buf):len(buf)]
	}
	dep.Blocks = blocks

	rep := pr.runResident(label, dep)
	// runResident's closing barrier means every rank's collect step has
	// consumed its column; the deposit buffer can be pooled again.
	wire.PutBuf(buf)
	r, err := exec.Unmarshal[R](rep.Reply)
	if err != nil {
		m.fail(fmt.Sprintf("cgm: %s: decoding collect reply: %v", stamp, err))
	}
	return r, rep.Recv
}

// ExchangeSteps is a superstep whose deposit is produced by a registered
// emit step AND whose column is consumed by a registered collect step,
// both where the rank's state lives — the payload never touches the
// coordinator on a wire transport. It returns the emit step's note and
// the collect step's reply. Exactly one communication round; element
// counts come from the emit and collect sides.
func ExchangeSteps[EA any, CA any, R any](pr *Proc, label string, emit exec.Ref, eargs EA, collect exec.Ref, cargs CA) ([]byte, R) {
	m := pr.m
	pr.residentTransport("ExchangeSteps")
	pr.closeSegment()
	pr.releaseToken()

	stamp := fmt.Sprintf("%s#%d", label, pr.opSeq)
	dep := ResidentDeposit{
		Seq:         pr.opSeq,
		Stamp:       stamp,
		Emit:        &emit,
		EmitArgs:    exec.Marshal(eargs),
		Collect:     &collect,
		CollectArgs: exec.Marshal(cargs),
	}
	pr.opSeq++

	rep := pr.runResident(label, dep)
	r, err := exec.Unmarshal[R](rep.Reply)
	if err != nil {
		m.fail(fmt.Sprintf("cgm: %s: decoding collect reply: %v", stamp, err))
	}
	return rep.Note, r
}

// runResident performs the transport exchange and the superstep's
// accounting tail (counts, metrics fold, barrier discipline) shared by
// both resident exchange forms. The caller has already closed its local
// segment and released the run token.
func (pr *Proc) runResident(label string, dep ResidentDeposit) ResidentReply {
	m := pr.m
	rt := m.tr.(ResidentTransport)
	dep.Trace = m.trace
	xStart := int64(0)
	if dep.Trace != 0 && pr.rank == 0 {
		xStart = m.tracer.Now()
	}
	rep, err := rt.ExchangeResident(pr.rank, dep)
	if err != nil {
		m.fail(err)
	}
	if dep.Trace != 0 && pr.rank == 0 {
		m.tracer.Add(obs.Span{Trace: dep.Trace, Stamp: int64(dep.Seq),
			Name: "x:" + label, Rank: obs.CoordRank, Start: xStart, Dur: m.tracer.Now() - xStart})
	}
	m.sent[pr.rank] = rep.Sent
	m.recv[pr.rank] = rep.Recv

	m.await() // everyone exchanged and counted

	if pr.rank == 0 {
		m.foldRound(label, false)
	}

	m.await() // metrics folded before anyone writes new segments

	pr.acquireToken()
	pr.resumeAt = nowAfterToken()
	return rep
}
