package cgm

import (
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Transport moves one superstep's payloads between the machine's p ranks.
// The machine keeps everything model-level — scheduling, the run token,
// metrics folding, abort bookkeeping — and delegates the physical
// h-relation to a Transport: each rank deposits its label-stamped out-row
// and blocks until the column addressed to it (one block from every
// source rank) is available. A Transport is owned by exactly one Machine;
// it must not be shared.
//
// Two families exist: in-process transports (Wire() == false) move typed
// rows by reference through shared memory (the loopback default, the
// original slots+barrier machinery of the simulator), and wire transports
// (Wire() == true) move encoded blocks — the raw layout of a registered
// wire.Codec, or its gob fallback — over the TCP implementation in
// internal/transport, which runs every superstep through real worker
// processes.
type Transport interface {
	// P reports the number of ranks the transport connects.
	P() int
	// Wire reports whether payloads must be serialized: when true the
	// machine fills Deposit.Blocks (wire-encoded) and reads Column.Blocks;
	// when false it passes Deposit.Row by reference and reads Column.Rows.
	Wire() bool
	// Exchange deposits rank's out-row for one superstep and blocks until
	// every rank has deposited, returning the column addressed to rank.
	// It returns an error on SPMD divergence (mismatched stamps across
	// ranks) or fabric failure; ErrAborted when unblocked by Abort.
	Exchange(rank int, dep Deposit) (Column, error)
	// Abort poisons the transport with a diagnostic: every blocked or
	// future Exchange must return promptly with an error.
	Abort(msg string)
	// Reset prepares per-run state; it fails if the transport is unusable
	// (aborted or closed), which poisons the machine before the run starts.
	Reset() error
	// Close releases the transport's resources (connections, buffers).
	Close() error
}

// ErrAborted is returned by Transport.Exchange calls unblocked by Abort;
// the machine's original abort cause takes precedence over it.
var ErrAborted = errors.New("cgm: transport aborted")

// Deposit is one rank's contribution to a superstep: p destination
// payloads plus the stamp the SPMD check compares across ranks.
type Deposit struct {
	// Seq is the rank's collective-operation sequence number this run.
	Seq int
	// Stamp is "label#seq" — equal on every rank iff the program is SPMD.
	Stamp string
	// Type names the element type (wire transports only; in-process
	// transports detect type divergence on the typed rows directly).
	Type string
	// Trace is the machine's trace stamp for this superstep (0 =
	// untraced). Wire transports carry it in the frame header so worker-
	// side spans land under the coordinator's trace.
	Trace uint64
	// Row is the typed [][]T as passed to Exchange (in-process only).
	Row any
	// Blocks are the wire-encoded per-destination payloads (wire only).
	// Blocks[rank] — the depositing rank's self-addressed block — is nil:
	// the machine retains it in memory, so a transport never carries it
	// and may return nil in the corresponding Column slot. Blocks alias a
	// pooled buffer the machine recycles once Exchange returns, so a
	// transport must finish writing (or copying) them before returning —
	// it must not retain them.
	Blocks [][]byte
}

// Column is what one rank collects from a superstep: one block from every
// source rank.
type Column struct {
	// Rows holds each source's full deposited row (in-process transports);
	// the caller extracts its own column, preserving zero-copy semantics.
	Rows []any
	// Blocks holds each source's encoded block addressed to this rank
	// (wire transports). The self slot is ignored by the machine — the
	// self-addressed block never travels (see Deposit).
	Blocks [][]byte
}

// loopback is the default in-process transport: the machine's original
// shared-slots + barrier machinery. Rows travel by reference, so it costs
// one interface store and one pointer snapshot per rank per superstep.
//
// A resident loopback additionally hosts one exec state store per rank,
// and runs the identical registered step programs a worker process would
// — including the wire encode/decode of resident payloads — so loopback
// and wire runs of a resident program execute the same code and account
// the same counts.
type loopback struct {
	p      int
	slots  []Deposit
	bar    *barrier
	tracer *obs.Tracer
	reg    *obs.Registry

	// Resident state (nil for fabric machines).
	stores []*exec.Store
	rslots []residentSlot
}

// residentSlot is one rank's deposit of a resident superstep.
type residentSlot struct {
	stamp, typ string
	seq        int
	blocks     [][]byte
	self       any
}

func newLoopback(p int) *loopback { return &loopback{p: p} }

// enableResident equips the loopback with per-rank state stores.
func (lt *loopback) enableResident() {
	lt.stores = make([]*exec.Store, lt.p)
	for i := range lt.stores {
		lt.stores[i] = exec.NewStore()
		lt.stores[i].SetObs(lt.reg)
	}
}

// CallStep runs a registered pure step against rank's local state store.
func (lt *loopback) CallStep(rank int, ref exec.Ref, args []byte) ([]byte, error) {
	if lt.stores == nil {
		return nil, errors.New("cgm: loopback transport is not resident")
	}
	return lt.stores[rank].Call(rank, lt.p, ref, args)
}

// ExchangeResident runs one resident superstep in-process: emit steps (if
// any) produce the deposits, the column is assembled from the shared
// slots, and collect steps consume it — all against the per-rank stores.
func (lt *loopback) ExchangeResident(rank int, dep ResidentDeposit) (ResidentReply, error) {
	if lt.stores == nil {
		return ResidentReply{}, errors.New("cgm: loopback transport is not resident")
	}
	rep := ResidentReply{Sent: dep.Sent}
	slot := residentSlot{stamp: dep.Stamp, typ: dep.Type, seq: dep.Seq, blocks: dep.Blocks}
	if dep.Emit != nil {
		var out *exec.Outbox
		var err error
		lt.tracer.Record(dep.Trace, int64(dep.Seq), rank, "emit", func() {
			out, err = lt.stores[rank].RunEmit(rank, lt.p, *dep.Emit, dep.EmitArgs)
		})
		if err != nil {
			return ResidentReply{}, err
		}
		slot.blocks, slot.self, slot.typ = out.Blocks, out.Self, out.Type
		rep.Note = out.Note
		rep.Sent = 0
		for _, c := range out.Counts {
			rep.Sent += c
		}
	}
	lt.rslots[rank] = slot
	if !lt.bar.await() { // everyone deposited
		return ResidentReply{}, ErrAborted
	}
	if lt.rslots[rank].stamp != lt.rslots[0].stamp {
		return ResidentReply{}, fmt.Errorf("SPMD violation: processor %d is at %q while processor 0 is at %q",
			rank, lt.rslots[rank].stamp, lt.rslots[0].stamp)
	}
	if lt.rslots[rank].typ != lt.rslots[0].typ {
		return ResidentReply{}, fmt.Errorf("SPMD violation: processor %d exchanged %s at %q where processor 0 exchanged %s",
			rank, lt.rslots[rank].typ, lt.rslots[rank].stamp, lt.rslots[0].typ)
	}
	// Assemble this rank's column. As with the fabric snapshot, the
	// machine's post-exchange barrier guarantees no rank deposits the next
	// superstep before every rank has read this one.
	col := make([][]byte, lt.p)
	for j := 0; j < lt.p; j++ {
		if j == rank {
			if slot.self == nil {
				col[j] = slot.blocks[j] // coordinator deposit ships self encoded
			}
			continue
		}
		col[j] = lt.rslots[j].blocks[rank]
	}
	var reply []byte
	var recv int
	var err error
	lt.tracer.Record(dep.Trace, int64(dep.Seq), rank, "collect", func() {
		reply, recv, err = lt.stores[rank].RunCollect(rank, lt.p, *dep.Collect,
			&exec.Inbox{Blocks: col, Self: slot.self}, dep.CollectArgs)
	})
	if err != nil {
		return ResidentReply{}, err
	}
	rep.Reply, rep.Recv = reply, recv
	return rep, nil
}

func (lt *loopback) P() int     { return lt.p }
func (lt *loopback) Wire() bool { return false }

func (lt *loopback) Reset() error {
	lt.slots = make([]Deposit, lt.p)
	if lt.stores != nil {
		lt.rslots = make([]residentSlot, lt.p)
	}
	lt.bar = newBarrier(lt.p)
	return nil
}

func (lt *loopback) Exchange(rank int, dep Deposit) (Column, error) {
	lt.slots[rank] = dep
	if !lt.bar.await() { // everyone deposited
		return Column{}, ErrAborted
	}
	if lt.slots[rank].Stamp != lt.slots[0].Stamp {
		return Column{}, fmt.Errorf("SPMD violation: processor %d is at %q while processor 0 is at %q",
			rank, lt.slots[rank].Stamp, lt.slots[0].Stamp)
	}
	// Snapshot the row references before returning: the machine's
	// post-exchange barrier guarantees no rank deposits the next superstep
	// until every rank has passed it, so the snapshot (not the slots) is
	// all a reader touches once rows for the next round start landing.
	rows := make([]any, lt.p)
	for j := range rows {
		rows[j] = lt.slots[j].Row
	}
	return Column{Rows: rows}, nil
}

func (lt *loopback) Abort(string) {
	if lt.bar != nil {
		lt.bar.break_()
	}
}

func (lt *loopback) Close() error { return nil }

// Provider supplies machines of a fixed width. It is the seam the upper
// layers (core.BuildOn, the store compactor, the drtree.Cluster…
// constructors) are threaded through: a LocalProvider yields in-process
// simulators, a transport.Cluster yields machines whose supersteps run
// over TCP on real worker processes — the same SPMD programs run
// unchanged on either.
type Provider interface {
	// P reports the width of the machines the provider creates.
	P() int
	// NewMachine returns a fresh machine. Machines are independent: each
	// owns its transport, and a machine poisoned by an abort is replaced,
	// never revived.
	NewMachine() (*Machine, error)
	// Close releases provider-wide resources (e.g. cluster sessions).
	Close() error
}

// LocalProvider is the in-process Provider: every machine is a fresh
// loopback simulator configured by Cfg.
type LocalProvider struct {
	cfg Config
}

// NewLocalProvider creates a provider of in-process machines.
func NewLocalProvider(cfg Config) LocalProvider {
	if cfg.Transport != nil {
		panic("cgm: LocalProvider cannot share one Transport across machines")
	}
	if cfg.P < 1 {
		panic("cgm: provider needs at least one processor")
	}
	return LocalProvider{cfg: cfg}
}

// P reports the configured machine width.
func (lp LocalProvider) P() int { return lp.cfg.P }

// NewMachine returns a fresh in-process machine.
func (lp LocalProvider) NewMachine() (*Machine, error) { return New(lp.cfg), nil }

// Close is a no-op for local machines.
func (lp LocalProvider) Close() error { return nil }
