package cgm

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestEmptyExchangeStillARound(t *testing.T) {
	// The round/latency accounting must count exchanges that move nothing
	// (a pure barrier is still a superstep in the BSP model).
	m := New(Config{P: 3})
	m.Run(func(pr *Proc) {
		Exchange(pr, "empty", make([][]int, 3))
	})
	mt := m.Metrics()
	if mt.CommRounds() != 1 || mt.MaxH() != 0 || mt.TotalComm() != 0 {
		t.Errorf("empty exchange accounting wrong: %+v", mt.Rounds)
	}
	if mt.ModelTime(10, 1000) < 1000 {
		t.Error("empty round must still pay latency L")
	}
}

func TestSelfSendCountsTowardsH(t *testing.T) {
	// A processor addressing itself still contributes to h: the model
	// counts records through the router, matching the paper's h-relation.
	m := New(Config{P: 2})
	m.Run(func(pr *Proc) {
		out := make([][]int, 2)
		out[pr.Rank()] = make([]int, 5) // everything to self
		Exchange(pr, "self", out)
	})
	if h := m.Metrics().MaxH(); h != 5 {
		t.Errorf("MaxH = %d, want 5", h)
	}
}

func TestManyRoundsMetricsGrowth(t *testing.T) {
	m := New(Config{P: 2})
	const rounds = 100
	m.Run(func(pr *Proc) {
		for i := 0; i < rounds; i++ {
			Barrier(pr, "spin")
		}
	})
	if got := m.Metrics().CommRounds(); got != rounds {
		t.Errorf("rounds = %d, want %d", got, rounds)
	}
}

func TestAbortDuringMeasuredTokenWait(t *testing.T) {
	// A processor panicking while another waits for the run token must
	// not deadlock the machine.
	m := New(Config{P: 4, Mode: Measured})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "bang") {
			t.Fatalf("abort not propagated: %v", r)
		}
	}()
	m.Run(func(pr *Proc) {
		if pr.Rank() == 0 {
			panic("bang")
		}
		// Others spin through collectives and token waits.
		for i := 0; i < 10; i++ {
			Barrier(pr, "b")
		}
	})
}

func TestSequentialRunsReuseMachine(t *testing.T) {
	m := New(Config{P: 3})
	var total int64
	for run := 0; run < 5; run++ {
		m.Run(func(pr *Proc) {
			in := Exchange(pr, "x", [][]int{{1}, {1}, {1}})
			atomic.AddInt64(&total, int64(len(in)))
		})
	}
	if m.Metrics().Runs != 5 {
		t.Errorf("Runs = %d", m.Metrics().Runs)
	}
	if total != 5*3*3 {
		t.Errorf("total receptions = %d", total)
	}
}

func TestRunAfterAbortFailsFast(t *testing.T) {
	// A machine whose run aborted is poisoned: the next Run must fail
	// fast with the original cause instead of running on state (token,
	// transport, worker supersteps) the abort left in an unknown place.
	m := New(Config{P: 2})
	func() {
		defer func() { recover() }()
		m.Run(func(pr *Proc) { panic("first run dies") })
	}()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Run on an aborted machine must fail fast")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "earlier run") || !strings.Contains(msg, "first run dies") {
			t.Fatalf("fail-fast panic lost the original cause: %v", r)
		}
	}()
	ran := false
	m.Run(func(pr *Proc) { ran = true })
	if ran {
		t.Error("program ran on a poisoned machine")
	}
}

func TestSPMDAbortPoisonsMachine(t *testing.T) {
	// The fail-fast contract must hold for SPMD violations too, and the
	// original diagnostic must survive to the second Run's panic.
	m := New(Config{P: 2})
	func() {
		defer func() { recover() }()
		m.Run(func(pr *Proc) {
			if pr.Rank() == 0 {
				Barrier(pr, "a")
			} else {
				Barrier(pr, "b")
			}
		})
	}()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run after an SPMD abort must fail fast")
		}
		if !strings.Contains(r.(string), "SPMD violation") {
			t.Fatalf("original SPMD cause lost: %v", r)
		}
	}()
	m.Run(func(pr *Proc) {})
}

func TestWorkByProcLenMatchesP(t *testing.T) {
	m := New(Config{P: 7})
	m.Run(func(pr *Proc) { time.Sleep(time.Millisecond) })
	if len(m.Metrics().WorkByProc) != 7 {
		t.Error("WorkByProc length wrong")
	}
}
