package cgm

import "time"

// nowAfterToken is time.Now, split out so the timing call sites read
// clearly: a processor's local segment starts only once it holds the run
// token again.
func nowAfterToken() time.Time { return time.Now() }

// RoundStat records one communication round (superstep boundary).
type RoundStat struct {
	// Label names the collective that closed the round.
	Label string
	// MaxWork is max_i w_i: the longest local computation segment any
	// processor spent since the previous round (meaningful in Measured
	// mode; wall-clock per goroutine in Concurrent mode).
	MaxWork time.Duration
	// MaxH is the round's h: the maximum over processors of
	// max(elements sent, elements received).
	MaxH int
	// TotalElems is the total number of elements exchanged in the round.
	TotalElems int
	// Final marks the trailing local-computation pseudo-round that closes
	// a Run (no communication).
	Final bool
}

// Metrics accumulates rounds and per-processor work across runs.
type Metrics struct {
	Rounds []RoundStat
	// WorkByProc is each processor's total local computation time.
	WorkByProc []time.Duration
	// Runs counts completed Machine.Run calls.
	Runs int
}

func (mt Metrics) clone() Metrics {
	c := mt
	c.Rounds = append([]RoundStat(nil), mt.Rounds...)
	c.WorkByProc = append([]time.Duration(nil), mt.WorkByProc...)
	return c
}

// CommRounds counts the true communication rounds (excluding final
// pseudo-rounds) — the quantity Corollaries 1–3 bound by a constant.
func (mt Metrics) CommRounds() int {
	n := 0
	for _, r := range mt.Rounds {
		if !r.Final {
			n++
		}
	}
	return n
}

// MaxH returns the largest h over all rounds.
func (mt Metrics) MaxH() int {
	h := 0
	for _, r := range mt.Rounds {
		if r.MaxH > h {
			h = r.MaxH
		}
	}
	return h
}

// TotalComm returns the total exchanged element count.
func (mt Metrics) TotalComm() int {
	t := 0
	for _, r := range mt.Rounds {
		t += r.TotalElems
	}
	return t
}

// LocalWork returns Σ_rounds max_i w_i — the modelled parallel local
// computation time (critical path across supersteps).
func (mt Metrics) LocalWork() time.Duration {
	var w time.Duration
	for _, r := range mt.Rounds {
		w += r.MaxWork
	}
	return w
}

// TotalWork returns the summed local computation over all processors —
// the sequential-equivalent work, used for efficiency reporting.
func (mt Metrics) TotalWork() time.Duration {
	var w time.Duration
	for _, t := range mt.WorkByProc {
		w += t
	}
	return w
}

// MaxWorkByProc returns the largest per-processor total — the load-balance
// measure.
func (mt Metrics) MaxWorkByProc() time.Duration {
	var w time.Duration
	for _, t := range mt.WorkByProc {
		if t > w {
			w = t
		}
	}
	return w
}

// ModelTime evaluates the BSP cost Σ_steps (max_i w_i + g·h_step + L) with
// g in ns/element and L in ns/round.
func (mt Metrics) ModelTime(g, l float64) time.Duration {
	total := float64(mt.LocalWork())
	for _, r := range mt.Rounds {
		if !r.Final {
			total += g*float64(r.MaxH) + l
		}
	}
	return time.Duration(total)
}
