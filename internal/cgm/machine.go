// Package cgm implements the paper's machine model: the Coarse Grained
// Multicomputer CGM(s, p), also called the weak-CREW BSP model (§1 "The
// Model"). A machine has p processors with local memory, executing the same
// program (SPMD) as alternating phases of local computation and global
// communication supersteps. All communication happens through barrier-
// synchronised h-relations (Exchange); the machine accounts exactly the
// quantities the paper's theorems bound — the number of communication
// rounds, the h of every round (max elements sent or received by any
// processor), and per-processor local computation time.
//
// The physical payload movement is pluggable (Transport): by default the
// machine is an in-process simulator whose processors are goroutines and
// whose h-relations move rows through shared memory (loopback), but the
// same programs run unchanged with supersteps carried by real worker
// processes over TCP (internal/transport). Round and h accounting is
// transport-independent, so metrics are identical either way.
//
// Two execution modes are provided. Concurrent runs the processors as
// goroutines in parallel: fast, and the round/volume metrics are exact and
// deterministic. Measured serialises the processors with a run token so
// each processor's local-computation time is measured in isolation,
// yielding meaningful modelled-speedup curves (BSP cost Σ max_i w_i +
// g·h + L per superstep) even on hosts with few cores.
package cgm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Mode selects how processors are scheduled.
type Mode int

const (
	// Concurrent runs all processors as parallel goroutines.
	Concurrent Mode = iota
	// Measured time-slices processors one at a time so per-processor
	// local work can be timed precisely.
	Measured
)

// Config parametrises a machine.
type Config struct {
	// P is the number of processors (≥ 1). With a Transport it may be
	// left 0 (the transport's width is used) but must match when set.
	P int
	// Mode selects the scheduling mode; default Concurrent.
	Mode Mode
	// G is the modelled cost per exchanged element (ns/element) and L the
	// modelled latency per superstep (ns), used by Metrics.ModelTime.
	// Zero values select DefaultG/DefaultL.
	G, L float64
	// Transport carries the superstep payloads; nil selects the
	// in-process loopback transport. A Transport instance belongs to
	// exactly one machine.
	Transport Transport
	// Resident selects worker-resident execution: forest parts (and other
	// registered program state) live where the transport hosts them — in
	// the worker processes for a wire transport, in the machine's local
	// state store for the loopback — and the programs' local-computation
	// steps dispatch there (internal/exec). The transport must implement
	// ResidentTransport. Round and h accounting is unchanged: residency
	// moves payload endpoints, never the superstep structure.
	Resident bool
	// Obs, when set, receives the machine's cost-model quantities as live
	// series after every run: cgm_runs_total, cgm_rounds_total,
	// cgm_exchange_elems_total, and per-run cgm_run_rounds / cgm_run_maxh
	// histograms. Nil disables publishing; the paper-exact Metrics
	// snapshot is unaffected either way.
	Obs *obs.Registry
	// Tracer, when set, collects spans for traced runs (SetTrace): one
	// coordinator span per superstep, plus resident emit/collect spans on
	// the loopback (wire transports return worker-side spans through the
	// reply frames instead). Nil disables span recording.
	Tracer *obs.Tracer
	// Events, when set, receives a "session_abort" event the first time a
	// run aborts (SPMD violation, worker disconnect, user panic) — the
	// cluster event archive's hook into the machine. Nil disables it.
	Events obs.EventSink
}

// Default BSP cost parameters: 50ns per exchanged record, 20µs per
// superstep barrier — the ballpark of mid-1990s multicomputers scaled to
// record granularity; only ratios matter for the reproduced curves.
const (
	DefaultG = 50
	DefaultL = 20000
)

// Machine is a CGM(s, p): p SPMD processor goroutines whose h-relations
// travel over the machine's Transport.
type Machine struct {
	p        int
	mode     Mode
	g, l     float64
	tr       Transport
	resident bool
	reg      *obs.Registry
	tracer   *obs.Tracer
	events   obs.EventSink
	// trace stamps the current run's supersteps (0 = untraced). Written
	// by SetTrace between runs, read by processor goroutines during Run —
	// the same exclusive-run contract Run itself has.
	trace uint64

	mu      sync.Mutex
	metrics Metrics

	// poisoned records the cause of an aborted run: a machine whose run
	// aborted (SPMD violation, worker disconnect, user panic) fails fast
	// on the next Run with that original cause. Only Run reads/writes it,
	// and concurrent Runs are already outside the machine's contract.
	poisoned any

	// Per-run state.
	sent    []int
	recv    []int
	segTime []time.Duration
	bar     *barrier
	token   chan struct{}
	abortCh chan struct{}
	abort1  sync.Once
	abortV  any
}

// New creates a machine from the configuration.
func New(cfg Config) *Machine {
	p := cfg.P
	tr := cfg.Transport
	if tr != nil {
		if p == 0 {
			p = tr.P()
		}
		if p != tr.P() {
			panic(fmt.Sprintf("cgm: config wants %d processors but the transport connects %d", p, tr.P()))
		}
	}
	if p < 1 {
		panic("cgm: machine needs at least one processor")
	}
	if tr == nil {
		lb := newLoopback(p)
		lb.tracer = cfg.Tracer
		lb.reg = cfg.Obs
		if cfg.Resident {
			lb.enableResident()
		}
		tr = lb
	}
	if cfg.Resident {
		if _, ok := tr.(ResidentTransport); !ok {
			panic("cgm: config wants resident execution but the transport hosts no program state")
		}
	}
	g, l := cfg.G, cfg.L
	if g == 0 {
		g = DefaultG
	}
	if l == 0 {
		l = DefaultL
	}
	m := &Machine{p: p, mode: cfg.Mode, g: g, l: l, tr: tr, resident: cfg.Resident,
		reg: cfg.Obs, tracer: cfg.Tracer, events: cfg.Events}
	m.metrics.WorkByProc = make([]time.Duration, p)
	return m
}

// SetTrace stamps the machine's subsequent supersteps with a trace ID
// minted by an obs.Tracer (0 clears the stamp). The stamp travels in
// every deposit — and, on wire transports, in every frame — so worker-
// side spans land under the same trace. Must not be called while a Run
// is in flight.
func (m *Machine) SetTrace(id uint64) { m.trace = id }

// TraceID reports the machine's current trace stamp.
func (m *Machine) TraceID() uint64 { return m.trace }

// Tracer returns the machine's tracer (nil when not configured).
func (m *Machine) Tracer() *obs.Tracer { return m.tracer }

// P reports the number of processors.
func (m *Machine) P() int { return m.p }

// Mode reports the scheduling mode.
func (m *Machine) Mode() Mode { return m.mode }

// Resident reports whether the machine executes registered SPMD programs
// against transport-resident state (worker memory on wire transports).
func (m *Machine) Resident() bool { return m.resident }

// Close releases the machine's transport (network sessions for wire
// transports; a no-op for the in-process loopback).
func (m *Machine) Close() error { return m.tr.Close() }

// Proc is the per-processor handle passed to SPMD programs.
type Proc struct {
	m        *Machine
	rank     int
	opSeq    int
	resumeAt time.Time
}

// Rank reports the processor identity in 0..P-1.
func (pr *Proc) Rank() int { return pr.rank }

// P reports the machine width.
func (pr *Proc) P() int { return pr.m.p }

// Machine returns the underlying machine.
func (pr *Proc) Machine() *Machine { return pr.m }

// abortSignal is the panic payload used to unwind processors after the
// machine has been poisoned; the original cause is re-raised by Run.
type abortSignal struct{}

// doAbort poisons the run: barrier waiters, token waiters and transport
// exchanges unwind, and the first cause wins.
func (m *Machine) doAbort(cause any) {
	m.abort1.Do(func() {
		m.abortV = cause
		close(m.abortCh)
		m.bar.break_()
		m.tr.Abort(fmt.Sprint(cause))
		if m.events != nil {
			m.events("session_abort", obs.CoordRank, fmt.Sprint(cause))
		}
	})
}

// fail aborts the machine with cause and unwinds the calling processor.
func (m *Machine) fail(cause any) {
	m.doAbort(cause)
	panic(abortSignal{})
}

// await parks the processor at the machine's metrics barrier, unwinding
// if the run aborted meanwhile.
func (m *Machine) await() {
	if !m.bar.await() {
		panic(abortSignal{})
	}
}

// Run executes prog on every processor and blocks until all finish. The
// program must be SPMD: every processor performs the same sequence of
// collective operations (enforced; violations abort the run with a
// diagnostic panic). Per-run state (op sequence) is fresh; metrics
// accumulate across runs until ResetMetrics.
//
// A machine whose run aborted is poisoned: subsequent Runs fail fast
// with the original cause (on every transport — an in-process machine
// is cheap to replace, and a wire transport's workers are in an unknown
// superstep state after an abort).
func (m *Machine) Run(prog func(*Proc)) {
	if m.poisoned != nil {
		panic(fmt.Sprintf("cgm: machine aborted in an earlier run: %v", m.poisoned))
	}
	startRounds := len(m.metrics.Rounds)
	if err := m.tr.Reset(); err != nil {
		m.poisoned = err
		panic(fmt.Sprintf("cgm: machine transport unusable: %v", err))
	}
	m.sent = make([]int, m.p)
	m.recv = make([]int, m.p)
	m.segTime = make([]time.Duration, m.p)
	m.bar = newBarrier(m.p)
	m.abortCh = make(chan struct{})
	m.abort1 = sync.Once{}
	m.abortV = nil
	m.token = make(chan struct{}, 1)
	m.token <- struct{}{}

	var wg sync.WaitGroup
	wg.Add(m.p)
	for i := 0; i < m.p; i++ {
		pr := &Proc{m: m, rank: i}
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(abortSignal); !isAbort {
						m.doAbort(r)
					}
				}
			}()
			pr.acquireToken()
			pr.resumeAt = time.Now()
			prog(pr)
			pr.closeSegment()
			pr.releaseToken()
		}()
	}
	wg.Wait()
	if m.abortV != nil {
		m.poisoned = m.abortV
		panic(fmt.Sprintf("cgm: machine aborted: %v", m.abortV))
	}
	// Fold the trailing local segments into a final pseudo-round.
	m.foldRound("run-end", true)
	m.metrics.Runs++
	if m.reg != nil {
		m.publishRun(startRounds)
	}
}

// publishRun mirrors the run's round stats (from the given Rounds index
// on) into the registry as live series: the cost model the paper proves
// bounds on — rounds, MaxH, total exchanged elements — observable on a
// running cluster, not only in post-hoc Metrics snapshots.
func (m *Machine) publishRun(from int) {
	m.mu.Lock()
	var nRounds, elems int64
	maxh := 0
	for _, rs := range m.metrics.Rounds[from:] {
		if rs.Final {
			continue
		}
		nRounds++
		elems += int64(rs.TotalElems)
		if rs.MaxH > maxh {
			maxh = rs.MaxH
		}
	}
	m.mu.Unlock()
	m.reg.Counter("cgm_runs_total").Inc()
	m.reg.Counter("cgm_rounds_total").Add(nRounds)
	m.reg.Counter("cgm_exchange_elems_total").Add(elems)
	m.reg.Histogram("cgm_run_rounds").Observe(nRounds)
	m.reg.Histogram("cgm_run_maxh").Observe(int64(maxh))
	m.reg.Gauge("cgm_last_run_maxh").Set(int64(maxh))
}

// acquireToken blocks until the processor may run (Measured mode only).
func (pr *Proc) acquireToken() {
	if pr.m.mode != Measured {
		return
	}
	select {
	case <-pr.m.token:
	case <-pr.m.abortCh:
		panic(abortSignal{})
	}
}

func (pr *Proc) releaseToken() {
	if pr.m.mode != Measured {
		return
	}
	pr.m.token <- struct{}{}
}

// closeSegment charges the local computation since the last resume to this
// processor.
func (pr *Proc) closeSegment() {
	pr.m.segTime[pr.rank] += time.Since(pr.resumeAt)
}

// foldRound moves the current per-processor segment times (and, unless
// final, the sent/recv counters) into a RoundStat. Callers must guarantee
// quiescence: either all processors are parked at the machine barrier, or
// (final) the run has ended.
func (m *Machine) foldRound(label string, final bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := RoundStat{Label: label}
	for i := 0; i < m.p; i++ {
		if m.segTime[i] > rs.MaxWork {
			rs.MaxWork = m.segTime[i]
		}
		m.metrics.WorkByProc[i] += m.segTime[i]
		m.segTime[i] = 0
		if !final {
			h := m.sent[i]
			if m.recv[i] > h {
				h = m.recv[i]
			}
			if h > rs.MaxH {
				rs.MaxH = h
			}
			rs.TotalElems += m.sent[i]
			m.sent[i], m.recv[i] = 0, 0
		}
	}
	rs.Final = final
	m.metrics.Rounds = append(m.metrics.Rounds, rs)
}

// Metrics returns a snapshot of the accumulated metrics.
func (m *Machine) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics.clone()
}

// ResetMetrics clears the accumulated metrics (e.g. to measure the search
// phase separately from construction).
func (m *Machine) ResetMetrics() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metrics = Metrics{WorkByProc: make([]time.Duration, m.p)}
}

// G and L report the machine's BSP cost parameters.
func (m *Machine) G() float64 { return m.g }
func (m *Machine) L() float64 { return m.l }

// barrier is a reusable generation barrier for p goroutines that can be
// broken to unwind all waiters when the machine aborts.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants arrive; it reports false if the
// barrier was broken before or while waiting.
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	return !b.broken
}

// break_ poisons the barrier, waking all waiters into failed awaits.
func (b *barrier) break_() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
