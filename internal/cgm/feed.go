package cgm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// This file is the machine-side half of rank-parallel ingest feeds: a
// feed is a long-lived, windowed stream of calls to ONE registered step
// on ONE rank's resident state, opened outside any machine run. Unlike
// ResidentCall — one synchronous round-trip per call over the
// coordinator's control connection — a feed pipelines up to Window calls
// in flight, and on a wire transport it rides its own TCP connection
// straight to the rank's worker, so p feeds aggregate bandwidth with p
// instead of serializing behind coordinator round-trips. The feed is not
// a collective: no superstep, no communication round, no metrics — it is
// a data plane under the session, authenticated by the session token.

// FeedOptions parametrises an open feed.
type FeedOptions struct {
	// Window is the maximum number of unacknowledged calls in flight
	// (≤ 0 selects 1: fully synchronous).
	Window int
	// MaxShare, in (0, 1), caps the fraction of worker wall-time this
	// feed's step execution may consume (the QoS knob between ingest and
	// serving). Outside that range the feed runs uncapped. A worker-side
	// operator cap, when configured, lowers the effective share further.
	MaxShare float64
}

// StepFeed is one open feed. Send and Close must be called from a single
// goroutine; acknowledgements arrive asynchronously.
type StepFeed interface {
	// Send enqueues one call with pre-encoded args. It blocks while the
	// in-flight window is full and returns the feed's failure cause once
	// the feed is dead (it never blocks forever on a dead feed). The feed
	// takes ownership of release: it is invoked exactly once — on the
	// call's acknowledgement, or during failure teardown — after which
	// the caller may recycle the args buffer.
	Send(args []byte, release func()) error
	// Close drains outstanding acknowledgements, ends the feed, and
	// returns the LAST call's encoded reply (nil if nothing was sent).
	// A feed that failed returns its first failure cause.
	Close() ([]byte, error)
}

// FeedTransport is implemented by resident transports that can open
// per-rank step feeds.
type FeedTransport interface {
	ResidentTransport
	// OpenFeed opens a windowed feed of calls to ref against rank's
	// resident state.
	OpenFeed(rank int, ref exec.Ref, opt FeedOptions) (StepFeed, error)
}

// Feeds reports whether the machine supports rank-parallel step feeds
// (resident execution on a feed-capable transport).
func (m *Machine) Feeds() bool {
	_, ok := m.tr.(FeedTransport)
	return ok && m.resident
}

// OpenFeed opens a windowed feed of calls to ref against rank's resident
// state. Like ResidentCall it must not overlap a machine Run.
func (m *Machine) OpenFeed(rank int, ref exec.Ref, opt FeedOptions) (StepFeed, error) {
	ft, ok := m.tr.(FeedTransport)
	if !ok || !m.resident {
		return nil, errors.New("cgm: machine transport does not support step feeds")
	}
	if m.poisoned != nil {
		return nil, fmt.Errorf("cgm: machine aborted in an earlier run: %v", m.poisoned)
	}
	return ft.OpenFeed(rank, ref, opt)
}

// Poison aborts the machine from outside a run: the transport is torn
// down (unblocking any feed or step call against it) and every later Run
// fails fast with cause. It is how a dead ingest feed becomes a
// diagnostic abort on the whole session instead of a half-staged
// machine silently accepting more work. Idempotent; the first cause
// wins. Like Run itself, it must not overlap a Run in flight.
func (m *Machine) Poison(cause error) {
	if cause == nil {
		return
	}
	if m.poisoned == nil {
		m.poisoned = cause
	}
	m.tr.Abort(cause.Error())
}

// Obs returns the registry the machine publishes to (nil when
// unconfigured) so data-plane helpers like BulkLoad can thread their own
// series through the same endpoint.
func (m *Machine) Obs() *obs.Registry { return m.reg }

// ResidentCallRaw is ResidentCall with caller-encoded args and an
// undecoded reply: the hot-path variant that lets a streaming client
// reuse one pooled encode buffer across calls instead of allocating per
// call. The args buffer may be reused as soon as the call returns.
func ResidentCallRaw(m *Machine, rank int, ref exec.Ref, args []byte) ([]byte, error) {
	rt, ok := m.tr.(ResidentTransport)
	if !ok || !m.resident {
		return nil, errors.New("cgm: machine is not resident")
	}
	b, err := rt.CallStep(rank, ref, args)
	if err != nil {
		return nil, fmt.Errorf("cgm: resident step %s/%s on rank %d: %w", ref.Program, ref.Step, rank, err)
	}
	return b, nil
}

// ShareGovernor is the QoS scheduler between ingest staging and serving:
// a token bucket over wall-time. Credit accrues at share seconds per
// second up to a small burst; each admitted unit of work is charged its
// measured duration, and Admit sleeps whenever the bucket is in debt —
// so over any window much longer than the burst, governed work consumes
// at most a share fraction of wall-time, and the remaining (1−share)
// stays available to concurrent serving supersteps. A nil governor (the
// uncapped case) admits everything for free.
type ShareGovernor struct {
	share float64

	mu     sync.Mutex
	credit time.Duration // may go negative after Charge: the debt Admit sleeps off
	last   time.Time

	waits  atomic.Int64
	waitNs atomic.Int64
}

// governorBurst bounds the credit the bucket can bank: one burst of
// work proceeds unthrottled after an idle spell, then pacing takes over.
// It is also the longest ingest-induced stall a concurrent serve query
// can see before the governor starts paying serving back, so it is kept
// small.
const governorBurst = 5 * time.Millisecond

// NewShareGovernor returns a governor capping governed work at share of
// wall-time, or nil (uncapped) when share is outside (0, 1).
func NewShareGovernor(share float64) *ShareGovernor {
	if share <= 0 || share >= 1 {
		return nil
	}
	return &ShareGovernor{share: share, last: time.Now(), credit: governorBurst}
}

// refill accrues credit since last; callers hold mu.
func (g *ShareGovernor) refill() {
	now := time.Now()
	g.credit += time.Duration(float64(now.Sub(g.last)) * g.share)
	if g.credit > governorBurst {
		g.credit = governorBurst
	}
	g.last = now
}

// Admit blocks until the bucket is out of debt and reports how long it
// waited (0 on the unthrottled path).
func (g *ShareGovernor) Admit() time.Duration {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	g.refill()
	debt := -g.credit
	g.mu.Unlock()
	if debt <= 0 {
		return 0
	}
	// Sleeping wait accrues wait·share of credit, so wait = debt/share
	// clears the debt exactly.
	wait := time.Duration(float64(debt) / g.share)
	time.Sleep(wait)
	g.waits.Add(1)
	g.waitNs.Add(int64(wait))
	return wait
}

// Charge debits d of measured governed work.
func (g *ShareGovernor) Charge(d time.Duration) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.refill()
	g.credit -= d
	g.mu.Unlock()
}

// Stats reports the cumulative throttle decisions: sleeps taken and
// total nanoseconds slept.
func (g *ShareGovernor) Stats() (waits, waitNs int64) {
	if g == nil {
		return 0, 0
	}
	return g.waits.Load(), g.waitNs.Load()
}

// loopbackFeed is the in-process feed: calls run synchronously against
// the rank's local state store (the window never fills), under the same
// governor a worker process would apply — so QoS behaviour and the
// feed-path metrics are testable without sockets.
type loopbackFeed struct {
	lt   *loopback
	rank int
	ref  exec.Ref
	gov  *ShareGovernor

	rtt           *obs.Histogram
	waits, waitNs *obs.Counter
	calls, busyNs *obs.Counter
	last          []byte
	err           error
}

// OpenFeed opens an in-process feed against rank's local state store.
func (lt *loopback) OpenFeed(rank int, ref exec.Ref, opt FeedOptions) (StepFeed, error) {
	if lt.stores == nil {
		return nil, errors.New("cgm: loopback transport is not resident")
	}
	if rank < 0 || rank >= lt.p {
		return nil, fmt.Errorf("cgm: feed rank %d out of range (p=%d)", rank, lt.p)
	}
	f := &loopbackFeed{lt: lt, rank: rank, ref: ref, gov: NewShareGovernor(opt.MaxShare)}
	if lt.reg != nil {
		f.rtt = lt.reg.Histogram(fmt.Sprintf(`ingest_feed_ack_rtt_ns{rank="%d"}`, rank))
		f.calls = lt.reg.Counter(fmt.Sprintf(`ingest_feed_calls_total{rank="%d"}`, rank))
		f.waits = lt.reg.Counter("ingest_throttle_waits_total")
		f.waitNs = lt.reg.Counter("ingest_throttle_wait_ns_total")
		f.busyNs = lt.reg.Counter("ingest_busy_ns_total")
	}
	return f, nil
}

func (f *loopbackFeed) Send(args []byte, release func()) error {
	if f.err != nil {
		if release != nil {
			release()
		}
		return f.err
	}
	if wait := f.gov.Admit(); wait > 0 && f.waits != nil {
		f.waits.Inc()
		f.waitNs.Add(int64(wait))
	}
	t0 := time.Now()
	reply, err := f.lt.stores[f.rank].Call(f.rank, f.lt.p, f.ref, args)
	busy := time.Since(t0)
	f.gov.Charge(busy)
	if release != nil {
		release()
	}
	if f.rtt != nil {
		f.rtt.Observe(busy.Nanoseconds())
		f.calls.Inc()
		f.busyNs.Add(busy.Nanoseconds())
	}
	if err != nil {
		f.err = fmt.Errorf("cgm: feed step %s/%s on rank %d: %w", f.ref.Program, f.ref.Step, f.rank, err)
		return f.err
	}
	f.last = reply
	return nil
}

func (f *loopbackFeed) Close() ([]byte, error) {
	return f.last, f.err
}
