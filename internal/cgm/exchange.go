package cgm

import "fmt"

// Exchange is the machine's single communication primitive: a personalized
// all-to-all (the h-relation of the BSP model). Processor i provides
// out[j] — the elements destined for processor j — and receives in[j] —
// the elements processor j addressed to it. Every higher-level collective
// (broadcasts, scans, sorts) is built from Exchange, so every one of them
// is accounted as exactly one communication round, matching how the paper
// counts "a constant number of h-relations".
//
// The label names the collective in metrics and SPMD diagnostics. All
// processors must call the same sequence of exchanges with the same labels
// and element type; a divergent processor aborts the whole machine with a
// diagnostic rather than deadlocking.
func Exchange[T any](pr *Proc, label string, out [][]T) [][]T {
	m := pr.m
	if len(out) != m.p {
		panic(fmt.Sprintf("cgm: %s: out has %d destinations, machine has %d", label, len(out), m.p))
	}
	pr.closeSegment()
	pr.releaseToken()

	stamp := fmt.Sprintf("%s#%d", label, pr.opSeq)
	pr.opSeq++
	sent := 0
	for _, s := range out {
		sent += len(s)
	}
	m.labels[pr.rank] = stamp
	m.sent[pr.rank] = sent
	m.slots[pr.rank] = out

	m.bar.await() // everyone deposited

	if m.labels[pr.rank] != m.labels[0] {
		m.doAbort(fmt.Sprintf("SPMD violation: processor %d is at %q while processor 0 is at %q",
			pr.rank, m.labels[pr.rank], m.labels[0]))
		panic(abortSignal{})
	}
	in := make([][]T, m.p)
	recv := 0
	for j := 0; j < m.p; j++ {
		src, ok := m.slots[j].([][]T)
		if !ok {
			m.doAbort(fmt.Sprintf("SPMD violation: processor %d exchanged a different element type at %q", j, stamp))
			panic(abortSignal{})
		}
		in[j] = src[pr.rank]
		recv += len(in[j])
	}
	m.recv[pr.rank] = recv

	m.bar.await() // everyone read and counted

	if pr.rank == 0 {
		m.foldRound(label, false)
	}

	m.bar.await() // metrics folded before anyone writes new segments

	pr.acquireToken()
	pr.resumeAt = nowAfterToken()
	return in
}

// Barrier is a pure synchronisation superstep with no payload.
func Barrier(pr *Proc, label string) {
	empty := make([][]struct{}, pr.m.p)
	Exchange(pr, label, empty)
}
