package cgm

import (
	"fmt"
	"reflect"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Exchange is the machine's single communication primitive: a personalized
// all-to-all (the h-relation of the BSP model). Processor i provides
// out[j] — the elements destined for processor j — and receives in[j] —
// the elements processor j addressed to it. Every higher-level collective
// (broadcasts, scans, sorts) is built from Exchange, so every one of them
// is accounted as exactly one communication round, matching how the paper
// counts "a constant number of h-relations".
//
// The label names the collective in metrics and SPMD diagnostics. All
// processors must call the same sequence of exchanges with the same labels
// and element type; a divergent processor aborts the whole machine with a
// diagnostic rather than deadlocking. The payload movement itself is the
// machine transport's job: the loopback transport passes rows by
// reference, wire transports carry encoded blocks — the raw layout of a
// registered wire.Codec when T has one, gob otherwise (so an unregistered
// T must be gob-encodable — in practice: exported fields).
func Exchange[T any](pr *Proc, label string, out [][]T) [][]T {
	m := pr.m
	if len(out) != m.p {
		panic(fmt.Sprintf("cgm: %s: out has %d destinations, machine has %d", label, len(out), m.p))
	}
	pr.closeSegment()
	pr.releaseToken()

	stamp := fmt.Sprintf("%s#%d", label, pr.opSeq)
	dep := Deposit{Seq: pr.opSeq, Stamp: stamp, Trace: m.trace}
	pr.opSeq++
	sent := 0
	for _, s := range out {
		sent += len(s)
	}
	onWire := m.tr.Wire()
	var encBuf []byte
	if onWire {
		dep.Type = reflect.TypeOf((*T)(nil)).Elem().String()
		blocks, buf, err := encodeBlocks(out, pr.rank)
		if err != nil {
			m.fail(fmt.Sprintf("cgm: %s: encoding payload: %v", stamp, err))
		}
		dep.Blocks = blocks
		encBuf = buf
	} else {
		dep.Row = out
	}

	xStart := int64(0)
	if dep.Trace != 0 && pr.rank == 0 {
		xStart = m.tracer.Now()
	}
	col, err := m.tr.Exchange(pr.rank, dep)
	if err != nil {
		m.fail(err)
	}
	if dep.Trace != 0 && pr.rank == 0 {
		// One coordinator span per superstep (rank 0's view; the barrier
		// synchronises all ranks, so its duration is representative).
		m.tracer.Add(obs.Span{Trace: dep.Trace, Stamp: int64(dep.Seq),
			Name: "x:" + label, Rank: obs.CoordRank, Start: xStart, Dur: m.tracer.Now() - xStart})
	}
	if encBuf != nil {
		// The transport has written (or routed) every block by the time
		// Exchange returns, so the pooled buffer the blocks alias can go
		// back for the next superstep's deposit.
		wire.PutBuf(encBuf)
	}

	in := make([][]T, m.p)
	recv := 0
	if onWire {
		for j, b := range col.Blocks {
			if j == pr.rank {
				// The self-addressed block never crossed the wire (its
				// deposit slot was nil): alias it directly, exactly the
				// sharing the loopback transport exhibits.
				in[j] = out[j]
				recv += len(in[j])
				continue
			}
			part, err := decodeBlock[T](b)
			if err != nil {
				m.fail(fmt.Sprintf("cgm: %s: decoding block from processor %d: %v", stamp, j, err))
			}
			in[j] = part
			recv += len(part)
		}
	} else {
		for j, row := range col.Rows {
			src, ok := row.([][]T)
			if !ok {
				m.fail(fmt.Sprintf("SPMD violation: processor %d exchanged a different element type at %q", j, stamp))
			}
			in[j] = src[pr.rank]
			recv += len(in[j])
		}
	}
	m.sent[pr.rank] = sent
	m.recv[pr.rank] = recv

	m.await() // everyone read and counted

	if pr.rank == 0 {
		m.foldRound(label, false)
	}

	m.await() // metrics folded before anyone writes new segments

	pr.acquireToken()
	pr.resumeAt = nowAfterToken()
	return in
}

// Barrier is a pure synchronisation superstep with no payload.
func Barrier(pr *Proc, label string) {
	Exchange(pr, label, make([][]byte, pr.m.p))
}

// encodeBlocks encodes each destination's payload independently, so a
// wire transport can route block j to rank j without re-encoding — raw
// layout when []T has a registered wire codec, gob fallback otherwise.
// The self-addressed slot stays nil: the machine keeps that block in
// memory (see the Deposit contract), so it is never serialized at all.
//
// All blocks are appended into one pooled buffer (each block a
// capacity-clipped view), returned alongside so the caller can release it
// once the transport is done with the deposit. If the buffer reallocates
// mid-deposit, earlier views keep the old backing array alive — still
// correct, merely unpooled.
func encodeBlocks[T any](out [][]T, self int) ([][]byte, []byte, error) {
	blocks := make([][]byte, len(out))
	buf := wire.GetBuf()
	for j, part := range out {
		if j == self {
			continue
		}
		start := len(buf)
		var err error
		buf, err = wire.Encode(buf, part)
		if err != nil {
			wire.PutBuf(buf)
			return nil, nil, err
		}
		blocks[j] = buf[start:len(buf):len(buf)]
	}
	return blocks, buf, nil
}

// decodeBlock decodes one source's payload.
func decodeBlock[T any](b []byte) ([]T, error) {
	return wire.Decode[[]T](b)
}
