package cgm

import (
	"testing"

	"repro/internal/exec"
)

// rtState is the per-rank state of the cgm resident test program.
type rtState struct {
	got  [][]int // column of the last collect, by source
	kept int
}

func init() {
	exec.Register(&exec.Program{
		Name:    "cgm-test",
		Version: 1,
		New:     func(rank, p int) any { return &rtState{} },
		Steps: map[string]exec.Step{
			"sum": exec.Pure(func(st *rtState, c *exec.Ctx, _ struct{}) (int, error) {
				total := st.kept
				for _, part := range st.got {
					for _, v := range part {
						total += v
					}
				}
				return total, nil
			}),
		},
		Emits: map[string]exec.Emit{
			"fan": exec.Emitter(func(st *rtState, c *exec.Ctx, base int) ([][]int, []byte, error) {
				rows := make([][]int, c.P)
				for j := range rows {
					rows[j] = []int{base + c.Rank*10 + j}
				}
				return rows, exec.Marshal(c.Rank), nil
			}),
		},
		Collects: map[string]exec.Collect{
			"keep": exec.Collector(func(st *rtState, c *exec.Ctx, extra int, in [][]int) (int, error) {
				st.got = in
				st.kept += extra
				n := 0
				for _, part := range in {
					n += len(part)
				}
				return n, nil
			}),
		},
	})
}

func rtRef(step string) exec.Ref { return exec.Ref{Program: "cgm-test", Version: 1, Step: step} }

// TestResidentExchangeCollect: deposits made coordinator-side land in the
// resident state, and the round accounting matches a fabric Exchange of
// the same rows.
func TestResidentExchangeCollect(t *testing.T) {
	p := 4
	res := New(Config{P: p, Resident: true})
	fab := New(Config{P: p})

	var fabricIn [4][][]int
	fab.Run(func(pr *Proc) {
		out := make([][]int, p)
		for j := range out {
			out[j] = []int{pr.rank*10 + j}
		}
		fabricIn[pr.rank] = Exchange(pr, "fan", out)
	})
	res.Run(func(pr *Proc) {
		out := make([][]int, p)
		for j := range out {
			out[j] = []int{pr.rank*10 + j}
		}
		n := ExchangeCollect[int, int, int](pr, "fan", out, rtRef("keep"), 7)
		if n != p {
			t.Errorf("rank %d: collect saw %d elements, want %d", pr.rank, n, p)
		}
	})

	fm, rm := fab.Metrics(), res.Metrics()
	if len(fm.Rounds) != len(rm.Rounds) {
		t.Fatalf("round counts differ: fabric %d, resident %d", len(fm.Rounds), len(rm.Rounds))
	}
	for i := range fm.Rounds {
		f, r := fm.Rounds[i], rm.Rounds[i]
		if f.Label != r.Label || f.MaxH != r.MaxH || f.TotalElems != r.TotalElems || f.Final != r.Final {
			t.Fatalf("round %d diverges: fabric %+v resident %+v", i, f, r)
		}
	}

	// The resident state now holds each rank's column; verify via a pure
	// step that it matches the fabric column plus the collect extra.
	res.Run(func(pr *Proc) {
		got := CallResident[struct{}, int](pr, rtRef("sum"), struct{}{})
		want := 7
		for _, part := range fabricIn[pr.rank] {
			for _, v := range part {
				want += v
			}
		}
		if got != want {
			t.Errorf("rank %d resident sum %d, want %d", pr.rank, got, want)
		}
	})
}

// TestResidentExchangeSteps: both endpoints resident; counts still match
// the equivalent fabric exchange.
func TestResidentExchangeSteps(t *testing.T) {
	p := 3
	res := New(Config{P: p, Resident: true})
	res.Run(func(pr *Proc) {
		note, n := ExchangeSteps[int, int, int](pr, "fan", rtRef("fan"), 100, rtRef("keep"), 0)
		from, err := exec.Unmarshal[int](note)
		if err != nil || from != pr.rank {
			t.Errorf("rank %d: note %d err %v", pr.rank, from, err)
		}
		if n != p {
			t.Errorf("rank %d collected %d elements, want %d", pr.rank, n, p)
		}
	})
	mt := res.Metrics()
	if mt.CommRounds() != 1 {
		t.Fatalf("resident exchange folded %d rounds, want 1", mt.CommRounds())
	}
	if mt.Rounds[0].MaxH != p || mt.Rounds[0].TotalElems != p*p {
		t.Fatalf("resident counts wrong: %+v", mt.Rounds[0])
	}
	res.Run(func(pr *Proc) {
		got := CallResident[struct{}, int](pr, rtRef("sum"), struct{}{})
		want := 0
		for j := 0; j < p; j++ {
			want += 100 + j*10 + pr.rank
		}
		if got != want {
			t.Errorf("rank %d sum %d want %d", pr.rank, got, want)
		}
	})
}

// TestResidentStepErrorAborts: a failing step aborts the machine with its
// diagnostic instead of deadlocking the other ranks.
func TestResidentStepErrorAborts(t *testing.T) {
	res := New(Config{P: 2, Resident: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the machine to abort")
		}
	}()
	res.Run(func(pr *Proc) {
		CallResident[struct{}, int](pr, exec.Ref{Program: "cgm-test", Version: 99, Step: "sum"}, struct{}{})
	})
}
