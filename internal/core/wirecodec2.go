package core

import (
	"slices"

	"repro/internal/segtree"
	"repro/internal/wire"
)

// Raw wire codecs for the remaining step/collect payloads: the resident
// control arguments, the held-construct frames of the worker-fed build,
// and the fused route-and-serve replies. With these registered, a
// cluster serving queries or bulk-ingesting points sends ZERO gob frames
// — every byte on the coordinator's connections is raw-coded control or
// payload (TestClusterServesWithoutGob holds that line). Only custom
// aggregate value types still ride the gob fallback, by design.
//
// Same layout discipline as wirecodec.go: counts/lengths are uvarints,
// IDs/coordinates/values fixed-width little-endian, srec blocks reuse
// appendSrecs/readSrecs so the one-arena decode path is shared.

// ------------------------------------------------------------ helpers

func appendQcounts(buf []byte, vs []qcount) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = wire.AppendI32(buf, v.Query)
		buf = wire.AppendI64(buf, v.Val)
	}
	return buf
}

func readQcounts(r *wire.Reader) []qcount {
	n := r.Count(12)
	if n == 0 {
		return nil
	}
	vs := make([]qcount, n)
	for i := range vs {
		vs[i].Query = r.I32()
		vs[i].Val = r.I64()
	}
	return vs
}

func appendRlocals(buf []byte, ls []rlocal) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(ls)))
	for _, l := range ls {
		buf = wire.AppendI32(buf, l.Query)
		buf = wire.AppendVarint(buf, int64(l.Off))
		buf = wire.AppendPoints(buf, l.Pts)
	}
	return buf
}

func readRlocals(r *wire.Reader) []rlocal {
	arena := wire.NewArena(r)
	n := r.Count(6)
	if n == 0 {
		return nil
	}
	ls := make([]rlocal, n)
	for i := range ls {
		ls[i].Query = r.I32()
		ls[i].Off = int(r.Varint())
		ls[i].Pts = wire.ReadPoints(r, &arena)
	}
	return ls
}

func appendRunSums(buf []byte, rs []runSum) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(rs)))
	for _, s := range rs {
		buf = wire.AppendString(buf, string(s.Key))
		buf = wire.AppendVarint(buf, int64(s.Count))
	}
	return buf
}

func readRunSums(r *wire.Reader) []runSum {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	rs := make([]runSum, n)
	for i := range rs {
		rs[i].Key = segtree.PathKey(r.Str())
		rs[i].Count = int(r.Varint())
	}
	return rs
}

func appendTreeSums(buf []byte, ts []treeSum) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = wire.AppendString(buf, string(t.Key))
		buf = wire.AppendVarint(buf, int64(t.M))
		buf = wire.AppendVarint(buf, int64(t.Start))
		buf = wire.AppendI32(buf, int32(t.Elem0))
	}
	return buf
}

func readTreeSums(r *wire.Reader) []treeSum {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	ts := make([]treeSum, n)
	for i := range ts {
		ts[i].Key = segtree.PathKey(r.Str())
		ts[i].M = int(r.Varint())
		ts[i].Start = int(r.Varint())
		ts[i].Elem0 = ElemID(r.I32())
	}
	return ts
}

// fixedCodec registers a codec whose decode needs no arena and whose
// encode/decode are simple per-record loops.
func fixedCodec[T any](app func([]byte, T) []byte, dec func(*wire.Reader) (T, error)) {
	wire.Register(wire.Codec[T]{
		Append: app,
		Decode: func(b []byte) (T, error) {
			r := wire.NewReader(b)
			v, err := dec(&r)
			if err != nil {
				var zero T
				return zero, err
			}
			if err := r.Finish(); err != nil {
				var zero T
				return zero, err
			}
			return v, nil
		},
	})
}

func init() {
	// ---------------------------------------------- construct collectives

	// Per-rank key runs of the balanced S^j (the "runs" all-gather both
	// construct paths share).
	fixedCodec(appendRunSums, func(r *wire.Reader) ([]runSum, error) { return readRunSums(r), nil })

	// Stub metadata of the phase's built elements (route collect reply
	// and the "roots" broadcast).
	fixedCodec(
		func(buf []byte, ms []elemMeta) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(ms)))
			for _, m := range ms {
				buf = wire.AppendI32(buf, int32(m.Elem))
				buf = wire.AppendI32(buf, m.Min)
				buf = wire.AppendI32(buf, m.Max)
			}
			return buf
		},
		func(r *wire.Reader) ([]elemMeta, error) {
			n := r.Count(12)
			var ms []elemMeta
			if n > 0 {
				ms = make([]elemMeta, n)
				for i := range ms {
					ms[i].Elem = ElemID(r.I32())
					ms[i].Min = r.I32()
					ms[i].Max = r.I32()
				}
			}
			return ms, nil
		})

	// ---------------------------------------------- resident control args

	fixedCodec(
		func(buf []byte, a beginArgs) []byte { return append(buf, byte(a.Backend)) },
		func(r *wire.Reader) (beginArgs, error) {
			var a beginArgs
			if d := r.Bytes(1); d != nil {
				a.Backend = Backend(d[0])
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, a constructInstallArgs) []byte {
			buf = append(buf, byte(a.Backend))
			buf = wire.AppendUvarint(buf, uint64(len(a.Infos)))
			for _, info := range a.Infos {
				buf = appendElemInfo(buf, info)
			}
			return buf
		},
		func(r *wire.Reader) (constructInstallArgs, error) {
			var a constructInstallArgs
			if d := r.Bytes(1); d != nil {
				a.Backend = Backend(d[0])
			}
			n := r.Count(23)
			if n > 0 {
				a.Infos = make([]ElemInfo, n)
				for i := range a.Infos {
					a.Infos[i] = readElemInfo(r)
				}
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, a nextArgs) []byte { return append(buf, byte(a.Dim)) },
		func(r *wire.Reader) (nextArgs, error) {
			var a nextArgs
			if d := r.Bytes(1); d != nil {
				a.Dim = int8(d[0])
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, a dimArgs) []byte { return append(buf, byte(a.Dim)) },
		func(r *wire.Reader) (dimArgs, error) {
			var a dimArgs
			if d := r.Bytes(1); d != nil {
				a.Dim = int8(d[0])
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, a seedArgs) []byte { return append(buf, byte(a.Dims)) },
		func(r *wire.Reader) (seedArgs, error) {
			var a seedArgs
			if d := r.Bytes(1); d != nil {
				a.Dims = int8(d[0])
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, a aggPrepArgs) []byte { return wire.AppendString(buf, a.Name) },
		func(r *wire.Reader) (aggPrepArgs, error) { return aggPrepArgs{Name: r.Str()}, nil })
	fixedCodec(
		func(buf []byte, a fetchArgs) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(a.Elems)))
			for _, id := range a.Elems {
				buf = wire.AppendI32(buf, int32(id))
			}
			return buf
		},
		func(r *wire.Reader) (fetchArgs, error) {
			var a fetchArgs
			n := r.Count(4)
			if n > 0 {
				a.Elems = make([]ElemID, n)
				for i := range a.Elems {
					a.Elems[i] = ElemID(r.I32())
				}
			}
			return a, nil
		})

	// ---------------------------------------------- held-construct frames

	fixedCodec(
		func(buf []byte, rep sortLocalReply) []byte {
			buf = appendSrecs(buf, rep.Samples)
			return wire.AppendVarint(buf, int64(rep.Len))
		},
		func(r *wire.Reader) (sortLocalReply, error) {
			var rep sortLocalReply
			var err error
			if rep.Samples, err = readSrecs(r); err != nil {
				return rep, err
			}
			rep.Len = int(r.Varint())
			return rep, nil
		})
	fixedCodec(
		func(buf []byte, a wsortPartArgs) []byte {
			buf = append(buf, byte(a.Dim))
			return appendSrecs(buf, a.Splitters)
		},
		func(r *wire.Reader) (wsortPartArgs, error) {
			var a wsortPartArgs
			if d := r.Bytes(1); d != nil {
				a.Dim = int8(d[0])
			}
			var err error
			a.Splitters, err = readSrecs(r)
			return a, err
		})
	fixedCodec(
		func(buf []byte, rep lenReply) []byte { return wire.AppendVarint(buf, int64(rep.Len)) },
		func(r *wire.Reader) (lenReply, error) { return lenReply{Len: int(r.Varint())}, nil })
	fixedCodec(
		func(buf []byte, a wsortBalanceArgs) []byte {
			buf = wire.AppendVarint(buf, int64(a.Offset))
			return wire.AppendVarint(buf, int64(a.Total))
		},
		func(r *wire.Reader) (wsortBalanceArgs, error) {
			return wsortBalanceArgs{Offset: int(r.Varint()), Total: int(r.Varint())}, nil
		})
	fixedCodec(
		func(buf []byte, rep balanceReply) []byte {
			buf = wire.AppendVarint(buf, int64(rep.Len))
			return appendRunSums(buf, rep.Runs)
		},
		func(r *wire.Reader) (balanceReply, error) {
			return balanceReply{Len: int(r.Varint()), Runs: readRunSums(r)}, nil
		})
	fixedCodec(
		func(buf []byte, a routeHeldArgs) []byte {
			buf = appendTreeSums(buf, a.Trees)
			buf = wire.AppendVarint(buf, int64(a.Grain))
			return wire.AppendVarint(buf, int64(a.Offset))
		},
		func(r *wire.Reader) (routeHeldArgs, error) {
			return routeHeldArgs{Trees: readTreeSums(r), Grain: int(r.Varint()), Offset: int(r.Varint())}, nil
		})

	// ---------------------------------------------- streaming ingest

	fixedCodec(
		func(buf []byte, a ingestChunkArgs) []byte { return wire.AppendPoints(buf, a.Pts) },
		func(r *wire.Reader) (ingestChunkArgs, error) {
			arena := wire.NewArena(r)
			return ingestChunkArgs{Pts: wire.ReadPoints(r, &arena)}, nil
		})
	fixedCodec(
		func(buf []byte, a ingestFileArgs) []byte {
			buf = wire.AppendString(buf, a.Path)
			buf = wire.AppendVarint(buf, int64(a.Lo))
			return wire.AppendVarint(buf, int64(a.Hi))
		},
		func(r *wire.Reader) (ingestFileArgs, error) {
			return ingestFileArgs{Path: r.Str(), Lo: int(r.Varint()), Hi: int(r.Varint())}, nil
		})
	fixedCodec(
		func(buf []byte, rep ingestReply) []byte {
			buf = wire.AppendVarint(buf, int64(rep.N))
			return append(buf, byte(rep.Dims))
		},
		func(r *wire.Reader) (ingestReply, error) {
			var rep ingestReply
			rep.N = int(r.Varint())
			if d := r.Bytes(1); d != nil {
				rep.Dims = int8(d[0])
			}
			return rep, nil
		})

	// ---------------------------------------------- phase-B copy machinery

	fixedCodec(
		func(buf []byte, a shipGroupArgs) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(a.Hosts)))
			for _, h := range a.Hosts {
				buf = wire.AppendI32(buf, h)
			}
			return buf
		},
		func(r *wire.Reader) (shipGroupArgs, error) {
			var a shipGroupArgs
			n := r.Count(4)
			if n > 0 {
				a.Hosts = make([]int32, n)
				for i := range a.Hosts {
					a.Hosts[i] = r.I32()
				}
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, a shipElemsArgs) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(a.Ships)))
			for _, sh := range a.Ships {
				buf = wire.AppendI32(buf, int32(sh.Elem))
				buf = wire.AppendUvarint(buf, uint64(len(sh.Hosts)))
				for _, h := range sh.Hosts {
					buf = wire.AppendI32(buf, h)
				}
			}
			return buf
		},
		func(r *wire.Reader) (shipElemsArgs, error) {
			var a shipElemsArgs
			n := r.Count(5)
			if n > 0 {
				a.Ships = make([]elemShip, n)
				for i := range a.Ships {
					a.Ships[i].Elem = ElemID(r.I32())
					hn := r.Count(4)
					if hn > 0 {
						a.Ships[i].Hosts = make([]int32, hn)
						for j := range a.Ships[i].Hosts {
							a.Ships[i].Hosts[j] = r.I32()
						}
					}
				}
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, n copyNote) []byte { return wire.AppendVarint(buf, int64(n.CopiedPts)) },
		func(r *wire.Reader) (copyNote, error) { return copyNote{CopiedPts: int(r.Varint())}, nil })
	fixedCodec(
		func(buf []byte, a installCopiesArgs) []byte {
			buf = wire.AppendU64(buf, a.Epoch)
			buf = wire.AppendVarint(buf, int64(a.Cap))
			return wire.AppendString(buf, a.Agg)
		},
		func(r *wire.Reader) (installCopiesArgs, error) {
			return installCopiesArgs{Epoch: r.U64(), Cap: int(r.Varint()), Agg: r.Str()}, nil
		})
	fixedCodec(
		func(buf []byte, rep installCopiesReply) []byte {
			buf = wire.AppendVarint(buf, int64(rep.Held))
			buf = wire.AppendVarint(buf, int64(rep.CacheHits))
			return wire.AppendI64(buf, rep.InstallNanos)
		},
		func(r *wire.Reader) (installCopiesReply, error) {
			return installCopiesReply{Held: int(r.Varint()), CacheHits: int(r.Varint()), InstallNanos: r.I64()}, nil
		})

	// Sparse per-element demand rows of the ElementLevel phase B.
	fixedCodec(
		func(buf []byte, ds []elemDemand) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(ds)))
			for _, d := range ds {
				buf = wire.AppendI32(buf, int32(d.Elem))
				buf = wire.AppendI32(buf, d.Count)
			}
			return buf
		},
		func(r *wire.Reader) ([]elemDemand, error) {
			n := r.Count(8)
			var ds []elemDemand
			if n > 0 {
				ds = make([]elemDemand, n)
				for i := range ds {
					ds[i].Elem = ElemID(r.I32())
					ds[i].Count = r.I32()
				}
			}
			return ds, nil
		})

	// ---------------------------------------------- serving and results

	// Whole-element report orders redistributed by SegmentedGather.
	fixedCodec(
		func(buf []byte, os []rorder) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(os)))
			for _, o := range os {
				buf = wire.AppendI32(buf, o.Query)
				buf = wire.AppendI32(buf, int32(o.Elem))
				buf = wire.AppendVarint(buf, int64(o.Off))
			}
			return buf
		},
		func(r *wire.Reader) ([]rorder, error) {
			n := r.Count(9)
			var os []rorder
			if n > 0 {
				os = make([]rorder, n)
				for i := range os {
					os[i].Query = r.I32()
					os[i].Elem = ElemID(r.I32())
					os[i].Off = int(r.Varint())
				}
			}
			return os, nil
		})

	// Forest-root aggregates of the standard value types.
	fixedCodec(
		func(buf []byte, rs []aggRoot[int64]) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(rs)))
			for _, a := range rs {
				buf = wire.AppendI32(buf, int32(a.Elem))
				buf = wire.AppendI64(buf, a.Val)
			}
			return buf
		},
		func(r *wire.Reader) ([]aggRoot[int64], error) {
			n := r.Count(12)
			var rs []aggRoot[int64]
			if n > 0 {
				rs = make([]aggRoot[int64], n)
				for i := range rs {
					rs[i].Elem = ElemID(r.I32())
					rs[i].Val = r.I64()
				}
			}
			return rs, nil
		})
	fixedCodec(
		func(buf []byte, rs []aggRoot[float64]) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(rs)))
			for _, a := range rs {
				buf = wire.AppendI32(buf, int32(a.Elem))
				buf = wire.AppendF64(buf, a.Val)
			}
			return buf
		},
		func(r *wire.Reader) ([]aggRoot[float64], error) {
			n := r.Count(12)
			var rs []aggRoot[float64]
			if n > 0 {
				rs = make([]aggRoot[float64], n)
				for i := range rs {
					rs[i].Elem = ElemID(r.I32())
					rs[i].Val = r.F64()
				}
			}
			return rs, nil
		})

	// Space accounting rows.
	fixedCodec(
		func(buf []byte, ss []elemStat) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(ss)))
			for _, s := range ss {
				buf = wire.AppendI32(buf, int32(s.ID))
				buf = wire.AppendVarint(buf, int64(s.Nodes))
				buf = wire.AppendVarint(buf, int64(s.Pts))
			}
			return buf
		},
		func(r *wire.Reader) ([]elemStat, error) {
			n := r.Count(6)
			var ss []elemStat
			if n > 0 {
				ss = make([]elemStat, n)
				for i := range ss {
					ss[i].ID = ElemID(r.I32())
					ss[i].Nodes = int(r.Varint())
					ss[i].Pts = int(r.Varint())
				}
			}
			return ss, nil
		})

	// ---------------------------------------------- fused mixed serving

	fixedCodec(
		func(buf []byte, a mixedServeArgs) []byte {
			buf = wire.AppendString(buf, a.Agg)
			buf = wire.AppendUvarint(buf, uint64(len(a.Ops)))
			for _, op := range a.Ops {
				buf = append(buf, byte(op))
			}
			return buf
		},
		func(r *wire.Reader) (mixedServeArgs, error) {
			var a mixedServeArgs
			a.Agg = r.Str()
			n := r.Count(1)
			if n > 0 {
				a.Ops = make([]MixedOp, n)
				for i := range a.Ops {
					if d := r.Bytes(1); d != nil {
						a.Ops[i] = MixedOp(d[0])
					}
				}
			}
			return a, nil
		})
	fixedCodec(
		func(buf []byte, rep mixedServeReply) []byte {
			buf = appendQcounts(buf, rep.Counts)
			buf = wire.AppendBytes(buf, rep.Aggs)
			return appendRlocals(buf, rep.Locals)
		},
		func(r *wire.Reader) (mixedServeReply, error) {
			var rep mixedServeReply
			rep.Counts = readQcounts(r)
			// The section views the received frame, whose buffer is reused;
			// Aggs outlives the decode (it is re-decoded by the mode), so copy.
			rep.Aggs = slices.Clone(r.Section())
			rep.Locals = readRlocals(r)
			return rep, nil
		})
}
