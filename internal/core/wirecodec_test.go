package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/segtree"
	"repro/internal/wire"
)

// ------------------------------------------------- deterministic values

// genPayloads builds one value of every registered hot-path payload type
// from a seeded source, in canonical form (nil for empty slices, matching
// both codecs' decode side).
func genPoint(rng *rand.Rand, dims int) geom.Point {
	x := make([]geom.Coord, dims)
	for i := range x {
		x[i] = geom.Coord(rng.Int31n(2000) - 1000)
	}
	return geom.Point{ID: rng.Int31(), X: x}
}

func genPoints(rng *rand.Rand, n, dims int) []geom.Point {
	if n == 0 {
		return nil
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = genPoint(rng, dims)
	}
	return pts
}

func genBox(rng *rand.Rand, dims int) geom.Box {
	lo := make([]geom.Coord, dims)
	hi := make([]geom.Coord, dims)
	for i := range lo {
		lo[i] = geom.Coord(rng.Int31n(1000))
		hi[i] = lo[i] + geom.Coord(rng.Int31n(100))
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func genKey(rng *rand.Rand) segtree.PathKey {
	b := make([]byte, rng.Intn(8))
	for i := range b {
		b[i] = byte('0' + rng.Intn(10))
	}
	return segtree.PathKey(b)
}

// roundTrip encodes v through the wire codec and through a gob oracle,
// decodes both, and requires all three values to agree — the raw layout
// must be a drop-in replacement for what gob carried before.
func roundTrip[T any](t *testing.T, v T) {
	t.Helper()
	if !wire.Registered[T]() {
		t.Fatalf("%T has no registered codec", v)
	}
	b, err := wire.Encode(nil, v)
	if err != nil {
		t.Fatalf("wire encode %T: %v", v, err)
	}
	got, err := wire.Decode[T](b)
	if err != nil {
		t.Fatalf("wire decode %T: %v", v, err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("wire round trip of %T:\n got %+v\nwant %+v", v, got, v)
	}
	var gbuf bytes.Buffer
	if err := gob.NewEncoder(&gbuf).Encode(&v); err != nil {
		t.Fatalf("gob oracle encode %T: %v", v, err)
	}
	var oracle T
	if err := gob.NewDecoder(&gbuf).Decode(&oracle); err != nil {
		t.Fatalf("gob oracle decode %T: %v", v, err)
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("wire and gob disagree for %T:\nwire %+v\n gob %+v", v, got, oracle)
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(b); cut += 1 + len(b)/16 {
		if _, err := wire.Decode[T](b[:cut]); err == nil && cut < len(b) {
			t.Fatalf("truncated %T block (cut %d of %d) accepted", v, cut, len(b))
		}
	}
}

func TestWireCodecsMatchGobOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		dims := 1 + rng.Intn(4)
		n := rng.Intn(30)

		eps := make([]epoint, n)
		for i := range eps {
			eps[i] = epoint{Elem: ElemID(rng.Int31n(500)), Pt: genPoint(rng, dims)}
		}
		if n == 0 {
			eps = nil
		}
		roundTrip(t, eps)

		recs := make([]srec, n)
		for i := range recs {
			recs[i] = srec{Pt: genPoint(rng, dims), Key: genKey(rng)}
		}
		if n == 0 {
			recs = nil
		}
		roundTrip(t, recs)

		els := make([]shippedElem, rng.Intn(5))
		for i := range els {
			els[i] = shippedElem{
				Info: ElemInfo{
					ID: ElemID(rng.Int31n(500)), Owner: rng.Int31n(8),
					Count: rng.Int31n(100), Dim: int8(rng.Intn(dims)),
					Key: genKey(rng), Min: geom.Coord(rng.Int31n(100)), Max: geom.Coord(rng.Int31n(100)),
				},
				Pts: genPoints(rng, rng.Intn(20), dims),
			}
		}
		if len(els) == 0 {
			els = nil
		}
		roundTrip(t, els)

		subs := make([]subquery, n)
		for i := range subs {
			subs[i] = subquery{Query: rng.Int31n(1000), Elem: ElemID(rng.Int31n(500)), Box: genBox(rng, dims)}
		}
		if n == 0 {
			subs = nil
		}
		roundTrip(t, subs)
		roundTrip(t, serveArgs{Subs: subs})
		roundTrip(t, serveAggArgs{Name: string(genKey(rng)), Subs: subs})

		qcs := make([]qcount, n)
		for i := range qcs {
			qcs[i] = qcount{Query: rng.Int31n(1000), Val: rng.Int63() - (1 << 60)}
		}
		if n == 0 {
			qcs = nil
		}
		roundTrip(t, qcs)

		qis := make([]qvalT[int64], n)
		qfs := make([]qvalT[float64], n)
		for i := range qis {
			qis[i] = qvalT[int64]{Query: rng.Int31n(1000), Val: rng.Int63()}
			qfs[i] = qvalT[float64]{Query: rng.Int31n(1000), Val: rng.NormFloat64()}
		}
		if n == 0 {
			qis, qfs = nil, nil
		}
		roundTrip(t, qis)
		roundTrip(t, qfs)

		rls := make([]rlocal, rng.Intn(6))
		for i := range rls {
			rls[i] = rlocal{Query: rng.Int31n(1000), Pts: genPoints(rng, rng.Intn(10), dims), Off: rng.Intn(4000) - 2000}
		}
		if len(rls) == 0 {
			rls = nil
		}
		roundTrip(t, rls)

		rps := make([]ReportPair, n)
		for i := range rps {
			rps[i] = ReportPair{Query: rng.Int31n(1000), Pt: genPoint(rng, dims)}
		}
		if n == 0 {
			rps = nil
		}
		roundTrip(t, rps)
	}
}

// A generic aggregate over a custom value type must keep riding the gob
// fallback: the registry has int64/float64 instantiations only.
func TestCustomAggregateValueFallsBackToGob(t *testing.T) {
	type money struct{ Cents int64 }
	if wire.Registered[[]qvalT[money]]() {
		t.Fatal("custom aggregate value type unexpectedly registered")
	}
	in := []qvalT[money]{{Query: 3, Val: money{Cents: 199}}}
	b, err := wire.Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wire.Decode[[]qvalT[money]](b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("fallback round trip: %+v vs %+v", out, in)
	}
}

// ------------------------------------------------------------ benchmarks

// benchEncDec measures both codecs on the same block value: the raw path
// through wire.Encode/Decode, the gob oracle exactly as the exchange
// layer used it before (fresh encoder per block — gob type descriptors
// cannot be reused across independently decoded blocks).
func benchEncDec[T any](b *testing.B, name string, v T) {
	raw, err := wire.Encode(nil, v)
	if err != nil {
		b.Fatal(err)
	}
	var gbuf bytes.Buffer
	if err := gob.NewEncoder(&gbuf).Encode(&v); err != nil {
		b.Fatal(err)
	}
	gb := append([]byte(nil), gbuf.Bytes()...)
	b.Run(name+"/enc/raw", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			buf := wire.GetBuf()
			buf, err := wire.Encode(buf, v)
			if err != nil {
				b.Fatal(err)
			}
			wire.PutBuf(buf)
		}
	})
	b.Run(name+"/enc/gob", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(gb)))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(name+"/dec/raw", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode[T](raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(name+"/dec/gob", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(gb)))
		for i := 0; i < b.N; i++ {
			var out T
			if err := gob.NewDecoder(bytes.NewReader(gb)).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireCodec is the gob-vs-raw microbench of ISSUE 6: one block
// of each hot payload shape at exchange-realistic sizes.
func BenchmarkWireCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n, dims = 1024, 3

	benchEncDec(b, "points", genPoints(rng, n, dims))

	eps := make([]epoint, n)
	for i := range eps {
		eps[i] = epoint{Elem: ElemID(rng.Int31n(500)), Pt: genPoint(rng, dims)}
	}
	benchEncDec(b, "epoints", eps)

	subs := make([]subquery, n)
	for i := range subs {
		subs[i] = subquery{Query: int32(i), Elem: ElemID(rng.Int31n(500)), Box: genBox(rng, dims)}
	}
	benchEncDec(b, "subqueries", subs)

	qcs := make([]qcount, n)
	for i := range qcs {
		qcs[i] = qcount{Query: int32(i), Val: rng.Int63()}
	}
	benchEncDec(b, "qcounts", qcs)

	rps := make([]ReportPair, n)
	for i := range rps {
		rps[i] = ReportPair{Query: int32(i), Pt: genPoint(rng, dims)}
	}
	benchEncDec(b, "reportpairs", rps)

	els := make([]shippedElem, 8)
	for i := range els {
		els[i] = shippedElem{
			Info: ElemInfo{ID: ElemID(i), Owner: int32(i % 4), Count: int32(n / 8),
				Dim: 1, Key: segtree.PathKey(fmt.Sprintf("0.%d", i)), Min: 0, Max: 1000},
			Pts: genPoints(rng, n/8, dims),
		}
	}
	benchEncDec(b, "shipped", els)
}
