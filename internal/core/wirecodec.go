package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/geom"
	"repro/internal/segtree"
	"repro/internal/wire"
)

// Raw wire codecs for the superstep payload types that dominate the
// machine's traffic (ROADMAP item 3): construction's routed points and
// S^(j+1) records, phase B's element copies, phase C's query boxes, and
// the per-mode result blocks. Registration happens here, in core's init,
// so every binary that can run the SPMD programs (coordinator and
// rangeworker both import core) agrees on the raw-coded type set by
// construction; anything else — custom aggregate value types above all —
// rides wire's gob fallback untouched.
//
// Layouts follow the package wire discipline: counts and string lengths
// are uvarints, IDs/coordinates/values are fixed-width little-endian.
// Decoders share one coordinate arena per block (points become views
// into it) and decode all PathKeys of a block out of one string
// allocation, so decoding a block costs a handful of allocations
// regardless of its element count.

// appendElemInfo appends the fixed-layout replicated metadata.
func appendElemInfo(b []byte, info ElemInfo) []byte {
	b = wire.AppendI32(b, int32(info.ID))
	b = wire.AppendI32(b, info.Owner)
	b = wire.AppendI32(b, info.Count)
	b = append(b, byte(info.Dim))
	b = wire.AppendString(b, string(info.Key))
	b = wire.AppendI32(b, info.Min)
	b = wire.AppendI32(b, info.Max)
	return b
}

// readElemInfo decodes one ElemInfo (the per-info key allocation is fine
// here: copy payloads carry few elements, each with many points).
func readElemInfo(r *wire.Reader) ElemInfo {
	var info ElemInfo
	info.ID = ElemID(r.I32())
	info.Owner = r.I32()
	info.Count = r.I32()
	if d := r.Bytes(1); d != nil {
		info.Dim = int8(d[0])
	}
	info.Key = segtree.PathKey(r.Str())
	info.Min = r.I32()
	info.Max = r.I32()
	return info
}

// keyArena decodes all PathKeys of a block out of one backing string:
// the encoder framed them into a single section, the decoder converts
// that section to a string once, and every key is a substring view.
type keyArena struct {
	sec []byte // the framed section (views the block)
	s   string // the one-allocation copy the keys substring
	off int
	ok  bool
}

func readKeyArena(r *wire.Reader) keyArena {
	sec := r.Section()
	return keyArena{sec: sec, s: string(sec), ok: sec != nil || r.Remaining() >= 0}
}

// next returns the next key of the section.
func (ka *keyArena) next() segtree.PathKey {
	if !ka.ok {
		return ""
	}
	l, n := binary.Uvarint(ka.sec[ka.off:])
	if n <= 0 || uint64(len(ka.sec)-ka.off-n) < l {
		ka.ok = false
		return ""
	}
	start := ka.off + n
	ka.off = start + int(l)
	return segtree.PathKey(ka.s[start:ka.off])
}

// finish reports whether the section was consumed exactly.
func (ka *keyArena) finish() error {
	if !ka.ok || ka.off != len(ka.sec) {
		return fmt.Errorf("core: corrupt path-key section")
	}
	return nil
}

// ------------------------------------------------------------ S^j records

// appendSrecs encodes a record block: points first, then all tree labels
// in one framed key section. Shared by the []srec exchange codec and the
// held-construct argument/reply codecs (wirecodec2.go).
func appendSrecs(buf []byte, recs []srec) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(recs)))
	for _, rec := range recs {
		buf = wire.AppendPoint(buf, rec.Pt)
	}
	keys := wire.GetBuf()
	for _, rec := range recs {
		keys = wire.AppendString(keys, string(rec.Key))
	}
	buf = wire.AppendBytes(buf, keys)
	wire.PutBuf(keys)
	return buf
}

// readSrecs decodes one appendSrecs block in place in the reader.
func readSrecs(r *wire.Reader) ([]srec, error) {
	arena := wire.NewArena(r)
	n := r.Count(6) // ≥5B point + its 1B key frame
	var recs []srec
	if n > 0 {
		recs = make([]srec, n)
		for i := range recs {
			recs[i].Pt = wire.ReadPoint(r, &arena)
		}
		ka := readKeyArena(r)
		for i := range recs {
			recs[i].Key = ka.next()
		}
		if err := ka.finish(); err != nil {
			return nil, err
		}
	} else {
		if ka := readKeyArena(r); ka.finish() != nil {
			return nil, fmt.Errorf("core: corrupt path-key section")
		}
	}
	return recs, nil
}

// ------------------------------------------------------------ subqueries

func appendSubqueries(b []byte, subs []subquery) []byte {
	b = wire.AppendUvarint(b, uint64(len(subs)))
	for _, s := range subs {
		b = wire.AppendI32(b, s.Query)
		b = wire.AppendI32(b, int32(s.Elem))
		b = wire.AppendBox(b, s.Box)
	}
	return b
}

func readSubqueries(r *wire.Reader, arena *[]geom.Coord) []subquery {
	n := r.Count(9) // 2×4B IDs + ≥1B box dims
	if n == 0 {
		return nil
	}
	subs := make([]subquery, n)
	for i := range subs {
		subs[i].Query = r.I32()
		subs[i].Elem = ElemID(r.I32())
		subs[i].Box = wire.ReadBox(r, arena)
	}
	return subs
}

func init() {
	// Construction: element-routed points (step 3's h-relation, the
	// single largest exchange of a build).
	wire.Register(wire.Codec[[]epoint]{
		Append: func(buf []byte, eps []epoint) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(eps)))
			for _, ep := range eps {
				buf = wire.AppendI32(buf, int32(ep.Elem))
				buf = wire.AppendPoint(buf, ep.Pt)
			}
			return buf
		},
		Decode: func(b []byte) ([]epoint, error) {
			r := wire.NewReader(b)
			arena := wire.NewArena(&r)
			n := r.Count(9)
			var eps []epoint
			if n > 0 {
				eps = make([]epoint, n)
				for i := range eps {
					eps[i].Elem = ElemID(r.I32())
					eps[i].Pt = wire.ReadPoint(&r, &arena)
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return eps, nil
		},
	})

	// Construction: the S^j records the sample sort routes (points
	// first, then all tree labels in one framed key section).
	wire.Register(wire.Codec[[]srec]{
		Append: appendSrecs,
		Decode: func(b []byte) ([]srec, error) {
			r := wire.NewReader(b)
			recs, err := readSrecs(&r)
			if err != nil {
				return nil, err
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return recs, nil
		},
	})

	// Phase B: element copies in flight (metadata + point payload).
	wire.Register(wire.Codec[[]shippedElem]{
		Append: func(buf []byte, els []shippedElem) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(els)))
			for _, sh := range els {
				buf = appendElemInfo(buf, sh.Info)
				buf = wire.AppendPoints(buf, sh.Pts)
			}
			return buf
		},
		Decode: func(b []byte) ([]shippedElem, error) {
			r := wire.NewReader(b)
			arena := wire.NewArena(&r)
			n := r.Count(23) // fixed ElemInfo fields + key frame + count
			var els []shippedElem
			if n > 0 {
				els = make([]shippedElem, n)
				for i := range els {
					els[i].Info = readElemInfo(&r)
					els[i].Pts = wire.ReadPoints(&r, &arena)
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return els, nil
		},
	})

	// Phase C: routed subqueries (the query boxes), both as exchange
	// rows and wrapped in the resident serve-step arguments.
	wire.Register(wire.Codec[[]subquery]{
		Append: appendSubqueries,
		Decode: func(b []byte) ([]subquery, error) {
			r := wire.NewReader(b)
			arena := wire.NewArena(&r)
			subs := readSubqueries(&r, &arena)
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return subs, nil
		},
	})
	wire.Register(wire.Codec[serveArgs]{
		Append: func(buf []byte, a serveArgs) []byte { return appendSubqueries(buf, a.Subs) },
		Decode: func(b []byte) (serveArgs, error) {
			r := wire.NewReader(b)
			arena := wire.NewArena(&r)
			subs := readSubqueries(&r, &arena)
			if err := r.Finish(); err != nil {
				return serveArgs{}, err
			}
			return serveArgs{Subs: subs}, nil
		},
	})
	wire.Register(wire.Codec[serveAggArgs]{
		Append: func(buf []byte, a serveAggArgs) []byte {
			buf = wire.AppendString(buf, a.Name)
			return appendSubqueries(buf, a.Subs)
		},
		Decode: func(b []byte) (serveAggArgs, error) {
			r := wire.NewReader(b)
			name := r.Str()
			arena := wire.NewArena(&r)
			subs := readSubqueries(&r, &arena)
			if err := r.Finish(); err != nil {
				return serveAggArgs{}, err
			}
			return serveAggArgs{Name: name, Subs: subs}, nil
		},
	})

	// Count results: fixed 12-byte records, decoded in one allocation.
	wire.Register(wire.Codec[[]qcount]{
		Append: appendQcounts,
		Decode: func(b []byte) ([]qcount, error) {
			r := wire.NewReader(b)
			vs := readQcounts(&r)
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return vs, nil
		},
	})

	// Aggregate results for the standard value types (internal/
	// aggregates): custom value types fall back to gob by design.
	wire.Register(wire.Codec[[]qvalT[int64]]{
		Append: func(buf []byte, vs []qvalT[int64]) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(vs)))
			for _, v := range vs {
				buf = wire.AppendI32(buf, v.Query)
				buf = wire.AppendI64(buf, v.Val)
			}
			return buf
		},
		Decode: func(b []byte) ([]qvalT[int64], error) {
			r := wire.NewReader(b)
			n := r.Count(12)
			var vs []qvalT[int64]
			if n > 0 {
				vs = make([]qvalT[int64], n)
				for i := range vs {
					vs[i].Query = r.I32()
					vs[i].Val = r.I64()
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return vs, nil
		},
	})
	wire.Register(wire.Codec[[]qvalT[float64]]{
		Append: func(buf []byte, vs []qvalT[float64]) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(vs)))
			for _, v := range vs {
				buf = wire.AppendI32(buf, v.Query)
				buf = wire.AppendF64(buf, v.Val)
			}
			return buf
		},
		Decode: func(b []byte) ([]qvalT[float64], error) {
			r := wire.NewReader(b)
			n := r.Count(12)
			var vs []qvalT[float64]
			if n > 0 {
				vs = make([]qvalT[float64], n)
				for i := range vs {
					vs[i].Query = r.I32()
					vs[i].Val = r.F64()
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return vs, nil
		},
	})

	// Report results: served subquery hits and the redistributed
	// (query, point) pairs of phase D.
	wire.Register(wire.Codec[[]rlocal]{
		Append: appendRlocals,
		Decode: func(b []byte) ([]rlocal, error) {
			r := wire.NewReader(b)
			ls := readRlocals(&r)
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return ls, nil
		},
	})
	wire.Register(wire.Codec[[]ReportPair]{
		Append: func(buf []byte, ps []ReportPair) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(ps)))
			for _, rp := range ps {
				buf = wire.AppendI32(buf, rp.Query)
				buf = wire.AppendPoint(buf, rp.Pt)
			}
			return buf
		},
		Decode: func(b []byte) ([]ReportPair, error) {
			r := wire.NewReader(b)
			arena := wire.NewArena(&r)
			n := r.Count(9)
			var ps []ReportPair
			if n > 0 {
				ps = make([]ReportPair, n)
				for i := range ps {
					ps[i].Query = r.I32()
					ps[i].Pt = wire.ReadPoint(&r, &arena)
				}
			}
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return ps, nil
		},
	})
}
