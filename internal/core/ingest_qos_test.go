package core_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/workload"
)

// qosBurn is a test-only resident program whose single step spins the
// CPU for the requested duration and replies with the rank's running
// call count. It stands in for ingest staging at a work rate large
// enough to exercise the share governor deterministically — real chunk
// staging is so cheap that test-sized loads fit inside the governor's
// free burst and never throttle.
const qosBurnProgram = "core_test/qosburn"

func init() {
	exec.Register(&exec.Program{
		Name:    qosBurnProgram,
		Version: 1,
		New:     func(rank, p int) any { return new(int) },
		Steps: map[string]exec.Step{
			"burn": exec.Pure(func(st *int, c *exec.Ctx, spinNs int64) (int, error) {
				for end := time.Now().Add(time.Duration(spinNs)); time.Now().Before(end); {
				}
				*st++
				return *st, nil
			}),
		},
	})
}

// TestIngestShareCapsServeLatency is the QoS contract on loopback: a
// MaxShare-governed feed may not push concurrent serve-query p50 beyond
// a configured bound of the idle p50, the governor must actually
// throttle (nonzero wait counters), and the governed phase's wall-time
// must stretch to at least busy/share. The bound is deliberately loose
// (10x + a 5ms floor) — this pins the mechanism, not a benchmark
// number; BENCH_ingest.json records the real curves.
func TestIngestShareCapsServeLatency(t *testing.T) {
	const (
		p         = 4
		nServe    = 1 << 12
		share     = 0.1
		spin      = 500 * time.Microsecond
		calls     = 150 // 75ms of busy work per rank, ~4x the burst
		boundMult = 10
		boundMin  = 5 * time.Millisecond
	)
	reg := obs.NewRegistry()

	servePts := workload.Points(workload.PointSpec{N: nServe, Dims: 2, Dist: workload.Uniform, Seed: 5})
	serveM := cgm.New(cgm.Config{P: p})
	serveTree := core.Build(serveM, servePts)
	boxes := workload.Boxes(workload.QuerySpec{M: 16, Dims: 2, N: nServe, Selectivity: 0.05, Seed: 9})

	oneQuery := func() time.Duration {
		start := time.Now()
		serveTree.CountBatch(boxes[:4])
		return time.Since(start)
	}
	p50 := func(samples []time.Duration) time.Duration {
		h := obs.NewRegistry().Histogram("s")
		for _, s := range samples {
			h.Observe(int64(s))
		}
		return time.Duration(h.Quantile(0.5))
	}

	var idle []time.Duration
	for i := 0; i < 50; i++ {
		idle = append(idle, oneQuery())
	}
	idleP50 := p50(idle)

	// One governed feed per rank, fed concurrently — the shape of a
	// rank-parallel capped ingest, minus the ungoverned level construct
	// that would otherwise dominate the sampling window.
	loadM := cgm.New(cgm.Config{P: p, Resident: true, Obs: reg})
	ref := exec.Ref{Program: qosBurnProgram, Version: 1, Step: "burn"}
	args := exec.Marshal(int64(spin))
	var wg sync.WaitGroup
	errs := make([]error, p)
	feedStart := time.Now()
	done := make(chan struct{})
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sf, err := loadM.OpenFeed(rank, ref, cgm.FeedOptions{Window: 4, MaxShare: share})
			if err != nil {
				errs[rank] = err
				return
			}
			for i := 0; i < calls; i++ {
				if err := sf.Send(args, nil); err != nil {
					errs[rank] = err
					return
				}
			}
			last, err := sf.Close()
			if err != nil {
				errs[rank] = err
				return
			}
			if n, err := exec.Unmarshal[int](last); err != nil || n != calls {
				t.Errorf("rank %d: final feed reply %d (err=%v), want %d", rank, n, err, calls)
			}
		}(rank)
	}
	go func() { wg.Wait(); close(done) }()

	var during []time.Duration
loop:
	for {
		select {
		case <-done:
			break loop
		default:
			during = append(during, oneQuery())
			// Pace the probe so it samples latency instead of competing
			// for every core with the governed feeds.
			time.Sleep(2 * time.Millisecond)
		}
	}
	feedWall := time.Since(feedStart)
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d feed: %v", rank, err)
		}
	}
	if len(during) < 10 {
		t.Fatalf("only %d serve samples completed during the governed feed", len(during))
	}
	duringP50 := p50(during)

	// The latency bound itself.
	bound := idleP50 * boundMult
	if bound < boundMin {
		bound = boundMin
	}
	if duringP50 > bound {
		t.Fatalf("serve p50 during capped feed = %v, idle = %v; exceeds bound %v", duringP50, idleP50, bound)
	}

	// The governor did the capping: it throttled, and each rank's
	// wall-time stretched to at least its busy time over the share
	// (half, to forgive scheduler slop and the free burst).
	waits := reg.Counter("ingest_throttle_waits_total").Value()
	busy := time.Duration(reg.Counter("ingest_busy_ns_total").Value())
	if waits == 0 {
		t.Fatal("governor recorded no throttle waits during a capped feed")
	}
	if minWall := time.Duration(float64(busy) / p / share / 2); feedWall < minWall {
		t.Fatalf("capped feeds finished in %v with %v total busy; share=%v demands >= %v wall",
			feedWall, busy, share, minWall)
	}
	t.Logf("idle p50 %v, during p50 %v (%d samples), feed wall %v, busy %v, throttle waits %d",
		idleP50, duringP50, len(during), feedWall, busy, waits)
}
