package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVerifyPassesOnRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		d := 1 + rng.Intn(4)
		p := 1 + rng.Intn(8)
		dt, _, _ := buildBoth(rng, n, d, p)
		return dt.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Corruption tests: every class of invariant violation must be detected.
func TestVerifyDetectsCorruption(t *testing.T) {
	build := func() *Tree {
		rng := rand.New(rand.NewSource(99))
		dt, _, _ := buildBoth(rng, 128, 2, 4)
		return dt
	}
	cases := []struct {
		name    string
		corrupt func(*Tree)
		want    string
	}{
		{
			"replica-divergence",
			func(dt *Tree) {
				ht := dt.procs[2].hat[0]
				nd, _ := ht.Node(1)
				nd.Count++
				ht.setNode(1, nd)
			},
			"differs from replica 0",
		},
		{
			"count-drift",
			func(dt *Tree) {
				// Mutate the same node on every replica so the divergence
				// check passes and the count check must catch it.
				for _, ps := range dt.procs {
					ht := ps.hat[0]
					nd, _ := ht.Node(1)
					nd.Count += 3
					ht.setNode(1, nd)
				}
			},
			"count",
		},
		{
			"lost-element",
			func(dt *Tree) {
				for _, ps := range dt.procs {
					for id := range ps.elems {
						delete(ps.elems, id)
						return
					}
				}
			},
			"missing at its owner",
		},
		{
			"stolen-point",
			func(dt *Tree) {
				for _, ps := range dt.procs {
					for _, el := range ps.elems {
						if el.info.Dim == 0 && len(el.pts) > 1 {
							el.pts = el.pts[:len(el.pts)-1]
							return
						}
					}
				}
			},
			"",
		},
		{
			"unsorted-element",
			func(dt *Tree) {
				for _, ps := range dt.procs {
					for _, el := range ps.elems {
						if len(el.pts) > 1 {
							el.pts[0], el.pts[len(el.pts)-1] = el.pts[len(el.pts)-1], el.pts[0]
							return
						}
					}
				}
			},
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dt := build()
			if err := dt.Verify(); err != nil {
				t.Fatalf("fresh tree failed verify: %v", err)
			}
			tc.corrupt(dt)
			err := dt.Verify()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("unexpected diagnostic %q, want substring %q", err, tc.want)
			}
		})
	}
}
