package core

import (
	"fmt"

	"repro/internal/cgm"
	"repro/internal/geom"
)

// PointSource is the construct pipeline's input seam: where each rank's
// share of the input comes from. Construct step 1 ("each processor starts
// with an arbitrary block of n/p points") never needed the coordinator to
// hold the whole set — the sample sort normalizes any initial
// distribution — so a source either hands the coordinator per-rank blocks
// (Block) or declares that the records are already staged in the ranks'
// resident parts (Held), in which case no point payload ever leaves the
// workers during construction.
type PointSource interface {
	// Dims is the dimensionality of every point of the source.
	Dims() int
	// Total is the global point count n.
	Total() int
	// Held reports that the per-rank blocks already live in the ranks'
	// resident parts (staged by the ingest steps); Block is never called.
	Held() bool
	// Block returns rank's initial block (only when !Held). The tree
	// retains the returned slice for the duration of the build.
	Block(rank, p int) []geom.Point
}

// sliceSource adapts a coordinator-held slice: rank blocks are the
// canonical contiguous n/p slices, which keeps BuildBackend's behavior —
// and its round/h/volume metrics — bit-identical to the pre-seam code.
type sliceSource struct {
	pts  []geom.Point
	dims int
}

func (s sliceSource) Dims() int  { return s.dims }
func (s sliceSource) Total() int { return len(s.pts) }
func (s sliceSource) Held() bool { return false }
func (s sliceSource) Block(rank, p int) []geom.Point {
	lo, hi := queryBlock(rank, len(s.pts), p)
	return s.pts[lo:hi]
}

// blockSource is an explicit per-rank partition (arbitrary block sizes).
type blockSource struct {
	blocks [][]geom.Point
	dims   int
	total  int
}

func (s blockSource) Dims() int  { return s.dims }
func (s blockSource) Total() int { return s.total }
func (s blockSource) Held() bool { return false }
func (s blockSource) Block(rank, p int) []geom.Point {
	if len(s.blocks) != p {
		panic(fmt.Sprintf("core: point source has %d blocks, machine has %d ranks", len(s.blocks), p))
	}
	return s.blocks[rank]
}

// FromBlocks builds a PointSource from one arbitrary block per rank
// (blocks[j] is rank j's initial share; blocks may be empty but not all of
// them). The sample sort normalizes the distribution, so answers are
// independent of the split; only the canonical split of CanonicalBlocks
// additionally reproduces BuildBackend's metrics exactly.
func FromBlocks(blocks [][]geom.Point) PointSource {
	src := blockSource{blocks: blocks, dims: -1}
	for _, blk := range blocks {
		src.total += len(blk)
		for _, pt := range blk {
			if src.dims == -1 {
				src.dims = pt.Dims()
			}
			if pt.Dims() != src.dims {
				panic(fmt.Sprintf("core: point %d has %d dims, want %d", pt.ID, pt.Dims(), src.dims))
			}
		}
	}
	if src.total == 0 {
		panic("core: empty point set")
	}
	return src
}

// CanonicalBlocks splits pts into the p contiguous blocks Construct step 1
// would assign — the staging that makes a worker-fed build's metrics
// byte-identical to a coordinator-fed one.
func CanonicalBlocks(pts []geom.Point, p int) [][]geom.Point {
	blocks := make([][]geom.Point, p)
	for rank := range blocks {
		lo, hi := queryBlock(rank, len(pts), p)
		blocks[rank] = pts[lo:hi]
	}
	return blocks
}

// stagedSource describes input already resident in the workers (staged by
// StageBlocks / BulkLoad / the ingest file steps).
type stagedSource struct {
	dims  int
	total int
}

func (s stagedSource) Dims() int  { return s.dims }
func (s stagedSource) Total() int { return s.total }
func (s stagedSource) Held() bool { return true }
func (s stagedSource) Block(int, int) []geom.Point {
	panic("core: a held point source has no coordinator-side blocks")
}

// BuildFromSource runs Algorithm Construct with the input drawn from src.
// A held source requires a resident machine (the records live in the
// ranks' parts); the construction then runs end to end as the resident
// SPMD program, the coordinator contributing only the p² regular-sampling
// splitters and control frames — never point payloads.
func BuildFromSource(mach *cgm.Machine, src PointSource, be Backend) *Tree {
	n := src.Total()
	if n == 0 {
		panic("core: empty point set")
	}
	dims := src.Dims()
	if dims < 1 {
		panic("core: points need at least one dimension")
	}
	if src.Held() && !mach.Resident() {
		panic("core: a held point source needs a resident machine (cgm.Config.Resident)")
	}
	p := mach.P()
	t := newTreeShell(mach, n, dims, be)
	seeded := make([]int, p)
	mach.Run(func(pr *cgm.Proc) { t.construct(pr, src, seeded) })
	if src.Held() {
		got := 0
		for _, c := range seeded {
			got += c
		}
		if got != n {
			panic(fmt.Sprintf("core: held source staged %d points, declared %d", got, n))
		}
	}
	return t
}
