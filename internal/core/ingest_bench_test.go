package core

import (
	"math/rand"
	"testing"

	"repro/internal/cgm"
	"repro/internal/wire"
)

// BenchmarkBulkLoadStream compares the rank-parallel feed path against
// the forced coordinator funnel on a loopback resident machine. Run
// with -benchmem: the encode path draws one pooled buffer per in-flight
// window slot (funnel: one per rank) and recycles it on every ack, so
// allocs/op must stay flat in the number of chunks — a per-chunk
// allocation regression shows up here as an allocs/op jump on the order
// of the chunk count.
func BenchmarkBulkLoadStream(b *testing.B) {
	const n, p = 1 << 14, 4
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, n, 2)
	for _, bc := range []struct {
		name   string
		funnel bool
	}{{"parallel", false}, {"funnel", true}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mach := cgm.New(cgm.Config{P: p, Resident: true})
				tree, err := BulkLoadWith(mach, SliceChunks(pts, DefaultChunk), BackendLayered,
					IngestConfig{Window: DefaultWindow, Funnel: bc.funnel})
				if err != nil {
					b.Fatal(err)
				}
				tree.Machine().Close()
			}
		})
	}
}

// TestEncodeChunkBufferReuse pins the zero-alloc steady state of the
// feed encode path: re-encoding into a recycled pooled buffer must not
// allocate once the buffer has grown to chunk size. This is the
// property that makes "one GetBuf per window slot" equivalent to "no
// per-chunk garbage".
func TestEncodeChunkBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, DefaultChunk, 3)
	buf := wire.GetBuf()
	defer func() { wire.PutBuf(buf) }()

	var err error
	if buf, err = encodeChunk(buf[:0], pts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if buf, err = encodeChunk(buf[:0], pts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state chunk encode allocates %.1f times per chunk; the pooled buffer is not being reused", allocs)
	}
}
