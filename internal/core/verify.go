package core

import (
	"cmp"
	"fmt"
	"reflect"
	"slices"

	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/segtree"
)

// Verify checks the structural invariants of the distributed range tree —
// the properties Definitions 2–3 and Theorem 1 rely on — and returns the
// first violation found, or nil. It is exercised after every construction
// in the test suite and exposed through `treedump -check`.
//
// Checked invariants:
//  1. every processor's hat replica and element metadata are identical;
//  2. element ownership: stored exactly at Owner == ID mod p;
//  3. the dimension-0 elements partition the input (n points, unique IDs);
//  4. hat stubs have count ≤ grain, hat-internal nodes > grain;
//  5. hat node counts are consistent bottom-up and stub metadata matches
//     the owned elements (count, span);
//  6. every hat-internal node of a non-final dimension has a descendant
//     tree anchored back at it (Definition 1 / Lemma 1);
//  7. element point sets are sorted by their first discriminated dimension
//     (leaf order).
//
// On a resident tree the element checks run against points fetched from
// the owning ranks (the hat and metadata are coordinator-side replicas
// either way).
func (t *Tree) Verify() error {
	ref := t.procs[0]
	p := t.P()

	// (1) replicas identical.
	for rank := 1; rank < p; rank++ {
		ps := t.procs[rank]
		if len(ps.hat) != len(ref.hat) {
			return fmt.Errorf("replica %d has %d hat trees, replica 0 has %d", rank, len(ps.hat), len(ref.hat))
		}
		for i := range ps.hat {
			a, b := ps.hat[i], ref.hat[i]
			if a.Key != b.Key || a.Dim != b.Dim || a.Shape != b.Shape ||
				!reflect.DeepEqual(a.nodes, b.nodes) || !reflect.DeepEqual(a.present, b.present) {
				return fmt.Errorf("replica %d hat tree %d differs from replica 0", rank, i)
			}
		}
		if !reflect.DeepEqual(ps.info, ref.info) {
			return fmt.Errorf("replica %d element metadata differs from replica 0", rank)
		}
	}

	// Materialize the per-rank element views (local maps on a fabric
	// tree, fetched from worker memory on a resident one).
	elems, err := t.elemPtsView()
	if err != nil {
		return err
	}

	// (2) ownership.
	for rank, held := range elems {
		for id := range held {
			if int(id)%p != rank || int(ref.info[int(id)].Owner) != rank {
				return fmt.Errorf("element %d stored at processor %d, owner field %d", id, rank, ref.info[int(id)].Owner)
			}
		}
	}
	for _, info := range ref.info {
		if _, ok := elems[info.Owner][info.ID]; !ok {
			return fmt.Errorf("element %d missing at its owner %d", info.ID, info.Owner)
		}
	}

	// (3) dimension-0 partition.
	seen := make(map[int32]bool)
	total := 0
	for _, held := range elems {
		for id, pts := range held {
			if ref.info[int(id)].Dim != 0 {
				continue
			}
			total += len(pts)
			for _, pt := range pts {
				if seen[pt.ID] {
					return fmt.Errorf("point %d appears in two dimension-0 elements", pt.ID)
				}
				seen[pt.ID] = true
			}
		}
	}
	if total != t.n {
		return fmt.Errorf("dimension-0 forest covers %d points, want %d", total, t.n)
	}

	// (4)–(6) per hat tree.
	for _, ht := range ref.hat {
		var violation error
		ht.each(func(v int, nd HatNode) {
			if violation != nil {
				return
			}
			violation = t.verifyHatNode(ref, elems, ht, v, nd)
		})
		if violation != nil {
			return violation
		}
	}
	return nil
}

// elemPtsView collects every rank's stored elements as ID → points.
func (t *Tree) elemPtsView() ([]map[ElemID][]geom.Point, error) {
	out := make([]map[ElemID][]geom.Point, t.P())
	if !t.resident {
		for rank, ps := range t.procs {
			held := make(map[ElemID][]geom.Point, len(ps.elems))
			for id, el := range ps.elems {
				held[id] = el.pts
			}
			out[rank] = held
		}
		return out, nil
	}
	for rank := range out {
		// What the rank actually holds (catches both stray and missing
		// elements), then the points themselves.
		stats, err := cgm.ResidentCall[bool, []elemStat](t.mach, rank, fref("stats/elems"), false)
		if err != nil {
			return nil, fmt.Errorf("resident element stats of rank %d: %w", rank, err)
		}
		ids := make([]ElemID, len(stats))
		for i, st := range stats {
			ids[i] = st.ID
		}
		slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
		parts, err := t.residentElemPoints(rank, ids)
		if err != nil {
			return nil, fmt.Errorf("resident element fetch of rank %d: %w", rank, err)
		}
		held := make(map[ElemID][]geom.Point, len(ids))
		for i, id := range ids {
			held[id] = parts[i]
		}
		out[rank] = held
	}
	return out, nil
}

// verifyHatNode checks invariants (4)–(6) for one hat node.
func (t *Tree) verifyHatNode(ref *procState, elems []map[ElemID][]geom.Point, ht *HatTree, v int, nd HatNode) error {
	if int(nd.Count) != ht.Shape.Count(v) {
		return fmt.Errorf("hat tree %v node %d count %d, shape says %d", ht.Key, v, nd.Count, ht.Shape.Count(v))
	}
	if nd.Elem >= 0 {
		if int(nd.Count) > t.grain {
			return fmt.Errorf("stub %d of %v has count %d > grain %d", v, ht.Key, nd.Count, t.grain)
		}
		info := ref.info[int(nd.Elem)]
		if info.Count != nd.Count || info.Min != nd.Min || info.Max != nd.Max {
			return fmt.Errorf("stub %d of %v disagrees with element %d metadata", v, ht.Key, nd.Elem)
		}
		pts := elems[info.Owner][info.ID]
		if int32(len(pts)) != info.Count {
			return fmt.Errorf("element %d holds %d points, metadata says %d", info.ID, len(pts), info.Count)
		}
		dim := int(info.Dim)
		for i := 1; i < len(pts); i++ {
			if pts[i].X[dim] < pts[i-1].X[dim] {
				return fmt.Errorf("element %d points unsorted in dim %d", info.ID, dim)
			}
		}
		return nil
	}
	if int(nd.Count) <= t.grain {
		return fmt.Errorf("hat-internal node %d of %v has count %d ≤ grain %d", v, ht.Key, nd.Count, t.grain)
	}
	if int(ht.Dim) < t.dims-1 {
		if nd.Desc < 0 {
			return fmt.Errorf("hat-internal node %d of %v (dim %d) lacks a descendant", v, ht.Key, ht.Dim)
		}
		dt := ref.hat[nd.Desc]
		if dt.Key != ht.Key.Extend(v) {
			return fmt.Errorf("descendant of node %d of %v has key %v (Lemma 1 violated)", v, ht.Key, dt.Key)
		}
		if int(dt.Dim) != int(ht.Dim)+1 || dt.Shape.M != int(nd.Count) {
			return fmt.Errorf("descendant of node %d of %v has dim %d / %d leaves, want %d / %d",
				v, ht.Key, dt.Dim, dt.Shape.M, ht.Dim+1, nd.Count)
		}
	}
	// Children consistency: counts of present children sum up.
	sum := int32(0)
	for _, c := range []int{segtree.Left(v), segtree.Right(v)} {
		if cnd, ok := ht.Node(c); ok {
			sum += cnd.Count
		}
	}
	if sum != nd.Count {
		return fmt.Errorf("node %d of %v: children sum %d != count %d", v, ht.Key, sum, nd.Count)
	}
	// Span covers children spans.
	for _, c := range []int{segtree.Left(v), segtree.Right(v)} {
		if cnd, ok := ht.Node(c); ok {
			if cnd.Min < nd.Min || cnd.Max > nd.Max {
				return fmt.Errorf("node %d of %v: child span exceeds parent", v, ht.Key)
			}
		}
	}
	return nil
}
