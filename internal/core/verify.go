package core

import (
	"fmt"
	"reflect"

	"repro/internal/segtree"
)

// Verify checks the structural invariants of the distributed range tree —
// the properties Definitions 2–3 and Theorem 1 rely on — and returns the
// first violation found, or nil. It is exercised after every construction
// in the test suite and exposed through `treedump -check`.
//
// Checked invariants:
//  1. every processor's hat replica and element metadata are identical;
//  2. element ownership: stored exactly at Owner == ID mod p;
//  3. the dimension-0 elements partition the input (n points, unique IDs);
//  4. hat stubs have count ≤ grain, hat-internal nodes > grain;
//  5. hat node counts are consistent bottom-up and stub metadata matches
//     the owned elements (count, span);
//  6. every hat-internal node of a non-final dimension has a descendant
//     tree anchored back at it (Definition 1 / Lemma 1);
//  7. element point sets are sorted by their first discriminated dimension
//     (leaf order).
func (t *Tree) Verify() error {
	ref := t.procs[0]
	p := t.P()

	// (1) replicas identical.
	for rank := 1; rank < p; rank++ {
		ps := t.procs[rank]
		if len(ps.hat) != len(ref.hat) {
			return fmt.Errorf("replica %d has %d hat trees, replica 0 has %d", rank, len(ps.hat), len(ref.hat))
		}
		for i := range ps.hat {
			a, b := ps.hat[i], ref.hat[i]
			if a.Key != b.Key || a.Dim != b.Dim || a.Shape != b.Shape ||
				!reflect.DeepEqual(a.nodes, b.nodes) || !reflect.DeepEqual(a.present, b.present) {
				return fmt.Errorf("replica %d hat tree %d differs from replica 0", rank, i)
			}
		}
		if !reflect.DeepEqual(ps.info, ref.info) {
			return fmt.Errorf("replica %d element metadata differs from replica 0", rank)
		}
	}

	// (2) ownership.
	for rank, ps := range t.procs {
		for id, el := range ps.elems {
			if int(id)%p != rank || int(el.info.Owner) != rank {
				return fmt.Errorf("element %d stored at processor %d, owner field %d", id, rank, el.info.Owner)
			}
		}
	}
	for _, info := range ref.info {
		owner := t.procs[info.Owner]
		if _, ok := owner.elems[info.ID]; !ok {
			return fmt.Errorf("element %d missing at its owner %d", info.ID, info.Owner)
		}
	}

	// (3) dimension-0 partition.
	seen := make(map[int32]bool)
	total := 0
	for _, ps := range t.procs {
		for _, el := range ps.elems {
			if el.info.Dim != 0 {
				continue
			}
			total += len(el.pts)
			for _, pt := range el.pts {
				if seen[pt.ID] {
					return fmt.Errorf("point %d appears in two dimension-0 elements", pt.ID)
				}
				seen[pt.ID] = true
			}
		}
	}
	if total != t.n {
		return fmt.Errorf("dimension-0 forest covers %d points, want %d", total, t.n)
	}

	// (4)–(6) per hat tree.
	for _, ht := range ref.hat {
		var violation error
		ht.each(func(v int, nd HatNode) {
			if violation != nil {
				return
			}
			violation = t.verifyHatNode(ref, ht, v, nd)
		})
		if violation != nil {
			return violation
		}
	}
	return nil
}

// verifyHatNode checks invariants (4)–(6) for one hat node.
func (t *Tree) verifyHatNode(ref *procState, ht *HatTree, v int, nd HatNode) error {
	if int(nd.Count) != ht.Shape.Count(v) {
		return fmt.Errorf("hat tree %v node %d count %d, shape says %d", ht.Key, v, nd.Count, ht.Shape.Count(v))
	}
	if nd.Elem >= 0 {
		if int(nd.Count) > t.grain {
			return fmt.Errorf("stub %d of %v has count %d > grain %d", v, ht.Key, nd.Count, t.grain)
		}
		info := ref.info[int(nd.Elem)]
		if info.Count != nd.Count || info.Min != nd.Min || info.Max != nd.Max {
			return fmt.Errorf("stub %d of %v disagrees with element %d metadata", v, ht.Key, nd.Elem)
		}
		el := t.procs[info.Owner].elems[info.ID]
		if int32(len(el.pts)) != info.Count {
			return fmt.Errorf("element %d holds %d points, metadata says %d", info.ID, len(el.pts), info.Count)
		}
		dim := int(info.Dim)
		for i := 1; i < len(el.pts); i++ {
			if el.pts[i].X[dim] < el.pts[i-1].X[dim] {
				return fmt.Errorf("element %d points unsorted in dim %d", info.ID, dim)
			}
		}
		return nil
	}
	if int(nd.Count) <= t.grain {
		return fmt.Errorf("hat-internal node %d of %v has count %d ≤ grain %d", v, ht.Key, nd.Count, t.grain)
	}
	if int(ht.Dim) < t.dims-1 {
		if nd.Desc < 0 {
			return fmt.Errorf("hat-internal node %d of %v (dim %d) lacks a descendant", v, ht.Key, ht.Dim)
		}
		dt := ref.hat[nd.Desc]
		if dt.Key != ht.Key.Extend(v) {
			return fmt.Errorf("descendant of node %d of %v has key %v (Lemma 1 violated)", v, ht.Key, dt.Key)
		}
		if int(dt.Dim) != int(ht.Dim)+1 || dt.Shape.M != int(nd.Count) {
			return fmt.Errorf("descendant of node %d of %v has dim %d / %d leaves, want %d / %d",
				v, ht.Key, dt.Dim, dt.Shape.M, ht.Dim+1, nd.Count)
		}
	}
	// Children consistency: counts of present children sum up.
	sum := int32(0)
	for _, c := range []int{segtree.Left(v), segtree.Right(v)} {
		if cnd, ok := ht.Node(c); ok {
			sum += cnd.Count
		}
	}
	if sum != nd.Count {
		return fmt.Errorf("node %d of %v: children sum %d != count %d", v, ht.Key, sum, nd.Count)
	}
	// Span covers children spans.
	for _, c := range []int{segtree.Left(v), segtree.Right(v)} {
		if cnd, ok := ht.Node(c); ok {
			if cnd.Min < nd.Min || cnd.Max > nd.Max {
				return fmt.Errorf("node %d of %v: child span exceeds parent", v, ht.Key)
			}
		}
	}
	return nil
}
