package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

func TestSingleCountMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(8)
		dt, bf, _ := buildBoth(rng, n, d, p)
		for q := 0; q < 10; q++ {
			b := randomBoxes(rng, 1, n, d)[0]
			if dt.SingleCount(b) != int64(bf.Count(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSingleReportMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(6)
		dt, bf, _ := buildBoth(rng, n, d, p)
		b := randomBoxes(rng, 1, n, d)[0]
		got := brute.IDs(dt.SingleReport(b))
		want := brute.IDs(bf.Report(b))
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d d=%d p=%d: got %v want %v", n, d, p, got, want)
		}
	}
}

func TestSingleAggregateMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(6)
		dt, bf, _ := buildBoth(rng, n, d, p)
		weight := func(pt geom.Point) float64 { return float64(pt.ID%9) + 1 }
		h := PrepareAssociative(dt, semigroup.FloatSum(), weight)
		b := randomBoxes(rng, 1, n, d)[0]
		got := h.SingleAggregate(b)
		want := brute.Aggregate(bf, semigroup.FloatSum(), weight, b)
		if got != want {
			t.Fatalf("n=%d d=%d p=%d: %v vs %v", n, d, p, got, want)
		}
	}
}

func TestSingleCountOneRound(t *testing.T) {
	// The single-query algorithm needs exactly one gather round — no
	// balancing, no copying.
	rng := rand.New(rand.NewSource(43))
	dt, _, _ := buildBoth(rng, 256, 2, 8)
	dt.Machine().ResetMetrics()
	dt.SingleCount(randomBoxes(rng, 1, 256, 2)[0])
	if rounds := dt.Machine().Metrics().CommRounds(); rounds != 1 {
		t.Errorf("SingleCount used %d rounds, want 1", rounds)
	}
}

func TestSingleQueryWorkProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n, p := 512, 8
	dt, bf, _ := buildBoth(rng, n, 2, p)
	work := make([]int, p)
	total := 0
	// A wide query should touch elements on several owners.
	b := randomBoxes(rng, 1, n, 2)[0]
	b.Lo[0], b.Hi[0] = 1, int32(n)
	work = dt.SingleQueryWork(b)
	for _, w := range work {
		total += w
	}
	if len(work) != p {
		t.Fatalf("work profile has %d entries", len(work))
	}
	// Sanity: the profile agrees with an actual parallel count.
	if dt.SingleCount(b) != int64(bf.Count(b)) {
		t.Error("wide single query wrong")
	}
	if total == 0 {
		t.Skip("query resolved entirely in the hat")
	}
}
