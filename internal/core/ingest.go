package core

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/pointsfile"
)

// This file is the worker-direct ingest path: the coordinator never
// holds (or forwards) the point set. Chunks stream straight to each
// rank's staging area — round-robined from a client ChunkSource with a
// bounded in-flight window, or read rank-locally from pointsfile slices
// — and the held construction then runs entirely worker-side, the
// coordinator contributing only the p² regular-sampling splitters and
// control frames.

const (
	// DefaultChunk is the streaming block size (points per ingest call).
	DefaultChunk = 4096
	// DefaultWindow is the per-rank bound on buffered chunks between the
	// reader and each rank's feeder — the open-loop flow-control window.
	// A slow rank backpressures the reader instead of growing the heap.
	DefaultWindow = 4
)

// ChunkSource produces the input stream of a bulk load, one block at a
// time; it returns io.EOF after the last block. Blocks are retained by
// the ingest pipeline until encoded, so producers must not reuse them.
type ChunkSource interface {
	Next() ([]geom.Point, error)
}

type sliceChunks struct {
	pts   []geom.Point
	chunk int
}

func (s *sliceChunks) Next() ([]geom.Point, error) {
	if len(s.pts) == 0 {
		return nil, io.EOF
	}
	c := min(len(s.pts), s.chunk)
	blk := s.pts[:c]
	s.pts = s.pts[c:]
	return blk, nil
}

// SliceChunks adapts an in-memory slice to a ChunkSource (chunk <= 0
// selects DefaultChunk).
func SliceChunks(pts []geom.Point, chunk int) ChunkSource {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &sliceChunks{pts: pts, chunk: chunk}
}

// forEachRank runs f concurrently for every rank and joins the errors.
// Resident calls to distinct ranks are independent (distinct sessions on
// a wire transport, distinct state stores on the loopback), so per-rank
// parallelism is safe; per rank the calls stay sequential.
func forEachRank(p int, f func(rank int) error) error {
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := range p {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = f(rank)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// StageBlocks stages one explicit block per rank into the workers and
// returns the held source describing them. The canonical split
// (CanonicalBlocks) makes the subsequent build metric-identical to a
// coordinator-fed BuildBackend of the concatenation.
func StageBlocks(mach *cgm.Machine, blocks [][]geom.Point) (PointSource, error) {
	p := mach.P()
	if len(blocks) != p {
		return nil, fmt.Errorf("core: staging %d blocks on a %d-rank machine", len(blocks), p)
	}
	dims, total := -1, 0
	for _, blk := range blocks {
		total += len(blk)
		for _, pt := range blk {
			if dims == -1 {
				dims = pt.Dims()
			}
			if pt.Dims() != dims {
				return nil, fmt.Errorf("core: point %d has %d dims, want %d", pt.ID, pt.Dims(), dims)
			}
		}
	}
	if total == 0 {
		return nil, errors.New("core: empty point set")
	}
	err := forEachRank(p, func(rank int) error {
		if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
			return err
		}
		for blk := blocks[rank]; len(blk) > 0; {
			c := min(len(blk), DefaultChunk)
			if _, err := cgm.ResidentCall[ingestChunkArgs, int](mach, rank, fref("ingest/chunk"), ingestChunkArgs{Pts: blk[:c]}); err != nil {
				return err
			}
			blk = blk[c:]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stagedSource{dims: dims, total: total}, nil
}

// buildStaged runs the held construction over already-staged input,
// converting a machine abort (worker death, skew) into an error so a
// caller can fail fast and retry on a fresh machine.
func buildStaged(mach *cgm.Machine, dims, total int, be Backend) (t *Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: worker-fed build aborted: %v", r)
		}
	}()
	return BuildFromSource(mach, stagedSource{dims: dims, total: total}, be), nil
}

// BulkLoad streams src into the machine's workers and builds a tree from
// the staged input. Chunk i goes to rank i%p — the arbitrary initial
// distribution Construct step 1 allows; the sample sort normalizes it.
// Each rank has its own feeder goroutine with a window-deep channel
// (window <= 0 selects DefaultWindow), so a slow rank backpressures the
// reader while the others keep streaming. On a non-resident machine the
// stream is accumulated and built coordinator-fed instead.
func BulkLoad(mach *cgm.Machine, src ChunkSource, be Backend, window int) (*Tree, error) {
	if !mach.Resident() {
		var pts []geom.Point
		for {
			blk, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			pts = append(pts, blk...)
		}
		if len(pts) == 0 {
			return nil, errors.New("core: bulk load delivered no points")
		}
		return buildRecovered(mach, pts, be)
	}
	if window <= 0 {
		window = DefaultWindow
	}
	p := mach.P()
	feed := make([]chan []geom.Point, p)
	for rank := range feed {
		feed[rank] = make(chan []geom.Point, window)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := range p {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
				errs[rank] = err
			}
			// Keep draining after a failure so the reader never blocks on
			// a dead rank's window — the load fails fast, not deadlocks.
			for blk := range feed[rank] {
				if errs[rank] != nil {
					continue
				}
				if _, err := cgm.ResidentCall[ingestChunkArgs, int](mach, rank, fref("ingest/chunk"), ingestChunkArgs{Pts: blk}); err != nil {
					errs[rank] = err
				}
			}
		}()
	}
	dims, total := -1, 0
	var srcErr error
read:
	for i := 0; ; i++ {
		blk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			srcErr = err
			break
		}
		if len(blk) == 0 {
			continue
		}
		for _, pt := range blk {
			if dims == -1 {
				dims = pt.Dims()
			}
			if pt.Dims() != dims {
				srcErr = fmt.Errorf("core: point %d has %d dims, want %d", pt.ID, pt.Dims(), dims)
				break read
			}
		}
		total += len(blk)
		feed[i%p] <- blk
	}
	for _, ch := range feed {
		close(ch)
	}
	wg.Wait()
	if srcErr != nil {
		return nil, srcErr
	}
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("core: bulk ingest: %w", err)
	}
	if total == 0 {
		return nil, errors.New("core: bulk load delivered no points")
	}
	return buildStaged(mach, dims, total, be)
}

// buildRecovered is BuildBackend with machine aborts converted to errors
// (the non-resident fallbacks of the bulk-load entry points).
func buildRecovered(mach *cgm.Machine, pts []geom.Point, be Backend) (t *Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: build aborted: %v", r)
		}
	}()
	return BuildBackend(mach, pts, be), nil
}

// BulkLoadFile builds a tree from one pointsfile: the coordinator reads
// only the 17-byte header; every rank reads its own record slice.
func BulkLoadFile(mach *cgm.Machine, path string, be Backend) (*Tree, error) {
	n, dims, err := pointsfile.Info(path)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("core: %s holds no points", path)
	}
	if !mach.Resident() {
		pts, err := pointsfile.Read(path)
		if err != nil {
			return nil, err
		}
		return buildRecovered(mach, pts, be)
	}
	p := mach.P()
	err = forEachRank(p, func(rank int) error {
		if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
			return err
		}
		lo, hi := queryBlock(rank, n, p)
		rep, err := cgm.ResidentCall[ingestFileArgs, ingestReply](mach, rank, fref("ingest/file"), ingestFileArgs{Path: path, Lo: lo, Hi: hi})
		if err != nil {
			return err
		}
		if rep.N != hi-lo || int(rep.Dims) != dims {
			return fmt.Errorf("core: rank %d staged %d %d-dim points from %s, want %d %d-dim", rank, rep.N, rep.Dims, path, hi-lo, dims)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buildStaged(mach, dims, n, be)
}

// BulkLoadFiles builds a tree from one pointsfile per rank — the
// partitioned-input layout of a cluster whose workers each own a shard.
// The coordinator never opens the files: counts and dimensionalities
// come back in the ingest replies.
func BulkLoadFiles(mach *cgm.Machine, paths []string, be Backend) (*Tree, error) {
	p := mach.P()
	if len(paths) != p {
		return nil, fmt.Errorf("core: %d shard files for a %d-rank machine", len(paths), p)
	}
	if !mach.Resident() {
		var pts []geom.Point
		for _, path := range paths {
			shard, err := pointsfile.Read(path)
			if err != nil {
				return nil, err
			}
			pts = append(pts, shard...)
		}
		if len(pts) == 0 {
			return nil, errors.New("core: empty point set")
		}
		return buildRecovered(mach, pts, be)
	}
	counts := make([]int, p)
	dims := make([]int, p)
	err := forEachRank(p, func(rank int) error {
		if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
			return err
		}
		rep, err := cgm.ResidentCall[ingestFileArgs, ingestReply](mach, rank, fref("ingest/file"), ingestFileArgs{Path: paths[rank], Lo: 0, Hi: -1})
		if err != nil {
			return err
		}
		counts[rank], dims[rank] = rep.N, int(rep.Dims)
		return nil
	})
	if err != nil {
		return nil, err
	}
	d, total := 0, 0
	for rank := range p {
		total += counts[rank]
		if counts[rank] > 0 {
			if d == 0 {
				d = dims[rank]
			}
			if dims[rank] != d {
				return nil, fmt.Errorf("core: shard %s has %d-dim points, others have %d", paths[rank], dims[rank], d)
			}
		}
	}
	if total == 0 {
		return nil, errors.New("core: empty point set")
	}
	return buildStaged(mach, d, total, be)
}
