package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cgm"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pointsfile"
	"repro/internal/wire"
)

// This file is the worker-direct ingest path: the coordinator never
// holds (or forwards) the point set. Chunks stream straight to each
// rank's staging area — round-robined from a client ChunkSource with a
// bounded in-flight window, or read rank-locally from pointsfile slices
// — and the held construction then runs entirely worker-side, the
// coordinator contributing only the p² regular-sampling splitters and
// control frames.

const (
	// DefaultChunk is the streaming block size (points per ingest call).
	DefaultChunk = 4096
	// DefaultWindow is the per-rank bound on buffered chunks between the
	// reader and each rank's feeder — the open-loop flow-control window.
	// A slow rank backpressures the reader instead of growing the heap.
	DefaultWindow = 4
)

// ChunkSource produces the input stream of a bulk load, one block at a
// time; it returns io.EOF after the last block. Blocks are retained by
// the ingest pipeline until encoded, so producers must not reuse them.
type ChunkSource interface {
	Next() ([]geom.Point, error)
}

type sliceChunks struct {
	pts   []geom.Point
	chunk int
}

func (s *sliceChunks) Next() ([]geom.Point, error) {
	if len(s.pts) == 0 {
		return nil, io.EOF
	}
	c := min(len(s.pts), s.chunk)
	blk := s.pts[:c]
	s.pts = s.pts[c:]
	return blk, nil
}

// SliceChunks adapts an in-memory slice to a ChunkSource (chunk <= 0
// selects DefaultChunk).
func SliceChunks(pts []geom.Point, chunk int) ChunkSource {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &sliceChunks{pts: pts, chunk: chunk}
}

// forEachRank runs f concurrently for every rank and joins the errors.
// Resident calls to distinct ranks are independent (distinct sessions on
// a wire transport, distinct state stores on the loopback), so per-rank
// parallelism is safe; per rank the calls stay sequential.
func forEachRank(p int, f func(rank int) error) error {
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := range p {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = f(rank)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// StageBlocks stages one explicit block per rank into the workers and
// returns the held source describing them. The canonical split
// (CanonicalBlocks) makes the subsequent build metric-identical to a
// coordinator-fed BuildBackend of the concatenation.
func StageBlocks(mach *cgm.Machine, blocks [][]geom.Point) (PointSource, error) {
	p := mach.P()
	if len(blocks) != p {
		return nil, fmt.Errorf("core: staging %d blocks on a %d-rank machine", len(blocks), p)
	}
	dims, total := -1, 0
	for _, blk := range blocks {
		total += len(blk)
		for _, pt := range blk {
			if dims == -1 {
				dims = pt.Dims()
			}
			if pt.Dims() != dims {
				return nil, fmt.Errorf("core: point %d has %d dims, want %d", pt.ID, pt.Dims(), dims)
			}
		}
	}
	if total == 0 {
		return nil, errors.New("core: empty point set")
	}
	err := forEachRank(p, func(rank int) error {
		if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
			return err
		}
		for blk := blocks[rank]; len(blk) > 0; {
			c := min(len(blk), DefaultChunk)
			if _, err := cgm.ResidentCall[ingestChunkArgs, int](mach, rank, fref("ingest/chunk"), ingestChunkArgs{Pts: blk[:c]}); err != nil {
				return err
			}
			blk = blk[c:]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stagedSource{dims: dims, total: total}, nil
}

// buildStaged runs the held construction over already-staged input,
// converting a machine abort (worker death, skew) into an error so a
// caller can fail fast and retry on a fresh machine.
func buildStaged(mach *cgm.Machine, dims, total int, be Backend) (t *Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: worker-fed build aborted: %v", r)
		}
	}()
	return BuildFromSource(mach, stagedSource{dims: dims, total: total}, be), nil
}

// IngestConfig parametrises a streaming bulk load.
type IngestConfig struct {
	// Window is the per-rank bound on in-flight chunks (≤ 0 selects
	// DefaultWindow): the flow-control window of the parallel feeds, and
	// the reader→feeder channel depth either way.
	Window int
	// MaxShare, in (0, 1), caps the fraction of worker wall-time the
	// ingest may consume (cgm.ShareGovernor), so a bulk load time-shares
	// with concurrent serving instead of starving it. Outside that range
	// the load runs uncapped.
	MaxShare float64
	// Funnel forces the coordinator-funnel path — one synchronous
	// resident call per chunk over the session's control connections —
	// even when the machine supports rank-parallel feeds. It exists as
	// the measured baseline (rangebench -ingest) and as a fallback knob.
	Funnel bool
}

// BulkLoad streams src into the machine's workers and builds a tree from
// the staged input, with the default window and no QoS cap — see
// BulkLoadWith.
func BulkLoad(mach *cgm.Machine, src ChunkSource, be Backend, window int) (*Tree, error) {
	return BulkLoadWith(mach, src, be, IngestConfig{Window: window})
}

// BulkLoadWith streams src into the machine's workers and builds a tree
// from the staged input. Chunk i goes to rank i%p — the arbitrary
// initial distribution Construct step 1 allows; the sample sort
// normalizes it. Each rank has its own feeder goroutine with a
// window-deep channel, so a slow rank backpressures the reader while the
// others keep streaming.
//
// On a feed-capable machine (every resident transport in this repo) each
// feeder holds a DIRECT connection to its rank pushing chunks under an
// independent in-flight window — the coordinator's session connections
// carry only the ingest-begin control calls and the construction's p²
// splitters, so aggregate ingest bandwidth scales with p. A feed failure
// (worker death, step error) poisons the machine: the session aborts
// with the diagnostic rather than surviving half-staged. With cfg.Funnel
// the chunks instead go as one synchronous resident call each over the
// coordinator's connections. On a non-resident machine the stream is
// accumulated and built coordinator-fed.
func BulkLoadWith(mach *cgm.Machine, src ChunkSource, be Backend, cfg IngestConfig) (*Tree, error) {
	if !mach.Resident() {
		var pts []geom.Point
		for {
			blk, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			pts = append(pts, blk...)
		}
		if len(pts) == 0 {
			return nil, errors.New("core: bulk load delivered no points")
		}
		return buildRecovered(mach, pts, be)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	parallel := !cfg.Funnel && mach.Feeds()
	p := mach.P()
	feed := make([]chan []geom.Point, p)
	for rank := range feed {
		feed[rank] = make(chan []geom.Point, cfg.Window)
	}
	errs := make([]error, p)
	sent := make([]int, p)   // points the reader handed each rank
	staged := make([]int, p) // points each rank's feed acknowledged staging
	stageT0 := time.Now()
	var wg sync.WaitGroup
	for rank := range p {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if parallel {
				errs[rank], staged[rank] = feedRank(mach, rank, cfg, feed[rank], &sent[rank])
				return
			}
			errs[rank] = funnelRank(mach, rank, feed[rank], &sent[rank])
			staged[rank] = sent[rank]
		}()
	}
	dims, total := -1, 0
	var srcErr error
read:
	for i := 0; ; i++ {
		blk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			srcErr = err
			break
		}
		if len(blk) == 0 {
			continue
		}
		for _, pt := range blk {
			if dims == -1 {
				dims = pt.Dims()
			}
			if pt.Dims() != dims {
				srcErr = fmt.Errorf("core: point %d has %d dims, want %d", pt.ID, pt.Dims(), dims)
				break read
			}
		}
		total += len(blk)
		feed[i%p] <- blk
	}
	for _, ch := range feed {
		close(ch)
	}
	wg.Wait()
	// Staging wall-time (reader + feeds through the last ack), distinct
	// from the construct that follows — it is the phase the feed fabric
	// and the QoS governor act on, and what rangebench -ingest reports as
	// the ingest rate.
	if reg := mach.Obs(); reg != nil {
		reg.Counter("ingest_stage_wall_ns_total").Add(time.Since(stageT0).Nanoseconds())
	}
	if err := errors.Join(errs...); err != nil {
		err = fmt.Errorf("core: bulk ingest: %w", err)
		if parallel {
			// A broken feed leaves the rank half-staged with chunks of
			// unknown fate in flight: abort the session so every sibling
			// feeder, and any later use of the machine, sees the
			// diagnostic instead of building on the partial stage.
			mach.Poison(err)
		}
		return nil, err
	}
	if srcErr != nil {
		return nil, srcErr
	}
	for rank := range p {
		if staged[rank] != sent[rank] {
			err := fmt.Errorf("core: rank %d acknowledged %d staged points but the feed sent %d", rank, staged[rank], sent[rank])
			mach.Poison(err)
			return nil, err
		}
	}
	if total == 0 {
		return nil, errors.New("core: bulk load delivered no points")
	}
	return buildStaged(mach, dims, total, be)
}

// encodeChunk wire-encodes one ingest chunk into buf (appending), so a
// feeder can recycle one pooled buffer per in-flight slot instead of
// allocating per chunk.
func encodeChunk(buf []byte, blk []geom.Point) ([]byte, error) {
	return wire.Encode(buf, ingestChunkArgs{Pts: blk})
}

// feedRank drains one rank's channel into a direct worker feed: begin
// control call on the coordinator connection, then chunks pipelined
// under the feed's in-flight window with one pooled encode buffer per
// window slot, recycled as the rank acknowledges. It reports the rank's
// final staged count from the last acknowledgement. After any failure it
// keeps draining so the reader never blocks on a dead rank's window.
func feedRank(mach *cgm.Machine, rank int, cfg IngestConfig, ch <-chan []geom.Point, sent *int) (err error, staged int) {
	var sf cgm.StepFeed
	if _, err = cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err == nil {
		sf, err = mach.OpenFeed(rank, fref("ingest/chunk"), cgm.FeedOptions{Window: cfg.Window, MaxShare: cfg.MaxShare})
	}
	var ptsFed *obs.Counter
	if reg := mach.Obs(); reg != nil {
		ptsFed = reg.Counter(fmt.Sprintf(`ingest_feed_points_total{rank="%d"}`, rank))
	}
	// The window's encode buffers: acquiring one backpressures the feeder
	// to the feed's own in-flight limit, and each Send's release recycles
	// the (possibly grown) buffer for a later chunk.
	bufs := make(chan []byte, cfg.Window)
	for range cfg.Window {
		bufs <- wire.GetBuf()
	}
	for blk := range ch {
		if err != nil {
			continue // drain
		}
		enc, encErr := encodeChunk((<-bufs)[:0], blk)
		if encErr != nil {
			bufs <- enc
			err = encErr
			continue
		}
		n := len(blk)
		if err = sf.Send(enc, func() { bufs <- enc }); err != nil {
			continue
		}
		*sent += n
		if ptsFed != nil {
			ptsFed.Add(int64(n))
		}
	}
	if sf != nil {
		last, closeErr := sf.Close()
		if err == nil {
			err = closeErr
		}
		if err == nil && last != nil {
			// The chunk step replies with the rank's running staged
			// total; the last ack is the cross-check against what the
			// feeder sent.
			staged, err = exec.Unmarshal[int](last)
			if err != nil {
				err = fmt.Errorf("core: rank %d staged-count reply: %w", rank, err)
			}
		}
	}
	// A failed feed has released every slot, so this never blocks.
	for len(bufs) > 0 {
		wire.PutBuf(<-bufs)
	}
	return err, staged
}

// funnelRank drains one rank's channel as synchronous resident calls
// over the coordinator's session connection — the pre-feed baseline. One
// pooled encode buffer serves all chunks (the call returns before the
// next encode).
func funnelRank(mach *cgm.Machine, rank int, ch <-chan []geom.Point, sent *int) error {
	var err error
	if _, err = cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
		err = fmt.Errorf("core: rank %d ingest begin: %w", rank, err)
	}
	buf := wire.GetBuf()
	defer func() { wire.PutBuf(buf) }()
	// Keep draining after a failure so the reader never blocks on a dead
	// rank's window — the load fails fast, not deadlocks.
	for blk := range ch {
		if err != nil {
			continue
		}
		buf, err = encodeChunk(buf[:0], blk)
		if err != nil {
			continue
		}
		if _, err = cgm.ResidentCallRaw(mach, rank, fref("ingest/chunk"), buf); err == nil {
			*sent += len(blk)
		}
	}
	return err
}

// buildRecovered is BuildBackend with machine aborts converted to errors
// (the non-resident fallbacks of the bulk-load entry points).
func buildRecovered(mach *cgm.Machine, pts []geom.Point, be Backend) (t *Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: build aborted: %v", r)
		}
	}()
	return BuildBackend(mach, pts, be), nil
}

// BulkLoadFile builds a tree from one pointsfile: the coordinator reads
// only the 17-byte header; every rank reads its own record slice.
func BulkLoadFile(mach *cgm.Machine, path string, be Backend) (*Tree, error) {
	n, dims, err := pointsfile.Info(path)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("core: %s holds no points", path)
	}
	if !mach.Resident() {
		pts, err := pointsfile.Read(path)
		if err != nil {
			return nil, err
		}
		return buildRecovered(mach, pts, be)
	}
	p := mach.P()
	err = forEachRank(p, func(rank int) error {
		if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
			return err
		}
		lo, hi := queryBlock(rank, n, p)
		rep, err := cgm.ResidentCall[ingestFileArgs, ingestReply](mach, rank, fref("ingest/file"), ingestFileArgs{Path: path, Lo: lo, Hi: hi})
		if err != nil {
			return err
		}
		if rep.N != hi-lo || int(rep.Dims) != dims {
			return fmt.Errorf("core: rank %d staged %d %d-dim points from %s, want %d %d-dim", rank, rep.N, rep.Dims, path, hi-lo, dims)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buildStaged(mach, dims, n, be)
}

// BulkLoadFiles builds a tree from one pointsfile per rank — the
// partitioned-input layout of a cluster whose workers each own a shard.
// The coordinator never opens the files: counts and dimensionalities
// come back in the ingest replies.
func BulkLoadFiles(mach *cgm.Machine, paths []string, be Backend) (*Tree, error) {
	p := mach.P()
	if len(paths) != p {
		return nil, fmt.Errorf("core: %d shard files for a %d-rank machine", len(paths), p)
	}
	if !mach.Resident() {
		var pts []geom.Point
		for _, path := range paths {
			shard, err := pointsfile.Read(path)
			if err != nil {
				return nil, err
			}
			pts = append(pts, shard...)
		}
		if len(pts) == 0 {
			return nil, errors.New("core: empty point set")
		}
		return buildRecovered(mach, pts, be)
	}
	counts := make([]int, p)
	dims := make([]int, p)
	err := forEachRank(p, func(rank int) error {
		if _, err := cgm.ResidentCall[bool, bool](mach, rank, fref("ingest/begin"), false); err != nil {
			return err
		}
		rep, err := cgm.ResidentCall[ingestFileArgs, ingestReply](mach, rank, fref("ingest/file"), ingestFileArgs{Path: paths[rank], Lo: 0, Hi: -1})
		if err != nil {
			return err
		}
		counts[rank], dims[rank] = rep.N, int(rep.Dims)
		return nil
	})
	if err != nil {
		return nil, err
	}
	d, total := 0, 0
	for rank := range p {
		total += counts[rank]
		if counts[rank] > 0 {
			if d == 0 {
				d = dims[rank]
			}
			if dims[rank] != d {
				return nil, fmt.Errorf("core: shard %s has %d-dim points, others have %d", paths[rank], dims[rank], d)
			}
		}
	}
	if total == 0 {
		return nil, errors.New("core: empty point set")
	}
	return buildStaged(mach, d, total, be)
}
