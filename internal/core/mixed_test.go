package core

import (
	"testing"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/semigroup"
	"repro/internal/workload"
)

// TestMixedBatchMatchesModes drives all three modes through one machine
// run and checks every answer against the brute-force oracle.
func TestMixedBatchMatchesModes(t *testing.T) {
	n, d, p := 1<<10, 2, 4
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 7})
	mach := cgm.New(cgm.Config{P: p})
	tree := Build(mach, pts)
	h := PrepareAssociative(tree, semigroup.FloatSum(), workload.WeightOf)
	bf := brute.New(pts)

	boxes := workload.Boxes(workload.QuerySpec{M: 120, Dims: d, N: n, Selectivity: 0.02, Seed: 3})
	ops := make([]MixedOp, len(boxes))
	for i := range ops {
		ops[i] = MixedOp(i % 3)
	}

	mach.ResetMetrics()
	results := MixedBatch(tree, h, ops, boxes)
	if runs := mach.Metrics().Runs; runs != 1 {
		t.Fatalf("mixed batch took %d machine runs, want 1", runs)
	}

	for i, r := range results {
		switch ops[i] {
		case OpCount:
			if want := int64(bf.Count(boxes[i])); r.Count != want {
				t.Fatalf("query %d count = %d, want %d", i, r.Count, want)
			}
		case OpAggregate:
			want := brute.Aggregate(bf, semigroup.FloatSum(), workload.WeightOf, boxes[i])
			if diff := r.Agg - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("query %d agg = %v, want %v", i, r.Agg, want)
			}
		case OpReport:
			got := brute.IDs(r.Pts)
			want := brute.IDs(bf.Report(boxes[i]))
			if len(got) != len(want) {
				t.Fatalf("query %d report has %d points, want %d", i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("query %d report point %d = %d, want %d", i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestMixedBatchNoAggHandle covers the count/report-only path with a nil
// handle (the engine's configuration without PrepareAssociative).
func TestMixedBatchNoAggHandle(t *testing.T) {
	n := 512
	pts := workload.Points(workload.PointSpec{N: n, Dims: 2, Dist: workload.Clustered, Seed: 5})
	mach := cgm.New(cgm.Config{P: 4})
	tree := Build(mach, pts)
	bf := brute.New(pts)

	boxes := workload.Boxes(workload.QuerySpec{M: 40, Dims: 2, N: n, Selectivity: 0.05, Seed: 9})
	ops := make([]MixedOp, len(boxes))
	for i := range ops {
		if i%2 == 0 {
			ops[i] = OpCount
		} else {
			ops[i] = OpReport
		}
	}
	results := MixedBatch[struct{}](tree, nil, ops, boxes)
	for i, r := range results {
		if ops[i] == OpCount {
			if want := int64(bf.Count(boxes[i])); r.Count != want {
				t.Fatalf("query %d count = %d, want %d", i, r.Count, want)
			}
		} else if want := bf.Count(boxes[i]); len(r.Pts) != want {
			t.Fatalf("query %d reported %d points, want %d", i, len(r.Pts), want)
		}
	}
}
