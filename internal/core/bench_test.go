package core

import (
	"math/rand"
	"testing"

	"repro/internal/cgm"
	"repro/internal/geom"
)

func benchTree(b *testing.B, n, d, p int) (*Tree, []geom.Box) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, n, d)
	mach := cgm.New(cgm.Config{P: p})
	dt := Build(mach, pts)
	return dt, randomBoxes(rng, 512, n, d)
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(cgm.New(cgm.Config{P: 8}), pts)
	}
}

func BenchmarkCountBatch(b *testing.B) {
	dt, boxes := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.CountBatch(boxes)
	}
}

func BenchmarkReportBatch(b *testing.B) {
	dt, boxes := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.ReportBatch(boxes)
	}
}

func BenchmarkHatSearchOnly(b *testing.B) {
	dt, boxes := benchTree(b, 1<<14, 2, 16)
	ps := dt.procs[0]
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		q := Query{ID: 0, Box: boxes[i%len(boxes)]}
		ps.hatSearch(dt, q, func(hatSel) { sink++ }, func(subquery) { sink++ })
	}
	_ = sink
}

func BenchmarkSingleCount(b *testing.B) {
	dt, boxes := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.SingleCount(boxes[i%len(boxes)])
	}
}

func BenchmarkVerify(b *testing.B) {
	dt, _ := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dt.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
