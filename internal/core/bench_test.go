package core

import (
	"math/rand"
	"testing"

	"repro/internal/cgm"
	"repro/internal/geom"
)

func benchTree(b *testing.B, n, d, p int) (*Tree, []geom.Box) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, n, d)
	mach := cgm.New(cgm.Config{P: p})
	dt := Build(mach, pts)
	return dt, randomBoxes(rng, 512, n, d)
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 1<<12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(cgm.New(cgm.Config{P: 8}), pts)
	}
}

func BenchmarkCountBatch(b *testing.B) {
	dt, boxes := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.CountBatch(boxes)
	}
}

func BenchmarkReportBatch(b *testing.B) {
	dt, boxes := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.ReportBatch(boxes)
	}
}

// benchHatSink counts descent outcomes without other work.
type benchHatSink struct{ sels, subs int }

func (s *benchHatSink) hatSelection(Query, hatSel) { s.sels++ }
func (s *benchHatSink) forestSub(subquery)         { s.subs++ }

func BenchmarkHatSearchOnly(b *testing.B) {
	dt, boxes := benchTree(b, 1<<14, 2, 16)
	ps := dt.procs[0]
	var sink benchHatSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{ID: 0, Box: boxes[i%len(boxes)]}
		ps.hatSearch(dt, q, &sink)
	}
}

func BenchmarkSingleCount(b *testing.B) {
	dt, boxes := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.SingleCount(boxes[i%len(boxes)])
	}
}

func BenchmarkVerify(b *testing.B) {
	dt, _ := benchTree(b, 1<<12, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dt.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseCServe compares the element backends on batch serving at
// the acceptance scale (n = 2^17, d = 3): count and report workloads,
// phase C dominated (the copy cache is warmed before measuring). The
// layered backend must beat the plain range tree on both.
func BenchmarkPhaseCServe(b *testing.B) {
	const n, d, p, q = 1 << 17, 3, 8, 256
	for _, be := range []Backend{BackendLayered, BackendRangeTree} {
		rng := rand.New(rand.NewSource(1))
		pts := randomPoints(rng, n, d)
		dt := BuildBackend(cgm.New(cgm.Config{P: p}), pts, be)
		boxes := randomBoxes(rng, q, n/16, d) // moderate selectivity
		dt.CountBatch(boxes)                  // warm copy caches
		b.Run("count/"+be.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dt.CountBatch(boxes)
			}
		})
		b.Run("report/"+be.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dt.ReportBatch(boxes)
			}
		})
	}
}

// BenchmarkPhaseCCopyCache measures phase-B install time on a skewed
// workload, cold (cache invalidated every batch) versus warm (cache kept
// across batches) — the tax the cross-batch copy cache removes.
func BenchmarkPhaseCCopyCache(b *testing.B) {
	dt, boxes := skewedSetup(b, 1<<15, 3, 8, 256, BackendLayered)
	dt.CountBatch(boxes)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dt.InvalidateCopies()
			dt.CountBatch(boxes)
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dt.CountBatch(boxes)
		}
	})
}
