package core

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/cgm"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

// This file is the worker-resident half of the distributed range tree:
// the registered SPMD program ("core/forest") whose per-rank state holds
// the forest part — the element point sets, their sequential trees, the
// phase-B copies and caches, and the associative-function annotations.
//
// On a resident machine (cgm.Config.Resident) the construct and search
// pipelines keep their superstep structure on the coordinator — the hat
// layer, the sorts, the demand/balance planning, the result collectives —
// but every access to element state dispatches here: construction's
// routed points are collected into worker memory (ExchangeCollect),
// phase B ships copies worker-to-worker (ExchangeSteps), and phase C
// serves subqueries where the trees live (CallResident), so only query
// boxes and result blocks cross the coordinator's wire. On the loopback
// transport the identical registered steps run in-process against the
// machine's local state stores, which is what the cross-residency
// equivalence tests pin down.

// forestProgram names the registered program; forestVersion guards
// against coordinator/worker binary skew.
const (
	forestProgram = "core/forest"
	forestVersion = 1
)

// fref names one step of the forest program.
func fref(step string) exec.Ref {
	return exec.Ref{Program: forestProgram, Version: forestVersion, Step: step}
}

// residentPart is one rank's resident state: the element-holding half of
// a procState, living where the program's steps run.
type residentPart struct {
	backend    Backend
	elems      map[ElemID]*element
	copies     map[ElemID]*element
	copyCache  map[ElemID]*element
	cacheEpoch uint64
	aggs       map[string]*residentAggState
}

// lookup resolves an element from the owned part or the current copies.
func (part *residentPart) lookup(id ElemID) *element {
	if el, ok := part.elems[id]; ok {
		return el
	}
	if el, ok := part.copies[id]; ok {
		return el
	}
	panic(fmt.Sprintf("core: resident part asked to serve element %d it does not hold", id))
}

// agg resolves (creating if needed) the named aggregate's resident state.
func (part *residentPart) agg(name string) *residentAggState {
	ra, ok := part.aggs[name]
	if !ok {
		ra = &residentAggState{
			elemAggs: make(map[ElemID]any),
			cache:    make(map[ElemID]cachedAggAny),
		}
		part.aggs[name] = ra
	}
	return ra
}

// residentAggState is the resident counterpart of one AggHandle's
// per-rank annotations: owned-element annotations, the per-batch copy
// annotations, and the cross-batch annotation cache.
type residentAggState struct {
	elemAggs   map[ElemID]any // elemAgg[T], type-erased
	copyAggs   map[ElemID]any
	cache      map[ElemID]cachedAggAny
	cacheEpoch uint64
}

// cachedAggAny is one cross-batch annotation cache entry (type-erased
// mirror of cachedAgg[T]; an entry is only reused for the same built
// tree instance).
type cachedAggAny struct {
	tree elemTree
	agg  any
}

// Step argument and reply types. Everything crossing the seam is gob-
// encoded by the exec codec, so all fields are exported.

// beginArgs resets the part for a fresh construction.
type beginArgs struct {
	Backend Backend
}

// constructInstallArgs accompanies one construction phase's routed
// points: the replicated metadata of the elements this rank owns in the
// phase (the collect side builds exactly these).
type constructInstallArgs struct {
	Backend Backend
	Infos   []ElemInfo
}

// nextArgs asks for the S^(j+1) records of the owned dimension-j
// elements (Construct step 7, executed where the points live).
type nextArgs struct {
	Dim int8
}

// shipGroupArgs drives the GroupLevel phase-B emit: ship the whole owned
// part to each listed host (self already excluded by the coordinator).
type shipGroupArgs struct {
	Hosts []int32
}

// elemShip is one element's copy fan-out of the ElementLevel emit.
type elemShip struct {
	Elem  ElemID
	Hosts []int32
}

// shipElemsArgs drives the ElementLevel phase-B emit.
type shipElemsArgs struct {
	Ships []elemShip
}

// copyNote returns the emit side's shipped-copy volume (the
// LastCopiedPoints counter).
type copyNote struct {
	CopiedPts int
}

// installCopiesArgs parametrises the phase-B collect: the tree epoch and
// cache bound (mirroring installCopies) plus the aggregate the batch
// serves, if any ("" = none).
type installCopiesArgs struct {
	Epoch uint64
	Cap   int
	Agg   string
}

// installCopiesReply reports the install statistics phase B feeds into
// SearchStats.
type installCopiesReply struct {
	Held         int
	CacheHits    int
	InstallNanos int64
}

// serveArgs routes one rank's served subqueries to its resident part.
type serveArgs struct {
	Subs []subquery
}

// serveAggArgs is serveArgs for a named aggregate.
type serveAggArgs struct {
	Name string
	Subs []subquery
}

// aggPrepArgs asks the part to annotate its owned elements for a named
// aggregate (Algorithm AssociativeFunction step 1, resident side).
type aggPrepArgs struct {
	Name string
}

// aggRoot carries one element's root aggregate value back to the
// coordinator (the forest-root broadcast of step 1). It is also the
// fabric path's record type, so both paths exchange identical rows.
type aggRoot[T any] struct {
	Elem ElemID
	Val  T
}

// fetchArgs asks for the points of owned elements, aligned with Elems.
type fetchArgs struct {
	Elems []ElemID
}

// elemStat reports one owned element's size (space accounting).
type elemStat struct {
	ID    ElemID
	Nodes int
	Pts   int
}

func init() {
	exec.Register(&exec.Program{
		Name:    forestProgram,
		Version: forestVersion,
		New: func(rank, p int) any {
			return &residentPart{
				elems:     make(map[ElemID]*element),
				copies:    make(map[ElemID]*element),
				copyCache: make(map[ElemID]*element),
				aggs:      make(map[string]*residentAggState),
			}
		},
		Steps: map[string]exec.Step{
			"construct/begin":    exec.Pure(constructBeginStep),
			"construct/next":     exec.Pure(constructNextStep),
			"search/serveCount":  exec.Pure(serveCountStep),
			"search/serveReport": exec.Pure(serveReportStep),
			"search/serveAgg":    serveAggStep,
			"assoc/prepare":      aggPrepareStep,
			"points/fetch":       exec.Pure(fetchPointsStep),
			"stats/elems":        exec.Pure(elemStatsStep),
		},
		Emits: map[string]exec.Emit{
			"search/shipGroup": exec.Emitter(shipGroupStep),
			"search/shipElems": exec.Emitter(shipElemsStep),
		},
		Collects: map[string]exec.Collect{
			"construct/install": exec.Collector(constructInstallStep),
			"search/install":    exec.Collector(installCopiesStep),
		},
	})
}

// constructBeginStep resets the part for a fresh construction (a machine
// rebuilt on — e.g. persist.Load — must not merge two forests).
func constructBeginStep(part *residentPart, _ *exec.Ctx, args beginArgs) (bool, error) {
	part.backend = args.Backend
	part.elems = make(map[ElemID]*element)
	part.copies = make(map[ElemID]*element)
	part.copyCache = make(map[ElemID]*element)
	part.cacheEpoch = 0
	part.aggs = make(map[string]*residentAggState)
	return true, nil
}

// constructInstallStep is Construct step 4 on the resident side: the
// routed records of one phase arrive as the superstep's column, and the
// owned forest elements are built sequentially into worker memory. It
// returns the stub metadata (the hat's leaves) for the roots broadcast.
func constructInstallStep(part *residentPart, _ *exec.Ctx, args constructInstallArgs, incoming [][]epoint) ([]elemMeta, error) {
	part.backend = args.Backend
	byID := make(map[ElemID]ElemInfo, len(args.Infos))
	for _, info := range args.Infos {
		byID[info.ID] = info
	}
	_, metas, err := buildForestElements(part.backend,
		func(id ElemID) (ElemInfo, bool) { info, ok := byID[id]; return info, ok },
		incoming, func(el *element) { part.elems[el.info.ID] = el })
	return metas, err
}

// constructNextStep is Construct step 7 on the resident side: every owned
// dimension-j element walks its hat-internal ancestors and emits one
// S^(j+1) record per (ancestor, point) — computed where the points live,
// returned to the coordinator whose next phase sorts them.
func constructNextStep(part *residentPart, _ *exec.Ctx, args nextArgs) ([]srec, error) {
	var ids []ElemID
	for id, el := range part.elems {
		if el.info.Dim == args.Dim {
			ids = append(ids, id)
		}
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	var next []srec
	for _, id := range ids {
		next = nextDimRecords(part.elems[id], next)
	}
	return next, nil
}

// shipGroupStep is the GroupLevel phase-B emit: the owner ships its whole
// part to every host of one of its copy slots (Search step 3), straight
// from worker memory into the fabric.
func shipGroupStep(part *residentPart, c *exec.Ctx, args shipGroupArgs) ([][]shippedElem, []byte, error) {
	out := make([][]shippedElem, c.P)
	ids := sortedOwnedIDs(part.elems)
	copiedPts := 0
	for _, host := range args.Hosts {
		for _, id := range ids {
			el := part.elems[id]
			out[host] = append(out[host], shippedElem{Info: el.info, Pts: el.pts})
			copiedPts += len(el.pts)
		}
	}
	return out, exec.Marshal(copyNote{CopiedPts: copiedPts}), nil
}

// shipElemsStep is the ElementLevel phase-B emit: only demanded elements
// ship, each to the hosts of its slots.
func shipElemsStep(part *residentPart, c *exec.Ctx, args shipElemsArgs) ([][]shippedElem, []byte, error) {
	out := make([][]shippedElem, c.P)
	copiedPts := 0
	for _, ship := range args.Ships {
		el, ok := part.elems[ship.Elem]
		if !ok {
			return nil, nil, fmt.Errorf("core: resident emit asked to ship element %d this rank does not own", ship.Elem)
		}
		for _, host := range ship.Hosts {
			out[host] = append(out[host], shippedElem{Info: el.info, Pts: el.pts})
			copiedPts += len(el.pts)
		}
	}
	return out, exec.Marshal(copyNote{CopiedPts: copiedPts}), nil
}

// installCopiesStep is the phase-B collect: install the shipped copies
// into worker memory, mirroring Tree.installCopies — cache-valid elements
// are reused, everything else is built on the part's backend and cached;
// the epoch sweep and cap bound are the coordinator's. When the batch
// serves a named aggregate, each installed copy is annotated too
// (the resident counterpart of the modes' materialize hook).
func installCopiesStep(part *residentPart, _ *exec.Ctx, args installCopiesArgs, incoming [][]shippedElem) (installCopiesReply, error) {
	var rep installCopiesReply
	part.copies = make(map[ElemID]*element)
	var materialize func(*element)
	if args.Agg != "" {
		spec, err := lookupAggSpec(args.Agg)
		if err != nil {
			return rep, err
		}
		ra := part.agg(args.Agg)
		ra.copyAggs = make(map[ElemID]any)
		if ra.cacheEpoch != args.Epoch {
			clear(ra.cache)
			ra.cacheEpoch = args.Epoch
		}
		materialize = func(el *element) { spec.annotateCopy(ra, el, args.Cap) }
	}
	start := time.Now()
	rep.CacheHits = installShipped(part.backend, part.copies, part.copyCache, &part.cacheEpoch,
		args.Epoch, args.Cap, incoming, materialize)
	rep.InstallNanos = time.Since(start).Nanoseconds()
	rep.Held = len(part.copies)
	return rep, nil
}

// serveCountStep answers counting subqueries from the resident part
// (phase C where the trees live).
func serveCountStep(part *residentPart, _ *exec.Ctx, args serveArgs) ([]qcount, error) {
	var cv countVisitor
	pairs := make([]qcount, 0, len(args.Subs))
	for _, s := range args.Subs {
		el := part.lookup(s.Elem)
		pairs = append(pairs, qcount{Query: s.Query, Val: int64(elemCount(el, s.Box, &cv))})
	}
	return pairs, nil
}

// serveReportStep answers report subqueries from the resident part; only
// non-empty results return (mirroring the fabric hook).
func serveReportStep(part *residentPart, _ *exec.Ctx, args serveArgs) ([]rlocal, error) {
	var rv reportVisitor
	var out []rlocal
	for _, s := range args.Subs {
		el := part.lookup(s.Elem)
		if pts := elemReport(el, s.Box, &rv); len(pts) > 0 {
			out = append(out, rlocal{Query: s.Query, Pts: pts})
		}
	}
	return out, nil
}

// serveAggStep answers aggregate subqueries through the named aggregate's
// resident annotations. The reply is spec-encoded ([]qvalT[T]); the
// coordinator decodes it with the registration's type.
func serveAggStep(c *exec.Ctx, raw []byte) ([]byte, error) {
	args, err := exec.Unmarshal[serveAggArgs](raw)
	if err != nil {
		return nil, err
	}
	part := c.State.(*residentPart)
	spec, err := lookupAggSpec(args.Name)
	if err != nil {
		return nil, err
	}
	return spec.serve(part, part.agg(args.Name), args.Subs)
}

// aggPrepareStep annotates the owned elements for a named aggregate and
// returns the spec-encoded forest-root values ([]aggRoot[T]).
func aggPrepareStep(c *exec.Ctx, raw []byte) ([]byte, error) {
	args, err := exec.Unmarshal[aggPrepArgs](raw)
	if err != nil {
		return nil, err
	}
	part := c.State.(*residentPart)
	spec, err := lookupAggSpec(args.Name)
	if err != nil {
		return nil, err
	}
	return spec.prepare(part, part.agg(args.Name))
}

// fetchPointsStep returns the points of owned elements, aligned with the
// request (report-mode whole-element orders, AllPoints, Verify).
func fetchPointsStep(part *residentPart, _ *exec.Ctx, args fetchArgs) ([][]geom.Point, error) {
	out := make([][]geom.Point, len(args.Elems))
	for i, id := range args.Elems {
		el, ok := part.elems[id]
		if !ok {
			return nil, fmt.Errorf("core: resident fetch asked for element %d this rank does not own", id)
		}
		out[i] = el.pts
	}
	return out, nil
}

// elemStatsStep reports the owned elements' sizes in ID order (the
// Theorem 1 space accounting helpers).
func elemStatsStep(part *residentPart, _ *exec.Ctx, _ bool) ([]elemStat, error) {
	ids := sortedOwnedIDs(part.elems)
	out := make([]elemStat, 0, len(ids))
	for _, id := range ids {
		el := part.elems[id]
		out = append(out, elemStat{ID: id, Nodes: el.tree.Nodes(), Pts: len(el.pts)})
	}
	return out, nil
}

// ---------------------------------------------------------------- named
// aggregates
//
// The associative-function mode folds an arbitrary Go monoid — which
// cannot cross a process boundary. Resident execution therefore works on
// REGISTERED aggregates: RegisterAggregate binds a name to a (monoid,
// value function) pair in every binary that imports the registering
// package (internal/aggregates registers the standard ones; cmd binaries
// import it), and PrepareAssociativeNamed prepares by name, so the worker
// resolves the identical functions the coordinator planned with.

// aggSpec is the type-erased resident behavior of one registered
// aggregate.
type aggSpec interface {
	prepare(part *residentPart, ra *residentAggState) ([]byte, error)
	annotateCopy(ra *residentAggState, el *element, cap int)
	serve(part *residentPart, ra *residentAggState, subs []subquery) ([]byte, error)
}

// aggImpl implements aggSpec for one monoid instantiation.
type aggImpl[T any] struct {
	m   semigroup.Monoid[T]
	val func(geom.Point) T
}

func (a aggImpl[T]) prepare(part *residentPart, ra *residentAggState) ([]byte, error) {
	ra.elemAggs = make(map[ElemID]any)
	var roots []aggRoot[T]
	for _, id := range sortedOwnedIDs(part.elems) {
		el := part.elems[id]
		ra.elemAggs[id] = newElemAgg(el, a.m, a.val)
		acc := a.m.Identity
		for _, pt := range el.pts {
			acc = a.m.Combine(acc, a.val(pt))
		}
		roots = append(roots, aggRoot[T]{Elem: id, Val: acc})
	}
	return exec.Marshal(roots), nil
}

func (a aggImpl[T]) annotateCopy(ra *residentAggState, el *element, cap int) {
	if c, ok := ra.cache[el.info.ID]; ok && c.tree == el.tree {
		ra.copyAggs[el.info.ID] = c.agg
		return
	}
	ag := newElemAgg(el, a.m, a.val)
	cacheInsert(ra.cache, el.info.ID, cachedAggAny{tree: el.tree, agg: ag}, cap)
	ra.copyAggs[el.info.ID] = ag
}

func (a aggImpl[T]) serve(part *residentPart, ra *residentAggState, subs []subquery) ([]byte, error) {
	pairs := make([]qvalT[T], 0, len(subs))
	for _, s := range subs {
		ag, ok := ra.elemAggs[s.Elem]
		if !ok {
			ag, ok = ra.copyAggs[s.Elem]
		}
		if !ok {
			return nil, fmt.Errorf("core: element %d served without a resident annotation (aggregate not prepared?)", s.Elem)
		}
		pairs = append(pairs, qvalT[T]{Query: s.Query, Val: ag.(elemAgg[T]).Query(s.Box)})
	}
	return exec.Marshal(pairs), nil
}

// aggRegistration is the coordinator-side typed half of a registered
// aggregate.
type aggRegistration[T any] struct {
	m   semigroup.Monoid[T]
	val func(geom.Point) T
}

var (
	aggRegMu sync.RWMutex
	aggSpecs = make(map[string]aggSpec)
	aggTyped = make(map[string]any)
)

// RegisterAggregate binds a name to a monoid and per-point value function
// for resident execution. Register the same name in every binary of the
// cluster (coordinator and workers) — package init functions are the
// natural place. Registering a name twice panics.
func RegisterAggregate[T any](name string, m semigroup.Monoid[T], val func(geom.Point) T) {
	aggRegMu.Lock()
	defer aggRegMu.Unlock()
	if _, dup := aggSpecs[name]; dup {
		panic(fmt.Sprintf("core: aggregate %q registered twice", name))
	}
	aggSpecs[name] = aggImpl[T]{m: m, val: val}
	aggTyped[name] = aggRegistration[T]{m: m, val: val}
}

// lookupAggSpec resolves the type-erased resident behavior.
func lookupAggSpec(name string) (aggSpec, error) {
	aggRegMu.RLock()
	defer aggRegMu.RUnlock()
	spec, ok := aggSpecs[name]
	if !ok {
		return nil, fmt.Errorf("core: aggregate %q not registered (is the registering package imported by this binary?)", name)
	}
	return spec, nil
}

// lookupAggregate resolves the typed coordinator-side registration.
func lookupAggregate[T any](name string) (aggRegistration[T], error) {
	aggRegMu.RLock()
	defer aggRegMu.RUnlock()
	reg, ok := aggTyped[name]
	if !ok {
		return aggRegistration[T]{}, fmt.Errorf("core: aggregate %q not registered", name)
	}
	typed, ok := reg.(aggRegistration[T])
	if !ok {
		return aggRegistration[T]{}, fmt.Errorf("core: aggregate %q is registered with a different value type", name)
	}
	return typed, nil
}

// residentElemPoints fetches the points of the given elements from their
// resident rank (callers outside machine runs; one call per rank).
func (t *Tree) residentElemPoints(rank int, ids []ElemID) ([][]geom.Point, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	return cgm.ResidentCall[fetchArgs, [][]geom.Point](t.mach, rank, fref("points/fetch"), fetchArgs{Elems: ids})
}
