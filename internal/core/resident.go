package core

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/pointsfile"
	"repro/internal/psort"
	"repro/internal/segtree"
	"repro/internal/semigroup"
	"repro/internal/wire"
)

// This file is the worker-resident half of the distributed range tree:
// the registered SPMD program ("core/forest") whose per-rank state holds
// the forest part — the element point sets, their sequential trees, the
// phase-B copies and caches, and the associative-function annotations.
//
// On a resident machine (cgm.Config.Resident) the construct and search
// pipelines keep their superstep structure on the coordinator — the hat
// layer, the sorts, the demand/balance planning, the result collectives —
// but every access to element state dispatches here: construction's
// routed points are collected into worker memory (ExchangeCollect),
// phase B ships copies worker-to-worker (ExchangeSteps), and phase C
// serves subqueries where the trees live (CallResident), so only query
// boxes and result blocks cross the coordinator's wire. On the loopback
// transport the identical registered steps run in-process against the
// machine's local state stores, which is what the cross-residency
// equivalence tests pin down.

// forestProgram names the registered program; forestVersion guards
// against coordinator/worker binary skew.
const (
	forestProgram = "core/forest"
	forestVersion = 2 // 2: ingest staging, held construct, fused route-serve
)

// fref names one step of the forest program.
func fref(step string) exec.Ref {
	return exec.Ref{Program: forestProgram, Version: forestVersion, Step: step}
}

// residentPart is one rank's resident state: the element-holding half of
// a procState, living where the program's steps run.
type residentPart struct {
	backend    Backend
	elems      map[ElemID]*element
	copies     map[ElemID]*element
	copyCache  map[ElemID]*element
	cacheEpoch uint64
	aggs       map[string]*residentAggState

	// staged is the rank's ingested-but-not-yet-built input block (the
	// ingest steps append to it; construct/seed consumes it). recs is the
	// working record set of a held construction — the rank-local S^(j)
	// rows that the worker-side sample sort and routing steps transform in
	// place of the coordinator's slices.
	staged []geom.Point
	recs   []srec
}

// lookup resolves an element from the owned part or the current copies.
func (part *residentPart) lookup(id ElemID) *element {
	if el, ok := part.elems[id]; ok {
		return el
	}
	if el, ok := part.copies[id]; ok {
		return el
	}
	panic(fmt.Sprintf("core: resident part asked to serve element %d it does not hold", id))
}

// agg resolves (creating if needed) the named aggregate's resident state.
func (part *residentPart) agg(name string) *residentAggState {
	ra, ok := part.aggs[name]
	if !ok {
		ra = &residentAggState{
			elemAggs: make(map[ElemID]any),
			cache:    make(map[ElemID]cachedAggAny),
		}
		part.aggs[name] = ra
	}
	return ra
}

// residentAggState is the resident counterpart of one AggHandle's
// per-rank annotations: owned-element annotations, the per-batch copy
// annotations, and the cross-batch annotation cache.
type residentAggState struct {
	elemAggs   map[ElemID]any // elemAgg[T], type-erased
	copyAggs   map[ElemID]any
	cache      map[ElemID]cachedAggAny
	cacheEpoch uint64
}

// cachedAggAny is one cross-batch annotation cache entry (type-erased
// mirror of cachedAgg[T]; an entry is only reused for the same built
// tree instance).
type cachedAggAny struct {
	tree elemTree
	agg  any
}

// Step argument and reply types. Everything crossing the seam is gob-
// encoded by the exec codec, so all fields are exported.

// beginArgs resets the part for a fresh construction.
type beginArgs struct {
	Backend Backend
}

// constructInstallArgs accompanies one construction phase's routed
// points: the replicated metadata of the elements this rank owns in the
// phase (the collect side builds exactly these).
type constructInstallArgs struct {
	Backend Backend
	Infos   []ElemInfo
}

// nextArgs asks for the S^(j+1) records of the owned dimension-j
// elements (Construct step 7, executed where the points live).
type nextArgs struct {
	Dim int8
}

// shipGroupArgs drives the GroupLevel phase-B emit: ship the whole owned
// part to each listed host (self already excluded by the coordinator).
type shipGroupArgs struct {
	Hosts []int32
}

// elemShip is one element's copy fan-out of the ElementLevel emit.
type elemShip struct {
	Elem  ElemID
	Hosts []int32
}

// shipElemsArgs drives the ElementLevel phase-B emit.
type shipElemsArgs struct {
	Ships []elemShip
}

// copyNote returns the emit side's shipped-copy volume (the
// LastCopiedPoints counter).
type copyNote struct {
	CopiedPts int
}

// installCopiesArgs parametrises the phase-B collect: the tree epoch and
// cache bound (mirroring installCopies) plus the aggregate the batch
// serves, if any ("" = none).
type installCopiesArgs struct {
	Epoch uint64
	Cap   int
	Agg   string
}

// installCopiesReply reports the install statistics phase B feeds into
// SearchStats.
type installCopiesReply struct {
	Held         int
	CacheHits    int
	InstallNanos int64
}

// serveArgs routes one rank's served subqueries to its resident part.
type serveArgs struct {
	Subs []subquery
}

// serveAggArgs is serveArgs for a named aggregate.
type serveAggArgs struct {
	Name string
	Subs []subquery
}

// aggPrepArgs asks the part to annotate its owned elements for a named
// aggregate (Algorithm AssociativeFunction step 1, resident side).
type aggPrepArgs struct {
	Name string
}

// aggRoot carries one element's root aggregate value back to the
// coordinator (the forest-root broadcast of step 1). It is also the
// fabric path's record type, so both paths exchange identical rows.
type aggRoot[T any] struct {
	Elem ElemID
	Val  T
}

// fetchArgs asks for the points of owned elements, aligned with Elems.
type fetchArgs struct {
	Elems []ElemID
}

// elemStat reports one owned element's size (space accounting).
type elemStat struct {
	ID    ElemID
	Nodes int
	Pts   int
}

// ingestChunkArgs delivers one streamed block of points to a rank's
// staging area (BulkLoad's round-robin chunks).
type ingestChunkArgs struct {
	Pts []geom.Point
}

// ingestFileArgs asks the rank to read records [Lo, Hi) of a pointsfile
// straight into its staging area (Hi < 0 means through end of file) —
// the local-file-slice ingest path, no payload on the coordinator wire.
type ingestFileArgs struct {
	Path   string
	Lo, Hi int
}

// ingestReply reports what a file ingest staged, so the coordinator can
// total n and check dims without reading the files itself.
type ingestReply struct {
	N    int
	Dims int8
}

// seedArgs turns the staged points into the held construction's S^(1)
// records; Dims is the build's declared dimensionality to validate
// against.
type seedArgs struct {
	Dims int8
}

// dimArgs names the dimension a held sort/merge step works in.
type dimArgs struct {
	Dim int8
}

// sortLocalReply returns the rank's p regular samples (full records —
// the splitters the coordinator derives are the only point payload it
// ever handles) plus the local record count.
type sortLocalReply struct {
	Samples []srec
	Len     int
}

// wsortPartArgs drives the held sample sort's route emit: partition the
// locally sorted records by the broadcast splitters.
type wsortPartArgs struct {
	Dim       int8
	Splitters []srec
}

// lenReply reports a step's resulting record count.
type lenReply struct {
	Len int
}

// wsortBalanceArgs drives the held rebalance emit: cut the merged run at
// the global block boundaries.
type wsortBalanceArgs struct {
	Offset, Total int
}

// balanceReply reports the balanced record count plus the rank's key
// runs, from which every rank derives the phase's trees.
type balanceReply struct {
	Len  int
	Runs []runSum
}

// routeHeldArgs drives the held construction's route emit (Construct
// step 3 computed worker-side): the replicated tree summaries plus this
// rank's global record offset.
type routeHeldArgs struct {
	Trees  []treeSum
	Grain  int
	Offset int
}

// mixedServeArgs parametrises the fused route-and-serve collect of a
// mixed batch: the per-query op table and the prepared aggregate, if any.
type mixedServeArgs struct {
	Agg string
	Ops []MixedOp
}

// mixedServeReply carries a mixed batch's three result kinds back in one
// reply; Aggs is the spec-encoded []qvalT[T] (empty when the batch routed
// no aggregate subqueries here).
type mixedServeReply struct {
	Counts []qcount
	Aggs   []byte
	Locals []rlocal
}

func init() {
	exec.Register(&exec.Program{
		Name:    forestProgram,
		Version: forestVersion,
		New: func(rank, p int) any {
			return &residentPart{
				elems:     make(map[ElemID]*element),
				copies:    make(map[ElemID]*element),
				copyCache: make(map[ElemID]*element),
				aggs:      make(map[string]*residentAggState),
			}
		},
		Steps: map[string]exec.Step{
			"construct/begin":     exec.Pure(constructBeginStep),
			"construct/next":      exec.Pure(constructNextStep),
			"construct/seed":      exec.Pure(constructSeedStep),
			"construct/sortLocal": exec.Pure(sortLocalStep),
			"construct/nextHeld":  exec.Pure(constructNextHeldStep),
			"ingest/begin":        exec.Pure(ingestBeginStep),
			"ingest/chunk":        exec.Pure(ingestChunkStep),
			"ingest/file":         exec.Pure(ingestFileStep),
			"search/serveCount":   exec.Pure(serveCountStep),
			"search/serveReport":  exec.Pure(serveReportStep),
			"search/serveAgg":     serveAggStep,
			"assoc/prepare":       aggPrepareStep,
			"points/fetch":        exec.Pure(fetchPointsStep),
			"stats/elems":         exec.Pure(elemStatsStep),
		},
		Emits: map[string]exec.Emit{
			"construct/wsortPart":  exec.Emitter(wsortPartStep),
			"construct/wsortSplit": exec.Emitter(wsortSplitStep),
			"construct/routeHeld":  exec.Emitter(routeHeldStep),
			"search/shipGroup":     exec.Emitter(shipGroupStep),
			"search/shipElems":     exec.Emitter(shipElemsStep),
		},
		Collects: map[string]exec.Collect{
			"construct/install":     exec.Collector(constructInstallStep),
			"construct/wsortMerge":  exec.Collector(wsortMergeStep),
			"construct/wsortGather": exec.Collector(wsortGatherStep),
			"search/install":        exec.Collector(installCopiesStep),
			"search/routeCount":     exec.Collector(routeCountStep),
			"search/routeReport":    exec.Collector(routeReportStep),
			"search/routeAgg":       routeAggStep,
			"search/routeMixed":     routeMixedStep,
		},
	})
}

// constructBeginStep resets the part for a fresh construction (a machine
// rebuilt on — e.g. persist.Load — must not merge two forests). Staged
// ingest blocks and held records survive the reset: they are this build's
// input.
func constructBeginStep(part *residentPart, _ *exec.Ctx, args beginArgs) (bool, error) {
	part.backend = args.Backend
	part.elems = make(map[ElemID]*element)
	part.copies = make(map[ElemID]*element)
	part.copyCache = make(map[ElemID]*element)
	part.cacheEpoch = 0
	part.aggs = make(map[string]*residentAggState)
	return true, nil
}

// ingestBeginStep opens a fresh staging area (aborting any half-staged
// prior load so a failed BulkLoad can be retried on the same cluster).
func ingestBeginStep(part *residentPart, _ *exec.Ctx, _ bool) (bool, error) {
	part.staged = nil
	part.recs = nil
	return true, nil
}

// ingestChunkStep appends one streamed block to the staging area. The
// decoded points are freshly allocated by the wire codec (or by the
// loopback's encode/decode round trip), so retaining them is safe.
func ingestChunkStep(part *residentPart, _ *exec.Ctx, args ingestChunkArgs) (int, error) {
	part.staged = append(part.staged, args.Pts...)
	return len(part.staged), nil
}

// ingestFileStep reads a pointsfile slice straight into the staging area:
// the rank-local file ingest path, where point payloads never touch the
// coordinator at all.
func ingestFileStep(part *residentPart, _ *exec.Ctx, args ingestFileArgs) (ingestReply, error) {
	pts, dims, err := pointsfile.ReadSlice(args.Path, args.Lo, args.Hi)
	if err != nil {
		return ingestReply{}, err
	}
	part.staged = append(part.staged, pts...)
	return ingestReply{N: len(pts), Dims: int8(dims)}, nil
}

// constructSeedStep is Construct step 1 on the resident side: the staged
// points become the rank's S^(1) records (all under the hat root). It
// consumes the staging area and returns the seeded count, which the
// coordinator cross-checks against the declared n.
func constructSeedStep(part *residentPart, _ *exec.Ctx, args seedArgs) (int, error) {
	recs := make([]srec, 0, len(part.staged))
	for _, pt := range part.staged {
		if pt.Dims() != int(args.Dims) {
			return 0, fmt.Errorf("core: staged point %d has %d dims, build expects %d", pt.ID, pt.Dims(), args.Dims)
		}
		recs = append(recs, srec{Pt: pt, Key: segtree.RootPathKey})
	}
	part.recs = recs
	part.staged = nil
	return len(recs), nil
}

// sortLocalStep is the held sample sort's local phase: sort the rank's
// records and return the p regular samples — the only point-bearing rows
// the coordinator handles during a held construction.
func sortLocalStep(part *residentPart, c *exec.Ctx, args dimArgs) (sortLocalReply, error) {
	less := srecLess(int(args.Dim))
	psort.SortLocal(part.recs, less)
	return sortLocalReply{Samples: psort.Samples(part.recs, c.P), Len: len(part.recs)}, nil
}

// wsortPartStep is the held sample sort's route emit: partition the
// locally sorted records by the broadcast splitters (views into recs; the
// merge collect of the same superstep replaces recs only after reading).
func wsortPartStep(part *residentPart, c *exec.Ctx, args wsortPartArgs) ([][]srec, []byte, error) {
	return psort.Partition(part.recs, args.Splitters, c.P, srecLess(int(args.Dim))), nil, nil
}

// wsortMergeStep is the held sample sort's merge collect: the routed runs
// arrive sorted per source and merge into the rank's new record set.
func wsortMergeStep(part *residentPart, _ *exec.Ctx, args dimArgs, in [][]srec) (lenReply, error) {
	part.recs = psort.MergeRuns(in, srecLess(int(args.Dim)))
	return lenReply{Len: len(part.recs)}, nil
}

// wsortSplitStep is the held rebalance emit: cut the merged run at the
// global block boundaries (again views; the gather collect copies).
func wsortSplitStep(part *residentPart, c *exec.Ctx, args wsortBalanceArgs) ([][]srec, []byte, error) {
	return comm.BlockPartition(part.recs, args.Offset, args.Total, c.P), nil, nil
}

// wsortGatherStep is the held rebalance collect: concatenating the
// sources in rank order preserves global order. It also computes the key
// runs, from which every rank derives the phase's trees — so the runs
// all-gather exchanges the same rows as the coordinator-fed path.
func wsortGatherStep(part *residentPart, _ *exec.Ctx, _ bool, in [][]srec) (balanceReply, error) {
	total := 0
	for _, src := range in {
		total += len(src)
	}
	flat := make([]srec, 0, total)
	for _, src := range in {
		flat = append(flat, src...)
	}
	part.recs = flat
	return balanceReply{Len: len(flat), Runs: keyRuns(flat)}, nil
}

// routeHeldStep is Construct step 3's emit on the resident side: bucket
// the rank's balanced records to their elements' owners. The record set
// is consumed — the install collect of the same superstep builds the
// phase's owned elements.
func routeHeldStep(part *residentPart, c *exec.Ctx, args routeHeldArgs) ([][]epoint, []byte, error) {
	out, err := routeRecords(part.recs, args.Trees, args.Grain, args.Offset, c.P)
	if err != nil {
		return nil, nil, err
	}
	part.recs = nil
	return out, nil, nil
}

// constructNextHeldStep is constructNextStep for a held construction: the
// S^(j+1) records stay in the rank's record set instead of returning to
// the coordinator; only the count crosses the seam.
func constructNextHeldStep(part *residentPart, _ *exec.Ctx, args nextArgs) (int, error) {
	part.recs = nextRecords(part, args.Dim)
	return len(part.recs), nil
}

// constructInstallStep is Construct step 4 on the resident side: the
// routed records of one phase arrive as the superstep's column, and the
// owned forest elements are built sequentially into worker memory. It
// returns the stub metadata (the hat's leaves) for the roots broadcast.
func constructInstallStep(part *residentPart, _ *exec.Ctx, args constructInstallArgs, incoming [][]epoint) ([]elemMeta, error) {
	part.backend = args.Backend
	byID := make(map[ElemID]ElemInfo, len(args.Infos))
	for _, info := range args.Infos {
		byID[info.ID] = info
	}
	_, metas, err := buildForestElements(part.backend,
		func(id ElemID) (ElemInfo, bool) { info, ok := byID[id]; return info, ok },
		incoming, func(el *element) { part.elems[el.info.ID] = el })
	return metas, err
}

// nextRecords is Construct step 7's resident computation: every owned
// dimension-j element walks its hat-internal ancestors and emits one
// S^(j+1) record per (ancestor, point) — computed where the points live.
func nextRecords(part *residentPart, dim int8) []srec {
	var ids []ElemID
	for id, el := range part.elems {
		if el.info.Dim == dim {
			ids = append(ids, id)
		}
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	var next []srec
	for _, id := range ids {
		next = nextDimRecords(part.elems[id], next)
	}
	return next
}

// constructNextStep returns the S^(j+1) records to the coordinator, whose
// next phase sorts them (the coordinator-fed construction).
func constructNextStep(part *residentPart, _ *exec.Ctx, args nextArgs) ([]srec, error) {
	return nextRecords(part, args.Dim), nil
}

// shipGroupStep is the GroupLevel phase-B emit: the owner ships its whole
// part to every host of one of its copy slots (Search step 3), straight
// from worker memory into the fabric.
func shipGroupStep(part *residentPart, c *exec.Ctx, args shipGroupArgs) ([][]shippedElem, []byte, error) {
	out := make([][]shippedElem, c.P)
	ids := sortedOwnedIDs(part.elems)
	copiedPts := 0
	for _, host := range args.Hosts {
		for _, id := range ids {
			el := part.elems[id]
			out[host] = append(out[host], shippedElem{Info: el.info, Pts: el.pts})
			copiedPts += len(el.pts)
		}
	}
	return out, exec.Marshal(copyNote{CopiedPts: copiedPts}), nil
}

// shipElemsStep is the ElementLevel phase-B emit: only demanded elements
// ship, each to the hosts of its slots.
func shipElemsStep(part *residentPart, c *exec.Ctx, args shipElemsArgs) ([][]shippedElem, []byte, error) {
	out := make([][]shippedElem, c.P)
	copiedPts := 0
	for _, ship := range args.Ships {
		el, ok := part.elems[ship.Elem]
		if !ok {
			return nil, nil, fmt.Errorf("core: resident emit asked to ship element %d this rank does not own", ship.Elem)
		}
		for _, host := range ship.Hosts {
			out[host] = append(out[host], shippedElem{Info: el.info, Pts: el.pts})
			copiedPts += len(el.pts)
		}
	}
	return out, exec.Marshal(copyNote{CopiedPts: copiedPts}), nil
}

// installCopiesStep is the phase-B collect: install the shipped copies
// into worker memory, mirroring Tree.installCopies — cache-valid elements
// are reused, everything else is built on the part's backend and cached;
// the epoch sweep and cap bound are the coordinator's. When the batch
// serves a named aggregate, each installed copy is annotated too
// (the resident counterpart of the modes' materialize hook).
func installCopiesStep(part *residentPart, _ *exec.Ctx, args installCopiesArgs, incoming [][]shippedElem) (installCopiesReply, error) {
	var rep installCopiesReply
	part.copies = make(map[ElemID]*element)
	var materialize func(*element)
	if args.Agg != "" {
		spec, err := lookupAggSpec(args.Agg)
		if err != nil {
			return rep, err
		}
		ra := part.agg(args.Agg)
		ra.copyAggs = make(map[ElemID]any)
		if ra.cacheEpoch != args.Epoch {
			clear(ra.cache)
			ra.cacheEpoch = args.Epoch
		}
		materialize = func(el *element) { spec.annotateCopy(ra, el, args.Cap) }
	}
	start := time.Now()
	rep.CacheHits = installShipped(part.backend, part.copies, part.copyCache, &part.cacheEpoch,
		args.Epoch, args.Cap, incoming, materialize)
	rep.InstallNanos = time.Since(start).Nanoseconds()
	rep.Held = len(part.copies)
	return rep, nil
}

// servedCounts answers counting subqueries from the resident part (phase
// C where the trees live).
func servedCounts(part *residentPart, subs []subquery) []qcount {
	var cv countVisitor
	pairs := make([]qcount, 0, len(subs))
	for _, s := range subs {
		el := part.lookup(s.Elem)
		pairs = append(pairs, qcount{Query: s.Query, Val: int64(elemCount(el, s.Box, &cv))})
	}
	return pairs
}

// servedReports answers report subqueries from the resident part; only
// non-empty results return (mirroring the fabric hook).
func servedReports(part *residentPart, subs []subquery) []rlocal {
	var rv reportVisitor
	var out []rlocal
	for _, s := range subs {
		el := part.lookup(s.Elem)
		if pts := elemReport(el, s.Box, &rv); len(pts) > 0 {
			out = append(out, rlocal{Query: s.Query, Pts: pts})
		}
	}
	return out
}

// serveCountStep is the out-of-run counting serve (single-query batches).
func serveCountStep(part *residentPart, _ *exec.Ctx, args serveArgs) ([]qcount, error) {
	return servedCounts(part, args.Subs), nil
}

// serveReportStep is the out-of-run report serve (single-query batches).
func serveReportStep(part *residentPart, _ *exec.Ctx, args serveArgs) ([]rlocal, error) {
	return servedReports(part, args.Subs), nil
}

// routeCountStep is the fused route-and-serve collect of a counting
// batch: the phase-B route exchange's column IS the rank's served
// subqueries, answered in the same superstep that delivered them.
func routeCountStep(part *residentPart, _ *exec.Ctx, _ bool, in [][]subquery) ([]qcount, error) {
	return servedCounts(part, gatherServed(in)), nil
}

// routeReportStep is routeCountStep for report batches.
func routeReportStep(part *residentPart, _ *exec.Ctx, _ bool, in [][]subquery) ([]rlocal, error) {
	return servedReports(part, gatherServed(in)), nil
}

// decodeSubColumn decodes a routed subquery column for the raw fused-
// serve collects, mirroring exec.Collector's loop (typed self payload
// included), and flattens it in rank order like gatherServed.
func decodeSubColumn(c *exec.Ctx, inbox *exec.Inbox) ([]subquery, int, error) {
	in := make([][]subquery, len(inbox.Blocks))
	recv := 0
	for j, b := range inbox.Blocks {
		if inbox.Self != nil && b == nil && j == c.Rank {
			part, ok := inbox.Self.([]subquery)
			if !ok {
				return nil, 0, fmt.Errorf("core: self payload is %T, serve wants []subquery", inbox.Self)
			}
			in[j] = part
			recv += len(part)
			continue
		}
		if b == nil {
			continue
		}
		part, err := wire.Decode[[]subquery](b)
		if err != nil {
			return nil, 0, fmt.Errorf("core: decoding routed subqueries from rank %d: %w", j, err)
		}
		in[j] = part
		recv += len(part)
	}
	return gatherServed(in), recv, nil
}

// routeAggStep is the fused route-and-serve collect of an aggregate
// batch. Raw because the reply is the spec-encoded []qvalT[T], whose type
// only the coordinator's AggHandle knows.
func routeAggStep(c *exec.Ctx, inbox *exec.Inbox, raw []byte) ([]byte, int, error) {
	args, err := exec.Unmarshal[aggPrepArgs](raw)
	if err != nil {
		return nil, 0, err
	}
	subs, recv, err := decodeSubColumn(c, inbox)
	if err != nil {
		return nil, 0, err
	}
	part := c.State.(*residentPart)
	spec, err := lookupAggSpec(args.Name)
	if err != nil {
		return nil, 0, err
	}
	rep, err := spec.serve(part, part.agg(args.Name), subs)
	if err != nil {
		return nil, 0, err
	}
	return rep, recv, nil
}

// routeMixedStep is the fused route-and-serve collect of a mixed batch:
// one superstep routes and answers all three op kinds.
func routeMixedStep(c *exec.Ctx, inbox *exec.Inbox, raw []byte) ([]byte, int, error) {
	args, err := exec.Unmarshal[mixedServeArgs](raw)
	if err != nil {
		return nil, 0, err
	}
	subs, recv, err := decodeSubColumn(c, inbox)
	if err != nil {
		return nil, 0, err
	}
	part := c.State.(*residentPart)
	var cnt, agg, repq []subquery
	for _, s := range subs {
		switch args.Ops[s.Query] {
		case OpCount:
			cnt = append(cnt, s)
		case OpAggregate:
			agg = append(agg, s)
		case OpReport:
			repq = append(repq, s)
		}
	}
	rep := mixedServeReply{Counts: servedCounts(part, cnt), Locals: servedReports(part, repq)}
	if len(agg) > 0 {
		if args.Agg == "" {
			return nil, 0, fmt.Errorf("core: aggregate subqueries served without a prepared aggregate")
		}
		spec, err := lookupAggSpec(args.Agg)
		if err != nil {
			return nil, 0, err
		}
		rep.Aggs, err = spec.serve(part, part.agg(args.Agg), agg)
		if err != nil {
			return nil, 0, err
		}
	}
	return exec.Marshal(rep), recv, nil
}

// serveAggStep answers aggregate subqueries through the named aggregate's
// resident annotations. The reply is spec-encoded ([]qvalT[T]); the
// coordinator decodes it with the registration's type.
func serveAggStep(c *exec.Ctx, raw []byte) ([]byte, error) {
	args, err := exec.Unmarshal[serveAggArgs](raw)
	if err != nil {
		return nil, err
	}
	part := c.State.(*residentPart)
	spec, err := lookupAggSpec(args.Name)
	if err != nil {
		return nil, err
	}
	return spec.serve(part, part.agg(args.Name), args.Subs)
}

// aggPrepareStep annotates the owned elements for a named aggregate and
// returns the spec-encoded forest-root values ([]aggRoot[T]).
func aggPrepareStep(c *exec.Ctx, raw []byte) ([]byte, error) {
	args, err := exec.Unmarshal[aggPrepArgs](raw)
	if err != nil {
		return nil, err
	}
	part := c.State.(*residentPart)
	spec, err := lookupAggSpec(args.Name)
	if err != nil {
		return nil, err
	}
	return spec.prepare(part, part.agg(args.Name))
}

// fetchPointsStep returns the points of owned elements, aligned with the
// request (report-mode whole-element orders, AllPoints, Verify).
func fetchPointsStep(part *residentPart, _ *exec.Ctx, args fetchArgs) ([][]geom.Point, error) {
	out := make([][]geom.Point, len(args.Elems))
	for i, id := range args.Elems {
		el, ok := part.elems[id]
		if !ok {
			return nil, fmt.Errorf("core: resident fetch asked for element %d this rank does not own", id)
		}
		out[i] = el.pts
	}
	return out, nil
}

// elemStatsStep reports the owned elements' sizes in ID order (the
// Theorem 1 space accounting helpers).
func elemStatsStep(part *residentPart, _ *exec.Ctx, _ bool) ([]elemStat, error) {
	ids := sortedOwnedIDs(part.elems)
	out := make([]elemStat, 0, len(ids))
	for _, id := range ids {
		el := part.elems[id]
		out = append(out, elemStat{ID: id, Nodes: el.tree.Nodes(), Pts: len(el.pts)})
	}
	return out, nil
}

// ---------------------------------------------------------------- named
// aggregates
//
// The associative-function mode folds an arbitrary Go monoid — which
// cannot cross a process boundary. Resident execution therefore works on
// REGISTERED aggregates: RegisterAggregate binds a name to a (monoid,
// value function) pair in every binary that imports the registering
// package (internal/aggregates registers the standard ones; cmd binaries
// import it), and PrepareAssociativeNamed prepares by name, so the worker
// resolves the identical functions the coordinator planned with.

// aggSpec is the type-erased resident behavior of one registered
// aggregate.
type aggSpec interface {
	prepare(part *residentPart, ra *residentAggState) ([]byte, error)
	annotateCopy(ra *residentAggState, el *element, cap int)
	serve(part *residentPart, ra *residentAggState, subs []subquery) ([]byte, error)
}

// aggImpl implements aggSpec for one monoid instantiation.
type aggImpl[T any] struct {
	m   semigroup.Monoid[T]
	val func(geom.Point) T
}

func (a aggImpl[T]) prepare(part *residentPart, ra *residentAggState) ([]byte, error) {
	ra.elemAggs = make(map[ElemID]any)
	var roots []aggRoot[T]
	for _, id := range sortedOwnedIDs(part.elems) {
		el := part.elems[id]
		ra.elemAggs[id] = newElemAgg(el, a.m, a.val)
		acc := a.m.Identity
		for _, pt := range el.pts {
			acc = a.m.Combine(acc, a.val(pt))
		}
		roots = append(roots, aggRoot[T]{Elem: id, Val: acc})
	}
	return exec.Marshal(roots), nil
}

func (a aggImpl[T]) annotateCopy(ra *residentAggState, el *element, cap int) {
	if c, ok := ra.cache[el.info.ID]; ok && c.tree == el.tree {
		ra.copyAggs[el.info.ID] = c.agg
		return
	}
	ag := newElemAgg(el, a.m, a.val)
	cacheInsert(ra.cache, el.info.ID, cachedAggAny{tree: el.tree, agg: ag}, cap)
	ra.copyAggs[el.info.ID] = ag
}

func (a aggImpl[T]) serve(part *residentPart, ra *residentAggState, subs []subquery) ([]byte, error) {
	pairs := make([]qvalT[T], 0, len(subs))
	for _, s := range subs {
		ag, ok := ra.elemAggs[s.Elem]
		if !ok {
			ag, ok = ra.copyAggs[s.Elem]
		}
		if !ok {
			return nil, fmt.Errorf("core: element %d served without a resident annotation (aggregate not prepared?)", s.Elem)
		}
		pairs = append(pairs, qvalT[T]{Query: s.Query, Val: ag.(elemAgg[T]).Query(s.Box)})
	}
	return exec.Marshal(pairs), nil
}

// aggRegistration is the coordinator-side typed half of a registered
// aggregate.
type aggRegistration[T any] struct {
	m   semigroup.Monoid[T]
	val func(geom.Point) T
}

var (
	aggRegMu sync.RWMutex
	aggSpecs = make(map[string]aggSpec)
	aggTyped = make(map[string]any)
)

// RegisterAggregate binds a name to a monoid and per-point value function
// for resident execution. Register the same name in every binary of the
// cluster (coordinator and workers) — package init functions are the
// natural place. Registering a name twice panics.
func RegisterAggregate[T any](name string, m semigroup.Monoid[T], val func(geom.Point) T) {
	aggRegMu.Lock()
	defer aggRegMu.Unlock()
	if _, dup := aggSpecs[name]; dup {
		panic(fmt.Sprintf("core: aggregate %q registered twice", name))
	}
	aggSpecs[name] = aggImpl[T]{m: m, val: val}
	aggTyped[name] = aggRegistration[T]{m: m, val: val}
}

// lookupAggSpec resolves the type-erased resident behavior.
func lookupAggSpec(name string) (aggSpec, error) {
	aggRegMu.RLock()
	defer aggRegMu.RUnlock()
	spec, ok := aggSpecs[name]
	if !ok {
		return nil, fmt.Errorf("core: aggregate %q not registered (is the registering package imported by this binary?)", name)
	}
	return spec, nil
}

// lookupAggregate resolves the typed coordinator-side registration.
func lookupAggregate[T any](name string) (aggRegistration[T], error) {
	aggRegMu.RLock()
	defer aggRegMu.RUnlock()
	reg, ok := aggTyped[name]
	if !ok {
		return aggRegistration[T]{}, fmt.Errorf("core: aggregate %q not registered", name)
	}
	typed, ok := reg.(aggRegistration[T])
	if !ok {
		return aggRegistration[T]{}, fmt.Errorf("core: aggregate %q is registered with a different value type", name)
	}
	return typed, nil
}

// residentElemPoints fetches the points of the given elements from their
// resident rank (callers outside machine runs; one call per rank).
func (t *Tree) residentElemPoints(rank int, ids []ElemID) ([][]geom.Point, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	return cgm.ResidentCall[fetchArgs, [][]geom.Point](t.mach, rank, fref("points/fetch"), fetchArgs{Elems: ids})
}
