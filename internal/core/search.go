package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/balance"
	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/geom"
	"repro/internal/rangetree"
	"repro/internal/segtree"
)

// Query is one box query of the batch Q, identified by its index.
type Query struct {
	ID  int32
	Box geom.Box
}

// hatSel is a selection made inside the replicated hat (Algorithm Search
// step 1): either a hat-internal node of a last-dimension tree whose whole
// leaf set matches (Elem == -1), or a whole forest element selected at its
// stub (Elem ≥ 0).
type hatSel struct {
	Query int32
	Tree  int32
	Node  int32
	Elem  ElemID
}

// subquery is a query that "needs to visit a node in F" (the paper's Q″):
// it must continue inside forest element Elem.
type subquery struct {
	Query int32
	Elem  ElemID
	Box   geom.Box
}

// hatSearch advances one query through the hat replica: the four-case
// descent of §4 over the truncated trees. Selections in the last dimension
// are emitted via sel; crossings into the forest via sub.
func (ps *procState) hatSearch(t *Tree, q Query, sel func(hatSel), sub func(subquery)) {
	if q.Box.Dims() != t.dims {
		panic(fmt.Sprintf("core: query %d has %d dims, tree has %d", q.ID, q.Box.Dims(), t.dims))
	}
	var visitTree func(id int32)
	visitTree = func(id int32) {
		ht := ps.hat[id]
		iv := q.Box.Dim(int(ht.Dim))
		if iv.Empty() {
			return
		}
		last := int(ht.Dim) == t.dims-1
		var descend func(v int)
		descend = func(v int) {
			nd, ok := ht.Nodes[v]
			if !ok {
				return // no real points below
			}
			span := geom.Interval{Lo: nd.Min, Hi: nd.Max}
			if !iv.Overlaps(span) {
				return // case 4: disjoint — the query is deleted here
			}
			if nd.Elem >= 0 {
				// The query reaches a leaf of the hat. If the whole stub
				// matches in the last dimension the element is selected
				// outright; otherwise the query must continue in F.
				if last && iv.ContainsInterval(span) {
					sel(hatSel{Query: q.ID, Tree: id, Node: int32(v), Elem: nd.Elem})
				} else {
					sub(subquery{Query: q.ID, Elem: nd.Elem, Box: q.Box})
				}
				return
			}
			if iv.ContainsInterval(span) {
				if last {
					// Case 2: select the segment tree rooted at v.
					sel(hatSel{Query: q.ID, Tree: id, Node: int32(v), Elem: -1})
				} else {
					// Case 1: proceed to the next dimension.
					visitTree(nd.Desc)
				}
				return
			}
			// Case 3: split into the two children.
			descend(segtree.Left(v))
			descend(segtree.Right(v))
		}
		descend(ht.Shape.Root())
	}
	visitTree(0)
}

// stubsUnder appends the elements of every stub below hat node v of tree
// id (inclusive) — the expansion Report mode uses when a hat-internal node
// is selected: all forest elements below it are selected whole.
func (ps *procState) stubsUnder(id int32, v int, out []ElemID) []ElemID {
	ht := ps.hat[id]
	nd, ok := ht.Nodes[v]
	if !ok {
		return out
	}
	if nd.Elem >= 0 {
		return append(out, nd.Elem)
	}
	out = ps.stubsUnder(id, segtree.Left(v), out)
	return ps.stubsUnder(id, segtree.Right(v), out)
}

// BalanceMode selects the granularity of Algorithm Search's replication.
type BalanceMode int

const (
	// GroupLevel is the paper's scheme: the demand unit is a whole
	// processor part F_j, and congested parts are copied wholesale
	// ("make c_j copies of F_j", Search step 3).
	GroupLevel BalanceMode = iota
	// ElementLevel is the finer ablation: demand is counted per forest
	// element and only demanded elements are copied — less shipping
	// volume for sparse demand, at the cost of a larger demand exchange.
	ElementLevel
)

// SetBalanceMode selects the balancing granularity for subsequent batches
// (default GroupLevel, the paper's algorithm).
func (t *Tree) SetBalanceMode(m BalanceMode) { t.balanceMode = m }

// LastCopiedPoints reports how many element points were shipped as copies
// in the most recent batch (the E6 volume column).
func (t *Tree) LastCopiedPoints() int {
	total := 0
	for _, c := range t.lastCopied {
		total += c
	}
	return total
}

// phaseB implements Algorithm Search steps 2–4: globally count the demand
// |QF_j| per forest group, make c_j copies of congested groups, distribute
// the copies evenly, and redistribute Q″ so every subquery lands on a
// processor holding the element it visits. It returns the subqueries this
// processor serves. materialize is called for every copied element a host
// installs (modes hook it to build their per-element annotations).
func (t *Tree) phaseB(pr *cgm.Proc, ps *procState, subs []subquery, label string, materialize func(*element)) []subquery {
	if t.balanceMode == ElementLevel {
		return t.phaseBElement(pr, ps, subs, label, materialize)
	}
	p := pr.P()
	ps.copies = make(map[ElemID]*element)

	// Step 2: globally compute c_j = |QF_j| / (|Q″|/p). The group of a
	// subquery is the owner of its element (the part F_j).
	local := make([]int, p)
	for _, s := range subs {
		local[ps.info[int(s.Elem)].Owner]++
	}
	matrix := comm.AllGather(pr, label+"/demand", local)
	demand := make([]int, p)
	for _, row := range matrix {
		for j, c := range row {
			demand[j] += c
		}
	}
	plan := balance.NewPlan(p, demand)
	if pr.Rank() == 0 {
		t.lastDemand = demand // identical on every processor; keep one
	}

	// Step 3: make c_j copies of F_j and distribute them evenly. The
	// owner ships its whole part to every host of one of its slots.
	type shipped struct {
		Info ElemInfo
		Pts  []geom.Point
	}
	out := make([][]shipped, p)
	copiedPts := 0
	for _, host := range plan.GroupHosts(ps.rank) {
		if host == ps.rank {
			continue // the owner is its own copy
		}
		for _, id := range sortedOwnedIDs(ps.elems) {
			el := ps.elems[id]
			out[host] = append(out[host], shipped{Info: el.info, Pts: el.pts})
			copiedPts += len(el.pts)
		}
	}
	t.lastCopied[ps.rank] = copiedPts
	incoming := cgm.Exchange(pr, label+"/copies", out)
	for _, part := range incoming {
		for _, sh := range part {
			el := &element{info: sh.Info, pts: sh.Pts, tree: rangetree.BuildFrom(sh.Pts, int(sh.Info.Dim))}
			ps.copies[sh.Info.ID] = el
			if materialize != nil {
				materialize(el)
			}
		}
	}

	// Step 4: redistribute Q″ so every query sits with a copy of the part
	// it visits; the r-th subquery of group j goes to the host of copy
	// ⌊r·c_j/d_j⌋.
	rankOffset := make([]int, p)
	for src := 0; src < pr.Rank(); src++ {
		for j := 0; j < p; j++ {
			rankOffset[j] += matrix[src][j]
		}
	}
	seen := make([]int, p)
	routed := make([][]subquery, p)
	for _, s := range subs {
		j := int(ps.info[int(s.Elem)].Owner)
		r := rankOffset[j] + seen[j]
		seen[j]++
		dest := plan.Route(j, r)
		routed[dest] = append(routed[dest], s)
	}
	served := cgm.Exchange(pr, label+"/route", routed)
	var mine []subquery
	for _, part := range served {
		mine = append(mine, part...)
	}
	return mine
}

// phaseBElement is the ElementLevel variant of phaseB: demand, copies and
// routing all work per forest element.
func (t *Tree) phaseBElement(pr *cgm.Proc, ps *procState, subs []subquery, label string, materialize func(*element)) []subquery {
	p := pr.P()
	ps.copies = make(map[ElemID]*element)

	// Demand per element, exchanged sparsely.
	type elemDemand struct {
		Elem  ElemID
		Count int32
	}
	localCnt := make(map[ElemID]int32)
	for _, s := range subs {
		localCnt[s.Elem]++
	}
	var local []elemDemand
	for _, id := range sortedDemandIDs(localCnt) {
		local = append(local, elemDemand{Elem: id, Count: localCnt[id]})
	}
	perSrc := comm.AllGather(pr, label+"/edemand", local)
	demand := make([]int, t.ElemCount())
	for _, row := range perSrc {
		for _, d := range row {
			demand[int(d.Elem)] += int(d.Count)
		}
	}
	plan := balance.NewPlan(p, demand)
	if pr.Rank() == 0 {
		// Aggregate to owner granularity so LastDemand stays comparable.
		byOwner := make([]int, p)
		for e, d := range demand {
			byOwner[int(ps.info[e].Owner)] += d
		}
		t.lastDemand = byOwner
	}

	// Ship only demanded elements, each to the hosts of its slots.
	type shipped struct {
		Info ElemInfo
		Pts  []geom.Point
	}
	out := make([][]shipped, p)
	copiedPts := 0
	for _, id := range sortedOwnedIDs(ps.elems) {
		if demand[int(id)] == 0 {
			continue
		}
		el := ps.elems[id]
		for _, host := range plan.GroupHosts(int(id)) {
			if host == ps.rank {
				continue
			}
			out[host] = append(out[host], shipped{Info: el.info, Pts: el.pts})
			copiedPts += len(el.pts)
		}
	}
	t.lastCopied[ps.rank] = copiedPts
	incoming := cgm.Exchange(pr, label+"/ecopies", out)
	for _, part := range incoming {
		for _, sh := range part {
			el := &element{info: sh.Info, pts: sh.Pts, tree: rangetree.BuildFrom(sh.Pts, int(sh.Info.Dim))}
			ps.copies[sh.Info.ID] = el
			if materialize != nil {
				materialize(el)
			}
		}
	}

	// Route the r-th subquery of element e to the host of copy ⌊r·c_e/d_e⌋.
	rankOffset := make(map[ElemID]int)
	for src := 0; src < pr.Rank(); src++ {
		for _, d := range perSrc[src] {
			rankOffset[d.Elem] += int(d.Count)
		}
	}
	seen := make(map[ElemID]int)
	routed := make([][]subquery, p)
	for _, s := range subs {
		r := rankOffset[s.Elem] + seen[s.Elem]
		seen[s.Elem]++
		dest := plan.Route(int(s.Elem), r)
		routed[dest] = append(routed[dest], s)
	}
	served := cgm.Exchange(pr, label+"/eroute", routed)
	var mine []subquery
	for _, part := range served {
		mine = append(mine, part...)
	}
	return mine
}

// sortedDemandIDs returns the map keys in increasing order.
func sortedDemandIDs(m map[ElemID]int32) []ElemID {
	ids := make([]ElemID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	return ids
}

// sortedOwnedIDs returns the owned element ids in increasing order.
func sortedOwnedIDs(m map[ElemID]*element) []ElemID {
	ids := make([]ElemID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	return ids
}
