package core

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"repro/internal/balance"
	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/segtree"
)

// Query is one box query of the batch Q, identified by its index.
type Query struct {
	ID  int32
	Box geom.Box
}

// hatSel is a selection made inside the replicated hat (Algorithm Search
// step 1): either a hat-internal node of a last-dimension tree whose whole
// leaf set matches (Elem == -1), or a whole forest element selected at its
// stub (Elem ≥ 0).
type hatSel struct {
	Query int32
	Tree  int32
	Node  int32
	Elem  ElemID
}

// subquery is a query that "needs to visit a node in F" (the paper's Q″):
// it must continue inside forest element Elem.
type subquery struct {
	Query int32
	Elem  ElemID
	Box   geom.Box
}

// hatSink consumes the outcomes of one hat descent: selections resolved
// inside the replicated hat and crossings into the forest. An interface
// (rather than a closure pair) keeps the innermost loop of phase A free of
// per-query closure allocations.
type hatSink interface {
	hatSelection(q Query, s hatSel)
	forestSub(s subquery)
}

// funcHatSink adapts closures to hatSink for the single-query paths.
type funcHatSink struct {
	sel func(hatSel)
	sub func(subquery)
}

func (f *funcHatSink) hatSelection(_ Query, s hatSel) { f.sel(s) }
func (f *funcHatSink) forestSub(s subquery)           { f.sub(s) }

// hatSearch advances one query through the hat replica: the four-case
// descent of §4 over the truncated trees, run iteratively over the
// procState's reused stack. Reusing the stack makes this non-reentrant
// per procState — it is the batch path, where each rank's goroutine owns
// its procState; callers outside a machine run use hatSearchFunc, which
// descends over a local stack.
func (ps *procState) hatSearch(t *Tree, q Query, sink hatSink) {
	ps.hatStack = hatDescend(t, ps.hat, q, sink, ps.hatStack)
}

// hatSearchFunc is the closure-friendly wrapper used off the hot path
// (single-query algorithms). Its stack is local, so it is safe on any
// goroutine even while a batch runs.
func (ps *procState) hatSearchFunc(t *Tree, q Query, sel func(hatSel), sub func(subquery)) {
	sink := funcHatSink{sel: sel, sub: sub}
	hatDescend(t, ps.hat, q, &sink, nil)
}

// hatDescend is the descent core. A frame names (tree, node); crossing
// into the next dimension (case 1) pushes the descendant tree's root, so
// one stack serves all d dimensions. The (emptied) stack is returned for
// reuse by the caller.
func hatDescend(t *Tree, hat []*HatTree, q Query, sink hatSink, stack []hatFrame) []hatFrame {
	if q.Box.Dims() != t.dims {
		panic(fmt.Sprintf("core: query %d has %d dims, tree has %d", q.ID, q.Box.Dims(), t.dims))
	}
	stack = stack[:0]
	stack = append(stack, hatFrame{tree: 0, node: int32(hat[0].Shape.Root())})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ht := hat[f.tree]
		iv := q.Box.Dim(int(ht.Dim))
		if iv.Empty() {
			continue
		}
		nd, ok := ht.Node(int(f.node))
		if !ok {
			continue // no real points below
		}
		span := geom.Interval{Lo: nd.Min, Hi: nd.Max}
		if !iv.Overlaps(span) {
			continue // case 4: disjoint — the query is deleted here
		}
		last := int(ht.Dim) == t.dims-1
		if nd.Elem >= 0 {
			// The query reaches a leaf of the hat. If the whole stub
			// matches in the last dimension the element is selected
			// outright; otherwise the query must continue in F.
			if last && iv.ContainsInterval(span) {
				sink.hatSelection(q, hatSel{Query: q.ID, Tree: f.tree, Node: f.node, Elem: nd.Elem})
			} else {
				sink.forestSub(subquery{Query: q.ID, Elem: nd.Elem, Box: q.Box})
			}
			continue
		}
		if iv.ContainsInterval(span) {
			if last {
				// Case 2: select the segment tree rooted at v.
				sink.hatSelection(q, hatSel{Query: q.ID, Tree: f.tree, Node: f.node, Elem: -1})
			} else {
				// Case 1: proceed to the next dimension.
				stack = append(stack, hatFrame{tree: nd.Desc, node: int32(hat[nd.Desc].Shape.Root())})
			}
			continue
		}
		// Case 3: split into the two children (left popped first).
		stack = append(stack,
			hatFrame{tree: f.tree, node: int32(segtree.Right(int(f.node)))},
			hatFrame{tree: f.tree, node: int32(segtree.Left(int(f.node)))})
	}
	return stack // empty; capacity kept for the next query
}

// stubsUnder appends the elements of every stub below hat node v of tree
// id (inclusive) — the expansion Report mode uses when a hat-internal node
// is selected: all forest elements below it are selected whole. The
// descent is iterative over a reused stack, emitting in left-to-right
// order.
func (ps *procState) stubsUnder(id int32, v int, out []ElemID) []ElemID {
	ht := ps.hat[id]
	stack := ps.stubStack[:0]
	stack = append(stack, int32(v))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd, ok := ht.Node(int(v))
		if !ok {
			continue
		}
		if nd.Elem >= 0 {
			out = append(out, nd.Elem)
			continue
		}
		stack = append(stack, int32(segtree.Right(int(v))), int32(segtree.Left(int(v))))
	}
	ps.stubStack = stack
	return out
}

// BalanceMode selects the granularity of Algorithm Search's replication.
type BalanceMode int

const (
	// GroupLevel is the paper's scheme: the demand unit is a whole
	// processor part F_j, and congested parts are copied wholesale
	// ("make c_j copies of F_j", Search step 3).
	GroupLevel BalanceMode = iota
	// ElementLevel is the finer ablation: demand is counted per forest
	// element and only demanded elements are copied — less shipping
	// volume for sparse demand, at the cost of a larger demand exchange.
	ElementLevel
)

// SetBalanceMode selects the balancing granularity for subsequent batches
// (default GroupLevel, the paper's algorithm).
func (t *Tree) SetBalanceMode(m BalanceMode) { t.balanceMode = m }

// LastCopiedPoints reports how many element points were shipped as copies
// in the most recent batch (the E6 volume column). The per-rank counters
// are atomics: processors publish them inside the machine run, and this
// reader may race a batch in flight (it then observes a mix of old and new
// per-rank values, each one coherent).
func (t *Tree) LastCopiedPoints() int {
	total := 0
	for i := range t.lastCopied {
		total += int(t.lastCopied[i].Load())
	}
	return total
}

// installCopies installs the shipped copies a processor received in phase
// B: cache-valid elements are reused (points shipped, rebuild skipped),
// everything else is built on the tree's backend and cached for later
// batches. materialize runs for every installed copy either way.
func (t *Tree) installCopies(ps *procState, incoming [][]shippedElem, materialize func(*element)) {
	st := &t.lastStats[ps.rank]
	start := time.Now()
	st.CopyCacheHits += installShipped(t.backend, ps.copies, ps.copyCache, &ps.cacheEpoch,
		t.epoch.Load(), t.copyCacheCapFor(ps), incoming, materialize)
	st.InstallNanos += time.Since(start).Nanoseconds()
}

// installShipped is the phase-B install shared by the fabric path and
// the resident step (one policy, one source of truth): the cache is
// swept whole when the tree epoch moved (so invalidated entries never
// strand memory) and bounded by cap (so a drifting hot set cannot grow
// it without limit; eviction is arbitrary map order — fine for a cache
// whose misses only cost a rebuild). Returns the cache-hit count.
func installShipped(be Backend, copies, cache map[ElemID]*element, cacheEpoch *uint64,
	epoch uint64, cap int, incoming [][]shippedElem, materialize func(*element)) int {
	if *cacheEpoch != epoch {
		clear(cache)
		*cacheEpoch = epoch
	}
	hits := 0
	for _, part := range incoming {
		for _, sh := range part {
			el, ok := cache[sh.Info.ID]
			if ok {
				hits++
			} else {
				el = &element{info: sh.Info, pts: sh.Pts, tree: buildElemTree(be, sh.Pts, int(sh.Info.Dim))}
				cacheInsert(cache, sh.Info.ID, el, cap)
			}
			copies[sh.Info.ID] = el
			if materialize != nil {
				materialize(el)
			}
		}
	}
	return hits
}

// shippedElem is one element copy in flight: replicated metadata plus the
// points in leaf order.
type shippedElem struct {
	Info ElemInfo
	Pts  []geom.Point
}

// gatherServed flattens the routed subqueries this processor received,
// preallocated from the part sizes.
func gatherServed(parts [][]subquery) []subquery {
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	mine := make([]subquery, 0, total)
	for _, part := range parts {
		mine = append(mine, part...)
	}
	return mine
}

// partitionSubs buckets the subqueries by destination: dest is resolved
// in a first pass (called once per subquery, in order — it may be
// stateful) so the buckets are allocated at their exact final size.
func partitionSubs(p int, subs []subquery, dest func(i int, s subquery) int) [][]subquery {
	counts := make([]int, p)
	dests := make([]int32, len(subs))
	for i, s := range subs {
		d := dest(i, s)
		dests[i] = int32(d)
		counts[d]++
	}
	routed := make([][]subquery, p)
	for d, c := range counts {
		if c > 0 {
			routed[d] = make([]subquery, 0, c)
		}
	}
	for i, s := range subs {
		routed[dests[i]] = append(routed[dests[i]], s)
	}
	return routed
}

// routeExact implements Search step 4's redistribution on the fabric
// path: partition, exchange, flatten. On a resident tree the same
// partition instead feeds the fused route-and-serve superstep, whose
// collect answers the column where it lands (runSearch phase C).
func routeExact(pr *cgm.Proc, label string, subs []subquery, dest func(i int, s subquery) int) []subquery {
	return gatherServed(cgm.Exchange(pr, label, partitionSubs(pr.P(), subs, dest)))
}

// cacheInsert inserts val under id, first evicting arbitrary entries to
// stay within cap (cap ≤ 0 disables caching). Shared by the element copy
// cache and the AggHandle annotation cache so their bounding policy
// cannot drift.
func cacheInsert[V any](cache map[ElemID]V, id ElemID, val V, cap int) {
	if cap <= 0 {
		return
	}
	for k := range cache {
		if len(cache) < cap {
			break
		}
		delete(cache, k)
	}
	cache[id] = val
}

// phaseB implements Algorithm Search steps 2–4: globally count the demand
// |QF_j| per forest group, make c_j copies of congested groups, distribute
// the copies evenly, and redistribute Q″ so every subquery lands on a
// processor holding the element it visits. It returns the subqueries this
// processor serves. materialize is called for every copied element a host
// installs (modes hook it to build their per-element annotations); on a
// resident tree the copies ship worker-to-worker instead (emit and
// collect steps of the forest program) and aggName selects the registered
// aggregate the install step annotates them for.
//
// On a fabric tree the route exchange runs here and served holds this
// processor's share (routed is nil). On a resident tree the exchange is
// deferred: phaseB returns the partitioned buckets plus the label the
// mode's fused route-and-serve superstep must use, so routing and phase
// C collapse into one round with no separate serve dispatch.
func (t *Tree) phaseB(pr *cgm.Proc, ps *procState, subs []subquery, label, aggName string, materialize func(*element)) (served []subquery, routed [][]subquery, routeLbl string) {
	if t.balanceMode == ElementLevel {
		return t.phaseBElement(pr, ps, subs, label, aggName, materialize)
	}
	p := pr.P()
	ps.copies = make(map[ElemID]*element)

	// Step 2: globally compute c_j = |QF_j| / (|Q″|/p). The group of a
	// subquery is the owner of its element (the part F_j).
	local := make([]int, p)
	for _, s := range subs {
		local[ps.info[int(s.Elem)].Owner]++
	}
	matrix := comm.AllGather(pr, label+"/demand", local)
	demand := make([]int, p)
	for _, row := range matrix {
		for j, c := range row {
			demand[j] += c
		}
	}
	plan := balance.NewPlan(p, demand)
	if pr.Rank() == 0 {
		t.lastDemand = demand // identical on every processor; keep one
	}

	// Step 3: make c_j copies of F_j and distribute them evenly. The
	// owner ships its whole part to every host of one of its slots — on a
	// resident tree straight from worker memory to worker memory, the
	// coordinator contributing only the host list and install parameters.
	if t.resident {
		var hosts []int32
		for _, host := range plan.GroupHosts(ps.rank) {
			if host != ps.rank { // the owner is its own copy
				hosts = append(hosts, int32(host))
			}
		}
		residentCopies(t, pr, ps, label+"/copies", fref("search/shipGroup"),
			shipGroupArgs{Hosts: hosts}, aggName)
	} else {
		out := make([][]shippedElem, p)
		copiedPts := 0
		for _, host := range plan.GroupHosts(ps.rank) {
			if host == ps.rank {
				continue // the owner is its own copy
			}
			for _, id := range sortedOwnedIDs(ps.elems) {
				el := ps.elems[id]
				out[host] = append(out[host], shippedElem{Info: el.info, Pts: el.pts})
				copiedPts += len(el.pts)
			}
		}
		t.lastCopied[ps.rank].Store(int64(copiedPts))
		incoming := cgm.Exchange(pr, label+"/copies", out)
		t.installCopies(ps, incoming, materialize)
	}

	// Step 4: redistribute Q″ so every query sits with a copy of the part
	// it visits; the r-th subquery of group j goes to the host of copy
	// ⌊r·c_j/d_j⌋.
	rankOffset := make([]int, p)
	for src := 0; src < pr.Rank(); src++ {
		for j := 0; j < p; j++ {
			rankOffset[j] += matrix[src][j]
		}
	}
	seen := make([]int, p)
	dest := func(_ int, s subquery) int {
		j := int(ps.info[int(s.Elem)].Owner)
		r := rankOffset[j] + seen[j]
		seen[j]++
		return plan.Route(j, r)
	}
	if t.resident {
		return nil, partitionSubs(p, subs, dest), label + "/route"
	}
	return routeExact(pr, label+"/route", subs, dest), nil, ""
}

// residentCopies runs the phase-B copies superstep with both endpoints
// resident — the owner's emit step serializes elements out of worker
// memory, the host's install step builds them into worker memory, and
// only the install statistics return to the coordinator.
func residentCopies[A any](t *Tree, pr *cgm.Proc, ps *procState, label string, emit exec.Ref, eargs A, aggName string) {
	st := &t.lastStats[ps.rank]
	cargs := installCopiesArgs{Epoch: t.epoch.Load(), Cap: t.copyCacheCapFor(ps), Agg: aggName}
	note, rep := cgm.ExchangeSteps[A, installCopiesArgs, installCopiesReply](
		pr, label, emit, eargs, fref("search/install"), cargs)
	cn, err := exec.Unmarshal[copyNote](note)
	if err != nil {
		panic(fmt.Sprintf("core: %s: decoding copy note: %v", label, err))
	}
	t.lastCopied[ps.rank].Store(int64(cn.CopiedPts))
	st.CopyCacheHits += rep.CacheHits
	st.InstallNanos += rep.InstallNanos
	st.CopiesHeld = rep.Held
}

// elemDemand is one element's sparse demand row of the ElementLevel
// demand all-gather.
type elemDemand struct {
	Elem  ElemID
	Count int32
}

// phaseBElement is the ElementLevel variant of phaseB: demand, copies and
// routing all work per forest element.
func (t *Tree) phaseBElement(pr *cgm.Proc, ps *procState, subs []subquery, label, aggName string, materialize func(*element)) (served []subquery, routed [][]subquery, routeLbl string) {
	p := pr.P()
	ps.copies = make(map[ElemID]*element)

	// Demand per element, exchanged sparsely.
	localCnt := make(map[ElemID]int32)
	for _, s := range subs {
		localCnt[s.Elem]++
	}
	var local []elemDemand
	for _, id := range sortedDemandIDs(localCnt) {
		local = append(local, elemDemand{Elem: id, Count: localCnt[id]})
	}
	perSrc := comm.AllGather(pr, label+"/edemand", local)
	demand := make([]int, t.ElemCount())
	for _, row := range perSrc {
		for _, d := range row {
			demand[int(d.Elem)] += int(d.Count)
		}
	}
	plan := balance.NewPlan(p, demand)
	if pr.Rank() == 0 {
		// Aggregate to owner granularity so LastDemand stays comparable.
		byOwner := make([]int, p)
		for e, d := range demand {
			byOwner[int(ps.info[e].Owner)] += d
		}
		t.lastDemand = byOwner
	}

	// Ship only demanded elements, each to the hosts of its slots. The
	// fan-out is derived from the replicated metadata, so the resident
	// coordinator can plan it without holding the elements.
	if t.resident {
		var ships []elemShip
		for _, info := range ps.info {
			if int(info.Owner) != ps.rank || demand[int(info.ID)] == 0 {
				continue
			}
			var hosts []int32
			for _, host := range plan.GroupHosts(int(info.ID)) {
				if host != ps.rank {
					hosts = append(hosts, int32(host))
				}
			}
			ships = append(ships, elemShip{Elem: info.ID, Hosts: hosts})
		}
		residentCopies(t, pr, ps, label+"/ecopies", fref("search/shipElems"),
			shipElemsArgs{Ships: ships}, aggName)
	} else {
		out := make([][]shippedElem, p)
		copiedPts := 0
		for _, id := range sortedOwnedIDs(ps.elems) {
			if demand[int(id)] == 0 {
				continue
			}
			el := ps.elems[id]
			for _, host := range plan.GroupHosts(int(id)) {
				if host == ps.rank {
					continue
				}
				out[host] = append(out[host], shippedElem{Info: el.info, Pts: el.pts})
				copiedPts += len(el.pts)
			}
		}
		t.lastCopied[ps.rank].Store(int64(copiedPts))
		incoming := cgm.Exchange(pr, label+"/ecopies", out)
		t.installCopies(ps, incoming, materialize)
	}

	// Route the r-th subquery of element e to the host of copy ⌊r·c_e/d_e⌋.
	rankOffset := make(map[ElemID]int)
	for src := 0; src < pr.Rank(); src++ {
		for _, d := range perSrc[src] {
			rankOffset[d.Elem] += int(d.Count)
		}
	}
	seen := make(map[ElemID]int)
	dest := func(_ int, s subquery) int {
		r := rankOffset[s.Elem] + seen[s.Elem]
		seen[s.Elem]++
		return plan.Route(int(s.Elem), r)
	}
	if t.resident {
		return nil, partitionSubs(p, subs, dest), label + "/eroute"
	}
	return routeExact(pr, label+"/eroute", subs, dest), nil, ""
}

// sortedDemandIDs returns the map keys in increasing order.
func sortedDemandIDs(m map[ElemID]int32) []ElemID {
	ids := make([]ElemID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	return ids
}

// sortedOwnedIDs returns the owned element ids in increasing order.
func sortedOwnedIDs(m map[ElemID]*element) []ElemID {
	ids := make([]ElemID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	return ids
}
