package core

import (
	"sort"

	"repro/internal/balance"
	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/geom"
	"repro/internal/rangetree"
	"repro/internal/semigroup"
)

// qcount is a partial per-query result routed to the query's home.
type qcount struct {
	Query int32
	Val   int64
}

// SearchStats reports one processor's share of the last batch — the
// quantities the balancing lemma bounds.
type SearchStats struct {
	HatSelections int // selections resolved in the replicated hat
	Subqueries    int // subqueries this processor's queries spawned (its Q″ share)
	Served        int // subqueries served after redistribution
	CopiesHeld    int // forest elements copied to this processor
	PairsEmitted  int // report mode: (q, point) pairs materialized here
}

// LastSearchStats returns the per-processor statistics of the most recent
// batch operation.
func (t *Tree) LastSearchStats() []SearchStats { return t.lastStats }

// CountBatch answers every query with |R(q)| — the counting special case
// of the associative-function mode, which needs no precomputation because
// hat nodes carry their canonical counts.
func (t *Tree) CountBatch(boxes []geom.Box) []int64 {
	m := len(boxes)
	if m == 0 {
		return nil
	}
	p := t.P()
	results := make([]int64, m)
	t.prepBatch()
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		st := &t.lastStats[pr.Rank()]
		lo, hi := queryBlock(pr.Rank(), m, p)
		var pairs []qcount
		var subs []subquery
		for qi := lo; qi < hi; qi++ {
			q := Query{ID: int32(qi), Box: boxes[qi]}
			ps.hatSearch(t, q,
				func(s hatSel) {
					st.HatSelections++
					var c int64
					if s.Elem >= 0 {
						c = int64(ps.info[int(s.Elem)].Count)
					} else {
						c = int64(ps.hat[s.Tree].Nodes[int(s.Node)].Count)
					}
					pairs = append(pairs, qcount{Query: q.ID, Val: c})
				},
				func(s subquery) { subs = append(subs, s) })
		}
		st.Subqueries = len(subs)
		served := t.phaseB(pr, ps, subs, "count", nil)
		st.Served = len(served)
		st.CopiesHeld = len(ps.copies)
		for _, s := range served {
			el := ps.lookup(s.Elem)
			pairs = append(pairs, qcount{Query: s.Query, Val: int64(el.tree.Count(s.Box))})
		}
		// Fold the partial counts at each query's home processor.
		home := comm.SegmentedGather(pr, "count/home", pairs, func(v qcount) int {
			return homeOf(v.Query, m, p)
		})
		for _, v := range home {
			results[v.Query] += v.Val // home blocks are disjoint across processors
		}
	})
	return results
}

// AggHandle is a prepared associative-function annotation: Algorithm
// AssociativeFunction step 1 ("compute f(v) bottom-up for each node v in
// dimension d of T") materialized for one monoid. A Tree can carry any
// number of handles.
type AggHandle[T any] struct {
	t   *Tree
	m   semigroup.Monoid[T]
	val func(geom.Point) T
	// elemRoot[e] is f folded over all points of element e (replicated).
	elemRoot []T
	// elemAggs[rank] are the per-node annotations of owned elements.
	elemAggs []map[ElemID]*rangetree.Agg[T]
	// hatTab[rank][treeID][node] annotates last-dimension hat trees.
	hatTab []map[int32][]T
}

// PrepareAssociative runs step 1 of Algorithm AssociativeFunction: owners
// annotate their forest elements sequentially, the forest-root values are
// broadcast all-to-all, and every processor annotates its hat replica.
func PrepareAssociative[T any](t *Tree, mo semigroup.Monoid[T], val func(geom.Point) T) *AggHandle[T] {
	p := t.P()
	h := &AggHandle[T]{
		t:        t,
		m:        mo,
		val:      val,
		elemRoot: make([]T, t.ElemCount()),
		elemAggs: make([]map[ElemID]*rangetree.Agg[T], p),
		hatTab:   make([]map[int32][]T, p),
	}
	type rootVal struct {
		Elem ElemID
		Val  T
	}
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		aggs := make(map[ElemID]*rangetree.Agg[T])
		var roots []rootVal
		for _, id := range sortedOwnedIDs(ps.elems) {
			el := ps.elems[id]
			aggs[id] = rangetree.NewAgg(el.tree, mo, val)
			acc := mo.Identity
			for _, pt := range el.pts {
				acc = mo.Combine(acc, val(pt))
			}
			roots = append(roots, rootVal{Elem: id, Val: acc})
		}
		h.elemAggs[pr.Rank()] = aggs
		all := comm.AllGatherFlat(pr, "assoc/roots", roots)
		rootTab := make([]T, t.ElemCount())
		for _, rv := range all {
			rootTab[int(rv.Elem)] = rv.Val
		}
		if pr.Rank() == 0 {
			h.elemRoot = rootTab // replicas are identical; keep one
		}
		tab := make(map[int32][]T)
		for _, ht := range ps.hat {
			if int(ht.Dim) != t.dims-1 {
				continue
			}
			arr := make([]T, ht.Shape.NumNodes()+1)
			var fill func(v int) T
			fill = func(v int) T {
				nd, ok := ht.Nodes[v]
				if !ok {
					return mo.Identity
				}
				var x T
				if nd.Elem >= 0 {
					x = rootTab[int(nd.Elem)]
				} else {
					x = mo.Combine(fill(2*v), fill(2*v+1))
				}
				arr[v] = x
				return x
			}
			fill(ht.Shape.Root())
			tab[ht.ID] = arr
		}
		h.hatTab[pr.Rank()] = tab
	})
	return h
}

// qvalT is a typed partial result for the associative mode.
type qvalT[T any] struct {
	Query int32
	Val   T
}

// Batch evaluates ⊗_{l∈R(q)} f(l) for every query (Algorithm
// AssociativeFunction steps 2–5: search, pair up selections with their
// f-values, combine per query).
func (h *AggHandle[T]) Batch(boxes []geom.Box) []T {
	t := h.t
	m := len(boxes)
	if m == 0 {
		return nil
	}
	p := t.P()
	results := make([]T, m)
	for i := range results {
		results[i] = h.m.Identity
	}
	t.prepBatch()
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		st := &t.lastStats[pr.Rank()]
		myAggs := h.elemAggs[pr.Rank()]
		copyAggs := make(map[ElemID]*rangetree.Agg[T])
		lo, hi := queryBlock(pr.Rank(), m, p)
		var pairs []qvalT[T]
		var subs []subquery
		for qi := lo; qi < hi; qi++ {
			q := Query{ID: int32(qi), Box: boxes[qi]}
			ps.hatSearch(t, q,
				func(s hatSel) {
					st.HatSelections++
					var v T
					if s.Elem >= 0 {
						v = h.elemRoot[int(s.Elem)]
					} else {
						v = h.hatTab[pr.Rank()][s.Tree][int(s.Node)]
					}
					pairs = append(pairs, qvalT[T]{Query: q.ID, Val: v})
				},
				func(s subquery) { subs = append(subs, s) })
		}
		st.Subqueries = len(subs)
		served := t.phaseB(pr, ps, subs, "assoc", func(el *element) {
			copyAggs[el.info.ID] = rangetree.NewAgg(el.tree, h.m, h.val)
		})
		st.Served = len(served)
		st.CopiesHeld = len(ps.copies)
		for _, s := range served {
			var a *rangetree.Agg[T]
			if ag, ok := myAggs[s.Elem]; ok {
				a = ag
			} else {
				a = copyAggs[s.Elem]
			}
			pairs = append(pairs, qvalT[T]{Query: s.Query, Val: a.Query(s.Box)})
		}
		home := comm.SegmentedGather(pr, "assoc/home", pairs, func(v qvalT[T]) int {
			return homeOf(v.Query, m, p)
		})
		for _, v := range home {
			results[v.Query] = h.m.Combine(results[v.Query], v.Val)
		}
	})
	return results
}

// ReportPair is one (query, point) result pair of the report mode.
type ReportPair struct {
	Query int32
	Pt    geom.Point
}

// ReportBatch answers every query in report mode and groups the pairs by
// query for the caller. The algorithm's distributed deliverable — the
// paper's "for each q and each l in q's range, the pair (q, l) is on some
// processor", balanced to O(k/p) pairs each — is what the machine run
// produces and what the metrics measure; the final grouping is a
// convenience step outside the measured algorithm.
func (t *Tree) ReportBatch(boxes []geom.Box) [][]geom.Point {
	perQuery, _ := t.reportBatch(boxes)
	return perQuery
}

// ReportBatchBalance additionally reports how many pairs each processor
// materialized (the k/p balance of Theorem 4).
func (t *Tree) ReportBatchBalance(boxes []geom.Box) ([][]geom.Point, []int) {
	return t.reportBatch(boxes)
}

func (t *Tree) reportBatch(boxes []geom.Box) ([][]geom.Point, []int) {
	m := len(boxes)
	if m == 0 {
		return nil, make([]int, t.P())
	}
	p := t.P()
	perProc := make([][]ReportPair, p)
	t.prepBatch()
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		st := &t.lastStats[pr.Rank()]
		lo, hi := queryBlock(pr.Rank(), m, p)

		// Phase A: hat search. Selections become whole-element orders
		// (expanding selected hat-internal nodes into their stubs).
		type order struct {
			Query int32
			Elem  ElemID
			Off   int // global output offset, assigned below
		}
		var orders []order
		var subs []subquery
		for qi := lo; qi < hi; qi++ {
			q := Query{ID: int32(qi), Box: boxes[qi]}
			ps.hatSearch(t, q,
				func(s hatSel) {
					st.HatSelections++
					if s.Elem >= 0 {
						orders = append(orders, order{Query: q.ID, Elem: s.Elem})
						return
					}
					for _, e := range ps.stubsUnder(s.Tree, int(s.Node), nil) {
						orders = append(orders, order{Query: q.ID, Elem: e})
					}
				},
				func(s subquery) { subs = append(subs, s) })
		}
		st.Subqueries = len(subs)

		// Phase B/C: balance Q″ and run the sequential searches.
		type local struct {
			Query int32
			Pts   []geom.Point
			Off   int
		}
		served := t.phaseB(pr, ps, subs, "report", nil)
		st.Served = len(served)
		st.CopiesHeld = len(ps.copies)
		var locals []local
		for _, s := range served {
			el := ps.lookup(s.Elem)
			if pts := el.tree.Report(s.Box); len(pts) > 0 {
				locals = append(locals, local{Query: s.Query, Pts: pts})
			}
		}

		// Phase D (Algorithm Report): weigh every selected tree by its
		// leaf count, prefix-sum the weights, and redistribute so each
		// processor materializes a contiguous ~k/p block of output.
		myWeight := 0
		for _, o := range orders {
			myWeight += int(ps.info[int(o.Elem)].Count)
		}
		for _, l := range locals {
			myWeight += len(l.Pts)
		}
		off, totalK := comm.CountScan(pr, "report/weights", myWeight)
		for i := range orders {
			orders[i].Off = off
			off += int(ps.info[int(orders[i].Elem)].Count)
		}
		for i := range locals {
			locals[i].Off = off
			off += len(locals[i].Pts)
		}

		// Whole-element orders fetch their points from the owner.
		fetched := comm.SegmentedGather(pr, "report/fetch", orders, func(o order) int {
			return int(ps.info[int(o.Elem)].Owner)
		})

		// Ship every entry's points to the processors owning its output
		// positions (the segmented broadcast of Algorithm Report step 4).
		out := make([][]ReportPair, p)
		emit := func(qid int32, pts []geom.Point, off int) {
			for _, sh := range balance.SplitWeighted(off, len(pts), totalK, p) {
				for _, pt := range pts[sh.Lo:sh.Hi] {
					out[sh.Proc] = append(out[sh.Proc], ReportPair{Query: qid, Pt: pt})
				}
			}
		}
		for _, l := range locals {
			emit(l.Query, l.Pts, l.Off)
		}
		for _, o := range fetched {
			el := ps.elems[o.Elem] // fetch orders always target the owner
			emit(o.Query, el.pts, o.Off)
		}
		in := cgm.Exchange(pr, "report/pairs", out)
		var mine []ReportPair
		for _, part := range in {
			mine = append(mine, part...)
		}
		st.PairsEmitted = len(mine)
		perProc[pr.Rank()] = mine
	})

	// Grouping for the caller (outside the measured algorithm).
	results := make([][]geom.Point, m)
	counts := make([]int, p)
	for rank, pairs := range perProc {
		counts[rank] = len(pairs)
		for _, pair := range pairs {
			results[pair.Query] = append(results[pair.Query], pair.Pt)
		}
	}
	for _, r := range results {
		sort.Slice(r, func(i, j int) bool { return r[i].ID < r[j].ID })
	}
	return results, counts
}
