package core

import (
	"fmt"
	"slices"

	"repro/internal/balance"
	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

// The three result modes of §4.2 as searchMode instances of the unified
// pipeline (runsearch.go). Each supplies only the four per-mode hooks:
// answering a hat selection, materializing copied elements, answering a
// served subquery, and the result collectives.

// SearchStats reports one processor's share of the last batch — the
// quantities the balancing lemma bounds.
type SearchStats struct {
	HatSelections int   // selections resolved in the replicated hat
	Subqueries    int   // subqueries this processor's queries spawned (its Q″ share)
	Served        int   // subqueries served after redistribution
	CopiesHeld    int   // forest elements copied to this processor
	PairsEmitted  int   // report mode: (q, point) pairs materialized here
	CopyCacheHits int   // copies installed from the cross-batch cache
	InstallNanos  int64 // time spent installing copies in phase B
}

// LastSearchStats returns the per-processor statistics of the most recent
// batch operation.
func (t *Tree) LastSearchStats() []SearchStats { return t.lastStats }

// ---------------------------------------------------------------- count

// qcount is a partial per-query result routed to the query's home.
type qcount struct {
	Query int32
	Val   int64
}

// countRun answers counting queries: hat selections read the canonical
// counts carried by the replica, subqueries count in the local element
// tree, and partials fold at each query's home processor.
type countRun struct {
	ps      *procState
	nq      int
	lbl     string
	deliver func(qid int32, v int64) // called at the query's home
	pairs   []qcount
	cv      countVisitor // reused: phase C counting allocates nothing
}

func (r *countRun) answerHat(q Query, s hatSel) {
	var c int64
	if s.Elem >= 0 {
		c = int64(r.ps.info[int(s.Elem)].Count)
	} else {
		nd, _ := r.ps.hat[s.Tree].Node(int(s.Node))
		c = int64(nd.Count)
	}
	r.pairs = append(r.pairs, qcount{Query: q.ID, Val: c})
}

func (r *countRun) materialize(*element) {}

func (r *countRun) answerSub(s subquery) {
	el := r.ps.lookup(s.Elem)
	r.pairs = append(r.pairs, qcount{Query: s.Query, Val: int64(elemCount(el, s.Box, &r.cv))})
}

func (r *countRun) serveRouted(pr *cgm.Proc, label string, routed [][]subquery) int {
	pairs, recv := cgm.ExchangeCollectRecv[subquery, bool, []qcount](
		pr, label, routed, fref("search/routeCount"), false)
	r.pairs = append(r.pairs, pairs...)
	return recv
}

func (r *countRun) finish(pr *cgm.Proc) {
	home := comm.SegmentedGather(pr, r.lbl+"/home", r.pairs, func(v qcount) int {
		return homeOf(v.Query, r.nq, pr.P())
	})
	for _, v := range home {
		r.deliver(v.Query, v.Val) // home blocks are disjoint across processors
	}
}

type countMode struct{}

func (countMode) label() string    { return "count" }
func (countMode) init([]int64)     {}
func (countMode) epilogue([]int64) {}
func (countMode) start(t *Tree, ps *procState, st *SearchStats, results []int64) procRun {
	return &countRun{ps: ps, nq: len(results), lbl: "count",
		deliver: func(qid int32, v int64) { results[qid] += v }}
}

// CountBatch answers every query with |R(q)| — the counting special case
// of the associative-function mode, which needs no precomputation because
// hat nodes carry their canonical counts.
func (t *Tree) CountBatch(boxes []geom.Box) []int64 {
	return runSearch(t, asQueries(boxes), countMode{})
}

// ---------------------------------------------------- associative function

// AggHandle is a prepared associative-function annotation: Algorithm
// AssociativeFunction step 1 ("compute f(v) bottom-up for each node v in
// dimension d of T") materialized for one monoid. A Tree can carry any
// number of handles.
type AggHandle[T any] struct {
	t *Tree
	// name is the registered-aggregate name for resident execution; ""
	// on fabric trees prepared with an inline monoid.
	name string
	m    semigroup.Monoid[T]
	val  func(geom.Point) T
	// elemRoot[e] is f folded over all points of element e (replicated).
	elemRoot []T
	// elemAggs[rank] are the per-node annotations of owned elements.
	elemAggs []map[ElemID]elemAgg[T]
	// hatTab[rank][treeID][node] annotates last-dimension hat trees.
	hatTab []map[int32][]T
	// copyCache[rank] keeps annotations of copied elements across
	// batches, mirroring the element copy cache: swept when the tree
	// epoch moves, bounded like it, and an entry is only reused for the
	// same built tree instance.
	copyCache  []map[ElemID]cachedAgg[T]
	cacheEpoch []uint64
}

// cachedAgg is one cross-batch annotation cache entry.
type cachedAgg[T any] struct {
	tree elemTree
	agg  elemAgg[T]
}

// Tree returns the distributed tree the handle annotates.
func (h *AggHandle[T]) Tree() *Tree { return h.t }

// PrepareAssociative runs step 1 of Algorithm AssociativeFunction: owners
// annotate their forest elements sequentially, the forest-root values are
// broadcast all-to-all, and every processor annotates its hat replica.
// Resident trees cannot take an inline monoid (functions do not cross
// process boundaries): use PrepareAssociativeNamed with a registered
// aggregate instead.
func PrepareAssociative[T any](t *Tree, mo semigroup.Monoid[T], val func(geom.Point) T) *AggHandle[T] {
	if t.resident {
		panic("core: a resident tree needs a registered aggregate: use RegisterAggregate + PrepareAssociativeNamed")
	}
	return prepareAssociative(t, "", mo, val)
}

// PrepareAssociativeNamed prepares the associative-function annotation
// for a registered aggregate (RegisterAggregate). On a resident tree the
// per-element annotations are built where the elements live; the hat
// annotation is replicated coordinator-side as usual. Works on fabric
// trees too, resolving the registered monoid by name.
func PrepareAssociativeNamed[T any](t *Tree, name string) *AggHandle[T] {
	reg, err := lookupAggregate[T](name)
	if err != nil {
		panic(fmt.Sprintf("core: PrepareAssociativeNamed: %v", err))
	}
	return prepareAssociative(t, name, reg.m, reg.val)
}

func prepareAssociative[T any](t *Tree, name string, mo semigroup.Monoid[T], val func(geom.Point) T) *AggHandle[T] {
	p := t.P()
	h := &AggHandle[T]{
		t:          t,
		name:       name,
		m:          mo,
		val:        val,
		elemRoot:   make([]T, t.ElemCount()),
		elemAggs:   make([]map[ElemID]elemAgg[T], p),
		hatTab:     make([]map[int32][]T, p),
		copyCache:  make([]map[ElemID]cachedAgg[T], p),
		cacheEpoch: make([]uint64, p),
	}
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		var roots []aggRoot[T]
		if t.resident {
			roots = cgm.CallResident[aggPrepArgs, []aggRoot[T]](pr, fref("assoc/prepare"), aggPrepArgs{Name: name})
		} else {
			aggs := make(map[ElemID]elemAgg[T])
			for _, id := range sortedOwnedIDs(ps.elems) {
				el := ps.elems[id]
				aggs[id] = newElemAgg(el, mo, val)
				acc := mo.Identity
				for _, pt := range el.pts {
					acc = mo.Combine(acc, val(pt))
				}
				roots = append(roots, aggRoot[T]{Elem: id, Val: acc})
			}
			h.elemAggs[pr.Rank()] = aggs
		}
		h.copyCache[pr.Rank()] = make(map[ElemID]cachedAgg[T])
		all := comm.AllGatherFlat(pr, "assoc/roots", roots)
		rootTab := make([]T, t.ElemCount())
		for _, rv := range all {
			rootTab[int(rv.Elem)] = rv.Val
		}
		if pr.Rank() == 0 {
			h.elemRoot = rootTab // replicas are identical; keep one
		}
		tab := make(map[int32][]T)
		for _, ht := range ps.hat {
			if int(ht.Dim) != t.dims-1 {
				continue
			}
			arr := make([]T, len(ht.nodes))
			var fill func(v int) T
			fill = func(v int) T {
				nd, ok := ht.Node(v)
				if !ok {
					return mo.Identity
				}
				var x T
				if nd.Elem >= 0 {
					x = rootTab[int(nd.Elem)]
				} else {
					x = mo.Combine(fill(2*v), fill(2*v+1))
				}
				arr[v] = x
				return x
			}
			fill(ht.Shape.Root())
			tab[ht.ID] = arr
		}
		h.hatTab[pr.Rank()] = tab
	})
	return h
}

// qvalT is a typed partial result for the associative mode.
type qvalT[T any] struct {
	Query int32
	Val   T
}

// assocRun evaluates ⊗_{l∈R(q)} f(l): hat selections read the prepared
// annotations, subqueries query the per-element Agg (built on demand for
// copies via materialize), and partials combine at each query's home.
type assocRun[T any] struct {
	h        *AggHandle[T]
	ps       *procState
	nq       int
	lbl      string
	deliver  func(qid int32, v T) // called at the query's home
	copyAggs map[ElemID]elemAgg[T]
	pairs    []qvalT[T]
}

func newAssocRun[T any](h *AggHandle[T], ps *procState, nq int, lbl string, deliver func(int32, T)) *assocRun[T] {
	return &assocRun[T]{h: h, ps: ps, nq: nq, lbl: lbl, deliver: deliver,
		copyAggs: make(map[ElemID]elemAgg[T])}
}

func (r *assocRun[T]) answerHat(q Query, s hatSel) {
	var v T
	if s.Elem >= 0 {
		v = r.h.elemRoot[int(s.Elem)]
	} else {
		v = r.h.hatTab[r.ps.rank][s.Tree][int(s.Node)]
	}
	r.pairs = append(r.pairs, qvalT[T]{Query: q.ID, Val: v})
}

// materialize annotates one installed copy, reusing the cross-batch cache
// when the copy itself was reused (same built tree). Sweep and bound
// mirror installCopies.
func (r *assocRun[T]) materialize(el *element) {
	rank := r.ps.rank
	cache := r.h.copyCache[rank]
	if epoch := r.h.t.epoch.Load(); r.h.cacheEpoch[rank] != epoch {
		clear(cache)
		r.h.cacheEpoch[rank] = epoch
	}
	if c, ok := cache[el.info.ID]; ok && c.tree == el.tree {
		r.copyAggs[el.info.ID] = c.agg
		return
	}
	a := newElemAgg(el, r.h.m, r.h.val)
	cacheInsert(cache, el.info.ID, cachedAgg[T]{tree: el.tree, agg: a}, r.h.t.copyCacheCapFor(r.ps))
	r.copyAggs[el.info.ID] = a
}

func (r *assocRun[T]) answerSub(s subquery) {
	a, ok := r.h.elemAggs[r.ps.rank][s.Elem]
	if !ok {
		a = r.copyAggs[s.Elem]
	}
	r.pairs = append(r.pairs, qvalT[T]{Query: s.Query, Val: a.Query(s.Box)})
}

func (r *assocRun[T]) serveRouted(pr *cgm.Proc, label string, routed [][]subquery) int {
	pairs, recv := cgm.ExchangeCollectRecv[subquery, aggPrepArgs, []qvalT[T]](
		pr, label, routed, fref("search/routeAgg"), aggPrepArgs{Name: r.h.name})
	r.pairs = append(r.pairs, pairs...)
	return recv
}

func (r *assocRun[T]) finish(pr *cgm.Proc) {
	home := comm.SegmentedGather(pr, r.lbl+"/home", r.pairs, func(v qvalT[T]) int {
		return homeOf(v.Query, r.nq, pr.P())
	})
	for _, v := range home {
		r.deliver(v.Query, v.Val)
	}
}

type assocMode[T any] struct{ h *AggHandle[T] }

func (assocMode[T]) label() string             { return "assoc" }
func (m assocMode[T]) residentAggName() string { return m.h.name }
func (m assocMode[T]) init(results []T) {
	for i := range results {
		results[i] = m.h.m.Identity
	}
}
func (assocMode[T]) epilogue([]T) {}
func (m assocMode[T]) start(t *Tree, ps *procState, st *SearchStats, results []T) procRun {
	return newAssocRun(m.h, ps, len(results), "assoc", func(qid int32, v T) {
		results[qid] = m.h.m.Combine(results[qid], v)
	})
}

// Batch evaluates ⊗_{l∈R(q)} f(l) for every query (Algorithm
// AssociativeFunction steps 2–5: search, pair up selections with their
// f-values, combine per query).
func (h *AggHandle[T]) Batch(boxes []geom.Box) []T {
	return runSearch(h.t, asQueries(boxes), assocMode[T]{h: h})
}

// ---------------------------------------------------------------- report

// ReportPair is one (query, point) result pair of the report mode.
type ReportPair struct {
	Query int32
	Pt    geom.Point
}

// rorder is a whole-element selection of the report mode's phase A.
type rorder struct {
	Query int32
	Elem  ElemID
	Off   int // global output offset, assigned in finish
}

// rlocal is one served subquery's report hits, awaiting redistribution.
type rlocal struct {
	Query int32
	Pts   []geom.Point
	Off   int
}

// reportRun materializes (q, l) pairs: hat selections become whole-element
// orders, subqueries report locally, and finish redistributes everything
// so each processor holds a contiguous ~k/p block of output (Algorithm
// Report / Theorem 4).
type reportRun struct {
	ps       *procState
	st       *SearchStats
	lbl      string
	resident bool
	sink     func(rank int, pairs []ReportPair)
	orders   []rorder
	locals   []rlocal
	rv       reportVisitor // reused across served subqueries
	stubs    []ElemID      // reused stub-expansion buffer
}

func (r *reportRun) answerHat(q Query, s hatSel) {
	if s.Elem >= 0 {
		r.orders = append(r.orders, rorder{Query: q.ID, Elem: s.Elem})
		return
	}
	// Expand the selected hat-internal node into its stubs: every forest
	// element below it is selected whole.
	r.stubs = r.ps.stubsUnder(s.Tree, int(s.Node), r.stubs[:0])
	for _, e := range r.stubs {
		r.orders = append(r.orders, rorder{Query: q.ID, Elem: e})
	}
}

func (r *reportRun) materialize(*element) {}

func (r *reportRun) answerSub(s subquery) {
	el := r.ps.lookup(s.Elem)
	if pts := elemReport(el, s.Box, &r.rv); len(pts) > 0 {
		r.locals = append(r.locals, rlocal{Query: s.Query, Pts: pts})
	}
}

func (r *reportRun) serveRouted(pr *cgm.Proc, label string, routed [][]subquery) int {
	locals, recv := cgm.ExchangeCollectRecv[subquery, bool, []rlocal](
		pr, label, routed, fref("search/routeReport"), false)
	r.locals = append(r.locals, locals...)
	return recv
}

func (r *reportRun) finish(pr *cgm.Proc) {
	ps := r.ps
	p := pr.P()

	// Phase D (Algorithm Report): weigh every selected tree by its leaf
	// count, prefix-sum the weights, and redistribute so each processor
	// materializes a contiguous ~k/p block of output.
	myWeight := 0
	for _, o := range r.orders {
		myWeight += int(ps.info[int(o.Elem)].Count)
	}
	for _, l := range r.locals {
		myWeight += len(l.Pts)
	}
	off, totalK := comm.CountScan(pr, r.lbl+"/weights", myWeight)
	for i := range r.orders {
		r.orders[i].Off = off
		off += int(ps.info[int(r.orders[i].Elem)].Count)
	}
	for i := range r.locals {
		r.locals[i].Off = off
		off += len(r.locals[i].Pts)
	}

	// Whole-element orders fetch their points from the owner.
	fetched := comm.SegmentedGather(pr, r.lbl+"/fetch", r.orders, func(o rorder) int {
		return int(ps.info[int(o.Elem)].Owner)
	})

	// Ship every entry's points to the processors owning its output
	// positions (the segmented broadcast of Algorithm Report step 4).
	out := make([][]ReportPair, p)
	emit := func(qid int32, pts []geom.Point, off int) {
		for _, sh := range balance.SplitWeighted(off, len(pts), totalK, p) {
			for _, pt := range pts[sh.Lo:sh.Hi] {
				out[sh.Proc] = append(out[sh.Proc], ReportPair{Query: qid, Pt: pt})
			}
		}
	}
	for _, l := range r.locals {
		emit(l.Query, l.Pts, l.Off)
	}
	if r.resident && len(fetched) > 0 {
		// The owner's points live in its resident part: one step call
		// materializes every ordered element (this rank owns them all).
		ids := make([]ElemID, len(fetched))
		for i, o := range fetched {
			ids[i] = o.Elem
		}
		parts := cgm.CallResident[fetchArgs, [][]geom.Point](pr, fref("points/fetch"), fetchArgs{Elems: ids})
		for i, o := range fetched {
			emit(o.Query, parts[i], o.Off)
		}
	} else {
		for _, o := range fetched {
			el := ps.elems[o.Elem] // fetch orders always target the owner
			emit(o.Query, el.pts, o.Off)
		}
	}
	in := cgm.Exchange(pr, r.lbl+"/pairs", out)
	var mine []ReportPair
	for _, part := range in {
		mine = append(mine, part...)
	}
	r.st.PairsEmitted = len(mine)
	r.sink(ps.rank, mine)
}

// reportMode collects the balanced per-processor pair blocks during the
// run and groups them per query afterwards. It is generic in R so the
// mixed mode can reuse it; deliver writes one query's sorted points into
// the caller's result representation.
type reportMode[R any] struct {
	nq      int
	perProc [][]ReportPair
	counts  []int
	deliver func(results []R, qid int32, pts []geom.Point)
}

func newReportMode[R any](nq, p int, deliver func([]R, int32, []geom.Point)) *reportMode[R] {
	return &reportMode[R]{nq: nq, perProc: make([][]ReportPair, p), deliver: deliver}
}

func (*reportMode[R]) label() string { return "report" }
func (*reportMode[R]) init([]R)      {}
func (m *reportMode[R]) start(t *Tree, ps *procState, st *SearchStats, results []R) procRun {
	return m.startRun(t, ps, st)
}

// startRun builds the per-processor run; split out so the mixed mode can
// embed report answering without duplicating phase D.
func (m *reportMode[R]) startRun(t *Tree, ps *procState, st *SearchStats) *reportRun {
	return &reportRun{ps: ps, st: st, lbl: m.label(), resident: t.resident,
		sink: func(rank int, pairs []ReportPair) { m.perProc[rank] = pairs }}
}

// epilogue groups the distributed (q, l) pairs by query for the caller.
// The algorithm's deliverable — every pair on some processor, balanced to
// O(k/p) each — is what the machine run produced and what the metrics
// measure; this grouping is a convenience step outside the measured
// algorithm.
func (m *reportMode[R]) epilogue(results []R) {
	perQuery := make([][]geom.Point, m.nq)
	m.counts = make([]int, len(m.perProc))
	for rank, pairs := range m.perProc {
		m.counts[rank] = len(pairs)
		for _, pair := range pairs {
			perQuery[pair.Query] = append(perQuery[pair.Query], pair.Pt)
		}
	}
	for qi, pts := range perQuery {
		slices.SortFunc(pts, func(a, b geom.Point) int { return int(a.ID) - int(b.ID) })
		m.deliver(results, int32(qi), pts)
	}
}

// ReportBatch answers every query in report mode and groups the pairs by
// query for the caller.
func (t *Tree) ReportBatch(boxes []geom.Box) [][]geom.Point {
	perQuery, _ := t.reportBatch(boxes)
	return perQuery
}

// ReportBatchBalance additionally reports how many pairs each processor
// materialized (the k/p balance of Theorem 4).
func (t *Tree) ReportBatchBalance(boxes []geom.Box) ([][]geom.Point, []int) {
	return t.reportBatch(boxes)
}

func (t *Tree) reportBatch(boxes []geom.Box) ([][]geom.Point, []int) {
	if len(boxes) == 0 {
		return nil, make([]int, t.P())
	}
	mode := newReportMode(len(boxes), t.P(), func(results [][]geom.Point, qid int32, pts []geom.Point) {
		results[qid] = pts
	})
	results := runSearch(t, asQueries(boxes), mode)
	return results, mode.counts
}
