package core

import (
	"fmt"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/layered"
	"repro/internal/rangetree"
	"repro/internal/semigroup"
)

// Backend selects the sequential structure forest elements (and copies of
// them) are built on. The distributed algorithms above the element layer
// are backend-agnostic: anything that can build, count, report and carry a
// semigroup annotation over a point set serves phase C.
type Backend int8

const (
	// BackendLayered is the default: the layered (fractionally cascaded)
	// range tree, answering a j-dimensional subquery in O(log^(j-1) g + k)
	// — a log factor below the plain tree, exactly the improvement the
	// paper cites in §1 for the sequential structure.
	BackendLayered Backend = iota
	// BackendRangeTree is the paper's plain structure (Definition 1), kept
	// as the reference backend and the baseline of the E15 measurements.
	BackendRangeTree
	// BackendBrute serves subqueries by linear scan. It exists for the
	// cross-backend oracle tests and as a degenerate baseline; never pick
	// it for real workloads.
	BackendBrute
)

// String names the backend (diagnostics and benchmark labels).
func (b Backend) String() string {
	switch b {
	case BackendLayered:
		return "layered"
	case BackendRangeTree:
		return "rangetree"
	case BackendBrute:
		return "brute"
	}
	return fmt.Sprintf("Backend(%d)", int8(b))
}

// elemTree is the per-element contract of phase C: build once (via
// buildElemTree), then answer counting and reporting subqueries. Nodes
// feeds the Theorem 1 space accounting.
type elemTree interface {
	N() int
	Nodes() int
	Count(b geom.Box) int
	Report(b geom.Box) []geom.Point
}

// visitable is the zero-allocation fast path: backends exposing the
// layered Visitor API let the serving hooks reuse one visitor across all
// subqueries of a batch instead of allocating per call.
type visitable interface {
	Visit(b geom.Box, v layered.Visitor)
}

// buildElemTree constructs one forest element's sequential structure over
// dimensions startDim..d-1 of pts.
func buildElemTree(be Backend, pts []geom.Point, startDim int) elemTree {
	switch be {
	case BackendRangeTree:
		return rangetree.BuildFrom(pts, startDim)
	case BackendBrute:
		return &bruteElem{set: brute.Set{Pts: pts}}
	default:
		return layered.BuildFrom(pts, startDim)
	}
}

// bruteElem adapts brute.Set to the element contract. Earlier dimensions
// are re-checked by Contains; that is redundant (the hat guarantees them
// structurally) but harmless, and keeps the oracle backend trivially
// correct.
type bruteElem struct {
	set brute.Set
}

func (b *bruteElem) N() int                         { return len(b.set.Pts) }
func (b *bruteElem) Nodes() int                     { return len(b.set.Pts) }
func (b *bruteElem) Count(q geom.Box) int           { return b.set.Count(q) }
func (b *bruteElem) Report(q geom.Box) []geom.Point { return b.set.Report(q) }

// elemAgg is a prepared per-element semigroup annotation (Algorithm
// AssociativeFunction step 1 at element granularity).
type elemAgg[T any] interface {
	Query(b geom.Box) T
}

// newElemAgg builds the annotation matching the element's backend.
func newElemAgg[T any](el *element, m semigroup.Monoid[T], val func(geom.Point) T) elemAgg[T] {
	switch tr := el.tree.(type) {
	case *layered.Tree:
		return layered.NewAgg(tr, m, val)
	case *rangetree.Tree:
		return rangetree.NewAgg(tr, m, val)
	default:
		return &bruteAgg[T]{pts: el.pts, m: m, val: val}
	}
}

// bruteAgg folds by scanning — the oracle-backend annotation.
type bruteAgg[T any] struct {
	pts []geom.Point
	m   semigroup.Monoid[T]
	val func(geom.Point) T
}

func (a *bruteAgg[T]) Query(b geom.Box) T {
	acc := a.m.Identity
	for _, p := range a.pts {
		if b.Contains(p) {
			acc = a.m.Combine(acc, a.val(p))
		}
	}
	return acc
}

// countVisitor tallies a Visit descent; the serving hooks hold one and
// reset total between subqueries, so counting stays allocation-free.
type countVisitor struct{ total int }

func (c *countVisitor) VisitRange(pts []geom.Point) { c.total += len(pts) }
func (c *countVisitor) VisitPoint(geom.Point)       { c.total++ }

// reportVisitor gathers a Visit descent into out, which the hook swaps
// per subquery (the result slice itself must persist past the call).
type reportVisitor struct{ out []geom.Point }

func (r *reportVisitor) VisitRange(pts []geom.Point) { r.out = append(r.out, pts...) }
func (r *reportVisitor) VisitPoint(p geom.Point)     { r.out = append(r.out, p) }

// elemCount counts s.Box in el through the fastest available path.
func elemCount(el *element, b geom.Box, cv *countVisitor) int {
	if vt, ok := el.tree.(visitable); ok {
		cv.total = 0
		vt.Visit(b, cv)
		return cv.total
	}
	return el.tree.Count(b)
}

// elemReport reports b from el through the fastest available path.
func elemReport(el *element, b geom.Box, rv *reportVisitor) []geom.Point {
	if vt, ok := el.tree.(visitable); ok {
		rv.out = nil
		vt.Visit(b, rv)
		out := rv.out
		rv.out = nil
		return out
	}
	return el.tree.Report(b)
}
