package core_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pointsfile"
	"repro/internal/workload"
)

// TestWorkerFedConstructEquivalence: a held construction — input staged
// in the workers, sample sort and routing run as resident steps — must
// produce identical answers AND identical round/h/volume metrics to the
// coordinator-fed build of the same points.
func TestWorkerFedConstructEquivalence(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, d := range []int{2, 3} {
			t.Run(fmt.Sprintf("p=%d/d=%d", p, d), func(t *testing.T) {
				n, m := 400, 40
				pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Clustered, Seed: 7})
				coordM := cgm.New(cgm.Config{P: p, Resident: true})
				heldM := cgm.New(cgm.Config{P: p, Resident: true})
				coord := core.Build(coordM, pts)
				held := core.BuildWorkerFed(heldM, pts, core.BackendLayered)
				if err := held.Verify(); err != nil {
					t.Fatalf("worker-fed tree fails Verify: %v", err)
				}
				assertSameMetrics(t, "construct", coordM.Metrics(), heldM.Metrics())

				boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: d, N: n, Selectivity: 0.08, Seed: 3})
				cc, hc := coord.CountBatch(boxes), held.CountBatch(boxes)
				for i := range cc {
					if cc[i] != hc[i] {
						t.Fatalf("count %d: coordinator-fed %d worker-fed %d", i, cc[i], hc[i])
					}
				}
				cr, hr := coord.ReportBatch(boxes), held.ReportBatch(boxes)
				for i := range cr {
					if len(cr[i]) != len(hr[i]) {
						t.Fatalf("report %d: coordinator-fed %d pts, worker-fed %d", i, len(cr[i]), len(hr[i]))
					}
					for j := range cr[i] {
						if cr[i][j].ID != hr[i][j].ID {
							t.Fatalf("report %d pt %d: id %d vs %d", i, j, cr[i][j].ID, hr[i][j].ID)
						}
					}
				}
			})
		}
	}
}

// TestBulkLoadStreaming: chunked round-robin streaming (an arbitrary
// initial distribution) must converge to the same answers as a
// coordinator-fed build; the sample sort normalizes the placement.
func TestBulkLoadStreaming(t *testing.T) {
	n, d, p := 500, 2, 4
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Uniform, Seed: 11})
	refM := cgm.New(cgm.Config{P: p})
	ref := core.Build(refM, pts)

	for _, chunk := range []int{37, 5000} {
		ldM := cgm.New(cgm.Config{P: p, Resident: true})
		ld, err := core.BulkLoad(ldM, core.SliceChunks(pts, chunk), core.BackendLayered, 2)
		if err != nil {
			t.Fatalf("chunk=%d: BulkLoad: %v", chunk, err)
		}
		if err := ld.Verify(); err != nil {
			t.Fatalf("chunk=%d: bulk-loaded tree fails Verify: %v", chunk, err)
		}
		boxes := workload.Boxes(workload.QuerySpec{M: 40, Dims: d, N: n, Selectivity: 0.1, Seed: 5})
		want, got := ref.CountBatch(boxes), ld.CountBatch(boxes)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("chunk=%d count %d: want %d got %d", chunk, i, want[i], got[i])
			}
		}
	}
}

// TestBulkLoadFile: rank-local file-slice ingest (single shared file and
// one shard per rank) answers like an in-memory build.
func TestBulkLoadFile(t *testing.T) {
	n, d, p := 300, 2, 4
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Clustered, Seed: 19})
	dir := t.TempDir()
	whole := filepath.Join(dir, "pts.drpf")
	if err := pointsfile.Save(whole, pts); err != nil {
		t.Fatal(err)
	}
	shards := make([]string, p)
	blocks := core.CanonicalBlocks(pts, p)
	for rank := range shards {
		shards[rank] = filepath.Join(dir, fmt.Sprintf("shard-%d.drpf", rank))
		if err := pointsfile.Save(shards[rank], blocks[rank]); err != nil {
			t.Fatal(err)
		}
	}

	refM := cgm.New(cgm.Config{P: p})
	ref := core.Build(refM, pts)
	boxes := workload.Boxes(workload.QuerySpec{M: 30, Dims: d, N: n, Selectivity: 0.1, Seed: 23})
	want := ref.CountBatch(boxes)

	oneM := cgm.New(cgm.Config{P: p, Resident: true})
	one, err := core.BulkLoadFile(oneM, whole, core.BackendLayered)
	if err != nil {
		t.Fatalf("BulkLoadFile: %v", err)
	}
	shM := cgm.New(cgm.Config{P: p, Resident: true})
	sh, err := core.BulkLoadFiles(shM, shards, core.BackendLayered)
	if err != nil {
		t.Fatalf("BulkLoadFiles: %v", err)
	}
	gotOne := one.CountBatch(boxes)
	gotSh := sh.CountBatch(boxes)
	for i := range want {
		if gotOne[i] != want[i] {
			t.Fatalf("file count %d: want %d got %d", i, want[i], gotOne[i])
		}
		if gotSh[i] != want[i] {
			t.Fatalf("shard count %d: want %d got %d", i, want[i], gotSh[i])
		}
	}
}

// TestPointsfileRoundTrip pins the on-disk format: save, slice reads,
// header info.
func TestPointsfileRoundTrip(t *testing.T) {
	pts := []geom.Point{
		{ID: 1, X: []geom.Coord{3, -4}},
		{ID: 2, X: []geom.Coord{0, 9}},
		{ID: 7, X: []geom.Coord{-100, 100}},
	}
	path := filepath.Join(t.TempDir(), "t.drpf")
	if err := pointsfile.Save(path, pts); err != nil {
		t.Fatal(err)
	}
	n, dims, err := pointsfile.Info(path)
	if err != nil || n != 3 || dims != 2 {
		t.Fatalf("Info: n=%d dims=%d err=%v", n, dims, err)
	}
	mid, dims, err := pointsfile.ReadSlice(path, 1, 2)
	if err != nil || dims != 2 || len(mid) != 1 || mid[0].ID != 2 || mid[0].X[1] != 9 {
		t.Fatalf("ReadSlice: %v %v (err=%v)", mid, dims, err)
	}
	all, err := pointsfile.Read(path)
	if err != nil || len(all) != 3 || all[2].X[0] != -100 {
		t.Fatalf("Read: %v (err=%v)", all, err)
	}
	if _, _, err := pointsfile.ReadSlice(path, 2, 5); err == nil {
		t.Fatal("out-of-range slice must error")
	}
}
