package core

import (
	"fmt"

	"repro/internal/cgm"
	"repro/internal/exec"
	"repro/internal/geom"
)

// MixedOp selects the result mode of one query in a mixed batch.
type MixedOp int8

const (
	// OpCount answers with |R(q)|.
	OpCount MixedOp = iota
	// OpAggregate answers with ⊗_{l∈R(q)} f(l) of a prepared AggHandle.
	OpAggregate
	// OpReport answers with the points of R(q).
	OpReport
)

// String names the op (CLI and diagnostics).
func (op MixedOp) String() string {
	switch op {
	case OpCount:
		return "count"
	case OpAggregate:
		return "aggregate"
	case OpReport:
		return "report"
	}
	return fmt.Sprintf("MixedOp(%d)", int8(op))
}

// MixedResult holds the answer of one mixed-batch query; only the field
// selected by the query's op is meaningful.
type MixedResult[T any] struct {
	Count int64
	Agg   T
	Pts   []geom.Point
}

// mixedRun multiplexes the three per-mode runs over one shared pipeline
// pass: each hook dispatches on the query's op, so one hat descent, one
// demand-balanced copy/route and one serving sweep answer the whole batch.
type mixedRun[T any] struct {
	ops   []MixedOp
	count *countRun
	agg   *assocRun[T]
	rep   *reportRun
}

func (r *mixedRun[T]) dispatch(qid int32) procRun {
	switch r.ops[qid] {
	case OpAggregate:
		return r.agg
	case OpReport:
		return r.rep
	default:
		return r.count
	}
}

func (r *mixedRun[T]) answerHat(q Query, s hatSel) { r.dispatch(q.ID).answerHat(q, s) }
func (r *mixedRun[T]) answerSub(s subquery)        { r.dispatch(s.Query).answerSub(s) }

// serveRouted answers all three op kinds in the ONE fused route-and-
// serve superstep: the collect step partitions the routed column by op
// (the ops vector rides the collect args) and returns the three result
// kinds in a single reply — no per-mode dispatch round-trips.
func (r *mixedRun[T]) serveRouted(pr *cgm.Proc, label string, routed [][]subquery) int {
	args := mixedServeArgs{Ops: r.ops}
	if r.agg != nil {
		args.Agg = r.agg.h.name
	}
	rep, recv := cgm.ExchangeCollectRecv[subquery, mixedServeArgs, mixedServeReply](
		pr, label, routed, fref("search/routeMixed"), args)
	r.count.pairs = append(r.count.pairs, rep.Counts...)
	if len(rep.Aggs) > 0 {
		if r.agg == nil {
			// Unreachable via MixedBatch (it rejects OpAggregate without a
			// handle up front); fail as loudly as the fabric path would.
			panic("core: aggregate subqueries served without a prepared AggHandle")
		}
		pairs, err := exec.Unmarshal[[]qvalT[T]](rep.Aggs)
		if err != nil {
			panic(fmt.Sprintf("core: decoding mixed aggregate results: %v", err))
		}
		r.agg.pairs = append(r.agg.pairs, pairs...)
	}
	r.rep.locals = append(r.rep.locals, rep.Locals...)
	return recv
}

func (r *mixedRun[T]) materialize(el *element) {
	// Only the associative mode annotates copies; h's presence is a
	// batch-global property, so this branch is SPMD-uniform.
	if r.agg != nil {
		r.agg.materialize(el)
	}
}

func (r *mixedRun[T]) finish(pr *cgm.Proc) {
	r.count.finish(pr)
	if r.agg != nil {
		r.agg.finish(pr)
	}
	r.rep.finish(pr)
}

// mixedMode composes the three result modes into one searchMode whose
// collectives all ride a single machine run.
type mixedMode[T any] struct {
	h   *AggHandle[T]
	ops []MixedOp
	rep *reportMode[MixedResult[T]]
}

func (*mixedMode[T]) label() string { return "mixed" }

func (m *mixedMode[T]) residentAggName() string {
	if m.h != nil {
		return m.h.name
	}
	return ""
}

func (m *mixedMode[T]) init(results []MixedResult[T]) {
	if m.h == nil {
		return
	}
	for i := range results {
		results[i].Agg = m.h.m.Identity
	}
}

func (m *mixedMode[T]) start(t *Tree, ps *procState, st *SearchStats, results []MixedResult[T]) procRun {
	nq := len(results)
	r := &mixedRun[T]{ops: m.ops}
	r.count = &countRun{ps: ps, nq: nq, lbl: "mixed/count",
		deliver: func(qid int32, v int64) { results[qid].Count += v }}
	if m.h != nil {
		r.agg = newAssocRun(m.h, ps, nq, "mixed/assoc", func(qid int32, v T) {
			results[qid].Agg = m.h.m.Combine(results[qid].Agg, v)
		})
	}
	r.rep = m.rep.startRun(t, ps, st)
	return r
}

func (m *mixedMode[T]) epilogue(results []MixedResult[T]) { m.rep.epilogue(results) }

// MixedBatch answers a batch mixing all three result modes in ONE machine
// run: one hat descent, one demand-balanced copy/route of the combined Q″
// and one serving sweep cover every query, with the per-mode result
// collectives riding the same run. This is the serving layer's dispatch
// path: micro-batched single queries of different modes amortize the
// round structure the theorems price per batch, not per mode.
//
// ops[i] selects the mode of boxes[i]. h may be nil when ops contains no
// OpAggregate.
func MixedBatch[T any](t *Tree, h *AggHandle[T], ops []MixedOp, boxes []geom.Box) []MixedResult[T] {
	if len(ops) != len(boxes) {
		panic(fmt.Sprintf("core: MixedBatch got %d ops for %d boxes", len(ops), len(boxes)))
	}
	if h == nil {
		for _, op := range ops {
			if op == OpAggregate {
				panic("core: MixedBatch: OpAggregate requires a prepared AggHandle")
			}
		}
	}
	if h != nil && h.t != t {
		panic("core: MixedBatch: AggHandle was prepared on a different tree")
	}
	mode := &mixedMode[T]{h: h, ops: ops,
		rep: newReportMode(len(boxes), t.P(), func(results []MixedResult[T], qid int32, pts []geom.Point) {
			if ops[qid] == OpReport {
				results[qid].Pts = pts
			}
		})}
	return runSearch(t, asQueries(boxes), mode)
}
